//! Workspace façade for the Unimem (SC'17) reproduction.
//!
//! Re-exports every crate under a single roof so examples and integration
//! tests can `use unimem_repro::...`. See the README for a tour and
//! DESIGN.md for the system inventory.

pub use unimem as runtime;
pub use unimem_bench as bench;
pub use unimem_cache as cache;
pub use unimem_hms as hms;
pub use unimem_mpi as mpi;
pub use unimem_perf as perf;
pub use unimem_sim as sim;
pub use unimem_workloads as workloads;
pub use unimem_xmem as xmem;
