//! A real distributed computation on the mini-MPI substrate: conjugate
//! gradient on a 1-D Laplacian, partitioned across four ranks with real
//! halo exchanges and bit-deterministic allreduces, while virtual clocks
//! track the simulated time — the same machinery the Unimem driver runs
//! the paper's workloads on.
//!
//! Run with: `cargo run --release --example distributed_solver`

use unimem_repro::mpi::{CommWorld, NetParams};
use unimem_repro::sim::Bytes;

const N_PER_RANK: usize = 2048;
const RANKS: usize = 4;

/// y = A·x for the 1-D Laplacian [-1, 2, -1] with halo exchange.
fn matvec(ctx: &mut unimem_repro::mpi::RankCtx, x: &[f64], y: &mut [f64], tag: u64) {
    let rank = ctx.rank();
    let n = x.len();
    let mut left_halo = 0.0;
    let mut right_halo = 0.0;
    // Exchange boundary elements with neighbours (real payloads).
    if rank > 0 {
        ctx.send(rank - 1, tag, Bytes(8), &[x[0]]);
    }
    if rank + 1 < ctx.nranks() {
        ctx.send(rank + 1, tag + 1, Bytes(8), &[x[n - 1]]);
    }
    if rank + 1 < ctx.nranks() {
        right_halo = ctx.recv(rank + 1, tag)[0];
    }
    if rank > 0 {
        left_halo = ctx.recv(rank - 1, tag + 1)[0];
    }
    for i in 0..n {
        let l = if i == 0 { left_halo } else { x[i - 1] };
        let r = if i == n - 1 { right_halo } else { x[i + 1] };
        y[i] = 2.0 * x[i] - l - r;
    }
}

fn main() {
    let results = CommWorld::run(RANKS, NetParams::default(), |ctx| {
        // Solve A·u = b with b = 1 (the discrete Poisson problem).
        let n = N_PER_RANK;
        let b = vec![1.0f64; n];
        let mut u = vec![0.0f64; n];
        let mut r = b.clone();
        let mut p = r.clone();
        let mut q = vec![0.0f64; n];
        let mut rho = ctx.allreduce_sum_scalar(r.iter().map(|x| x * x).sum());
        let mut iters = 0u32;
        for k in 0..2 * RANKS * N_PER_RANK {
            matvec(ctx, &p, &mut q, 1000 + 4 * k as u64);
            let pq = ctx.allreduce_sum_scalar(p.iter().zip(&q).map(|(a, b)| a * b).sum());
            let alpha = rho / pq;
            for i in 0..n {
                u[i] += alpha * p[i];
                r[i] -= alpha * q[i];
            }
            let rho_new = ctx.allreduce_sum_scalar(r.iter().map(|x| x * x).sum());
            iters = k as u32 + 1;
            if rho_new.sqrt() < 1e-8 {
                break;
            }
            let beta = rho_new / rho;
            rho = rho_new;
            for i in 0..n {
                p[i] = r[i] + beta * p[i];
            }
        }
        // Verify: residual of the final iterate.
        matvec(ctx, &u, &mut q, 9_000_000);
        let local_res: f64 = b.iter().zip(&q).map(|(b, q)| (b - q) * (b - q)).sum();
        let res = ctx.allreduce_sum_scalar(local_res).sqrt();
        (iters, res, ctx.now().secs())
    });

    let (iters, res, vtime) = results[0];
    println!("distributed CG: {} ranks x {} unknowns", RANKS, N_PER_RANK);
    println!("converged in {iters} iterations, residual {res:.3e}");
    println!("virtual time on the simulated interconnect: {vtime:.4}s");
    assert!(res < 1e-6, "CG must converge");
    for (i, r) in results.iter().enumerate() {
        assert_eq!(r.0, iters, "rank {i} disagrees on iteration count");
    }
    println!("all ranks agree bit-exactly — determinism OK");
}
