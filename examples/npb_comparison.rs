//! Reproduce the paper's basic performance test for one benchmark:
//! DRAM-only vs NVM-only vs X-Mem vs Unimem on the CLASS C setup
//! (4 ranks, DRAM 256 MB, NVM 16 GB, NVM at 1/2 DRAM bandwidth).
//!
//! Run with: `cargo run --release --example npb_comparison [CG|FT|BT|LU|SP|MG|NEK]`

use unimem_repro::cache::CacheModel;
use unimem_repro::hms::MachineConfig;
use unimem_repro::runtime::exec::{run_workload, Policy};
use unimem_repro::workloads::{by_name, Class};
use unimem_repro::xmem::xmem_policy;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "SP".to_string());
    let w = by_name(&name, Class::C).unwrap_or_else(|| {
        eprintln!("unknown benchmark {name}; use CG/FT/BT/LU/SP/MG/NEK");
        std::process::exit(1);
    });
    let machine = MachineConfig::nvm_bw_fraction(0.5);
    let cache = CacheModel::platform_a();
    let nranks = 4;

    println!("benchmark {} on {}", w.name(), machine.label);
    let dram = run_workload(w.as_ref(), &machine, &cache, nranks, &Policy::DramOnly);
    let base = dram.time().secs();
    for policy in [
        Policy::NvmOnly,
        xmem_policy(w.as_ref(), &machine, &cache, nranks),
        Policy::unimem(),
    ] {
        let rep = run_workload(w.as_ref(), &machine, &cache, nranks, &policy);
        let overlap = rep
            .job
            .overlap_pct()
            .map_or_else(|| "   n/a".into(), |p| format!("{p:>5.1}%"));
        println!(
            "{:10} {:>8.3}s  normalized {:>6.3}  migrations {:>4}  moved {:>10}  overlap {overlap}  runtime-cost {:>5.2}%",
            rep.policy,
            rep.time().secs(),
            rep.time().secs() / base,
            rep.job.migration_count(),
            format!("{}", rep.job.migrated_bytes()),
            rep.job.pure_runtime_cost() * 100.0,
        );
    }
    println!("{:10} {:>8.3}s  normalized  1.000", dram.policy, base);
}
