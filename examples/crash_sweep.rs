//! Crash-injection sweep: journal clean runs, kill them at seeded
//! virtual-time points under every durability mode, recover from the
//! durable journal prefix, and report equivalence + recovery cost.
//!
//! ```text
//! cargo run --release --example crash_sweep                 # defaults
//! cargo run --release --example crash_sweep -- --check      # gate on it
//! cargo run --release --example crash_sweep -- --points 5 --seed 7 \
//!     --modes buffered,strict --workloads CG,Nek5000 --ranks 4 \
//!     --profile bw-half --class C --out BENCH_recovery.json
//! ```
//!
//! Every kill point is replayable from `(--seed, index)` alone — the
//! crash harness samples virtual times from a seeded substream, so a CI
//! failure names a crash any machine can reproduce exactly. `--check`
//! exits non-zero when any recovered run is not byte-identical to its
//! clean run, when recovery exceeds the restart-cost bound, or when the
//! forced late Strict crash shows no real advantage over restarting.

use std::path::PathBuf;
use std::process::ExitCode;
use unimem_repro::bench::sweep::{NvmProfile, Tolerances};
use unimem_repro::cache::CacheModel;
use unimem_repro::hms::journal::DurabilityMode;
use unimem_repro::runtime::exec::Policy;
use unimem_repro::runtime::recovery::RecoverySetup;
use unimem_repro::sim::{sample_kill_points, CrashSpec, Json, VDur, VTime};
use unimem_repro::workloads::{select, Class};

fn usage() -> ! {
    eprintln!(
        "usage: crash_sweep [--points N] [--seed S] [--modes CSV] [--workloads CSV]\n\
         \x20                  [--ranks N] [--profile NAME] [--class S|C|D]\n\
         \x20                  [--out PATH] [--check]"
    );
    std::process::exit(2)
}

fn main() -> ExitCode {
    let mut points = 3usize;
    let mut seed = 0xC4A5_u64;
    let mut modes: Vec<DurabilityMode> = DurabilityMode::ALL.to_vec();
    let mut workloads: Vec<String> = vec!["CG".into(), "Nek5000".into()];
    let mut nranks = 4usize;
    let mut profile = NvmProfile::BwHalf;
    let mut class = Class::C;
    let mut out = PathBuf::from("BENCH_recovery.json");
    let mut check = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                std::process::exit(2)
            })
        };
        match arg.as_str() {
            "--points" => match value("--points").parse() {
                Ok(n) if n > 0 => points = n,
                _ => usage(),
            },
            "--seed" => match value("--seed").parse() {
                Ok(s) => seed = s,
                _ => usage(),
            },
            "--modes" => {
                modes = value("--modes")
                    .split(',')
                    .map(|s| {
                        DurabilityMode::parse(s.trim()).unwrap_or_else(|| {
                            eprintln!("unknown durability mode {s:?}");
                            std::process::exit(2)
                        })
                    })
                    .collect();
            }
            "--workloads" => {
                workloads = value("--workloads")
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .collect();
            }
            "--ranks" => match value("--ranks").parse() {
                Ok(n) if n > 0 => nranks = n,
                _ => usage(),
            },
            "--profile" => {
                let v = value("--profile");
                profile = NvmProfile::parse(&v).unwrap_or_else(|| {
                    eprintln!("unknown NVM profile {v:?}");
                    std::process::exit(2)
                });
            }
            "--class" => {
                class = match value("--class").to_ascii_uppercase().as_str() {
                    "S" => Class::S,
                    "C" => Class::C,
                    "D" => Class::D,
                    other => {
                        eprintln!("unknown class {other:?} (use S, C, or D)");
                        return ExitCode::from(2);
                    }
                }
            }
            "--out" => out = PathBuf::from(value("--out")),
            "--check" => check = true,
            _ => usage(),
        }
    }

    let names: Vec<&str> = workloads.iter().map(String::as_str).collect();
    let selection = match select(&names, class) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    let machine = profile.machine();
    let cache = CacheModel::platform_a();
    let policy = Policy::unimem();
    let tol = Tolerances::default();

    let mut cells = Vec::new();
    let mut failures = 0usize;
    for (canon, w) in &selection {
        let setup = RecoverySetup {
            workload: w.as_ref(),
            machine: &machine,
            cache: &cache,
            nranks,
            policy: &policy,
        };
        for &mode in &modes {
            let clean = setup.run_journaled(mode);
            let horizon = VTime::ZERO + clean.report.time();
            let mut crashes = sample_kill_points(seed, horizon, points);
            // The forced late crash: the recovery-advantage evidence.
            let late = mode == DurabilityMode::Strict;
            if late {
                crashes.push(CrashSpec::at(
                    VTime::ZERO + VDur(clean.report.time().secs() * 0.75),
                ));
            }
            for (i, crash) in crashes.iter().enumerate() {
                let o = setup.crash_and_recover(mode, *crash, &clean);
                let is_late = late && i == crashes.len() - 1;
                let mut ok = o.equivalent();
                if mode != DurabilityMode::InMemory {
                    ok &= o.stats.recovery_time.secs()
                        <= o.stats.restart_time.secs() * tol.recovery_bound;
                }
                if is_late {
                    ok &= o.stats.advantage() >= tol.recovery_advantage_min;
                }
                if !ok {
                    failures += 1;
                }
                println!(
                    "{canon:8} {:9} kill{}@{:.4}s{}  equivalent={} advantage={:.2} {}",
                    mode.name(),
                    i,
                    crash.at.secs(),
                    if crash.torn { "+torn" } else { "" },
                    o.equivalent(),
                    o.stats.advantage(),
                    if ok { "ok" } else { "FAIL" },
                );
                let mut cell = Json::obj();
                cell.push("workload", canon.as_str())
                    .push("kill_index", i)
                    .push("forced_late", is_late)
                    .push("equivalent", o.equivalent())
                    .push("report_equal", o.report_equal)
                    .push("journals_equal", o.journals_equal)
                    .push(
                        "durable_records",
                        o.summaries.iter().map(|s| s.records).sum::<u64>(),
                    )
                    .push(
                        "replayed_observes",
                        o.summaries.iter().map(|s| s.replayed_observes).sum::<u64>(),
                    )
                    .push("stats", o.stats.to_json())
                    .push("ok", ok);
                cells.push(cell);
            }
        }
    }

    let mut report = Json::obj();
    report
        .push("seed", seed)
        .push("points", points)
        .push("nranks", nranks)
        .push("profile", profile.name())
        .push("recovery_bound", tol.recovery_bound)
        .push("recovery_advantage_min", tol.recovery_advantage_min)
        .push("cells", Json::Arr(cells));
    if let Err(e) = std::fs::write(&out, report.to_pretty()) {
        eprintln!("cannot write {}: {e}", out.display());
        return ExitCode::from(2);
    }
    println!("wrote {}", out.display());

    if check && failures > 0 {
        eprintln!("crash sweep: {failures} failing kill point(s)");
        return ExitCode::FAILURE;
    }
    ExitCode::SUCCESS
}
