//! Perf-budget harness: measure the wall time of the reduced
//! evaluation-matrix sweep, write `BENCH_perf.json`, and (optionally)
//! gate on a committed baseline.
//!
//! ```text
//! cargo run --release --example perf                        # measure + write
//! cargo run --release --example perf -- --jobs 4 --samples 7
//! cargo run --release --example perf -- \
//!     --against BENCH_perf.json --tolerance 0.20            # CI budget gate
//! ```
//!
//! The sweep's *output* is virtual-time and byte-identical everywhere;
//! this harness measures the one thing that is not — how long the
//! simulator itself takes to chew through the reduced matrix. Each
//! sample is one full `run_sweep_jobs(SweepConfig::reduced(), jobs)`
//! call; after `--warmup` discarded runs, `--samples` timed runs are
//! summarized with the vendored criterion's median/MAD robust statistics
//! (host noise lands in outliers, not in the median).
//!
//! Output schema `unimem-bench-perf/v1` — the *structure* is
//! deterministic (fixed member set and order; only the measured values
//! vary run to run):
//!
//! ```text
//! {
//!   "schema":  "unimem-bench-perf/v1",
//!   "matrix":  "reduced",
//!   "jobs":    1,
//!   "warmup":  1,
//!   "samples": 5,
//!   "n_cells": 168, "n_corun_cells": 12,
//!   "wall_s": { "median": ..., "mad": ..., "min": ..., "max": ...,
//!               "mean": ..., "kept": 5 }
//! }
//! ```
//!
//! `--against PATH` compares this run's median against the `wall_s.median`
//! of a previously written report and exits non-zero when the current
//! median exceeds it by more than `--tolerance` (default 0.20, i.e. a
//! +20% wall-time regression budget). Improvements never fail the gate.

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use criterion::stats::RobustSummary;
use unimem_repro::bench::sweep::{default_workers, run_sweep_jobs, SweepConfig};
use unimem_repro::sim::Json;

fn usage() -> ! {
    eprintln!(
        "usage: perf [--jobs N] [--warmup N] [--samples N] [--out PATH]\n\
         \x20           [--against BASELINE.json] [--tolerance FRACTION]"
    );
    std::process::exit(2)
}

/// Pull `wall_s.median` out of a previously written report without a
/// full JSON parser (the vendored stack has a writer only): scan for the
/// `"median":` member and parse the number that follows. The file is our
/// own `v1` output, where that key occurs exactly once.
fn baseline_median_s(text: &str) -> Result<f64, String> {
    if !text.contains("unimem-bench-perf/v1") {
        return Err("baseline is not a unimem-bench-perf/v1 report".into());
    }
    let key = "\"median\":";
    let at = text
        .find(key)
        .ok_or_else(|| "baseline has no \"median\" member".to_string())?;
    let rest = &text[at + key.len()..];
    let num: String = rest
        .trim_start()
        .chars()
        .take_while(|c| c.is_ascii_digit() || matches!(c, '.' | '-' | '+' | 'e' | 'E'))
        .collect();
    num.parse::<f64>()
        .ok()
        .filter(|m| m.is_finite() && *m > 0.0)
        .ok_or_else(|| format!("baseline median {num:?} is not a positive number"))
}

fn main() -> ExitCode {
    let mut jobs = default_workers();
    let mut warmup = 1usize;
    let mut samples = 5usize;
    let mut out = PathBuf::from("BENCH_perf.json");
    let mut against: Option<PathBuf> = None;
    let mut tolerance = 0.20f64;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                std::process::exit(2)
            })
        };
        match arg.as_str() {
            "--jobs" => match value("--jobs").parse() {
                Ok(n) if n > 0 => jobs = n,
                _ => {
                    eprintln!("--jobs needs a positive integer");
                    return ExitCode::from(2);
                }
            },
            "--warmup" => match value("--warmup").parse() {
                Ok(n) => warmup = n,
                _ => {
                    eprintln!("--warmup needs an integer");
                    return ExitCode::from(2);
                }
            },
            "--samples" => match value("--samples").parse() {
                Ok(n) if n > 0 => samples = n,
                _ => {
                    eprintln!("--samples needs a positive integer");
                    return ExitCode::from(2);
                }
            },
            "--out" => out = PathBuf::from(value("--out")),
            "--against" => against = Some(PathBuf::from(value("--against"))),
            "--tolerance" => match value("--tolerance").parse::<f64>() {
                Ok(t) if t.is_finite() && t >= 0.0 => tolerance = t,
                _ => {
                    eprintln!("--tolerance needs a non-negative number");
                    return ExitCode::from(2);
                }
            },
            _ => usage(),
        }
    }

    // Read the baseline *before* measuring and writing: `--against` and
    // `--out` may name the same committed file (refresh-in-place), and
    // comparing against bytes we just wrote would make the gate vacuous.
    let baseline = match &against {
        None => None,
        Some(path) => match std::fs::read_to_string(path).map_err(|e| e.to_string()) {
            Ok(text) => match baseline_median_s(&text) {
                Ok(m) => Some(m),
                Err(e) => {
                    eprintln!("bad baseline {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            },
            Err(e) => {
                eprintln!("cannot read baseline {}: {e}", path.display());
                return ExitCode::from(2);
            }
        },
    };

    let cfg = SweepConfig::reduced();
    let run = || match run_sweep_jobs(&cfg, jobs) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("reduced sweep failed: {e}");
            std::process::exit(2)
        }
    };

    println!(
        "perf: reduced matrix, {jobs} job{}, {warmup} warmup + {samples} samples",
        if jobs == 1 { "" } else { "s" }
    );
    for _ in 0..warmup {
        run();
    }
    let mut wall_ns = Vec::with_capacity(samples);
    let mut shape = (0usize, 0usize);
    for i in 0..samples {
        let t0 = Instant::now();
        let rep = run();
        let dt = t0.elapsed();
        wall_ns.push(dt.as_secs_f64() * 1e9);
        shape = (rep.cells.len(), rep.corun_cells.len());
        println!("  sample {}: {:.3} s", i + 1, dt.as_secs_f64());
    }
    let s = RobustSummary::from_ns(&wall_ns);
    let secs = |ns: f64| ns / 1e9;
    println!(
        "reduced sweep wall time: median {:.3} s (min {:.3}, max {:.3}; {} of {} samples kept)",
        secs(s.median_ns),
        secs(s.min_ns),
        secs(s.max_ns),
        s.n_kept,
        s.n_samples,
    );

    let mut wall = Json::obj();
    wall.push("median", secs(s.median_ns))
        .push("mad", secs(s.mad_ns))
        .push("min", secs(s.min_ns))
        .push("max", secs(s.max_ns))
        .push("mean", secs(s.mean_ns))
        .push("kept", s.n_kept);
    let mut doc = Json::obj();
    doc.push("schema", "unimem-bench-perf/v1")
        .push("matrix", "reduced")
        .push("jobs", jobs)
        .push("warmup", warmup)
        .push("samples", samples)
        .push("n_cells", shape.0)
        .push("n_corun_cells", shape.1)
        .push("wall_s", wall);
    if let Err(e) = std::fs::write(&out, doc.to_pretty()) {
        eprintln!("cannot write {}: {e}", out.display());
        return ExitCode::from(2);
    }
    println!("wrote {}", out.display());

    if let Some(base) = baseline {
        let ratio = secs(s.median_ns) / base;
        println!(
            "budget: median {:.3} s vs baseline {:.3} s = {:+.1}% (tolerance +{:.0}%)",
            secs(s.median_ns),
            base,
            (ratio - 1.0) * 100.0,
            tolerance * 100.0,
        );
        if ratio > 1.0 + tolerance {
            eprintln!("perf budget exceeded: reduced sweep regressed past the tolerance");
            return ExitCode::FAILURE;
        }
        println!("perf budget ok");
    }
    ExitCode::SUCCESS
}
