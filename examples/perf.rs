//! Perf-budget harness: measure the wall time of the reduced
//! evaluation-matrix sweep, write `BENCH_perf.json`, and (optionally)
//! gate on a committed baseline.
//!
//! ```text
//! cargo run --release --example perf                        # measure + write
//! cargo run --release --example perf -- --jobs 4 --samples 7
//! cargo run --release --example perf -- \
//!     --against BENCH_perf.json --tolerance 0.20            # CI budget gate
//! cargo run --release --example perf -- --cold              # skip warm arm
//! cargo run --release --example perf -- --warm --cache DIR  # skip cold arm
//! ```
//!
//! The sweep's *output* is virtual-time and byte-identical everywhere;
//! this harness measures the one thing that is not — how long the
//! simulator itself takes to chew through the reduced matrix. Two arms:
//!
//! * **cold** — `run_sweep_jobs(SweepConfig::reduced(), jobs)`, no cell
//!   cache: the pure compute cost. This is the number the CI perf budget
//!   gates on.
//! * **warm** — `run_sweep_cached` against a fully-primed cell cache
//!   (one unmeasured priming run fills it): the incremental-reuse cost,
//!   i.e. what a rerun of an already-swept matrix pays. The measured
//!   hit rate lands in the report as `cache_hit_rate`.
//!
//! Both arms run by default; `--cold` / `--warm` select one. After
//! `--warmup` discarded runs, `--samples` timed runs per arm are
//! summarized with the vendored criterion's median/MAD robust statistics
//! (host noise lands in outliers, not in the median).
//!
//! Output schema `unimem-bench-perf/v2` — the *structure* is
//! deterministic (fixed member set and order; only the measured values
//! vary run to run; an arm that did not run serializes as `null`):
//!
//! ```text
//! {
//!   "schema":  "unimem-bench-perf/v2",
//!   "matrix":  "reduced",
//!   "jobs":    1,
//!   "warmup":  1,
//!   "samples": 5,
//!   "n_cells": 168, "n_corun_cells": 12,
//!   "wall_s":      { "median": ..., "mad": ..., "min": ..., "max": ...,
//!                    "mean": ..., "kept": 5 },   // cold arm
//!   "warm_wall_s": { ... },                      // warm arm
//!   "cache_hit_rate": 1.0
//! }
//! ```
//!
//! `--against PATH` compares this run's **cold** median against the
//! `wall_s.median` of a previously written report (`v1` or `v2` —
//! `wall_s` meant cold in both) and exits non-zero when the current
//! median exceeds it by more than `--tolerance` (default 0.20, i.e. a
//! +20% wall-time regression budget). Improvements never fail the gate;
//! warm medians never gate (they measure the cache, not the engine).

use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

use criterion::stats::RobustSummary;
use unimem_repro::bench::sweep::{default_workers, run_sweep_cached, SweepCache, SweepConfig};
use unimem_repro::sim::Json;

fn usage() -> ! {
    eprintln!(
        "usage: perf [--jobs N] [--warmup N] [--samples N] [--out PATH]\n\
         \x20           [--against BASELINE.json] [--tolerance FRACTION]\n\
         \x20           [--cold] [--warm] [--cache DIR] [--no-cache]"
    );
    std::process::exit(2)
}

/// Pull the cold `wall_s.median` out of a previously written report.
/// Parses properly (the sim crate grew a JSON parser for the sweep
/// cache) and accepts both the `v1` and `v2` schemas — `wall_s` meant
/// the cold (cacheless) arm in both.
fn baseline_median_s(text: &str) -> Result<f64, String> {
    let doc = Json::parse(text).map_err(|e| format!("unparsable baseline: {e}"))?;
    let schema = doc.get("schema").and_then(Json::as_str).unwrap_or("");
    if !matches!(schema, "unimem-bench-perf/v1" | "unimem-bench-perf/v2") {
        return Err(format!("unsupported baseline schema {schema:?}"));
    }
    doc.get("wall_s")
        .and_then(|w| w.get("median"))
        .and_then(Json::as_f64)
        .filter(|m| m.is_finite() && *m > 0.0)
        .ok_or_else(|| "baseline has no positive wall_s.median (cold arm missing?)".into())
}

fn main() -> ExitCode {
    let mut jobs = default_workers();
    let mut warmup = 1usize;
    let mut samples = 5usize;
    let mut out = PathBuf::from("BENCH_perf.json");
    let mut against: Option<PathBuf> = None;
    let mut tolerance = 0.20f64;
    let mut flag_cold = false;
    let mut flag_warm = false;
    let mut cache_dir: Option<PathBuf> = None;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                std::process::exit(2)
            })
        };
        match arg.as_str() {
            "--jobs" => match value("--jobs").parse() {
                Ok(n) if n > 0 => jobs = n,
                _ => {
                    eprintln!("--jobs needs a positive integer");
                    return ExitCode::from(2);
                }
            },
            "--warmup" => match value("--warmup").parse() {
                Ok(n) => warmup = n,
                _ => {
                    eprintln!("--warmup needs an integer");
                    return ExitCode::from(2);
                }
            },
            "--samples" => match value("--samples").parse() {
                Ok(n) if n > 0 => samples = n,
                _ => {
                    eprintln!("--samples needs a positive integer");
                    return ExitCode::from(2);
                }
            },
            "--out" => out = PathBuf::from(value("--out")),
            "--cold" => flag_cold = true,
            "--warm" => flag_warm = true,
            "--cache" => cache_dir = Some(PathBuf::from(value("--cache"))),
            // Same semantics as sweep.rs: undo an earlier scripted
            // --cache (the warm arm falls back to its throwaway temp
            // directory); the last flag wins.
            "--no-cache" => cache_dir = None,
            "--against" => against = Some(PathBuf::from(value("--against"))),
            "--tolerance" => match value("--tolerance").parse::<f64>() {
                Ok(t) if t.is_finite() && t >= 0.0 => tolerance = t,
                _ => {
                    eprintln!("--tolerance needs a non-negative number");
                    return ExitCode::from(2);
                }
            },
            _ => usage(),
        }
    }

    // Read the baseline *before* measuring and writing: `--against` and
    // `--out` may name the same committed file (refresh-in-place), and
    // comparing against bytes we just wrote would make the gate vacuous.
    let baseline = match &against {
        None => None,
        Some(path) => match std::fs::read_to_string(path).map_err(|e| e.to_string()) {
            Ok(text) => match baseline_median_s(&text) {
                Ok(m) => Some(m),
                Err(e) => {
                    eprintln!("bad baseline {}: {e}", path.display());
                    return ExitCode::from(2);
                }
            },
            Err(e) => {
                eprintln!("cannot read baseline {}: {e}", path.display());
                return ExitCode::from(2);
            }
        },
    };

    // Flag semantics: no arm flag (or both) runs both arms.
    let (run_cold, run_warm) = match (flag_cold, flag_warm) {
        (false, false) | (true, true) => (true, true),
        (c, w) => (c, w),
    };
    if baseline.is_some() && !run_cold {
        eprintln!("--against gates the cold median; it needs the cold arm (drop --warm)");
        return ExitCode::from(2);
    }

    let cfg = SweepConfig::reduced();
    let run = |store: Option<&SweepCache>| match run_sweep_cached(&cfg, jobs, store) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("reduced sweep failed: {e}");
            std::process::exit(2)
        }
    };
    // One arm's measurement: `warmup` discarded runs, `samples` timed.
    let measure = |label: &str, store: Option<&SweepCache>| {
        for _ in 0..warmup {
            run(store);
        }
        let mut wall_ns = Vec::with_capacity(samples);
        let mut last = None;
        for i in 0..samples {
            let t0 = Instant::now();
            let rep = run(store);
            let dt = t0.elapsed();
            wall_ns.push(dt.as_secs_f64() * 1e9);
            println!("  {label} sample {}: {:.3} s", i + 1, dt.as_secs_f64());
            last = Some(rep);
        }
        (
            RobustSummary::from_ns(&wall_ns),
            last.expect("samples >= 1"),
        )
    };
    let secs = |ns: f64| ns / 1e9;
    let summarize = |label: &str, s: &RobustSummary| {
        println!(
            "{label} reduced sweep wall time: median {:.3} s \
             (min {:.3}, max {:.3}; {} of {} samples kept)",
            secs(s.median_ns),
            secs(s.min_ns),
            secs(s.max_ns),
            s.n_kept,
            s.n_samples,
        );
    };
    let stats_json = |s: &RobustSummary| {
        let mut wall = Json::obj();
        wall.push("median", secs(s.median_ns))
            .push("mad", secs(s.mad_ns))
            .push("min", secs(s.min_ns))
            .push("max", secs(s.max_ns))
            .push("mean", secs(s.mean_ns))
            .push("kept", s.n_kept);
        wall
    };

    println!(
        "perf: reduced matrix, {jobs} job{}, {warmup} warmup + {samples} samples per arm",
        if jobs == 1 { "" } else { "s" }
    );

    let mut shape = (0usize, 0usize);
    let cold = if run_cold {
        let (s, rep) = measure("cold", None);
        summarize("cold", &s);
        shape = (rep.cells.len(), rep.corun_cells.len());
        Some(s)
    } else {
        None
    };

    // The warm arm measures reruns against a fully-primed cache: an
    // explicit `--cache DIR` persists across invocations, the default is
    // a throwaway directory so the arm always starts from its own prime.
    let mut hit_rate = None;
    let warm = if run_warm {
        let dir = cache_dir.clone().unwrap_or_else(|| {
            std::env::temp_dir().join(format!("unimem-perf-cache-{}", std::process::id()))
        });
        let store = match SweepCache::open(&dir) {
            Ok(store) => store,
            Err(e) => {
                eprintln!("cannot open cache {}: {e}", dir.display());
                return ExitCode::from(2);
            }
        };
        run(Some(&store)); // prime (unmeasured): fills or refreshes the cache
        let (s, rep) = measure("warm", Some(&store));
        summarize("warm", &s);
        shape = (rep.cells.len(), rep.corun_cells.len());
        hit_rate = rep.cache_hit_rate();
        if let Some(rate) = hit_rate {
            println!(
                "warm cache: {}/{} lookups hit ({:.1}%)",
                rep.cache_hits,
                rep.cache_lookups,
                rate * 100.0
            );
        }
        if cache_dir.is_none() {
            std::fs::remove_dir_all(&dir).ok();
        }
        Some(s)
    } else {
        None
    };
    if let (Some(c), Some(w)) = (&cold, &warm) {
        if w.median_ns > 0.0 {
            println!(
                "warm rerun speedup: {:.1}x (cold {:.3} s -> warm {:.3} s)",
                c.median_ns / w.median_ns,
                secs(c.median_ns),
                secs(w.median_ns)
            );
        }
    }

    let arm_json = |arm: &Option<RobustSummary>| match arm {
        Some(s) => stats_json(s),
        None => Json::Null,
    };
    let mut doc = Json::obj();
    doc.push("schema", "unimem-bench-perf/v2")
        .push("matrix", "reduced")
        .push("jobs", jobs)
        .push("warmup", warmup)
        .push("samples", samples)
        .push("n_cells", shape.0)
        .push("n_corun_cells", shape.1)
        .push("wall_s", arm_json(&cold))
        .push("warm_wall_s", arm_json(&warm))
        .push(
            "cache_hit_rate",
            match hit_rate {
                Some(r) => Json::from(r),
                None => Json::Null,
            },
        );
    if let Err(e) = std::fs::write(&out, doc.to_pretty()) {
        eprintln!("cannot write {}: {e}", out.display());
        return ExitCode::from(2);
    }
    println!("wrote {}", out.display());

    if let (Some(base), Some(c)) = (baseline, &cold) {
        let ratio = secs(c.median_ns) / base;
        println!(
            "budget: cold median {:.3} s vs baseline {:.3} s = {:+.1}% (tolerance +{:.0}%)",
            secs(c.median_ns),
            base,
            (ratio - 1.0) * 100.0,
            tolerance * 100.0,
        );
        if ratio > 1.0 + tolerance {
            eprintln!("perf budget exceeded: reduced sweep regressed past the tolerance");
            return ExitCode::FAILURE;
        }
        println!("perf budget ok");
    }
    ExitCode::SUCCESS
}
