//! Evaluation-matrix sweep driver: run workloads × policies × NVM
//! profiles × rank counts, write `BENCH_sweep.json`, and (optionally)
//! judge the result against the paper's claims.
//!
//! ```text
//! cargo run --release --example sweep                      # reduced matrix
//! cargo run --release --example sweep -- --full            # full matrix
//! cargo run --release --example sweep -- --check           # + conformance
//! cargo run --release --example sweep -- --out MY.json
//! cargo run --release --example sweep -- --workloads CG,Nek5000 \
//!     --profiles bw-half,pcram --ranks 1,4 --rpn 1,2 --class C
//! cargo run --release --example sweep -- --full --jobs 8   # worker pool
//! cargo run --release --example sweep -- --mixes LU+MG,FT+BT+MG \
//!     --arbiters fair-share,priority                       # co-run axes
//! cargo run --release --example sweep -- \
//!     --topologies flat,nodes4,mixed:bw-half+pcram         # machine rooms
//! cargo run --release --example sweep -- --cache .sweep-cache  # reuse cells
//! ```
//!
//! `--jobs N` sets the worker-pool width (default: the host's available
//! parallelism). The report is byte-identical for every N — `--jobs 1`
//! reproduces the serial path bit-for-bit.
//!
//! `--check` exits non-zero when any conformance check fails, so the CI
//! job can gate on it. See the README's "Evaluation-matrix sweep" section
//! for the report schema and the tolerance ↔ figure mapping.
//!
//! `--cache DIR` turns on the content-addressed cell cache: finished
//! cells persist under `DIR` and later sweeps containing the same cells
//! load them instead of recomputing (`--no-cache` turns a previously
//! scripted cache off; the last flag wins). The report bytes are
//! byte-identical with or without a cache. `--min-hit-rate F` (0..=1)
//! exits non-zero when the hit rate falls below `F` — the warm-rerun CI
//! job gates on it.

use std::path::PathBuf;
use std::process::ExitCode;
use unimem_repro::bench::sweep::{
    check_contention, check_determinism, check_recovery, check_report, check_weak_scaling,
    default_workers, run_sweep_cached, ArbiterPolicy, NvmProfile, PolicyKind, SweepCache,
    SweepConfig, Tolerances, TopologySpec,
};
use unimem_repro::workloads::{corun, Class};

fn usage() -> ! {
    eprintln!(
        "usage: sweep [--full] [--check] [--out PATH] [--class S|C|D] [--jobs N]\n\
         \x20            [--workloads CSV] [--policies CSV] [--profiles CSV] [--ranks CSV]\n\
         \x20            [--rpn CSV of ranks-per-node] [--mixes CSV of A+B[+C]] [--arbiters CSV]\n\
         \x20            [--topologies CSV of flat|nodesN|mixed:a+b]\n\
         \x20            [--cache DIR] [--no-cache] [--min-hit-rate F]"
    );
    std::process::exit(2)
}

fn parse_csv<T>(arg: &str, what: &str, parse: impl Fn(&str) -> Option<T>) -> Vec<T> {
    arg.split(',')
        .map(|s| {
            parse(s.trim()).unwrap_or_else(|| {
                eprintln!("unknown {what} {s:?}");
                std::process::exit(2)
            })
        })
        .collect()
}

fn main() -> ExitCode {
    let mut cfg = SweepConfig::reduced();
    let mut out = PathBuf::from("BENCH_sweep.json");
    let mut check = false;
    let mut full = false;
    let mut jobs = default_workers();
    let mut cache_dir: Option<PathBuf> = None;
    let mut min_hit_rate: Option<f64> = None;
    let (mut explicit_profiles, mut explicit_ranks, mut explicit_mixes) = (false, false, false);
    let mut explicit_rpn = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| {
            args.next().unwrap_or_else(|| {
                eprintln!("{name} needs a value");
                std::process::exit(2)
            })
        };
        match arg.as_str() {
            "--full" => full = true,
            "--check" => check = true,
            "--out" => out = PathBuf::from(value("--out")),
            "--cache" => cache_dir = Some(PathBuf::from(value("--cache"))),
            "--no-cache" => cache_dir = None,
            "--min-hit-rate" => {
                min_hit_rate = match value("--min-hit-rate").parse::<f64>() {
                    Ok(f) if (0.0..=1.0).contains(&f) => Some(f),
                    _ => {
                        eprintln!("--min-hit-rate needs a fraction in 0..=1");
                        return ExitCode::from(2);
                    }
                }
            }
            "--jobs" => {
                jobs = match value("--jobs").parse() {
                    Ok(n) if n > 0 => n,
                    _ => {
                        eprintln!("--jobs needs a positive integer");
                        return ExitCode::from(2);
                    }
                }
            }
            "--class" => {
                cfg.class = match value("--class").to_ascii_uppercase().as_str() {
                    "S" => Class::S,
                    "C" => Class::C,
                    "D" => Class::D,
                    other => {
                        eprintln!("unknown class {other:?} (use S, C, or D)");
                        return ExitCode::from(2);
                    }
                }
            }
            "--workloads" => {
                cfg.workloads = value("--workloads")
                    .split(',')
                    .map(|s| s.trim().to_string())
                    .collect()
            }
            "--policies" => {
                cfg.policies = parse_csv(&value("--policies"), "policy", PolicyKind::from_name)
            }
            "--profiles" => {
                cfg.profiles = parse_csv(&value("--profiles"), "profile", NvmProfile::parse);
                explicit_profiles = true;
            }
            "--ranks" => {
                cfg.ranks = parse_csv(&value("--ranks"), "rank count", |s| {
                    s.parse().ok().filter(|&r| r > 0)
                });
                explicit_ranks = true;
            }
            "--rpn" => {
                cfg.ranks_per_node = parse_csv(&value("--rpn"), "ranks-per-node", |s| {
                    s.parse().ok().filter(|&r| r > 0)
                });
                explicit_rpn = true;
            }
            "--mixes" => {
                let arg = value("--mixes");
                let specs: Vec<&str> = arg.split(',').map(str::trim).collect();
                cfg.coruns = match corun::parse_mixes(&specs) {
                    Ok(mixes) => mixes,
                    Err(e) => {
                        eprintln!("{e}");
                        return ExitCode::from(2);
                    }
                };
                explicit_mixes = true;
            }
            "--topologies" => {
                cfg.topologies = parse_csv(&value("--topologies"), "topology", |s| {
                    TopologySpec::parse(s)
                })
            }
            "--arbiters" => {
                cfg.arbiters = parse_csv(
                    &value("--arbiters"),
                    "arbitration policy",
                    ArbiterPolicy::parse,
                )
            }
            _ => usage(),
        }
    }
    // `--full` widens only the axes the user did not pin explicitly, so
    // flag order never matters.
    if full {
        if !explicit_profiles {
            cfg.profiles = SweepConfig::full().profiles;
        }
        if !explicit_ranks {
            cfg.ranks = SweepConfig::full().ranks;
        }
        if !explicit_rpn {
            cfg.ranks_per_node = SweepConfig::full().ranks_per_node;
        }
        if !explicit_mixes {
            cfg.coruns = SweepConfig::full().coruns;
        }
    }

    // Canonicalize + dedup workload names up front (run_sweep applies
    // the same helper) so the header and any error land before the
    // matrix runs.
    let canon = {
        let names: Vec<&str> = cfg.workloads.iter().map(String::as_str).collect();
        unimem_repro::workloads::canonicalize_names(&names)
    };
    cfg.workloads = match canon {
        Ok(canon) => canon,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::from(2);
        }
    };
    cfg.normalize_axes();

    println!(
        "sweep: {} workloads x {} policies x {} profiles x {} node layouts = {} cells \
         + {} co-run cells (CLASS {}, {jobs} jobs)",
        cfg.workloads.len(),
        cfg.policies.len(),
        cfg.profiles.len(),
        cfg.rank_layouts().len(),
        cfg.n_cells(),
        cfg.n_corun_cells(),
        cfg.class.name(),
    );

    let store = match cache_dir {
        None => None,
        Some(dir) => match SweepCache::open(&dir) {
            Ok(store) => Some(store),
            Err(e) => {
                eprintln!("cannot open cache {}: {e}", dir.display());
                return ExitCode::from(2);
            }
        },
    };

    let t0 = std::time::Instant::now();
    let report = match run_sweep_cached(&cfg, jobs, store.as_ref()) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("sweep failed: {e}");
            return ExitCode::from(2);
        }
    };

    // Per-(profile, layout) summary: normalized time per policy, averaged
    // over workloads — the shape of the paper's Fig. 9/10 bars, with the
    // packed layouts exposing the contention axis.
    for &profile in &cfg.profiles {
        for &(nranks, rpn) in &cfg.rank_layouts() {
            print!("{:8} r={nranks}x{rpn}:", profile.name());
            for &policy in &cfg.policies {
                let cells: Vec<f64> = report
                    .cells
                    .iter()
                    .filter(|c| {
                        c.profile == profile
                            && c.nranks == nranks
                            && c.ranks_per_node == rpn
                            && c.policy == policy
                            && c.topology == TopologySpec::Flat
                    })
                    .map(|c| c.normalized_to_dram)
                    .collect();
                if !cells.is_empty() {
                    let avg = cells.iter().sum::<f64>() / cells.len() as f64;
                    print!("  {}={avg:.3}", policy.name());
                }
            }
            println!();
        }
    }

    // Clustered machine rooms, one line per (room, profile, rank count).
    for t in &cfg.topologies {
        if *t == TopologySpec::Flat {
            continue;
        }
        for &profile in &cfg.profiles {
            for &nranks in &cfg.ranks {
                let mut header_printed = false;
                for &policy in &cfg.policies {
                    let cells: Vec<f64> = report
                        .cells
                        .iter()
                        .filter(|c| {
                            c.topology == *t
                                && c.profile == profile
                                && c.nranks == nranks
                                && c.policy == policy
                        })
                        .map(|c| c.normalized_to_dram)
                        .collect();
                    if !cells.is_empty() {
                        if !header_printed {
                            print!("{:8} r={nranks}@{}:", profile.name(), t.name());
                            header_printed = true;
                        }
                        let avg = cells.iter().sum::<f64>() / cells.len() as f64;
                        print!("  {}={avg:.3}", policy.name());
                    }
                }
                if header_printed {
                    println!();
                }
            }
        }
    }

    // Per-(mix, profile) co-run summary: per-tenant slowdown vs. solo
    // under each arbitration policy.
    for &profile in &cfg.profiles {
        for mix in &cfg.coruns {
            for &arb in &cfg.arbiters {
                let cells: Vec<_> = report
                    .corun_cells
                    .iter()
                    .filter(|c| c.profile == profile && c.mix == mix.label() && c.arbiter == arb)
                    .collect();
                if cells.is_empty() {
                    continue;
                }
                print!("{:8} {:12} {:11}:", profile.name(), mix.label(), arb.name());
                for c in &cells {
                    print!("  {}={:.3}", c.tenant, c.slowdown);
                }
                println!();
            }
        }
    }

    if let Err(e) = report.write_json(&out) {
        eprintln!("cannot write {}: {e}", out.display());
        return ExitCode::from(2);
    }
    // Surface the width the pool actually ran on: the default is the
    // host's available parallelism, which on a 1-CPU box is 1 — the
    // sweep serializes, and before this line nothing said so.
    println!(
        "wrote {} ({} cells) in {:.2?} on {} worker{}",
        out.display(),
        report.cells.len(),
        t0.elapsed(),
        report.effective_workers,
        if report.effective_workers == 1 {
            " (serial)"
        } else {
            "s"
        }
    );

    if let Some(rate) = report.cache_hit_rate() {
        println!(
            "cache: {}/{} lookups hit ({:.1}%) in {}",
            report.cache_hits,
            report.cache_lookups,
            rate * 100.0,
            store
                .as_ref()
                .map(|s| s.dir().display().to_string())
                .unwrap_or_default(),
        );
    }
    if let Some(min) = min_hit_rate {
        let rate = report.cache_hit_rate().unwrap_or_else(|| {
            eprintln!("--min-hit-rate needs --cache (no lookups happened)");
            std::process::exit(2)
        });
        if rate < min {
            eprintln!("cache hit rate {rate:.3} below required {min:.3}");
            return ExitCode::FAILURE;
        }
    }

    if check {
        // check_report itself reports missing coverage (no unimem cells,
        // absent baselines) as violations, so a slice that cannot judge
        // the claims fails rather than passing vacuously.
        let tol = Tolerances::default();
        let mut violations = check_report(&report, &tol);
        violations.extend(check_determinism(&cfg));
        violations.extend(check_contention(&cfg));
        violations.extend(check_recovery(&cfg, &tol));
        violations.extend(check_weak_scaling(&cfg, &tol));
        if violations.is_empty() {
            println!("conformance: all paper-claim checks passed");
        } else {
            eprintln!("conformance: {} violation(s)", violations.len());
            for v in &violations {
                eprintln!("  {v}");
            }
            return ExitCode::FAILURE;
        }
    }
    ExitCode::SUCCESS
}
