//! Quickstart: the Unimem API (Table 2) over real memory, end to end.
//!
//! Allocates target data objects in the NVM pool, runs an iterative
//! "application" that touches them unevenly, and watches the runtime move
//! the hot objects into the small DRAM pool through the helper thread's
//! FIFO queue — data intact, pointers (handles) still valid.
//!
//! Run with: `cargo run --release --example quickstart`

use unimem_repro::hms::tier::TierKind;
use unimem_repro::runtime::Unimem;
use unimem_repro::sim::Bytes;

fn main() {
    // unimem_init: a machine with 4 MiB of fast DRAM and unbounded NVM.
    let rt = Unimem::init(Bytes::mib(4));

    // unimem_malloc: three target data objects, all born in NVM.
    let hot = rt.malloc("hot_field", Bytes::mib(2));
    let warm = rt.malloc("warm_table", Bytes::mib(2));
    let cold = rt.malloc("cold_archive", Bytes::mib(8));

    // Fill them so we can verify migration preserves contents.
    hot.with_write(|b| {
        b.iter_mut()
            .enumerate()
            .for_each(|(i, x)| *x = (i % 251) as u8)
    });

    rt.start(); // unimem_start: main computation loop begins
    for iter in 0..5 {
        // The "application": sweeps the hot field every iteration, the
        // warm table occasionally, the archive almost never.
        let hot_sum: u64 = hot.with_read(|b| b.iter().map(|&x| x as u64).sum());
        rt.record_access("hot_field", 4 * hot.len() as u64);
        if iter % 2 == 0 {
            rt.record_access("warm_table", warm.len() as u64 / 2);
        }
        rt.record_access("cold_archive", 64);
        rt.end_iteration(); // placement decision + proactive migration
        println!(
            "iter {iter}: hot={:?} warm={:?} cold={:?} (hot checksum {hot_sum})",
            rt.tier_of("hot_field").unwrap(),
            rt.tier_of("warm_table").unwrap(),
            rt.tier_of("cold_archive").unwrap(),
        );
    }
    let (migrations, dram_used) = rt.end(); // unimem_end

    println!("\nmigrations performed: {migrations}");
    println!("DRAM in use: {dram_used}");
    assert_eq!(hot.tier(), TierKind::Dram, "hot object should live in DRAM");
    assert_eq!(cold.tier(), TierKind::Nvm, "cold object should stay in NVM");
    hot.with_read(|b| {
        assert!(b.iter().enumerate().all(|(i, &x)| x == (i % 251) as u8));
    });
    println!("data verified intact after migration — quickstart OK");
}
