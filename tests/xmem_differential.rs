//! Differential tests of the two placement philosophies (X-Mem vs Unimem).
//!
//! X-Mem (Dulloor et al., EuroSys'16) decides once from an offline
//! training profile and never moves data; Unimem re-plans online whenever
//! a phase deviates more than 10% from its running mean (§3.2). These
//! tests pin the *behavioural* contract each side must keep:
//!
//! * X-Mem's static placement never exceeds the per-rank DRAM capacity,
//!   on any workload, machine, or capacity;
//! * a static placement is frozen — zero migrations, zero re-profiles,
//!   however many iterations run;
//! * Unimem's variation monitor re-triggers profiling on Nek5000's drift
//!   (and does not when adaptation is disabled).

use unimem_repro::cache::CacheModel;
use unimem_repro::hms::MachineConfig;
use unimem_repro::runtime::exec::{run_workload, Policy, UnimemConfig};
use unimem_repro::sim::Bytes;
use unimem_repro::workloads::{select, Class, SUITE_NAMES};
use unimem_repro::xmem::{offline_profile, place, xmem_policy};

fn machines() -> Vec<MachineConfig> {
    vec![
        MachineConfig::nvm_bw_fraction(0.5),
        MachineConfig::nvm_lat_multiple(4.0),
    ]
}

/// X-Mem's greedy fill must respect capacity for every workload on every
/// machine, including capacities far below the default 256 MB and the
/// Fig. 13 sweep points.
#[test]
fn xmem_placement_never_exceeds_dram_capacity() {
    let cache = CacheModel::platform_a();
    let nranks = 4;
    for machine in machines() {
        for (name, w) in select(&SUITE_NAMES, Class::C).unwrap() {
            let profiles = offline_profile(w.as_ref(), &cache, nranks);
            for cap_mib in [16u64, 64, 128, 256, 512] {
                let cap = Bytes::mib(cap_mib);
                let chosen = place(&profiles, &machine, cap);
                let total: u64 = chosen
                    .iter()
                    .map(|n| {
                        profiles
                            .iter()
                            .find(|p| &p.name == n)
                            .unwrap_or_else(|| panic!("{name}: placed unknown object {n:?}"))
                            .size
                            .get()
                    })
                    .sum();
                assert!(
                    total <= cap.get(),
                    "{name} at {cap_mib} MiB: placement {total} bytes overcommits"
                );
            }
        }
    }
}

/// A static placement is frozen: the run performs no migrations and never
/// re-profiles, across every iteration of every workload.
#[test]
fn xmem_placement_is_frozen_across_iterations() {
    let cache = CacheModel::platform_a();
    let machine = MachineConfig::nvm_bw_fraction(0.5);
    let nranks = 4;
    for (name, w) in select(&SUITE_NAMES, Class::C).unwrap() {
        let policy = xmem_policy(w.as_ref(), &machine, &cache, nranks);
        let rep = run_workload(w.as_ref(), &machine, &cache, nranks, &policy);
        assert!(
            rep.job.iterations > 1,
            "{name}: needs iterations to freeze over"
        );
        assert_eq!(
            rep.job.migration_count(),
            0,
            "{name}: static placement migrated data"
        );
        assert_eq!(
            rep.job.migrated_bytes(),
            Bytes::ZERO,
            "{name}: static placement moved bytes"
        );
        assert_eq!(
            rep.job.reprofiles, 0,
            "{name}: static placement re-profiled"
        );
        assert!(
            rep.plan_kind.is_none(),
            "{name}: static run reported a plan"
        );
    }
}

/// Unimem re-plans when phase times deviate by more than 10%: Nek5000's
/// drifting access pattern must trigger re-profiling (once per drift
/// step on every rank), and turning `adaptation` off must silence it —
/// leaving X-Mem's frozen-placement deficiency as the only difference.
#[test]
fn unimem_reprofiles_on_nek_drift_only_with_adaptation() {
    let cache = CacheModel::platform_a();
    let machine = MachineConfig::nvm_bw_fraction(0.5);
    let nranks = 4;
    let nek = unimem_repro::workloads::by_name("Nek5000", Class::C).unwrap();

    let adaptive = run_workload(nek.as_ref(), &machine, &cache, nranks, &Policy::unimem());
    assert!(
        adaptive.job.reprofiles > 0,
        "drift produced no re-profiling with adaptation on"
    );

    let frozen_cfg = UnimemConfig {
        adaptation: false,
        ..UnimemConfig::default()
    };
    let frozen = run_workload(
        nek.as_ref(),
        &machine,
        &cache,
        nranks,
        &Policy::Unimem(frozen_cfg),
    );
    assert_eq!(
        frozen.job.reprofiles, 0,
        "re-profiling fired with adaptation disabled"
    );
    // Adaptation must pay for itself on the drifting pattern.
    assert!(
        adaptive.time().secs() <= frozen.time().secs(),
        "adaptive {:.4}s slower than frozen {:.4}s on Nek5000",
        adaptive.time().secs(),
        frozen.time().secs()
    );
}

/// A stable workload must not spuriously trigger the 10% monitor: CG's
/// phase times repeat, so adaptation stays quiet there.
#[test]
fn stable_workload_does_not_reprofile() {
    let cache = CacheModel::platform_a();
    let machine = MachineConfig::nvm_bw_fraction(0.5);
    let cg = unimem_repro::workloads::by_name("CG", Class::C).unwrap();
    let rep = run_workload(cg.as_ref(), &machine, &cache, 4, &Policy::unimem());
    assert_eq!(rep.job.reprofiles, 0, "CG is steady; monitor must not fire");
}
