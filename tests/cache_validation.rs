//! Validate the analytic LLC miss model against the set-associative LRU
//! trace simulator on miniature instances of every access pattern.
//!
//! The analytic model drives all class-scale experiments; these tests pin
//! its error against a ground-truth simulator in the regimes the placement
//! decisions depend on: fully-fitting (≈0 misses), fully-overflowing
//! streaming (1 miss per line), and capacity-limited random access
//! (miss ratio ≈ 1 − cache/working-set).

use unimem_repro::cache::trace::generate;
use unimem_repro::cache::{AccessPattern, CacheModel, ObjAccess, SetAssocCache};
use unimem_repro::hms::object::ObjId;
use unimem_repro::sim::{Bytes, DetRng};

/// Measure steady-state miss count: one warm-up pass, then one measured
/// replay of the same trace.
fn simulate(pattern: AccessPattern, span: Bytes, n: usize, cache_bytes: Bytes, seed: u64) -> u64 {
    let mut rng = DetRng::seed(seed);
    let trace = generate(pattern, 0, span, n, &mut rng);
    let mut sim = SetAssocCache::new(cache_bytes, Bytes(64), 8);
    for &a in &trace {
        sim.access(a);
    }
    sim.reset_stats();
    for &a in &trace {
        sim.access(a);
    }
    sim.misses()
}

fn analytic(pattern: AccessPattern, span: Bytes, n: usize, cache_bytes: Bytes) -> u64 {
    let model = CacheModel::new(cache_bytes);
    let acc = ObjAccess::new(ObjId(0), n as u64, span, pattern);
    model.misses(&acc, span).misses
}

#[test]
fn fitting_working_sets_agree_on_zero_steady_state() {
    let cache = Bytes::kib(512);
    let span = Bytes::kib(128);
    for pattern in [
        AccessPattern::Streaming { stride: Bytes(8) },
        AccessPattern::Random,
        AccessPattern::PointerChase,
    ] {
        let sim = simulate(pattern, span, 50_000, cache, 1);
        let ana = analytic(pattern, span, 50_000, cache);
        assert!(
            sim <= 500,
            "{}: simulator reports {sim} steady-state misses for a fitting set",
            pattern.name()
        );
        assert_eq!(ana, 0, "{}: analytic model", pattern.name());
    }
}

#[test]
fn overflowing_stream_misses_once_per_line_in_both_models() {
    let cache = Bytes::kib(64);
    let span = Bytes::kib(1024); // 16x the cache
    let n = 262_144; // two full traversals at 8-byte stride
    let sim = simulate(
        AccessPattern::Streaming { stride: Bytes(8) },
        span,
        n,
        cache,
        2,
    );
    let ana = analytic(
        AccessPattern::Streaming { stride: Bytes(8) },
        span,
        n,
        cache,
    );
    // Expected: one miss per 64-byte line per traversal = n/8.
    let expected = (n / 8) as f64;
    assert!(
        (sim as f64 - expected).abs() / expected < 0.02,
        "simulator {sim} vs expected {expected}"
    );
    assert!(
        (ana as f64 - expected).abs() / expected < 0.02,
        "analytic {ana} vs expected {expected}"
    );
}

#[test]
fn random_miss_ratio_tracks_capacity_fraction() {
    let n = 200_000;
    let span = Bytes::kib(1024);
    for cache_kib in [128u64, 256, 512] {
        let cache = Bytes::kib(cache_kib);
        let sim = simulate(AccessPattern::Random, span, n, cache, 3) as f64 / n as f64;
        let ana = analytic(AccessPattern::Random, span, n, cache) as f64 / n as f64;
        // Both should approximate 1 − cache/span; agree within 10 points.
        let expected = 1.0 - cache_kib as f64 / 1024.0;
        assert!(
            (sim - expected).abs() < 0.10,
            "cache {cache_kib}K: simulator ratio {sim:.3} vs {expected:.3}"
        );
        assert!(
            (ana - sim).abs() < 0.10,
            "cache {cache_kib}K: analytic {ana:.3} vs simulator {sim:.3}"
        );
    }
}

#[test]
fn pointer_chase_behaves_like_random_for_misses() {
    // Same capacity-miss structure, different (serialized) timing — the
    // miss model treats them alike; only MLP differs.
    let n = 100_000;
    let span = Bytes::kib(512);
    let cache = Bytes::kib(128);
    let chase = simulate(AccessPattern::PointerChase, span, n, cache, 4) as f64;
    let random = simulate(AccessPattern::Random, span, n, cache, 4) as f64;
    assert!(
        (chase - random).abs() / random < 0.15,
        "chase {chase} vs random {random}"
    );
}

#[test]
fn analytic_model_is_within_band_across_mixed_regimes() {
    // Sweep span/cache ratios for random access; the analytic prediction
    // must stay within 12 percentage points of the simulator everywhere.
    let n = 120_000;
    let cache = Bytes::kib(256);
    for span_kib in [64u64, 256, 512, 1024, 2048] {
        let span = Bytes::kib(span_kib);
        let sim = simulate(AccessPattern::Random, span, n, cache, 5) as f64 / n as f64;
        let ana = analytic(AccessPattern::Random, span, n, cache) as f64 / n as f64;
        assert!(
            (ana - sim).abs() < 0.12,
            "span {span_kib}K: analytic {ana:.3} vs simulator {sim:.3}"
        );
    }
}
