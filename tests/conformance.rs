//! Paper-claim conformance on the reduced evaluation matrix (tier-1).
//!
//! Runs the same reduced matrix as `cargo run --release --example sweep`
//! (CLASS C, 4 ranks, both emulation-anchor NVM profiles, all 7 workloads
//! × all 4 policies) and asserts the claims of Figs. 9/10 and Table 4:
//!
//! * Unimem tracks DRAM-only within the documented tolerance,
//! * Unimem never loses to NVM-only (beyond runtime-overhead slack),
//! * Unimem beats the X-Mem static placement on Nek5000's drift,
//! * pure runtime cost stays within the paper's bound,
//! * reports are byte-identical across repeated multi-threaded runs,
//! * co-run cells exist and satisfy the tenant-QoS claim: under
//!   `priority` arbitration a weighted tenant never degrades more than
//!   its best-effort peers.
//!
//! The sweep runs once (OnceLock) and every test interrogates the shared
//! report, so the suite's cost stays one reduced matrix.

use std::sync::OnceLock;
use unimem_repro::bench::sweep::{
    check_determinism, check_report, run_sweep, NvmProfile, PolicyKind, SweepConfig, SweepReport,
    Tolerances,
};
use unimem_repro::sim::Json;

fn reduced() -> &'static SweepReport {
    static REPORT: OnceLock<SweepReport> = OnceLock::new();
    REPORT.get_or_init(|| run_sweep(&SweepConfig::reduced()).expect("reduced matrix runs"))
}

#[test]
fn reduced_matrix_has_full_coverage() {
    let rep = reduced();
    let cfg = &rep.config;
    assert!(
        cfg.policies.len() >= 6,
        "matrix covers the whole policy registry"
    );
    assert!(
        cfg.workloads.len() >= 5,
        "matrix covers at least five workloads"
    );
    assert_eq!(rep.cells.len(), cfg.n_cells(), "no cell silently dropped");
    assert!(
        cfg.rank_layouts().iter().any(|&(_, rpn)| rpn >= 2),
        "reduced matrix exercises a packed node layout"
    );
    // Every coordinate is actually present.
    for &profile in &cfg.profiles {
        for &(nranks, rpn) in &cfg.rank_layouts() {
            for w in &cfg.workloads {
                for &policy in &cfg.policies {
                    assert!(
                        rep.get(w, policy, profile, nranks, rpn).is_some(),
                        "missing cell {w}/{}/r{nranks}x{rpn}/{}",
                        profile.name(),
                        policy.name()
                    );
                }
            }
        }
    }
}

#[test]
fn paper_claims_hold_on_reduced_matrix() {
    let violations = check_report(reduced(), &Tolerances::default());
    assert!(
        violations.is_empty(),
        "paper-claim violations:\n{}",
        violations
            .iter()
            .map(|v| format!("  {v}"))
            .collect::<Vec<_>>()
            .join("\n")
    );
}

/// The acceptance-level inequalities, asserted directly (not only through
/// the checker) so a bug in the checker's scoping cannot mask a miss.
/// They hold at every node layout — packed nodes (shared bandwidth,
/// contended migration traffic) included.
#[test]
fn unimem_between_dram_and_nvm_and_beats_xmem_on_nek() {
    let rep = reduced();
    let tol = Tolerances::default();
    for &profile in &rep.config.profiles {
        for &(nranks, rpn) in &rep.config.rank_layouts() {
            for w in &rep.config.workloads {
                let t = |policy| {
                    rep.get(w, policy, profile, nranks, rpn)
                        .unwrap_or_else(|| panic!("cell {w}/{}", profile.name()))
                        .time_s()
                };
                let (uni, dram, nvm) = (
                    t(PolicyKind::Unimem),
                    t(PolicyKind::DramOnly),
                    t(PolicyKind::NvmOnly),
                );
                // The nvm-win claim holds everywhere, packed nodes included.
                assert!(
                    uni <= nvm * tol.nvm_win,
                    "{w}/{}/r{nranks}x{rpn}: unimem {uni:.4}s loses to nvm-only {nvm:.4}s",
                    profile.name()
                );
                // DRAM tracking is the paper's claim at its one-rank-per-node
                // setup; shared bandwidth amplifies the NVM bottleneck, so
                // packed layouts are out of its scope (see docs/CONFORMANCE.md).
                if rpn == 1 {
                    assert!(
                        uni <= dram * tol.dram_tracking,
                        "{w}/{}/r{nranks}: unimem {uni:.4}s exceeds dram-only {dram:.4}s x {}",
                        profile.name(),
                        tol.dram_tracking
                    );
                    // Placement-philosophy ordering (v4 axis): phase-aware
                    // planning ≤ phase-blind interval guidance ≤ never
                    // promoting, each within slack.
                    let online = t(PolicyKind::OnlineGuidance);
                    assert!(
                        uni <= online * tol.policy_ordering,
                        "{w}/{}/r{nranks}: unimem {uni:.4}s loses to online-guidance {online:.4}s",
                        profile.name()
                    );
                    assert!(
                        online <= nvm * tol.policy_ordering,
                        "{w}/{}/r{nranks}: online-guidance {online:.4}s loses to nvm-only {nvm:.4}s",
                        profile.name()
                    );
                }
            }
            if rpn == 1 {
                let nek_uni = rep
                    .get("Nek5000", PolicyKind::Unimem, profile, nranks, rpn)
                    .unwrap();
                let nek_xmem = rep
                    .get("Nek5000", PolicyKind::Xmem, profile, nranks, rpn)
                    .unwrap();
                assert!(
                    nek_uni.time_s() <= nek_xmem.time_s() * tol.xmem_drift,
                    "Nek5000/{}/r{nranks}: unimem {:.4}s loses to xmem {:.4}s on the drifting pattern",
                    profile.name(),
                    nek_uni.time_s(),
                    nek_xmem.time_s()
                );
            }
        }
    }
}

/// The contention acceptance criteria, asserted directly: packed nodes
/// run slower than spread ones for the same job, at least one packed
/// Unimem cell is measurably slowed by *neighbor* migration traffic, and
/// migration-free DRAM-only cells are byte-identical with the helper
/// contention model on and off.
#[test]
fn packed_nodes_contend_and_dram_only_is_invariant() {
    use unimem_repro::bench::sweep::check_contention;

    let rep = reduced();
    // Packed DRAM-only baselines are slower: two ranks share one node's
    // bandwidth instead of having a node each.
    for &profile in &rep.config.profiles {
        let t = |rpn| {
            rep.get("CG", PolicyKind::DramOnly, profile, 4, rpn)
                .expect("baseline cell")
                .time_s()
        };
        assert!(
            t(2) > t(1),
            "{}: packing 2 ranks per node did not slow CG down",
            profile.name()
        );
    }
    // Neighbor helper traffic measurably slowed a co-located rank.
    let evidence = rep
        .cells
        .iter()
        .filter(|c| c.policy == PolicyKind::Unimem && c.ranks_per_node >= 2)
        .map(|c| c.report.job.neighbor_contention_time.secs())
        .fold(0.0f64, f64::max);
    assert!(
        evidence > 0.0,
        "no packed Unimem cell shows neighbor-induced contention"
    );
    // DRAM-only invariance probe (byte-level, per profile).
    let violations = check_contention(&rep.config);
    assert!(violations.is_empty(), "{violations:?}");
}

#[test]
fn runtime_cost_bounded_and_nek_adapts() {
    let rep = reduced();
    let tol = Tolerances::default();
    for cell in rep.cells.iter().filter(|c| c.policy == PolicyKind::Unimem) {
        let cost = cell.report.job.pure_runtime_cost();
        assert!(
            cost <= tol.max_runtime_cost,
            "{}: pure runtime cost {cost:.4} above the Table-4 bound",
            cell.coords()
        );
    }
    // The drifting workload must actually exercise adaptation.
    let nek = rep
        .get("Nek5000", PolicyKind::Unimem, NvmProfile::BwHalf, 4, 1)
        .unwrap();
    assert!(
        nek.report.job.reprofiles > 0,
        "Nek5000 drift produced no re-profiling"
    );
}

/// Satellite: same seed + same config ⇒ byte-identical `RunReport` JSON
/// across two runs at `nranks = 4`. The ranks execute on real threads;
/// any host-scheduling leak into the virtual clock or the stats merge
/// shows up as a byte difference here.
#[test]
fn run_report_json_is_byte_identical_across_runs_at_4_ranks() {
    use unimem_repro::cache::CacheModel;
    use unimem_repro::runtime::exec::{run_workload, Policy};
    use unimem_repro::workloads::{by_name, Class};

    let machine = NvmProfile::BwHalf.machine();
    let cache = CacheModel::platform_a();
    for name in ["CG", "Nek5000"] {
        let w = by_name(name, Class::C).unwrap();
        let a = run_workload(w.as_ref(), &machine, &cache, 4, &Policy::unimem());
        let b = run_workload(w.as_ref(), &machine, &cache, 4, &Policy::unimem());
        assert_eq!(
            a.to_json().to_pretty(),
            b.to_json().to_pretty(),
            "{name}: repeated 4-rank runs serialized differently"
        );
    }
    // And through the checker's own probe (covers the sweep path).
    let det = check_determinism(&SweepConfig::reduced());
    assert!(det.is_empty(), "{det:?}");
}

/// The co-run acceptance inequalities, asserted directly (not only
/// through the checker): every tenant cell exists, no tenant beats its
/// solo run beyond slack, and under priority arbitration the weighted
/// tenant's slowdown stays within tolerance of every best-effort peer's.
#[test]
fn corun_cells_present_and_priority_tenants_protected() {
    use unimem_repro::bench::sweep::ArbiterPolicy;

    let rep = reduced();
    let cfg = &rep.config;
    assert!(
        !cfg.coruns.is_empty(),
        "reduced matrix carries a co-run mix"
    );
    assert_eq!(cfg.arbiters.len(), 3, "all three arbitration policies run");
    assert_eq!(
        rep.corun_cells.len(),
        cfg.n_corun_cells(),
        "no co-run cell silently dropped"
    );
    let tol = Tolerances::default();
    for c in &rep.corun_cells {
        assert!(
            c.slowdown >= tol.corun_sanity,
            "{}: arbitrated run beats solo ({:.4})",
            c.coords(),
            c.slowdown
        );
        assert!(c.lease_max >= c.lease_min);
    }
    for hi in rep
        .corun_cells
        .iter()
        .filter(|c| c.arbiter == ArbiterPolicy::Priority && c.weight > 1)
    {
        for lo in rep.corun_cells.iter().filter(|c| {
            c.arbiter == ArbiterPolicy::Priority
                && c.weight == 1
                && c.mix == hi.mix
                && c.profile == hi.profile
                && c.nranks == hi.nranks
        }) {
            assert!(
                hi.slowdown <= lo.slowdown * tol.tenant_qos,
                "{}: priority tenant slowdown {:.4} exceeds best-effort {} ({:.4})",
                hi.coords(),
                hi.slowdown,
                lo.tenant,
                lo.slowdown
            );
        }
    }
    // Contention is real: some tenant somewhere actually slowed down, and
    // the staggered clocks produced lease movement with re-plans.
    assert!(
        rep.corun_cells.iter().any(|c| c.slowdown > 1.001),
        "no co-run tenant slowed down; the mix does not contend"
    );
    assert!(
        rep.corun_cells
            .iter()
            .any(|c| c.report.job.lease_replans > 0),
        "no lease re-plans; the arbiter never moved a lease"
    );
}

#[test]
fn sweep_json_matches_schema() {
    let j = reduced().to_json();
    assert_eq!(
        j.get("schema").and_then(Json::as_str),
        Some("unimem-bench-sweep/v5")
    );
    // v5: the topology axis is emitted only off the flat default, so
    // the reduced (flat-only) report must not carry it.
    assert!(j.get("topologies").is_none());
    // v3: the node-layout axis (v4 only widened the policy vocabulary).
    assert!(j
        .get("ranks_per_node")
        .and_then(Json::as_arr)
        .is_some_and(|r| !r.is_empty()));
    let cells = j.get("cells").and_then(Json::as_arr).expect("cells array");
    assert_eq!(
        cells.len() as f64,
        j.get("n_cells").and_then(Json::as_f64).unwrap()
    );
    for c in cells {
        for key in [
            "workload",
            "policy",
            "profile",
            "nranks",
            "ranks_per_node",
            "time_s",
            "normalized_to_dram",
            "migration_count",
            "migrated_bytes",
            "overlap_pct",
            "contention_time_s",
            "neighbor_contention_time_s",
            "pure_runtime_cost",
            "reprofiles",
        ] {
            assert!(c.get(key).is_some(), "cell missing {key:?}: {c}");
        }
        // A cell that never migrated must not claim an overlap figure.
        if c.get("migration_count").and_then(Json::as_f64) == Some(0.0) {
            assert_eq!(
                c.get("overlap_pct"),
                Some(&Json::Null),
                "migration-free cell claims an overlap figure: {c}"
            );
        }
        let run = c.get("run").expect("embedded RunReport");
        assert!(run.get("job").is_some());
        let nranks = c.get("nranks").and_then(Json::as_f64).unwrap() as usize;
        assert_eq!(
            run.get("per_rank")
                .and_then(Json::as_arr)
                .map(<[Json]>::len),
            Some(nranks)
        );
    }
    // v2: the co-run section.
    let corun = j
        .get("corun_cells")
        .and_then(Json::as_arr)
        .expect("corun_cells array");
    assert_eq!(
        corun.len() as f64,
        j.get("n_corun_cells").and_then(Json::as_f64).unwrap()
    );
    assert!(j
        .get("mixes")
        .and_then(Json::as_arr)
        .is_some_and(|m| !m.is_empty()));
    assert!(j
        .get("arbiters")
        .and_then(Json::as_arr)
        .is_some_and(|a| !a.is_empty()));
    for c in corun {
        for key in [
            "mix",
            "workload",
            "tenant",
            "weight",
            "start_epoch",
            "arbiter",
            "profile",
            "nranks",
            "time_s",
            "solo_time_s",
            "slowdown",
            "lease_min",
            "lease_max",
            "lease_replans",
        ] {
            assert!(c.get(key).is_some(), "co-run cell missing {key:?}: {c}");
        }
        assert!(c.get("run").and_then(|r| r.get("job")).is_some());
    }
}
