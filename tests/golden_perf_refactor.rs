//! Refactor guard for the PR-9 hot-path work: the sharded bandwidth
//! ledger, the lock-free job queue, the in-place rank scheduler, and the
//! arena-backed object registry must not move a single byte of the
//! committed `BENCH_sweep.json`.
//!
//! The sweep's output is virtual-time and schedule-independent by
//! construction; these rewrites touch exactly the machinery that could
//! break that — cross-thread visibility in the ledger, job ordering in
//! the queue, name storage in the registry. So the guard is maximal:
//! regenerate the reduced matrix on the serial path (`--jobs 1`) and on
//! a wide pool (`--jobs 8`, oversubscribed on small hosts on purpose)
//! and require both to equal the committed baseline byte-for-byte.

use unimem_repro::bench::sweep::{run_sweep_cached, run_sweep_jobs, SweepCache, SweepConfig};

const GOLDEN: &str = include_str!("../BENCH_sweep.json");

fn assert_matches_golden(jobs: usize) {
    let report = run_sweep_jobs(&SweepConfig::reduced(), jobs).expect("reduced sweep runs");
    let got = report.to_json().to_pretty();
    if got != GOLDEN {
        let line = got
            .lines()
            .zip(GOLDEN.lines())
            .position(|(a, b)| a != b)
            .map(|i| i + 1);
        panic!(
            "reduced sweep at {jobs} job(s) diverges from the committed \
             BENCH_sweep.json ({} vs {} bytes; first differing line: \
             {line:?}) — the hot-path refactor changed simulated behavior",
            got.len(),
            GOLDEN.len(),
        );
    }
}

#[test]
fn serial_path_reproduces_the_committed_sweep_bytes() {
    assert_matches_golden(1);
}

#[test]
fn wide_pool_reproduces_the_committed_sweep_bytes() {
    assert_matches_golden(8);
}

/// The PR-10 reuse layer under the same maximal guard: a cold cached run
/// and a fully-warm rerun of the reduced matrix must both reproduce the
/// committed bytes exactly — on a warm run every cell is reconstructed
/// from disk, so this exercises the full-fidelity (de)serialization of
/// every cell the golden file contains.
#[test]
fn cached_runs_reproduce_the_committed_sweep_bytes() {
    let dir = std::env::temp_dir().join(format!("unimem-golden-cache-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let store = SweepCache::open(&dir).expect("cache opens");
    let cfg = SweepConfig::reduced();

    let cold = run_sweep_cached(&cfg, 1, Some(&store)).expect("cold cached sweep runs");
    assert_eq!(cold.cache_hits, 0, "cold cache cannot hit");
    assert_eq!(
        cold.to_json().to_pretty(),
        GOLDEN,
        "cold cached run diverges from the committed BENCH_sweep.json"
    );

    let warm = run_sweep_cached(&cfg, 1, Some(&store)).expect("warm cached sweep runs");
    assert_eq!(
        warm.cache_hits, warm.cache_lookups,
        "a rerun of the identical matrix must answer every lookup from disk"
    );
    assert_eq!(
        warm.to_json().to_pretty(),
        GOLDEN,
        "warm (all-cells-from-disk) run diverges from the committed BENCH_sweep.json"
    );
    std::fs::remove_dir_all(&dir).ok();
}
