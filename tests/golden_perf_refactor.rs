//! Refactor guard for the PR-9 hot-path work: the sharded bandwidth
//! ledger, the lock-free job queue, the in-place rank scheduler, and the
//! arena-backed object registry must not move a single byte of the
//! committed `BENCH_sweep.json`.
//!
//! The sweep's output is virtual-time and schedule-independent by
//! construction; these rewrites touch exactly the machinery that could
//! break that — cross-thread visibility in the ledger, job ordering in
//! the queue, name storage in the registry. So the guard is maximal:
//! regenerate the reduced matrix on the serial path (`--jobs 1`) and on
//! a wide pool (`--jobs 8`, oversubscribed on small hosts on purpose)
//! and require both to equal the committed baseline byte-for-byte.

use unimem_repro::bench::sweep::{run_sweep_jobs, SweepConfig};

const GOLDEN: &str = include_str!("../BENCH_sweep.json");

fn assert_matches_golden(jobs: usize) {
    let report = run_sweep_jobs(&SweepConfig::reduced(), jobs).expect("reduced sweep runs");
    let got = report.to_json().to_pretty();
    if got != GOLDEN {
        let line = got
            .lines()
            .zip(GOLDEN.lines())
            .position(|(a, b)| a != b)
            .map(|i| i + 1);
        panic!(
            "reduced sweep at {jobs} job(s) diverges from the committed \
             BENCH_sweep.json ({} vs {} bytes; first differing line: \
             {line:?}) — the hot-path refactor changed simulated behavior",
            got.len(),
            GOLDEN.len(),
        );
    }
}

#[test]
fn serial_path_reproduces_the_committed_sweep_bytes() {
    assert_matches_golden(1);
}

#[test]
fn wide_pool_reproduces_the_committed_sweep_bytes() {
    assert_matches_golden(8);
}
