//! Cross-crate integration tests: the full pipeline from workload scripts
//! through profiling, modeling, placement and enforcement, under every
//! policy, with the paper's headline claims as assertions (at test scale).

use unimem_repro::cache::CacheModel;
use unimem_repro::hms::MachineConfig;
use unimem_repro::runtime::exec::{run_workload, Policy, UnimemConfig};
use unimem_repro::sim::Bytes;
use unimem_repro::workloads::{by_name, npb_and_nek, Class};
use unimem_repro::xmem::xmem_policy;

fn paper_machine() -> MachineConfig {
    MachineConfig::nvm_bw_fraction(0.5)
}

#[test]
fn unimem_never_loses_to_nvm_only_across_suite() {
    let cache = CacheModel::platform_a();
    let m = paper_machine();
    for w in npb_and_nek(Class::C) {
        let nvm = run_workload(w.as_ref(), &m, &cache, 4, &Policy::NvmOnly).time();
        let uni = run_workload(w.as_ref(), &m, &cache, 4, &Policy::unimem()).time();
        assert!(
            uni.secs() <= nvm.secs() * 1.005,
            "{}: Unimem {:.3}s vs NVM-only {:.3}s",
            w.name(),
            uni.secs(),
            nvm.secs()
        );
    }
}

#[test]
fn unimem_stays_within_paper_band_of_dram_only() {
    // Paper §5: ≤10% gap in all basic tests; we allow a wider band for FT
    // (see EXPERIMENTS.md for the capacity-arithmetic argument).
    let cache = CacheModel::platform_a();
    let m = paper_machine();
    for w in npb_and_nek(Class::C) {
        let dram = run_workload(w.as_ref(), &m, &cache, 4, &Policy::DramOnly).time();
        let uni = run_workload(w.as_ref(), &m, &cache, 4, &Policy::unimem()).time();
        let gap = uni.secs() / dram.secs() - 1.0;
        let band = if w.name().starts_with("FT") {
            0.20
        } else {
            0.14
        };
        assert!(
            gap <= band,
            "{}: Unimem gap {:.1}% exceeds {:.0}%",
            w.name(),
            gap * 100.0,
            band * 100.0
        );
    }
}

#[test]
fn pure_runtime_cost_stays_below_three_percent() {
    // Table 4: "Unimem has very small runtime overhead (less than 3%)".
    let cache = CacheModel::platform_a();
    let m = paper_machine();
    for w in npb_and_nek(Class::C) {
        let rep = run_workload(w.as_ref(), &m, &cache, 4, &Policy::unimem());
        assert!(
            rep.job.pure_runtime_cost() < 0.03,
            "{}: pure runtime cost {:.2}%",
            w.name(),
            rep.job.pure_runtime_cost() * 100.0
        );
    }
}

#[test]
fn migration_overlap_is_substantial_where_migrations_happen() {
    // Table 4: 60–100% of movement overlapped.
    let cache = CacheModel::platform_a();
    let m = paper_machine();
    for w in npb_and_nek(Class::C) {
        let rep = run_workload(w.as_ref(), &m, &cache, 4, &Policy::unimem());
        if rep.job.migration_count() > 0 {
            let pct = rep
                .job
                .overlap_pct()
                .expect("runs with migrations report an overlap figure");
            assert!(
                pct >= 50.0,
                "{}: only {pct:.0}% of movement overlapped",
                w.name()
            );
        }
    }
}

#[test]
fn nek_migrates_most_mg_least() {
    // Table 4 shape: Nek5000 migrates by far the most (drift), MG the
    // least (alias-blocked giants).
    let cache = CacheModel::platform_a();
    let m = paper_machine();
    let count = |name: &str| {
        let w = by_name(name, Class::C).unwrap();
        run_workload(w.as_ref(), &m, &cache, 4, &Policy::unimem())
            .job
            .migration_count()
    };
    let nek = count("NEK");
    let mg = count("MG");
    let bt = count("BT");
    assert!(nek > bt, "nek={nek} bt={bt}");
    assert!(bt > mg, "bt={bt} mg={mg}");
}

#[test]
fn unimem_beats_xmem_on_nek_and_matches_elsewhere() {
    let cache = CacheModel::platform_a();
    let m = paper_machine();
    // Drift case: strictly better.
    let nek = by_name("NEK", Class::C).unwrap();
    let xm = xmem_policy(nek.as_ref(), &m, &cache, 4);
    let t_xm = run_workload(nek.as_ref(), &m, &cache, 4, &xm).time();
    let t_uni = run_workload(nek.as_ref(), &m, &cache, 4, &Policy::unimem()).time();
    assert!(t_uni.secs() < t_xm.secs());
    // Stable case: within a few percent either way.
    let lu = by_name("LU", Class::C).unwrap();
    let xm = xmem_policy(lu.as_ref(), &m, &cache, 4);
    let t_xm = run_workload(lu.as_ref(), &m, &cache, 4, &xm).time();
    let t_uni = run_workload(lu.as_ref(), &m, &cache, 4, &Policy::unimem()).time();
    assert!((t_uni.secs() / t_xm.secs() - 1.0).abs() < 0.08);
}

#[test]
fn ablation_rungs_never_hurt_much_and_help_somewhere() {
    let cache = CacheModel::platform_a();
    let m = paper_machine();
    for name in ["SP", "FT"] {
        let w = by_name(name, Class::C).unwrap();
        let times: Vec<f64> = (1..=4u8)
            .map(|r| {
                run_workload(
                    w.as_ref(),
                    &m,
                    &cache,
                    4,
                    &Policy::Unimem(UnimemConfig::ablation(r)),
                )
                .time()
                .secs()
            })
            .collect();
        // Full system no worse than 5% above the best rung, and the best
        // rung beats rung 1 on at least one of these benchmarks.
        let best = times.iter().cloned().fold(f64::MAX, f64::min);
        assert!(times[3] <= best * 1.05, "{name}: {times:?}");
    }
}

#[test]
fn strong_scaling_stays_close_to_dram() {
    // Fig. 12: Unimem within ~7% of DRAM-only at every scale.
    let cache = CacheModel::platform_a();
    let m = MachineConfig::edison_numa();
    let cg = by_name("CG", Class::D).unwrap();
    for nranks in [4usize, 16] {
        let dram = run_workload(cg.as_ref(), &m, &cache, nranks, &Policy::DramOnly).time();
        let uni = run_workload(cg.as_ref(), &m, &cache, nranks, &Policy::unimem()).time();
        let gap = uni.secs() / dram.secs() - 1.0;
        assert!(gap < 0.10, "{nranks} ranks: gap {:.1}%", gap * 100.0);
    }
}

#[test]
fn runs_are_bit_deterministic_across_repeats() {
    let cache = CacheModel::platform_a();
    let m = paper_machine();
    let w = by_name("BT", Class::S).unwrap();
    let m = m.with_dram_capacity(Bytes::mib(2));
    let a = run_workload(w.as_ref(), &m, &cache, 4, &Policy::unimem());
    let b = run_workload(w.as_ref(), &m, &cache, 4, &Policy::unimem());
    assert_eq!(a.time().secs(), b.time().secs());
    assert_eq!(a.job.migrations, b.job.migrations);
    for (ra, rb) in a.per_rank.iter().zip(&b.per_rank) {
        assert_eq!(ra.total_time.secs(), rb.total_time.secs());
    }
}

#[test]
fn dram_size_sweep_is_monotone_for_capacity_bound_workloads() {
    // Fig. 13: more DRAM never hurts.
    let cache = CacheModel::platform_a();
    let w = by_name("MG", Class::C).unwrap();
    let mut last = f64::MAX;
    for mb in [128u64, 256, 512] {
        let m = paper_machine().with_dram_capacity(Bytes::mib(mb));
        let t = run_workload(w.as_ref(), &m, &cache, 4, &Policy::unimem())
            .time()
            .secs();
        assert!(
            t <= last * 1.01,
            "MG slower with more DRAM: {mb} MB gives {t:.3}s vs {last:.3}s"
        );
        last = t;
    }
}

#[test]
fn latency_config_hurts_latency_sensitive_codes_more() {
    // Observation 3 at suite level: CG (gather/chase) suffers more under
    // 4x latency than under 1/2 bandwidth; FT (streams) the other way.
    let cache = CacheModel::platform_a();
    let slowdown = |name: &str, m: &MachineConfig| {
        let w = by_name(name, Class::C).unwrap();
        let d = run_workload(w.as_ref(), m, &cache, 4, &Policy::DramOnly).time();
        let n = run_workload(w.as_ref(), m, &cache, 4, &Policy::NvmOnly).time();
        n.secs() / d.secs()
    };
    let bw = MachineConfig::nvm_bw_fraction(0.5);
    let lat = MachineConfig::nvm_lat_multiple(4.0);
    assert!(slowdown("CG", &lat) > slowdown("CG", &bw));
    assert!(slowdown("FT", &bw) > slowdown("FT", &lat));
}
