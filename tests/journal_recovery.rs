//! Journal/recovery edge cases over a real workload: empty journals,
//! crashes landing exactly on a fence epoch, crashes mid-first-copy,
//! and torn final records. Each case must still recover to a run
//! byte-identical to the uninterrupted one — the crash-consistency
//! contract has no easy inputs.

use unimem_repro::cache::CacheModel;
use unimem_repro::hms::journal::{read_journal, DurabilityMode, Record, ReplayedState};
use unimem_repro::runtime::exec::Policy;
use unimem_repro::runtime::recovery::RecoverySetup;
use unimem_repro::sim::{CrashSpec, VTime};
use unimem_repro::workloads::{select, Class};

struct Rig {
    machine: unimem_repro::hms::MachineConfig,
    cache: CacheModel,
    policy: Policy,
    workload: Box<dyn unimem_repro::runtime::Workload>,
}

impl Rig {
    fn new() -> Rig {
        let mut selection = select(&["CG"], Class::C).expect("CG selects");
        Rig {
            machine: unimem_repro::hms::MachineConfig::nvm_bw_fraction(0.5),
            cache: CacheModel::platform_a(),
            policy: Policy::unimem(),
            workload: selection.remove(0).1,
        }
    }

    fn setup(&self) -> RecoverySetup<'_> {
        RecoverySetup {
            workload: self.workload.as_ref(),
            machine: &self.machine,
            cache: &self.cache,
            nranks: 2,
            policy: &self.policy,
        }
    }
}

#[test]
fn empty_journals_recover_by_running_from_scratch() {
    let rig = Rig::new();
    let s = rig.setup();
    let clean = s.run_journaled(DurabilityMode::Strict);
    // Nothing durable at all — recovery must degenerate to a clean run.
    let rec = s.recover(DurabilityMode::Strict, &[Vec::new(), Vec::new()]);
    assert_eq!(
        rec.report.to_json().to_pretty(),
        clean.report.to_json().to_pretty()
    );
    assert_eq!(rec.journals, clean.journals);
    for sum in &rec.summaries {
        assert_eq!(sum.records, 0, "an empty journal replays nothing");
        assert_eq!(sum.replayed_observes, 0);
        assert_eq!(sum.comm_mismatches, 0);
    }
}

#[test]
fn crash_exactly_at_a_fence_epoch_recovers_the_committed_prefix() {
    let rig = Rig::new();
    let s = rig.setup();
    let clean = s.run_journaled(DurabilityMode::Buffered);
    // A commit instant straight from rank 0's journal: the knife-edge
    // case where the crash lands on the epoch boundary itself.
    let st = ReplayedState::replay(&clean.journals[0]);
    let (gen, commit_at) = st
        .last_commit()
        .expect("a multi-iteration run commits epochs");
    let mid_gen = *st.commits.keys().nth(st.commits.len() / 2).unwrap();
    let mid_at = st.commits[&mid_gen];
    assert!(gen >= mid_gen && commit_at >= mid_at);

    let out = s.crash_and_recover(
        DurabilityMode::Buffered,
        CrashSpec::at(VTime(mid_at)),
        &clean,
    );
    assert!(out.equivalent(), "fence-epoch crash must recover cleanly");
    // The epoch committed at exactly the crash instant is durable
    // (its flush completes at the fence), later ones are not.
    for sum in &out.summaries {
        let last = sum.last_commit.expect("committed epochs survive");
        assert!(last <= mid_gen, "epoch {last} committed after the crash");
    }
}

#[test]
fn crash_during_the_first_migration_resumes_the_torn_copy() {
    let rig = Rig::new();
    let s = rig.setup();
    let clean = s.run_journaled(DurabilityMode::Strict);
    // Find the first migration either rank enqueued and crash midway
    // through its copy window: the intent record is durable (appended
    // before the copy starts), the copy itself is torn.
    let first = clean
        .journals
        .iter()
        .flat_map(|j| {
            let st = ReplayedState::replay(j);
            st.migrations.values().cloned().collect::<Vec<_>>()
        })
        .min_by(|a, b| a.start.total_cmp(&b.start))
        .expect("Unimem migrates on this workload");
    assert!(first.done > first.start);
    let mid = VTime(0.5 * (first.start + first.done));

    let out = s.crash_and_recover(DurabilityMode::Strict, CrashSpec::at(mid), &clean);
    assert!(out.equivalent(), "mid-copy crash must recover cleanly");
    // At least one rank's durable journal shows the copy in flight at
    // the crash instant — the recovery path had a torn copy to redo.
    let in_flight = clean.journals.iter().any(|j| {
        let durable = unimem_repro::hms::journal::durable_prefix(
            j,
            DurabilityMode::Strict,
            CrashSpec::at(mid),
        );
        !ReplayedState::replay(&durable).in_flight_at(mid).is_empty()
    });
    assert!(in_flight, "crash point missed the migration window");
}

#[test]
fn torn_final_record_is_detected_and_discarded() {
    let rig = Rig::new();
    let s = rig.setup();
    let clean = s.run_journaled(DurabilityMode::Strict);
    let st_full = ReplayedState::replay(&clean.journals[0]);
    // Crash midway with a torn in-flight record on the medium.
    let crash = CrashSpec::torn(VTime(st_full.last_at * 0.5));

    // The torn fragment parses as garbage-free: replay sees only whole
    // frames and reports the discarded tail.
    let durable = unimem_repro::hms::journal::durable_prefix(
        &clean.journals[0],
        DurabilityMode::Strict,
        crash,
    );
    let st = ReplayedState::replay(&durable);
    assert!(st.torn_bytes_discarded > 0, "the tear left no fragment");
    let (records, torn) = read_journal(&durable);
    assert_eq!(torn, st.torn_bytes_discarded);
    assert!(!records.is_empty());

    let out = s.crash_and_recover(DurabilityMode::Strict, crash, &clean);
    assert!(out.equivalent(), "torn-record crash must recover cleanly");
    assert!(
        out.summaries.iter().any(|s| s.torn_bytes_discarded > 0),
        "recovery should report the discarded fragment"
    );
}

#[test]
fn replaying_a_journal_twice_changes_nothing() {
    let rig = Rig::new();
    let s = rig.setup();
    let clean = s.run_journaled(DurabilityMode::Strict);
    for journal in &clean.journals {
        let once = ReplayedState::replay(journal);
        let mut twice = ReplayedState::replay(journal);
        for (rec, at) in read_journal(journal).0 {
            twice.apply(&rec, at);
        }
        assert_eq!(once, twice, "replay must be idempotent");
    }
}

#[test]
fn header_records_identify_the_run() {
    let rig = Rig::new();
    let s = rig.setup();
    let clean = s.run_journaled(DurabilityMode::InMemory);
    for (rank, journal) in clean.journals.iter().enumerate() {
        let st = ReplayedState::replay(journal);
        let (r, n, iters) = st.header.expect("run header first");
        assert_eq!(r as usize, rank);
        assert_eq!(n, 2);
        assert!(iters > 0);
        assert!(!st.objects.is_empty(), "object table journaled");
        // The first record in the byte stream is the header itself.
        let (records, _) = read_journal(journal);
        assert!(matches!(records[0].0, Record::RunHeader { .. }));
    }
}
