//! Refactor guard for the placement-policy extraction: the four legacy
//! policies, regenerated through the `PlacementPolicy` trait machinery,
//! must reproduce the pre-refactor `BENCH_sweep.json` byte-for-byte.
//!
//! `tests/golden/BENCH_sweep_v3.json` is the committed v3 baseline —
//! the reduced matrix as emitted by the enum-dispatch implementation
//! the trait replaced. Restricting today's reduced matrix to the same
//! four policies must produce the same bytes (modulo only the schema
//! tag, which moved to v4 when the axis widened). Any drift here means
//! the refactor changed simulated behavior, not just code structure.

use unimem_repro::bench::sweep::{run_sweep_jobs, PolicyKind, SweepConfig};

#[test]
fn legacy_policies_reproduce_the_v3_golden_bytes() {
    let mut cfg = SweepConfig::reduced();
    cfg.policies = vec![
        PolicyKind::Unimem,
        PolicyKind::Xmem,
        PolicyKind::DramOnly,
        PolicyKind::NvmOnly,
    ];
    let report = run_sweep_jobs(&cfg, 4).expect("reduced legacy sweep runs");
    let mut got = report.to_json().to_pretty();

    // The only sanctioned difference: the schema tag. v4 changed the
    // axis vocabulary and v5 added the (off-by-default) topology axis;
    // neither touched any per-cell byte.
    let swapped = got.replacen("unimem-bench-sweep/v5", "unimem-bench-sweep/v3", 1);
    assert!(swapped != got, "schema tag missing from the report");
    got = swapped;

    let golden = include_str!("golden/BENCH_sweep_v3.json");
    if got != golden {
        let line = got
            .lines()
            .zip(golden.lines())
            .position(|(a, b)| a != b)
            .map(|i| i + 1);
        panic!(
            "regenerated report diverges from the v3 golden baseline \
             ({} vs {} bytes; first differing line: {line:?}) — the \
             policy refactor changed simulated behavior",
            got.len(),
            golden.len(),
        );
    }
}
