//! Refactor guards for the cluster-topology tentpole: the machine-room
//! code paths must be invisible where they are not asked for, and do
//! exactly what the scheduler contract promises where they are.
//!
//! Four claims pinned here:
//!
//! 1. **Flat ≡ single room** — `run_workload` (the legacy flat entry
//!    point) and `run_workload_clustered` on a one-node
//!    `ClusterSpec::homogeneous` room produce byte-identical
//!    `RunReport` JSON. The clustered driver is a strict
//!    generalization, not a parallel implementation that happens to
//!    agree.
//! 2. **Pooled ≡ serial** — scheduling ranks on the `sim::pool` worker
//!    pool is byte-invisible regardless of worker count.
//! 3. **Hierarchical ≡ flat collectives** — `hier_reduce` through any
//!    rank→node placement is bitwise-equal to the flat `reduce` for
//!    every `ReduceOp` (property-tested); only *timing* may differ
//!    across topologies, never values.
//! 4. **Scheduler contract** — `ClusterTopology::scheduled` places the
//!    bandwidth-hungry tenant on the fastest-NVM node of a mixed room
//!    regardless of caller order, and the 64-rank weak-scaling probe
//!    (paper Fig. 12 shape) passes under the default tolerances.

use proptest::prelude::*;
use unimem_repro::bench::sweep::NvmProfile;
use unimem_repro::cache::CacheModel;
use unimem_repro::hms::topology::{ClusterSpec, ClusterTopology, PlacementIntent, TenantDemand};
use unimem_repro::runtime::exec::{
    run_workload, run_workload_clustered, run_workload_pooled, Policy,
};
use unimem_repro::workloads::{select, Class};

/// The one (workload, machine, cache) tuple the identity tests share:
/// CG touches every collective kind and Class S keeps each run cheap.
fn rig() -> (
    Box<dyn unimem_repro::runtime::Workload>,
    unimem_repro::hms::MachineConfig,
    CacheModel,
) {
    let mut selection = select(&["CG"], Class::S).expect("CG is known");
    let (_, w) = selection.remove(0);
    let machine = NvmProfile::BwHalf.machine().with_ranks_per_node(4);
    (w, machine, CacheModel::platform_a())
}

#[test]
fn flat_run_is_byte_identical_to_a_single_room_clustered_run() {
    let (w, machine, cache) = rig();
    for policy in [Policy::DramOnly, Policy::unimem()] {
        let flat = run_workload(w.as_ref(), &machine, &cache, 4, &policy);
        let room = ClusterSpec::homogeneous(machine.clone(), 1, 4);
        let topo = ClusterTopology::contiguous(room, 4);
        let clustered = run_workload_clustered(w.as_ref(), &topo, &cache, &policy);
        assert_eq!(
            flat.to_json().to_pretty(),
            clustered.to_json().to_pretty(),
            "single-room clustered run diverged from the flat driver ({policy:?})"
        );
    }
}

#[test]
fn pooled_rank_execution_is_byte_identical_across_worker_counts() {
    let (w, machine, cache) = rig();
    let policy = Policy::unimem();
    let serial = run_workload_pooled(w.as_ref(), &machine, &cache, 16, &policy, Some(1));
    let pooled = run_workload_pooled(w.as_ref(), &machine, &cache, 16, &policy, Some(4));
    assert_eq!(
        serial.to_json().to_pretty(),
        pooled.to_json().to_pretty(),
        "worker count leaked into the simulated timeline"
    );
}

#[test]
fn scheduler_places_the_bandwidth_hungry_tenant_on_the_fastest_nvm_node() {
    use unimem_repro::hms::MachineConfig;

    // A two-node mixed room: Table-1 PCRAM (slow NVM reads) next to the
    // bw-half anchor (NVM at ½ DRAM bandwidth — much faster).
    let machines: Vec<MachineConfig> =
        vec![NvmProfile::Pcram.machine(), NvmProfile::BwHalf.machine()];
    let spec = ClusterSpec::mixed(machines, 4);

    // The hungry tenant comes *second* in caller order: the scheduler
    // must still serve it first. Rank ids stay in caller order, so the
    // background tenant owns ranks 0..4 and the stream tenant 4..8.
    let tenants = [
        TenantDemand {
            label: "background".into(),
            ranks: 4,
            bw_hungry: false,
        },
        TenantDemand {
            label: "stream".into(),
            ranks: 4,
            bw_hungry: true,
        },
    ];
    let topo = ClusterTopology::scheduled(spec, &tenants, PlacementIntent::Pack);

    let fastest = topo.fastest_nvm_node();
    assert_eq!(fastest, 1, "bw-half NVM must outrun Table-1 PCRAM");
    for rank in 4..8 {
        assert_eq!(
            topo.node_of(rank),
            fastest,
            "bandwidth-hungry rank {rank} was not packed onto the fastest-NVM node"
        );
    }
    for rank in 0..4 {
        assert_ne!(
            topo.node_of(rank),
            fastest,
            "background rank {rank} displaced the hungry tenant"
        );
    }
}

#[test]
fn weak_scaling_probe_passes_at_64_ranks_under_default_tolerances() {
    use unimem_repro::bench::sweep::{check_weak_scaling, SweepConfig, Tolerances};

    // The probe reads only the first workload/profile; trimming the
    // config keeps this independent of future axis growth.
    let mut cfg = SweepConfig::reduced();
    cfg.workloads.truncate(1);
    cfg.profiles.truncate(1);
    let violations = check_weak_scaling(&cfg, &Tolerances::default());
    assert!(
        violations.is_empty(),
        "Fig. 12 weak-scaling shape violated: {violations:?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// `hier_reduce` must be a *timing* refactor only: for every
    /// reduction op and every rank→node placement, the values it hands
    /// each rank are bitwise-equal to the flat single-switch `reduce`.
    #[test]
    fn hier_reduce_is_bitwise_equal_to_flat_reduce(
        contrib in prop::collection::vec(
            prop::collection::vec(-1e6f64..1e6, 0..5),
            1..9,
        ),
        node_seed in prop::collection::vec(0usize..4, 9..10),
        op_pick in 0usize..4,
        root_seed in 0usize..8,
    ) {
        use unimem_repro::mpi::{hier_reduce, reduce, RankPlacement, ReduceOp};

        let nranks = contrib.len();
        let op = match op_pick {
            0 => ReduceOp::Sum,
            1 => ReduceOp::Max,
            2 => ReduceOp::TakeRoot(root_seed % nranks),
            _ => ReduceOp::AllToAll,
        };
        // Arbitrary placement with no gaps: remap the seed's node ids
        // onto a dense 0..n range in first-seen order.
        let mut dense: Vec<usize> = Vec::new();
        let node_of: Vec<usize> = node_seed[..nranks]
            .iter()
            .map(|&n| {
                if let Some(i) = dense.iter().position(|&d| d == n) {
                    i
                } else {
                    dense.push(n);
                    dense.len() - 1
                }
            })
            .collect();
        let placement = RankPlacement::from_node_of(node_of);

        let flat = reduce(&contrib, op, nranks);
        let hier = hier_reduce(&contrib, op, &placement);
        prop_assert_eq!(flat.len(), hier.len());
        for (rank, (f, h)) in flat.iter().zip(&hier).enumerate() {
            let fb: Vec<u64> = f.iter().map(|x| x.to_bits()).collect();
            let hb: Vec<u64> = h.iter().map(|x| x.to_bits()).collect();
            prop_assert_eq!(&fb, &hb, "rank {} values drifted", rank);
        }
    }
}
