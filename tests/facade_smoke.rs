//! Smoke test for the `unimem_repro` façade: every re-exported module must
//! resolve, and one load-bearing symbol per crate must be usable. Catches
//! manifest regressions (a crate dropped from the workspace or the façade)
//! at tier-1 before anything deeper runs.

use unimem_repro::{bench, cache, hms, mpi, perf, runtime, sim, workloads, xmem};

#[test]
fn facade_reexports_resolve() {
    // sim — units and deterministic RNG.
    let cap = sim::Bytes::mib(64);
    assert_eq!(cap.get(), 64 << 20);
    let mut rng = sim::DetRng::seed(7);
    assert_eq!(rng.u64(), sim::DetRng::seed(7).u64());

    // hms — tiering substrate.
    let m = hms::MachineConfig::nvm_bw_fraction(0.5);
    assert!(m.nvm.read_bw.bytes_per_s() < m.dram.read_bw.bytes_per_s());
    let _ = hms::TierKind::Dram;

    // cache — analytic model.
    let model = cache::CacheModel::new(sim::Bytes::kib(512));
    let acc = cache::ObjAccess::new(
        hms::object::ObjId(0),
        1_000,
        sim::Bytes::kib(64),
        cache::AccessPattern::Random,
    );
    assert!(model.misses(&acc, acc.touched).misses <= 1_000);

    // mpi — virtual-clock world.
    let ranks = mpi::CommWorld::run(2, mpi::NetParams::default(), |ctx| ctx.rank());
    assert_eq!(ranks, vec![0, 1]);

    // perf — Eq. 1 bandwidth estimate is finite and non-negative.
    let bw = perf::eq1_bandwidth(1_000, 50, 100, sim::VDur::from_millis(1.0));
    assert!(bw.is_finite() && bw >= 0.0);

    // runtime (core) — knapsack solver.
    let items = vec![
        runtime::knapsack::Item {
            weight: 5.0,
            size: sim::Bytes(10),
        },
        runtime::knapsack::Item {
            weight: 3.0,
            size: sim::Bytes(20),
        },
    ];
    let (chosen, w) = runtime::knapsack::solve(&items, sim::Bytes(15));
    assert_eq!(chosen, vec![0]);
    assert!((w - 5.0).abs() < 1e-12);

    // workloads — the NPB suite is populated.
    let w = workloads::by_name("CG", workloads::Class::S).expect("CG.S exists");
    assert_eq!(w.name(), "CG.S");

    // xmem + bench — baseline policy and harness helpers link.
    let cachem = cache::CacheModel::new(sim::Bytes::kib(512));
    let _policy = xmem::xmem_policy(w.as_ref(), &m, &cachem, 1);
    let _cache_from_bench = bench::cache();
}
