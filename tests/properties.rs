//! Property-based tests on the core invariants (proptest).

use proptest::prelude::*;
use unimem_repro::hms::alloc::SpaceAllocator;
use unimem_repro::hms::migration::MigrationEngine;
use unimem_repro::hms::object::{ObjId, UnitId};
use unimem_repro::hms::tier::TierKind;
use unimem_repro::runtime::knapsack::{granule_for, solve, solve_exhaustive, Item};
use unimem_repro::sim::{Bandwidth, Bytes, DetRng, VDur, VTime};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The DP knapsack matches exhaustive search on every small instance.
    #[test]
    fn knapsack_matches_exhaustive(
        weights in prop::collection::vec(-5.0f64..10.0, 1..10),
        sizes in prop::collection::vec(1u64..200, 1..10),
        cap in 1u64..600,
    ) {
        let n = weights.len().min(sizes.len());
        let items: Vec<Item> = (0..n)
            .map(|i| Item { weight: weights[i], size: Bytes(sizes[i]) })
            .collect();
        let (chosen, w_dp) = solve(&items, Bytes(cap));
        let (_, w_ex) = solve_exhaustive(&items, Bytes(cap));
        prop_assert!((w_dp - w_ex).abs() < 1e-9, "dp {w_dp} vs exhaustive {w_ex}");
        // Chosen set must fit and produce the reported weight.
        let total: u64 = chosen.iter().map(|&i| items[i].size.get()).sum();
        prop_assert!(total <= cap);
        let sum: f64 = chosen.iter().map(|&i| items[i].weight).sum();
        prop_assert!((sum - w_dp).abs() < 1e-9);
    }

    /// The allocator never overcommits, never hands out overlapping
    /// regions, and free+coalesce restores a fully usable arena.
    #[test]
    fn allocator_invariants(ops in prop::collection::vec((1u64..64, any::<bool>()), 1..60)) {
        let cap = 512u64;
        let mut a = SpaceAllocator::new(Bytes(cap));
        let mut live: Vec<unimem_repro::hms::alloc::Region> = Vec::new();
        for (size, free_one) in ops {
            if free_one && !live.is_empty() {
                let r = live.swap_remove(live.len() / 2);
                a.free(r);
            } else if let Some(r) = a.alloc(Bytes(size)) {
                live.push(r);
            }
            // Invariants after every operation.
            let used: u64 = live.iter().map(|r| r.len).sum();
            prop_assert_eq!(a.allocated().get(), used);
            prop_assert!(used <= cap);
            let mut sorted = live.clone();
            sorted.sort_by_key(|r| r.offset);
            for w in sorted.windows(2) {
                prop_assert!(w[0].offset + w[0].len <= w[1].offset, "overlap");
            }
        }
        for r in live.drain(..) {
            a.free(r);
        }
        prop_assert_eq!(a.allocated(), Bytes(0));
        prop_assert_eq!(a.largest_free_run(), Bytes(cap));
    }

    /// Migration accounting conserves bytes and overlap+exposed equals the
    /// total copy time, whatever the enqueue/require interleaving.
    #[test]
    fn migration_engine_conserves_time(
        sizes in prop::collection::vec(1u64..(64 << 20), 1..20),
        req_offsets in prop::collection::vec(0.0f64..0.2, 1..20),
    ) {
        let mut e = MigrationEngine::new(Bandwidth::gb_per_s(2.0));
        let mut now = VTime::ZERO;
        let n = sizes.len().min(req_offsets.len());
        for i in 0..n {
            let unit = UnitId::whole(ObjId(i as u32));
            let dir = if i % 2 == 0 { TierKind::Dram } else { TierKind::Nvm };
            e.enqueue(unit, dir, Bytes(sizes[i]), now);
            now += VDur::from_secs(req_offsets[i]);
            let _ = e.require(unit, now);
        }
        let stats = e.stats();
        prop_assert_eq!(stats.bytes.get(), sizes[..n].iter().sum::<u64>());
        let total_copy: f64 = sizes[..n].iter().map(|&s| s as f64 / 2e9).sum();
        let accounted = stats.overlapped.secs() + stats.exposed.secs();
        prop_assert!((accounted - total_copy).abs() < 1e-6,
            "overlap {} + exposed {} != copies {}", stats.overlapped.secs(), stats.exposed.secs(), total_copy);
    }

    /// Binomial sampling never exceeds its population and is deterministic
    /// per seed.
    #[test]
    fn binomial_bounds(n in 0u64..5_000_000, p in 0.0f64..1.0, seed in any::<u64>()) {
        let mut r1 = DetRng::seed(seed);
        let mut r2 = DetRng::seed(seed);
        let a = r1.binomial(n, p);
        let b = r2.binomial(n, p);
        prop_assert_eq!(a, b);
        prop_assert!(a <= n);
    }

    /// Virtual time arithmetic is monotone: adding durations never moves a
    /// clock backwards; `since` never goes negative.
    #[test]
    fn vtime_monotonicity(steps in prop::collection::vec(0.0f64..1e3, 1..50)) {
        let mut t = VTime::ZERO;
        let mut prev = t;
        for s in steps {
            t += VDur::from_secs(s);
            prop_assert!(t.secs() >= prev.secs());
            prop_assert!(t.since(prev).secs() >= 0.0);
            prev = t;
        }
    }

    /// The analytic cache model never reports more misses than accesses
    /// and is monotone in cache size.
    #[test]
    fn cache_model_bounds(
        accesses in 1u64..10_000_000,
        touched_kib in 1u64..262_144,
        cache_kib in 1u64..32_768,
        pattern_sel in 0u8..5,
    ) {
        use unimem_repro::cache::{AccessPattern, CacheModel, ObjAccess};
        let pattern = match pattern_sel {
            0 => AccessPattern::Streaming { stride: Bytes(8) },
            1 => AccessPattern::Random,
            2 => AccessPattern::PointerChase,
            3 => AccessPattern::Gather { index_span: Bytes::kib(touched_kib * 2) },
            _ => AccessPattern::Stencil { reuse_bytes: Bytes::kib(touched_kib / 4) },
        };
        let acc = ObjAccess::new(ObjId(0), accesses, Bytes::kib(touched_kib), pattern);
        let small = CacheModel::new(Bytes::kib(cache_kib));
        let big = CacheModel::new(Bytes::kib(cache_kib * 4));
        let m_small = small.misses(&acc, acc.touched);
        let m_big = big.misses(&acc, acc.touched);
        prop_assert!(m_small.misses <= accesses);
        prop_assert!(m_big.misses <= m_small.misses,
            "bigger cache produced more misses: {} vs {}", m_big.misses, m_small.misses);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The DP knapsack agrees with brute-force enumeration on every
    /// instance of up to 12 items, with sizes spanning byte, KiB and MiB
    /// magnitudes in one instance (the `prop_oneof!` union) so granule
    /// rounding, zero-weight filtering and the empty instance all get
    /// exercised. Complements `knapsack_matches_exhaustive` above, which
    /// stays within one narrow size magnitude.
    #[test]
    fn knapsack_dp_matches_bruteforce_upto_12_items(
        spec in prop::collection::vec(
            (
                -4.0f64..8.0,
                prop_oneof![1u64..64, 1024u64..65_536, 1_048_576u64..16_777_216],
            ),
            0..13,
        ),
        cap_sel in prop_oneof![1u64..256, 4096u64..262_144, 1_048_576u64..67_108_864],
    ) {
        let items: Vec<Item> = spec
            .iter()
            .map(|&(weight, size)| Item { weight, size: Bytes(size) })
            .collect();
        let cap = Bytes(cap_sel);
        let (chosen, w_dp) = solve(&items, cap);
        // The DP quantizes capacity into granules, rounding item sizes
        // *up* (never overcommitting): it solves the instance whose sizes
        // are ceil(size/granule) against capacity floor(cap/granule), and
        // must be exactly optimal there. For granule == 1 this is the
        // original instance.
        let granule = granule_for(cap);
        let rounded: Vec<Item> = items
            .iter()
            .map(|i| Item { weight: i.weight, size: Bytes(i.size.get().div_ceil(granule)) })
            .collect();
        let (_, w_gr) = solve_exhaustive(&rounded, Bytes(cap.get() / granule));
        prop_assert!(
            (w_dp - w_gr).abs() < 1e-9,
            "dp {w_dp} vs granule-exact exhaustive {w_gr} (granule {granule})"
        );
        // And it never beats the unquantized optimum.
        let (_, w_ex) = solve_exhaustive(&items, cap);
        prop_assert!(w_dp <= w_ex + 1e-9, "dp {w_dp} beats exhaustive {w_ex}?");
        // Whatever the DP chose must genuinely fit and add up.
        let total: u64 = chosen.iter().map(|&i| items[i].size.get()).sum();
        prop_assert!(total <= cap.get(), "overcommitted {total} > {}", cap.get());
        let sum: f64 = chosen.iter().map(|&i| items[i].weight).sum();
        prop_assert!((sum - w_dp).abs() < 1e-9);
        prop_assert!(chosen.iter().all(|&i| items[i].weight > 0.0));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Trigger windows are always dependency-safe: no phase inside the
    /// window references the migrated unit.
    #[test]
    fn trigger_windows_respect_dependencies(
        n_phases in 2usize..8,
        ref_mask in prop::collection::vec(any::<bool>(), 2..8),
    ) {
        use unimem_repro::runtime::deps::PhaseRefTable;
        use unimem_repro::mpi::PhaseId;
        let n = n_phases.min(ref_mask.len());
        let unit = UnitId::whole(ObjId(0));
        let mut t = PhaseRefTable::new(n);
        let mut any_ref = false;
        for (p, &referenced) in ref_mask.iter().enumerate().take(n) {
            if referenced {
                t.add_ref(PhaseId(p as u32), unit);
                any_ref = true;
            }
        }
        prop_assume!(any_ref);
        for p in 0..n {
            if !ref_mask[p] { continue; }
            let w = t.trigger_for(unit, PhaseId(p as u32));
            // Every phase strictly inside (trigger .. use) must not
            // reference the unit.
            for k in 0..w.overlap_phases {
                let q = ((w.trigger.0 + k) as usize) % n;
                prop_assert!(!ref_mask[q],
                    "phase {q} references unit inside window (use {p}, trigger {})", w.trigger.0);
            }
        }
    }
}
