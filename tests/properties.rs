//! Property-based tests on the core invariants (proptest).

use proptest::prelude::*;
use unimem_repro::hms::alloc::SpaceAllocator;
use unimem_repro::hms::migration::MigrationEngine;
use unimem_repro::hms::object::{ObjId, UnitId};
use unimem_repro::hms::tier::TierKind;
use unimem_repro::runtime::knapsack::{granule_for, solve, solve_exhaustive, Item};
use unimem_repro::sim::{Bandwidth, Bytes, DetRng, VDur, VTime};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// The DP knapsack matches exhaustive search on every small instance.
    #[test]
    fn knapsack_matches_exhaustive(
        weights in prop::collection::vec(-5.0f64..10.0, 1..10),
        sizes in prop::collection::vec(1u64..200, 1..10),
        cap in 1u64..600,
    ) {
        let n = weights.len().min(sizes.len());
        let items: Vec<Item> = (0..n)
            .map(|i| Item { weight: weights[i], size: Bytes(sizes[i]) })
            .collect();
        let (chosen, w_dp) = solve(&items, Bytes(cap));
        let (_, w_ex) = solve_exhaustive(&items, Bytes(cap));
        prop_assert!((w_dp - w_ex).abs() < 1e-9, "dp {w_dp} vs exhaustive {w_ex}");
        // Chosen set must fit and produce the reported weight.
        let total: u64 = chosen.iter().map(|&i| items[i].size.get()).sum();
        prop_assert!(total <= cap);
        let sum: f64 = chosen.iter().map(|&i| items[i].weight).sum();
        prop_assert!((sum - w_dp).abs() < 1e-9);
    }

    /// The allocator never overcommits, never hands out overlapping
    /// regions, and free+coalesce restores a fully usable arena.
    #[test]
    fn allocator_invariants(ops in prop::collection::vec((1u64..64, any::<bool>()), 1..60)) {
        let cap = 512u64;
        let mut a = SpaceAllocator::new(Bytes(cap));
        let mut live: Vec<unimem_repro::hms::alloc::Region> = Vec::new();
        for (size, free_one) in ops {
            if free_one && !live.is_empty() {
                let r = live.swap_remove(live.len() / 2);
                a.free(r);
            } else if let Some(r) = a.alloc(Bytes(size)) {
                live.push(r);
            }
            // Invariants after every operation.
            let used: u64 = live.iter().map(|r| r.len).sum();
            prop_assert_eq!(a.allocated().get(), used);
            prop_assert!(used <= cap);
            let mut sorted = live.clone();
            sorted.sort_by_key(|r| r.offset);
            for w in sorted.windows(2) {
                prop_assert!(w[0].offset + w[0].len <= w[1].offset, "overlap");
            }
        }
        for r in live.drain(..) {
            a.free(r);
        }
        prop_assert_eq!(a.allocated(), Bytes(0));
        prop_assert_eq!(a.largest_free_run(), Bytes(cap));
    }

    /// Migration accounting conserves bytes and overlap+exposed equals the
    /// total copy time, whatever the enqueue/require interleaving.
    #[test]
    fn migration_engine_conserves_time(
        sizes in prop::collection::vec(1u64..(64 << 20), 1..20),
        req_offsets in prop::collection::vec(0.0f64..0.2, 1..20),
    ) {
        let mut e = MigrationEngine::with_copy_bw(Bandwidth::gb_per_s(2.0));
        let mut now = VTime::ZERO;
        let n = sizes.len().min(req_offsets.len());
        for i in 0..n {
            let unit = UnitId::whole(ObjId(i as u32));
            let dir = if i % 2 == 0 { TierKind::Dram } else { TierKind::Nvm };
            e.enqueue(unit, dir, Bytes(sizes[i]), now);
            now += VDur::from_secs(req_offsets[i]);
            let _ = e.require(unit, now);
        }
        let stats = e.stats();
        prop_assert_eq!(stats.bytes.get(), sizes[..n].iter().sum::<u64>());
        let total_copy: f64 = sizes[..n].iter().map(|&s| s as f64 / 2e9).sum();
        let accounted = stats.overlapped.secs() + stats.exposed.secs();
        prop_assert!((accounted - total_copy).abs() < 1e-6,
            "overlap {} + exposed {} != copies {}", stats.overlapped.secs(), stats.exposed.secs(), total_copy);
    }

    /// A single migration record's accounting invariant holds for every
    /// ordering of (enqueued, start, done, required_at): the copy time
    /// splits exactly into overlapped + exposed, both non-negative, with
    /// requirements before the copy start fully exposed.
    #[test]
    fn mig_record_overlap_partitions_duration(
        enqueued in 0.0f64..10.0,
        start_off in 0.0f64..10.0,
        dur in 0.0f64..10.0,
        has_required in any::<bool>(),
        required_raw in 0.0f64..30.0,
    ) {
        let required = has_required.then_some(required_raw);
        use unimem_repro::hms::migration::MigRecord;
        let start = VTime(enqueued + start_off);
        let rec = MigRecord {
            unit: UnitId::whole(ObjId(0)),
            to: TierKind::Dram,
            bytes: Bytes(1),
            enqueued: VTime(enqueued),
            start,
            done: start + VDur(dur),
            required_at: required.map(VTime),
        };
        let (ov, ex, total) = (rec.overlapped(), rec.exposed(), rec.duration());
        prop_assert!(ov.secs() >= 0.0 && ex.secs() >= 0.0);
        prop_assert!((ov.secs() + ex.secs() - total.secs()).abs() < 1e-12,
            "overlapped {} + exposed {} != duration {}", ov, ex, total);
        match required {
            None => prop_assert_eq!(ov, total, "never-required copies are fully hidden"),
            Some(req) if req <= rec.start.secs() =>
                prop_assert_eq!(ex, total, "required before start must be fully exposed"),
            Some(req) if req >= rec.done.secs() =>
                prop_assert_eq!(ov, total, "required after completion is fully hidden"),
            _ => {}
        }
    }

    /// Binomial sampling never exceeds its population and is deterministic
    /// per seed.
    #[test]
    fn binomial_bounds(n in 0u64..5_000_000, p in 0.0f64..1.0, seed in any::<u64>()) {
        let mut r1 = DetRng::seed(seed);
        let mut r2 = DetRng::seed(seed);
        let a = r1.binomial(n, p);
        let b = r2.binomial(n, p);
        prop_assert_eq!(a, b);
        prop_assert!(a <= n);
    }

    /// Virtual time arithmetic is monotone: adding durations never moves a
    /// clock backwards; `since` never goes negative.
    #[test]
    fn vtime_monotonicity(steps in prop::collection::vec(0.0f64..1e3, 1..50)) {
        let mut t = VTime::ZERO;
        let mut prev = t;
        for s in steps {
            t += VDur::from_secs(s);
            prop_assert!(t.secs() >= prev.secs());
            prop_assert!(t.since(prev).secs() >= 0.0);
            prev = t;
        }
    }

    /// The analytic cache model never reports more misses than accesses
    /// and is monotone in cache size.
    #[test]
    fn cache_model_bounds(
        accesses in 1u64..10_000_000,
        touched_kib in 1u64..262_144,
        cache_kib in 1u64..32_768,
        pattern_sel in 0u8..5,
    ) {
        use unimem_repro::cache::{AccessPattern, CacheModel, ObjAccess};
        let pattern = match pattern_sel {
            0 => AccessPattern::Streaming { stride: Bytes(8) },
            1 => AccessPattern::Random,
            2 => AccessPattern::PointerChase,
            3 => AccessPattern::Gather { index_span: Bytes::kib(touched_kib * 2) },
            _ => AccessPattern::Stencil { reuse_bytes: Bytes::kib(touched_kib / 4) },
        };
        let acc = ObjAccess::new(ObjId(0), accesses, Bytes::kib(touched_kib), pattern);
        let small = CacheModel::new(Bytes::kib(cache_kib));
        let big = CacheModel::new(Bytes::kib(cache_kib * 4));
        let m_small = small.misses(&acc, acc.touched);
        let m_big = big.misses(&acc, acc.touched);
        prop_assert!(m_small.misses <= accesses);
        prop_assert!(m_big.misses <= m_small.misses,
            "bigger cache produced more misses: {} vs {}", m_big.misses, m_small.misses);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// The DP knapsack agrees with brute-force enumeration on every
    /// instance of up to 12 items, with sizes spanning byte, KiB and MiB
    /// magnitudes in one instance (the `prop_oneof!` union) so granule
    /// rounding, zero-weight filtering and the empty instance all get
    /// exercised. Complements `knapsack_matches_exhaustive` above, which
    /// stays within one narrow size magnitude.
    #[test]
    fn knapsack_dp_matches_bruteforce_upto_12_items(
        spec in prop::collection::vec(
            (
                -4.0f64..8.0,
                prop_oneof![1u64..64, 1024u64..65_536, 1_048_576u64..16_777_216],
            ),
            0..13,
        ),
        cap_sel in prop_oneof![1u64..256, 4096u64..262_144, 1_048_576u64..67_108_864],
    ) {
        let items: Vec<Item> = spec
            .iter()
            .map(|&(weight, size)| Item { weight, size: Bytes(size) })
            .collect();
        let cap = Bytes(cap_sel);
        let (chosen, w_dp) = solve(&items, cap);
        // The DP quantizes capacity into granules, rounding item sizes
        // *up* (never overcommitting): it solves the instance whose sizes
        // are ceil(size/granule) against capacity floor(cap/granule), and
        // must be exactly optimal there. For granule == 1 this is the
        // original instance.
        let granule = granule_for(cap);
        let rounded: Vec<Item> = items
            .iter()
            .map(|i| Item { weight: i.weight, size: Bytes(i.size.get().div_ceil(granule)) })
            .collect();
        let (_, w_gr) = solve_exhaustive(&rounded, Bytes(cap.get() / granule));
        prop_assert!(
            (w_dp - w_gr).abs() < 1e-9,
            "dp {w_dp} vs granule-exact exhaustive {w_gr} (granule {granule})"
        );
        // And it never beats the unquantized optimum.
        let (_, w_ex) = solve_exhaustive(&items, cap);
        prop_assert!(w_dp <= w_ex + 1e-9, "dp {w_dp} beats exhaustive {w_ex}?");
        // Whatever the DP chose must genuinely fit and add up.
        let total: u64 = chosen.iter().map(|&i| items[i].size.get()).sum();
        prop_assert!(total <= cap.get(), "overcommitted {total} > {}", cap.get());
        let sum: f64 = chosen.iter().map(|&i| items[i].weight).sum();
        prop_assert!((sum - w_dp).abs() < 1e-9);
        prop_assert!(chosen.iter().all(|&i| items[i].weight > 0.0));
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Trigger windows are always dependency-safe: no phase inside the
    /// window references the migrated unit.
    #[test]
    fn trigger_windows_respect_dependencies(
        n_phases in 2usize..8,
        ref_mask in prop::collection::vec(any::<bool>(), 2..8),
    ) {
        use unimem_repro::runtime::deps::PhaseRefTable;
        use unimem_repro::mpi::PhaseId;
        let n = n_phases.min(ref_mask.len());
        let unit = UnitId::whole(ObjId(0));
        let mut t = PhaseRefTable::new(n);
        let mut any_ref = false;
        for (p, &referenced) in ref_mask.iter().enumerate().take(n) {
            if referenced {
                t.add_ref(PhaseId(p as u32), unit);
                any_ref = true;
            }
        }
        prop_assume!(any_ref);
        for p in 0..n {
            if !ref_mask[p] { continue; }
            let w = t.trigger_for(unit, PhaseId(p as u32));
            // Every phase strictly inside (trigger .. use) must not
            // reference the unit.
            for k in 0..w.overlap_phases {
                let q = ((w.trigger.0 + k) as usize) % n;
                prop_assert!(!ref_mask[q],
                    "phase {q} references unit inside window (use {p}, trigger {})", w.trigger.0);
            }
        }
    }
}

// ---------------------------------------------------------------------------
// New-policy invariants (the v4 sweep axis: online-guidance, hw-cache).

/// One small leased run of a real workload; shared by the budget and
/// determinism properties below. Class S at 2 ranks keeps each case
/// cheap enough for proptest while still crossing every lifecycle hook.
fn leased_run(
    workload: &str,
    policy: &unimem_repro::runtime::exec::Policy,
    lease: &unimem_repro::runtime::exec::CapacitySchedule,
) -> unimem_repro::runtime::exec::RunReport {
    use unimem_repro::bench::sweep::NvmProfile;
    use unimem_repro::runtime::exec::run_workload_leased;
    use unimem_repro::workloads::{select, Class};

    let selection = select(&[workload], Class::S).expect("known workload");
    let (_, w) = &selection[0];
    let machine = NvmProfile::BwHalf.machine();
    let cache = unimem_repro::cache::CacheModel::platform_a();
    run_workload_leased(w.as_ref(), &machine, &cache, 2, policy, lease)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Online-guidance honours the leased DRAM budget under *arbitrary*
    /// lease scripts: residency beyond the lease would be stolen DRAM
    /// under multi-tenant arbitration, so the policy asserts the
    /// invariant after every interval decision — this property drives
    /// that assert through shrinking, growing and oscillating epochs.
    /// The report must also stay well-formed: positive finite time and
    /// migration byte-accounting that never goes negative.
    #[test]
    fn online_guidance_respects_arbitrary_lease_scripts(
        fracs in prop::collection::vec(0.05f64..1.0, 1..5),
        pick_mg in any::<bool>(),
    ) {
        use unimem_repro::bench::sweep::NvmProfile;
        use unimem_repro::runtime::exec::{CapacitySchedule, Policy};
        use unimem_repro::sim::Bytes;

        let cap = NvmProfile::BwHalf.machine().dram_capacity;
        let lease = CapacitySchedule::from_epochs(
            fracs
                .iter()
                .map(|f| Bytes((cap.as_f64() * f) as u64))
                .collect(),
        )
        .expect("non-empty schedule");
        let workload = if pick_mg { "MG" } else { "CG" };
        // A lease violation panics inside the policy; reaching the
        // assertions below means the budget held at every decision.
        let report = leased_run(workload, &Policy::online_guidance(), &lease);
        prop_assert!(report.time().secs().is_finite() && report.time().secs() > 0.0);
        if !lease.is_constant() {
            // Epoch changes re-plan on the spot (or the lease never
            // actually moved a per-rank budget — constant after
            // rounding); either way the counter must agree with what
            // the schedule made possible.
            prop_assert!(
                report.job.lease_replans <= fracs.len() as u64 * 2,
                "replanned more often than the schedule changed: {}",
                report.job.lease_replans
            );
        }
    }

    /// Both v4 policies replay deterministically: identical inputs give
    /// byte-identical `RunReport` JSON — online-guidance's thinned
    /// sampling (DetRng) and hw-cache's fractional hit splitting must
    /// not leak any host state into the virtual timeline. The sweep's
    /// `--jobs 1 ≡ --jobs 8` identity test covers the cross-thread half
    /// of the same claim.
    #[test]
    fn new_policies_replay_byte_identically(
        fracs in prop::collection::vec(0.1f64..1.0, 1..4),
    ) {
        use unimem_repro::bench::sweep::NvmProfile;
        use unimem_repro::runtime::exec::{CapacitySchedule, Policy};
        use unimem_repro::sim::Bytes;

        let cap = NvmProfile::BwHalf.machine().dram_capacity;
        let lease = CapacitySchedule::from_epochs(
            fracs
                .iter()
                .map(|f| Bytes((cap.as_f64() * f) as u64))
                .collect(),
        )
        .expect("non-empty schedule");
        let a = leased_run("CG", &Policy::online_guidance(), &lease);
        let b = leased_run("CG", &Policy::online_guidance(), &lease);
        prop_assert_eq!(a.to_json().to_pretty(), b.to_json().to_pretty());

        // hw-cache takes no moving lease (nothing to evict): the
        // constant-budget run rides the same determinism claim.
        let constant = CapacitySchedule::constant(lease.peak());
        let c = leased_run("CG", &Policy::hw_cache(), &constant);
        let d = leased_run("CG", &Policy::hw_cache(), &constant);
        prop_assert_eq!(c.to_json().to_pretty(), d.to_json().to_pretty());
    }
}

// ---------------------------------------------------------------------------
// DRAM arbiter invariants (the multi-tenant broker behind the co-run sweep).

use unimem_repro::hms::arbiter::{ArbiterPolicy, DramArbiter, TenantSpec};

/// Replayable arbiter scenario: a budget, a tenant roster (weights +
/// reservations scaled to stay feasible), and a mutation script.
#[derive(Debug, Clone)]
struct ArbScenario {
    budget: u64,
    /// (weight, reservation, initial demand) per tenant.
    tenants: Vec<(u32, u64, u64)>,
    /// (tenant index seed, op kind, demand value) per step.
    ops: Vec<(usize, u8, u64)>,
}

/// Final expected state per tenant, tracked alongside the broker so the
/// invariant assertions can see demand/activity without new accessors.
#[derive(Debug, Clone, Copy)]
struct Shadow {
    active: bool,
    demand: u64,
    reservation: u64,
}

/// Build an arbiter and run the scenario to its final state, returning
/// the broker plus the shadow of every tenant's final demand/activity.
fn replay(policy: ArbiterPolicy, sc: &ArbScenario) -> (DramArbiter, Vec<Shadow>) {
    let mut arb = DramArbiter::new(Bytes(sc.budget), policy);
    let mut ids = Vec::new();
    let mut shadows = Vec::new();
    for (i, &(weight, reservation, demand)) in sc.tenants.iter().enumerate() {
        let id = arb
            .register(
                TenantSpec::new(format!("t{i}"))
                    .weight(weight)
                    .reservation(Bytes(reservation)),
            )
            .expect("scaled reservations always fit");
        arb.set_demand(id, Bytes(demand));
        ids.push(id);
        shadows.push(Shadow {
            active: true,
            demand,
            reservation,
        });
    }
    for &(seed, kind, demand) in &sc.ops {
        let i = seed % ids.len();
        let t = ids[i];
        match kind % 4 {
            0 => {
                arb.set_demand(t, Bytes(demand));
                shadows[i].demand = demand;
            }
            1 => {
                arb.deactivate(t);
                shadows[i].active = false;
                shadows[i].demand = 0; // deactivate clears the demand
            }
            2 => {
                // Re-activation always fits: deactivate only shrinks the
                // active reservation sum below the feasible roster total.
                arb.activate(t).expect("roster reservations fit");
                shadows[i].active = true;
            }
            _ => {
                arb.rebalance();
            }
        }
    }
    arb.rebalance();
    (arb, shadows)
}

fn arb_scenarios() -> impl Strategy<Value = ArbScenario> {
    (
        1_000u64..1_000_000,
        prop::collection::vec((1u32..8, 0u64..1_000, 0u64..2_000_000), 1..8),
        prop::collection::vec((0usize..8, 0u8..4, 0u64..2_000_000), 0..24),
    )
        .prop_map(|(budget, mut tenants, ops)| {
            // Scale reservations so the roster is always feasible: the
            // raw values are shares of half the budget.
            let total: u64 = tenants.iter().map(|t| t.1).sum::<u64>().max(1);
            for t in &mut tenants {
                t.1 = t.1 * (budget / 2) / total;
            }
            ArbScenario {
                budget,
                tenants,
                ops,
            }
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Safety: whatever the mutation history, granted leases never exceed
    /// the global budget, no tenant exceeds its demand, active tenants
    /// get at least min(reservation, demand) (feasible by construction:
    /// roster reservations sum to ≤ budget/2), and inactive tenants hold
    /// nothing.
    #[test]
    fn arbiter_grants_never_exceed_budget(
        sc in arb_scenarios(),
        policy_idx in 0usize..3,
    ) {
        let policy = ArbiterPolicy::ALL[policy_idx];
        let (mut arb, shadows) = replay(policy, &sc);
        prop_assert!(arb.granted_total() <= Bytes(sc.budget),
            "{}: granted {} over budget {}", policy.name(), arb.granted_total(), sc.budget);
        for (i, sh) in shadows.iter().enumerate() {
            let t = unimem_repro::hms::arbiter::TenantId(i as u32);
            let g = arb.grant(t).get();
            if sh.active {
                prop_assert!(g <= sh.demand,
                    "{}: tenant {i} granted {g} over demand {}", policy.name(), sh.demand);
                let floor = sh.reservation.min(sh.demand);
                prop_assert!(g >= floor,
                    "{}: tenant {i} granted {g} below floor {floor}", policy.name());
            } else {
                prop_assert_eq!(g, 0, "inactive tenant {} holds a lease", i);
            }
        }
        prop_assert!(arb.rebalance().is_empty());
    }

    /// Revocation converges: a rebalance immediately after a rebalance
    /// moves nothing (grants are a pure function of broker state), under
    /// every policy and after any mutation history — including budget
    /// shrinks, the revocation trigger.
    #[test]
    fn arbiter_revocation_converges(
        sc in arb_scenarios(),
        policy_idx in 0usize..3,
        shrink_num in 1u64..100,
    ) {
        let policy = ArbiterPolicy::ALL[policy_idx];
        let (mut arb, _) = replay(policy, &sc);
        // Shrink toward the reservation floor (never below: the broker
        // refuses to break reservations silently).
        let reserved: u64 = sc.budget / 2; // roster max by construction
        let target = reserved + (sc.budget - reserved) * shrink_num / 100;
        arb.set_budget(Bytes(target)).expect("target ≥ roster reservations");
        arb.rebalance();
        prop_assert!(arb.granted_total() <= Bytes(target));
        prop_assert!(arb.rebalance().is_empty(), "rebalance after rebalance moved leases");
        prop_assert!(arb.rebalance().is_empty());
    }

    /// Determinism: replaying the same scenario on a fresh broker yields
    /// bit-identical grants, under every policy (the sweep's co-run cells
    /// inherit byte-identical reports from this).
    #[test]
    fn arbiter_replay_is_deterministic(
        sc in arb_scenarios(),
        policy_idx in 0usize..3,
    ) {
        let policy = ArbiterPolicy::ALL[policy_idx];
        let (a, _) = replay(policy, &sc);
        let (b, _) = replay(policy, &sc);
        for i in 0..a.len() {
            let t = unimem_repro::hms::arbiter::TenantId(i as u32);
            prop_assert_eq!(a.grant(t), b.grant(t), "tenant {} diverged", i);
        }
        prop_assert_eq!(a.granted_total(), b.granted_total());
    }
}

// ---------------------------------------------------------------------------
// Crash-consistency properties (the redo journal + recovery path).

/// Journaled run on the reduced-scale matrix: class S, 2 ranks, Unimem —
/// cheap enough for proptest while still profiling, planning, and
/// migrating (so the journal carries every record kind).
fn journaled_run(
    workload: &str,
    mode: unimem_repro::hms::journal::DurabilityMode,
) -> unimem_repro::runtime::recovery::JournaledRun {
    use unimem_repro::bench::sweep::NvmProfile;
    use unimem_repro::runtime::exec::Policy;
    use unimem_repro::runtime::recovery::RecoverySetup;
    use unimem_repro::workloads::{select, Class};

    let selection = select(&[workload], Class::S).expect("known workload");
    let machine = NvmProfile::BwHalf.machine();
    let cache = unimem_repro::cache::CacheModel::platform_a();
    let policy = Policy::unimem();
    RecoverySetup {
        workload: selection[0].1.as_ref(),
        machine: &machine,
        cache: &cache,
        nranks: 2,
        policy: &policy,
    }
    .run_journaled(mode)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Crash-consistency under *arbitrary* kill scripts: whatever virtual
    /// instant the process dies (before, during, even after the run),
    /// torn record or not, in every durability mode — recovering from
    /// the durable journal prefix must reproduce the uninterrupted run's
    /// `RunReport` JSON and per-rank journals byte-for-byte.
    #[test]
    fn arbitrary_kill_points_recover_byte_identically(
        frac in 0.0f64..1.1,
        torn in any::<bool>(),
        mode_ix in 0usize..3,
        pick_mg in any::<bool>(),
    ) {
        use unimem_repro::bench::sweep::NvmProfile;
        use unimem_repro::hms::journal::DurabilityMode;
        use unimem_repro::runtime::exec::Policy;
        use unimem_repro::runtime::recovery::RecoverySetup;
        use unimem_repro::sim::{CrashSpec, VDur, VTime};
        use unimem_repro::workloads::{select, Class};

        let workload = if pick_mg { "MG" } else { "CG" };
        let selection = select(&[workload], Class::S).expect("known workload");
        let machine = NvmProfile::BwHalf.machine();
        let cache = unimem_repro::cache::CacheModel::platform_a();
        let policy = Policy::unimem();
        let setup = RecoverySetup {
            workload: selection[0].1.as_ref(),
            machine: &machine,
            cache: &cache,
            nranks: 2,
            policy: &policy,
        };
        let mode = DurabilityMode::ALL[mode_ix];
        let clean = setup.run_journaled(mode);
        let crash = CrashSpec {
            at: VTime::ZERO + VDur(clean.report.time().secs() * frac),
            torn,
        };
        let out = setup.crash_and_recover(mode, crash, &clean);
        prop_assert!(
            out.equivalent(),
            "mode={:?} crash={:?}: report_equal={} journals_equal={}",
            mode, crash, out.report_equal, out.journals_equal
        );
    }

    /// Replay is idempotent at *every* truncation point: parse whatever
    /// prefix survives (whole frames + a possibly torn tail), then apply
    /// all of its records a second time — nothing may change.
    #[test]
    fn journal_replay_is_idempotent_at_any_truncation(cut_frac in 0.0f64..1.001) {
        use unimem_repro::hms::journal::{read_journal, DurabilityMode, ReplayedState};

        let clean = journaled_run("CG", DurabilityMode::Strict);
        for journal in &clean.journals {
            let cut = ((journal.len() as f64) * cut_frac) as usize;
            let prefix = &journal[..cut.min(journal.len())];
            let once = ReplayedState::replay(prefix);
            let mut twice = ReplayedState::replay(prefix);
            for (rec, at) in read_journal(prefix).0 {
                twice.apply(&rec, at);
            }
            prop_assert_eq!(&once, &twice, "second replay changed the state");
        }
    }
}

// ---------------------------------------------------------------------------
// Worker-pool identity (the lock-free queue behind the sweep executor and
// the rank scheduler; see also tests/concurrency_stress.rs).

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Arbitrary job sets through the lock-free pool reassemble
    /// byte-identically at every width, on both the read-only path (the
    /// sweep) and the in-place path (the rank scheduler). The workers
    /// race over a shared queue, so the *completion* order is arbitrary;
    /// reassembly by job index must erase it completely.
    #[test]
    fn pool_reassembles_byte_identically(
        items in prop::collection::vec(any::<u64>(), 0..48),
        width in 1usize..12,
    ) {
        use unimem_repro::sim::{run_pool, run_pool_mut};
        let f = |&x: &u64| -> Result<String, String> {
            Ok(format!("{:x}", x.wrapping_mul(2654435761).rotate_left((x % 63) as u32)))
        };
        let serial: Vec<String> = items.iter().map(|x| f(x).unwrap()).collect();
        prop_assert_eq!(run_pool(items.clone(), width, f).unwrap(), serial);

        let mut par = items.clone();
        let mut ser = items.clone();
        let g = |i: usize, x: &mut u64| {
            *x = x.rotate_left((i % 64) as u32) ^ i as u64;
            Ok(*x)
        };
        let got = run_pool_mut(&mut par, width, g).unwrap();
        let want = run_pool_mut(&mut ser, 1, g).unwrap();
        prop_assert_eq!(got, want);
        prop_assert_eq!(par, ser, "in-place mutations diverged across widths");
    }

    /// Failures surface deterministically: the lowest failing job index
    /// wins, whatever the width and whichever worker hit an error first.
    #[test]
    fn pool_error_reporting_is_width_independent(
        items in prop::collection::vec(0u8..4, 1..32),
        width in 1usize..12,
    ) {
        use unimem_repro::sim::run_pool;
        let f = |&x: &u8| -> Result<u8, String> {
            if x == 0 { Err("boom".into()) } else { Ok(x) }
        };
        let serial = run_pool(items.clone(), 1, f);
        let wide = run_pool(items.clone(), width, f);
        prop_assert_eq!(serial, wide);
    }
}

/// PR-10 reuse-layer properties. Sweeps are expensive relative to the
/// other properties here, so the case count is small and the matrices
/// are CLASS-S micro configurations — the point is the *shape* space
/// (arbitrary axis subsets, worker counts, salts), not matrix scale.
mod sweep_cache_props {
    use super::*;
    use unimem_repro::bench::sweep::{
        run_sweep_cached, run_sweep_jobs, NvmProfile, PolicyKind, SweepCache, SweepConfig,
        TopologySpec,
    };
    use unimem_repro::workloads::Class;

    fn subset<T: Clone>(all: &[T], mask: u8) -> Vec<T> {
        all.iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, v)| v.clone())
            .collect()
    }

    fn cfg_for(wl_mask: u8, pol_mask: u8, nranks: usize, clustered: bool) -> SweepConfig {
        let mut topologies = vec![TopologySpec::Flat];
        if clustered && nranks >= 2 {
            topologies.push(TopologySpec::Nodes { count: 2 });
        }
        SweepConfig {
            class: Class::S,
            workloads: subset(&["CG".into(), "FT".into(), "MG".into()], wl_mask),
            policies: subset(
                &[
                    PolicyKind::DramOnly,
                    PolicyKind::Unimem,
                    PolicyKind::NvmOnly,
                    PolicyKind::HwCache,
                ],
                pol_mask,
            ),
            profiles: vec![NvmProfile::BwHalf],
            ranks: vec![nranks],
            ranks_per_node: vec![1],
            topologies,
            dram_capacity: None,
            coruns: vec![],
            arbiters: vec![],
        }
    }

    fn tmp(tag: &str) -> std::path::PathBuf {
        use std::sync::atomic::{AtomicUsize, Ordering};
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        std::env::temp_dir().join(format!(
            "unimem-props-{tag}-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// For arbitrary axis subsets and worker counts: a cacheless run,
        /// a cold cached run, and a warm rerun serialize byte-identically,
        /// the cold run hits nothing, and the warm run hits everything.
        #[test]
        fn cold_and_warm_cached_sweeps_are_byte_identical(
            wl_mask in 1u8..8,
            pol_mask in 1u8..16,
            nranks in 1usize..3,
            clustered in any::<bool>(),
            workers in 1usize..5,
        ) {
            let cfg = cfg_for(wl_mask, pol_mask, nranks, clustered);
            let dir = tmp("coldwarm");
            let store = SweepCache::open(&dir).expect("cache opens");

            let plain = run_sweep_jobs(&cfg, workers).expect("cacheless run");
            let cold = run_sweep_cached(&cfg, workers, Some(&store)).expect("cold run");
            let warm = run_sweep_cached(&cfg, workers, Some(&store)).expect("warm run");

            prop_assert_eq!(cold.cache_hits, 0, "cold cache cannot hit");
            prop_assert!(cold.cache_lookups > 0);
            prop_assert_eq!(warm.cache_hits, warm.cache_lookups, "warm rerun must fully hit");

            let p = plain.to_json().to_pretty();
            prop_assert_eq!(&p, &cold.to_json().to_pretty(), "cold bytes diverge");
            prop_assert_eq!(&p, &warm.to_json().to_pretty(), "warm bytes diverge");
            std::fs::remove_dir_all(&dir).ok();
        }

        /// A salt change is a full invalidation: rerunning the identical
        /// matrix against the same populated directory under a different
        /// salt hits nothing — and still produces identical bytes.
        #[test]
        fn salt_change_forces_zero_hit_rate(
            wl_mask in 1u8..8,
            workers in 1usize..4,
            salt_n in 1u32..100_000,
        ) {
            let salt = format!("s{salt_n}");
            let cfg = cfg_for(wl_mask, 0b11, 2, false);
            let dir = tmp("salt");
            let plain = SweepCache::open(&dir).expect("cache opens");
            let salted = plain.clone().with_salt(salt);

            let first = run_sweep_cached(&cfg, workers, Some(&plain)).expect("populate");
            let crossed = run_sweep_cached(&cfg, workers, Some(&salted)).expect("salted run");
            prop_assert_eq!(crossed.cache_hits, 0, "a new salt must miss everything");
            prop_assert_eq!(crossed.cache_hit_rate(), Some(0.0));
            // And the salted world warms up independently.
            let rewarm = run_sweep_cached(&cfg, workers, Some(&salted)).expect("salted rerun");
            prop_assert_eq!(rewarm.cache_hits, rewarm.cache_lookups);
            prop_assert_eq!(
                first.to_json().to_pretty(),
                rewarm.to_json().to_pretty(),
                "salt must never leak into the report bytes"
            );
            std::fs::remove_dir_all(&dir).ok();
        }
    }
}
