//! Zero-cost guard for the crash-consistency journal: with journaling
//! disabled (the default — no `JournalRig` attached), the execution
//! driver must reproduce the pre-journal sweep byte-for-byte.
//!
//! `tests/golden/BENCH_sweep_v4.json` is the committed v4 baseline —
//! the full reduced matrix (all six policies) as emitted by the driver
//! before the journal hooks existed. The journal integration threads an
//! `Option<JournalHandle>` through the driver, the policies, and the
//! migration engine; this test pins that the `None` path is not merely
//! cheap but *invisible*: identical placement, identical virtual times,
//! identical serialized stats on every cell. Any drift here means the
//! journal hooks perturbed the non-journaled run.

use unimem_repro::bench::sweep::{run_sweep_jobs, SweepConfig};

#[test]
fn journal_disabled_path_reproduces_the_v4_golden_bytes() {
    let report = run_sweep_jobs(&SweepConfig::reduced(), 4).expect("reduced sweep runs");
    let mut got = report.to_json().to_pretty();
    // The only sanctioned difference: the schema tag (v5 added the
    // off-by-default topology axis without touching any per-cell byte).
    let swapped = got.replacen("unimem-bench-sweep/v5", "unimem-bench-sweep/v4", 1);
    assert!(swapped != got, "schema tag missing from the report");
    got = swapped;
    let golden = include_str!("golden/BENCH_sweep_v4.json");
    if got != golden {
        let line = got
            .lines()
            .zip(golden.lines())
            .position(|(a, b)| a != b)
            .map(|i| i + 1);
        panic!(
            "regenerated report diverges from the v4 golden baseline \
             ({} vs {} bytes; first differing line: {line:?}) — the \
             journal hooks changed the non-journaled run",
            got.len(),
            golden.len(),
        );
    }
}
