//! Concurrency stress tests for the PR-9 hot paths: the sharded
//! bandwidth ledger under real thread contention, and the lock-free
//! worker pool under arbitrary job sets and widths.
//!
//! The simulator's guarantee is stronger than "no data races": every
//! query answer must be a *pure function of the schedule*, bit-for-bit,
//! no matter how the OS interleaves the threads. So both halves compare
//! a genuinely parallel execution against a serial replay of the same
//! schedule and require exact (`==` on f64 / bytes) equality.

use std::sync::{Barrier, Mutex};
use unimem_repro::sim::{run_pool, run_pool_mut, BwLedger, LoadSplit, VDur, VTime};

const OWNERS: usize = 8;
const CHANNELS: usize = 4;
const EPOCHS: usize = 6;
const POSTS_PER_EPOCH: usize = 5;
const CAP: f64 = 12e9;

/// The deterministic schedule: what `owner` posts as its `k`-th flow of
/// `epoch`. Pure arithmetic so the threaded run and the serial replay
/// derive identical flows independently.
fn flow(owner: usize, epoch: usize, k: usize) -> (usize, VTime, VTime, f64) {
    let channel = (owner + epoch + k) % CHANNELS;
    let t0 = epoch as f64 + (owner as f64 * POSTS_PER_EPOCH as f64 + k as f64) * 1e-3;
    // Every third flow is instantaneous (the zero-duration deposit path).
    let dur = if k % 3 == 2 {
        0.0
    } else {
        0.25 + k as f64 * 0.1
    };
    let bytes = ((owner * 31 + epoch * 17 + k * 7) % 97 + 1) as f64 * 1e6;
    (channel, VTime(t0), VTime(t0 + dur), bytes)
}

/// The synchronized fence instant ending `epoch` (every owner fences
/// with the same timestamp — the collective's rendezvous).
fn fence_at(epoch: usize) -> VTime {
    VTime((epoch + 1) as f64)
}

/// The query window each owner probes after the posts of `epoch` landed.
fn window(epoch: usize) -> (VTime, VTime) {
    (VTime(epoch as f64), VTime(epoch as f64 + 0.75))
}

/// One owner's walk through the schedule. `sync` is called at the three
/// rendezvous points of each epoch (post-barrier, load-barrier,
/// fence-barrier); the threaded run passes a real [`Barrier`], the
/// serial replay interleaves owners itself and passes a no-op.
///
/// Each epoch records two probes per channel: one *mid-epoch* (before
/// the post rendezvous — own flows are the owner's posts so far, and
/// neighbor reads hit the previous epoch's ring slot, which is stable
/// while the current epoch's posts go to `gen + 1`), and one after all
/// posts landed. Both must be schedule-pure.
fn drive_owner(ledger: &BwLedger, owner: usize, sync: &(dyn Fn() + Sync)) -> Vec<LoadSplit> {
    let mut probes = Vec::new();
    for epoch in 0..EPOCHS {
        let (w0, w1) = window(epoch);
        for k in 0..POSTS_PER_EPOCH {
            let (ch, start, end, bytes) = flow(owner, epoch, k);
            ledger.post(owner, ch, start, end, bytes);
            if k == POSTS_PER_EPOCH / 2 {
                // Mid-epoch probe, racing the neighbors' posts on purpose.
                for ch in 0..CHANNELS {
                    probes.push(ledger.load(owner, ch, w0, w1, CAP));
                }
            }
        }
        sync();
        for ch in 0..CHANNELS {
            probes.push(ledger.load(owner, ch, w0, w1, CAP));
        }
        sync();
        ledger.fence(owner, fence_at(epoch));
        sync();
    }
    probes
}

/// Serial replay: one thread interleaves the owners epoch by epoch in
/// the same phase order the barriers enforce (all posts+mid-probes, all
/// post-rendezvous probes, all fences).
fn serial_replay() -> Vec<Vec<LoadSplit>> {
    let ledger = BwLedger::new(OWNERS, CHANNELS);
    let mut probes: Vec<Vec<LoadSplit>> = vec![Vec::new(); OWNERS];
    for epoch in 0..EPOCHS {
        let (w0, w1) = window(epoch);
        for (owner, owner_probes) in probes.iter_mut().enumerate() {
            for k in 0..POSTS_PER_EPOCH {
                let (ch, start, end, bytes) = flow(owner, epoch, k);
                ledger.post(owner, ch, start, end, bytes);
                if k == POSTS_PER_EPOCH / 2 {
                    for ch in 0..CHANNELS {
                        owner_probes.push(ledger.load(owner, ch, w0, w1, CAP));
                    }
                }
            }
        }
        for (owner, owner_probes) in probes.iter_mut().enumerate() {
            for ch in 0..CHANNELS {
                owner_probes.push(ledger.load(owner, ch, w0, w1, CAP));
            }
        }
        for owner in 0..OWNERS {
            ledger.fence(owner, fence_at(epoch));
        }
    }
    probes
}

/// Wait: the serial replay's mid-epoch probes see *every* owner's posts
/// of the epoch so far for owners that already ran — but the threaded
/// run's mid-epoch probe only deterministically sees the prober's own
/// posts plus last-epoch neighbor rates. They agree anyway, because a
/// mid-epoch neighbor post is invisible until the reader's next fence:
/// `load` reads ring slot `gen`, posts land in `gen + 1`. That is the
/// exact visibility-lag semantics the sharding had to preserve, and this
/// test is the proof it survived the rewrite.
#[test]
fn sharded_ledger_hammer_matches_serial_replay_exactly() {
    for round in 0..8 {
        let ledger = BwLedger::new(OWNERS, CHANNELS);
        let barrier = Barrier::new(OWNERS);
        let got: Mutex<Vec<(usize, Vec<LoadSplit>)>> = Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for owner in 0..OWNERS {
                let (ledger, barrier, got) = (&ledger, &barrier, &got);
                s.spawn(move || {
                    let probes = drive_owner(ledger, owner, &|| {
                        barrier.wait();
                    });
                    got.lock().unwrap().push((owner, probes));
                });
            }
        });
        let mut got = got.into_inner().unwrap();
        got.sort_by_key(|(owner, _)| *owner);
        let want = serial_replay();
        for (owner, probes) in got {
            assert_eq!(
                probes.len(),
                want[owner].len(),
                "round {round}: owner {owner} probe count"
            );
            for (i, (g, w)) in probes.iter().zip(&want[owner]).enumerate() {
                assert_eq!(
                    g, w,
                    "round {round}: owner {owner} probe {i} diverged from the serial replay"
                );
            }
        }
        for owner in 0..OWNERS {
            assert_eq!(ledger.gen(owner), EPOCHS as u64);
        }
    }
}

/// Neighbor visibility across the fence boundary, under threads: an
/// epoch's posts must be invisible to neighbors until they fence past
/// it, then visible as last-epoch rates, then retired two fences later.
#[test]
fn sharded_ledger_visibility_lag_is_exact_under_threads() {
    let ledger = BwLedger::new(2, 1);
    let barrier = Barrier::new(2);
    std::thread::scope(|s| {
        // Owner 1 posts 8 GB over [0, 1] each epoch; owner 0 just reads.
        s.spawn(|| {
            for epoch in 0..3 {
                let t = VTime(epoch as f64);
                ledger.post(1, 0, t, t + VDur::from_secs(1.0), 8e9);
                barrier.wait(); // posts done
                barrier.wait(); // reader probed
                ledger.fence(1, fence_at(epoch));
                barrier.wait(); // fences done
            }
        });
        s.spawn(|| {
            let mut seen = Vec::new();
            for epoch in 0..3 {
                barrier.wait(); // posts done
                let (w0, w1) = (VTime(epoch as f64), VTime(epoch as f64 + 1.0));
                seen.push(ledger.load(0, 0, w0, w1, 12e9).neighbors);
                barrier.wait(); // probe recorded
                ledger.fence(0, fence_at(epoch));
                barrier.wait(); // fences done
            }
            // Epoch 0: no completed epoch yet — nothing visible. After
            // the first fence the 8 GB/1 s epoch is the neighbor's
            // last-epoch rate, every epoch from then on.
            assert_eq!(seen, vec![0.0, 8e9, 8e9]);
        });
    });
}

/// The pool side of the stress: any worker width reassembles byte-identical
/// results, for both the read-only and the in-place scheduler paths.
#[test]
fn pool_widths_reassemble_identically_under_load() {
    let items: Vec<u64> = (0..257).map(|i| i * 2654435761 % 1013).collect();
    let f = |&x: &u64| -> Result<String, String> { Ok(format!("{:x}", x.wrapping_mul(x) ^ 0xabc)) };
    let serial = run_pool(items.clone(), 1, f).unwrap();
    for width in [2, 3, 8, 64] {
        assert_eq!(run_pool(items.clone(), width, f).unwrap(), serial);
    }
    let mut mine = items.clone();
    let mut theirs = items;
    let g = |i: usize, x: &mut u64| {
        *x = x.wrapping_add(i as u64);
        Ok(*x)
    };
    let a = run_pool_mut(&mut mine, 1, g).unwrap();
    let b = run_pool_mut(&mut theirs, 16, g).unwrap();
    assert_eq!(a, b);
    assert_eq!(mine, theirs);
}
