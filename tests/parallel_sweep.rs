//! Parallel-executor regressions: the sweep's worker pool must never
//! perturb a report byte, and a failing worker must surface as an error
//! rather than a hang.
//!
//! `run_sweep_jobs(cfg, 1)` runs every cell in order on the calling
//! thread (the pre-pool serial path); `run_sweep_jobs(cfg, 8)` fans the
//! same cells out over 8 workers. The reduced matrix — the exact matrix
//! CI's conformance job runs — must serialize byte-identically from both.

use unimem_repro::bench::sweep::{run_pool, run_sweep_jobs, SweepConfig};

#[test]
fn reduced_matrix_json_is_byte_identical_for_jobs_1_and_8() {
    let cfg = SweepConfig::reduced();
    let serial = run_sweep_jobs(&cfg, 1).expect("serial sweep runs");
    let parallel = run_sweep_jobs(&cfg, 8).expect("parallel sweep runs");
    // The reduced matrix carries co-run cells; their bytes (arbiter
    // lease schedules included) ride the same identity check.
    assert!(
        !serial.corun_cells.is_empty(),
        "reduced matrix must exercise the co-run stage"
    );
    let a = serial.to_json().to_pretty();
    let b = parallel.to_json().to_pretty();
    assert!(
        a == b,
        "worker pool perturbed the report: {} vs {} bytes",
        a.len(),
        b.len()
    );
}

#[test]
fn panicking_worker_surfaces_as_error_not_hang() {
    // Enough jobs that every worker has work queued behind the panic.
    let jobs: Vec<usize> = (0..64).collect();
    let result = run_pool(jobs, 8, |&j| {
        if j == 7 {
            panic!("cell {j} exploded");
        }
        Ok(j * 2)
    });
    let err = result.expect_err("panic must become an error");
    assert!(
        err.contains("job 7") && err.contains("cell 7 exploded"),
        "panic context lost: {err}"
    );
}

#[test]
fn failing_job_reports_deterministically_and_later_jobs_still_ran() {
    use std::sync::atomic::{AtomicUsize, Ordering};

    // Two failures: the lowest job index must win regardless of which
    // worker hit its failure first, and the threaded pool must still
    // drain the whole queue (that drain is what makes the winner
    // deterministic), so every job executes exactly once.
    for _ in 0..8 {
        let executed = AtomicUsize::new(0);
        let jobs: Vec<usize> = (0..32).collect();
        let err = run_pool(jobs, 4, |&j| {
            executed.fetch_add(1, Ordering::Relaxed);
            if j == 5 || j == 29 {
                Err(format!("fail {j}"))
            } else {
                Ok(j)
            }
        })
        .unwrap_err();
        assert_eq!(err, "job 5: fail 5");
        assert_eq!(
            executed.load(Ordering::Relaxed),
            32,
            "an early failure must not cancel queued jobs"
        );
    }
}
