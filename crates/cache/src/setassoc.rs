//! Set-associative LRU cache simulator.
//!
//! Trace-driven reference model used to validate the analytic miss model on
//! miniature workloads (see `trace` and the crate's integration tests). Not
//! used at class scale — a CLASS D run issues ~10¹² references.

use unimem_sim::Bytes;

/// A set-associative cache with true-LRU replacement.
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    /// `sets[s]` holds up to `assoc` tags, most-recently-used last.
    sets: Vec<Vec<u64>>,
    assoc: usize,
    line_shift: u32,
    set_mask: u64,
    hits: u64,
    misses: u64,
}

impl SetAssocCache {
    /// Build a cache of `size` bytes with `line`-byte lines and `assoc`-way
    /// sets. `size / (line * assoc)` must be a power of two.
    pub fn new(size: Bytes, line: Bytes, assoc: usize) -> SetAssocCache {
        assert!(assoc >= 1);
        assert!(line.get().is_power_of_two(), "line must be a power of two");
        let n_sets = size.get() / (line.get() * assoc as u64);
        assert!(
            n_sets >= 1 && n_sets.is_power_of_two(),
            "set count must be a power of two, got {n_sets}"
        );
        SetAssocCache {
            sets: vec![Vec::with_capacity(assoc); n_sets as usize],
            assoc,
            line_shift: line.get().trailing_zeros(),
            set_mask: n_sets - 1,
            hits: 0,
            misses: 0,
        }
    }

    /// Fully-associative variant (used to sanity-check set conflicts).
    pub fn fully_associative(size: Bytes, line: Bytes) -> SetAssocCache {
        let ways = (size.get() / line.get()).max(1) as usize;
        SetAssocCache {
            sets: vec![Vec::with_capacity(ways)],
            assoc: ways,
            line_shift: line.get().trailing_zeros(),
            set_mask: 0,
            hits: 0,
            misses: 0,
        }
    }

    /// Reference byte address `addr`; returns true on hit.
    pub fn access(&mut self, addr: u64) -> bool {
        let tag = addr >> self.line_shift;
        let set = &mut self.sets[(tag & self.set_mask) as usize];
        if let Some(pos) = set.iter().position(|&t| t == tag) {
            // Move to MRU position.
            let t = set.remove(pos);
            set.push(t);
            self.hits += 1;
            true
        } else {
            if set.len() == self.assoc {
                set.remove(0); // evict LRU
            }
            set.push(tag);
            self.misses += 1;
            false
        }
    }

    pub fn hits(&self) -> u64 {
        self.hits
    }

    pub fn misses(&self) -> u64 {
        self.misses
    }

    pub fn accesses(&self) -> u64 {
        self.hits + self.misses
    }

    pub fn miss_ratio(&self) -> f64 {
        if self.accesses() == 0 {
            0.0
        } else {
            self.misses as f64 / self.accesses() as f64
        }
    }

    /// Forget statistics but keep contents (to measure steady state after a
    /// warm-up pass).
    pub fn reset_stats(&mut self) {
        self.hits = 0;
        self.misses = 0;
    }

    /// Drop contents and statistics.
    pub fn flush(&mut self) {
        for s in &mut self.sets {
            s.clear();
        }
        self.reset_stats();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> SetAssocCache {
        // 4 KiB, 64 B lines, 4-way → 16 sets.
        SetAssocCache::new(Bytes::kib(4), Bytes(64), 4)
    }

    #[test]
    fn repeat_access_hits() {
        let mut c = tiny();
        assert!(!c.access(0));
        assert!(c.access(0));
        assert!(c.access(63)); // same line
        assert!(!c.access(64)); // next line
        assert_eq!(c.misses(), 2);
        assert_eq!(c.hits(), 2);
    }

    #[test]
    fn lru_evicts_oldest() {
        let mut c = SetAssocCache::new(Bytes(256), Bytes(64), 2); // 2 sets, 2-way
                                                                  // Set 0 receives lines 0, 2, 4 (stride 128 → same set).
        assert!(!c.access(0));
        assert!(!c.access(128));
        assert!(!c.access(256)); // evicts line 0
        assert!(!c.access(0)); // line 0 gone
    }

    #[test]
    fn lru_refreshes_on_hit() {
        let mut c = SetAssocCache::new(Bytes(256), Bytes(64), 2);
        assert!(!c.access(0));
        assert!(!c.access(128));
        assert!(c.access(0)); // refresh line 0 → 128 becomes LRU
        assert!(!c.access(256)); // evicts 128
        assert!(c.access(0));
        assert!(!c.access(128));
    }

    #[test]
    fn working_set_fitting_reaches_zero_steady_state_misses() {
        let mut c = tiny();
        let lines = 4 * 1024 / 64;
        for pass in 0..3 {
            if pass == 1 {
                c.reset_stats();
            }
            for i in 0..lines {
                c.access(i * 64);
            }
        }
        assert_eq!(c.misses(), 0, "warm fully-fitting set should not miss");
    }

    #[test]
    fn streaming_over_capacity_misses_every_line() {
        let mut c = tiny();
        // 64 KiB stream through a 4 KiB cache, twice.
        for _ in 0..2 {
            for i in 0..1024 {
                c.access(i * 64);
            }
        }
        assert_eq!(c.misses(), 2048);
    }

    #[test]
    fn fully_associative_has_no_conflict_misses() {
        // Stride-128 pattern conflicts in a 2-set cache but fits FA.
        let mut sa = SetAssocCache::new(Bytes(256), Bytes(64), 2);
        let mut fa = SetAssocCache::fully_associative(Bytes(256), Bytes(64));
        let addrs: Vec<u64> = (0..4).map(|i| i * 128).collect();
        for _ in 0..10 {
            for &a in &addrs {
                sa.access(a);
                fa.access(a);
            }
        }
        assert_eq!(fa.misses(), 4, "FA: compulsory only");
        assert!(sa.misses() > fa.misses());
    }

    #[test]
    fn flush_clears_contents() {
        let mut c = tiny();
        c.access(0);
        c.flush();
        assert_eq!(c.accesses(), 0);
        assert!(!c.access(0));
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_sets_rejected() {
        let _ = SetAssocCache::new(Bytes(3 * 64 * 4), Bytes(64), 4);
    }
}
