//! Closed-form LLC miss model.
//!
//! For each (phase, object) access descriptor the model answers: how many of
//! these references miss the last-level cache and reach main memory? The
//! model is first-order by design — the paper's runtime itself tolerates
//! profiling noise (that is what its CF factors are for) — but it captures
//! the two effects every figure depends on:
//!
//! 1. **capacity**: an object whose phase working set fits its cache share
//!    stops missing (this is what bends the strong-scaling curve of
//!    Fig. 12 as per-rank data shrinks), and
//! 2. **pattern**: streaming misses once per line, random/gather miss with
//!    probability `1 − share/span`, dependent chains behave like random but
//!    serialize (their cost difference comes from MLP in the timing model).
//!
//! Cache capacity in a phase is shared among live objects proportionally to
//! their working sets — a standard linear partition approximation validated
//! against the trace simulator in this crate's tests.

use crate::pattern::{AccessPattern, ObjAccess};
use serde::{Deserialize, Serialize};
use unimem_sim::units::CACHE_LINE;
use unimem_sim::Bytes;

/// Per-rank last-level cache description.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CacheModel {
    /// Capacity available to this rank.
    pub size: Bytes,
    /// Line size (64 B everywhere in the reproduction).
    pub line: Bytes,
}

/// Estimated main-memory traffic for one (phase, object).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct MissEstimate {
    pub misses: u64,
    pub miss_bytes: Bytes,
}

impl CacheModel {
    /// 20 MiB shared LLC split two ways — the Xeon E5-2630 of Platform A
    /// runs one rank per socket in the paper's main experiments.
    pub fn platform_a() -> CacheModel {
        CacheModel {
            size: Bytes::mib(20),
            line: CACHE_LINE,
        }
    }

    pub fn new(size: Bytes) -> CacheModel {
        CacheModel {
            size,
            line: CACHE_LINE,
        }
    }

    /// Effective capacity share of an object touching `touched` bytes in a
    /// phase whose live objects touch `phase_total` bytes altogether.
    fn share(&self, touched: Bytes, phase_total: Bytes) -> f64 {
        if touched.is_zero() {
            return 0.0;
        }
        let total = phase_total.max(touched).as_f64();
        self.size.as_f64() * touched.as_f64() / total
    }

    /// Estimate main-memory misses for `acc`, given the total bytes touched
    /// by all objects live in the same phase (for capacity sharing).
    pub fn misses(&self, acc: &ObjAccess, phase_total: Bytes) -> MissEstimate {
        if acc.accesses == 0 || acc.touched.is_zero() {
            return MissEstimate::default();
        }
        let eff = self.share(acc.touched, phase_total);
        let touched = acc.touched.as_f64();
        let line = self.line.as_f64();
        let fits = touched <= eff;

        let misses = match acc.pattern {
            AccessPattern::Streaming { stride } => {
                if fits {
                    // Steady state across iterations: resident, no misses.
                    0.0
                } else {
                    // One miss per distinct line per traversal:
                    // accesses · stride / max(line, stride).
                    let s = (stride.as_f64()).max(1.0);
                    acc.accesses as f64 * s / line.max(s)
                }
            }
            AccessPattern::Random | AccessPattern::PointerChase => {
                let p_miss = (1.0 - eff / touched).clamp(0.0, 1.0);
                acc.accesses as f64 * p_miss
            }
            AccessPattern::Gather { index_span } => {
                let span = index_span.as_f64().max(touched);
                let p_miss = (1.0 - eff / span).clamp(0.0, 1.0);
                acc.accesses as f64 * p_miss
            }
            AccessPattern::Stencil { reuse_bytes } => {
                if fits {
                    0.0
                } else {
                    // Compulsory: each 8-byte element fetched once per sweep
                    // (one line serves line/8 elements). If the plane-reuse
                    // window also exceeds the share, the top/bottom
                    // neighbour planes are re-fetched: 3× traffic.
                    let compulsory = acc.accesses as f64 * 8.0 / line;
                    if reuse_bytes.as_f64() <= eff {
                        compulsory
                    } else {
                        3.0 * compulsory
                    }
                }
            }
        };
        let misses = misses.round().min(acc.accesses as f64).max(0.0) as u64;
        MissEstimate {
            misses,
            miss_bytes: Bytes(misses * self.line.get()),
        }
    }

    /// Total misses for a set of co-live descriptors (helper for drivers).
    pub fn phase_misses(&self, accs: &[ObjAccess]) -> Vec<MissEstimate> {
        let total: Bytes = accs.iter().map(|a| a.touched).sum();
        accs.iter().map(|a| self.misses(a, total)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unimem_hms::object::ObjId;

    fn model_kib(k: u64) -> CacheModel {
        CacheModel::new(Bytes::kib(k))
    }

    fn stream(touched: Bytes, accesses: u64) -> ObjAccess {
        ObjAccess::new(
            ObjId(0),
            accesses,
            touched,
            AccessPattern::Streaming { stride: Bytes(8) },
        )
    }

    #[test]
    fn fitting_stream_never_misses() {
        let m = model_kib(64);
        let est = m.misses(&stream(Bytes::kib(32), 100_000), Bytes::kib(32));
        assert_eq!(est.misses, 0);
    }

    #[test]
    fn overflowing_stream_misses_once_per_line() {
        let m = model_kib(64);
        // 1 MiB touched with 8-byte stride: 8 accesses share a 64B line.
        let est = m.misses(&stream(Bytes::mib(1), 800_000), Bytes::mib(1));
        assert_eq!(est.misses, 100_000);
        assert_eq!(est.miss_bytes, Bytes(100_000 * 64));
    }

    #[test]
    fn wide_stride_stream_misses_every_access() {
        let m = model_kib(64);
        let a = ObjAccess::new(
            ObjId(0),
            10_000,
            Bytes::mib(4),
            AccessPattern::Streaming { stride: Bytes(256) },
        );
        assert_eq!(m.misses(&a, Bytes::mib(4)).misses, 10_000);
    }

    #[test]
    fn random_miss_probability_scales_with_share() {
        let m = model_kib(256);
        // Working set 1 MiB, cache 256 KiB alone: p_miss = 1 - 1/4 = 0.75.
        let a = ObjAccess::new(ObjId(0), 100_000, Bytes::mib(1), AccessPattern::Random);
        let est = m.misses(&a, Bytes::mib(1));
        assert_eq!(est.misses, 75_000);
    }

    #[test]
    fn random_fitting_fully_hits() {
        let m = model_kib(256);
        let a = ObjAccess::new(ObjId(0), 100_000, Bytes::kib(128), AccessPattern::Random);
        assert_eq!(m.misses(&a, Bytes::kib(128)).misses, 0);
    }

    #[test]
    fn capacity_is_shared_between_live_objects() {
        let m = model_kib(256);
        let a = ObjAccess::new(ObjId(0), 100_000, Bytes::mib(1), AccessPattern::Random);
        // Alone: share = 256K. With a co-live 3 MiB object: share = 64K.
        let alone = m.misses(&a, Bytes::mib(1)).misses;
        let crowded = m.misses(&a, Bytes::mib(4)).misses;
        assert!(crowded > alone, "crowded={crowded} alone={alone}");
    }

    #[test]
    fn gather_uses_index_span() {
        let m = model_kib(256);
        let a = ObjAccess::new(
            ObjId(0),
            100_000,
            Bytes::kib(64),
            AccessPattern::Gather {
                index_span: Bytes::mib(4),
            },
        );
        // Span 4 MiB dominates; share is tiny → high miss rate.
        let est = m.misses(&a, Bytes::kib(64));
        assert!(est.misses > 90_000, "misses={}", est.misses);
    }

    #[test]
    fn stencil_reuse_window() {
        let m = model_kib(64);
        let mk = |reuse: Bytes| {
            ObjAccess::new(
                ObjId(0),
                80_000,
                Bytes::mib(1),
                AccessPattern::Stencil { reuse_bytes: reuse },
            )
        };
        // Window fits: compulsory only = accesses/8.
        let fits = m.misses(&mk(Bytes::kib(16)), Bytes::mib(1));
        assert_eq!(fits.misses, 10_000);
        // Window too big: 3× refetch.
        let spills = m.misses(&mk(Bytes::mib(1)), Bytes::mib(1));
        assert_eq!(spills.misses, 30_000);
    }

    #[test]
    fn misses_never_exceed_accesses() {
        let m = CacheModel::new(Bytes(64)); // absurdly small cache
        let a = ObjAccess::new(ObjId(0), 500, Bytes::mib(64), AccessPattern::Random);
        assert!(m.misses(&a, Bytes::mib(64)).misses <= 500);
    }

    #[test]
    fn zero_access_zero_misses() {
        let m = model_kib(64);
        let a = ObjAccess::new(ObjId(0), 0, Bytes::mib(1), AccessPattern::Random);
        assert_eq!(m.misses(&a, Bytes::mib(1)), MissEstimate::default());
    }

    #[test]
    fn phase_misses_matches_individual_calls() {
        let m = model_kib(128);
        let a = ObjAccess::new(ObjId(0), 10_000, Bytes::mib(1), AccessPattern::Random);
        let b = stream(Bytes::mib(2), 50_000);
        let ests = m.phase_misses(&[a, b]);
        let total = Bytes::mib(3);
        assert_eq!(ests[0], m.misses(&a, total));
        assert_eq!(ests[1], m.misses(&b, total));
    }

    #[test]
    fn strong_scaling_reduces_misses_nonlinearly() {
        // Halving the per-rank working set more than halves misses once it
        // approaches the cache size — the Fig. 12 effect.
        let m = model_kib(512);
        let big = ObjAccess::new(ObjId(0), 1_000_000, Bytes::mib(2), AccessPattern::Random);
        let small = big.scaled(0.25); // 512 KiB: exactly fits
        let mb = m.misses(&big, big.touched).misses as f64;
        let ms = m.misses(&small, small.touched).misses as f64;
        assert!(ms < mb / 4.0, "ms={ms} mb={mb}");
    }
}
