//! Access patterns and per-(phase, object) access descriptors.
//!
//! Section 2 of the paper ties sensitivity to pattern: "a data object with
//! ... massive, concurrent memory accesses (e.g., streaming pattern) is
//! sensitive to memory bandwidth, while a data object with ... dependent
//! memory accesses (e.g., pointer-chasing) is sensitive to memory latency."
//! [`AccessPattern`] encodes exactly that taxonomy; its `mlp()` (memory-level
//! parallelism) feeds the ground-truth roofline in `unimem-hms`.

use serde::{Deserialize, Serialize};
use unimem_hms::object::ObjId;
use unimem_hms::tier::AccessMix;
use unimem_sim::Bytes;

/// How a data object is referenced within one phase.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum AccessPattern {
    /// Unit-or-small-stride sequential sweep (STREAM-like). High MLP;
    /// bandwidth-bound on any tier.
    Streaming {
        /// Address increment between consecutive references, in bytes.
        stride: Bytes,
    },
    /// Uniformly random references over the touched range. Independent
    /// accesses, so moderately high MLP, but no spatial locality.
    Random,
    /// Dependent chain: the next address comes from the previous load
    /// (linked lists, solver recurrences along a dependence direction).
    /// MLP ≈ 1; purely latency-bound.
    PointerChase,
    /// Indirect gather/scatter through an index array (sparse matvec:
    /// `x[col_idx[j]]`). Independent but irregular; mid MLP.
    Gather {
        /// Span of the indexed target region, in bytes.
        index_span: Bytes,
    },
    /// Structured-grid stencil sweep: streaming with a plane-reuse window.
    /// If `reuse_bytes` (the live window of neighbouring planes) fits in
    /// cache, only compulsory traffic remains.
    Stencil {
        /// Bytes that must stay cached for neighbour reuse to hit.
        reuse_bytes: Bytes,
    },
}

impl AccessPattern {
    /// Memory-level parallelism this pattern sustains: how many main-memory
    /// requests overlap. Values are typical of out-of-order cores with
    /// ~10 line-fill buffers; only the *order* between patterns matters for
    /// the reproduction's shapes.
    pub fn mlp(&self) -> f64 {
        match self {
            // Hardware prefetchers keep streams far ahead of use: latency
            // is effectively hidden, bandwidth is the wall.
            AccessPattern::Streaming { .. } => 64.0,
            AccessPattern::Random => 10.0,
            AccessPattern::PointerChase => 1.0,
            AccessPattern::Gather { .. } => 6.0,
            AccessPattern::Stencil { .. } => 32.0,
        }
    }

    pub fn name(&self) -> &'static str {
        match self {
            AccessPattern::Streaming { .. } => "streaming",
            AccessPattern::Random => "random",
            AccessPattern::PointerChase => "pointer-chase",
            AccessPattern::Gather { .. } => "gather",
            AccessPattern::Stencil { .. } => "stencil",
        }
    }

    /// True for patterns whose accesses are independent of one another.
    pub fn independent(&self) -> bool {
        !matches!(self, AccessPattern::PointerChase)
    }
}

/// References to one data object within one phase, at class scale.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ObjAccess {
    pub obj: ObjId,
    /// Number of memory references the phase issues to the object.
    pub accesses: u64,
    /// Bytes of the object the phase touches (its working set here).
    pub touched: Bytes,
    pub pattern: AccessPattern,
    pub mix: AccessMix,
}

impl ObjAccess {
    pub fn new(obj: ObjId, accesses: u64, touched: Bytes, pattern: AccessPattern) -> ObjAccess {
        ObjAccess {
            obj,
            accesses,
            touched,
            pattern,
            mix: AccessMix::READ_ONLY,
        }
    }

    pub fn with_mix(mut self, mix: AccessMix) -> ObjAccess {
        self.mix = mix;
        self
    }

    /// Scale access counts and touched bytes by `f` (used when an object is
    /// partitioned into chunks or distributed over more ranks).
    pub fn scaled(mut self, f: f64) -> ObjAccess {
        debug_assert!(f >= 0.0);
        self.accesses = (self.accesses as f64 * f).round() as u64;
        self.touched = Bytes((self.touched.as_f64() * f).round() as u64);
        // Reuse windows and index spans shrink with the partition too.
        self.pattern = match self.pattern {
            AccessPattern::Gather { index_span } => AccessPattern::Gather {
                index_span: Bytes((index_span.as_f64() * f).round() as u64),
            },
            AccessPattern::Stencil { reuse_bytes } => AccessPattern::Stencil {
                reuse_bytes: Bytes((reuse_bytes.as_f64() * f).round() as u64),
            },
            p => p,
        };
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mlp_ordering_matches_taxonomy() {
        let stream = AccessPattern::Streaming { stride: Bytes(8) }.mlp();
        let stencil = AccessPattern::Stencil {
            reuse_bytes: Bytes(0),
        }
        .mlp();
        let random = AccessPattern::Random.mlp();
        let gather = AccessPattern::Gather {
            index_span: Bytes(0),
        }
        .mlp();
        let chase = AccessPattern::PointerChase.mlp();
        assert!(stream > stencil && stencil > random && random > gather && gather > chase);
        assert_eq!(chase, 1.0);
    }

    #[test]
    fn pointer_chase_is_dependent() {
        assert!(!AccessPattern::PointerChase.independent());
        assert!(AccessPattern::Random.independent());
    }

    #[test]
    fn scaling_halves_counts() {
        let a = ObjAccess::new(
            ObjId(0),
            1000,
            Bytes(4096),
            AccessPattern::Gather {
                index_span: Bytes(8192),
            },
        )
        .scaled(0.5);
        assert_eq!(a.accesses, 500);
        assert_eq!(a.touched, Bytes(2048));
        match a.pattern {
            AccessPattern::Gather { index_span } => assert_eq!(index_span, Bytes(4096)),
            _ => panic!("pattern changed"),
        }
    }

    #[test]
    fn names_are_stable() {
        assert_eq!(AccessPattern::Random.name(), "random");
        assert_eq!(
            AccessPattern::Streaming { stride: Bytes(8) }.name(),
            "streaming"
        );
    }
}
