//! Address-stream generators for the access-pattern vocabulary.
//!
//! These produce miniature traces matching each [`AccessPattern`] so tests
//! can replay them through the [`SetAssocCache`](crate::SetAssocCache) and check the analytic
//! model's predictions. Streams are deterministic given the RNG seed.

use crate::pattern::AccessPattern;
use unimem_sim::{Bytes, DetRng};

/// Generate `n` byte addresses in `[base, base+span)` following `pattern`.
pub fn generate(
    pattern: AccessPattern,
    base: u64,
    span: Bytes,
    n: usize,
    rng: &mut DetRng,
) -> Vec<u64> {
    let span_b = span.get().max(8);
    match pattern {
        AccessPattern::Streaming { stride } => {
            let s = stride.get().max(1);
            (0..n as u64).map(|i| base + (i * s) % span_b).collect()
        }
        AccessPattern::Random => (0..n)
            .map(|_| base + (rng.u64() % (span_b / 8)) * 8)
            .collect(),
        AccessPattern::PointerChase => {
            // A random Hamiltonian cycle over 8-byte slots: the address
            // sequence is a dependent chain with no spatial locality.
            let slots = (span_b / 8).max(1) as usize;
            let mut order: Vec<usize> = (0..slots).collect();
            rng.shuffle(&mut order);
            let mut next = vec![0usize; slots];
            for w in 0..slots {
                next[order[w]] = order[(w + 1) % slots];
            }
            let mut cur = order[0];
            (0..n)
                .map(|_| {
                    let a = base + (cur as u64) * 8;
                    cur = next[cur];
                    a
                })
                .collect()
        }
        AccessPattern::Gather { index_span } => {
            let tgt = index_span.get().max(span_b);
            (0..n).map(|_| base + (rng.u64() % (tgt / 8)) * 8).collect()
        }
        AccessPattern::Stencil { .. } => {
            // 1-D 3-point stencil sweep over the span: touch i-1, i, i+1.
            let slots = (span_b / 8).max(3);
            let mut out = Vec::with_capacity(n);
            let mut i: u64 = 1;
            while out.len() < n {
                for d in [-1i64, 0, 1] {
                    if out.len() == n {
                        break;
                    }
                    let slot = (i as i64 + d).clamp(0, slots as i64 - 1) as u64;
                    out.push(base + slot * 8);
                }
                i = if i + 1 >= slots - 1 { 1 } else { i + 1 };
            }
            out
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::setassoc::SetAssocCache;

    #[test]
    fn streaming_trace_is_sequential() {
        let mut rng = DetRng::seed(1);
        let t = generate(
            AccessPattern::Streaming { stride: Bytes(8) },
            0,
            Bytes(80),
            20,
            &mut rng,
        );
        assert_eq!(t[0], 0);
        assert_eq!(t[1], 8);
        assert_eq!(t[10], 0); // wraps at span
    }

    #[test]
    fn pchase_visits_every_slot_once_per_cycle() {
        let mut rng = DetRng::seed(2);
        let slots = 64;
        let t = generate(
            AccessPattern::PointerChase,
            0,
            Bytes(slots * 8),
            slots as usize,
            &mut rng,
        );
        let mut seen: Vec<u64> = t.iter().map(|a| a / 8).collect();
        seen.sort_unstable();
        seen.dedup();
        assert_eq!(seen.len(), slots as usize, "cycle must cover all slots");
    }

    #[test]
    fn traces_are_deterministic() {
        let mk = || {
            let mut rng = DetRng::seed(7);
            generate(AccessPattern::Random, 0, Bytes::kib(16), 100, &mut rng)
        };
        assert_eq!(mk(), mk());
    }

    #[test]
    fn random_trace_stays_in_span() {
        let mut rng = DetRng::seed(3);
        let t = generate(AccessPattern::Random, 4096, Bytes::kib(1), 500, &mut rng);
        assert!(t.iter().all(|&a| (4096..4096 + 1024).contains(&a)));
    }

    #[test]
    fn replay_through_cache_runs() {
        let mut rng = DetRng::seed(4);
        let mut c = SetAssocCache::new(Bytes::kib(4), Bytes(64), 4);
        for a in generate(AccessPattern::Random, 0, Bytes::kib(64), 2000, &mut rng) {
            c.access(a);
        }
        assert_eq!(c.accesses(), 2000);
        assert!(c.miss_ratio() > 0.5); // 64K set through 4K cache
    }

    #[test]
    fn stencil_trace_touches_neighbours() {
        let mut rng = DetRng::seed(5);
        let t = generate(
            AccessPattern::Stencil {
                reuse_bytes: Bytes(0),
            },
            0,
            Bytes(800),
            9,
            &mut rng,
        );
        // First triplet centres on slot 1: addresses 0, 8, 16.
        assert_eq!(&t[0..3], &[0, 8, 16]);
    }
}
