//! Last-level cache models.
//!
//! The paper's placement decisions hinge on one cache effect: how many of a
//! data object's references reach *main memory* (LLC misses — the event the
//! profiler samples). This crate supplies that number two ways:
//!
//! * [`analytic`] — a closed-form, per-pattern miss model used at workload
//!   scale (CLASS C/D footprints are far too large to trace). Capacity is
//!   shared among the objects live in a phase in proportion to their
//!   working sets, a standard first-order partition model.
//! * [`setassoc`] — a set-associative LRU trace simulator used by tests to
//!   validate the analytic model on miniature versions of each pattern.
//! * [`pattern`] — the access-pattern vocabulary ([`AccessPattern`]) and the
//!   per-(phase, object) access descriptor ([`ObjAccess`]) the workloads
//!   emit and both models consume. Patterns also carry the memory-level
//!   parallelism estimate that makes an object bandwidth- or
//!   latency-sensitive in the ground-truth timing model.

pub mod analytic;
pub mod pattern;
pub mod setassoc;
pub mod trace;

pub use analytic::{CacheModel, MissEstimate};
pub use pattern::{AccessPattern, ObjAccess};
pub use setassoc::SetAssocCache;
