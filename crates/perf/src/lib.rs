//! Sampling-based profiling and offline calibration.
//!
//! The paper's runtime observes applications exclusively through hardware
//! performance counters in sampling mode (PEBS/IBS): last-level-cache-miss
//! events with captured addresses, mapped to target data objects. This crate
//! reproduces that observation channel and the offline calibration that
//! anchors the runtime's performance models:
//!
//! * [`sampler`] — the simulated counter. Given a phase's ground-truth
//!   per-object misses and memory times, it produces what the hardware
//!   would report: per-object *sampled* access counts (event-based
//!   sampling with a fixed period, hence systematic undercounting — the
//!   very inaccuracy the paper's CF factors exist to absorb) and per-object
//!   *duty* windows (time-based 1000-cycle sampling windows that saw an
//!   access), plus the profiling overhead charged to the runtime.
//! * [`eq1`] — Equation 1 of the paper: estimated bandwidth consumption of
//!   a data object from sampled quantities.
//! * [`mod@calibrate`] — the offline step: run STREAM (bandwidth-bound) and
//!   pointer-chasing (latency-bound) through the same machinery to obtain
//!   `CF_bw`, `CF_lat` and the sampled `BW_peak` of NVM.
//! * [`kernels`] — *real* STREAM-triad and pointer-chase kernels used by
//!   wall-clock benches and the quickstart example.

pub mod calibrate;
pub mod eq1;
pub mod kernels;
pub mod sampler;

pub use calibrate::{calibrate, Calibration};
pub use eq1::eq1_bandwidth;
pub use sampler::{ObjSample, PhaseProfile, Sampler, SamplerConfig};
