//! The simulated sampling performance counter.
//!
//! Two sampling mechanisms coexist, as on real PMUs:
//!
//! * **event-based address capture**: every `event_period`-th LLC miss
//!   records its address. Mapping addresses to objects gives the per-object
//!   *recorded access count* — the paper's `#data_access`. Captured counts
//!   systematically underestimate true misses by roughly the period; the
//!   paper's constant factors absorb that scale.
//! * **time-based windows**: a sample fires every `window_cycles` CPU
//!   cycles (the paper uses 1000). A window "has data accesses" to an
//!   object when the object's memory traffic is in flight at that instant,
//!   which happens with probability equal to the object's memory duty
//!   cycle. The ratio `windows_hit / windows` is Eq. 1's
//!   `#samples_with_data_accesses / #samples`.
//!
//! Both are thinned with deterministic binomial noise so repeated profiling
//! of identical phases shows realistic (but reproducible) jitter.

use serde::{Deserialize, Serialize};
use unimem_hms::object::UnitId;
use unimem_sim::{Bytes, DetRng, VDur};

/// Sampler configuration (defaults match the paper's §4 setup).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SamplerConfig {
    /// Time-based sampling interval in CPU cycles (paper: 1000).
    pub window_cycles: u64,
    /// CPU frequency (both paper platforms: 2.4 GHz).
    pub cpu_hz: f64,
    /// Event-based address-capture period: one address per this many LLC
    /// misses.
    pub event_period: u64,
    /// Cost charged per time window while profiling is active (PMU read +
    /// buffer drain, amortized). Keeps "pure runtime cost" honest.
    pub per_window_cost: VDur,
}

impl Default for SamplerConfig {
    fn default() -> SamplerConfig {
        SamplerConfig {
            window_cycles: 1000,
            cpu_hz: 2.4e9,
            event_period: 1000,
            per_window_cost: VDur::from_nanos(0.5),
        }
    }
}

/// What the counters reported for one object in one phase.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ObjSample {
    pub unit: UnitId,
    /// Sampled access count (`#data_access`): addresses captured in this
    /// object. True miss count ≈ `recorded × event_period`.
    pub recorded: u64,
    /// Time windows that observed traffic to this object.
    pub windows_hit: u64,
}

/// Profile of one phase execution.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PhaseProfile {
    /// Total time-based windows in the phase (`#samples`).
    pub windows: u64,
    /// Phase execution time the profile covers.
    pub time: VDur,
    pub samples: Vec<ObjSample>,
    /// Profiling overhead to charge the runtime.
    pub overhead: VDur,
}

impl PhaseProfile {
    /// Sampled accesses for `unit`, zero if unseen.
    pub fn recorded(&self, unit: UnitId) -> u64 {
        self.samples
            .iter()
            .find(|s| s.unit == unit)
            .map_or(0, |s| s.recorded)
    }
}

/// Ground truth the sampler observes for one object in one phase.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GroundTruth {
    pub unit: UnitId,
    /// True LLC misses to the object in the phase.
    pub misses: u64,
    /// Bytes those misses moved.
    pub miss_bytes: Bytes,
    /// Time the phase spent with this object's memory traffic in flight.
    pub mem_time: VDur,
}

/// The simulated PMU.
#[derive(Debug, Clone)]
pub struct Sampler {
    pub cfg: SamplerConfig,
    rng: DetRng,
}

impl Sampler {
    pub fn new(cfg: SamplerConfig, seed: u64) -> Sampler {
        Sampler {
            cfg,
            rng: DetRng::derive(seed, "pebs-sampler"),
        }
    }

    /// Number of time windows in a span.
    pub fn windows_in(&self, time: VDur) -> u64 {
        (time.secs() * self.cfg.cpu_hz / self.cfg.window_cycles as f64) as u64
    }

    /// Observe one phase execution.
    pub fn sample_phase(&mut self, time: VDur, truth: &[GroundTruth]) -> PhaseProfile {
        let windows = self.windows_in(time);
        let p_capture = 1.0 / self.cfg.event_period as f64;
        let samples = truth
            .iter()
            .filter(|t| t.misses > 0)
            .map(|t| {
                let recorded = self.rng.binomial(t.misses, p_capture);
                let duty = (t.mem_time.secs() / time.secs().max(f64::MIN_POSITIVE)).clamp(0.0, 1.0);
                let windows_hit = self.rng.binomial(windows, duty);
                ObjSample {
                    unit: t.unit,
                    recorded,
                    windows_hit,
                }
            })
            .filter(|s| s.recorded > 0 || s.windows_hit > 0)
            .collect();
        PhaseProfile {
            windows,
            time,
            samples,
            overhead: self.cfg.per_window_cost * windows as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unimem_hms::object::ObjId;

    fn unit(n: u32) -> UnitId {
        UnitId::whole(ObjId(n))
    }

    fn truth(n: u32, misses: u64, mem_frac: f64, time: VDur) -> GroundTruth {
        GroundTruth {
            unit: unit(n),
            misses,
            miss_bytes: Bytes(misses * 64),
            mem_time: time * mem_frac,
        }
    }

    #[test]
    fn window_count_matches_paper_example() {
        // Paper §3.1.2: 10 s phase, 1000-cycle interval, 1 GHz → 10^7 samples.
        let s = Sampler::new(
            SamplerConfig {
                cpu_hz: 1e9,
                ..SamplerConfig::default()
            },
            0,
        );
        assert_eq!(s.windows_in(VDur::from_secs(10.0)), 10_000_000);
    }

    #[test]
    fn recorded_counts_undercount_by_period() {
        let mut s = Sampler::new(SamplerConfig::default(), 1);
        let t = VDur::from_secs(1.0);
        let p = s.sample_phase(t, &[truth(0, 1_000_000, 0.5, t)]);
        let rec = p.recorded(unit(0));
        // Expect ≈ misses / event_period = 1000, with binomial noise.
        assert!((800..1200).contains(&rec), "recorded={rec}");
    }

    #[test]
    fn duty_cycle_drives_windows_hit() {
        let mut s = Sampler::new(SamplerConfig::default(), 2);
        let t = VDur::from_secs(0.1);
        let p = s.sample_phase(t, &[truth(0, 100_000, 0.25, t), truth(1, 100_000, 1.0, t)]);
        let w0 = p.samples.iter().find(|x| x.unit == unit(0)).unwrap();
        let w1 = p.samples.iter().find(|x| x.unit == unit(1)).unwrap();
        let f0 = w0.windows_hit as f64 / p.windows as f64;
        let f1 = w1.windows_hit as f64 / p.windows as f64;
        assert!((f0 - 0.25).abs() < 0.02, "f0={f0}");
        assert!((f1 - 1.0).abs() < 0.001, "f1={f1}");
    }

    #[test]
    fn zero_miss_objects_are_invisible() {
        let mut s = Sampler::new(SamplerConfig::default(), 3);
        let t = VDur::from_secs(0.1);
        let p = s.sample_phase(t, &[truth(0, 0, 0.5, t)]);
        assert!(p.samples.is_empty());
        assert_eq!(p.recorded(unit(0)), 0);
    }

    #[test]
    fn sampling_is_deterministic_per_seed() {
        let run = |seed| {
            let mut s = Sampler::new(SamplerConfig::default(), seed);
            let t = VDur::from_secs(0.5);
            s.sample_phase(t, &[truth(0, 500_000, 0.7, t)])
        };
        assert_eq!(run(7), run(7));
        assert_ne!(run(7).recorded(unit(0)), run(8).recorded(unit(0)));
    }

    #[test]
    fn overhead_scales_with_windows() {
        let mut s = Sampler::new(SamplerConfig::default(), 4);
        let t1 = VDur::from_secs(0.1);
        let t2 = VDur::from_secs(0.2);
        let p1 = s.sample_phase(t1, &[]);
        let p2 = s.sample_phase(t2, &[]);
        assert!((p2.overhead.secs() / p1.overhead.secs() - 2.0).abs() < 0.01);
        // 0.5 ns per 1000-cycle window @2.4 GHz ≈ 0.12% overhead.
        assert!(p1.overhead.secs() / t1.secs() < 0.002);
    }
}
