//! Offline calibration of the performance-model constant factors.
//!
//! The paper (§3.1.2) measures, once per platform:
//!
//! * `CF_bw` — ratio between STREAM's measured time and the time predicted
//!   from sampled counts as `#data_access × cacheline / DRAM_bw`;
//! * `CF_lat` — same for a single-threaded pointer-chasing benchmark with
//!   predicted time `#data_access × DRAM_lat`;
//! * `BW_peak` — NVM peak bandwidth *as seen through Eq. 1 and the
//!   counters* (so classification thresholds compare like with like).
//!
//! Both factors absorb the event-sampling undercount (≈ the capture
//! period) plus whatever the lightweight model ignores (overlap, prefetch,
//! eviction traffic).

use crate::eq1::eq1_bandwidth;
use crate::sampler::{GroundTruth, Sampler, SamplerConfig};
use serde::{Deserialize, Serialize};
use unimem_cache::{AccessPattern, CacheModel, ObjAccess};
use unimem_hms::object::{ObjId, UnitId};
use unimem_hms::profiles::MachineConfig;
use unimem_hms::tier::{AccessMix, TierKind};
use unimem_sim::Bytes;

/// Platform constants produced by offline calibration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Calibration {
    /// Eq. 2 constant factor (bandwidth model).
    pub cf_bw: f64,
    /// Eq. 3 constant factor (latency model).
    pub cf_lat: f64,
    /// Peak NVM bandwidth in sampled units (bytes/s), for Eq. 1 thresholds.
    pub bw_peak_sampled: f64,
}

/// STREAM working set: far larger than any LLC, as the benchmark requires.
const STREAM_BYTES: u64 = 192 * (1 << 20);
/// Pointer-chase working set (pChase defaults to tens of MiB).
const PCHASE_BYTES: u64 = 64 * (1 << 20);

fn stream_descriptor() -> ObjAccess {
    // Triad: a[i] = b[i] + s·c[i] over three arrays, modeled as one object
    // (the calibration only needs aggregate counts): 8-byte elements,
    // 1/3 writes.
    ObjAccess::new(
        ObjId(0),
        STREAM_BYTES / 8,
        Bytes(STREAM_BYTES),
        AccessPattern::Streaming { stride: Bytes(8) },
    )
    .with_mix(AccessMix::new(2.0 / 3.0))
}

fn pchase_descriptor() -> ObjAccess {
    ObjAccess::new(
        ObjId(0),
        PCHASE_BYTES / 8,
        Bytes(PCHASE_BYTES),
        AccessPattern::PointerChase,
    )
    .with_mix(AccessMix::READ_ONLY)
}

/// Run one calibration micro-benchmark on `tier`, returning
/// (measured time, recorded accesses, windows_hit, windows, phase time).
fn run_micro(
    machine: &MachineConfig,
    cache: &CacheModel,
    sampler: &mut Sampler,
    acc: &ObjAccess,
    tier: TierKind,
) -> (unimem_sim::VDur, u64, u64, u64) {
    let est = cache.misses(acc, acc.touched);
    let mem_time =
        machine
            .tier(tier)
            .access_time(est.misses, est.miss_bytes, acc.pattern.mlp(), acc.mix);
    // The micro-benchmarks are pure memory loops: phase time = memory time.
    let profile = sampler.sample_phase(
        mem_time,
        &[GroundTruth {
            unit: UnitId::whole(acc.obj),
            misses: est.misses,
            miss_bytes: est.miss_bytes,
            mem_time,
        }],
    );
    let s = &profile.samples[0];
    (mem_time, s.recorded, s.windows_hit, profile.windows)
}

/// Perform the offline calibration for a machine configuration.
pub fn calibrate(
    machine: &MachineConfig,
    cache: &CacheModel,
    cfg: SamplerConfig,
    seed: u64,
) -> Calibration {
    let mut sampler = Sampler::new(cfg, seed ^ 0xca11_b8a7e);

    // CF_bw: STREAM on DRAM.
    let stream = stream_descriptor();
    let (measured, recorded, _, _) =
        run_micro(machine, cache, &mut sampler, &stream, TierKind::Dram);
    let predicted = Bytes(recorded * 64) / machine.dram.bandwidth(stream.mix);
    let cf_bw = if predicted.is_zero() {
        1.0
    } else {
        measured.secs() / predicted.secs()
    };

    // CF_lat: pointer chase on DRAM (single thread, no concurrency).
    let chase = pchase_descriptor();
    let (measured_l, recorded_l, _, _) =
        run_micro(machine, cache, &mut sampler, &chase, TierKind::Dram);
    let predicted_l = machine.dram.latency(chase.mix) * recorded_l as f64;
    let cf_lat = if predicted_l.is_zero() {
        1.0
    } else {
        measured_l.secs() / predicted_l.secs()
    };

    // BW_peak: STREAM on NVM, evaluated through Eq. 1.
    let (t_nvm, rec_nvm, hit_nvm, win_nvm) =
        run_micro(machine, cache, &mut sampler, &stream, TierKind::Nvm);
    let bw_peak_sampled = eq1_bandwidth(rec_nvm, hit_nvm, win_nvm, t_nvm);

    Calibration {
        cf_bw,
        cf_lat,
        bw_peak_sampled,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn setup() -> (MachineConfig, CacheModel) {
        (
            MachineConfig::nvm_bw_fraction(0.5),
            CacheModel::platform_a(),
        )
    }

    #[test]
    fn cf_factors_absorb_sampling_period() {
        let (m, c) = setup();
        let cal = calibrate(&m, &c, SamplerConfig::default(), 42);
        // Event period 1000 → counts undercount ×1000 → CF ≈ 1000 up to
        // model error (mix blending, MLP) within a factor of a few.
        assert!(
            cal.cf_bw > 200.0 && cal.cf_bw < 5000.0,
            "cf_bw={}",
            cal.cf_bw
        );
        assert!(
            cal.cf_lat > 200.0 && cal.cf_lat < 5000.0,
            "cf_lat={}",
            cal.cf_lat
        );
    }

    #[test]
    fn bw_peak_is_sampled_scale() {
        let (m, c) = setup();
        let cal = calibrate(&m, &c, SamplerConfig::default(), 42);
        let physical_nvm_bw = m.nvm.read_bw.bytes_per_s();
        // Sampled peak ≈ physical / event_period (harmonic-mix corrections
        // aside): strictly below physical, well above physical/10^5.
        assert!(cal.bw_peak_sampled < physical_nvm_bw);
        assert!(cal.bw_peak_sampled > physical_nvm_bw / 100_000.0);
    }

    #[test]
    fn calibration_is_deterministic() {
        let (m, c) = setup();
        let a = calibrate(&m, &c, SamplerConfig::default(), 7);
        let b = calibrate(&m, &c, SamplerConfig::default(), 7);
        assert_eq!(a, b);
    }

    #[test]
    fn latency_config_shifts_peak_little_bw_config_halves_it() {
        let c = CacheModel::platform_a();
        let base = calibrate(
            &MachineConfig::nvm_bw_fraction(1.0),
            &c,
            SamplerConfig::default(),
            9,
        );
        let half = calibrate(
            &MachineConfig::nvm_bw_fraction(0.5),
            &c,
            SamplerConfig::default(),
            9,
        );
        let ratio = half.bw_peak_sampled / base.bw_peak_sampled;
        assert!((ratio - 0.5).abs() < 0.05, "ratio={ratio}");
    }
}
