//! Real calibration kernels: STREAM triad and pointer chase.
//!
//! These run on the host for the wall-clock path (criterion benches, the
//! quickstart example): STREAM saturates bandwidth with independent
//! unit-stride traffic, the pointer chase serializes dependent loads. They
//! are the physical counterparts of the descriptors in [`mod@crate::calibrate`].

use unimem_sim::DetRng;

/// STREAM triad: `a[i] = b[i] + s·c[i]`. Returns a checksum so the compiler
/// cannot elide the work.
pub fn stream_triad(a: &mut [f64], b: &[f64], c: &[f64], s: f64) -> f64 {
    assert!(a.len() == b.len() && b.len() == c.len());
    for i in 0..a.len() {
        a[i] = b[i] + s * c[i];
    }
    a.iter().sum()
}

/// Build a random cyclic permutation for pointer chasing: `next[i]` is the
/// successor of slot `i`, and following it visits every slot exactly once.
pub fn build_chase_ring(slots: usize, rng: &mut DetRng) -> Vec<u32> {
    assert!(slots >= 1 && slots <= u32::MAX as usize);
    let mut order: Vec<u32> = (0..slots as u32).collect();
    rng.shuffle(&mut order);
    let mut next = vec![0u32; slots];
    for w in 0..slots {
        next[order[w] as usize] = order[(w + 1) % slots];
    }
    next
}

/// Chase `steps` hops through the ring starting at slot 0. Returns the
/// final slot (data-dependent, so the loads cannot be reordered away).
pub fn pointer_chase(next: &[u32], steps: usize) -> u32 {
    let mut cur = 0u32;
    for _ in 0..steps {
        cur = next[cur as usize];
    }
    cur
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn triad_computes_elementwise() {
        let b = [1.0, 2.0, 3.0];
        let c = [10.0, 20.0, 30.0];
        let mut a = [0.0; 3];
        let sum = stream_triad(&mut a, &b, &c, 2.0);
        assert_eq!(a, [21.0, 42.0, 63.0]);
        assert_eq!(sum, 126.0);
    }

    #[test]
    fn ring_is_a_single_cycle() {
        let mut rng = DetRng::seed(3);
        let n = 257;
        let next = build_chase_ring(n, &mut rng);
        let mut cur = 0u32;
        let mut seen = vec![false; n];
        for _ in 0..n {
            assert!(!seen[cur as usize], "revisited before full cycle");
            seen[cur as usize] = true;
            cur = next[cur as usize];
        }
        assert_eq!(cur, 0, "must return to start after n hops");
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn chase_steps_land_deterministically() {
        let mut rng = DetRng::seed(4);
        let next = build_chase_ring(64, &mut rng);
        assert_eq!(pointer_chase(&next, 64), 0);
        let a = pointer_chase(&next, 17);
        let b = pointer_chase(&next, 17);
        assert_eq!(a, b);
    }

    #[test]
    fn single_slot_ring() {
        let mut rng = DetRng::seed(5);
        let next = build_chase_ring(1, &mut rng);
        assert_eq!(pointer_chase(&next, 10), 0);
    }
}
