//! Equation 1 of the paper: per-object bandwidth consumption estimate.
//!
//! ```text
//!                 #data_access × cacheline_size
//! BW_data_obj = ─────────────────────────────────────────────
//!               (#samples_with_data_accesses / #samples) × T
//! ```
//!
//! All quantities come from the sampler, so the estimate lives in "sampled
//! units" — systematically smaller than physical bandwidth by roughly the
//! event-capture period. That is fine: the classification thresholds
//! compare it against `BW_peak` measured the *same* way (STREAM through the
//! same counters), so the scale cancels.

use unimem_sim::units::CACHE_LINE;
use unimem_sim::VDur;

/// Sampled bandwidth estimate in bytes/second (sampled units).
///
/// Returns 0 when the object was never seen in a window (no duty time) —
/// such objects are not candidates for movement anyway.
pub fn eq1_bandwidth(recorded: u64, windows_hit: u64, windows: u64, phase_time: VDur) -> f64 {
    if windows_hit == 0 || windows == 0 || phase_time.is_zero() {
        return 0.0;
    }
    let accessed_bytes = recorded as f64 * CACHE_LINE.as_f64();
    let duty_time = (windows_hit as f64 / windows as f64) * phase_time.secs();
    accessed_bytes / duty_time
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_worked_example() {
        // §3.1.2: 10 s phase, 10^7 samples, 10^5 with accesses → duty 0.1 s.
        // Say 2000 recorded accesses: BW = 2000·64 / 0.1 = 1.28 MB/s.
        let bw = eq1_bandwidth(2000, 100_000, 10_000_000, VDur::from_secs(10.0));
        assert!((bw - 1_280_000.0).abs() < 1.0, "bw={bw}");
    }

    #[test]
    fn dense_traffic_estimates_higher_bw() {
        let t = VDur::from_secs(1.0);
        // Same recorded count, but one object concentrates it in 10% duty.
        let sparse = eq1_bandwidth(1000, 1_000_000, 1_000_000, t);
        let dense = eq1_bandwidth(1000, 100_000, 1_000_000, t);
        assert!((dense / sparse - 10.0).abs() < 1e-9);
    }

    #[test]
    fn unseen_object_is_zero() {
        assert_eq!(eq1_bandwidth(0, 0, 1_000_000, VDur::from_secs(1.0)), 0.0);
        assert_eq!(eq1_bandwidth(10, 0, 1_000_000, VDur::from_secs(1.0)), 0.0);
    }

    #[test]
    fn zero_time_guard() {
        assert_eq!(eq1_bandwidth(10, 10, 100, VDur::ZERO), 0.0);
    }
}
