//! Byte quantities, bandwidths and latencies.
//!
//! These newtypes make the timing formulas in the HMS model read like the
//! paper's equations: `bytes / bandwidth` yields a [`VDur`], a [`Latency`]
//! is a [`VDur`] with a named role, and scaling a tier ("½ DRAM bandwidth",
//! "4× DRAM latency") is explicit.

use crate::time::VDur;
use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub};

/// A number of bytes.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Bytes(pub u64);

/// Memory or link bandwidth in bytes per second.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Serialize, Deserialize)]
pub struct Bandwidth(pub f64);

/// A fixed per-access latency.
pub type Latency = VDur;

pub const KIB: u64 = 1 << 10;
pub const MIB: u64 = 1 << 20;
pub const GIB: u64 = 1 << 30;

/// Cache line size used throughout the reproduction (matches the paper's
/// `cacheline_size` in Eq. 1/2).
pub const CACHE_LINE: Bytes = Bytes(64);

impl Bytes {
    pub const ZERO: Bytes = Bytes(0);

    #[inline]
    pub fn kib(n: u64) -> Bytes {
        Bytes(n * KIB)
    }

    #[inline]
    pub fn mib(n: u64) -> Bytes {
        Bytes(n * MIB)
    }

    #[inline]
    pub fn gib(n: u64) -> Bytes {
        Bytes(n * GIB)
    }

    #[inline]
    pub fn get(self) -> u64 {
        self.0
    }

    #[inline]
    pub fn as_f64(self) -> f64 {
        self.0 as f64
    }

    #[inline]
    pub fn as_mib(self) -> f64 {
        self.0 as f64 / MIB as f64
    }

    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0
    }

    #[inline]
    pub fn min(self, other: Bytes) -> Bytes {
        Bytes(self.0.min(other.0))
    }

    #[inline]
    pub fn max(self, other: Bytes) -> Bytes {
        Bytes(self.0.max(other.0))
    }

    #[inline]
    pub fn saturating_sub(self, other: Bytes) -> Bytes {
        Bytes(self.0.saturating_sub(other.0))
    }

    /// Number of cache lines covering this many bytes (rounded up).
    #[inline]
    pub fn cache_lines(self) -> u64 {
        self.0.div_ceil(CACHE_LINE.0)
    }
}

impl Add for Bytes {
    type Output = Bytes;
    #[inline]
    fn add(self, rhs: Bytes) -> Bytes {
        Bytes(self.0 + rhs.0)
    }
}

impl AddAssign for Bytes {
    #[inline]
    fn add_assign(&mut self, rhs: Bytes) {
        self.0 += rhs.0;
    }
}

impl Sub for Bytes {
    type Output = Bytes;
    #[inline]
    fn sub(self, rhs: Bytes) -> Bytes {
        debug_assert!(self.0 >= rhs.0, "Bytes underflow: {} - {}", self.0, rhs.0);
        Bytes(self.0.saturating_sub(rhs.0))
    }
}

impl Mul<u64> for Bytes {
    type Output = Bytes;
    #[inline]
    fn mul(self, rhs: u64) -> Bytes {
        Bytes(self.0 * rhs)
    }
}

impl Sum for Bytes {
    fn sum<I: Iterator<Item = Bytes>>(iter: I) -> Bytes {
        iter.fold(Bytes::ZERO, |a, b| a + b)
    }
}

impl Div<Bandwidth> for Bytes {
    type Output = VDur;
    /// Transfer time of this many bytes at the given bandwidth.
    #[inline]
    fn div(self, bw: Bandwidth) -> VDur {
        debug_assert!(bw.0 > 0.0, "division by zero bandwidth");
        VDur::from_secs(self.0 as f64 / bw.0)
    }
}

impl fmt::Display for Bytes {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        if b >= GIB {
            write!(f, "{:.2}GiB", b as f64 / GIB as f64)
        } else if b >= MIB {
            write!(f, "{:.2}MiB", b as f64 / MIB as f64)
        } else if b >= KIB {
            write!(f, "{:.2}KiB", b as f64 / KIB as f64)
        } else {
            write!(f, "{b}B")
        }
    }
}

impl Bandwidth {
    /// Bandwidth from MB/s (decimal, as in the paper's Table 1).
    #[inline]
    pub fn mb_per_s(mb: f64) -> Bandwidth {
        Bandwidth(mb * 1e6)
    }

    /// Bandwidth from GB/s (decimal).
    #[inline]
    pub fn gb_per_s(gb: f64) -> Bandwidth {
        Bandwidth(gb * 1e9)
    }

    #[inline]
    pub fn bytes_per_s(self) -> f64 {
        self.0
    }

    #[inline]
    pub fn as_gb_per_s(self) -> f64 {
        self.0 / 1e9
    }

    /// Scale, e.g. `dram_bw.scaled(0.5)` for the paper's "½ DRAM bandwidth".
    #[inline]
    pub fn scaled(self, factor: f64) -> Bandwidth {
        debug_assert!(factor > 0.0);
        Bandwidth(self.0 * factor)
    }

    /// Bytes transferable in `d`.
    #[inline]
    pub fn bytes_in(self, d: VDur) -> Bytes {
        Bytes((self.0 * d.secs()) as u64)
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.0 >= 1e9 {
            write!(f, "{:.2}GB/s", self.0 / 1e9)
        } else {
            write!(f, "{:.1}MB/s", self.0 / 1e6)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_constructors() {
        assert_eq!(Bytes::kib(2).get(), 2048);
        assert_eq!(Bytes::mib(1).get(), 1 << 20);
        assert_eq!(Bytes::gib(1).get(), 1 << 30);
    }

    #[test]
    fn transfer_time() {
        // 1 GB over 1 GB/s is one second.
        let t = Bytes(1_000_000_000) / Bandwidth::gb_per_s(1.0);
        assert!((t.secs() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn bandwidth_scaling() {
        let half = Bandwidth::gb_per_s(10.0).scaled(0.5);
        assert!((half.as_gb_per_s() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn cache_lines_round_up() {
        assert_eq!(Bytes(0).cache_lines(), 0);
        assert_eq!(Bytes(1).cache_lines(), 1);
        assert_eq!(Bytes(64).cache_lines(), 1);
        assert_eq!(Bytes(65).cache_lines(), 2);
    }

    #[test]
    fn bytes_in_duration() {
        let bw = Bandwidth::mb_per_s(100.0);
        assert_eq!(bw.bytes_in(VDur::from_secs(2.0)).get(), 200_000_000);
    }

    #[test]
    fn saturating_sub() {
        assert_eq!(Bytes(5).saturating_sub(Bytes(10)), Bytes::ZERO);
        assert_eq!(Bytes(10).saturating_sub(Bytes(4)), Bytes(6));
    }

    #[test]
    fn display_units() {
        assert_eq!(format!("{}", Bytes(512)), "512B");
        assert_eq!(format!("{}", Bytes::mib(256)), "256.00MiB");
        assert_eq!(format!("{}", Bandwidth::gb_per_s(12.8)), "12.80GB/s");
    }

    #[test]
    fn sum_bytes() {
        let total: Bytes = [Bytes(1), Bytes(2), Bytes(3)].into_iter().sum();
        assert_eq!(total, Bytes(6));
    }
}
