//! Minimal deterministic JSON document builder **and parser**.
//!
//! The vendored `serde` is a trait-only stub (see `vendor/README.md`), so
//! machine-readable reports are built through this hand-rolled value tree
//! instead. Two properties matter more than generality:
//!
//! * **Determinism** — object members keep insertion order, floats render
//!   with Rust's shortest round-trip formatting, and nothing consults
//!   locale, hashing, or the host clock. Identical values serialize to
//!   byte-identical text, which the determinism regression tests rely on.
//! * **Self-containment** — no dependency beyond `std`, so every crate in
//!   the workspace (and the sweep harness in particular) can emit reports.
//!
//! Non-finite floats have no JSON representation and render as `null`,
//! matching what `serde_json` does with `arbitrary_precision` disabled.
//!
//! [`Json::parse`] is the inverse, added for the sweep's incremental cell
//! cache: cached cells are stored as JSON text and must reconstruct to
//! values that re-serialize **byte-identically**. The round-trip contract
//! is `parse(v.to_compact())?.to_compact() == v.to_compact()` for every
//! value this builder can produce, which hinges on two details: unsigned
//! integer literals parse to [`Json::UInt`] (not a lossy `f64`) so `u64`
//! counters above 2^53 survive, and fractional/exponent literals parse
//! through Rust's correctly-rounded `str::parse::<f64>`, whose result
//! re-renders to the same shortest form.

use std::fmt;

/// A JSON value. Objects preserve insertion order (no hashing) so the
/// serialized form is a pure function of construction order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Unsigned integers (counters, byte sizes) keep full u64 precision.
    UInt(u64),
    Int(i64),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Empty object, to be filled with [`Json::push`].
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Append a member to an object. Panics on non-objects: that is a
    /// construction bug, not a data error.
    pub fn push(&mut self, key: &str, value: impl Into<Json>) -> &mut Json {
        match self {
            Json::Obj(members) => members.push((key.to_string(), value.into())),
            other => panic!("Json::push on non-object {other:?}"),
        }
        self
    }

    /// Member lookup (first match), for tests and report post-processing.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as f64, when it is any numeric variant.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::UInt(u) => Some(*u as f64),
            Json::Int(i) => Some(*i as f64),
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    /// The value as a lossless u64 (integer variants only, no float
    /// rounding) — counters and byte sizes above 2^53 survive.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(u) => Some(*u),
            Json::Int(i) if *i >= 0 => Some(*i as u64),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Compact single-line serialization.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0)
            .expect("fmt to String cannot fail");
        out
    }

    /// Pretty serialization with two-space indentation and a trailing
    /// newline (the on-disk `BENCH_*.json` format).
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0)
            .expect("fmt to String cannot fail");
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) -> fmt::Result {
        use fmt::Write;
        match self {
            Json::Null => out.write_str("null"),
            Json::Bool(b) => out.write_str(if *b { "true" } else { "false" }),
            Json::UInt(u) => write!(out, "{u}"),
            Json::Int(i) => write!(out, "{i}"),
            Json::Num(n) => {
                if n.is_finite() {
                    // Shortest round-trip form; deterministic across runs
                    // and hosts for identical bit patterns.
                    write!(out, "{n}")
                } else {
                    out.write_str("null")
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => write_seq(out, indent, depth, items.len(), '[', ']', |o, i| {
                items[i].write(o, indent, depth + 1)
            }),
            Json::Obj(members) => write_seq(out, indent, depth, members.len(), '{', '}', |o, i| {
                let (k, v) = &members[i];
                write_escaped(o, k)?;
                o.write_str(if indent.is_some() { ": " } else { ":" })?;
                v.write(o, indent, depth + 1)
            }),
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    len: usize,
    open: char,
    close: char,
    mut item: impl FnMut(&mut String, usize) -> fmt::Result,
) -> fmt::Result {
    out.push(open);
    if len == 0 {
        out.push(close);
        return Ok(());
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * (depth + 1)));
        }
        item(out, i)?;
    }
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
    out.push(close);
    Ok(())
}

fn write_escaped(out: &mut String, s: &str) -> fmt::Result {
    use fmt::Write;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32)?,
            c => out.push(c),
        }
    }
    out.push('"');
    Ok(())
}

impl Json {
    /// Parse JSON text into a value tree.
    ///
    /// Accepts exactly standard JSON (as produced by [`Json::to_compact`]
    /// / [`Json::to_pretty`], but any conforming writer works). Number
    /// literals map back onto the numeric variants losslessly: unsigned
    /// integers to [`Json::UInt`], negative integers to [`Json::Int`],
    /// everything with a fraction or exponent (or beyond integer range)
    /// to [`Json::Num`]. Errors carry the byte offset of the problem.
    pub fn parse(text: &str) -> Result<Json, String> {
        let mut p = Parser {
            bytes: text.as_bytes(),
            at: 0,
        };
        p.skip_ws();
        let v = p.value()?;
        p.skip_ws();
        if p.at != p.bytes.len() {
            return Err(p.err("trailing characters after the document"));
        }
        Ok(v)
    }
}

/// Recursive-descent JSON parser over raw bytes (`at` is a byte offset;
/// string decoding is the only place multi-byte UTF-8 appears, and it is
/// copied through verbatim).
struct Parser<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, what: &str) -> String {
        format!("json parse error at byte {}: {what}", self.at)
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.at).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.at += 1;
        }
    }

    fn eat(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.at += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected {:?}", b as char)))
        }
    }

    fn literal(&mut self, word: &str, value: Json) -> Result<Json, String> {
        if self.bytes[self.at..].starts_with(word.as_bytes()) {
            self.at += word.len();
            Ok(value)
        } else {
            Err(self.err(&format!("expected {word:?}")))
        }
    }

    fn value(&mut self) -> Result<Json, String> {
        match self.peek() {
            Some(b'n') => self.literal("null", Json::Null),
            Some(b't') => self.literal("true", Json::Bool(true)),
            Some(b'f') => self.literal("false", Json::Bool(false)),
            Some(b'"') => self.string().map(Json::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.number(),
            Some(c) => Err(self.err(&format!("unexpected character {:?}", c as char))),
            None => Err(self.err("unexpected end of input")),
        }
    }

    fn array(&mut self) -> Result<Json, String> {
        self.eat(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.at += 1;
            return Ok(Json::Arr(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b']') => {
                    self.at += 1;
                    return Ok(Json::Arr(items));
                }
                _ => return Err(self.err("expected ',' or ']' in array")),
            }
        }
    }

    fn object(&mut self) -> Result<Json, String> {
        self.eat(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.at += 1;
            return Ok(Json::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.eat(b':')?;
            self.skip_ws();
            let value = self.value()?;
            members.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.at += 1,
                Some(b'}') => {
                    self.at += 1;
                    return Ok(Json::Obj(members));
                }
                _ => return Err(self.err("expected ',' or '}' in object")),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.eat(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.at;
            // Copy unescaped runs through verbatim (multi-byte UTF-8
            // included — no byte in a multi-byte sequence can equal '"'
            // or '\\', both < 0x80).
            while !matches!(self.peek(), Some(b'"' | b'\\') | None) {
                self.at += 1;
            }
            out.push_str(
                std::str::from_utf8(&self.bytes[start..self.at])
                    .map_err(|_| self.err("invalid UTF-8 in string"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.at += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.at += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.at += 1;
                            let hi = self.hex4()?;
                            let c = if (0xd800..0xdc00).contains(&hi) {
                                // Surrogate pair: the writer never emits
                                // one, but a conforming reader decodes it.
                                if !self.bytes[self.at..].starts_with(b"\\u") {
                                    return Err(self.err("unpaired surrogate"));
                                }
                                self.at += 2;
                                let lo = self.hex4()?;
                                if !(0xdc00..0xe000).contains(&lo) {
                                    return Err(self.err("invalid low surrogate"));
                                }
                                let code = 0x10000 + ((hi - 0xd800) << 10) + (lo - 0xdc00);
                                char::from_u32(code)
                            } else {
                                char::from_u32(hi)
                            };
                            out.push(c.ok_or_else(|| self.err("invalid \\u escape"))?);
                            // hex4 leaves `at` one past the last digit.
                            continue;
                        }
                        _ => return Err(self.err("invalid escape")),
                    }
                    self.at += 1;
                }
                None => return Err(self.err("unterminated string")),
                _ => unreachable!("loop above stops only on '\"', '\\\\', or EOF"),
            }
        }
    }

    fn hex4(&mut self) -> Result<u32, String> {
        let end = self.at + 4;
        let digits = self
            .bytes
            .get(self.at..end)
            .and_then(|b| std::str::from_utf8(b).ok())
            .ok_or_else(|| self.err("truncated \\u escape"))?;
        let code = u32::from_str_radix(digits, 16).map_err(|_| self.err("invalid \\u escape"))?;
        self.at = end;
        Ok(code)
    }

    fn number(&mut self) -> Result<Json, String> {
        let start = self.at;
        if self.peek() == Some(b'-') {
            self.at += 1;
        }
        let mut integral = true;
        while let Some(c) = self.peek() {
            match c {
                b'0'..=b'9' => self.at += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    integral = false;
                    self.at += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.at]).expect("ASCII digits");
        if integral {
            // Integer literal: keep full 64-bit precision (a u64 counter
            // above 2^53 must not round through f64).
            if let Some(digits) = text.strip_prefix('-') {
                if let Ok(i) = text.parse::<i64>() {
                    return Ok(Json::Int(i));
                }
                // Magnitude beyond i64: fall through to f64 like serde_json.
                let _ = digits;
            } else if let Ok(u) = text.parse::<u64>() {
                return Ok(Json::UInt(u));
            }
        }
        text.parse::<f64>()
            .ok()
            .filter(|n| n.is_finite())
            .map(Json::Num)
            .ok_or_else(|| format!("json parse error: invalid number {text:?}"))
    }
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<u64> for Json {
    fn from(u: u64) -> Json {
        Json::UInt(u)
    }
}

impl From<usize> for Json {
    fn from(u: usize) -> Json {
        Json::UInt(u as u64)
    }
}

impl From<i64> for Json {
    fn from(i: i64) -> Json {
        Json::Int(i)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

/// Absent optional values serialize as `null` (e.g. "% overlap" on a run
/// that never migrated a byte).
impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(v: Option<T>) -> Json {
        v.map(Into::into).unwrap_or(Json::Null)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Json {
        Json::Arr(items)
    }
}

impl From<crate::units::Bytes> for Json {
    fn from(b: crate::units::Bytes) -> Json {
        Json::UInt(b.get())
    }
}

impl From<crate::time::VDur> for Json {
    fn from(d: crate::time::VDur) -> Json {
        Json::Num(d.secs())
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_compact())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Json {
        let mut o = Json::obj();
        o.push("name", "CG.C")
            .push("time", 1.5)
            .push("count", 42u64)
            .push("ok", true)
            .push("none", Json::Null)
            .push("tags", Json::Arr(vec![Json::from("a"), Json::from("b")]));
        o
    }

    #[test]
    fn compact_form_is_exact() {
        assert_eq!(
            sample().to_compact(),
            r#"{"name":"CG.C","time":1.5,"count":42,"ok":true,"none":null,"tags":["a","b"]}"#
        );
    }

    #[test]
    fn pretty_round_trips_member_order() {
        let p = sample().to_pretty();
        assert!(p.starts_with("{\n  \"name\": \"CG.C\",\n  \"time\": 1.5"));
        assert!(p.ends_with("}\n"));
        let name_at = p.find("\"name\"").unwrap();
        let count_at = p.find("\"count\"").unwrap();
        assert!(name_at < count_at, "insertion order preserved");
    }

    #[test]
    fn escaping() {
        let j = Json::from("a\"b\\c\nd\u{1}");
        assert_eq!(j.to_compact(), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn non_finite_floats_are_null() {
        assert_eq!(Json::Num(f64::NAN).to_compact(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_compact(), "null");
    }

    #[test]
    fn serialization_is_deterministic() {
        assert_eq!(sample().to_compact(), sample().to_compact());
        assert_eq!(sample().to_pretty(), sample().to_pretty());
    }

    #[test]
    fn accessors() {
        let s = sample();
        assert_eq!(s.get("count").and_then(Json::as_f64), Some(42.0));
        assert_eq!(s.get("name").and_then(Json::as_str), Some("CG.C"));
        assert_eq!(
            s.get("tags").and_then(Json::as_arr).map(<[Json]>::len),
            Some(2)
        );
        assert!(s.get("missing").is_none());
    }

    #[test]
    fn empty_containers() {
        assert_eq!(Json::obj().to_compact(), "{}");
        assert_eq!(Json::Arr(vec![]).to_pretty(), "[]\n");
    }

    #[test]
    fn parse_round_trips_compact_and_pretty() {
        let v = sample();
        let compact = v.to_compact();
        assert_eq!(Json::parse(&compact).unwrap(), v);
        assert_eq!(Json::parse(&compact).unwrap().to_compact(), compact);
        // Pretty text parses to the same tree (whitespace is not part of
        // the value) and re-serializes to the same bytes.
        let p = Json::parse(&v.to_pretty()).unwrap();
        assert_eq!(p, v);
        assert_eq!(p.to_pretty(), v.to_pretty());
    }

    #[test]
    fn parse_preserves_numeric_variants() {
        // Unsigned counters above 2^53 must not round through f64.
        let big = u64::MAX - 1;
        let j = Json::parse(&format!("{big}")).unwrap();
        assert_eq!(j, Json::UInt(big));
        assert_eq!(j.to_compact(), format!("{big}"));
        assert_eq!(Json::parse("-42").unwrap(), Json::Int(-42));
        assert_eq!(Json::parse("1.5").unwrap(), Json::Num(1.5));
        assert_eq!(Json::parse("2e-7").unwrap(), Json::Num(2e-7));
        // Integral floats render without a fraction, parse as UInt, and
        // re-render to the same text — the byte-identity contract cares
        // about the text, not the variant.
        assert_eq!(
            Json::parse(&Json::Num(42.0).to_compact()).unwrap(),
            Json::UInt(42)
        );
    }

    #[test]
    fn parse_decodes_escapes() {
        let original = Json::from("a\"b\\c\nd\u{1}é");
        let text = original.to_compact();
        assert_eq!(Json::parse(&text).unwrap(), original);
        // Surrogate pair (writer never emits one, reader must accept).
        assert_eq!(
            Json::parse("\"\\ud83d\\ude00\"").unwrap(),
            Json::from("\u{1f600}")
        );
    }

    #[test]
    fn parse_float_round_trip_is_byte_exact() {
        // Shortest-form rendering followed by correctly-rounded parsing
        // recovers the exact bit pattern — the property the cache's
        // byte-identity guarantee stands on.
        for bits in [
            0x3fb999999999999au64, // 0.1
            0x400921fb54442d18,    // pi
            0x7fe1ccf385ebc8a0,    // ~1.6e308
            0x0000000000000001,    // smallest subnormal
        ] {
            let x = f64::from_bits(bits);
            let text = Json::Num(x).to_compact();
            let back = Json::parse(&text).unwrap();
            assert_eq!(back.as_f64().map(f64::to_bits), Some(bits), "{text}");
            assert_eq!(back.to_compact(), text);
        }
    }

    #[test]
    fn parse_rejects_malformed_documents() {
        for bad in [
            "",
            "{",
            "[1,]",
            "{\"a\":}",
            "{\"a\" 1}",
            "tru",
            "\"unterminated",
            "01x",
            "1 2",
            "{\"a\":1}garbage",
            "\"\\u12\"",
            "\"\\ud800\"",
        ] {
            assert!(Json::parse(bad).is_err(), "{bad:?} must not parse");
        }
    }

    #[test]
    fn parse_nested_structures() {
        let text = r#"{"a":[{"b":null},{"c":[1,-2,3.5]}],"d":{"e":true}}"#;
        let v = Json::parse(text).unwrap();
        assert_eq!(v.to_compact(), text);
        assert!(v.get("d").and_then(|d| d.get("e")).is_some());
    }
}
