//! Minimal deterministic JSON document builder.
//!
//! The vendored `serde` is a trait-only stub (see `vendor/README.md`), so
//! machine-readable reports are built through this hand-rolled value tree
//! instead. Two properties matter more than generality:
//!
//! * **Determinism** — object members keep insertion order, floats render
//!   with Rust's shortest round-trip formatting, and nothing consults
//!   locale, hashing, or the host clock. Identical values serialize to
//!   byte-identical text, which the determinism regression tests rely on.
//! * **Self-containment** — no dependency beyond `std`, so every crate in
//!   the workspace (and the sweep harness in particular) can emit reports.
//!
//! Non-finite floats have no JSON representation and render as `null`,
//! matching what `serde_json` does with `arbitrary_precision` disabled.

use std::fmt;

/// A JSON value. Objects preserve insertion order (no hashing) so the
/// serialized form is a pure function of construction order.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    Null,
    Bool(bool),
    /// Unsigned integers (counters, byte sizes) keep full u64 precision.
    UInt(u64),
    Int(i64),
    Num(f64),
    Str(String),
    Arr(Vec<Json>),
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Empty object, to be filled with [`Json::push`].
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Append a member to an object. Panics on non-objects: that is a
    /// construction bug, not a data error.
    pub fn push(&mut self, key: &str, value: impl Into<Json>) -> &mut Json {
        match self {
            Json::Obj(members) => members.push((key.to_string(), value.into())),
            other => panic!("Json::push on non-object {other:?}"),
        }
        self
    }

    /// Member lookup (first match), for tests and report post-processing.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as f64, when it is any numeric variant.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::UInt(u) => Some(*u as f64),
            Json::Int(i) => Some(*i as f64),
            Json::Num(n) => Some(*n),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }

    /// Compact single-line serialization.
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0)
            .expect("fmt to String cannot fail");
        out
    }

    /// Pretty serialization with two-space indentation and a trailing
    /// newline (the on-disk `BENCH_*.json` format).
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0)
            .expect("fmt to String cannot fail");
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) -> fmt::Result {
        use fmt::Write;
        match self {
            Json::Null => out.write_str("null"),
            Json::Bool(b) => out.write_str(if *b { "true" } else { "false" }),
            Json::UInt(u) => write!(out, "{u}"),
            Json::Int(i) => write!(out, "{i}"),
            Json::Num(n) => {
                if n.is_finite() {
                    // Shortest round-trip form; deterministic across runs
                    // and hosts for identical bit patterns.
                    write!(out, "{n}")
                } else {
                    out.write_str("null")
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => write_seq(out, indent, depth, items.len(), '[', ']', |o, i| {
                items[i].write(o, indent, depth + 1)
            }),
            Json::Obj(members) => write_seq(out, indent, depth, members.len(), '{', '}', |o, i| {
                let (k, v) = &members[i];
                write_escaped(o, k)?;
                o.write_str(if indent.is_some() { ": " } else { ":" })?;
                v.write(o, indent, depth + 1)
            }),
        }
    }
}

fn write_seq(
    out: &mut String,
    indent: Option<usize>,
    depth: usize,
    len: usize,
    open: char,
    close: char,
    mut item: impl FnMut(&mut String, usize) -> fmt::Result,
) -> fmt::Result {
    out.push(open);
    if len == 0 {
        out.push(close);
        return Ok(());
    }
    for i in 0..len {
        if i > 0 {
            out.push(',');
        }
        if let Some(w) = indent {
            out.push('\n');
            out.extend(std::iter::repeat_n(' ', w * (depth + 1)));
        }
        item(out, i)?;
    }
    if let Some(w) = indent {
        out.push('\n');
        out.extend(std::iter::repeat_n(' ', w * depth));
    }
    out.push(close);
    Ok(())
}

fn write_escaped(out: &mut String, s: &str) -> fmt::Result {
    use fmt::Write;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => write!(out, "\\u{:04x}", c as u32)?,
            c => out.push(c),
        }
    }
    out.push('"');
    Ok(())
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<u64> for Json {
    fn from(u: u64) -> Json {
        Json::UInt(u)
    }
}

impl From<usize> for Json {
    fn from(u: usize) -> Json {
        Json::UInt(u as u64)
    }
}

impl From<i64> for Json {
    fn from(i: i64) -> Json {
        Json::Int(i)
    }
}

impl From<f64> for Json {
    fn from(n: f64) -> Json {
        Json::Num(n)
    }
}

/// Absent optional values serialize as `null` (e.g. "% overlap" on a run
/// that never migrated a byte).
impl<T: Into<Json>> From<Option<T>> for Json {
    fn from(v: Option<T>) -> Json {
        v.map(Into::into).unwrap_or(Json::Null)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl From<Vec<Json>> for Json {
    fn from(items: Vec<Json>) -> Json {
        Json::Arr(items)
    }
}

impl From<crate::units::Bytes> for Json {
    fn from(b: crate::units::Bytes) -> Json {
        Json::UInt(b.get())
    }
}

impl From<crate::time::VDur> for Json {
    fn from(d: crate::time::VDur) -> Json {
        Json::Num(d.secs())
    }
}

impl fmt::Display for Json {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.to_compact())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Json {
        let mut o = Json::obj();
        o.push("name", "CG.C")
            .push("time", 1.5)
            .push("count", 42u64)
            .push("ok", true)
            .push("none", Json::Null)
            .push("tags", Json::Arr(vec![Json::from("a"), Json::from("b")]));
        o
    }

    #[test]
    fn compact_form_is_exact() {
        assert_eq!(
            sample().to_compact(),
            r#"{"name":"CG.C","time":1.5,"count":42,"ok":true,"none":null,"tags":["a","b"]}"#
        );
    }

    #[test]
    fn pretty_round_trips_member_order() {
        let p = sample().to_pretty();
        assert!(p.starts_with("{\n  \"name\": \"CG.C\",\n  \"time\": 1.5"));
        assert!(p.ends_with("}\n"));
        let name_at = p.find("\"name\"").unwrap();
        let count_at = p.find("\"count\"").unwrap();
        assert!(name_at < count_at, "insertion order preserved");
    }

    #[test]
    fn escaping() {
        let j = Json::from("a\"b\\c\nd\u{1}");
        assert_eq!(j.to_compact(), "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn non_finite_floats_are_null() {
        assert_eq!(Json::Num(f64::NAN).to_compact(), "null");
        assert_eq!(Json::Num(f64::INFINITY).to_compact(), "null");
    }

    #[test]
    fn serialization_is_deterministic() {
        assert_eq!(sample().to_compact(), sample().to_compact());
        assert_eq!(sample().to_pretty(), sample().to_pretty());
    }

    #[test]
    fn accessors() {
        let s = sample();
        assert_eq!(s.get("count").and_then(Json::as_f64), Some(42.0));
        assert_eq!(s.get("name").and_then(Json::as_str), Some("CG.C"));
        assert_eq!(
            s.get("tags").and_then(Json::as_arr).map(<[Json]>::len),
            Some(2)
        );
        assert!(s.get("missing").is_none());
    }

    #[test]
    fn empty_containers() {
        assert_eq!(Json::obj().to_compact(), "{}");
        assert_eq!(Json::Arr(vec![]).to_pretty(), "[]\n");
    }
}
