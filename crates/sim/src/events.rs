//! Lightweight trace log.
//!
//! The migration engine and placement enforcer record timestamped events so
//! tests can assert on *when* things happened in virtual time (e.g. "the
//! migration of `lhs` for phase 4 started no earlier than the last phase
//! that referenced it"). Logging is opt-in; a disabled log is a no-op.

use crate::time::VTime;
use serde::{Deserialize, Serialize};
use std::fmt;

/// What happened.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// A migration was enqueued on the helper thread's FIFO queue.
    MigrationEnqueued,
    /// The helper thread started copying.
    MigrationStarted,
    /// The copy finished.
    MigrationCompleted,
    /// The main thread stalled waiting for an in-flight migration.
    MigrationStall,
    /// A phase began executing.
    PhaseBegin,
    /// A phase finished executing.
    PhaseEnd,
    /// The profiler switched on/off.
    Profiling(bool),
    /// Placement plan recomputed.
    Replan,
    /// Free-form marker for tests.
    Marker,
}

/// One trace record.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Event {
    pub at: VTime,
    pub kind: EventKind,
    /// Human-readable detail, e.g. the object name or phase id.
    pub detail: String,
}

/// An append-only trace. Disabled by default (zero cost besides a branch).
#[derive(Debug, Default, Clone)]
pub struct TraceLog {
    enabled: bool,
    events: Vec<Event>,
}

impl TraceLog {
    pub fn new(enabled: bool) -> TraceLog {
        TraceLog {
            enabled,
            events: Vec::new(),
        }
    }

    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Record an event (no-op when disabled).
    pub fn push(&mut self, at: VTime, kind: EventKind, detail: impl Into<String>) {
        if self.enabled {
            self.events.push(Event {
                at,
                kind,
                detail: detail.into(),
            });
        }
    }

    pub fn events(&self) -> &[Event] {
        &self.events
    }

    pub fn len(&self) -> usize {
        self.events.len()
    }

    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    pub fn clear(&mut self) {
        self.events.clear();
    }

    /// All events of `kind`, in order.
    pub fn of_kind<'a>(&'a self, kind: &'a EventKind) -> impl Iterator<Item = &'a Event> + 'a {
        self.events.iter().filter(move |e| &e.kind == kind)
    }

    /// First event of `kind` whose detail contains `needle`.
    pub fn find(&self, kind: &EventKind, needle: &str) -> Option<&Event> {
        self.events
            .iter()
            .find(|e| &e.kind == kind && e.detail.contains(needle))
    }
}

impl fmt::Display for TraceLog {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for e in &self.events {
            writeln!(f, "{} {:?} {}", e.at, e.kind, e.detail)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_log_records_nothing() {
        let mut log = TraceLog::new(false);
        log.push(VTime(1.0), EventKind::Marker, "x");
        assert!(log.is_empty());
    }

    #[test]
    fn enabled_log_records_in_order() {
        let mut log = TraceLog::new(true);
        log.push(VTime(1.0), EventKind::PhaseBegin, "p0");
        log.push(VTime(2.0), EventKind::PhaseEnd, "p0");
        assert_eq!(log.len(), 2);
        assert_eq!(log.events()[0].kind, EventKind::PhaseBegin);
        assert_eq!(log.events()[1].at, VTime(2.0));
    }

    #[test]
    fn find_by_kind_and_detail() {
        let mut log = TraceLog::new(true);
        log.push(VTime(0.5), EventKind::MigrationStarted, "obj=lhs phase=3");
        log.push(VTime(0.7), EventKind::MigrationStarted, "obj=rhs phase=3");
        let e = log.find(&EventKind::MigrationStarted, "rhs").unwrap();
        assert_eq!(e.at, VTime(0.7));
        assert!(log.find(&EventKind::MigrationCompleted, "rhs").is_none());
    }

    #[test]
    fn of_kind_filters() {
        let mut log = TraceLog::new(true);
        log.push(VTime(0.1), EventKind::Marker, "a");
        log.push(VTime(0.2), EventKind::PhaseBegin, "b");
        log.push(VTime(0.3), EventKind::Marker, "c");
        let markers: Vec<_> = log.of_kind(&EventKind::Marker).collect();
        assert_eq!(markers.len(), 2);
        assert_eq!(markers[1].detail, "c");
    }

    #[test]
    fn clear_resets() {
        let mut log = TraceLog::new(true);
        log.push(VTime(0.1), EventKind::Marker, "a");
        log.clear();
        assert!(log.is_empty());
    }
}
