//! Simulation foundation for the Unimem reproduction.
//!
//! This crate provides the shared vocabulary every other crate builds on:
//!
//! * [`time`] — virtual time ([`VTime`]) and durations ([`VDur`]) measured in
//!   seconds of *simulated* wall clock. The whole reproduction is an analytic
//!   virtual-time simulation: nothing here sleeps or reads the host clock.
//! * [`units`] — byte quantities, bandwidths and latencies with safe
//!   conversions (`bytes / bandwidth -> duration`, …).
//! * [`rng`] — a deterministic random number generator plus the sampling
//!   distributions the PEBS-style profiler needs (binomial thinning).
//! * [`stats`] — streaming statistics (Welford) used by the runtime's
//!   phase-variation detector and by the benchmark harnesses.
//! * [`events`] — a lightweight trace log used by tests to assert on
//!   migration/overlap timing.
//! * [`ledger`] — the deterministic per-channel bandwidth ledger behind the
//!   node-level shared-bandwidth model: helper-thread copies are posted as
//!   flows, and consumers ask how much of a channel is already spoken for
//!   during a virtual-time window (own flows by exact interval overlap,
//!   neighbor flows by fence-epoch rates).
//! * [`json`] — a deterministic JSON document builder **and parser** used
//!   for the machine-readable run/sweep reports and the sweep's on-disk
//!   cell cache (the vendored `serde` is a trait-only stub, so
//!   serialization is hand-rolled here).
//! * [`hash`] — deterministic FNV-1a content hashing (vendored `fnv`):
//!   the digest convention behind the content-addressed sweep cache.
//! * [`crash`] — seeded virtual-time kill points for the crash-injection
//!   harness: determinism makes a "crash at `T`" a pure function of the
//!   clean run, so no threads are ever actually torn down.
//! * [`pool`] — the deterministic worker pool (jobs reassembled by
//!   index, byte-identical at any worker count) shared by the bench
//!   sweep executor and the rank scheduler.
//!
//! Everything is deterministic: identical inputs yield bit-identical outputs
//! regardless of host scheduling, which the integration tests assert.

pub mod arena;
pub mod crash;
pub mod events;
pub mod hash;
pub mod json;
pub mod ledger;
pub mod pool;
pub mod rng;
pub mod stats;
pub mod time;
pub mod units;

pub use arena::{StrArena, StrRef};
pub use crash::{sample_kill_points, CrashSpec};
pub use events::{Event, EventKind, TraceLog};
pub use hash::{json_digest_hex, Fnv128, Fnv64};
pub use json::Json;
pub use ledger::{BwLedger, Channel, ChannelMap, LoadSplit};
pub use pool::{default_workers, run_pool, run_pool_mut, with_label};
pub use rng::DetRng;
pub use stats::{OnlineStats, Summary};
pub use time::{VDur, VTime};
pub use units::{Bandwidth, Bytes, Latency};
