//! Deterministic worker pool: run a job vector on N threads, reassemble
//! results by index.
//!
//! Extracted from the bench sweep executor (PR 3) so the execution
//! driver can reuse it for rank scheduling: a 256-rank topology runs on
//! a bounded pool instead of 256 OS threads. The contract is the same
//! everywhere it is used — jobs carry their index in some canonical
//! order and [`run_pool`] reassembles results by that index, so the
//! output is a pure function of the input: byte-identical to the serial
//! walk regardless of worker count or scheduling.
//!
//! The distribution machinery is lock-free (PR 9): jobs sit in a
//! [`crossbeam::queue::ArrayQueue`] (Vyukov sequence-stamped ring) that
//! workers pop with a single CAS, and every worker accumulates
//! `(index, result)` pairs in a thread-local buffer that the caller
//! merges after the scoped join — no result channel, no mutex anywhere
//! on the hot path. The earlier design funneled both job hand-off and
//! result collection through a `Mutex<VecDeque>` channel, which
//! serialized exactly the fan-out the pool exists to provide.
//! [`run_pool_mut`] is the zero-copy variant for resident state: workers
//! claim disjoint indices of a caller-owned slice from an atomic cursor
//! and advance the items in place, so a bulk-synchronous round loop does
//! not move (or re-wrap) its tasks every round.
//!
//! A job that returns `Err` or panics surfaces as the pool's `Err`
//! (first failing job index wins, deterministically) instead of
//! deadlocking the caller.

use crossbeam::queue::ArrayQueue;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

/// Run `f` over every job on a pool of `workers` threads and return the
/// results in job order.
///
/// * `workers <= 1` (or a single job) runs everything in order on the
///   calling thread — bit-for-bit the serial path, no threads spawned.
/// * A job returning `Err` or panicking does not deadlock the pool, and
///   the error of the **lowest-indexed** failing job is returned with a
///   `job {idx}:` prefix — identical from the serial and threaded paths,
///   so the reported failure never depends on worker count or
///   scheduling. (The threaded path still drains the queue; the serial
///   path stops at the failure, which is unobservable in the result.)
pub fn run_pool<J, R, F>(jobs: Vec<J>, workers: usize, f: F) -> Result<Vec<R>, String>
where
    J: Send,
    R: Send,
    F: Fn(&J) -> Result<R, String> + Sync,
{
    let n = jobs.len();
    if workers <= 1 || n <= 1 {
        return jobs
            .iter()
            .enumerate()
            .map(|(idx, job)| run_caught(&f, job).map_err(|e| format!("job {idx}: {e}")))
            .collect();
    }

    // Lock-free hand-off: every job is enqueued up front (the queue is
    // sized to hold them all, so push cannot fail), workers pop until
    // the queue reads empty — which, with all producers done before the
    // first pop, really means drained.
    let queue = ArrayQueue::new(n);
    for job in jobs.into_iter().enumerate() {
        if queue.push(job).is_err() {
            unreachable!("queue sized to the job count");
        }
    }

    let mut slots: Vec<Option<Result<R, String>>> =
        std::iter::repeat_with(|| None).take(n).collect();
    let buffers: Vec<Vec<(usize, Result<R, String>)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers.min(n))
            .map(|_| {
                let queue = &queue;
                let f = &f;
                scope.spawn(move || {
                    let mut local = Vec::new();
                    while let Some((idx, job)) = queue.pop() {
                        local.push((idx, run_caught(f, &job)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("pool worker panics are caught per job"))
            .collect()
    });
    for (idx, res) in buffers.into_iter().flatten() {
        slots[idx] = Some(res);
    }
    collect_slots(slots)
}

/// Run `f` over every element of `items` **in place** on a pool of
/// `workers` threads, returning `f`'s outputs in item order.
///
/// The mutable-slice twin of [`run_pool`] for state that must survive
/// across calls: a bulk-synchronous driver keeps its per-rank tasks in
/// one `Vec` and advances them round after round without moving them
/// into per-round wrappers. Workers claim indices from an atomic cursor
/// (each index is handed out exactly once, so the `&mut` accesses are
/// provably disjoint) and buffer results locally; error semantics are
/// identical to [`run_pool`] — lowest failing index wins, panics become
/// `Err`, and a failing round leaves `items` in whatever mixed state
/// the round reached (callers treat a round error as fatal).
pub fn run_pool_mut<T, R, F>(items: &mut [T], workers: usize, f: F) -> Result<Vec<R>, String>
where
    T: Send,
    R: Send,
    F: Fn(usize, &mut T) -> Result<R, String> + Sync,
{
    let n = items.len();
    if workers <= 1 || n <= 1 {
        let mut out = Vec::with_capacity(n);
        for (idx, item) in items.iter_mut().enumerate() {
            out.push(run_caught_mut(&f, idx, item).map_err(|e| format!("job {idx}: {e}"))?);
        }
        return Ok(out);
    }

    // One atomic cursor hands each index to exactly one worker, so the
    // raw-pointer `&mut` projections below never alias.
    struct SharedSlice<T>(*mut T);
    unsafe impl<T: Send> Sync for SharedSlice<T> {}
    let base = SharedSlice(items.as_mut_ptr());
    let cursor = AtomicUsize::new(0);

    let mut slots: Vec<Option<Result<R, String>>> =
        std::iter::repeat_with(|| None).take(n).collect();
    let buffers: Vec<Vec<(usize, Result<R, String>)>> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..workers.min(n))
            .map(|_| {
                let base = &base;
                let cursor = &cursor;
                let f = &f;
                scope.spawn(move || {
                    let mut local = Vec::new();
                    loop {
                        let idx = cursor.fetch_add(1, Ordering::Relaxed);
                        if idx >= n {
                            break;
                        }
                        // Safety: `idx < n` is in bounds, and the
                        // fetch_add gives this worker sole ownership of
                        // index `idx` for the lifetime of the scope.
                        let item = unsafe { &mut *base.0.add(idx) };
                        local.push((idx, run_caught_mut(f, idx, item)));
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("pool worker panics are caught per job"))
            .collect()
    });
    for (idx, res) in buffers.into_iter().flatten() {
        slots[idx] = Some(res);
    }
    collect_slots(slots)
}

/// Reassemble per-index result slots into the pool's return value:
/// all-`Ok` in index order, or the lowest-indexed failure.
fn collect_slots<R>(slots: Vec<Option<Result<R, String>>>) -> Result<Vec<R>, String> {
    let mut out = Vec::with_capacity(slots.len());
    for (idx, slot) in slots.into_iter().enumerate() {
        match slot {
            Some(Ok(r)) => out.push(r),
            Some(Err(e)) => return Err(format!("job {idx}: {e}")),
            None => return Err(format!("job {idx}: worker exited without a result")),
        }
    }
    Ok(out)
}

/// Run one job, converting a panic into `Err` — a panicking job must not
/// take down the worker (and the results the caller is waiting for) on
/// the threaded path, nor abort the process on the serial path.
fn run_caught<J, R>(f: &(impl Fn(&J) -> Result<R, String> + Sync), job: &J) -> Result<R, String> {
    catch_unwind(AssertUnwindSafe(|| f(job)))
        .unwrap_or_else(|p| Err(format!("panicked: {}", panic_msg(&*p))))
}

/// [`run_caught`] for the in-place variant's `(index, &mut item)` shape.
fn run_caught_mut<T, R>(
    f: &(impl Fn(usize, &mut T) -> Result<R, String> + Sync),
    idx: usize,
    item: &mut T,
) -> Result<R, String> {
    catch_unwind(AssertUnwindSafe(|| f(idx, item)))
        .unwrap_or_else(|p| Err(format!("panicked: {}", panic_msg(&*p))))
}

/// Run `body`, converting a panic into `Err` and prefixing any failure
/// with `label` — so a failing job reports its domain coordinates (a
/// sweep cell's matrix position, a rank id), not just its opaque flat
/// index.
pub fn with_label<R>(
    label: impl Fn() -> String,
    body: impl FnOnce() -> Result<R, String>,
) -> Result<R, String> {
    catch_unwind(AssertUnwindSafe(body))
        .unwrap_or_else(|p| Err(format!("panicked: {}", panic_msg(&*p))))
        .map_err(|e| format!("{}: {e}", label()))
}

// Takes the unsized payload directly: passing `&Box<dyn Any>` would let
// the *Box* coerce to `dyn Any` and every downcast would miss.
fn panic_msg(p: &(dyn std::any::Any + Send)) -> String {
    p.downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| p.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".into())
}

/// Default worker count: the host's available parallelism (the ROADMAP's
/// "as fast as the hardware allows"), 1 when it cannot be queried.
pub fn default_workers() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_preserves_job_order_at_any_width() {
        let jobs: Vec<u64> = (0..64).collect();
        let expect: Vec<u64> = jobs.iter().map(|j| j * j).collect();
        for workers in [1, 2, 8, 100] {
            let got = run_pool(jobs.clone(), workers, |&j| Ok(j * j)).unwrap();
            assert_eq!(got, expect, "workers={workers}");
        }
    }

    #[test]
    fn pool_reports_lowest_failing_job_at_any_width() {
        // The serial (workers = 1) and threaded paths must produce the
        // exact same error for the same failing job set.
        for workers in [1, 4] {
            let jobs: Vec<u64> = (0..32).collect();
            let err = run_pool(jobs, workers, |&j| {
                if j % 10 == 3 {
                    Err(format!("boom {j}"))
                } else {
                    Ok(j)
                }
            })
            .unwrap_err();
            assert_eq!(err, "job 3: boom 3", "workers={workers}");
        }
    }

    #[test]
    fn panicking_job_is_an_error_not_a_hang_or_abort() {
        for workers in [1, 4] {
            let jobs: Vec<u64> = (0..16).collect();
            let err = run_pool(jobs, workers, |&j| {
                if j == 5 {
                    panic!("job five exploded");
                }
                Ok(j)
            })
            .unwrap_err();
            assert_eq!(
                err, "job 5: panicked: job five exploded",
                "workers={workers}"
            );
        }
    }

    #[test]
    fn with_label_prefixes_errors_and_catches_panics() {
        assert_eq!(with_label(|| "x".into(), || Ok(1)), Ok(1));
        assert_eq!(
            with_label(
                || "CG/bw-half/r4/unimem".into(),
                || Err::<(), _>("bad".into())
            ),
            Err("CG/bw-half/r4/unimem: bad".to_string())
        );
        assert_eq!(
            with_label(
                || "cell".into(),
                || -> Result<(), String> { panic!("boom") }
            ),
            Err("cell: panicked: boom".to_string())
        );
    }

    #[test]
    fn empty_job_vector_is_fine() {
        let got: Vec<u64> = run_pool(Vec::<u64>::new(), 8, |&j| Ok(j)).unwrap();
        assert!(got.is_empty());
    }

    #[test]
    fn pool_mut_advances_items_in_place_at_any_width() {
        for workers in [1, 2, 8, 100] {
            let mut items: Vec<u64> = (0..64).collect();
            let outs = run_pool_mut(&mut items, workers, |idx, v| {
                *v += 1;
                Ok(*v * idx as u64)
            })
            .unwrap();
            let expect_items: Vec<u64> = (1..=64).collect();
            let expect_outs: Vec<u64> = (0..64u64).map(|i| (i + 1) * i).collect();
            assert_eq!(items, expect_items, "workers={workers}");
            assert_eq!(outs, expect_outs, "workers={workers}");
        }
    }

    #[test]
    fn pool_mut_reports_lowest_failing_job_and_catches_panics() {
        for workers in [1, 4] {
            let mut items: Vec<u64> = (0..32).collect();
            let err = run_pool_mut(&mut items, workers, |_, v| {
                if *v % 10 == 7 {
                    Err(format!("boom {v}"))
                } else {
                    Ok(())
                }
            })
            .unwrap_err();
            assert_eq!(err, "job 7: boom 7", "workers={workers}");

            let mut items: Vec<u64> = (0..16).collect();
            let err = run_pool_mut(&mut items, workers, |_, v| {
                if *v == 5 {
                    panic!("item five exploded");
                }
                Ok(())
            })
            .unwrap_err();
            assert_eq!(
                err, "job 5: panicked: item five exploded",
                "workers={workers}"
            );
        }
    }

    #[test]
    fn pool_mut_empty_and_single_are_fine() {
        let mut none: Vec<u64> = Vec::new();
        let got = run_pool_mut(&mut none, 8, |_, v| Ok(*v)).unwrap();
        assert!(got.is_empty());
        let mut one = vec![41u64];
        let got = run_pool_mut(&mut one, 8, |_, v| {
            *v += 1;
            Ok(*v)
        })
        .unwrap();
        assert_eq!(got, [42]);
        assert_eq!(one, [42]);
    }
}
