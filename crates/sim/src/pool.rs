//! Deterministic worker pool: run a job vector on N threads, reassemble
//! results by index.
//!
//! Extracted from the bench sweep executor (PR 3) so the execution
//! driver can reuse it for rank scheduling: a 256-rank topology runs on
//! a bounded pool instead of 256 OS threads. The contract is the same
//! everywhere it is used — jobs carry their index in some canonical
//! order and [`run_pool`] reassembles results by that index, so the
//! output is a pure function of the input: byte-identical to the serial
//! walk regardless of worker count or scheduling. Workers run on
//! [`std::thread::scope`] and pull jobs from the vendored
//! `crossbeam::channel` MPMC queue; a job that returns `Err` or panics
//! surfaces as the pool's `Err` (first failing job index wins,
//! deterministically) instead of deadlocking the caller.

use crossbeam::channel;
use std::panic::{catch_unwind, AssertUnwindSafe};

/// Run `f` over every job on a pool of `workers` threads and return the
/// results in job order.
///
/// * `workers <= 1` (or a single job) runs everything in order on the
///   calling thread — bit-for-bit the serial path, no threads spawned.
/// * A job returning `Err` or panicking does not deadlock the pool, and
///   the error of the **lowest-indexed** failing job is returned with a
///   `job {idx}:` prefix — identical from the serial and threaded paths,
///   so the reported failure never depends on worker count or
///   scheduling. (The threaded path still drains the queue; the serial
///   path stops at the failure, which is unobservable in the result.)
pub fn run_pool<J, R, F>(jobs: Vec<J>, workers: usize, f: F) -> Result<Vec<R>, String>
where
    J: Send,
    R: Send,
    F: Fn(&J) -> Result<R, String> + Sync,
{
    let n = jobs.len();
    if workers <= 1 || n <= 1 {
        return jobs
            .iter()
            .enumerate()
            .map(|(idx, job)| run_caught(&f, job).map_err(|e| format!("job {idx}: {e}")))
            .collect();
    }

    let (job_tx, job_rx) = channel::unbounded();
    for job in jobs.into_iter().enumerate() {
        job_tx.send(job).expect("receiver alive");
    }
    // Workers see a disconnected queue once it drains, and exit.
    drop(job_tx);

    let (res_tx, res_rx) = channel::unbounded();
    let mut slots: Vec<Option<Result<R, String>>> =
        std::iter::repeat_with(|| None).take(n).collect();
    std::thread::scope(|scope| {
        for _ in 0..workers.min(n) {
            let job_rx = job_rx.clone();
            let res_tx = res_tx.clone();
            let f = &f;
            scope.spawn(move || {
                for (idx, job) in job_rx.iter() {
                    if res_tx.send((idx, run_caught(f, &job))).is_err() {
                        break;
                    }
                }
            });
        }
        drop(res_tx);
        // Every job sends exactly one result (panics included), so this
        // terminates; if a worker died anyway, the dropped senders turn
        // the loop into a clean early exit instead of a hang.
        while let Ok((idx, res)) = res_rx.recv() {
            slots[idx] = Some(res);
        }
    });

    let mut out = Vec::with_capacity(n);
    for (idx, slot) in slots.into_iter().enumerate() {
        match slot {
            Some(Ok(r)) => out.push(r),
            Some(Err(e)) => return Err(format!("job {idx}: {e}")),
            None => return Err(format!("job {idx}: worker exited without a result")),
        }
    }
    Ok(out)
}

/// Run one job, converting a panic into `Err` — a panicking job must not
/// take down the worker (and the results the caller is waiting for) on
/// the threaded path, nor abort the process on the serial path.
fn run_caught<J, R>(f: &(impl Fn(&J) -> Result<R, String> + Sync), job: &J) -> Result<R, String> {
    catch_unwind(AssertUnwindSafe(|| f(job)))
        .unwrap_or_else(|p| Err(format!("panicked: {}", panic_msg(&*p))))
}

/// Run `body`, converting a panic into `Err` and prefixing any failure
/// with `label` — so a failing job reports its domain coordinates (a
/// sweep cell's matrix position, a rank id), not just its opaque flat
/// index.
pub fn with_label<R>(
    label: impl Fn() -> String,
    body: impl FnOnce() -> Result<R, String>,
) -> Result<R, String> {
    catch_unwind(AssertUnwindSafe(body))
        .unwrap_or_else(|p| Err(format!("panicked: {}", panic_msg(&*p))))
        .map_err(|e| format!("{}: {e}", label()))
}

// Takes the unsized payload directly: passing `&Box<dyn Any>` would let
// the *Box* coerce to `dyn Any` and every downcast would miss.
fn panic_msg(p: &(dyn std::any::Any + Send)) -> String {
    p.downcast_ref::<&str>()
        .map(|s| s.to_string())
        .or_else(|| p.downcast_ref::<String>().cloned())
        .unwrap_or_else(|| "non-string panic payload".into())
}

/// Default worker count: the host's available parallelism (the ROADMAP's
/// "as fast as the hardware allows"), 1 when it cannot be queried.
pub fn default_workers() -> usize {
    std::thread::available_parallelism().map_or(1, |n| n.get())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pool_preserves_job_order_at_any_width() {
        let jobs: Vec<u64> = (0..64).collect();
        let expect: Vec<u64> = jobs.iter().map(|j| j * j).collect();
        for workers in [1, 2, 8, 100] {
            let got = run_pool(jobs.clone(), workers, |&j| Ok(j * j)).unwrap();
            assert_eq!(got, expect, "workers={workers}");
        }
    }

    #[test]
    fn pool_reports_lowest_failing_job_at_any_width() {
        // The serial (workers = 1) and threaded paths must produce the
        // exact same error for the same failing job set.
        for workers in [1, 4] {
            let jobs: Vec<u64> = (0..32).collect();
            let err = run_pool(jobs, workers, |&j| {
                if j % 10 == 3 {
                    Err(format!("boom {j}"))
                } else {
                    Ok(j)
                }
            })
            .unwrap_err();
            assert_eq!(err, "job 3: boom 3", "workers={workers}");
        }
    }

    #[test]
    fn panicking_job_is_an_error_not_a_hang_or_abort() {
        for workers in [1, 4] {
            let jobs: Vec<u64> = (0..16).collect();
            let err = run_pool(jobs, workers, |&j| {
                if j == 5 {
                    panic!("job five exploded");
                }
                Ok(j)
            })
            .unwrap_err();
            assert_eq!(
                err, "job 5: panicked: job five exploded",
                "workers={workers}"
            );
        }
    }

    #[test]
    fn with_label_prefixes_errors_and_catches_panics() {
        assert_eq!(with_label(|| "x".into(), || Ok(1)), Ok(1));
        assert_eq!(
            with_label(
                || "CG/bw-half/r4/unimem".into(),
                || Err::<(), _>("bad".into())
            ),
            Err("CG/bw-half/r4/unimem: bad".to_string())
        );
        assert_eq!(
            with_label(
                || "cell".into(),
                || -> Result<(), String> { panic!("boom") }
            ),
            Err("cell: panicked: boom".to_string())
        );
    }

    #[test]
    fn empty_job_vector_is_fine() {
        let got: Vec<u64> = run_pool(Vec::<u64>::new(), 8, |&j| Ok(j)).unwrap();
        assert!(got.is_empty());
    }
}
