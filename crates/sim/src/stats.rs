//! Streaming statistics.
//!
//! [`OnlineStats`] is a Welford accumulator used by the Unimem runtime's
//! phase-variation detector (the paper re-profiles when a phase's time
//! deviates more than 10% from its running mean) and by the benchmark
//! harnesses to summarize repeated runs.

use serde::{Deserialize, Serialize};

/// Welford online mean/variance with min/max tracking.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct OnlineStats {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl OnlineStats {
    pub fn new() -> OnlineStats {
        OnlineStats {
            n: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Add one observation.
    pub fn push(&mut self, x: f64) {
        self.n += 1;
        let delta = x - self.mean;
        self.mean += delta / self.n as f64;
        self.m2 += delta * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    pub fn count(&self) -> u64 {
        self.n
    }

    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Population variance (n in the denominator).
    pub fn variance(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.m2 / self.n as f64
        }
    }

    pub fn stddev(&self) -> f64 {
        self.variance().sqrt()
    }

    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }

    /// Relative deviation of `x` from the running mean, |x-μ|/μ.
    /// Returns 0 when no observations or zero mean (nothing to deviate from).
    pub fn relative_deviation(&self, x: f64) -> f64 {
        let m = self.mean();
        if self.n == 0 || m == 0.0 {
            0.0
        } else {
            (x - m).abs() / m.abs()
        }
    }

    /// Merge another accumulator into this one (Chan's parallel update).
    pub fn merge(&mut self, other: &OnlineStats) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n = self.n + other.n;
        let delta = other.mean - self.mean;
        let mean = self.mean + delta * other.n as f64 / n as f64;
        let m2 = self.m2 + other.m2 + delta * delta * (self.n as f64 * other.n as f64) / n as f64;
        self.n = n;
        self.mean = mean;
        self.m2 = m2;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }

    pub fn summary(&self) -> Summary {
        Summary {
            count: self.count(),
            mean: self.mean(),
            stddev: self.stddev(),
            min: self.min(),
            max: self.max(),
        }
    }
}

/// Snapshot of an [`OnlineStats`].
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Summary {
    pub count: u64,
    pub mean: f64,
    pub stddev: f64,
    pub min: f64,
    pub max: f64,
}

/// Geometric mean of strictly positive values; 0.0 for an empty slice.
/// The paper reports averages of normalized slowdowns; geometric mean is the
/// right aggregate for ratios and the harnesses print both.
pub fn geomean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = xs
        .iter()
        .map(|&x| {
            debug_assert!(x > 0.0, "geomean requires positive values, got {x}");
            x.max(f64::MIN_POSITIVE).ln()
        })
        .sum();
    (log_sum / xs.len() as f64).exp()
}

/// Arithmetic mean; 0.0 for an empty slice.
pub fn mean(xs: &[f64]) -> f64 {
    if xs.is_empty() {
        0.0
    } else {
        xs.iter().sum::<f64>() / xs.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_are_zero() {
        let s = OnlineStats::new();
        assert_eq!(s.count(), 0);
        assert_eq!(s.mean(), 0.0);
        assert_eq!(s.variance(), 0.0);
        assert_eq!(s.min(), 0.0);
        assert_eq!(s.max(), 0.0);
    }

    #[test]
    fn welford_matches_naive() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut s = OnlineStats::new();
        for &x in &xs {
            s.push(x);
        }
        assert!((s.mean() - 5.0).abs() < 1e-12);
        assert!((s.variance() - 4.0).abs() < 1e-12);
        assert!((s.stddev() - 2.0).abs() < 1e-12);
        assert_eq!(s.min(), 2.0);
        assert_eq!(s.max(), 9.0);
    }

    #[test]
    fn merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0).collect();
        let mut whole = OnlineStats::new();
        for &x in &xs {
            whole.push(x);
        }
        let mut a = OnlineStats::new();
        let mut b = OnlineStats::new();
        for &x in &xs[..37] {
            a.push(x);
        }
        for &x in &xs[37..] {
            b.push(x);
        }
        a.merge(&b);
        assert!((a.mean() - whole.mean()).abs() < 1e-9);
        assert!((a.variance() - whole.variance()).abs() < 1e-9);
        assert_eq!(a.count(), whole.count());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a = OnlineStats::new();
        a.push(1.0);
        a.push(3.0);
        let before = a.summary();
        a.merge(&OnlineStats::new());
        assert_eq!(a.summary(), before);

        let mut e = OnlineStats::new();
        e.merge(&a);
        assert_eq!(e.summary(), before);
    }

    #[test]
    fn relative_deviation() {
        let mut s = OnlineStats::new();
        s.push(10.0);
        s.push(10.0);
        assert!((s.relative_deviation(11.0) - 0.1).abs() < 1e-12);
        assert_eq!(OnlineStats::new().relative_deviation(5.0), 0.0);
    }

    #[test]
    fn geomean_and_mean() {
        assert!((geomean(&[1.0, 4.0]) - 2.0).abs() < 1e-12);
        assert!((mean(&[1.0, 2.0, 3.0]) - 2.0).abs() < 1e-12);
        assert_eq!(geomean(&[]), 0.0);
        assert_eq!(mean(&[]), 0.0);
    }
}
