//! Virtual time.
//!
//! The simulation measures time in seconds of simulated wall clock, stored as
//! `f64`. All arithmetic is deterministic because every evaluation order in
//! the simulator is deterministic; no host clock is ever consulted.
//!
//! [`VTime`] is a point on the virtual timeline, [`VDur`] a span between two
//! points. The distinction catches unit bugs at compile time (you cannot add
//! two instants, only an instant and a duration).

use serde::{Deserialize, Serialize};
use std::fmt;
use std::iter::Sum;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// A point in virtual time, in seconds since simulation start.
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct VTime(pub f64);

/// A span of virtual time, in seconds. May never be negative (construction
/// clamps; subtraction that would underflow saturates to zero via
/// [`VDur::saturating_sub`], while `-` panics in debug builds on underflow).
#[derive(Debug, Clone, Copy, PartialEq, PartialOrd, Default, Serialize, Deserialize)]
pub struct VDur(pub f64);

impl VTime {
    pub const ZERO: VTime = VTime(0.0);

    /// Seconds since simulation start.
    #[inline]
    pub fn secs(self) -> f64 {
        self.0
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: VTime) -> VTime {
        if other.0 > self.0 {
            other
        } else {
            self
        }
    }

    /// The earlier of two instants.
    #[inline]
    pub fn min(self, other: VTime) -> VTime {
        if other.0 < self.0 {
            other
        } else {
            self
        }
    }

    /// Span from `earlier` to `self`; zero if `earlier` is in the future.
    #[inline]
    pub fn since(self, earlier: VTime) -> VDur {
        VDur((self.0 - earlier.0).max(0.0))
    }
}

impl VDur {
    pub const ZERO: VDur = VDur(0.0);

    /// Construct from seconds. Negative inputs clamp to zero.
    #[inline]
    pub fn from_secs(s: f64) -> VDur {
        VDur(s.max(0.0))
    }

    /// Construct from nanoseconds.
    #[inline]
    pub fn from_nanos(ns: f64) -> VDur {
        VDur((ns * 1e-9).max(0.0))
    }

    /// Construct from microseconds.
    #[inline]
    pub fn from_micros(us: f64) -> VDur {
        VDur((us * 1e-6).max(0.0))
    }

    /// Construct from milliseconds.
    #[inline]
    pub fn from_millis(ms: f64) -> VDur {
        VDur((ms * 1e-3).max(0.0))
    }

    #[inline]
    pub fn secs(self) -> f64 {
        self.0
    }

    #[inline]
    pub fn nanos(self) -> f64 {
        self.0 * 1e9
    }

    #[inline]
    pub fn millis(self) -> f64 {
        self.0 * 1e3
    }

    #[inline]
    pub fn is_zero(self) -> bool {
        self.0 == 0.0
    }

    #[inline]
    pub fn max(self, other: VDur) -> VDur {
        if other.0 > self.0 {
            other
        } else {
            self
        }
    }

    #[inline]
    pub fn min(self, other: VDur) -> VDur {
        if other.0 < self.0 {
            other
        } else {
            self
        }
    }

    /// `self - other`, clamped at zero.
    #[inline]
    pub fn saturating_sub(self, other: VDur) -> VDur {
        VDur((self.0 - other.0).max(0.0))
    }

    /// Ratio `self / other`; returns 0 when `other` is zero.
    #[inline]
    pub fn ratio(self, other: VDur) -> f64 {
        if other.0 == 0.0 {
            0.0
        } else {
            self.0 / other.0
        }
    }
}

impl Add<VDur> for VTime {
    type Output = VTime;
    #[inline]
    fn add(self, rhs: VDur) -> VTime {
        VTime(self.0 + rhs.0)
    }
}

impl AddAssign<VDur> for VTime {
    #[inline]
    fn add_assign(&mut self, rhs: VDur) {
        self.0 += rhs.0;
    }
}

impl Sub<VTime> for VTime {
    type Output = VDur;
    #[inline]
    fn sub(self, rhs: VTime) -> VDur {
        debug_assert!(
            self.0 >= rhs.0,
            "VTime subtraction underflow: {} - {}",
            self.0,
            rhs.0
        );
        VDur((self.0 - rhs.0).max(0.0))
    }
}

impl Add for VDur {
    type Output = VDur;
    #[inline]
    fn add(self, rhs: VDur) -> VDur {
        VDur(self.0 + rhs.0)
    }
}

impl AddAssign for VDur {
    #[inline]
    fn add_assign(&mut self, rhs: VDur) {
        self.0 += rhs.0;
    }
}

impl Sub for VDur {
    type Output = VDur;
    #[inline]
    fn sub(self, rhs: VDur) -> VDur {
        debug_assert!(
            self.0 >= rhs.0,
            "VDur subtraction underflow: {} - {}",
            self.0,
            rhs.0
        );
        VDur((self.0 - rhs.0).max(0.0))
    }
}

impl SubAssign for VDur {
    #[inline]
    fn sub_assign(&mut self, rhs: VDur) {
        *self = *self - rhs;
    }
}

impl Mul<f64> for VDur {
    type Output = VDur;
    #[inline]
    fn mul(self, rhs: f64) -> VDur {
        VDur((self.0 * rhs).max(0.0))
    }
}

impl Div<f64> for VDur {
    type Output = VDur;
    #[inline]
    fn div(self, rhs: f64) -> VDur {
        VDur((self.0 / rhs).max(0.0))
    }
}

impl Sum for VDur {
    fn sum<I: Iterator<Item = VDur>>(iter: I) -> VDur {
        iter.fold(VDur::ZERO, |a, b| a + b)
    }
}

impl fmt::Display for VDur {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.0;
        if s >= 1.0 {
            write!(f, "{s:.3}s")
        } else if s >= 1e-3 {
            write!(f, "{:.3}ms", s * 1e3)
        } else if s >= 1e-6 {
            write!(f, "{:.3}us", s * 1e6)
        } else {
            write!(f, "{:.1}ns", s * 1e9)
        }
    }
}

impl fmt::Display for VTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}s", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn instant_plus_duration() {
        let t = VTime(1.0) + VDur(0.5);
        assert_eq!(t, VTime(1.5));
    }

    #[test]
    fn instant_difference_is_duration() {
        assert_eq!(VTime(2.0) - VTime(0.5), VDur(1.5));
    }

    #[test]
    fn since_clamps_future() {
        assert_eq!(VTime(1.0).since(VTime(2.0)), VDur::ZERO);
    }

    #[test]
    fn saturating_sub_clamps() {
        assert_eq!(VDur(1.0).saturating_sub(VDur(2.0)), VDur::ZERO);
        assert_eq!(VDur(2.0).saturating_sub(VDur(0.5)), VDur(1.5));
    }

    #[test]
    fn conversions_round_trip() {
        let d = VDur::from_nanos(1500.0);
        assert!((d.nanos() - 1500.0).abs() < 1e-9);
        assert!((VDur::from_millis(2.0).secs() - 0.002).abs() < 1e-12);
        assert!((VDur::from_micros(3.0).secs() - 3e-6).abs() < 1e-15);
    }

    #[test]
    fn negative_construction_clamps() {
        assert_eq!(VDur::from_secs(-1.0), VDur::ZERO);
    }

    #[test]
    fn ratio_handles_zero() {
        assert_eq!(VDur(1.0).ratio(VDur::ZERO), 0.0);
        assert!((VDur(1.0).ratio(VDur(4.0)) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn max_min() {
        assert_eq!(VTime(1.0).max(VTime(2.0)), VTime(2.0));
        assert_eq!(VTime(1.0).min(VTime(2.0)), VTime(1.0));
        assert_eq!(VDur(1.0).max(VDur(2.0)), VDur(2.0));
        assert_eq!(VDur(1.0).min(VDur(2.0)), VDur(1.0));
    }

    #[test]
    fn sum_of_durations() {
        let total: VDur = [VDur(0.25); 4].into_iter().sum();
        assert!((total.secs() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn display_picks_unit() {
        assert_eq!(format!("{}", VDur(2.5)), "2.500s");
        assert_eq!(format!("{}", VDur(2.5e-3)), "2.500ms");
        assert_eq!(format!("{}", VDur(2.5e-6)), "2.500us");
        assert_eq!(format!("{}", VDur(25e-9)), "25.0ns");
    }
}
