//! Deterministic crash injection: seeded virtual-time kill points.
//!
//! The simulator's determinism turns crash testing from a race into a
//! table lookup: a run killed at virtual time `T` leaves behind exactly
//! the durable prefix of the journal an uninterrupted run would have
//! written by `T` (which records are durable depends on the journal's
//! durability mode — see `unimem_hms::journal`). So a "crash" needs no
//! signal handling and no torn threads: the harness samples kill points
//! from a seeded [`DetRng`] substream, truncates the
//! clean run's journal accordingly, and restarts from the truncation.
//! Every kill point is replayable from `(seed, index)` alone.

use crate::rng::DetRng;
use crate::time::VTime;

/// One injected crash: the virtual instant the process dies, plus
/// whether the final durable write is torn mid-record (a partial sector
/// flush — recovery must detect and discard the fragment, not replay it).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrashSpec {
    /// Virtual time of death.
    pub at: VTime,
    /// Tear the first record past the durable prefix, leaving a
    /// truncated frame on the medium.
    pub torn: bool,
}

impl CrashSpec {
    /// A clean power cut at `at` (no torn record).
    pub fn at(at: VTime) -> CrashSpec {
        CrashSpec { at, torn: false }
    }

    /// A power cut at `at` that tears the in-flight record.
    pub fn torn(at: VTime) -> CrashSpec {
        CrashSpec { at, torn: true }
    }
}

/// Sample `n` kill points over `(0, horizon)`, each independently torn
/// with probability one half. The stream is a dedicated substream of
/// `seed` ("crash"), so adding consumers elsewhere cannot shift these
/// points. Points come out in sampling order, not sorted: index `k` is
/// stable as `n` grows.
pub fn sample_kill_points(seed: u64, horizon: VTime, n: usize) -> Vec<CrashSpec> {
    let mut rng = DetRng::derive(seed, "crash");
    (0..n)
        .map(|_| {
            let at = VTime(rng.range_f64(0.0, horizon.secs().max(f64::MIN_POSITIVE)));
            let torn = rng.f64() < 0.5;
            CrashSpec { at, torn }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sampling_is_deterministic_and_in_range() {
        let a = sample_kill_points(7, VTime(10.0), 16);
        let b = sample_kill_points(7, VTime(10.0), 16);
        assert_eq!(a, b);
        for p in &a {
            assert!(p.at.secs() > 0.0 && p.at.secs() < 10.0, "point {:?}", p.at);
        }
    }

    #[test]
    fn prefix_stability_as_n_grows() {
        let a = sample_kill_points(7, VTime(10.0), 4);
        let b = sample_kill_points(7, VTime(10.0), 8);
        assert_eq!(a[..], b[..4], "index k must be stable as n grows");
    }

    #[test]
    fn seeds_decorrelate() {
        let a = sample_kill_points(1, VTime(10.0), 8);
        let b = sample_kill_points(2, VTime(10.0), 8);
        assert_ne!(a, b);
    }

    #[test]
    fn both_tear_kinds_appear() {
        let pts = sample_kill_points(3, VTime(1.0), 32);
        assert!(pts.iter().any(|p| p.torn) && pts.iter().any(|p| !p.torn));
    }
}
