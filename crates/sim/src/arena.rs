//! Bump-style string arena: many small strings, one allocation.
//!
//! Per-run metadata (the object registry, report labels) used to hold
//! one heap `String` per entry *plus* a `HashMap` keying clones of the
//! same strings — two allocations and a hash table for name sets that
//! are typically under a dozen entries and never shrink. A [`StrArena`]
//! stores every interned string back-to-back in a single growing buffer
//! and hands out copyable [`StrRef`] spans; lookup is a linear scan,
//! which for these cardinalities beats hashing and costs no extra
//! allocation at all.
//!
//! The arena is append-only: interned strings are never removed, so a
//! [`StrRef`] stays valid for the arena's lifetime and equality of refs
//! implies equality of strings *when both came from the same arena via
//! [`StrArena::intern`]* (intern returns the existing span for an exact
//! duplicate).

/// A span handle into a [`StrArena`]. Cheap to copy, stable for the
/// arena's lifetime.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct StrRef(u32);

impl StrRef {
    /// Position of this string in interning order (0-based).
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

/// An append-only arena of interned strings.
#[derive(Debug, Default, Clone)]
pub struct StrArena {
    buf: String,
    /// Byte spans `[start, end)` into `buf`, in interning order.
    spans: Vec<(u32, u32)>,
}

impl StrArena {
    /// An empty arena.
    pub fn new() -> StrArena {
        StrArena::default()
    }

    /// An empty arena with `bytes` of string storage pre-reserved.
    pub fn with_capacity(bytes: usize) -> StrArena {
        StrArena {
            buf: String::with_capacity(bytes),
            spans: Vec::new(),
        }
    }

    /// Intern `s`, returning the existing span when the exact string was
    /// interned before.
    pub fn intern(&mut self, s: &str) -> StrRef {
        if let Some(r) = self.find(s) {
            return r;
        }
        let start = self.buf.len();
        let end = start + s.len();
        assert!(end <= u32::MAX as usize, "arena overflow");
        self.buf.push_str(s);
        self.spans.push((start as u32, end as u32));
        StrRef((self.spans.len() - 1) as u32)
    }

    /// The string behind `r`.
    pub fn get(&self, r: StrRef) -> &str {
        let (s, e) = self.spans[r.index()];
        &self.buf[s as usize..e as usize]
    }

    /// The `idx`-th interned string (interning order).
    pub fn get_at(&self, idx: usize) -> &str {
        let (s, e) = self.spans[idx];
        &self.buf[s as usize..e as usize]
    }

    /// Find an already-interned string. Linear scan: arenas here hold a
    /// handful of names, where scanning a contiguous buffer is faster
    /// than hashing and allocates nothing.
    pub fn find(&self, s: &str) -> Option<StrRef> {
        self.spans
            .iter()
            .position(|&(a, b)| &self.buf[a as usize..b as usize] == s)
            .map(|i| StrRef(i as u32))
    }

    /// Number of interned strings.
    pub fn len(&self) -> usize {
        self.spans.len()
    }

    /// Whether nothing has been interned yet.
    pub fn is_empty(&self) -> bool {
        self.spans.is_empty()
    }

    /// Total string bytes stored.
    pub fn bytes(&self) -> usize {
        self.buf.len()
    }

    /// All interned strings in interning order.
    pub fn iter(&self) -> impl Iterator<Item = &str> {
        self.spans
            .iter()
            .map(|&(a, b)| &self.buf[a as usize..b as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_get_roundtrip() {
        let mut a = StrArena::new();
        let x = a.intern("alpha");
        let y = a.intern("beta");
        assert_eq!(a.get(x), "alpha");
        assert_eq!(a.get(y), "beta");
        assert_eq!(a.len(), 2);
        assert_eq!(a.bytes(), 9);
        assert_eq!(x.index(), 0);
        assert_eq!(a.get_at(1), "beta");
    }

    #[test]
    fn duplicate_interning_returns_the_same_ref() {
        let mut a = StrArena::new();
        let x = a.intern("u");
        let y = a.intern("u");
        assert_eq!(x, y);
        assert_eq!(a.len(), 1);
    }

    #[test]
    fn find_distinguishes_prefixes_and_concatenations() {
        let mut a = StrArena::new();
        a.intern("ab");
        a.intern("cd");
        // "abcd" is contiguous in the buffer but is not an interned span.
        assert_eq!(a.find("abcd"), None);
        assert_eq!(a.find("a"), None);
        assert_eq!(a.find("cd").map(StrRef::index), Some(1));
    }

    #[test]
    fn empty_string_and_empty_arena() {
        let mut a = StrArena::new();
        assert!(a.is_empty());
        assert_eq!(a.find("x"), None);
        let e = a.intern("");
        assert_eq!(a.get(e), "");
        assert!(!a.is_empty());
    }

    #[test]
    fn iter_yields_interning_order() {
        let mut a = StrArena::with_capacity(64);
        for s in ["one", "two", "three"] {
            a.intern(s);
        }
        let all: Vec<&str> = a.iter().collect();
        assert_eq!(all, ["one", "two", "three"]);
    }
}
