//! Deterministic per-channel bandwidth ledger.
//!
//! The timing core historically handed every rank a private copy of each
//! tier's bandwidth, so helper-thread migration traffic was free from the
//! application's point of view. This ledger is the shared-resource
//! replacement: flows (migration copies) are posted against *channels*
//! (one per tier × direction at the HMS layer), and a consumer asks how
//! much of a channel's bandwidth is already spoken for during a virtual
//! time window. Concurrent flows on a channel split its bandwidth
//! proportionally — see `unimem_hms::contention` for the split formula;
//! this module only does the deterministic bookkeeping.
//!
//! # Determinism under concurrent rank threads
//!
//! Rank threads run concurrently in *host* time with independent virtual
//! clocks, so a naive shared structure would answer queries differently
//! depending on which thread the OS ran first. The ledger therefore keeps
//! two kinds of accounting:
//!
//! * **Own flows** are visible to their owner immediately and charged by
//!   exact interval overlap — a rank's own helper traffic is in its own
//!   program order, so this is trivially deterministic.
//! * **Neighbor flows** become visible only at **fences**. A fence is a
//!   globally synchronizing point (in this repo: every MPI collective,
//!   which rendezvouses *all* ranks before any rank leaves). A flow
//!   posted by owner `o` between its `k`-th and `k+1`-th fences is
//!   tagged `visible_from = k+1`; a reader that has passed `g` fences
//!   sees exactly the flows tagged `≤ g`. Because no rank can pass its
//!   `g`-th fence before every other rank has *entered* it, every such
//!   flow is guaranteed posted before any reader can observe generation
//!   `g` — the visible set is a pure function of virtual program order,
//!   never of host scheduling.
//!
//! Neighbor traffic is charged as a **rate** over the reader's last
//! completed fence epoch rather than by interval overlap: by the time a
//! fence makes neighbor flows visible, the fence has also synchronized
//! clocks past their intervals, so exact overlap would systematically
//! read zero. The epoch rate models the steady cyclic traffic the
//! enforcer actually generates (the same copies re-fire every
//! iteration). Readers use their *own* fence timestamps for epoch
//! lengths — fences are globally synchronized, so every rank records the
//! identical instants.
//!
//! # Sharding (PR 9)
//!
//! The ledger is sharded per owner, and the cross-owner read path is
//! lock-free. The observation that makes this work: a neighbor query
//! only ever reads another owner's *epoch byte totals at the reader's
//! own generation* — never its flow list, fence timestamps, or even its
//! generation counter. So each shard keeps
//!
//! * **owner-private state** (own flows, generation, last two fences)
//!   behind a per-owner mutex that only the owning rank thread ever
//!   takes — posts, fences, and own-overlap queries from different
//!   owners touch different mutexes and never contend; and
//! * a **fixed 4-deep epoch ring** of per-channel atomic byte counters
//!   (`f64` bits in `AtomicU64`) that neighbors read directly. Four
//!   slots suffice because the visibility lag is at most one
//!   generation: with the owner at generation `G`, posts accumulate
//!   into slot `G+1`, readers touch slots `G-1 ..= G+1`, and the fence
//!   clears slot `G-2` — four distinct residues mod 4.
//!
//! Each ring slot is written by exactly one thread (its owner: posts
//! accumulate, the fence clears), so a plain load/store pair is enough;
//! stores are `Release` and reads `Acquire`, and the MPI-collective
//! rendezvous that advances generations provides the happens-before
//! edge that makes the values a reader observes a pure function of
//! virtual program order — byte-identical for any worker count, exactly
//! as the old whole-owner-mutex design behaved, minus the cross-owner
//! lock convoy in `load()`.

use crate::time::{VDur, VTime};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

/// Named ledger channels: the four intra-node tier × direction lanes
/// plus the two inter-node link directions the cluster topology adds.
///
/// `Channel as usize` is the ledger index, so a typed post can never
/// name a lane the channel map does not contain — the bare-`usize`
/// out-of-range assert becomes unrepresentable at typed call sites.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[repr(usize)]
pub enum Channel {
    /// DRAM reads (intra-node).
    DramRead = 0,
    /// DRAM writes (intra-node).
    DramWrite = 1,
    /// NVM reads (intra-node).
    NvmRead = 2,
    /// NVM writes (intra-node, including journal appends).
    NvmWrite = 3,
    /// Inter-node link, egress from this node.
    LinkUp = 4,
    /// Inter-node link, ingress to this node.
    LinkDown = 5,
}

impl Channel {
    /// Every named channel, in ledger-index order.
    pub const ALL: [Channel; 6] = [
        Channel::DramRead,
        Channel::DramWrite,
        Channel::NvmRead,
        Channel::NvmWrite,
        Channel::LinkUp,
        Channel::LinkDown,
    ];

    /// The ledger index this channel occupies.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Human-readable name (report/debug output).
    pub fn name(self) -> &'static str {
        match self {
            Channel::DramRead => "dram-read",
            Channel::DramWrite => "dram-write",
            Channel::NvmRead => "nvm-read",
            Channel::NvmWrite => "nvm-write",
            Channel::LinkUp => "link-up",
            Channel::LinkDown => "link-down",
        }
    }
}

/// The set of channels a ledger is built with, derived from the
/// topology: a lone node only has the four tier lanes; a clustered node
/// adds the two link directions. Constructing a [`BwLedger`] through a
/// map (instead of a bare channel count) ties every typed post to a
/// lane that exists.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ChannelMap {
    n: usize,
}

impl ChannelMap {
    /// The four intra-node lanes (`DramRead` … `NvmWrite`).
    pub fn intra_node() -> ChannelMap {
        ChannelMap { n: 4 }
    }

    /// All six lanes, link directions included.
    pub fn cluster() -> ChannelMap {
        ChannelMap { n: 6 }
    }

    /// The map for a topology of `n_nodes`: a single node needs no link
    /// lanes, anything larger does.
    pub fn for_nodes(n_nodes: usize) -> ChannelMap {
        if n_nodes > 1 {
            ChannelMap::cluster()
        } else {
            ChannelMap::intra_node()
        }
    }

    /// Number of ledger channels in the map.
    pub fn len(&self) -> usize {
        self.n
    }

    /// A map is never empty, but clippy insists `len` has a partner.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// Whether the map includes `ch`.
    pub fn contains(&self, ch: Channel) -> bool {
        ch.index() < self.n
    }

    /// The named channels in the map, in index order.
    pub fn channels(&self) -> &'static [Channel] {
        &Channel::ALL[..self.n]
    }
}

/// One posted flow: `bytes` moved on `channel` over `[start, end]`.
#[derive(Debug, Clone, Copy, PartialEq)]
struct Flow {
    channel: usize,
    start: VTime,
    end: VTime,
    bytes: f64,
    visible_from: u64,
}

/// Depth of the per-shard epoch ring. Visibility lag is at most one
/// generation, so the live slots at owner generation `G` are `G+1`
/// (accumulating), `G-1 ..= G+1` (readable) and `G-2` (being cleared)
/// — four distinct residues.
const GEN_RING: usize = 4;

#[derive(Debug, Default)]
struct OwnerState {
    /// Fences passed so far (the owner's visibility generation).
    gen: u64,
    /// Timestamps of the last two fences (`[previous, latest]`) — all
    /// the fence history the epoch-rate math ever needs.
    last_fences: [VTime; 2],
    /// Flows posted by this owner, in program order. Pruned at fences:
    /// own queries only ever look at windows starting at the rank's
    /// current clock, which is past the fence instant from then on, so
    /// flows ending before the fence can never be read again.
    flows: Vec<Flow>,
}

/// One owner's shard: private state behind its own (uncontended) mutex,
/// plus the lock-free epoch ring neighbors read.
#[derive(Debug)]
struct Shard {
    /// Owner-private state. Only the owning rank thread locks this, so
    /// in steady state the lock is never contended — it exists to keep
    /// the API `&self` and the single-threaded tests sound.
    own: Mutex<OwnerState>,
    /// Bytes posted per (visibility generation, channel), as a ring:
    /// slot `(g % GEN_RING) * channels + c` sums the flows tagged
    /// `visible_from == g`, stored as `f64` bits. Written only by the
    /// owner (posts accumulate, fences clear the slot aging out of the
    /// visibility window); read lock-free by every neighbor. A cleared
    /// (or never-posted) slot reads as zero.
    epoch_bytes: Vec<AtomicU64>,
}

impl Shard {
    fn new(channels: usize) -> Shard {
        Shard {
            own: Mutex::new(OwnerState::default()),
            epoch_bytes: (0..GEN_RING * channels)
                .map(|_| AtomicU64::new(0))
                .collect(),
        }
    }

    /// The ring slot for generation `gen`, channel `channel`.
    fn slot(&self, gen: u64, channel: usize, channels: usize) -> &AtomicU64 {
        &self.epoch_bytes[(gen % GEN_RING as u64) as usize * channels + channel]
    }
}

/// How much of a channel's bandwidth existing flows consume over a
/// window, split by provenance (bytes per second).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LoadSplit {
    /// Rate consumed by the querying owner's own flows (exact interval
    /// overlap with the window).
    pub own: f64,
    /// Rate consumed by every other owner's flows (last-epoch rate,
    /// capped per owner).
    pub neighbors: f64,
}

impl LoadSplit {
    /// Combined consumption rate.
    pub fn total(&self) -> f64 {
        self.own + self.neighbors
    }
}

/// The shared ledger: `owners` posting flows against `channels`.
///
/// All methods take `&self`; internal state is sharded per owner (see
/// the module docs): owner-private state behind a per-owner mutex that
/// only the owning thread takes, neighbor-visible epoch totals in
/// lock-free atomic rings. Readers iterate owners in index order, so
/// float accumulation order is deterministic.
#[derive(Debug)]
pub struct BwLedger {
    channels: usize,
    shards: Vec<Shard>,
}

impl BwLedger {
    /// A ledger for `owners` concurrent posters over `channels` channels.
    pub fn new(owners: usize, channels: usize) -> BwLedger {
        assert!(owners >= 1 && channels >= 1);
        BwLedger {
            channels,
            shards: (0..owners).map(|_| Shard::new(channels)).collect(),
        }
    }

    /// A ledger whose channels are the named lanes of `map` — the typed
    /// constructor the topology layer uses so [`BwLedger::post_named`]
    /// call sites cannot name a lane that does not exist.
    pub fn with_channels(owners: usize, map: ChannelMap) -> BwLedger {
        BwLedger::new(owners, map.len())
    }

    /// Typed [`BwLedger::post`]: the channel index comes from the named
    /// lane, so it is in range by construction on a
    /// [`ChannelMap::cluster`] ledger.
    pub fn post_named(&self, owner: usize, ch: Channel, start: VTime, end: VTime, bytes: f64) {
        self.post(owner, ch.index(), start, end, bytes);
    }

    /// Typed [`BwLedger::load`].
    pub fn load_named(
        &self,
        owner: usize,
        ch: Channel,
        w0: VTime,
        w1: VTime,
        neighbor_rate_cap: f64,
    ) -> LoadSplit {
        self.load(owner, ch.index(), w0, w1, neighbor_rate_cap)
    }

    pub fn n_owners(&self) -> usize {
        self.shards.len()
    }

    pub fn n_channels(&self) -> usize {
        self.channels
    }

    fn state(&self, owner: usize) -> std::sync::MutexGuard<'_, OwnerState> {
        self.shards[owner]
            .own
            .lock()
            .expect("ledger mutex poisoned")
    }

    /// Post a flow: `owner` moves `bytes` on `channel` over `[start, end]`.
    /// Visible to the owner immediately, to neighbors after their next
    /// fence beyond the owner's current generation.
    pub fn post(&self, owner: usize, channel: usize, start: VTime, end: VTime, bytes: f64) {
        assert!(channel < self.channels, "channel {channel} out of range");
        let shard = &self.shards[owner];
        let mut st = shard.own.lock().expect("ledger mutex poisoned");
        let visible_from = st.gen + 1;
        // Single-writer accumulate: only the owner posts to its ring, so
        // a load/store pair is race-free; Release pairs with readers'
        // Acquire (the collective rendezvous orders the generations).
        let slot = shard.slot(visible_from, channel, self.channels);
        let sum = f64::from_bits(slot.load(Ordering::Relaxed)) + bytes;
        slot.store(sum.to_bits(), Ordering::Release);
        st.flows.push(Flow {
            channel,
            start,
            end,
            bytes,
            visible_from,
        });
    }

    /// Record that `owner` passed a globally synchronizing point at the
    /// synchronized instant `now`. Every owner must fence at the same
    /// points with the same timestamps (the caller's collectives
    /// guarantee this); the fence count is the owner's visibility
    /// generation. Fences also retire accounting that can no longer be
    /// read — flows already finished (own queries only look forward from
    /// the rank's clock) and epoch entries beyond the one-generation
    /// visibility lag — keeping per-query cost bounded by the traffic of
    /// the current epoch instead of the whole run. Returns the owner's
    /// new visibility generation — the epoch identity the placement
    /// journal stamps on its commit records.
    pub fn fence(&self, owner: usize, now: VTime) -> u64 {
        let shard = &self.shards[owner];
        let mut st = shard.own.lock().expect("ledger mutex poisoned");
        st.gen += 1;
        st.last_fences = [st.last_fences[1], now];
        st.flows.retain(|f| f.end >= now);
        // Clear the ring slot aging out of the visibility window (no
        // reader can be more than one generation behind, so generation
        // `gen - 2` is dead); its slot is next written for generation
        // `gen + 2`, two fences from now.
        if let Some(stale) = st.gen.checked_sub(2) {
            for ch in 0..self.channels {
                shard
                    .slot(stale, ch, self.channels)
                    .store(0, Ordering::Release);
            }
        }
        st.gen
    }

    /// The number of fences `owner` has passed.
    pub fn gen(&self, owner: usize) -> u64 {
        self.state(owner).gen
    }

    /// Bandwidth already consumed on `channel` over `[w0, w1]` as seen by
    /// `owner`: own flows by exact interval overlap, neighbor flows by
    /// their last-completed-epoch average rate (each neighbor capped at
    /// `neighbor_rate_cap` bytes/s — a helper thread cannot physically
    /// copy faster than its copy path).
    pub fn load(
        &self,
        owner: usize,
        channel: usize,
        w0: VTime,
        w1: VTime,
        neighbor_rate_cap: f64,
    ) -> LoadSplit {
        assert!(channel < self.channels, "channel {channel} out of range");
        let window = w1.since(w0);
        if window.is_zero() {
            return LoadSplit::default();
        }

        // One visit to the reader's own (uncontended) shard covers the
        // generation, the epoch length, and the own-flow overlap.
        let (gen, epoch_len, own_bytes) = {
            let st = self.state(owner);
            let mut own = 0.0;
            for f in st.flows.iter().filter(|f| f.channel == channel) {
                own += overlap_bytes(f, w0, w1);
            }
            (st.gen, epoch_len(st.gen, st.last_fences), own)
        };

        // Neighbors: bytes they posted during the reader's last completed
        // epoch, turned into a rate over that epoch's length. Lock-free:
        // each neighbor's epoch total is one Acquire load from its ring —
        // no neighbor mutex is ever taken, so concurrent rank queries
        // and posts do not convoy through each other's shards.
        let mut neighbors = 0.0;
        if gen >= 1 {
            for (o, shard) in self.shards.iter().enumerate() {
                if o == owner {
                    continue;
                }
                // Fence-cleared (or never-posted) slots read as zero.
                let bytes = f64::from_bits(
                    shard
                        .slot(gen, channel, self.channels)
                        .load(Ordering::Acquire),
                );
                if bytes <= 0.0 {
                    continue;
                }
                let rate = if epoch_len.is_zero() {
                    neighbor_rate_cap
                } else {
                    (bytes / epoch_len.secs()).min(neighbor_rate_cap)
                };
                neighbors += rate;
            }
        }

        LoadSplit {
            own: own_bytes / window.secs(),
            neighbors,
        }
    }
}

/// Length of the reader's last completed fence epoch `[T_{g-1}, T_g]`
/// (`T_0` = simulation start; `last_fences` holds `[T_{g-1}, T_g]`,
/// zero-padded below two fences).
fn epoch_len(gen: u64, last_fences: [VTime; 2]) -> VDur {
    match gen {
        0 => VDur::ZERO,
        1 => last_fences[1].since(VTime::ZERO),
        _ => last_fences[1].since(last_fences[0]),
    }
}

/// Bytes of `f` that land inside `[w0, w1]`, assuming a constant rate
/// over the flow's interval. Zero-duration flows deposit all their bytes
/// at `start` if it falls inside the window.
fn overlap_bytes(f: &Flow, w0: VTime, w1: VTime) -> f64 {
    let dur = f.end.since(f.start);
    if dur.is_zero() {
        if f.start >= w0 && f.start <= w1 {
            f.bytes
        } else {
            0.0
        }
    } else {
        let lo = f.start.max(w0);
        let hi = f.end.min(w1);
        let ov = hi.since(lo);
        f.bytes * (ov.secs() / dur.secs())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> VTime {
        VTime(s)
    }

    #[test]
    fn empty_ledger_has_no_load() {
        let l = BwLedger::new(2, 4);
        let split = l.load(0, 1, t(0.0), t(1.0), 1e9);
        assert_eq!(split, LoadSplit::default());
        assert_eq!(split.total(), 0.0);
    }

    #[test]
    fn own_flow_charges_exact_overlap() {
        let l = BwLedger::new(1, 1);
        // 1e9 bytes over [0, 1]: rate 1 GB/s.
        l.post(0, 0, t(0.0), t(1.0), 1e9);
        // Full containment.
        let s = l.load(0, 0, t(0.0), t(1.0), 1e12);
        assert!((s.own - 1e9).abs() < 1.0);
        // Half overlap: window [0.5, 1.5] catches half the bytes over a
        // 1 s window -> 0.5 GB/s.
        let s = l.load(0, 0, t(0.5), t(1.5), 1e12);
        assert!((s.own - 0.5e9).abs() < 1.0);
        // Disjoint window.
        let s = l.load(0, 0, t(2.0), t(3.0), 1e12);
        assert_eq!(s.own, 0.0);
    }

    #[test]
    fn zero_duration_flow_deposits_at_start() {
        let l = BwLedger::new(1, 1);
        l.post(0, 0, t(0.5), t(0.5), 100.0);
        let s = l.load(0, 0, t(0.0), t(1.0), 1e12);
        assert!((s.own - 100.0).abs() < 1e-9);
        let s = l.load(0, 0, t(0.6), t(1.0), 1e12);
        assert_eq!(s.own, 0.0);
    }

    #[test]
    fn neighbor_flow_invisible_before_fence() {
        let l = BwLedger::new(2, 1);
        l.post(1, 0, t(0.0), t(1.0), 1e9);
        let s = l.load(0, 0, t(0.0), t(1.0), 1e12);
        assert_eq!(s.neighbors, 0.0, "unfenced neighbor traffic leaked");
    }

    #[test]
    fn neighbor_flow_charged_as_epoch_rate_after_fence() {
        let l = BwLedger::new(2, 1);
        // Both owners live through epoch [0, 2]; owner 1 copies 1e9 bytes.
        l.post(1, 0, t(0.0), t(1.0), 1e9);
        l.fence(0, t(2.0));
        l.fence(1, t(2.0));
        // Epoch length 2 s -> neighbor rate 0.5 GB/s, over any window.
        let s = l.load(0, 0, t(2.0), t(3.0), 1e12);
        assert!((s.neighbors - 0.5e9).abs() < 1.0, "{s:?}");
        // The owner's own view of the same flow is interval-exact: no
        // overlap with [2, 3].
        let s1 = l.load(1, 0, t(2.0), t(3.0), 1e12);
        assert_eq!(s1.own, 0.0);
        assert_eq!(s1.neighbors, 0.0);
    }

    #[test]
    fn neighbor_rate_is_capped() {
        let l = BwLedger::new(2, 1);
        l.post(1, 0, t(0.0), t(0.001), 1e9); // 1 TB/s burst
        l.fence(0, t(0.001));
        l.fence(1, t(0.001));
        let s = l.load(0, 0, t(0.001), t(0.002), 3e9);
        assert!((s.neighbors - 3e9).abs() < 1.0, "cap not applied: {s:?}");
    }

    #[test]
    fn old_epochs_age_out() {
        let l = BwLedger::new(2, 1);
        l.post(1, 0, t(0.0), t(1.0), 1e9);
        l.fence(0, t(1.0));
        l.fence(1, t(1.0));
        // A second, idle epoch: the old traffic no longer counts.
        l.fence(0, t(2.0));
        l.fence(1, t(2.0));
        let s = l.load(0, 0, t(2.0), t(3.0), 1e12);
        assert_eq!(s.neighbors, 0.0, "stale epoch traffic still charged");
    }

    #[test]
    fn channels_are_independent() {
        let l = BwLedger::new(1, 2);
        l.post(0, 0, t(0.0), t(1.0), 1e9);
        assert!(l.load(0, 0, t(0.0), t(1.0), 1e12).own > 0.0);
        assert_eq!(l.load(0, 1, t(0.0), t(1.0), 1e12).own, 0.0);
    }

    #[test]
    fn empty_window_is_zero_load() {
        let l = BwLedger::new(1, 1);
        l.post(0, 0, t(0.0), t(1.0), 1e9);
        assert_eq!(l.load(0, 0, t(0.5), t(0.5), 1e12), LoadSplit::default());
    }

    #[test]
    fn fences_retire_dead_flows_but_keep_in_flight_ones() {
        let l = BwLedger::new(1, 1);
        l.post(0, 0, t(0.0), t(1.0), 1e9); // done before the fence
        l.post(0, 0, t(0.0), t(10.0), 1e10); // spans the fence
        l.fence(0, t(5.0));
        // The spanning flow is still charged at its 1 GB/s rate over
        // [5, 6]; the finished one contributes nothing (and is gone).
        let s = l.load(0, 0, t(5.0), t(6.0), 1e12);
        assert!((s.own - 1e9).abs() < 1.0, "{s:?}");
        assert_eq!(l.state(0).flows.len(), 1, "dead flow not pruned");
    }

    #[test]
    fn fences_clear_epochs_beyond_the_visibility_lag() {
        let l = BwLedger::new(2, 1);
        for g in 0..5 {
            l.post(1, 0, t(g as f64), t(g as f64 + 0.5), 1e6);
            l.fence(0, t(g as f64 + 1.0));
            l.fence(1, t(g as f64 + 1.0));
        }
        // Readers can be at most one generation away: only the ring
        // slots inside the visibility window may still hold bytes.
        let live = l.shards[1]
            .epoch_bytes
            .iter()
            .filter(|s| f64::from_bits(s.load(Ordering::Relaxed)) != 0.0)
            .count();
        assert!(live <= 3, "{live} live epoch slots retained");
    }

    #[test]
    fn gen_counts_fences() {
        let l = BwLedger::new(2, 1);
        assert_eq!(l.gen(0), 0);
        l.fence(0, t(1.0));
        assert_eq!(l.gen(0), 1);
        assert_eq!(l.gen(1), 0);
    }

    #[test]
    fn channel_indices_are_stable_and_named() {
        for (i, ch) in Channel::ALL.iter().enumerate() {
            assert_eq!(ch.index(), i);
        }
        assert_eq!(Channel::DramRead.index(), 0);
        assert_eq!(Channel::NvmWrite.index(), 3);
        assert_eq!(Channel::LinkUp.index(), 4);
        assert_eq!(Channel::LinkDown.index(), 5);
        assert_eq!(Channel::LinkUp.name(), "link-up");
    }

    #[test]
    fn channel_map_tracks_topology() {
        let intra = ChannelMap::intra_node();
        assert_eq!(intra.len(), 4);
        assert!(intra.contains(Channel::NvmWrite));
        assert!(!intra.contains(Channel::LinkUp));
        assert_eq!(intra.channels().len(), 4);

        let cluster = ChannelMap::cluster();
        assert_eq!(cluster.len(), 6);
        assert!(cluster.contains(Channel::LinkDown));
        assert!(!cluster.is_empty());

        assert_eq!(ChannelMap::for_nodes(1), intra);
        assert_eq!(ChannelMap::for_nodes(2), cluster);
        assert_eq!(ChannelMap::for_nodes(128), cluster);
    }

    #[test]
    fn typed_post_and_load_hit_the_same_lane_as_untyped() {
        let l = BwLedger::with_channels(1, ChannelMap::cluster());
        assert_eq!(l.n_channels(), 6);
        l.post_named(0, Channel::LinkUp, t(0.0), t(1.0), 1e9);
        let typed = l.load_named(0, Channel::LinkUp, t(0.0), t(1.0), 1e12);
        let untyped = l.load(0, 4, t(0.0), t(1.0), 1e12);
        assert_eq!(typed, untyped);
        assert!(typed.own > 0.0);
        assert_eq!(
            l.load_named(0, Channel::LinkDown, t(0.0), t(1.0), 1e12).own,
            0.0
        );
    }
}
