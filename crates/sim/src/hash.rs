//! Deterministic content hashing for content-addressed storage.
//!
//! Thin façade over the vendored [`fnv`] crate (FNV-1a, 64- and 128-bit)
//! plus the one convention every content-addressed consumer shares:
//! **hash the canonical compact JSON form**. The sweep's incremental cell
//! cache (`unimem_bench::sweep::cache`) derives its on-disk entry names
//! from [`json_digest_hex`] of a canonically-constructed [`Json`]
//! document, so two processes — or two runs months apart — that describe
//! the same cell configuration land on the same file.
//!
//! The [`Json`] builder already guarantees the canonical part: objects
//! keep insertion order, floats render in shortest round-trip form, and
//! nothing consults locale or host state. Hashing that text (rather than
//! an ad-hoc field concatenation) means the key derivation is readable in
//! one place and unambiguous — adding a field to the key document changes
//! every digest, which is exactly the invalidation semantics a
//! content-addressed cache wants.
//!
//! FNV-1a is not cryptographic; see the collision note in [`fnv`].
//! Consumers that cannot tolerate a constructed collision must store the
//! canonical text next to the payload and compare it on load (the sweep
//! cache does).

pub use fnv::{fnv1a_128, fnv1a_64, Fnv128, Fnv64};

use crate::json::Json;

/// 128-bit FNV-1a digest of the value's compact JSON form, as 32
/// lower-case hex characters — fixed-width, separator-free, safe as a
/// file name on every platform the workspace targets.
pub fn json_digest_hex(value: &Json) -> String {
    Fnv128::new()
        .update(value.to_compact().as_bytes())
        .finish_hex()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn key(salt: &str) -> Json {
        let mut o = Json::obj();
        o.push("schema", "unimem-bench-sweep/v5")
            .push("salt", salt)
            .push("workload", "CG")
            .push("nranks", 4u64);
        o
    }

    #[test]
    fn digest_is_deterministic_and_fixed_width() {
        let a = json_digest_hex(&key(""));
        assert_eq!(a, json_digest_hex(&key("")));
        assert_eq!(a.len(), 32);
        assert!(a.chars().all(|c| c.is_ascii_hexdigit()));
    }

    #[test]
    fn any_field_change_changes_the_digest() {
        let base = json_digest_hex(&key(""));
        assert_ne!(base, json_digest_hex(&key("s")), "salt must invalidate");
        let mut reordered = Json::obj();
        reordered
            .push("salt", "")
            .push("schema", "unimem-bench-sweep/v5")
            .push("workload", "CG")
            .push("nranks", 4u64);
        // Member order is part of the canonical form on purpose: keys are
        // constructed by one function, never merged from maps.
        assert_ne!(base, json_digest_hex(&reordered));
    }

    #[test]
    fn digest_matches_hashing_the_compact_text() {
        let k = key("x");
        assert_eq!(
            json_digest_hex(&k),
            Fnv128::new().update(k.to_compact().as_bytes()).finish_hex()
        );
    }
}
