//! Deterministic randomness for the simulation.
//!
//! All stochastic elements of the reproduction (sampling noise in the
//! PEBS-style profiler, randomized workload geometry, property tests) draw
//! from [`DetRng`], a seeded `SmallRng`. Seeds are always explicit so runs
//! are reproducible; helpers derive independent substreams from a parent
//! seed plus a label, so adding a consumer never perturbs existing ones.

use rand::rngs::SmallRng;
use rand::{Rng, RngCore, SeedableRng};

/// Deterministic RNG with the distributions the simulator needs.
#[derive(Debug, Clone)]
pub struct DetRng {
    inner: SmallRng,
}

impl DetRng {
    /// Create from an explicit seed.
    pub fn seed(seed: u64) -> DetRng {
        DetRng {
            inner: SmallRng::seed_from_u64(seed),
        }
    }

    /// Derive an independent substream for `label` under `parent` seed.
    /// Uses an FNV-1a mix so distinct labels give uncorrelated streams.
    pub fn derive(parent: u64, label: &str) -> DetRng {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ parent.rotate_left(17);
        for b in label.as_bytes() {
            h ^= u64::from(*b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        DetRng::seed(h)
    }

    /// Uniform in `[0, 1)`.
    #[inline]
    pub fn f64(&mut self) -> f64 {
        self.inner.gen::<f64>()
    }

    /// Uniform integer in `[0, n)`. `n` must be positive.
    #[inline]
    pub fn index(&mut self, n: usize) -> usize {
        debug_assert!(n > 0);
        self.inner.gen_range(0..n)
    }

    /// Uniform in `[lo, hi)`.
    #[inline]
    pub fn range_f64(&mut self, lo: f64, hi: f64) -> f64 {
        self.inner.gen_range(lo..hi)
    }

    /// Standard normal deviate (Box–Muller; one value per call for
    /// simplicity — this is not a hot path).
    pub fn std_normal(&mut self) -> f64 {
        let u1: f64 = self.inner.gen_range(f64::MIN_POSITIVE..1.0);
        let u2: f64 = self.inner.gen::<f64>();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Binomial(n, p) deviate.
    ///
    /// The sampler thins per-object miss counts with this: a phase with `n`
    /// misses on an object observed at sampling probability `p` records
    /// `Binomial(n, p)` samples. Exact inversion is used for small `n·p`,
    /// a normal approximation (clamped to `[0, n]`) for large, which is
    /// accurate far beyond what the placement decisions are sensitive to.
    pub fn binomial(&mut self, n: u64, p: f64) -> u64 {
        if n == 0 || p <= 0.0 {
            return 0;
        }
        if p >= 1.0 {
            return n;
        }
        let mean = n as f64 * p;
        let var = mean * (1.0 - p);
        if n <= 64 {
            // Exact: n Bernoulli trials.
            let mut k = 0;
            for _ in 0..n {
                if self.f64() < p {
                    k += 1;
                }
            }
            k
        } else if var > 25.0 {
            // Normal approximation with continuity correction.
            let x = mean + var.sqrt() * self.std_normal();
            x.round().clamp(0.0, n as f64) as u64
        } else {
            // Moderate n, small p: Poisson-style inversion on the count of
            // successes via geometric skips (BG algorithm).
            let mut k: u64 = 0;
            let mut i: u64 = 0;
            let log_q = (1.0 - p).ln();
            loop {
                let u = self.inner.gen_range(f64::MIN_POSITIVE..1.0);
                let skip = (u.ln() / log_q).floor() as u64;
                i = i.saturating_add(skip).saturating_add(1);
                if i > n {
                    return k;
                }
                k += 1;
            }
        }
    }

    /// Fisher–Yates shuffle.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.index(i + 1);
            xs.swap(i, j);
        }
    }

    /// Raw 64 random bits.
    #[inline]
    pub fn u64(&mut self) -> u64 {
        self.inner.next_u64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn determinism_same_seed() {
        let mut a = DetRng::seed(42);
        let mut b = DetRng::seed(42);
        for _ in 0..100 {
            assert_eq!(a.u64(), b.u64());
        }
    }

    #[test]
    fn derive_differs_by_label() {
        let mut a = DetRng::derive(7, "sampler");
        let mut b = DetRng::derive(7, "workload");
        assert_ne!(a.u64(), b.u64());
    }

    #[test]
    fn derive_is_deterministic() {
        let mut a = DetRng::derive(7, "x");
        let mut b = DetRng::derive(7, "x");
        assert_eq!(a.u64(), b.u64());
    }

    #[test]
    fn binomial_edges() {
        let mut r = DetRng::seed(1);
        assert_eq!(r.binomial(0, 0.5), 0);
        assert_eq!(r.binomial(100, 0.0), 0);
        assert_eq!(r.binomial(100, 1.0), 100);
    }

    #[test]
    fn binomial_mean_small_n() {
        let mut r = DetRng::seed(2);
        let trials = 20_000;
        let total: u64 = (0..trials).map(|_| r.binomial(20, 0.3)).sum();
        let mean = total as f64 / trials as f64;
        assert!((mean - 6.0).abs() < 0.1, "mean={mean}");
    }

    #[test]
    fn binomial_mean_large_n_normal_path() {
        let mut r = DetRng::seed(3);
        let trials = 2_000;
        let total: u64 = (0..trials).map(|_| r.binomial(1_000_000, 0.001)).sum();
        let mean = total as f64 / trials as f64;
        assert!((mean - 1000.0).abs() < 10.0, "mean={mean}");
    }

    #[test]
    fn binomial_mean_geometric_path() {
        // n in the hundreds with tiny p exercises the BG branch (var < 25).
        let mut r = DetRng::seed(4);
        let trials = 50_000;
        let total: u64 = (0..trials).map(|_| r.binomial(500, 0.01)).sum();
        let mean = total as f64 / trials as f64;
        assert!((mean - 5.0).abs() < 0.15, "mean={mean}");
    }

    #[test]
    fn binomial_never_exceeds_n() {
        let mut r = DetRng::seed(5);
        for _ in 0..1000 {
            assert!(r.binomial(80, 0.9) <= 80);
        }
    }

    #[test]
    fn shuffle_is_permutation() {
        let mut r = DetRng::seed(9);
        let mut v: Vec<u32> = (0..50).collect();
        r.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn std_normal_moments() {
        let mut r = DetRng::seed(11);
        let n = 50_000;
        let xs: Vec<f64> = (0..n).map(|_| r.std_normal()).collect();
        let mean = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean={mean}");
        assert!((var - 1.0).abs() < 0.05, "var={var}");
    }
}
