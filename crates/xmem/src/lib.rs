//! X-Mem-style baseline: offline profiling, static data tiering.
//!
//! The paper compares against "a recent software-based solution for data
//! placement in HMS" (Dulloor et al., *Data Tiering in Heterogeneous
//! Memory Systems*, EuroSys'16), which it characterizes as: "X-Mem uses
//! PIN-based offline profiling to characterize memory access patterns and
//! make the decision on data placement. They do not consider data movement
//! cost and assume a homogeneous memory access pattern within a data
//! object."
//!
//! This crate implements exactly that decision procedure against our
//! workload models:
//!
//! 1. **offline profiling** — an exact (binary-instrumentation-accurate,
//!    no sampling) access profile of the *first* iteration of a training
//!    run: per object, total references and the dominant access pattern;
//! 2. **classification** — streaming / random / pointer-chasing, one label
//!    per object (homogeneous by assumption);
//! 3. **static placement** — rank objects by benefit *density*
//!    (per-byte predicted saving from DRAM residency) and fill DRAM
//!    greedily; place once, never move.
//!
//! The two deficiencies the paper exploits are faithfully present: no
//! movement-cost model (irrelevant for a static placement) and, more
//! importantly, **no phase or iteration adaptivity** — the placement is
//! frozen from the training iteration, so Nek5000's drifting access
//! pattern leaves it behind (Fig. 9/10's 10% gap on Nek5000).

use std::collections::HashMap;
use unimem::exec::{Policy, StepSpec, Workload};
use unimem_cache::{AccessPattern, CacheModel};
use unimem_hms::object::{ObjId, ObjectRegistry};
use unimem_hms::MachineConfig;
use unimem_sim::Bytes;

/// Per-object offline profile.
#[derive(Debug, Clone, PartialEq)]
pub struct ObjProfile {
    pub obj: ObjId,
    pub name: String,
    pub size: Bytes,
    /// Exact main-memory references over the training iteration.
    pub misses: u64,
    /// Dominant pattern (by reference count) — X-Mem's homogeneity
    /// assumption collapses everything to one label per object.
    pub pattern: PatternClass,
}

/// X-Mem's three-way pattern taxonomy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PatternClass {
    Streaming,
    Random,
    PointerChasing,
}

fn classify(p: &AccessPattern) -> PatternClass {
    match p {
        AccessPattern::Streaming { .. } | AccessPattern::Stencil { .. } => PatternClass::Streaming,
        AccessPattern::Random | AccessPattern::Gather { .. } => PatternClass::Random,
        AccessPattern::PointerChase => PatternClass::PointerChasing,
    }
}

/// Run the offline training profile: exact per-object miss counts and
/// dominant patterns over the first iteration (rank 0's script, as a
/// representative training run).
pub fn offline_profile(
    workload: &dyn Workload,
    cache: &CacheModel,
    nranks: usize,
) -> Vec<ObjProfile> {
    let mut registry = ObjectRegistry::new();
    for spec in workload.objects(0, nranks) {
        registry.register(spec);
    }
    let mut misses: HashMap<ObjId, u64> = HashMap::new();
    let mut pattern_votes: HashMap<ObjId, HashMap<&'static str, (u64, PatternClass)>> =
        HashMap::new();
    let steps = workload.script(0, nranks, 0);
    for step in &steps {
        let StepSpec::Compute(spec) = step else {
            continue;
        };
        let total: Bytes = spec.accesses.iter().map(|a| a.touched).sum();
        for acc in &spec.accesses {
            let est = cache.misses(acc, total);
            *misses.entry(acc.obj).or_insert(0) += est.misses;
            let class = classify(&acc.pattern);
            let votes = pattern_votes.entry(acc.obj).or_default();
            let slot = votes.entry(acc.pattern.name()).or_insert((0, class));
            slot.0 += est.misses;
        }
    }
    registry
        .iter()
        .filter(|o| misses.get(&o.id).copied().unwrap_or(0) > 0)
        .map(|o| {
            let pattern = pattern_votes[&o.id]
                .values()
                .max_by_key(|(n, _)| *n)
                .map(|&(_, c)| c)
                .expect("object has misses, so it has votes");
            ObjProfile {
                obj: o.id,
                name: registry.name_of(o.id).to_string(),
                size: o.size,
                misses: misses[&o.id],
                pattern,
            }
        })
        .collect()
}

/// Static placement: rank by per-byte benefit, fill DRAM greedily.
/// Movement cost is ignored (X-Mem places before the run).
pub fn place(profiles: &[ObjProfile], machine: &MachineConfig, capacity: Bytes) -> Vec<String> {
    let mut scored: Vec<(&ObjProfile, f64)> = profiles
        .iter()
        .map(|p| {
            // Predicted per-object saving from DRAM: bandwidth delta for
            // streaming, latency delta for chasing, blend for random.
            let bytes = p.misses as f64 * 64.0;
            let bw_gain = bytes / machine.nvm.read_bw.bytes_per_s()
                - bytes / machine.dram.read_bw.bytes_per_s();
            let lat_gain =
                p.misses as f64 * (machine.nvm.read_lat.secs() - machine.dram.read_lat.secs());
            let gain = match p.pattern {
                PatternClass::Streaming => bw_gain,
                PatternClass::PointerChasing => lat_gain,
                PatternClass::Random => 0.5 * (bw_gain + lat_gain),
            };
            (p, gain / p.size.as_f64().max(1.0))
        })
        .collect();
    scored.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite scores"));
    let mut used = 0u64;
    let mut chosen = Vec::new();
    for (p, density) in scored {
        if density <= 0.0 {
            break;
        }
        if used + p.size.get() <= capacity.get() {
            used += p.size.get();
            chosen.push(p.name.clone());
        }
    }
    chosen
}

/// Build the X-Mem policy for a workload on a machine.
pub fn xmem_policy(
    workload: &dyn Workload,
    machine: &MachineConfig,
    cache: &CacheModel,
    nranks: usize,
) -> Policy {
    let profiles = offline_profile(workload, cache, nranks);
    let cap = Bytes(machine.dram_capacity.get() / machine.ranks_per_node as u64);
    Policy::Static {
        in_dram: place(&profiles, machine, cap),
        label: "X-Mem".into(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unimem::exec::run_workload;
    use unimem_workloads::{by_name, Class};

    fn setup() -> (MachineConfig, CacheModel) {
        (
            MachineConfig::nvm_bw_fraction(0.5),
            CacheModel::platform_a(),
        )
    }

    #[test]
    fn offline_profile_sees_hot_objects() {
        let (_, cache) = setup();
        let cg = by_name("CG", Class::C).unwrap();
        let profiles = offline_profile(cg.as_ref(), &cache, 4);
        let a = profiles.iter().find(|p| p.name == "a").expect("a profiled");
        assert!(a.misses > 0);
        // The CSR nonzero sweep streams; the gathered vector does not.
        assert_eq!(a.pattern, PatternClass::Streaming);
        let pv = profiles.iter().find(|p| p.name == "p").expect("p profiled");
        assert_eq!(pv.pattern, PatternClass::Random);
    }

    #[test]
    fn placement_respects_capacity() {
        let (m, cache) = setup();
        let sp = by_name("SP", Class::C).unwrap();
        let profiles = offline_profile(sp.as_ref(), &cache, 4);
        let chosen = place(&profiles, &m, Bytes::mib(256));
        let total: u64 = chosen
            .iter()
            .map(|n| profiles.iter().find(|p| &p.name == n).unwrap().size.get())
            .sum();
        assert!(total <= 256 << 20);
        assert!(!chosen.is_empty());
    }

    #[test]
    fn xmem_beats_nvm_only_on_stable_workloads() {
        let (m, cache) = setup();
        let cg = by_name("CG", Class::C).unwrap();
        let policy = xmem_policy(cg.as_ref(), &m, &cache, 4);
        let nvm = run_workload(cg.as_ref(), &m, &cache, 4, &Policy::NvmOnly).time();
        let xm = run_workload(cg.as_ref(), &m, &cache, 4, &policy).time();
        assert!(xm.secs() < nvm.secs(), "xmem={xm} nvm={nvm}");
    }

    #[test]
    fn unimem_beats_xmem_on_drifting_nek() {
        let (m, cache) = setup();
        let nek = by_name("Nek5000", Class::C).unwrap();
        let policy = xmem_policy(nek.as_ref(), &m, &cache, 4);
        let xm = run_workload(nek.as_ref(), &m, &cache, 4, &policy).time();
        let uni = run_workload(nek.as_ref(), &m, &cache, 4, &Policy::unimem()).time();
        assert!(
            uni.secs() < xm.secs(),
            "Unimem {uni} must beat X-Mem {xm} on Nek5000"
        );
    }

    #[test]
    fn policy_label_is_xmem() {
        let (m, cache) = setup();
        let lu = by_name("LU", Class::S).unwrap();
        assert_eq!(xmem_policy(lu.as_ref(), &m, &cache, 2).label(), "X-Mem");
    }
}
