//! Wall-clock micro-benchmarks of the runtime machinery (criterion).
//!
//! These measure the *real* cost of the pieces the simulation charges
//! virtual costs for: the knapsack solver, the sampler, the analytic cache
//! model, the real helper thread + FIFO queue (actual memcpy between the
//! accounted pools), mini-MPI collectives, and a full driver step.

use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;
use std::sync::Arc;
use unimem::exec::{run_workload, Policy};
use unimem::knapsack::{solve, Item};
use unimem_cache::{AccessPattern, CacheModel, ObjAccess};
use unimem_hms::object::ObjId;
use unimem_hms::pools::{HelperThread, RealHms};
use unimem_hms::tier::TierKind;
use unimem_hms::MachineConfig;
use unimem_mpi::{CommWorld, NetParams};
use unimem_perf::kernels::{build_chase_ring, pointer_chase, stream_triad};
use unimem_perf::sampler::{GroundTruth, Sampler, SamplerConfig};
use unimem_sim::{Bytes, DetRng, VDur};
use unimem_workloads::{by_name, Class};

fn bench_knapsack(c: &mut Criterion) {
    let mut rng = DetRng::seed(42);
    let items: Vec<Item> = (0..96)
        .map(|_| Item {
            weight: rng.range_f64(-1.0, 10.0),
            size: Bytes(1 + rng.u64() % (64 << 20)),
        })
        .collect();
    c.bench_function("knapsack_dp_96_items_256MB", |b| {
        b.iter(|| solve(black_box(&items), Bytes::mib(256)))
    });
}

fn bench_sampler(c: &mut Criterion) {
    let truths: Vec<GroundTruth> = (0..16)
        .map(|i| GroundTruth {
            unit: unimem_hms::object::UnitId::whole(ObjId(i)),
            misses: 1_000_000 + u64::from(i) * 50_000,
            miss_bytes: Bytes(64_000_000),
            mem_time: VDur::from_millis(5.0),
        })
        .collect();
    c.bench_function("sampler_phase_16_objects", |b| {
        b.iter_batched(
            || Sampler::new(SamplerConfig::default(), 7),
            |mut s| s.sample_phase(VDur::from_millis(80.0), black_box(&truths)),
            BatchSize::SmallInput,
        )
    });
}

fn bench_cache_model(c: &mut Criterion) {
    let model = CacheModel::platform_a();
    let accs: Vec<ObjAccess> = (0..24)
        .map(|i| {
            ObjAccess::new(
                ObjId(i),
                10_000_000,
                Bytes::mib(64),
                if i % 2 == 0 {
                    AccessPattern::Streaming { stride: Bytes(8) }
                } else {
                    AccessPattern::Random
                },
            )
        })
        .collect();
    c.bench_function("cache_model_phase_24_objects", |b| {
        b.iter(|| model.phase_misses(black_box(&accs)))
    });
}

fn bench_helper_thread(c: &mut Criterion) {
    c.bench_function("helper_thread_migrate_4MB", |b| {
        let hms = RealHms::new(Bytes::mib(512));
        let helper = HelperThread::spawn();
        let obj = hms.alloc("bench", Bytes::mib(4), TierKind::Nvm).unwrap();
        let mut to_dram = true;
        b.iter(|| {
            let tier = if to_dram {
                TierKind::Dram
            } else {
                TierKind::Nvm
            };
            to_dram = !to_dram;
            helper.migrate(Arc::clone(&obj), tier).wait()
        });
    });
}

fn bench_collectives(c: &mut Criterion) {
    c.bench_function("minimpi_allreduce_4ranks_x64", |b| {
        b.iter(|| {
            CommWorld::run(4, NetParams::default(), |ctx| {
                let mut acc = 0.0;
                for i in 0..64 {
                    acc += ctx.allreduce_sum_scalar(i as f64);
                }
                acc
            })
        })
    });
}

fn bench_driver(c: &mut Criterion) {
    let w = by_name("CG", Class::S).unwrap();
    let m = MachineConfig::nvm_bw_fraction(0.5).with_dram_capacity(Bytes::mib(4));
    let cache = CacheModel::new(Bytes::kib(512));
    c.bench_function("driver_cg_class_s_unimem_1rank", |b| {
        b.iter(|| run_workload(black_box(w.as_ref()), &m, &cache, 1, &Policy::unimem()))
    });
}

fn bench_kernels(c: &mut Criterion) {
    let n = 1 << 20;
    let bvec = vec![1.0f64; n];
    let cvec = vec![2.0f64; n];
    let mut a = vec![0.0f64; n];
    c.bench_function("stream_triad_8MB", |b| {
        b.iter(|| stream_triad(black_box(&mut a), &bvec, &cvec, 3.0))
    });
    let mut rng = DetRng::seed(1);
    let ring = build_chase_ring(1 << 18, &mut rng);
    c.bench_function("pointer_chase_256k_hops", |b| {
        b.iter(|| pointer_chase(black_box(&ring), 1 << 18))
    });
}

criterion_group!(
    name = micro;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_knapsack,
    bench_sampler,
    bench_cache_model,
    bench_helper_thread,
    bench_collectives,
    bench_driver,
    bench_kernels
);
criterion_main!(micro);
