//! Figure 4: impact of single-object placement on SP. For each NVM config
//! (1/2 bandwidth, 4x latency) and input class (C, D): DRAM-only,
//! DRAM+NVM with one target object pinned in DRAM, and NVM-only.
//! 4 nodes, 1 rank each.

use unimem::exec::Policy;
use unimem_bench::harness::timed;
use unimem_bench::{normalized, print_table, Cell, Row};
use unimem_hms::MachineConfig;
use unimem_sim::Bytes;
use unimem_workloads::sp::Sp;
use unimem_workloads::Class;

fn main() {
    let nranks = 4;
    // Pinning studies assume the pinned object fits; give the HMS enough
    // DRAM for the largest single object (lhs).
    let configs = [
        ("1/2 bw", MachineConfig::nvm_bw_fraction(0.5)),
        ("4x lat", MachineConfig::nvm_lat_multiple(4.0)),
    ];
    let pins: [(&str, Vec<&str>); 3] = [
        ("in+out buffer", vec!["in_buffer", "out_buffer"]),
        ("lhs", vec!["lhs"]),
        ("rhs", vec!["rhs"]),
    ];
    for class in [Class::C, Class::D] {
        let rows = timed(&format!("fig04_sp_placement/{}", class.name()), || {
            let sp = Sp::new(class);
            let mut rows = Vec::new();
            for (mlabel, m) in &configs {
                let m = m.clone().with_dram_capacity(Bytes::gib(2));
                let mut cells = vec![Cell {
                    label: "NVM-only".into(),
                    value: normalized(&sp, &m, nranks, &Policy::NvmOnly),
                }];
                for (plabel, names) in &pins {
                    let policy = Policy::Static {
                        in_dram: names.iter().map(|s| s.to_string()).collect(),
                        label: format!("pin {plabel}"),
                    };
                    cells.push(Cell {
                        label: plabel.to_string(),
                        value: normalized(&sp, &m, nranks, &policy),
                    });
                }
                rows.push(Row {
                    name: format!("SP.{} {}", class.name(), mlabel),
                    cells,
                });
            }
            rows
        });
        print_table(
            &format!(
                "Figure 4 — SP.{} single-object placement (normalized to DRAM-only; lower is better)",
                class.name()
            ),
            "paper: buffers help under 1/2 bw but not 4x lat; lhs helps under 4x lat but not 1/2 bw; rhs helps under both",
            &rows,
        );
    }
}
