//! Figure 12: CG strong scaling on the Edison-style NUMA emulation
//! (NVM = 60% DRAM bandwidth, 1.89x latency), CLASS D, DRAM 256 MB /
//! NVM 32 GB per node, 1 rank per node.

use unimem::exec::Policy;
use unimem_bench::harness::timed;
use unimem_bench::{normalized, print_table, unimem_policy, Cell, Row};
use unimem_hms::MachineConfig;
use unimem_workloads::cg::Cg;
use unimem_workloads::Class;

fn main() {
    let m = MachineConfig::edison_numa();
    let cg = Cg::new(Class::D);
    let rows = timed("fig12_scaling", || {
        let mut rows = Vec::new();
        for nranks in [4usize, 8, 16, 32, 64] {
            let nvm = normalized(&cg, &m, nranks, &Policy::NvmOnly);
            let uni = normalized(&cg, &m, nranks, &unimem_policy());
            rows.push(Row {
                name: format!("{nranks} ranks"),
                cells: vec![
                    Cell {
                        label: "NVM-only".into(),
                        value: nvm,
                    },
                    Cell {
                        label: "Unimem".into(),
                        value: uni,
                    },
                ],
            });
        }
        rows
    });
    print_table(
        "Figure 12 — CG.D strong scaling, Edison NUMA emulation (normalized to DRAM-only)",
        "paper: Unimem within 7% of DRAM-only at every scale",
        &rows,
    );
}
