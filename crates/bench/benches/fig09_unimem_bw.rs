//! Figure 9: DRAM-only vs NVM-only vs X-Mem vs Unimem with NVM at 1/2
//! DRAM bandwidth. CLASS C, 4 nodes, 1 rank/node, DRAM 256 MB, NVM 16 GB.

use unimem::exec::Policy;
use unimem_bench::harness::timed;
use unimem_bench::{basic_setup, cache, normalized, print_table, unimem_policy, Cell, Row};
use unimem_hms::MachineConfig;
use unimem_workloads::npb_and_nek;
use unimem_xmem::xmem_policy;

fn main() {
    let (class, nranks) = basic_setup();
    let m = MachineConfig::nvm_bw_fraction(0.5);
    let (rows, uni_gaps) = timed("fig09_unimem_bw", || {
        let mut rows = Vec::new();
        let mut uni_gaps = Vec::new();
        for w in npb_and_nek(class) {
            let xmem = xmem_policy(w.as_ref(), &m, &cache(), nranks);
            let nvm = normalized(w.as_ref(), &m, nranks, &Policy::NvmOnly);
            let xm = normalized(w.as_ref(), &m, nranks, &xmem);
            let uni = normalized(w.as_ref(), &m, nranks, &unimem_policy());
            uni_gaps.push(uni - 1.0);
            rows.push(Row {
                name: w.name(),
                cells: vec![
                    Cell {
                        label: "NVM-only".into(),
                        value: nvm,
                    },
                    Cell {
                        label: "X-Mem".into(),
                        value: xm,
                    },
                    Cell {
                        label: "Unimem".into(),
                        value: uni,
                    },
                ],
            });
        }
        (rows, uni_gaps)
    });
    print_table(
        "Figure 9 — placement policies, NVM = 1/2 DRAM bandwidth (normalized to DRAM-only)",
        "paper: NVM-only gap 18% avg; Unimem within 3% avg, <=10% worst; Unimem ~10% better than X-Mem on Nek5000",
        &rows,
    );
    let avg = uni_gaps.iter().sum::<f64>() / uni_gaps.len() as f64;
    let max = uni_gaps.iter().cloned().fold(f64::MIN, f64::max);
    println!(
        "\nUnimem gap to DRAM-only: avg {:.1}%, max {:.1}%",
        avg * 100.0,
        max * 100.0
    );
}
