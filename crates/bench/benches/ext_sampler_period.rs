//! Extension: sensitivity of Unimem to the sampling configuration — the
//! design choice DESIGN.md calls out ("sampling is not sparse to lose
//! modeling accuracy", paper §4). Sweeps the event-capture period and
//! reports end-to-end Unimem performance plus the profiling overhead.

use unimem::exec::{Policy, UnimemConfig};
use unimem_bench::harness::timed;
use unimem_bench::{basic_setup, print_table, report, Cell, Row};
use unimem_hms::MachineConfig;
use unimem_perf::SamplerConfig;
use unimem_workloads::by_name;

fn main() {
    let (class, nranks) = basic_setup();
    let m = MachineConfig::nvm_bw_fraction(0.5);
    let rows = timed("ext_sampler_period", || {
        let mut rows = Vec::new();
        for workload in ["CG", "LU", "SP"] {
            let w = by_name(workload, class).unwrap();
            let dram = report(w.as_ref(), &m, nranks, &Policy::DramOnly).time();
            let cells = [100u64, 1_000, 10_000, 100_000]
                .iter()
                .map(|&period| {
                    let cfg = UnimemConfig {
                        sampler: SamplerConfig {
                            event_period: period,
                            ..SamplerConfig::default()
                        },
                        ..UnimemConfig::default()
                    };
                    let rep = report(w.as_ref(), &m, nranks, &Policy::Unimem(cfg));
                    Cell {
                        label: format!("1/{period}"),
                        value: rep.time().secs() / dram.secs(),
                    }
                })
                .collect();
            rows.push(Row {
                name: w.name(),
                cells,
            });
        }
        rows
    });
    print_table(
        "Extension — Unimem vs. event-sampling period (normalized to DRAM-only)",
        "denser sampling improves model inputs but raises profiling cost; the paper's 1/1000 is the default",
        &rows,
    );
}
