//! Figure 2: NPB execution time on NVM-only main memory with various
//! bandwidth (1/2, 1/4, 1/8 of DRAM), normalized to DRAM-only.
//! Paper setup: CLASS D (FT: CLASS C), 16 ranks on 4 nodes.
//!
//! The swept fractions come from `unimem_hms::profiles::FIG2_BW_FRACTIONS`
//! — the same constants the sweep's `bw-half` profile anchors on — so
//! this bench cannot silently drift from the profiles the conformance
//! matrix runs.

use unimem::exec::Policy;
use unimem_bench::harness::timed;
use unimem_bench::{emulation_setup, normalized, print_table, Cell, Row};
use unimem_hms::profiles::FIG2_BW_FRACTIONS;
use unimem_hms::MachineConfig;
use unimem_workloads::all_npb;

fn main() {
    let (class, nranks) = emulation_setup();
    let rows = timed("fig02_bandwidth_gap", || {
        let mut rows = Vec::new();
        for w in all_npb(class) {
            let cells = FIG2_BW_FRACTIONS
                .iter()
                .map(|&f| {
                    let m = MachineConfig::nvm_bw_fraction(f);
                    Cell {
                        label: format!("{}x bw", f),
                        value: normalized(w.as_ref(), &m, nranks, &Policy::NvmOnly),
                    }
                })
                .collect();
            rows.push(Row {
                name: w.name(),
                cells,
            });
        }
        rows
    });
    print_table(
        "Figure 2 — NVM-only slowdown vs. bandwidth (normalized to DRAM-only)",
        "paper: 1.09x-8.4x across the sweep; LU 2.19x at 1/2 bw (our linear roofline caps bw-only slowdown at 2x)",
        &rows,
    );
}
