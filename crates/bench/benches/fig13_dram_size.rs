//! Figure 13: Unimem sensitivity to DRAM size (128/256/512 MB),
//! NVM = 1/2 DRAM bandwidth, CLASS C, 4 ranks.

use unimem_bench::harness::timed;
use unimem_bench::{basic_setup, normalized, print_table, unimem_policy, Cell, Row};
use unimem_hms::MachineConfig;
use unimem_sim::Bytes;
use unimem_workloads::npb_and_nek;

fn main() {
    let (class, nranks) = basic_setup();
    let sizes = [128u64, 256, 512];
    let rows = timed("fig13_dram_size", || {
        let mut rows = Vec::new();
        for w in npb_and_nek(class) {
            let cells = sizes
                .iter()
                .map(|&mb| {
                    let m = MachineConfig::nvm_bw_fraction(0.5).with_dram_capacity(Bytes::mib(mb));
                    Cell {
                        label: format!("{mb} MB"),
                        value: normalized(w.as_ref(), &m, nranks, &unimem_policy()),
                    }
                })
                .collect();
            rows.push(Row {
                name: w.name(),
                cells,
            });
        }
        rows
    });
    print_table(
        "Figure 13 — Unimem vs. DRAM size (normalized to DRAM-only; lower is better)",
        "paper: <=7% everywhere except MG at 128 MB (13%): its aliased arrays cannot be partitioned into the small DRAM",
        &rows,
    );
}
