//! Figure 11: contribution of the four techniques, applied cumulatively:
//! (1) cross-phase global search, (2) +phase-local search,
//! (3) +partitioning large objects, (4) +initial data placement.
//! NVM = 1/2 DRAM bandwidth, CLASS C, 4 ranks.

use unimem::exec::{Policy, UnimemConfig};
use unimem_bench::harness::timed;
use unimem_bench::{basic_setup, normalized, print_table, Cell, Row};
use unimem_hms::MachineConfig;
use unimem_workloads::npb_and_nek;

fn main() {
    let (class, nranks) = basic_setup();
    let m = MachineConfig::nvm_bw_fraction(0.5);
    let labels = ["global", "+local", "+partition", "+initial"];
    let rows = timed("fig11_ablation", || {
        let mut rows = Vec::new();
        for w in npb_and_nek(class) {
            let cells = (1..=4u8)
                .map(|rung| Cell {
                    label: labels[rung as usize - 1].into(),
                    value: normalized(
                        w.as_ref(),
                        &m,
                        nranks,
                        &Policy::Unimem(UnimemConfig::ablation(rung)),
                    ),
                })
                .collect();
            rows.push(Row {
                name: w.name(),
                cells,
            });
        }
        rows
    });
    print_table(
        "Figure 11 — cumulative technique ablation (normalized to DRAM-only; lower is better)",
        "paper: global search carries CG/LU; local search adds 19%/5% on BT/SP; partitioning only helps FT; initial placement helps everywhere (87% of SP's win)",
        &rows,
    );
}
