//! Table 4: data migration details for HMS with Unimem (NVM = 1/2 DRAM
//! bandwidth): times of migration, migrated data size, pure runtime cost,
//! and % of movement overlapped with computation.

use unimem_bench::harness::timed;
use unimem_bench::{basic_setup, report, unimem_policy};
use unimem_hms::MachineConfig;
use unimem_workloads::npb_and_nek;

fn main() {
    let (class, nranks) = basic_setup();
    let m = MachineConfig::nvm_bw_fraction(0.5);
    let lines = timed("tab04_migration", || {
        let mut lines = Vec::new();
        for w in npb_and_nek(class) {
            let rep = report(w.as_ref(), &m, nranks, &unimem_policy());
            // A run that never migrated has no overlap figure to report.
            let overlap = rep
                .job
                .overlap_pct()
                .map_or_else(|| "       n/a".into(), |p| format!("{p:>9.1}%"));
            lines.push(format!(
                "{:16} {:>10} {:>14.0} {:>17.2}% {overlap}",
                w.name(),
                rep.job.migration_count(),
                rep.job.migrated_bytes().as_mib(),
                rep.job.pure_runtime_cost() * 100.0,
            ));
        }
        lines
    });
    println!("\nTable 4 — migration details (NVM = 1/2 DRAM bandwidth)");
    println!(
        "{:16} {:>10} {:>14} {:>18} {:>10}",
        "workload", "migrations", "migrated (MB)", "pure runtime cost", "% overlap"
    );
    for line in lines {
        println!("{line}");
    }
    println!("\npaper: CG 3/132MB, FT 4/201MB, BT 24/720MB, LU 3/187MB, SP 9/348MB, MG 1/17MB, Nek 102/1101MB;");
    println!("pure runtime cost <3% everywhere; overlap 60-100%");
}
