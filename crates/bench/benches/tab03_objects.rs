//! Table 3: target data objects per benchmark and their modeled sizes.

use unimem_bench::harness::timed;
use unimem_workloads::{npb_and_nek, Class};

fn main() {
    let lines = timed("tab03_objects", || {
        let mut lines = Vec::new();
        for w in npb_and_nek(Class::C) {
            let objs = w.objects(0, 4);
            let total: u64 = objs.iter().map(|o| o.size.get()).sum();
            let names: Vec<String> = if objs.len() > 12 {
                let mut v: Vec<String> = objs.iter().take(10).map(|o| o.name.clone()).collect();
                v.push(format!("... ({} objects)", objs.len()));
                v
            } else {
                objs.iter().map(|o| o.name.clone()).collect()
            };
            lines.push(format!(
                "{:16} {:>10.1} MiB total  [{}]",
                w.name(),
                total as f64 / (1 << 20) as f64,
                names.join(", ")
            ));
        }
        lines
    });
    println!("\nTable 3 — target data objects (CLASS C, per rank of 4)");
    for line in lines {
        println!("{line}");
    }
}
