//! Figure 3: NPB execution time on NVM-only main memory with various
//! latency (2x, 4x, 8x DRAM), normalized to DRAM-only.

use unimem::exec::Policy;
use unimem_bench::{emulation_setup, normalized, print_table, Cell, Row};
use unimem_hms::MachineConfig;
use unimem_workloads::all_npb;

fn main() {
    let (class, nranks) = emulation_setup();
    let multiples = [2.0, 4.0, 8.0];
    let mut rows = Vec::new();
    for w in all_npb(class) {
        let cells = multiples
            .iter()
            .map(|&x| {
                let m = MachineConfig::nvm_lat_multiple(x);
                Cell {
                    label: format!("{}x lat", x),
                    value: normalized(w.as_ref(), &m, nranks, &Policy::NvmOnly),
                }
            })
            .collect();
        rows.push(Row {
            name: w.name(),
            cells,
        });
    }
    print_table(
        "Figure 3 — NVM-only slowdown vs. latency (normalized to DRAM-only)",
        "paper: LU 2.14x at 2x latency; latency-sensitive codes (CG) degrade fastest",
        &rows,
    );
}
