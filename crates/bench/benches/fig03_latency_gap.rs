//! Figure 3: NPB execution time on NVM-only main memory with various
//! latency (2x, 4x, 8x DRAM), normalized to DRAM-only.
//!
//! The swept multiples come from `unimem_hms::profiles::FIG3_LAT_MULTIPLES`
//! — the same constants the sweep's `lat-4x` profile anchors on — so this
//! bench cannot silently drift from the profiles the conformance matrix
//! runs.

use unimem::exec::Policy;
use unimem_bench::harness::timed;
use unimem_bench::{emulation_setup, normalized, print_table, Cell, Row};
use unimem_hms::profiles::FIG3_LAT_MULTIPLES;
use unimem_hms::MachineConfig;
use unimem_workloads::all_npb;

fn main() {
    let (class, nranks) = emulation_setup();
    let rows = timed("fig03_latency_gap", || {
        let mut rows = Vec::new();
        for w in all_npb(class) {
            let cells = FIG3_LAT_MULTIPLES
                .iter()
                .map(|&x| {
                    let m = MachineConfig::nvm_lat_multiple(x);
                    Cell {
                        label: format!("{}x lat", x),
                        value: normalized(w.as_ref(), &m, nranks, &Policy::NvmOnly),
                    }
                })
                .collect();
            rows.push(Row {
                name: w.name(),
                cells,
            });
        }
        rows
    });
    print_table(
        "Figure 3 — NVM-only slowdown vs. latency (normalized to DRAM-only)",
        "paper: LU 2.14x at 2x latency; latency-sensitive codes (CG) degrade fastest",
        &rows,
    );
}
