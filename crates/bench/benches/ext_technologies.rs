//! Extension: the suite on the paper's Table-1 NVM technology presets
//! (STT-RAM, PCRAM, ReRAM midpoints) instead of the parametric configs.
//! The paper motivates Unimem with these technologies but evaluates only
//! parametric sweeps; this harness closes that loop: how well does the
//! runtime bridge the gap for each concrete technology?

use unimem::exec::Policy;
use unimem_bench::harness::timed;
use unimem_bench::{basic_setup, normalized, print_table, unimem_policy, Cell, Row};
use unimem_hms::profiles::{table1_pcram, table1_reram, table1_stt_ram};
use unimem_hms::MachineConfig;
use unimem_workloads::all_npb;

fn main() {
    let (class, nranks) = basic_setup();
    let techs = [
        ("STT-RAM", table1_stt_ram()),
        ("PCRAM", table1_pcram()),
        ("ReRAM", table1_reram()),
    ];
    for (name, nvm) in techs {
        let m = MachineConfig::technology(nvm, name);
        let rows = timed(&format!("ext_technologies/{name}"), || {
            let mut rows = Vec::new();
            for w in all_npb(class) {
                let cells = vec![
                    Cell {
                        label: "NVM-only".into(),
                        value: normalized(w.as_ref(), &m, nranks, &Policy::NvmOnly),
                    },
                    Cell {
                        label: "Unimem".into(),
                        value: normalized(w.as_ref(), &m, nranks, &unimem_policy()),
                    },
                ];
                rows.push(Row {
                    name: w.name(),
                    cells,
                });
            }
            rows
        });
        print_table(
            &format!("Extension — Table-1 technology: {name} (normalized to DRAM-only)"),
            "Table 1 characteristics with the simulation DRAM baseline; write asymmetry included",
            &rows,
        );
    }
}
