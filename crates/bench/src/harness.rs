//! Wall-clock timing for the analytic bench targets.
//!
//! The fig/table benches are `harness = false` mains that *compute*
//! their figures analytically in virtual time; historically they
//! printed tables and said nothing about their own cost — so "the
//! simulator is fast" was asserted, never measured. [`timed`] routes
//! each bench's computation through the vendored criterion harness
//! (warmup, fixed iteration batches, monotonic timing, median/MAD
//! outlier-robust summary), so every bench target prints a measured
//! wall-time line next to its table, and emits the deterministic
//! criterion JSON (`unimem-criterion/v1`) when the
//! `UNIMEM_CRITERION_JSON` environment variable names an output path.

use criterion::Criterion;
use std::time::Duration;

/// Criterion configured for the analytic benches: short warmup and a
/// modest sample count — the computations are deterministic in virtual
/// time, so the harness only needs enough samples for a robust median
/// against host noise, not against workload variance.
fn analytic_criterion() -> Criterion {
    Criterion::default()
        .sample_size(10)
        .measurement_time(Duration::from_millis(200))
        .warm_up_time(Duration::from_millis(50))
}

/// Run `compute` once and return its output, then time it under the
/// shared criterion harness: prints the robust summary line (median,
/// min/max of kept samples, outliers dropped) and honors
/// `UNIMEM_CRITERION_JSON`.
pub fn timed<T>(id: &str, mut compute: impl FnMut() -> T) -> T {
    let out = compute();
    let mut c = analytic_criterion();
    c.bench_function(id, |b| b.iter(&mut compute));
    c.write_json_if_env();
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn timed_returns_the_computation_result_and_times_it() {
        let mut calls = 0u32;
        let out = timed("harness_smoke", || {
            calls += 1;
            21 * 2
        });
        assert_eq!(out, 42);
        // One result call plus at least one warmup and 10 samples.
        assert!(calls >= 12, "{calls} calls");
    }
}
