//! Shared machinery for the figure/table harnesses.
//!
//! Every harness follows the same recipe: run a set of workloads under a
//! set of (machine, policy) configurations, normalize to DRAM-only, and
//! print the series the paper plots. The run helpers live here so the
//! workspace integration tests can assert on the same numbers the benches
//! print.

use unimem::exec::{run_workload, Policy, RunReport};
use unimem::UnimemConfig;
use unimem_cache::CacheModel;
use unimem_hms::MachineConfig;
use unimem_workloads::Class;

pub mod harness;
pub mod sweep;

/// Canonical cache for all experiments (Platform A's Xeon E5-2630 LLC).
pub fn cache() -> CacheModel {
    CacheModel::platform_a()
}

/// One experiment cell: a workload's normalized time under a policy.
#[derive(Debug, Clone)]
pub struct Cell {
    pub label: String,
    pub value: f64,
}

/// One table row: a workload and its cells.
#[derive(Debug, Clone)]
pub struct Row {
    pub name: String,
    pub cells: Vec<Cell>,
}

/// Normalized execution time of `policy` vs. DRAM-only for one workload.
pub fn normalized(
    workload: &dyn unimem::Workload,
    machine: &MachineConfig,
    nranks: usize,
    policy: &Policy,
) -> f64 {
    let cache = cache();
    let dram = run_workload(workload, machine, &cache, nranks, &Policy::DramOnly);
    let run = run_workload(workload, machine, &cache, nranks, policy);
    run.time().secs() / dram.time().secs()
}

/// Full report under a policy (for Table 4 counters).
pub fn report(
    workload: &dyn unimem::Workload,
    machine: &MachineConfig,
    nranks: usize,
    policy: &Policy,
) -> RunReport {
    run_workload(workload, machine, &cache(), nranks, policy)
}

/// Default Unimem policy with a fixed seed (determinism across harnesses).
pub fn unimem_policy() -> Policy {
    Policy::Unimem(UnimemConfig::default())
}

/// Pretty-print a table: header, rows, and per-column averages.
pub fn print_table(title: &str, subtitle: &str, rows: &[Row]) {
    println!("\n{title}");
    if !subtitle.is_empty() {
        println!("{subtitle}");
    }
    if rows.is_empty() {
        return;
    }
    let name_w = rows.iter().map(|r| r.name.len()).max().unwrap_or(8).max(8);
    print!("{:name_w$}", "workload");
    for c in &rows[0].cells {
        print!("  {:>12}", c.label);
    }
    println!();
    let n_cols = rows[0].cells.len();
    let mut sums = vec![0.0; n_cols];
    for r in rows {
        print!("{:name_w$}", r.name);
        for (i, c) in r.cells.iter().enumerate() {
            print!("  {:>12.3}", c.value);
            sums[i] += c.value;
        }
        println!();
    }
    print!("{:name_w$}", "average");
    for s in &sums {
        print!("  {:>12.3}", s / rows.len() as f64);
    }
    println!();
}

/// The paper's standard basic-test setup: CLASS C, 4 nodes, 1 rank/node,
/// DRAM 256 MB, NVM 16 GB.
pub fn basic_setup() -> (Class, usize) {
    (Class::C, 4)
}

/// The emulation-study setup (Figs. 2/3): CLASS D, 16 ranks (FT uses
/// CLASS C in the paper for run-time reasons; our FT.D runs fine and is
/// reported as-is).
pub fn emulation_setup() -> (Class, usize) {
    (Class::D, 16)
}

#[cfg(test)]
mod tests {
    use super::*;
    use unimem_workloads::by_name;

    #[test]
    fn normalized_is_one_for_dram_only() {
        let w = by_name("CG", Class::S).unwrap();
        let m = MachineConfig::nvm_bw_fraction(0.5);
        let v = normalized(w.as_ref(), &m, 1, &Policy::DramOnly);
        assert!((v - 1.0).abs() < 1e-9);
    }

    #[test]
    fn table_printer_does_not_panic() {
        print_table(
            "t",
            "s",
            &[Row {
                name: "CG".into(),
                cells: vec![Cell {
                    label: "x".into(),
                    value: 1.5,
                }],
            }],
        );
        print_table("empty", "", &[]);
    }
}
