//! Paper-claim conformance: the headline results of Figs. 9/10 and
//! Table 4 as executable checks over a [`SweepReport`].
//!
//! Each check is scoped to the configurations where the paper actually
//! makes the claim — a sweep cell outside that scope (e.g. ReRAM, whose
//! 4.5 MB/s writes make any migration a loss) is reported but not judged.

use crate::sweep::matrix::{ArbiterPolicy, PolicyKind, TopologySpec};
use crate::sweep::runner::{CorunCell, SweepCell, SweepReport};
use crate::sweep::SweepConfig;
use std::fmt;

/// Tolerances for the conformance checks, each mapped to the paper claim
/// it encodes. Defaults carry headroom over the measured reproduction
/// values (see `EXPERIMENTS`/README) so legitimate refactors don't trip
/// them, while a regression of the claim itself still does.
#[derive(Debug, Clone)]
pub struct Tolerances {
    /// Figs. 9/10 / abstract: "performance comparable to the DRAM-only
    /// system" (paper: at most 16% difference) on the emulation-anchor
    /// profiles at the basic-setup scale (≥ 4 ranks). Checked as
    /// `unimem ≤ dram-only × dram_tracking`. Reproduction worst case:
    /// 1.171 (FT, bw-half, 4 ranks).
    pub dram_tracking: f64,
    /// Figs. 9/10: Unimem outperforms NVM-only everywhere. Checked as
    /// `unimem ≤ nvm-only × nvm_win` on every cell; the 2% slack absorbs
    /// cells where no placement helps and only runtime overhead remains.
    /// Reproduction worst case: 1.015 (Nek5000, ReRAM, 1 rank).
    pub nvm_win: f64,
    /// Figs. 9/10 / §5: Unimem beats the X-Mem static placement on
    /// Nek5000's drifting access pattern. Checked as
    /// `unimem ≤ xmem × xmem_drift` on drift-capable profiles at ≥ 4
    /// ranks. Reproduction worst case: 1.003 (bw-half, 8 ranks — a tie:
    /// both policies reach DRAM-only time).
    pub xmem_drift: f64,
    /// Table 4: pure runtime cost (profiling + modeling + sync, excluding
    /// data movement) stays bounded — the paper reports at most 3.1% of
    /// run time. Checked on every Unimem cell. Reproduction worst case:
    /// 0.09%.
    pub max_runtime_cost: f64,
    /// Co-run QoS (arbitration claim, RIMMS/Olson-style): under the
    /// `priority` arbitration policy, a weighted-priority tenant never
    /// degrades more than a best-effort (weight-1) tenant of the same
    /// mix. Checked per (mix, profile) priority co-run as
    /// `slowdown(priority) ≤ slowdown(best-effort) × tenant_qos`.
    /// Reproduction worst case: 1.000 (the priority tenant is strictly
    /// better or tied in every measured mix).
    pub tenant_qos: f64,
    /// Co-run sanity: a tenant's arbitrated run is never *faster* than
    /// its solo run beyond numeric slack — a slowdown well below 1.0
    /// means the solo baseline or the lease plumbing is broken. Checked
    /// as `slowdown ≥ corun_sanity` on every co-run cell.
    pub corun_sanity: f64,
    /// Placement-philosophy ordering (docs/CONFORMANCE.md): on the
    /// emulation-anchor profiles at basic-setup scale with one rank per
    /// node, phase-aware planning with overlapped migration (Unimem)
    /// beats phase-blind interval guidance (online-guidance, after
    /// Olson et al.), which in turn beats never promoting (NVM-only).
    /// Checked both ways per online-guidance cell:
    /// `unimem ≤ online-guidance × policy_ordering` and
    /// `online-guidance ≤ nvm-only × policy_ordering`. The slack absorbs
    /// near-tie cells where the working set fits the budget either way.
    /// Reproduction worst case: 1.007 (MG, lat-4x, 8 ranks — guidance
    /// ties Unimem once the hot set stabilizes).
    pub policy_ordering: f64,
    /// Migration-contention evidence floor, in seconds: when the matrix
    /// carries a multi-rank-per-node layout, at least one Unimem cell at
    /// `ranks_per_node ≥ 2` must report at least this much
    /// neighbor-caused contention time — proof that a co-located rank
    /// was measurably slowed by its neighbor's migration traffic, so the
    /// shared-bandwidth pathway cannot pass vacuously.
    pub contention_evidence_min: f64,
    /// Rank count from which the scale-scoped checks apply (the paper's
    /// basic tests use 4 nodes).
    pub min_ranks: usize,
    /// Recovery-cost bound (docs/CONFORMANCE.md `recovery-cost`): for
    /// the durable journal modes (Buffered, Strict), recovering from a
    /// crash — replaying the durable journal, then re-executing to
    /// completion — must never cost more than this multiple of simply
    /// restarting the job from scratch. Replay substitutes journaled
    /// observations for live modeling, so even a crash at t=0 recovers
    /// in about the restart time; the slack absorbs journal read/apply
    /// overhead. Reproduction worst case: 1.001.
    pub recovery_bound: f64,
    /// Non-vacuous arm of `recovery-cost`: a *late* Strict-mode crash
    /// (75% through the run) must show restart costing at least this
    /// multiple of recovery — proof the journal actually shortened the
    /// redo, not just that the bound above never fired. Reproduction
    /// worst case (minimum observed advantage): 3.2.
    pub recovery_advantage_min: f64,
    /// Seeded kill points sampled per (workload, durability mode) in the
    /// crash-injection probe, on top of the forced late crash.
    pub crash_samples: usize,
    /// Fig. 12 shape (docs/CONFORMANCE.md `weak-scaling`): Unimem's
    /// benefit must survive scale-out. The [`check_weak_scaling`] probe
    /// runs Unimem and DRAM-only at basic-setup scale in the flat world
    /// and again at [`Tolerances::weak_scaling_ranks`] ranks spread over
    /// a multi-node machine room (hierarchical collectives, contended
    /// inter-node links), and requires
    /// `normalized(scaled) ≤ normalized(base) × weak_scaling` — the
    /// Unimem-vs-DRAM gap may not blow up when collectives go
    /// hierarchical. Reproduction worst case: 1.012 (CG, bw-half,
    /// 4 ranks flat → 64 ranks on 16 nodes).
    pub weak_scaling: f64,
    /// Rank count of the scaled arm of the weak-scaling probe, spread
    /// four ranks per node (the paper's Fig. 12 reaches 64 ranks).
    pub weak_scaling_ranks: usize,
}

impl Default for Tolerances {
    fn default() -> Tolerances {
        Tolerances {
            dram_tracking: 1.25,
            nvm_win: 1.02,
            xmem_drift: 1.01,
            max_runtime_cost: 0.031,
            tenant_qos: 1.02,
            corun_sanity: 0.98,
            policy_ordering: 1.02,
            contention_evidence_min: 1e-6,
            min_ranks: 4,
            recovery_bound: 1.05,
            recovery_advantage_min: 1.2,
            crash_samples: 3,
            weak_scaling: 1.15,
            weak_scaling_ranks: 64,
        }
    }
}

/// One failed check.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Which check fired ("dram-tracking", "nvm-win", "xmem-drift",
    /// "runtime-cost", "determinism", "corun-sanity", "tenant-qos",
    /// "migration-contention", "policy-ordering", "recovery-equivalence",
    /// "recovery-cost", "recovery-advantage", "recovery-coverage").
    pub check: &'static str,
    /// Cell coordinates ("CG/bw-half/r4/unimem").
    pub cell: String,
    /// Human-readable explanation with the measured values.
    pub detail: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{}] {}: {}", self.check, self.cell, self.detail)
    }
}

fn ratio_violation(
    check: &'static str,
    cell: &SweepCell,
    baseline: &SweepCell,
    limit: f64,
) -> Option<Violation> {
    let ratio = cell.time_s() / baseline.time_s();
    (ratio > limit).then(|| Violation {
        check,
        cell: cell.coords(),
        detail: format!(
            "{:.4}s vs {} {:.4}s — ratio {ratio:.3} exceeds {limit:.3}",
            cell.time_s(),
            baseline.policy.name(),
            baseline.time_s(),
        ),
    })
}

fn missing_baseline(check: &'static str, cell: &SweepCell, baseline: PolicyKind) -> Violation {
    Violation {
        check,
        cell: cell.coords(),
        detail: format!(
            "required {} baseline cell missing from the matrix; claim not evaluated",
            baseline.name()
        ),
    }
}

/// Run every in-scope check over the sweep. An empty result means the
/// matrix conforms to the paper's claims at the given tolerances — and
/// that every in-scope claim was actually evaluated: a matrix without
/// Unimem cells, or missing a baseline an in-scope check needs, yields
/// violations rather than a vacuous pass.
pub fn check_report(report: &SweepReport, tol: &Tolerances) -> Vec<Violation> {
    let mut violations = Vec::new();
    if !report.cells.iter().any(|c| c.policy == PolicyKind::Unimem) {
        violations.push(Violation {
            check: "coverage",
            cell: "(matrix)".into(),
            detail: "matrix contains no unimem cells; no paper claim was evaluated".into(),
        });
        return violations;
    }
    for cell in &report.cells {
        if cell.policy != PolicyKind::Unimem {
            continue;
        }
        // The paper's single-node-class claims are judged in the flat
        // world; clustered cells are owned by `check_weak_scaling`.
        if cell.topology != TopologySpec::Flat {
            continue;
        }
        let at = |policy| {
            report.get(
                &cell.workload,
                policy,
                cell.profile,
                cell.nranks,
                cell.ranks_per_node,
            )
        };

        // Table-4 runtime-cost bound applies to every Unimem cell.
        let cost = cell.report.job.pure_runtime_cost();
        if cost > tol.max_runtime_cost {
            violations.push(Violation {
                check: "runtime-cost",
                cell: cell.coords(),
                detail: format!(
                    "pure runtime cost {:.4} exceeds {:.4}",
                    cost, tol.max_runtime_cost
                ),
            });
        }

        // Unimem must win (within slack) against NVM-only everywhere.
        match at(PolicyKind::NvmOnly) {
            Some(nvm) => violations.extend(ratio_violation("nvm-win", cell, nvm, tol.nvm_win)),
            None => violations.push(missing_baseline("nvm-win", cell, PolicyKind::NvmOnly)),
        }

        // The remaining claims are made at basic-setup scale AND at the
        // paper's one-rank-per-node configuration. On packed nodes the
        // claims are not achievable even in principle: shared bandwidth
        // amplifies the NVM bottleneck (Fig. 2's own premise), so even a
        // migration-free static placement lands far above the DRAM-only
        // baseline (measured: X-Mem itself at 1.35× on Nek5000/bw-half
        // at 4 ranks × 2 per node). Packed layouts are governed by
        // `nvm-win` (every cell) and `migration-contention` instead.
        if cell.nranks < tol.min_ranks || cell.ranks_per_node != 1 {
            continue;
        }
        if cell.profile.tracks_dram() {
            match at(PolicyKind::DramOnly) {
                Some(dram) => violations.extend(ratio_violation(
                    "dram-tracking",
                    cell,
                    dram,
                    tol.dram_tracking,
                )),
                None => violations.push(missing_baseline(
                    "dram-tracking",
                    cell,
                    PolicyKind::DramOnly,
                )),
            }
        }
        if cell.workload == "Nek5000" && cell.profile.supports_drift_win() {
            match at(PolicyKind::Xmem) {
                Some(xmem) => {
                    violations.extend(ratio_violation("xmem-drift", cell, xmem, tol.xmem_drift))
                }
                None => violations.push(missing_baseline("xmem-drift", cell, PolicyKind::Xmem)),
            }
        }
    }
    violations.extend(check_policy_ordering(report, tol));
    violations.extend(check_contention_cells(report, tol));
    violations.extend(check_coruns(report, tol));
    violations
}

/// The `policy-ordering` check: on the emulation-anchor profiles at
/// basic-setup scale with one rank per node, the three placement
/// philosophies order as `unimem ≤ online-guidance ≤ nvm-only`, each
/// within `policy_ordering` slack — phase-aware planning beats
/// phase-blind interval guidance beats never promoting. Scoped to
/// matrices that carry the `online-guidance` axis; an eligible matrix
/// that evaluated no comparison is a failure, not a vacuous pass.
fn check_policy_ordering(report: &SweepReport, tol: &Tolerances) -> Vec<Violation> {
    let mut violations = Vec::new();
    if !report.config.policies.contains(&PolicyKind::OnlineGuidance) {
        return violations;
    }
    let mut evaluated = 0usize;
    for cell in &report.cells {
        if cell.policy != PolicyKind::OnlineGuidance
            || !cell.profile.tracks_dram()
            || cell.ranks_per_node != 1
            || cell.nranks < tol.min_ranks
            || cell.topology != TopologySpec::Flat
        {
            continue;
        }
        let at = |policy| {
            report.get(
                &cell.workload,
                policy,
                cell.profile,
                cell.nranks,
                cell.ranks_per_node,
            )
        };
        match at(PolicyKind::Unimem) {
            Some(uni) => {
                evaluated += 1;
                violations.extend(ratio_violation(
                    "policy-ordering",
                    uni,
                    cell,
                    tol.policy_ordering,
                ));
            }
            None => violations.push(missing_baseline(
                "policy-ordering",
                cell,
                PolicyKind::Unimem,
            )),
        }
        match at(PolicyKind::NvmOnly) {
            Some(nvm) => {
                evaluated += 1;
                violations.extend(ratio_violation(
                    "policy-ordering",
                    cell,
                    nvm,
                    tol.policy_ordering,
                ));
            }
            None => violations.push(missing_baseline(
                "policy-ordering",
                cell,
                PolicyKind::NvmOnly,
            )),
        }
    }
    let scope_requested = report.config.profiles.iter().any(|p| p.tracks_dram())
        && report
            .config
            .rank_layouts()
            .iter()
            .any(|&(r, rpn)| rpn == 1 && r >= tol.min_ranks);
    if scope_requested && evaluated == 0 && violations.is_empty() {
        violations.push(Violation {
            check: "policy-ordering",
            cell: "(matrix)".into(),
            detail: "online-guidance requested with anchor profiles and a basic-setup \
                     layout in scope, but no ordering comparison was evaluated"
                .into(),
        });
    }
    violations
}

/// The report-scoped half of the `migration-contention` check (the
/// DRAM-only invariance probe is [`check_contention`]): when the matrix
/// carries a `ranks_per_node ≥ 2` layout, the contention pathway must be
/// demonstrably live — at least one Unimem cell on a packed node reports
/// neighbor-caused contention time, i.e. a co-located rank was measurably
/// slowed by its neighbor's migration traffic. A matrix whose layouts
/// never pack a node is out of scope (the claim is about shared nodes).
/// "Unimem still beats NVM-only under contention" needs no extra code:
/// the `nvm-win` check runs per cell at matching coordinates, packed
/// layouts included.
fn check_contention_cells(report: &SweepReport, tol: &Tolerances) -> Vec<Violation> {
    let packed_requested = report
        .config
        .rank_layouts()
        .iter()
        .any(|&(_, rpn)| rpn >= 2);
    if !packed_requested {
        return Vec::new();
    }
    let packed_unimem: Vec<&SweepCell> = report
        .cells
        .iter()
        .filter(|c| {
            c.policy == PolicyKind::Unimem
                && c.ranks_per_node >= 2
                && c.topology == TopologySpec::Flat
        })
        .collect();
    if packed_unimem.is_empty() {
        return vec![Violation {
            check: "migration-contention",
            cell: "(matrix)".into(),
            detail: "ranks_per_node ≥ 2 requested but no packed Unimem cell ran; \
                     the contention claim was not evaluated"
                .into(),
        }];
    }
    let best = packed_unimem
        .iter()
        .max_by(|a, b| {
            a.report
                .job
                .neighbor_contention_time
                .secs()
                .total_cmp(&b.report.job.neighbor_contention_time.secs())
        })
        .expect("non-empty");
    if best.report.job.neighbor_contention_time.secs() < tol.contention_evidence_min {
        return vec![Violation {
            check: "migration-contention",
            cell: best.coords(),
            detail: format!(
                "no packed Unimem cell shows neighbor-induced contention ≥ {:.2e}s \
                 (best: {:.3e}s) — neighbor migration traffic never slowed a \
                 co-located rank, so the shared-bandwidth pathway looks dead",
                tol.contention_evidence_min,
                best.report.job.neighbor_contention_time.secs(),
            ),
        }];
    }
    Vec::new()
}

/// The probe half of the `migration-contention` check: DRAM-only timing
/// must be **invariant to helper traffic** — the contention machinery
/// must not perturb a run that never migrates a byte. For each profile,
/// one DRAM-only cell (largest layout) runs twice, with helper
/// contention charged and suppressed, and the two `RunReport`s must be
/// byte-identical. NVM-only is covered by the same probe since it is
/// equally migration-free; DRAM-only is the normalization baseline, so
/// its invariance is what keeps every `normalized_to_dram` comparable
/// across the A/B.
pub fn check_contention(cfg: &SweepConfig) -> Vec<Violation> {
    use unimem::exec::{run_workload, Policy};
    use unimem_cache::CacheModel;
    use unimem_workloads::select;

    // The most-packed layout (axes are deduped but user-ordered, so
    // "last" could be an unpacked pair where the probe is structurally
    // inert); ties broken toward more ranks.
    let Some((nranks, rpn)) = cfg.rank_layouts().into_iter().max_by_key(|&(r, p)| (p, r)) else {
        return Vec::new();
    };
    let Some(workload) = cfg.workloads.first() else {
        return Vec::new();
    };
    let Ok(selection) = select(&[workload.as_str()], cfg.class) else {
        return Vec::new(); // unknown names are run_sweep's error to report
    };
    let (canon, w) = &selection[0];

    let cache = CacheModel::platform_a();
    let mut violations = Vec::new();
    for &profile in &cfg.profiles {
        let mut machine = profile.machine().with_ranks_per_node(rpn);
        if let Some(cap) = cfg.dram_capacity {
            machine = machine.with_dram_capacity(cap);
        }
        let run = |m: &unimem_hms::MachineConfig| {
            run_workload(w.as_ref(), m, &cache, nranks, &Policy::DramOnly)
                .to_json()
                .to_pretty()
        };
        let with = run(&machine.clone().with_helper_contention(true));
        let without = run(&machine.with_helper_contention(false));
        if with != without {
            violations.push(Violation {
                check: "migration-contention",
                cell: format!("{canon}/{}/r{nranks}x{rpn}/dram-only", profile.name()),
                detail: "DRAM-only run changed with helper contention toggled: \
                         the contention model leaks into migration-free runs"
                    .into(),
            });
        }
    }
    violations
}

/// The co-run checks: per-cell sanity (no tenant beats its solo run
/// beyond numeric slack) and the tenant-QoS claim (under `priority`
/// arbitration, every weighted tenant's slowdown stays within
/// `tenant_qos` of every best-effort tenant's in the same co-run). A
/// config that asks for mixes but produced no priority cells — or a
/// priority co-run without both tenant classes — is a coverage violation,
/// not a silent pass.
fn check_coruns(report: &SweepReport, tol: &Tolerances) -> Vec<Violation> {
    let mut violations = Vec::new();
    if report.config.coruns.is_empty() {
        return violations;
    }
    for cell in &report.corun_cells {
        if cell.slowdown < tol.corun_sanity {
            violations.push(Violation {
                check: "corun-sanity",
                cell: cell.coords(),
                detail: format!(
                    "slowdown {:.4} below {:.3}: arbitrated run beats the solo baseline",
                    cell.slowdown, tol.corun_sanity
                ),
            });
        }
    }
    let priority: Vec<&CorunCell> = report
        .corun_cells
        .iter()
        .filter(|c| c.arbiter == ArbiterPolicy::Priority)
        .collect();
    if priority.is_empty() {
        violations.push(Violation {
            check: "tenant-qos",
            cell: "(corun matrix)".into(),
            detail: "no priority-arbitration co-run cells; the QoS claim was not evaluated".into(),
        });
        return violations;
    }
    // Group by (mix, profile, nranks) — one priority co-run each.
    let mut groups: Vec<(&CorunCell, Vec<&CorunCell>)> = Vec::new();
    for c in priority {
        match groups
            .iter_mut()
            .find(|(k, _)| k.mix == c.mix && k.profile == c.profile && k.nranks == c.nranks)
        {
            Some((_, v)) => v.push(c),
            None => groups.push((c, vec![c])),
        }
    }
    for (key, cells) in groups {
        let weighted: Vec<&&CorunCell> = cells.iter().filter(|c| c.weight > 1).collect();
        let best_effort: Vec<&&CorunCell> = cells.iter().filter(|c| c.weight == 1).collect();
        if weighted.is_empty() || best_effort.is_empty() {
            violations.push(Violation {
                check: "tenant-qos",
                cell: format!("{}/{}/r{}", key.mix, key.profile.name(), key.nranks),
                detail: "priority co-run lacks a weighted or a best-effort tenant; \
                         claim not evaluated"
                    .into(),
            });
            continue;
        }
        for hi in &weighted {
            for lo in &best_effort {
                if hi.slowdown > lo.slowdown * tol.tenant_qos {
                    violations.push(Violation {
                        check: "tenant-qos",
                        cell: hi.coords(),
                        detail: format!(
                            "priority tenant slowdown {:.4} exceeds best-effort tenant {} \
                             ({:.4}) × {:.3}",
                            hi.slowdown, lo.tenant, lo.slowdown, tol.tenant_qos
                        ),
                    });
                }
            }
        }
    }
    violations
}

/// Determinism check: re-run a representative Unimem cell of each profile
/// at the matrix's largest rank count and require byte-identical
/// `RunReport` JSON. This guards the virtual-clock MPI layer against
/// host-scheduling leaks — any nondeterminism in the multi-threaded rank
/// execution shows up as differing serialized stats.
pub fn check_determinism(cfg: &SweepConfig) -> Vec<Violation> {
    use unimem::exec::{run_workload, Policy};
    use unimem_cache::CacheModel;
    use unimem_workloads::{canonical_name, select};

    let Some(&nranks) = cfg.ranks.iter().max() else {
        return Vec::new();
    };
    // Nek5000 exercises the most runtime machinery (drift → re-profiling
    // → migration); fall back to the first workload if absent. Compare
    // canonical names so aliases ("nek") still pick it.
    let workload = cfg
        .workloads
        .iter()
        .find(|w| canonical_name(w) == Some("Nek5000"))
        .or_else(|| cfg.workloads.first());
    let Some(workload) = workload else {
        return Vec::new();
    };
    let Ok(selection) = select(&[workload.as_str()], cfg.class) else {
        return Vec::new(); // unknown names are run_sweep's error to report
    };
    let (canon, w) = &selection[0];

    let cache = CacheModel::platform_a();
    let mut violations = Vec::new();
    for &profile in &cfg.profiles {
        let mut machine = profile.machine();
        if let Some(cap) = cfg.dram_capacity {
            machine = machine.with_dram_capacity(cap);
        }
        // Unimem always probes (it exercises the most machinery); the
        // new-in-v4 policies probe when the matrix carries them —
        // hw-cache's fractional hit splitting and online-guidance's
        // thinned sampling must replay byte-identically too.
        let mut probes: Vec<(&str, Policy)> = vec![("unimem", Policy::unimem())];
        if cfg.policies.contains(&PolicyKind::HwCache) {
            probes.push(("hw-cache", Policy::hw_cache()));
        }
        if cfg.policies.contains(&PolicyKind::OnlineGuidance) {
            probes.push(("online-guidance", Policy::online_guidance()));
        }
        for (name, policy) in &probes {
            let run = || {
                run_workload(w.as_ref(), &machine, &cache, nranks, policy)
                    .to_json()
                    .to_pretty()
            };
            if run() != run() {
                violations.push(Violation {
                    check: "determinism",
                    cell: format!("{canon}/{}/r{nranks}/{name}", profile.name()),
                    detail: "repeated runs produced different RunReport JSON bytes".into(),
                });
            }
        }
    }
    violations
}

/// Weak-scaling probe (the `weak-scaling` check, Fig. 12 shape): like
/// [`check_determinism`] this is a standalone probe over the sweep
/// *configuration*, running its own jobs rather than reading the report.
///
/// The matrix's first workload runs under Unimem and DRAM-only twice:
///
/// 1. **base** — `min_ranks` ranks in the classic flat world;
/// 2. **scaled** — [`Tolerances::weak_scaling_ranks`] ranks spread four
///    per node over a homogeneous machine room
///    (`unimem::exec::run_workload_clustered`): two-level collectives,
///    inter-node traffic on the contended link channels.
///
/// The claim is the Fig. 12 *shape*: Unimem's position relative to
/// DRAM-only survives scale-out, i.e.
/// `normalized(scaled) ≤ normalized(base) × weak_scaling`. Both arms
/// must be non-vacuous — positive baseline times, a genuinely
/// multi-node room — or the probe reports a coverage violation instead
/// of passing silently.
pub fn check_weak_scaling(cfg: &SweepConfig, tol: &Tolerances) -> Vec<Violation> {
    use unimem::exec::{run_workload, run_workload_clustered, Policy};
    use unimem_cache::CacheModel;
    use unimem_hms::topology::{ClusterSpec, ClusterTopology};
    use unimem_workloads::select;

    let coverage = |detail: String| {
        vec![Violation {
            check: "weak-scaling",
            cell: "(matrix)".into(),
            detail,
        }]
    };
    let Some(workload) = cfg.workloads.first() else {
        return coverage("matrix has no workloads; the scaling claim was not evaluated".into());
    };
    let Some(&profile) = cfg.profiles.first() else {
        return coverage("matrix has no NVM profiles; the scaling claim was not evaluated".into());
    };
    let Ok(selection) = select(&[workload.as_str()], cfg.class) else {
        return Vec::new(); // unknown names are run_sweep's error to report
    };
    let (canon, w) = &selection[0];

    let base_ranks = tol.min_ranks.max(1);
    let scaled_ranks = tol.weak_scaling_ranks;
    let slots = 4usize.min(scaled_ranks);
    let n_nodes = scaled_ranks.div_ceil(slots);
    if n_nodes < 2 || scaled_ranks <= base_ranks {
        return coverage(format!(
            "scaled arm ({scaled_ranks} ranks, {n_nodes} nodes) is not a genuine \
             multi-node scale-out over the {base_ranks}-rank base"
        ));
    }

    let machine = |rpn: usize| {
        let mut m = profile.machine().with_ranks_per_node(rpn);
        if let Some(cap) = cfg.dram_capacity {
            m = m.with_dram_capacity(cap);
        }
        m
    };
    let cache = CacheModel::platform_a();
    let cell = format!(
        "{canon}/{}/r{base_ranks}→r{scaled_ranks}@nodes{n_nodes}/unimem",
        profile.name()
    );

    let flat = machine(1);
    let base_dram = run_workload(w.as_ref(), &flat, &cache, base_ranks, &Policy::DramOnly);
    let base_uni = run_workload(w.as_ref(), &flat, &cache, base_ranks, &Policy::unimem());
    let room = ClusterSpec::homogeneous(machine(slots), n_nodes, slots);
    let topo = ClusterTopology::contiguous(room, scaled_ranks);
    let scaled_dram = run_workload_clustered(w.as_ref(), &topo, &cache, &Policy::DramOnly);
    let scaled_uni = run_workload_clustered(w.as_ref(), &topo, &cache, &Policy::unimem());

    let (bd, bu) = (base_dram.time().secs(), base_uni.time().secs());
    let (sd, su) = (scaled_dram.time().secs(), scaled_uni.time().secs());
    if !(bd > 0.0 && sd > 0.0) {
        return coverage(format!(
            "DRAM-only baselines must be positive (base {bd}s, scaled {sd}s)"
        ));
    }
    let (base_norm, scaled_norm) = (bu / bd, su / sd);
    if scaled_norm > base_norm * tol.weak_scaling {
        return vec![Violation {
            check: "weak-scaling",
            cell,
            detail: format!(
                "normalized-to-DRAM grew from {base_norm:.3} ({base_ranks} ranks, flat) to \
                 {scaled_norm:.3} ({scaled_ranks} ranks on {n_nodes} nodes) — \
                 exceeds ×{:.3}: Unimem's Fig. 12 shape did not survive scale-out",
                tol.weak_scaling
            ),
        }];
    }
    Vec::new()
}

/// Crash-consistency probe (the `recovery-*` checks): journal a clean
/// run under Unimem on the matrix's first profile, inject seeded crashes
/// at sampled virtual-time points in every durability mode, and require
///
/// 1. **recovery-equivalence** — the recovered run's `RunReport` JSON
///    and regenerated journals are byte-identical to the clean run's,
///    for every sampled kill point and mode;
/// 2. **recovery-cost** — for the durable modes (Buffered, Strict),
///    `recovery_time ≤ recovery_bound × restart_time`;
/// 3. **recovery-advantage** — the non-vacuous arm: a forced *late*
///    Strict crash (75% through the run) must show
///    `restart_time / recovery_time ≥ recovery_advantage_min`, proving
///    the journal genuinely shortened the redo.
///
/// Like [`check_determinism`] this is a standalone probe over the sweep
/// *configuration*, not the report: it runs its own small jobs. A
/// configuration that cannot evaluate the claim (no workloads, zero
/// `crash_samples`) yields a `recovery-coverage` violation rather than
/// passing vacuously.
pub fn check_recovery(cfg: &SweepConfig, tol: &Tolerances) -> Vec<Violation> {
    use unimem::exec::Policy;
    use unimem::recovery::RecoverySetup;
    use unimem_cache::CacheModel;
    use unimem_hms::journal::DurabilityMode;
    use unimem_sim::{sample_kill_points, CrashSpec, VDur, VTime};
    use unimem_workloads::{canonical_name, select};

    let mut violations = Vec::new();
    if tol.crash_samples == 0 {
        violations.push(Violation {
            check: "recovery-coverage",
            cell: "(matrix)".into(),
            detail: "crash_samples is 0; no kill point was injected".into(),
        });
        return violations;
    }
    let Some(&nranks) = cfg.ranks.iter().max() else {
        violations.push(Violation {
            check: "recovery-coverage",
            cell: "(matrix)".into(),
            detail: "matrix has no rank counts; no crash was injected".into(),
        });
        return violations;
    };
    // Two workloads: Nek5000 (drift → re-profiling → migration, the most
    // journal traffic) plus the first other workload in the matrix.
    let mut names: Vec<&String> = Vec::new();
    if let Some(nek) = cfg
        .workloads
        .iter()
        .find(|w| canonical_name(w) == Some("Nek5000"))
    {
        names.push(nek);
    }
    if let Some(other) = cfg.workloads.iter().find(|w| !names.contains(w)) {
        names.push(other);
    }
    if names.is_empty() {
        violations.push(Violation {
            check: "recovery-coverage",
            cell: "(matrix)".into(),
            detail: "matrix has no workloads; no crash was injected".into(),
        });
        return violations;
    }
    let Some(&profile) = cfg.profiles.first() else {
        violations.push(Violation {
            check: "recovery-coverage",
            cell: "(matrix)".into(),
            detail: "matrix has no NVM profiles; no crash was injected".into(),
        });
        return violations;
    };
    let mut machine = profile.machine();
    if let Some(cap) = cfg.dram_capacity {
        machine = machine.with_dram_capacity(cap);
    }
    let cache = CacheModel::platform_a();
    let policy = Policy::unimem();

    let mut advantage_checked = false;
    for name in names {
        let Ok(selection) = select(&[name.as_str()], cfg.class) else {
            continue; // unknown names are run_sweep's error to report
        };
        let (canon, w) = &selection[0];
        let setup = RecoverySetup {
            workload: w.as_ref(),
            machine: &machine,
            cache: &cache,
            nranks,
            policy: &policy,
        };
        for mode in DurabilityMode::ALL {
            let clean = setup.run_journaled(mode);
            let horizon = VTime::ZERO + clean.report.time();
            // Seeded kill points, plus a forced late Strict crash for
            // the advantage arm.
            let mut crashes = sample_kill_points(0xC4A5_u64, horizon, tol.crash_samples);
            if mode == DurabilityMode::Strict {
                crashes.push(CrashSpec::at(
                    VTime::ZERO + VDur(clean.report.time().secs() * 0.75),
                ));
            }
            for (i, crash) in crashes.iter().enumerate() {
                let cell = format!(
                    "{canon}/{}/r{nranks}/{}/kill{}@{:.4}s{}",
                    profile.name(),
                    mode.name(),
                    i,
                    crash.at.secs(),
                    if crash.torn { "+torn" } else { "" },
                );
                let out = setup.crash_and_recover(mode, *crash, &clean);
                if !out.equivalent() {
                    let mismatches: u64 = out.summaries.iter().map(|s| s.comm_mismatches).sum();
                    violations.push(Violation {
                        check: "recovery-equivalence",
                        cell,
                        detail: format!(
                            "recovered run differs from clean run \
                             (report_equal={}, journals_equal={}, comm_mismatches={})",
                            out.report_equal, out.journals_equal, mismatches,
                        ),
                    });
                    continue;
                }
                let ratio = out.stats.recovery_time.secs() / out.stats.restart_time.secs();
                if mode != DurabilityMode::InMemory && ratio > tol.recovery_bound {
                    violations.push(Violation {
                        check: "recovery-cost",
                        cell: cell.clone(),
                        detail: format!(
                            "recovery {:.4}s vs restart {:.4}s — ratio {ratio:.3} exceeds {:.3}",
                            out.stats.recovery_time.secs(),
                            out.stats.restart_time.secs(),
                            tol.recovery_bound,
                        ),
                    });
                }
                let late = mode == DurabilityMode::Strict && i == crashes.len() - 1;
                if late {
                    advantage_checked = true;
                    if out.stats.advantage() < tol.recovery_advantage_min {
                        violations.push(Violation {
                            check: "recovery-advantage",
                            cell,
                            detail: format!(
                                "late-crash advantage {:.3} below {:.3} — \
                                 the journal did not shorten the redo",
                                out.stats.advantage(),
                                tol.recovery_advantage_min,
                            ),
                        });
                    }
                }
            }
        }
    }
    if !advantage_checked {
        violations.push(Violation {
            check: "recovery-coverage",
            cell: "(matrix)".into(),
            detail: "the late Strict crash (non-vacuous arm) never ran".into(),
        });
    }
    violations
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::matrix::NvmProfile;
    use crate::sweep::runner::run_sweep;
    use unimem_workloads::Class;

    fn small_matrix() -> SweepConfig {
        SweepConfig {
            class: Class::C,
            workloads: vec!["CG".into(), "Nek5000".into()],
            policies: PolicyKind::ALL.to_vec(),
            profiles: vec![NvmProfile::BwHalf],
            ranks: vec![4],
            ranks_per_node: vec![1, 2],
            topologies: vec![TopologySpec::Flat],
            dram_capacity: None,
            coruns: vec![],
            arbiters: vec![],
        }
    }

    #[test]
    fn small_matrix_conforms() {
        let rep = run_sweep(&small_matrix()).unwrap();
        let violations = check_report(&rep, &Tolerances::default());
        assert!(
            violations.is_empty(),
            "unexpected violations: {violations:?}"
        );
    }

    #[test]
    fn impossible_tolerances_fire_with_cell_coordinates() {
        let rep = run_sweep(&small_matrix()).unwrap();
        let strict = Tolerances {
            dram_tracking: 0.5, // unimem can never halve DRAM-only time
            max_runtime_cost: 0.0,
            ..Tolerances::default()
        };
        let violations = check_report(&rep, &strict);
        assert!(violations.iter().any(|v| v.check == "dram-tracking"));
        assert!(violations.iter().any(|v| v.check == "runtime-cost"));
        let msg = violations[0].to_string();
        assert!(msg.contains("/r4/unimem"), "coords in message: {msg}");
    }

    #[test]
    fn scale_scoped_checks_skip_single_rank_cells() {
        let mut cfg = small_matrix();
        cfg.ranks = vec![1];
        let rep = run_sweep(&cfg).unwrap();
        // 1-rank cells are out of scope for tracking/drift even with
        // impossible tolerances; only the global checks may fire.
        let strict = Tolerances {
            dram_tracking: 0.0,
            xmem_drift: 0.0,
            ..Tolerances::default()
        };
        let violations = check_report(&rep, &strict);
        assert!(violations
            .iter()
            .all(|v| v.check != "dram-tracking" && v.check != "xmem-drift"));
    }

    #[test]
    fn matrix_without_unimem_is_a_coverage_violation() {
        let mut cfg = small_matrix();
        cfg.policies = vec![PolicyKind::DramOnly, PolicyKind::NvmOnly];
        let rep = run_sweep(&cfg).unwrap();
        let violations = check_report(&rep, &Tolerances::default());
        assert_eq!(violations.len(), 1);
        assert_eq!(violations[0].check, "coverage");
    }

    #[test]
    fn missing_baselines_are_violations_not_silent_skips() {
        let mut cfg = small_matrix();
        cfg.policies = vec![PolicyKind::Unimem];
        let rep = run_sweep(&cfg).unwrap();
        let violations = check_report(&rep, &Tolerances::default());
        for check in ["nvm-win", "dram-tracking", "xmem-drift"] {
            assert!(
                violations
                    .iter()
                    .any(|v| v.check == check && v.detail.contains("missing from the matrix")),
                "{check} skipped silently: {violations:?}"
            );
        }
    }

    #[test]
    fn nek_alias_still_gets_the_drift_check() {
        // User spells it "nek"; canonicalization must keep the Nek5000
        // drift claim in scope.
        let mut cfg = small_matrix();
        cfg.workloads = vec!["nek".into()];
        let rep = run_sweep(&cfg).unwrap();
        assert_eq!(rep.config.workloads, ["Nek5000"]);
        let strict = Tolerances {
            xmem_drift: 0.0,
            ..Tolerances::default()
        };
        let violations = check_report(&rep, &strict);
        assert!(
            violations.iter().any(|v| v.check == "xmem-drift"),
            "drift check not evaluated for alias: {violations:?}"
        );
    }

    #[test]
    fn impossible_ordering_tolerance_fires_both_directions() {
        let rep = run_sweep(&small_matrix()).unwrap();
        let strict = Tolerances {
            policy_ordering: 0.0, // no finite ratio can pass
            ..Tolerances::default()
        };
        let violations = check_report(&rep, &strict);
        let ordering: Vec<&Violation> = violations
            .iter()
            .filter(|v| v.check == "policy-ordering")
            .collect();
        // Both inequalities fire per in-scope cell: the unimem-side cell
        // names unimem coordinates, the nvm-side cell names
        // online-guidance coordinates.
        assert!(
            ordering.iter().any(|v| v.cell.ends_with("/unimem")),
            "unimem ≤ online side did not fire: {ordering:?}"
        );
        assert!(
            ordering
                .iter()
                .any(|v| v.cell.ends_with("/online-guidance")),
            "online ≤ nvm side did not fire: {ordering:?}"
        );
        // Out-of-scope packed cells are not judged.
        assert!(ordering.iter().all(|v| !v.cell.contains("x2")));
    }

    #[test]
    fn matrix_without_online_guidance_skips_the_ordering_check() {
        let mut cfg = small_matrix();
        cfg.policies = vec![
            PolicyKind::Unimem,
            PolicyKind::Xmem,
            PolicyKind::DramOnly,
            PolicyKind::NvmOnly,
        ];
        let rep = run_sweep(&cfg).unwrap();
        let strict = Tolerances {
            policy_ordering: 0.0,
            ..Tolerances::default()
        };
        let violations = check_report(&rep, &strict);
        assert!(
            violations.iter().all(|v| v.check != "policy-ordering"),
            "ordering judged a matrix without the online-guidance axis: {violations:?}"
        );
    }

    #[test]
    fn ordering_without_evaluated_cells_is_not_a_vacuous_pass() {
        // A report whose config promises the axis but whose cells lost
        // the online-guidance rows (e.g. a mis-filtered rerun) must fail
        // coverage, not pass silently.
        let rep = run_sweep(&small_matrix()).unwrap();
        let kept: Vec<_> = rep
            .cells
            .iter()
            .filter(|c| c.policy != PolicyKind::OnlineGuidance)
            .cloned()
            .collect();
        let rep = SweepReport::new(rep.config.clone(), kept, rep.corun_cells.clone());
        let violations = check_report(&rep, &Tolerances::default());
        assert!(
            violations
                .iter()
                .any(|v| v.check == "policy-ordering" && v.detail.contains("evaluated")),
            "missing online-guidance cells passed silently: {violations:?}"
        );
    }

    #[test]
    fn determinism_probe_passes() {
        let violations = check_determinism(&small_matrix());
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn clustered_cells_are_not_judged_by_flat_claims() {
        // A matrix carrying a clustered room must not trip the
        // flat-world checks into "missing baseline" noise: the room's
        // cells are out of their scope by construction.
        let mut cfg = small_matrix();
        cfg.topologies.push(TopologySpec::Nodes { count: 4 });
        let rep = run_sweep(&cfg).unwrap();
        let violations = check_report(&rep, &Tolerances::default());
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn weak_scaling_probe_refuses_vacuous_configurations() {
        let mut empty = small_matrix();
        empty.workloads.clear();
        let violations = check_weak_scaling(&empty, &Tolerances::default());
        assert!(violations.iter().any(|v| v.check == "weak-scaling"));
        // A "scaled" arm no bigger than the base is not a scale-out.
        let single_node = Tolerances {
            weak_scaling_ranks: 4,
            ..Tolerances::default()
        };
        let violations = check_weak_scaling(&small_matrix(), &single_node);
        assert!(
            violations
                .iter()
                .any(|v| v.detail.contains("genuine multi-node")),
            "{violations:?}"
        );
    }

    #[test]
    fn impossible_weak_scaling_tolerance_fires() {
        // A 16-rank scaled arm keeps this test cheap while still
        // crossing nodes; the full 64-rank arm runs in
        // tests/golden_topology.rs and the sweep CLI's --check.
        let tol = Tolerances {
            weak_scaling: 0.0, // no finite ratio can pass
            weak_scaling_ranks: 16,
            ..Tolerances::default()
        };
        let violations = check_weak_scaling(&small_matrix(), &tol);
        assert!(
            violations
                .iter()
                .any(|v| v.check == "weak-scaling" && v.cell.contains("@nodes4")),
            "{violations:?}"
        );
    }

    #[test]
    fn contention_probe_passes_dram_only_invariance() {
        let violations = check_contention(&small_matrix());
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn recovery_probe_passes() {
        // One sample per mode keeps the probe cheap; the forced late
        // Strict crash (the non-vacuous arm) is always added on top.
        let tol = Tolerances {
            crash_samples: 1,
            ..Tolerances::default()
        };
        let violations = check_recovery(&small_matrix(), &tol);
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn recovery_probe_refuses_vacuous_configurations() {
        let no_samples = Tolerances {
            crash_samples: 0,
            ..Tolerances::default()
        };
        let violations = check_recovery(&small_matrix(), &no_samples);
        assert!(violations.iter().any(|v| v.check == "recovery-coverage"));

        let mut empty = small_matrix();
        empty.workloads.clear();
        let violations = check_recovery(&empty, &Tolerances::default());
        assert!(violations.iter().any(|v| v.check == "recovery-coverage"));
    }

    #[test]
    fn impossible_recovery_advantage_fires() {
        // No recovery can beat restart by 1000×: the advantage arm must
        // fire, proving it really measures something.
        let tol = Tolerances {
            crash_samples: 1,
            recovery_advantage_min: 1000.0,
            ..Tolerances::default()
        };
        let violations = check_recovery(&small_matrix(), &tol);
        assert!(
            violations.iter().any(|v| v.check == "recovery-advantage"),
            "{violations:?}"
        );
    }

    #[test]
    fn packed_matrix_without_neighbor_contention_evidence_fires() {
        let rep = run_sweep(&small_matrix()).unwrap();
        // An impossible evidence floor: nothing can reach it, so the
        // no-vacuous-pass arm must fire with the best cell's coordinates.
        let strict = Tolerances {
            contention_evidence_min: f64::INFINITY,
            ..Tolerances::default()
        };
        let violations = check_report(&rep, &strict);
        assert!(
            violations
                .iter()
                .any(|v| v.check == "migration-contention" && v.cell.contains("x2")),
            "evidence requirement did not fire: {violations:?}"
        );
    }

    #[test]
    fn unpacked_matrix_is_out_of_contention_scope() {
        let mut cfg = small_matrix();
        cfg.ranks_per_node = vec![1];
        let rep = run_sweep(&cfg).unwrap();
        let strict = Tolerances {
            contention_evidence_min: f64::INFINITY,
            ..Tolerances::default()
        };
        let violations = check_report(&rep, &strict);
        assert!(
            violations.iter().all(|v| v.check != "migration-contention"),
            "contention check judged a matrix with no packed layout: {violations:?}"
        );
    }

    fn corun_matrix() -> SweepConfig {
        let mut cfg = small_matrix();
        cfg.coruns = unimem_workloads::parse_mixes(&["LU+MG"]).unwrap();
        cfg.arbiters = ArbiterPolicy::ALL.to_vec();
        cfg
    }

    #[test]
    fn corun_checks_pass_on_a_contended_mix() {
        let rep = run_sweep(&corun_matrix()).unwrap();
        assert_eq!(rep.corun_cells.len(), 2 * 3);
        let violations = check_report(&rep, &Tolerances::default());
        assert!(violations.is_empty(), "{violations:?}");
    }

    #[test]
    fn impossible_corun_tolerances_fire_with_coordinates() {
        let rep = run_sweep(&corun_matrix()).unwrap();
        let strict = Tolerances {
            corun_sanity: 2.0, // no tenant doubles its solo time here
            tenant_qos: 0.0,   // no slowdown can be ≤ 0
            ..Tolerances::default()
        };
        let violations = check_report(&rep, &strict);
        for check in ["corun-sanity", "tenant-qos"] {
            assert!(
                violations
                    .iter()
                    .any(|v| v.check == check && v.cell.contains("LU+MG")),
                "{check} did not fire: {violations:?}"
            );
        }
    }

    #[test]
    fn corun_matrix_without_priority_cells_is_a_coverage_violation() {
        let mut cfg = corun_matrix();
        cfg.arbiters = vec![ArbiterPolicy::FairShare];
        let rep = run_sweep(&cfg).unwrap();
        let violations = check_report(&rep, &Tolerances::default());
        assert!(
            violations
                .iter()
                .any(|v| v.check == "tenant-qos" && v.detail.contains("not evaluated")),
            "missing priority cells passed silently: {violations:?}"
        );
    }
}
