//! Flat job enumeration and the deterministic worker pool behind
//! [`crate::sweep::runner::run_sweep`].
//!
//! The serial runner walked the matrix in nested loops, leaving all but
//! one core idle. This module splits that walk into two data-parallel
//! stages over an explicit job vector:
//!
//! 1. **rows** — one DRAM-only baseline per (profile, ranks, workload)
//!    row, since every policy cell of a row normalizes against it;
//! 2. **cells** — every remaining matrix cell, each referencing its
//!    row's finished baseline.
//!
//! Jobs carry their index in the canonical (profile, ranks, workload,
//! policy) order, and [`run_pool`] reassembles results by that index, so
//! the output is a pure function of the input — byte-identical to the
//! serial walk regardless of worker count or scheduling. Workers run on
//! [`std::thread::scope`] and pull jobs from the vendored
//! `crossbeam::channel` MPMC queue; a job that returns `Err` or panics
//! surfaces as the pool's `Err` (first failing job index wins,
//! deterministically) instead of deadlocking the caller.
//!
//! The pool itself now lives in [`unimem_sim::pool`] so the execution
//! driver can schedule ranks on it too; the historical re-exports below
//! keep this module the bench-facing entry point.

use crate::sweep::matrix::{NvmProfile, PolicyKind, SweepConfig};

pub use unimem_sim::pool::{default_workers, run_pool, with_label};

/// One (profile, topology, ranks, ranks-per-node, workload) row of the
/// matrix: the unit that shares a DRAM-only baseline. Fields index into
/// the canonicalized config axes and the runner's workload selection.
/// The baseline is topology-specific — a cell in a 16-node room
/// normalizes against DRAM-only *in that room*, so link costs cancel
/// out of `normalized_to_dram` and the ratio stays a placement signal.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RowJob {
    /// NVM profile (machine) of the row.
    pub profile: NvmProfile,
    /// Rank count of the row.
    pub nranks: usize,
    /// Ranks packed per node (the contention axis).
    pub ranks_per_node: usize,
    /// Index into the config's `topologies` axis.
    pub topology: usize,
    /// Index into the runner's `select()`-resolved workload list.
    pub workload: usize,
}

/// One matrix cell: a row plus the policy to run, and the index of its
/// row's baseline in the stage-1 result vector.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CellJob {
    /// The (profile, ranks, workload) row this cell belongs to.
    pub row: RowJob,
    /// Index of this cell's row in [`enumerate_rows`]'s output.
    pub baseline: usize,
    /// The placement policy to run.
    pub policy: PolicyKind,
}

/// Stage-1 job vector: rows in canonical (profile, topology, ranks,
/// ranks-per-node, workload) order. Layouts whose `ranks_per_node`
/// exceeds the rank count are skipped (see
/// [`SweepConfig::rank_layouts`]), and clustered topologies contribute
/// rows only where they apply (see
/// [`crate::sweep::matrix::TopologySpec::applies_to`]). With the default
/// `[TopologySpec::Flat]` axis this is exactly the historical
/// enumeration.
pub fn enumerate_rows(cfg: &SweepConfig, n_workloads: usize) -> Vec<RowJob> {
    let mut rows = Vec::new();
    for &profile in &cfg.profiles {
        for (topology, t) in cfg.topologies.iter().enumerate() {
            for (nranks, ranks_per_node) in cfg.layouts_for(profile, t) {
                for workload in 0..n_workloads {
                    rows.push(RowJob {
                        profile,
                        nranks,
                        ranks_per_node,
                        topology,
                        workload,
                    });
                }
            }
        }
    }
    rows
}

/// Stage-2 job vector: every cell in canonical (profile, ranks, workload,
/// policy) order — the exact order the serial runner produced and the
/// report serializes in.
pub fn enumerate_cells(cfg: &SweepConfig, rows: &[RowJob]) -> Vec<CellJob> {
    let mut cells = Vec::with_capacity(rows.len() * cfg.policies.len());
    for (baseline, &row) in rows.iter().enumerate() {
        for &policy in &cfg.policies {
            cells.push(CellJob {
                row,
                baseline,
                policy,
            });
        }
    }
    cells
}

/// One co-run job: a mix on a profile, executed under *every* configured
/// arbitration policy (stage 3; independent of the single-tenant
/// stages). The arbitration policies share a job because each tenant's
/// solo baseline is policy-independent: one job computes the solos once
/// and reuses them across policies. Expands into one report cell per
/// (arbiter, tenant).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorunJob {
    /// The NVM profile (machine) the co-run executes on.
    pub profile: NvmProfile,
    /// Rank count ([`SweepConfig::corun_ranks`]).
    pub nranks: usize,
    /// Index into the config's `coruns` axis.
    pub mix: usize,
}

/// Stage-3 job vector: co-runs in canonical (profile, mix) order.
pub fn enumerate_coruns(cfg: &SweepConfig) -> Vec<CorunJob> {
    let Some(nranks) = cfg.corun_ranks() else {
        return Vec::new();
    };
    if cfg.arbiters.is_empty() {
        return Vec::new();
    }
    let mut jobs = Vec::with_capacity(cfg.profiles.len() * cfg.coruns.len());
    for &profile in &cfg.profiles {
        for mix in 0..cfg.coruns.len() {
            jobs.push(CorunJob {
                profile,
                nranks,
                mix,
            });
        }
    }
    jobs
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::matrix::TopologySpec;
    use unimem_workloads::Class;

    fn cfg() -> SweepConfig {
        SweepConfig {
            class: Class::C,
            workloads: vec!["CG".into(), "LU".into()],
            policies: vec![PolicyKind::DramOnly, PolicyKind::Unimem],
            profiles: vec![NvmProfile::BwHalf, NvmProfile::Lat4x],
            ranks: vec![1, 4],
            ranks_per_node: vec![1, 2],
            topologies: vec![TopologySpec::Flat],
            dram_capacity: None,
            coruns: vec![],
            arbiters: vec![],
        }
    }

    #[test]
    fn rows_and_cells_enumerate_in_canonical_order() {
        let c = cfg();
        let rows = enumerate_rows(&c, 2);
        // Layouts: (1,1), (4,1), (4,2) — rpn=2 is skipped at 1 rank.
        assert_eq!(rows.len(), 2 * 3 * 2);
        // Profile is the outermost axis, workload the innermost.
        assert_eq!(rows[0].profile, NvmProfile::BwHalf);
        assert_eq!(
            (rows[0].nranks, rows[0].ranks_per_node, rows[0].workload),
            (1, 1, 0)
        );
        assert_eq!((rows[1].nranks, rows[1].workload), (1, 1));
        assert_eq!((rows[2].nranks, rows[2].ranks_per_node), (4, 1));
        assert_eq!((rows[4].nranks, rows[4].ranks_per_node), (4, 2));
        assert_eq!(rows[6].profile, NvmProfile::Lat4x);

        let cells = enumerate_cells(&c, &rows);
        assert_eq!(cells.len(), rows.len() * 2);
        // Policy is the innermost axis; baseline indices follow rows.
        assert_eq!(cells[0].policy, PolicyKind::DramOnly);
        assert_eq!(cells[1].policy, PolicyKind::Unimem);
        assert_eq!(cells[0].baseline, 0);
        assert_eq!(cells[2].baseline, 1);
        assert_eq!(cells[1].row, rows[0]);
    }

    #[test]
    fn clustered_rows_append_after_flat_and_share_the_rank_layouts() {
        let mut c = cfg();
        c.topologies.push(TopologySpec::Nodes { count: 4 });
        let rows = enumerate_rows(&c, 2);
        // Per profile: 3 flat layouts + one clustered (4, 1) row, × 2
        // workloads each.
        assert_eq!(rows.len(), 2 * (3 + 1) * 2);
        // Flat rows of a profile come first (topology is inside profile,
        // outside layout), so the historical prefix is preserved per
        // profile block.
        assert_eq!(rows[0].topology, 0);
        let clustered: Vec<&RowJob> = rows.iter().filter(|r| r.topology == 1).collect();
        assert_eq!(clustered.len(), 4);
        for r in &clustered {
            assert_eq!((r.nranks, r.ranks_per_node), (4, 1));
        }
        // Baseline indices in cells still follow row order.
        let cells = enumerate_cells(&c, &rows);
        assert_eq!(cells.len(), rows.len() * 2);
        assert_eq!(cells.last().unwrap().baseline, rows.len() - 1);
    }

    #[test]
    fn pool_reexport_stays_wired() {
        // The pool proper is tested in `unimem_sim::pool`; this pins the
        // re-export so downstream `jobs::run_pool` callers keep working.
        let got = run_pool((0..4u64).collect(), 2, |&j| Ok(j + 1)).unwrap();
        assert_eq!(got, vec![1, 2, 3, 4]);
    }
}
