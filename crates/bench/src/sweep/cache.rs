//! Content-addressed on-disk cell cache: the cross-run half of the
//! sweep's incremental-reuse layer (ROADMAP item 4).
//!
//! Growing the matrix re-runs every cell from scratch even when only one
//! axis value was added. This module makes sweep results **reusable
//! across runs**: every `(workload, policy, profile, ranks, layout,
//! topology)` cell — and every `(profile, mix)` co-run group — is keyed
//! by a digest of its *canonical configuration document*, and finished
//! results are persisted under that digest. A later sweep that contains
//! the same cell loads the result instead of recomputing it, so adding
//! `nodes256` to yesterday's matrix costs only the new cells.
//!
//! Three design rules keep the cache invisible in the output:
//!
//! * **Byte-identity.** A warm sweep must serialize byte-identically to a
//!   cold one. Cached payloads therefore carry the cell's *raw* state
//!   (including the non-serialized `overlapped`/`exposed` migration
//!   durations that `RunStats::to_json` only exposes as a derived
//!   percentage) so reconstruction is exact, not approximate. The
//!   integration property tests assert `cold == warm` on the serialized
//!   report text.
//! * **Conservative keys.** The key document includes the cache schema
//!   ([`SCHEMA`]), the sweep report schema ([`crate::sweep::report::SCHEMA`]),
//!   an engine fingerprint ([`ENGINE_FINGERPRINT`]) bumped on any
//!   behavior-affecting engine change, and a caller salt — any of them
//!   changing strands old entries harmlessly (content-addressing means
//!   they are simply never looked up again). FNV-1a is not
//!   cryptographic, so the full canonical key text is stored inside the
//!   entry and compared on load; a digest collision degrades to a miss,
//!   never to wrong data.
//! * **Corruption is a miss.** Entries are framed with the redo
//!   journal's discipline — magic, length, FNV-1a-64 checksum — and any
//!   verification failure (truncation, bit flip, bad magic, unparsable
//!   payload, key mismatch) logs a warning and falls back to
//!   recomputation. A corrupt cache can cost time, never correctness.
//!
//! Entries are written atomically (temp file + rename) so a crashed
//! sweep leaves either a complete entry or none.

use crate::sweep::matrix::{NvmProfile, PolicyKind, SweepConfig, TopologySpec};
use crate::sweep::report::SCHEMA as SWEEP_SCHEMA;
use crate::sweep::runner::{CorunCell, SweepCell};
use std::io;
use std::path::{Path, PathBuf};
use unimem::exec::RunReport;
use unimem::search::SearchKind;
use unimem::stats::RunStats;
use unimem_hms::arbiter::ArbiterPolicy;
use unimem_hms::migration::MigrationStats;
use unimem_sim::{json_digest_hex, Bytes, Fnv64, Json, VDur};
use unimem_workloads::corun::CorunMix;

/// Cache entry schema tag; part of every key document. Bump when the
/// entry payload layout changes.
pub const SCHEMA: &str = "unimem-sweep-cache/v1";

/// Engine fingerprint; part of every key document. Bump whenever a
/// change anywhere in the execution engine (simulator, runtime model,
/// policies, workload models, machine profiles) can alter any cell's
/// numbers — stale entries then become unreachable instead of wrong.
pub const ENGINE_FINGERPRINT: &str = "unimem-engine/pr10";

/// On-disk entry magic ("UNIMEMSC" — UNIMEM Sweep Cache).
const MAGIC: &[u8; 8] = b"UNIMEMSC";

/// Framed header size: magic (8) + payload length (4) + FNV-1a-64 (8).
const HEADER_LEN: usize = 20;

/// A content-addressed store of finished sweep cells under one
/// directory. Cheap to construct; all state is on disk.
#[derive(Debug, Clone)]
pub struct SweepCache {
    dir: PathBuf,
    salt: String,
}

impl SweepCache {
    /// Open (creating if needed) a cache rooted at `dir`.
    pub fn open(dir: impl Into<PathBuf>) -> io::Result<SweepCache> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(SweepCache {
            dir,
            salt: String::new(),
        })
    }

    /// Replace the key salt (default empty). Every distinct salt is a
    /// disjoint key space inside the same directory — the property tests
    /// use this to prove a salt change forces a 0% hit rate.
    pub fn with_salt(mut self, salt: impl Into<String>) -> SweepCache {
        self.salt = salt.into();
        self
    }

    /// The cache directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// The active key salt.
    pub fn salt(&self) -> &str {
        &self.salt
    }

    /// Key for one single-tenant cell. `ranks_per_node` is the *row*
    /// layout (clustered rooms derive their real packing from the
    /// topology, so the row value identifies the configuration).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn cell_key(
        &self,
        cfg: &SweepConfig,
        workload: &str,
        policy: PolicyKind,
        profile: NvmProfile,
        nranks: usize,
        ranks_per_node: usize,
        topology: &TopologySpec,
    ) -> CacheKey {
        let mut doc = key_preamble("cell", &self.salt, cfg);
        doc.push("workload", workload)
            .push("policy", policy.name())
            .push("profile", profile.name())
            .push("nranks", nranks)
            .push("ranks_per_node", ranks_per_node)
            .push("topology", topology.name());
        CacheKey::of(doc, "cell")
    }

    /// Key for one co-run group: a `(profile, mix)` pair covering every
    /// arbiter in `cfg.arbiters` (the group is the unit of execution, so
    /// it is also the unit of caching). The member slots and the arbiter
    /// list are spelled out because both shape the results.
    pub(crate) fn corun_key(
        &self,
        cfg: &SweepConfig,
        mix: &CorunMix,
        profile: NvmProfile,
        nranks: usize,
    ) -> CacheKey {
        let mut doc = key_preamble("corun", &self.salt, cfg);
        let members: Vec<Json> = mix
            .members
            .iter()
            .map(|m| {
                let mut o = Json::obj();
                o.push("workload", m.workload.as_str())
                    .push("tenant", m.tenant.as_str())
                    .push("weight", u64::from(m.weight))
                    .push("start_epoch", m.start_epoch);
                o
            })
            .collect();
        let arbiters: Vec<Json> = cfg.arbiters.iter().map(|a| Json::from(a.name())).collect();
        doc.push("mix", mix.label())
            .push("members", members)
            .push("arbiters", arbiters)
            .push("profile", profile.name())
            .push("nranks", nranks);
        CacheKey::of(doc, "corun")
    }

    /// Look a cell up. `None` on miss — silently when the entry does not
    /// exist, with a stderr warning when it exists but fails
    /// verification (the caller recomputes either way).
    pub(crate) fn load_cell(&self, key: &CacheKey) -> Option<SweepCell> {
        self.load(key, "cell", cell_from_json)
    }

    /// Persist a finished cell under its key. Write failures warn and
    /// drop the entry: a read-only or full cache directory degrades the
    /// cache to a no-op, it does not fail the sweep.
    pub(crate) fn store_cell(&self, key: &CacheKey, cell: &SweepCell) {
        self.store(key, "cell", cell_to_json(cell));
    }

    /// Look a co-run group up (all arbiters × tenants of one
    /// `(profile, mix)` pair, in canonical order).
    pub(crate) fn load_corun(&self, key: &CacheKey) -> Option<Vec<CorunCell>> {
        self.load(key, "cells", |v| {
            let items = v.as_arr().ok_or("\"cells\" is not an array")?;
            items.iter().map(corun_cell_from_json).collect()
        })
    }

    /// Persist a finished co-run group under its key.
    pub(crate) fn store_corun(&self, key: &CacheKey, cells: &[CorunCell]) {
        let items: Vec<Json> = cells.iter().map(corun_cell_to_json).collect();
        self.store(key, "cells", Json::from(items));
    }

    fn load<T>(
        &self,
        key: &CacheKey,
        member: &str,
        decode: impl FnOnce(&Json) -> Result<T, String>,
    ) -> Option<T> {
        let path = key.path_in(&self.dir);
        let doc = match read_entry(&path, &key.canon) {
            Ok(doc) => doc,
            Err(ReadError::Missing) => return None,
            Err(ReadError::Corrupt(why)) => {
                eprintln!(
                    "sweep cache: discarding corrupt entry {}: {why}",
                    path.display()
                );
                return None;
            }
        };
        match doc
            .get(member)
            .ok_or_else(|| format!("entry has no {member:?} member"))
            .and_then(decode)
        {
            Ok(value) => Some(value),
            Err(why) => {
                eprintln!(
                    "sweep cache: discarding corrupt entry {}: {why}",
                    path.display()
                );
                None
            }
        }
    }

    fn store(&self, key: &CacheKey, member: &str, value: Json) {
        let mut doc = Json::obj();
        doc.push("key", key.doc.clone()).push(member, value);
        let path = key.path_in(&self.dir);
        if let Err(e) = write_entry(&path, &doc) {
            eprintln!("sweep cache: failed to write {}: {e}", path.display());
        }
    }
}

/// The shared head of every key document: schemas, fingerprint, salt,
/// and the config axes that apply to every cell kind (workload class and
/// the DRAM-capacity override reshape every machine).
fn key_preamble(entry: &str, salt: &str, cfg: &SweepConfig) -> Json {
    let mut doc = Json::obj();
    doc.push("entry", entry)
        .push("cache", SCHEMA)
        .push("sweep", SWEEP_SCHEMA)
        .push("engine", ENGINE_FINGERPRINT)
        .push("salt", salt)
        .push("class", cfg.class.name())
        .push(
            "dram_capacity",
            match cfg.dram_capacity {
                Some(b) => Json::UInt(b.0),
                None => Json::Null,
            },
        );
    doc
}

/// A derived cache key: the canonical key document, its compact text
/// (stored in the entry and compared on load — the collision guard), and
/// the digest that names the entry file.
#[derive(Debug, Clone)]
pub(crate) struct CacheKey {
    doc: Json,
    canon: String,
    hex: String,
    kind: &'static str,
}

impl CacheKey {
    fn of(doc: Json, kind: &'static str) -> CacheKey {
        let canon = doc.to_compact();
        let hex = json_digest_hex(&doc);
        CacheKey {
            doc,
            canon,
            hex,
            kind,
        }
    }

    fn path_in(&self, dir: &Path) -> PathBuf {
        dir.join(format!("{}.{}", self.hex, self.kind))
    }
}

/// FNV-1a-64 over the payload bytes — the journal's checksum, reused as
/// the entry framing checksum.
fn crc64(payload: &[u8]) -> u64 {
    Fnv64::new().update(payload).finish()
}

/// Write one framed entry atomically: temp file in the same directory,
/// then rename over the final name.
fn write_entry(path: &Path, doc: &Json) -> io::Result<()> {
    let payload = doc.to_compact().into_bytes();
    let mut buf = Vec::with_capacity(HEADER_LEN + payload.len());
    buf.extend_from_slice(MAGIC);
    buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
    buf.extend_from_slice(&crc64(&payload).to_le_bytes());
    buf.extend_from_slice(&payload);
    let tmp = path.with_extension("tmp");
    std::fs::write(&tmp, &buf)?;
    std::fs::rename(&tmp, path)
}

enum ReadError {
    /// No entry on disk — the silent miss.
    Missing,
    /// An entry exists but failed verification — warn, then miss.
    Corrupt(String),
}

/// Read and verify one framed entry: magic, exact length, checksum,
/// UTF-8, JSON, and key equality against `expected_canon`.
fn read_entry(path: &Path, expected_canon: &str) -> Result<Json, ReadError> {
    use ReadError::Corrupt;
    let buf = match std::fs::read(path) {
        Ok(buf) => buf,
        Err(e) if e.kind() == io::ErrorKind::NotFound => return Err(ReadError::Missing),
        Err(e) => return Err(Corrupt(format!("read failed: {e}"))),
    };
    if buf.len() < HEADER_LEN {
        return Err(Corrupt(format!("truncated header ({} bytes)", buf.len())));
    }
    if &buf[..8] != MAGIC {
        return Err(Corrupt("bad magic".into()));
    }
    let len = u32::from_le_bytes(buf[8..12].try_into().expect("4 bytes")) as usize;
    let crc = u64::from_le_bytes(buf[12..20].try_into().expect("8 bytes"));
    let payload = &buf[HEADER_LEN..];
    if payload.len() != len {
        return Err(Corrupt(format!(
            "length mismatch (header says {len}, file holds {})",
            payload.len()
        )));
    }
    if crc64(payload) != crc {
        return Err(Corrupt("checksum mismatch".into()));
    }
    let text = std::str::from_utf8(payload).map_err(|e| Corrupt(format!("not UTF-8: {e}")))?;
    let doc = Json::parse(text).map_err(|e| Corrupt(format!("unparsable payload: {e}")))?;
    let key = doc
        .get("key")
        .ok_or_else(|| Corrupt("entry has no \"key\" member".into()))?;
    if key.to_compact() != expected_canon {
        return Err(Corrupt(
            "key mismatch (digest collision or misnamed file)".into(),
        ));
    }
    Ok(doc)
}

// ---------------------------------------------------------------------
// Full-fidelity (de)serialization.
//
// `RunStats::to_json` (the report path) derives `overlap_pct` and drops
// the raw overlapped/exposed durations; reconstruction from the report
// form would not be exact. The cache therefore carries every raw field
// and nothing derived — decode(encode(x)) rebuilds `x` so the warm
// report serializes byte-identically to the cold one.
// ---------------------------------------------------------------------

fn stats_to_json(s: &RunStats) -> Json {
    let mut o = Json::obj();
    o.push("total_time_s", s.total_time)
        .push("app_time_s", s.app_time)
        .push("profiling_overhead_s", s.profiling_overhead)
        .push("modeling_overhead_s", s.modeling_overhead)
        .push("sync_overhead_s", s.sync_overhead)
        .push("migration_stall_s", s.migration_stall)
        .push("contention_time_s", s.contention_time)
        .push("neighbor_contention_time_s", s.neighbor_contention_time)
        .push("mig_count", s.migrations.count)
        .push("mig_bytes", s.migrations.bytes)
        .push("mig_to_dram", s.migrations.to_dram_count)
        .push("mig_to_nvm", s.migrations.to_nvm_count)
        .push("mig_overlapped_s", s.migrations.overlapped)
        .push("mig_exposed_s", s.migrations.exposed)
        .push("reprofiles", s.reprofiles)
        .push("lease_replans", s.lease_replans)
        .push("iterations", s.iterations);
    o
}

fn stats_from_json(v: &Json) -> Result<RunStats, String> {
    Ok(RunStats {
        total_time: vdur(v, "total_time_s")?,
        app_time: vdur(v, "app_time_s")?,
        profiling_overhead: vdur(v, "profiling_overhead_s")?,
        modeling_overhead: vdur(v, "modeling_overhead_s")?,
        sync_overhead: vdur(v, "sync_overhead_s")?,
        migration_stall: vdur(v, "migration_stall_s")?,
        contention_time: vdur(v, "contention_time_s")?,
        neighbor_contention_time: vdur(v, "neighbor_contention_time_s")?,
        migrations: MigrationStats {
            count: uint(v, "mig_count")?,
            bytes: Bytes(uint(v, "mig_bytes")?),
            to_dram_count: uint(v, "mig_to_dram")?,
            to_nvm_count: uint(v, "mig_to_nvm")?,
            overlapped: vdur(v, "mig_overlapped_s")?,
            exposed: vdur(v, "mig_exposed_s")?,
        },
        reprofiles: uint(v, "reprofiles")?,
        lease_replans: uint(v, "lease_replans")?,
        iterations: uint(v, "iterations")?,
    })
}

fn report_to_json(r: &RunReport) -> Json {
    let per_rank: Vec<Json> = r.per_rank.iter().map(stats_to_json).collect();
    let mut o = Json::obj();
    o.push("workload", r.workload.as_str())
        .push("policy", r.policy.as_str())
        .push(
            "plan_kind",
            match r.plan_kind {
                Some(k) => Json::from(k.name()),
                None => Json::Null,
            },
        )
        .push("job", stats_to_json(&r.job))
        .push("per_rank", per_rank);
    o
}

fn report_from_json(v: &Json) -> Result<RunReport, String> {
    let plan_kind = match field(v, "plan_kind")? {
        Json::Null => None,
        Json::Str(s) => {
            Some(SearchKind::from_name(s).ok_or_else(|| format!("unknown plan kind {s:?}"))?)
        }
        other => return Err(format!("plan_kind is neither null nor a string: {other:?}")),
    };
    let per_rank = field(v, "per_rank")?
        .as_arr()
        .ok_or("per_rank is not an array")?
        .iter()
        .map(stats_from_json)
        .collect::<Result<Vec<_>, _>>()?;
    Ok(RunReport {
        workload: string(v, "workload")?,
        policy: string(v, "policy")?,
        per_rank,
        job: stats_from_json(field(v, "job")?)?,
        plan_kind,
    })
}

fn cell_to_json(c: &SweepCell) -> Json {
    let mut o = Json::obj();
    o.push("workload", c.workload.as_str())
        .push("full_name", c.full_name.as_str())
        .push("policy", c.policy.name())
        .push("profile", c.profile.name())
        .push("nranks", c.nranks)
        .push("ranks_per_node", c.ranks_per_node)
        .push("topology", c.topology.name())
        .push("normalized_to_dram", c.normalized_to_dram)
        .push("report", report_to_json(&c.report));
    o
}

fn cell_from_json(v: &Json) -> Result<SweepCell, String> {
    let policy = string(v, "policy")?;
    let profile = string(v, "profile")?;
    let topology = string(v, "topology")?;
    Ok(SweepCell {
        workload: string(v, "workload")?,
        full_name: string(v, "full_name")?,
        policy: PolicyKind::from_name(&policy)
            .ok_or_else(|| format!("unknown policy {policy:?}"))?,
        profile: NvmProfile::parse(&profile)
            .ok_or_else(|| format!("unknown profile {profile:?}"))?,
        nranks: uint(v, "nranks")? as usize,
        ranks_per_node: uint(v, "ranks_per_node")? as usize,
        topology: TopologySpec::parse(&topology)
            .ok_or_else(|| format!("unknown topology {topology:?}"))?,
        normalized_to_dram: float(v, "normalized_to_dram")?,
        report: report_from_json(field(v, "report")?)?,
    })
}

fn corun_cell_to_json(c: &CorunCell) -> Json {
    let mut o = Json::obj();
    o.push("mix", c.mix.as_str())
        .push("workload", c.workload.as_str())
        .push("tenant", c.tenant.as_str())
        .push("weight", u64::from(c.weight))
        .push("start_epoch", c.start_epoch)
        .push("arbiter", c.arbiter.name())
        .push("profile", c.profile.name())
        .push("nranks", c.nranks)
        .push("solo_time_s", c.solo_time_s)
        .push("slowdown", c.slowdown)
        .push("lease_min", c.lease_min)
        .push("lease_max", c.lease_max)
        .push("report", report_to_json(&c.report));
    o
}

fn corun_cell_from_json(v: &Json) -> Result<CorunCell, String> {
    let arbiter = string(v, "arbiter")?;
    let profile = string(v, "profile")?;
    Ok(CorunCell {
        mix: string(v, "mix")?,
        workload: string(v, "workload")?,
        tenant: string(v, "tenant")?,
        weight: u32::try_from(uint(v, "weight")?).map_err(|_| "weight exceeds u32")?,
        start_epoch: uint(v, "start_epoch")? as usize,
        arbiter: ArbiterPolicy::parse(&arbiter)
            .ok_or_else(|| format!("unknown arbiter {arbiter:?}"))?,
        profile: NvmProfile::parse(&profile)
            .ok_or_else(|| format!("unknown profile {profile:?}"))?,
        nranks: uint(v, "nranks")? as usize,
        solo_time_s: float(v, "solo_time_s")?,
        slowdown: float(v, "slowdown")?,
        lease_min: Bytes(uint(v, "lease_min")?),
        lease_max: Bytes(uint(v, "lease_max")?),
        report: report_from_json(field(v, "report")?)?,
    })
}

// Field accessors that name the missing/mistyped member in the error —
// every decode error surfaces verbatim in the corrupt-entry warning.

fn field<'a>(v: &'a Json, k: &str) -> Result<&'a Json, String> {
    v.get(k).ok_or_else(|| format!("missing member {k:?}"))
}

fn string(v: &Json, k: &str) -> Result<String, String> {
    field(v, k)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| format!("member {k:?} is not a string"))
}

fn uint(v: &Json, k: &str) -> Result<u64, String> {
    field(v, k)?
        .as_u64()
        .ok_or_else(|| format!("member {k:?} is not an unsigned integer"))
}

fn float(v: &Json, k: &str) -> Result<f64, String> {
    field(v, k)?
        .as_f64()
        .ok_or_else(|| format!("member {k:?} is not a number"))
}

fn vdur(v: &Json, k: &str) -> Result<VDur, String> {
    Ok(VDur(float(v, k)?))
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use unimem_workloads::Class;

    fn tmp_dir() -> PathBuf {
        static NEXT: AtomicUsize = AtomicUsize::new(0);
        std::env::temp_dir().join(format!(
            "unimem-sweep-cache-test-{}-{}",
            std::process::id(),
            NEXT.fetch_add(1, Ordering::Relaxed)
        ))
    }

    fn sample_stats(seed: u64) -> RunStats {
        let f = seed as f64;
        RunStats {
            total_time: VDur(10.125 + f),
            app_time: VDur(8.0625 + f),
            profiling_overhead: VDur(0.031 + f / 7.0),
            modeling_overhead: VDur(0.011),
            sync_overhead: VDur(0.007),
            migration_stall: VDur(0.503),
            contention_time: VDur(0.101),
            neighbor_contention_time: VDur(0.041),
            migrations: MigrationStats {
                count: 12 + seed,
                bytes: Bytes(u64::MAX - 3 - seed), // above 2^53: must not round through f64
                to_dram_count: 7,
                to_nvm_count: 5 + seed,
                overlapped: VDur(0.375),
                exposed: VDur(0.128 + f / 3.0),
            },
            reprofiles: 2,
            lease_replans: seed,
            iterations: 50,
        }
    }

    fn sample_cell() -> SweepCell {
        SweepCell {
            workload: "CG".into(),
            full_name: "CG.C".into(),
            policy: PolicyKind::Unimem,
            profile: NvmProfile::BwHalf,
            nranks: 4,
            ranks_per_node: 1,
            topology: TopologySpec::Nodes { count: 4 },
            normalized_to_dram: 1.3706293706293706,
            report: RunReport {
                workload: "CG.C".into(),
                policy: "Unimem".into(),
                per_rank: vec![sample_stats(0), sample_stats(1)],
                job: sample_stats(2),
                plan_kind: Some(SearchKind::Global),
            },
        }
    }

    fn sample_config() -> SweepConfig {
        SweepConfig {
            class: Class::S,
            workloads: vec!["CG".into()],
            policies: vec![PolicyKind::DramOnly, PolicyKind::Unimem],
            profiles: vec![NvmProfile::BwHalf],
            ranks: vec![4],
            ranks_per_node: vec![1],
            topologies: vec![TopologySpec::Flat],
            dram_capacity: None,
            coruns: vec![],
            arbiters: vec![],
        }
    }

    fn key_for(cache: &SweepCache) -> CacheKey {
        cache.cell_key(
            &sample_config(),
            "CG",
            PolicyKind::Unimem,
            NvmProfile::BwHalf,
            4,
            1,
            &TopologySpec::Nodes { count: 4 },
        )
    }

    #[test]
    fn cell_roundtrip_is_exact() {
        let dir = tmp_dir();
        let cache = SweepCache::open(&dir).expect("open");
        let key = key_for(&cache);
        let cell = sample_cell();
        assert!(cache.load_cell(&key).is_none(), "empty cache misses");
        cache.store_cell(&key, &cell);
        let loaded = cache.load_cell(&key).expect("hit after store");
        // Exactness proxy: the full-fidelity serialization of original
        // and reconstruction must match byte for byte (covers every
        // field, including the u64 > 2^53 byte counter and plan_kind).
        assert_eq!(
            cell_to_json(&loaded).to_compact(),
            cell_to_json(&cell).to_compact()
        );
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corun_group_roundtrip_is_exact() {
        let dir = tmp_dir();
        let cache = SweepCache::open(&dir).expect("open");
        let mut cfg = sample_config();
        cfg.arbiters = vec![ArbiterPolicy::FairShare, ArbiterPolicy::Priority];
        let mix = CorunMix::parse("CG+FT").expect("mix parses");
        let key = cache.corun_key(&cfg, &mix, NvmProfile::Pcram, 8);
        let group = vec![
            CorunCell {
                mix: "CG+FT".into(),
                workload: "CG".into(),
                tenant: "CG".into(),
                weight: 4,
                start_epoch: 0,
                arbiter: ArbiterPolicy::FairShare,
                profile: NvmProfile::Pcram,
                nranks: 8,
                solo_time_s: 4.203125,
                slowdown: 1.2109375,
                lease_min: Bytes(1 << 27),
                lease_max: Bytes(1 << 28),
                report: sample_cell().report,
            },
            CorunCell {
                mix: "CG+FT".into(),
                workload: "FT".into(),
                tenant: "FT".into(),
                weight: 1,
                start_epoch: 2,
                arbiter: ArbiterPolicy::Priority,
                profile: NvmProfile::Pcram,
                nranks: 8,
                solo_time_s: 7.75,
                slowdown: 1.046875,
                lease_min: Bytes(0),
                lease_max: Bytes(1 << 26),
                report: sample_cell().report,
            },
        ];
        assert!(cache.load_corun(&key).is_none());
        cache.store_corun(&key, &group);
        let loaded = cache.load_corun(&key).expect("hit after store");
        assert_eq!(loaded.len(), 2);
        for (a, b) in group.iter().zip(&loaded) {
            assert_eq!(
                corun_cell_to_json(a).to_compact(),
                corun_cell_to_json(b).to_compact()
            );
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn salt_and_axes_change_the_digest() {
        let dir = tmp_dir();
        let cache = SweepCache::open(&dir).expect("open");
        let base = key_for(&cache);
        let salted = key_for(&cache.clone().with_salt("x"));
        assert_ne!(base.hex, salted.hex, "salt must reshape every key");
        let other_rank = cache.cell_key(
            &sample_config(),
            "CG",
            PolicyKind::Unimem,
            NvmProfile::BwHalf,
            8,
            1,
            &TopologySpec::Nodes { count: 4 },
        );
        assert_ne!(base.hex, other_rank.hex);
        let mut capped = sample_config();
        capped.dram_capacity = Some(Bytes(1 << 30));
        let with_cap = cache.cell_key(
            &capped,
            "CG",
            PolicyKind::Unimem,
            NvmProfile::BwHalf,
            4,
            1,
            &TopologySpec::Nodes { count: 4 },
        );
        assert_ne!(base.hex, with_cap.hex, "dram capacity is part of the key");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// Every corruption mode must degrade to a miss (`None`), never a
    /// panic or a wrong cell — the robustness satellite's core claim.
    #[test]
    fn corrupt_entries_fall_back_to_miss() {
        let dir = tmp_dir();
        let cache = SweepCache::open(&dir).expect("open");
        let key = key_for(&cache);
        let cell = sample_cell();
        let path = key.path_in(cache.dir());

        // Truncated mid-payload.
        cache.store_cell(&key, &cell);
        let whole = std::fs::read(&path).expect("entry exists");
        std::fs::write(&path, &whole[..whole.len() / 2]).expect("truncate");
        assert!(cache.load_cell(&key).is_none(), "truncated entry misses");

        // Truncated inside the header.
        std::fs::write(&path, &whole[..HEADER_LEN - 5]).expect("truncate header");
        assert!(cache.load_cell(&key).is_none(), "headerless entry misses");

        // A flipped bit in the payload breaks the checksum.
        let mut flipped = whole.clone();
        let at = HEADER_LEN + 10;
        flipped[at] ^= 0x01;
        std::fs::write(&path, &flipped).expect("bit flip");
        assert!(cache.load_cell(&key).is_none(), "bit-flipped entry misses");

        // Wrong magic.
        let mut bad_magic = whole.clone();
        bad_magic[0] = b'X';
        std::fs::write(&path, &bad_magic).expect("bad magic");
        assert!(cache.load_cell(&key).is_none(), "bad-magic entry misses");

        // A well-formed entry filed under the wrong name (what a digest
        // collision would look like): the stored canonical key disagrees.
        let other = cache.cell_key(
            &sample_config(),
            "CG",
            PolicyKind::Unimem,
            NvmProfile::BwHalf,
            8,
            1,
            &TopologySpec::Flat,
        );
        std::fs::write(&path, &whole).expect("restore");
        std::fs::rename(&path, other.path_in(cache.dir())).expect("misfile");
        assert!(cache.load_cell(&other).is_none(), "key mismatch misses");

        // And after all that abuse, a fresh store still works.
        cache.store_cell(&key, &cell);
        assert!(cache.load_cell(&key).is_some());
        std::fs::remove_dir_all(&dir).ok();
    }

    /// A payload that frames and checksums correctly but decodes to the
    /// wrong shape is still a miss (exercises the decode error path).
    #[test]
    fn wrong_shape_payload_is_a_miss() {
        let dir = tmp_dir();
        let cache = SweepCache::open(&dir).expect("open");
        let key = key_for(&cache);
        let mut doc = Json::obj();
        doc.push("key", key.doc.clone())
            .push("cell", "not an object");
        write_entry(&key.path_in(cache.dir()), &doc).expect("write");
        assert!(cache.load_cell(&key).is_none());
        std::fs::remove_dir_all(&dir).ok();
    }
}
