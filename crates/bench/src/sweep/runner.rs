//! Executes a [`SweepConfig`]: one `run_workload` per matrix cell, with
//! the DRAM-only baseline shared per (workload, profile, rank count) so
//! normalization never re-runs it.

use crate::sweep::matrix::{NvmProfile, PolicyKind, SweepConfig};
use unimem::exec::{run_workload, Policy, RunReport};
use unimem_cache::CacheModel;
use unimem_workloads::select;
use unimem_xmem::xmem_policy;

/// One cell of the matrix: a (workload, policy, profile, ranks) run.
#[derive(Debug, Clone)]
pub struct SweepCell {
    /// Suite short name ("CG", …, "Nek5000").
    pub workload: String,
    /// Full workload name including the class ("CG.C").
    pub full_name: String,
    pub policy: PolicyKind,
    pub profile: NvmProfile,
    pub nranks: usize,
    /// Run time normalized to the DRAM-only baseline of the same
    /// (workload, profile, ranks) — the paper's y-axis.
    pub normalized_to_dram: f64,
    pub report: RunReport,
}

impl SweepCell {
    /// Job completion time in virtual seconds.
    pub fn time_s(&self) -> f64 {
        self.report.time().secs()
    }

    /// Human-readable cell coordinates for messages.
    pub fn coords(&self) -> String {
        format!(
            "{}/{}/r{}/{}",
            self.workload,
            self.profile.name(),
            self.nranks,
            self.policy.name()
        )
    }
}

/// The result of a sweep: the configuration it ran and every cell, in
/// deterministic (profile, ranks, workload, policy) order.
#[derive(Debug, Clone)]
pub struct SweepReport {
    pub config: SweepConfig,
    pub cells: Vec<SweepCell>,
}

impl SweepReport {
    /// Cell lookup by coordinates.
    pub fn get(
        &self,
        workload: &str,
        policy: PolicyKind,
        profile: NvmProfile,
        nranks: usize,
    ) -> Option<&SweepCell> {
        self.cells.iter().find(|c| {
            c.workload == workload
                && c.policy == policy
                && c.profile == profile
                && c.nranks == nranks
        })
    }
}

/// Run the whole matrix. Fails (rather than silently skipping) when the
/// config names an unknown workload. Axes are canonicalized and
/// deduplicated; the returned report's `config` reflects what actually
/// ran.
pub fn run_sweep(cfg: &SweepConfig) -> Result<SweepReport, String> {
    if cfg.ranks.contains(&0) {
        return Err("rank counts must be positive".into());
    }
    let cache = CacheModel::platform_a();
    let names: Vec<&str> = cfg.workloads.iter().map(String::as_str).collect();
    // Resolve up front: an unknown name errors even when another axis is
    // empty, and the workload models build once, not once per machine.
    let selection = select(&names, cfg.class)?;
    // The report carries canonical, duplicate-free axes throughout:
    // consumers (the Nek5000-scoped conformance checks in particular)
    // never see aliases, and a duplicated axis value cannot double-count
    // cells in averages or n_cells.
    let mut cfg = cfg.clone();
    cfg.workloads = selection.iter().map(|(n, _)| n.clone()).collect();
    cfg.normalize_axes();
    let mut cells = Vec::with_capacity(cfg.n_cells());

    for &profile in &cfg.profiles {
        let mut machine = profile.machine();
        if let Some(cap) = cfg.dram_capacity {
            machine = machine.with_dram_capacity(cap);
        }
        for &nranks in &cfg.ranks {
            for (short, workload) in &selection {
                let w = workload.as_ref();
                // Baseline shared by every policy cell of this row.
                let dram = run_workload(w, &machine, &cache, nranks, &Policy::DramOnly);
                let dram_secs = dram.time().secs();
                for &policy in &cfg.policies {
                    let report = match policy {
                        PolicyKind::DramOnly => dram.clone(),
                        PolicyKind::NvmOnly => {
                            run_workload(w, &machine, &cache, nranks, &Policy::NvmOnly)
                        }
                        PolicyKind::Xmem => {
                            let p = xmem_policy(w, &machine, &cache, nranks);
                            run_workload(w, &machine, &cache, nranks, &p)
                        }
                        PolicyKind::Unimem => {
                            run_workload(w, &machine, &cache, nranks, &Policy::unimem())
                        }
                    };
                    cells.push(SweepCell {
                        workload: short.clone(),
                        full_name: w.name(),
                        policy,
                        profile,
                        nranks,
                        normalized_to_dram: report.time().secs() / dram_secs,
                        report,
                    });
                }
            }
        }
    }
    Ok(SweepReport { config: cfg, cells })
}

#[cfg(test)]
mod tests {
    use super::*;
    use unimem_workloads::Class;

    /// A two-cell micro matrix exercises the runner end to end without
    /// the cost of the reduced matrix (which tests/conformance.rs runs).
    fn micro() -> SweepConfig {
        SweepConfig {
            class: Class::C,
            workloads: vec!["CG".into()],
            policies: vec![PolicyKind::DramOnly, PolicyKind::Unimem],
            profiles: vec![NvmProfile::BwHalf],
            ranks: vec![2],
            dram_capacity: None,
        }
    }

    #[test]
    fn runner_fills_every_cell_in_order() {
        let rep = run_sweep(&micro()).expect("micro matrix runs");
        assert_eq!(rep.cells.len(), 2);
        assert_eq!(rep.cells[0].policy, PolicyKind::DramOnly);
        assert_eq!(rep.cells[1].policy, PolicyKind::Unimem);
        assert_eq!(rep.cells[0].full_name, "CG.C");
        assert!((rep.cells[0].normalized_to_dram - 1.0).abs() < 1e-12);
        assert!(rep.cells[1].time_s() > 0.0);
    }

    #[test]
    fn lookup_by_coordinates() {
        let rep = run_sweep(&micro()).unwrap();
        assert!(rep
            .get("CG", PolicyKind::Unimem, NvmProfile::BwHalf, 2)
            .is_some());
        assert!(rep
            .get("CG", PolicyKind::Unimem, NvmProfile::Lat4x, 2)
            .is_none());
    }

    #[test]
    fn unknown_workload_is_an_error() {
        let mut cfg = micro();
        cfg.workloads.push("EP".into());
        assert!(run_sweep(&cfg).is_err());
        // Even when another axis is empty and no cell would ever run.
        cfg.profiles.clear();
        assert!(run_sweep(&cfg).is_err());
    }

    #[test]
    fn zero_ranks_is_an_error() {
        let mut cfg = micro();
        cfg.ranks = vec![0];
        assert!(run_sweep(&cfg).is_err());
    }

    #[test]
    fn duplicate_axis_values_collapse() {
        let mut cfg = micro();
        cfg.ranks = vec![2, 2];
        cfg.profiles = vec![NvmProfile::BwHalf, NvmProfile::BwHalf];
        let rep = run_sweep(&cfg).unwrap();
        assert_eq!(rep.cells.len(), 2, "duplicates must not double-count cells");
        assert_eq!(rep.config.ranks, [2]);
        assert_eq!(rep.config.profiles, [NvmProfile::BwHalf]);
    }
}
