//! Executes a [`SweepConfig`]: one `run_workload` per matrix cell, with
//! the DRAM-only baseline shared per (workload, profile, rank count) so
//! normalization never re-runs it.
//!
//! Execution is parallel (see [`crate::sweep::jobs`]): stage 1 runs every
//! row's DRAM-only baseline across a worker pool, stage 2 fans out the
//! remaining policy cells. Cells are reassembled in canonical (profile,
//! ranks, workload, policy) order by job index, so the report — and its
//! serialized JSON — is byte-identical for any worker count, including
//! the serial `n_workers = 1` path.

use crate::sweep::cache::SweepCache;
use crate::sweep::jobs::{
    default_workers, enumerate_cells, enumerate_coruns, enumerate_rows, run_pool, with_label,
    CellJob, CorunJob,
};
use crate::sweep::matrix::{NvmProfile, PolicyKind, SweepConfig, TopologySpec};
use std::collections::HashMap;
use unimem::exec::{run_workload, run_workload_clustered, Policy, RunReport};
use unimem::tenancy::{run_corun_with_solos, CorunTenant};
use unimem_cache::CacheModel;
use unimem_hms::arbiter::ArbiterPolicy;
use unimem_hms::topology::{ClusterSpec, ClusterTopology};
use unimem_sim::Bytes;
use unimem_workloads::select;
use unimem_xmem::xmem_policy;

/// One cell of the matrix: a (workload, policy, profile, ranks,
/// ranks-per-node) run.
#[derive(Debug, Clone)]
pub struct SweepCell {
    /// Suite short name ("CG", …, "Nek5000").
    pub workload: String,
    /// Full workload name including the class ("CG.C").
    pub full_name: String,
    /// Placement policy of the run.
    pub policy: PolicyKind,
    /// NVM profile (machine) of the run.
    pub profile: NvmProfile,
    /// Rank count of the run.
    pub nranks: usize,
    /// Ranks packed per node: ≥ 2 means co-located ranks share the
    /// node's bandwidth and DRAM (the contention axis). For clustered
    /// topologies this reports the room's actual packing,
    /// `⌈nranks / nodes⌉`.
    pub ranks_per_node: usize,
    /// The machine room the cell ran in ([`TopologySpec::Flat`] is the
    /// classic single-level world).
    pub topology: TopologySpec,
    /// Run time normalized to the DRAM-only baseline of the same
    /// (workload, profile, ranks, ranks_per_node, topology) — the
    /// paper's y-axis. Clustered cells normalize against DRAM-only *in
    /// the same room*, so link costs cancel and the ratio stays a
    /// placement signal.
    pub normalized_to_dram: f64,
    /// The run's full report.
    pub report: RunReport,
}

impl SweepCell {
    /// Job completion time in virtual seconds.
    pub fn time_s(&self) -> f64 {
        self.report.time().secs()
    }

    /// Human-readable cell coordinates for messages. The node layout is
    /// spelled out only off the classic one-rank-per-node default, and
    /// the machine room only off the classic flat world.
    pub fn coords(&self) -> String {
        let layout = if self.ranks_per_node == 1 {
            format!("r{}", self.nranks)
        } else {
            format!("r{}x{}", self.nranks, self.ranks_per_node)
        };
        format!(
            "{}/{}/{layout}{}/{}",
            self.workload,
            self.profile.name(),
            topo_suffix(&self.topology),
            self.policy.name()
        )
    }
}

/// One per-tenant cell of a co-run execution: how much a tenant slowed
/// down relative to its solo run (full node DRAM) under a mix and an
/// arbitration policy.
#[derive(Debug, Clone)]
pub struct CorunCell {
    /// Mix label ("CG+FT").
    pub mix: String,
    /// Canonical suite name of this tenant's workload ("CG").
    pub workload: String,
    /// Unique tenant name within the mix ("CG", "CG#2").
    pub tenant: String,
    /// The tenant's arbitration priority weight.
    pub weight: u32,
    /// The tenant's phase-clock offset (epochs).
    pub start_epoch: usize,
    /// Arbitration policy the co-run executed under.
    pub arbiter: ArbiterPolicy,
    /// NVM profile (machine) of the run.
    pub profile: NvmProfile,
    /// Rank count of the run.
    pub nranks: usize,
    /// Solo (whole-node-DRAM) job completion time, virtual seconds.
    pub solo_time_s: f64,
    /// Per-tenant slowdown: co-run time / solo time — the co-run sweep's
    /// y-axis.
    pub slowdown: f64,
    /// Smallest per-epoch DRAM lease the tenant held.
    pub lease_min: Bytes,
    /// Largest per-epoch DRAM lease the tenant held.
    pub lease_max: Bytes,
    /// The co-run execution's full report.
    pub report: RunReport,
}

impl CorunCell {
    /// Co-run job completion time in virtual seconds.
    pub fn time_s(&self) -> f64 {
        self.report.time().secs()
    }

    /// Human-readable cell coordinates for messages.
    pub fn coords(&self) -> String {
        format!(
            "{}[{}]/{}/r{}/{}",
            self.mix,
            self.tenant,
            self.profile.name(),
            self.nranks,
            self.arbiter.name()
        )
    }
}

/// The result of a sweep: the configuration it ran and every cell, in
/// deterministic (profile, ranks, workload, policy) order, plus the
/// per-tenant co-run cells in (profile, mix, arbiter, tenant) order.
#[derive(Debug, Clone)]
pub struct SweepReport {
    /// The canonicalized configuration that actually ran.
    pub config: SweepConfig,
    /// Every single-tenant cell, in canonical order.
    pub cells: Vec<SweepCell>,
    /// Per-tenant co-run cells (empty when the config has no mixes).
    pub corun_cells: Vec<CorunCell>,
    /// The worker-pool width the sweep actually executed on. Run-time
    /// metadata only: it is **never serialized** (the report bytes are a
    /// pure function of the matrix, byte-identical for every worker
    /// count), but callers can surface it — [`run_sweep`] defaults to
    /// the host's available parallelism, which on a 1-CPU host silently
    /// serializes the whole matrix, and before this field nothing
    /// recorded that it had happened.
    pub effective_workers: usize,
    /// How many cache lookups hit ([`run_sweep_cached`] with a cache; 0
    /// otherwise). Run-time metadata only, never serialized — the cache
    /// is invisible in the report bytes by contract.
    pub cache_hits: usize,
    /// How many cells were looked up in the cache (cell jobs plus co-run
    /// groups; 0 when no cache was passed). Run-time metadata only.
    pub cache_lookups: usize,
    /// Coordinate index over `cells`, built once at construction.
    /// Workload names map to a dense id first so lookups allocate nothing.
    index: CellIndex,
}

#[derive(Debug, Clone, Default)]
struct CellIndex {
    workloads: HashMap<String, u32>,
    cells: HashMap<(u32, PolicyKind, NvmProfile, usize, usize, TopologySpec), usize>,
}

impl CellIndex {
    fn build(cells: &[SweepCell]) -> CellIndex {
        let mut idx = CellIndex::default();
        for (i, c) in cells.iter().enumerate() {
            let next = idx.workloads.len() as u32;
            let w = *idx.workloads.entry(c.workload.clone()).or_insert(next);
            idx.cells.insert(
                (
                    w,
                    c.policy,
                    c.profile,
                    c.nranks,
                    c.ranks_per_node,
                    c.topology.clone(),
                ),
                i,
            );
        }
        idx
    }
}

/// Coordinate/label suffix naming the machine room; empty for the
/// classic flat world so historical strings are untouched.
fn topo_suffix(t: &TopologySpec) -> String {
    match t {
        TopologySpec::Flat => String::new(),
        t => format!("@{}", t.name()),
    }
}

impl SweepReport {
    /// Assemble a report, building the coordinate index. `cells` is public
    /// for read access; constructing through `new` keeps the index in sync.
    pub fn new(
        config: SweepConfig,
        cells: Vec<SweepCell>,
        corun_cells: Vec<CorunCell>,
    ) -> SweepReport {
        let index = CellIndex::build(&cells);
        SweepReport {
            config,
            cells,
            corun_cells,
            effective_workers: 1,
            cache_hits: 0,
            cache_lookups: 0,
            index,
        }
    }

    /// Record the worker-pool width the sweep ran on (in-memory metadata;
    /// see [`SweepReport::effective_workers`]).
    pub fn with_workers(mut self, n_workers: usize) -> SweepReport {
        self.effective_workers = n_workers.max(1);
        self
    }

    /// Record the cache outcome (in-memory metadata; see
    /// [`SweepReport::cache_hits`]).
    pub fn with_cache_stats(mut self, hits: usize, lookups: usize) -> SweepReport {
        self.cache_hits = hits;
        self.cache_lookups = lookups;
        self
    }

    /// Fraction of cache lookups that hit; `None` when the sweep ran
    /// without a cache (0/0 is "no evidence", not "0%").
    pub fn cache_hit_rate(&self) -> Option<f64> {
        (self.cache_lookups > 0).then(|| self.cache_hits as f64 / self.cache_lookups as f64)
    }

    /// Cell lookup by coordinates, pinned to the classic flat world.
    /// O(1): conformance calls this once per (cell, baseline) pair, which
    /// was quadratic in matrix size when this was a linear scan. The
    /// paper's single-node-class claims are judged on flat cells only;
    /// clustered cells are reached with [`SweepReport::get_at`].
    pub fn get(
        &self,
        workload: &str,
        policy: PolicyKind,
        profile: NvmProfile,
        nranks: usize,
        ranks_per_node: usize,
    ) -> Option<&SweepCell> {
        self.get_at(
            workload,
            policy,
            profile,
            nranks,
            ranks_per_node,
            &TopologySpec::Flat,
        )
    }

    /// [`SweepReport::get`] with an explicit machine room.
    pub fn get_at(
        &self,
        workload: &str,
        policy: PolicyKind,
        profile: NvmProfile,
        nranks: usize,
        ranks_per_node: usize,
        topology: &TopologySpec,
    ) -> Option<&SweepCell> {
        let &w = self.index.workloads.get(workload)?;
        self.index
            .cells
            .get(&(w, policy, profile, nranks, ranks_per_node, topology.clone()))
            .map(|&i| &self.cells[i])
    }
}

/// Run the whole matrix on the default worker count (the host's available
/// parallelism). Fails (rather than silently skipping) when the config
/// names an unknown workload. Axes are canonicalized and deduplicated; the
/// returned report's `config` reflects what actually ran.
///
/// On a 1-CPU host `default_workers()` is 1 and the matrix runs serially;
/// the width actually used is recorded in
/// [`SweepReport::effective_workers`] so callers can see (and report)
/// that, instead of assuming the pool fanned out.
pub fn run_sweep(cfg: &SweepConfig) -> Result<SweepReport, String> {
    run_sweep_jobs(cfg, default_workers())
}

/// [`run_sweep`] with an explicit worker count. `n_workers = 1` runs every
/// cell in order on the calling thread; any count produces byte-identical
/// reports.
pub fn run_sweep_jobs(cfg: &SweepConfig, n_workers: usize) -> Result<SweepReport, String> {
    run_sweep_cached(cfg, n_workers, None)
}

/// [`run_sweep_jobs`] with an optional content-addressed cell cache
/// ([`SweepCache`]): finished cells load instead of recomputing, misses
/// run on the pool and are written back, and the assembled report —
/// including its serialized JSON — is **byte-identical** to a cacheless
/// run (the property tests assert this). The hit/miss outcome lands in
/// [`SweepReport::cache_hits`] / [`SweepReport::cache_lookups`].
pub fn run_sweep_cached(
    cfg: &SweepConfig,
    n_workers: usize,
    store: Option<&SweepCache>,
) -> Result<SweepReport, String> {
    if cfg.ranks.contains(&0) {
        return Err("rank counts must be positive".into());
    }
    if cfg.ranks_per_node.is_empty() || cfg.ranks_per_node.contains(&0) {
        return Err("ranks_per_node needs at least one positive value".into());
    }
    // Layouts whose nodes would hold more ranks than the job has are
    // skipped individually, but a config where *every* pair is skipped
    // would silently produce a zero-cell report.
    if !cfg.ranks.is_empty() && cfg.rank_layouts().is_empty() {
        return Err(format!(
            "no valid (ranks, ranks_per_node) layout: every ranks_per_node value in {:?} \
             exceeds every rank count in {:?}",
            cfg.ranks_per_node, cfg.ranks
        ));
    }
    if cfg.topologies.is_empty() {
        return Err(
            "topologies needs at least one entry (TopologySpec::Flat is the classic sweep)".into(),
        );
    }
    if let Some(t) = cfg.topologies.iter().find(|t| t.n_nodes() == 0) {
        return Err(format!("topology {:?} lays out zero nodes", t));
    }
    let cache = CacheModel::platform_a();
    let names: Vec<&str> = cfg.workloads.iter().map(String::as_str).collect();
    // Resolve up front: an unknown name errors even when another axis is
    // empty, and the workload models build once, not once per machine.
    let selection = select(&names, cfg.class)?;
    // The report carries canonical, duplicate-free axes throughout:
    // consumers (the Nek5000-scoped conformance checks in particular)
    // never see aliases, and a duplicated axis value cannot double-count
    // cells in averages or n_cells.
    let mut cfg = cfg.clone();
    cfg.workloads = selection.iter().map(|(n, _)| n.clone()).collect();
    cfg.normalize_axes();

    let machine = |profile: NvmProfile, ranks_per_node: usize| {
        let mut m = profile.machine().with_ranks_per_node(ranks_per_node);
        if let Some(cap) = cfg.dram_capacity {
            m = m.with_dram_capacity(cap);
        }
        m
    };
    // Lay a clustered machine room out for a cell: `None` for the flat
    // world (the legacy `run_workload` path keeps the historical bytes),
    // otherwise the `ClusterTopology` the clustered driver runs in.
    let topo_of = |t: &TopologySpec, profile: NvmProfile, nranks: usize| match t {
        TopologySpec::Flat => None,
        TopologySpec::Nodes { count } => {
            let slots = t.slots_for(nranks);
            Some(ClusterTopology::contiguous(
                ClusterSpec::homogeneous(machine(profile, slots), *count, slots),
                nranks,
            ))
        }
        TopologySpec::Mixed { profiles } => {
            let slots = t.slots_for(nranks);
            let machines = profiles.iter().map(|&p| machine(p, slots)).collect();
            Some(ClusterTopology::contiguous(
                ClusterSpec::mixed(machines, slots),
                nranks,
            ))
        }
    };

    let rows = enumerate_rows(&cfg, selection.len());
    if rows.is_empty() && !cfg.profiles.is_empty() && !selection.is_empty() && !cfg.ranks.is_empty()
    {
        return Err(format!(
            "no topology in {:?} applies to any (profile, ranks, ranks_per_node) row: \
             clustered rooms need one-rank-per-node layouts with at least as many ranks as nodes",
            cfg.topologies
        ));
    }

    // Cache pre-pass (serial, cheap relative to a single cell run):
    // resolve every already-finished cell before anything executes. The
    // key uses the *row* layout; clustered cells re-derive their real
    // packing from the topology on both the compute and the cached path.
    let cell_jobs = enumerate_cells(&cfg, &rows);
    let mut lookups = 0usize;
    let mut hits = 0usize;
    let mut cached_cells: Vec<Option<SweepCell>> = vec![None; cell_jobs.len()];
    let mut cell_keys = Vec::with_capacity(cell_jobs.len());
    if let Some(store) = store {
        for (slot, job) in cached_cells.iter_mut().zip(&cell_jobs) {
            let (short, _) = &selection[job.row.workload];
            let key = store.cell_key(
                &cfg,
                short,
                job.policy,
                job.row.profile,
                job.row.nranks,
                job.row.ranks_per_node,
                &cfg.topologies[job.row.topology],
            );
            lookups += 1;
            if let Some(cell) = store.load_cell(&key) {
                hits += 1;
                *slot = Some(cell);
            }
            cell_keys.push(key);
        }
    }

    // Stage 1: DRAM-only baselines, in parallel — but only for rows that
    // still have a cell to run. Failures (including panics) carry the
    // row's matrix coordinates. Clustered rows run their baseline in the
    // same machine room as their cells. A cached DRAM-only cell doubles
    // as its row's baseline (its report *is* the baseline run), so a
    // fully-warm sweep executes nothing at all.
    let mut need_baseline = vec![false; rows.len()];
    for (cached, job) in cached_cells.iter().zip(&cell_jobs) {
        if cached.is_none() {
            need_baseline[job.baseline] = true;
        }
    }
    let mut baselines: Vec<Option<RunReport>> = vec![None; rows.len()];
    for (cached, job) in cached_cells.iter().zip(&cell_jobs) {
        if job.policy == PolicyKind::DramOnly {
            if let Some(cell) = cached {
                baselines[job.baseline] = Some(cell.report.clone());
            }
        }
    }
    // When the policy axis omits dram-only there is no DramOnly cell to
    // piggyback on, but another sweep's may be on disk under its key.
    if let Some(store) = store {
        if !cfg.policies.contains(&PolicyKind::DramOnly) {
            for (i, row) in rows.iter().enumerate() {
                if need_baseline[i] && baselines[i].is_none() {
                    let (short, _) = &selection[row.workload];
                    let key = store.cell_key(
                        &cfg,
                        short,
                        PolicyKind::DramOnly,
                        row.profile,
                        row.nranks,
                        row.ranks_per_node,
                        &cfg.topologies[row.topology],
                    );
                    if let Some(cell) = store.load_cell(&key) {
                        baselines[i] = Some(cell.report);
                    }
                }
            }
        }
    }
    let live_rows: Vec<(usize, _)> = rows
        .iter()
        .enumerate()
        .filter(|(i, _)| need_baseline[*i] && baselines[*i].is_none())
        .map(|(i, r)| (i, *r))
        .collect();
    let computed_baselines = run_pool(live_rows.clone(), n_workers, |(_, row)| {
        let (short, workload) = &selection[row.workload];
        let t = &cfg.topologies[row.topology];
        with_label(
            || {
                format!(
                    "{short}/{}/r{}x{}{}/dram-only",
                    row.profile.name(),
                    row.nranks,
                    row.ranks_per_node,
                    topo_suffix(t)
                )
            },
            || {
                Ok(match topo_of(t, row.profile, row.nranks) {
                    None => run_workload(
                        workload.as_ref(),
                        &machine(row.profile, row.ranks_per_node),
                        &cache,
                        row.nranks,
                        &Policy::DramOnly,
                    ),
                    Some(topo) => {
                        run_workload_clustered(workload.as_ref(), &topo, &cache, &Policy::DramOnly)
                    }
                })
            },
        )
    })
    .map_err(|e| format!("sweep baseline failed: {e}"))?;
    for ((i, _), report) in live_rows.into_iter().zip(computed_baselines) {
        baselines[i] = Some(report);
    }

    // Stage 2: the matrix cells that missed, each normalized against its
    // row's shared baseline (DRAM-only cells reuse the baseline run
    // directly).
    let missed_cells: Vec<(usize, CellJob)> = cached_cells
        .iter()
        .enumerate()
        .filter(|(_, c)| c.is_none())
        .map(|(i, _)| (i, cell_jobs[i]))
        .collect();
    let computed_cells = run_pool(missed_cells.clone(), n_workers, |(_, job)| {
        let (short, workload) = &selection[job.row.workload];
        let nranks = job.row.nranks;
        let t = &cfg.topologies[job.row.topology];
        // Clustered cells report the room's actual packing.
        let ranks_per_node = match t {
            TopologySpec::Flat => job.row.ranks_per_node,
            t => t.slots_for(nranks),
        };
        with_label(
            || {
                format!(
                    "{short}/{}/r{nranks}x{ranks_per_node}{}/{}",
                    job.row.profile.name(),
                    topo_suffix(t),
                    job.policy.name()
                )
            },
            || {
                let w = workload.as_ref();
                let m = machine(job.row.profile, ranks_per_node);
                let dram = baselines[job.baseline]
                    .as_ref()
                    .expect("baseline resolved for every row with a missed cell");
                let topo = topo_of(t, job.row.profile, nranks);
                let run = |policy: &Policy| match &topo {
                    None => run_workload(w, &m, &cache, nranks, policy),
                    Some(topo) => run_workload_clustered(w, topo, &cache, policy),
                };
                // Exhaustive over the policy registry on purpose: adding
                // a PolicyId variant without deciding how the sweep
                // instantiates it must fail to compile, not silently
                // drop the policy from the matrix.
                let report = match job.policy {
                    PolicyKind::DramOnly => dram.clone(),
                    PolicyKind::NvmOnly => run(&Policy::NvmOnly),
                    PolicyKind::Xmem => {
                        let p = xmem_policy(w, &m, &cache, nranks);
                        run(&p)
                    }
                    PolicyKind::Unimem => run(&Policy::unimem()),
                    PolicyKind::OnlineGuidance => run(&Policy::online_guidance()),
                    PolicyKind::HwCache => run(&Policy::hw_cache()),
                };
                Ok(SweepCell {
                    workload: short.clone(),
                    full_name: w.name(),
                    policy: job.policy,
                    profile: job.row.profile,
                    nranks,
                    ranks_per_node,
                    topology: t.clone(),
                    normalized_to_dram: normalized_to_dram(
                        report.time().secs(),
                        dram.time().secs(),
                    )?,
                    report,
                })
            },
        )
    })
    .map_err(|e| format!("sweep cell failed: {e}"))?;

    // Write the misses back (serial, after the pool: writes never race),
    // then splice computed cells into the cached ones by job index — the
    // same reassembly-by-index discipline the pool itself uses, so the
    // cell order is byte-for-byte the canonical enumeration order no
    // matter which cells hit.
    if let Some(store) = store {
        for ((i, _), cell) in missed_cells.iter().zip(&computed_cells) {
            store.store_cell(&cell_keys[*i], cell);
        }
    }
    let mut by_index = cached_cells;
    for ((i, _), cell) in missed_cells.into_iter().zip(computed_cells) {
        by_index[i] = Some(cell);
    }
    let cells: Vec<SweepCell> = by_index
        .into_iter()
        .map(|c| c.expect("every cell either hit the cache or ran"))
        .collect();

    // Stage 3: the co-run matrix — every mix on every profile, at the
    // largest rank count. One job covers all arbitration policies of a
    // (profile, mix) pair so each tenant's policy-independent solo
    // baseline runs once; cells flatten in canonical (profile, mix,
    // arbiter, tenant) order. The group is the unit of execution, so it
    // is also the unit of caching.
    let corun_jobs = enumerate_coruns(&cfg);
    let mut cached_groups: Vec<Option<Vec<CorunCell>>> = vec![None; corun_jobs.len()];
    let mut corun_keys = Vec::with_capacity(corun_jobs.len());
    if let Some(store) = store {
        for (slot, job) in cached_groups.iter_mut().zip(&corun_jobs) {
            let key = store.corun_key(&cfg, &cfg.coruns[job.mix], job.profile, job.nranks);
            lookups += 1;
            if let Some(group) = store.load_corun(&key) {
                hits += 1;
                *slot = Some(group);
            }
            corun_keys.push(key);
        }
    }
    let missed_coruns: Vec<(usize, CorunJob)> = cached_groups
        .iter()
        .enumerate()
        .filter(|(_, g)| g.is_none())
        .map(|(i, _)| (i, corun_jobs[i]))
        .collect();
    let computed_groups = run_pool(missed_coruns.clone(), n_workers, |(_, job)| {
        let mix = &cfg.coruns[job.mix];
        with_label(
            || format!("{}/{}/r{}", mix.label(), job.profile.name(), job.nranks),
            || {
                // Co-runs keep one rank per node: cross-tenant DRAM
                // contention is arbitrated (the lease pathway), and the
                // single-tenant rpn axis owns bandwidth contention.
                let m = machine(job.profile, 1);
                let members = mix.instantiate(cfg.class);
                let tenants: Vec<CorunTenant<'_>> = members
                    .iter()
                    .map(|(slot, w)| {
                        CorunTenant::new(slot.tenant.clone(), w.as_ref())
                            .weight(slot.weight)
                            .start_epoch(slot.start_epoch)
                    })
                    .collect();
                let solos: Vec<RunReport> = tenants
                    .iter()
                    .map(|t| run_workload(t.workload, &m, &cache, job.nranks, &Policy::unimem()))
                    .collect();
                let mut group = Vec::with_capacity(cfg.arbiters.len() * tenants.len());
                for &arbiter in &cfg.arbiters {
                    let outcomes =
                        run_corun_with_solos(&tenants, &m, &cache, job.nranks, arbiter, &solos)?;
                    group.extend(members.iter().zip(outcomes).map(|((slot, _), o)| {
                        let (lease_min, lease_max) = (o.lease_min(), o.lease_max());
                        CorunCell {
                            mix: mix.label(),
                            workload: slot.workload.clone(),
                            tenant: o.name,
                            weight: o.weight,
                            start_epoch: o.start_epoch,
                            arbiter,
                            profile: job.profile,
                            nranks: job.nranks,
                            solo_time_s: o.solo.time().secs(),
                            slowdown: o.slowdown,
                            lease_min,
                            lease_max,
                            report: o.corun,
                        }
                    }));
                }
                Ok(group)
            },
        )
    })
    .map_err(|e| format!("sweep co-run failed: {e}"))?;
    if let Some(store) = store {
        for ((i, _), group) in missed_coruns.iter().zip(&computed_groups) {
            store.store_corun(&corun_keys[*i], group);
        }
    }
    let mut groups_by_index = cached_groups;
    for ((i, _), group) in missed_coruns.into_iter().zip(computed_groups) {
        groups_by_index[i] = Some(group);
    }
    let corun_cells = groups_by_index
        .into_iter()
        .flat_map(|g| g.expect("every co-run group either hit the cache or ran"))
        .collect();

    Ok(SweepReport::new(cfg, cells, corun_cells)
        .with_workers(n_workers)
        .with_cache_stats(hits, lookups))
}

/// Normalize a cell's run time against its row's DRAM-only baseline,
/// rejecting non-finite results: a zero or non-finite baseline would
/// serialize as JSON `null` (non-finite floats have no JSON form), which
/// conformance cannot judge — poisoning the report silently.
fn normalized_to_dram(cell_secs: f64, dram_secs: f64) -> Result<f64, String> {
    let r = cell_secs / dram_secs;
    if r.is_finite() {
        Ok(r)
    } else {
        Err(format!(
            "normalized_to_dram is {r} (cell {cell_secs}s / dram-only {dram_secs}s); \
             a zero or non-finite baseline cannot be judged"
        ))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unimem_workloads::Class;

    /// A two-cell micro matrix exercises the runner end to end without
    /// the cost of the reduced matrix (which tests/conformance.rs runs).
    fn micro() -> SweepConfig {
        SweepConfig {
            class: Class::C,
            workloads: vec!["CG".into()],
            policies: vec![PolicyKind::DramOnly, PolicyKind::Unimem],
            profiles: vec![NvmProfile::BwHalf],
            ranks: vec![2],
            ranks_per_node: vec![1],
            topologies: vec![TopologySpec::Flat],
            dram_capacity: None,
            coruns: vec![],
            arbiters: vec![],
        }
    }

    #[test]
    fn runner_fills_every_cell_in_order() {
        let rep = run_sweep(&micro()).expect("micro matrix runs");
        assert_eq!(rep.cells.len(), 2);
        assert_eq!(rep.cells[0].policy, PolicyKind::DramOnly);
        assert_eq!(rep.cells[1].policy, PolicyKind::Unimem);
        assert_eq!(rep.cells[0].full_name, "CG.C");
        assert!((rep.cells[0].normalized_to_dram - 1.0).abs() < 1e-12);
        assert!(rep.cells[1].time_s() > 0.0);
    }

    #[test]
    fn lookup_by_coordinates() {
        let rep = run_sweep(&micro()).unwrap();
        assert!(rep
            .get("CG", PolicyKind::Unimem, NvmProfile::BwHalf, 2, 1)
            .is_some());
        assert!(rep
            .get("CG", PolicyKind::Unimem, NvmProfile::Lat4x, 2, 1)
            .is_none());
        assert!(rep
            .get("CG", PolicyKind::Unimem, NvmProfile::BwHalf, 2, 2)
            .is_none());
        assert!(rep
            .get("FT", PolicyKind::Unimem, NvmProfile::BwHalf, 2, 1)
            .is_none());
    }

    #[test]
    fn index_agrees_with_linear_scan() {
        let mut cfg = micro();
        cfg.workloads = vec!["CG".into(), "LU".into()];
        cfg.policies = PolicyKind::ALL.to_vec();
        let rep = run_sweep(&cfg).unwrap();
        for c in &rep.cells {
            let found = rep
                .get(&c.workload, c.policy, c.profile, c.nranks, c.ranks_per_node)
                .expect("indexed lookup finds every cell");
            assert!(std::ptr::eq(found, c), "index points at the wrong cell");
        }
    }

    #[test]
    fn ranks_per_node_axis_expands_cells_and_shows_contention() {
        let mut cfg = micro();
        cfg.ranks_per_node = vec![1, 2];
        let rep = run_sweep(&cfg).unwrap();
        assert_eq!(rep.cells.len(), 2 * 2, "two layouts x two policies");
        let at = |rpn| {
            rep.get("CG", PolicyKind::DramOnly, NvmProfile::BwHalf, 2, rpn)
                .unwrap()
                .time_s()
        };
        assert!(
            at(2) > at(1),
            "two ranks sharing a node's bandwidth must run slower than one per node"
        );
        // Coordinates spell the layout out only when packed.
        assert!(rep.cells[0].coords().contains("/r2/"));
        assert!(rep.cells[2].coords().contains("/r2x2/"));
    }

    #[test]
    fn topology_axis_adds_clustered_cells_after_the_flat_block() {
        let mut cfg = micro();
        cfg.topologies.push(TopologySpec::Nodes { count: 2 });
        let rep = run_sweep(&cfg).unwrap();
        assert_eq!(rep.cells.len(), 4, "flat block + 2-node room block");
        // Flat lookups are untouched by the new axis.
        assert!(rep
            .get("CG", PolicyKind::Unimem, NvmProfile::BwHalf, 2, 1)
            .is_some());
        let room = TopologySpec::Nodes { count: 2 };
        let dram = rep
            .get_at("CG", PolicyKind::DramOnly, NvmProfile::BwHalf, 2, 1, &room)
            .expect("clustered baseline cell exists");
        assert!((dram.normalized_to_dram - 1.0).abs() < 1e-12);
        assert_eq!(dram.coords(), "CG/bw-half/r2@nodes2/dram-only");
        let unimem = rep
            .get_at("CG", PolicyKind::Unimem, NvmProfile::BwHalf, 2, 1, &room)
            .expect("clustered policy cell exists");
        assert!(unimem.normalized_to_dram.is_finite() && unimem.time_s() > 0.0);
        // Two ranks on two linked nodes pay inter-node collectives the
        // flat world never sees.
        let flat = rep
            .get("CG", PolicyKind::DramOnly, NvmProfile::BwHalf, 2, 1)
            .unwrap();
        assert!(
            dram.time_s() > flat.time_s(),
            "splitting ranks across nodes must cost link time \
             (clustered {} vs flat {})",
            dram.time_s(),
            flat.time_s()
        );
    }

    #[test]
    fn mixed_room_packs_and_reports_slots() {
        let mut cfg = micro();
        cfg.ranks = vec![4];
        cfg.topologies = vec![TopologySpec::Mixed {
            profiles: vec![NvmProfile::BwHalf, NvmProfile::Lat4x],
        }];
        let rep = run_sweep(&cfg).unwrap();
        assert_eq!(rep.cells.len(), 2);
        // 4 ranks over 2 nodes: the cell reports the room's packing.
        assert_eq!(rep.cells[0].ranks_per_node, 2);
        assert_eq!(
            rep.cells[1].coords(),
            "CG/bw-half/r4x2@mixed:bw-half+lat-4x/unimem"
        );
    }

    #[test]
    fn zero_node_topology_is_an_error() {
        let mut cfg = micro();
        cfg.topologies = vec![];
        assert!(run_sweep(&cfg).unwrap_err().contains("topologies"));
        cfg.topologies = vec![TopologySpec::Nodes { count: 0 }];
        assert!(run_sweep(&cfg).unwrap_err().contains("zero nodes"));
        // A room bigger than the job applies to no row: error, not a
        // silent zero-cell report.
        cfg.topologies = vec![TopologySpec::Nodes { count: 8 }];
        assert!(run_sweep(&cfg).unwrap_err().contains("applies to"));
    }

    #[test]
    fn empty_ranks_per_node_axis_is_an_error() {
        let mut cfg = micro();
        cfg.ranks_per_node = vec![];
        assert!(run_sweep(&cfg).is_err());
        cfg.ranks_per_node = vec![0];
        assert!(run_sweep(&cfg).is_err());
        // All layouts filtered out (every rpn > every rank count) must be
        // an error, not a silent zero-cell report.
        cfg.ranks_per_node = vec![8];
        let err = run_sweep(&cfg).unwrap_err();
        assert!(err.contains("no valid"), "{err}");
    }

    #[test]
    fn unknown_workload_is_an_error() {
        let mut cfg = micro();
        cfg.workloads.push("EP".into());
        assert!(run_sweep(&cfg).is_err());
        // Even when another axis is empty and no cell would ever run.
        cfg.profiles.clear();
        assert!(run_sweep(&cfg).is_err());
    }

    #[test]
    fn zero_ranks_is_an_error() {
        let mut cfg = micro();
        cfg.ranks = vec![0];
        assert!(run_sweep(&cfg).is_err());
    }

    #[test]
    fn duplicate_axis_values_collapse() {
        let mut cfg = micro();
        cfg.ranks = vec![2, 2];
        cfg.profiles = vec![NvmProfile::BwHalf, NvmProfile::BwHalf];
        let rep = run_sweep(&cfg).unwrap();
        assert_eq!(rep.cells.len(), 2, "duplicates must not double-count cells");
        assert_eq!(rep.config.ranks, [2]);
        assert_eq!(rep.config.profiles, [NvmProfile::BwHalf]);
    }

    #[test]
    fn worker_counts_produce_identical_reports() {
        let mut cfg = micro();
        cfg.policies = PolicyKind::ALL.to_vec();
        let serial = run_sweep_jobs(&cfg, 1).unwrap();
        let parallel = run_sweep_jobs(&cfg, 8).unwrap();
        assert_eq!(serial.cells.len(), parallel.cells.len());
        for (a, b) in serial.cells.iter().zip(&parallel.cells) {
            assert_eq!(
                a.coords(),
                b.coords(),
                "cell order must not depend on workers"
            );
            assert_eq!(a.time_s(), b.time_s());
            assert_eq!(a.normalized_to_dram, b.normalized_to_dram);
        }
    }

    #[test]
    fn effective_workers_is_recorded_but_never_serialized() {
        let cfg = micro();
        let serial = run_sweep_jobs(&cfg, 1).unwrap();
        let wide = run_sweep_jobs(&cfg, 8).unwrap();
        // The report remembers the width it ran on (the PR-3 footgun:
        // `run_sweep` on a 1-CPU host silently serialized with no trace)…
        assert_eq!(serial.effective_workers, 1);
        assert_eq!(wide.effective_workers, 8);
        assert_eq!(
            run_sweep(&cfg).unwrap().effective_workers,
            default_workers().max(1)
        );
        // …but the serialized bytes stay a pure function of the matrix.
        let (a, b) = (serial.to_json().to_string(), wide.to_json().to_string());
        assert_eq!(a, b, "worker count must not leak into the report bytes");
        assert!(!a.contains("workers"), "no workers key in the JSON");
    }

    #[test]
    fn non_finite_normalization_is_an_error() {
        assert!((normalized_to_dram(2.0, 1.0).unwrap() - 2.0).abs() < 1e-12);
        for (cell, dram) in [(1.0, 0.0), (0.0, 0.0), (f64::NAN, 1.0), (1.0, f64::NAN)] {
            let err = normalized_to_dram(cell, dram).unwrap_err();
            assert!(err.contains("cannot be judged"), "{err}");
        }
    }

    #[test]
    fn corun_stage_produces_per_tenant_cells_in_canonical_order() {
        let mut cfg = micro();
        cfg.coruns = unimem_workloads::parse_mixes(&["CG+LU"]).unwrap();
        cfg.arbiters = vec![ArbiterPolicy::FairShare, ArbiterPolicy::Priority];
        let rep = run_sweep(&cfg).unwrap();
        assert_eq!(rep.corun_cells.len(), 2 * 2, "2 tenants x 2 arbiters");
        // Canonical (profile, mix, arbiter, tenant) order.
        let coords: Vec<String> = rep.corun_cells.iter().map(CorunCell::coords).collect();
        assert_eq!(
            coords,
            [
                "CG+LU[CG]/bw-half/r2/fair-share",
                "CG+LU[LU]/bw-half/r2/fair-share",
                "CG+LU[CG]/bw-half/r2/priority",
                "CG+LU[LU]/bw-half/r2/priority",
            ]
        );
        for c in &rep.corun_cells {
            assert!(c.slowdown.is_finite() && c.slowdown > 0.0);
            assert!(c.solo_time_s > 0.0);
            assert_eq!(c.weight, if c.tenant == "CG" { 4 } else { 1 });
        }
    }

    #[test]
    fn empty_corun_axes_produce_no_corun_cells() {
        let rep = run_sweep(&micro()).unwrap();
        assert!(rep.corun_cells.is_empty());
    }

    /// The cache contract in miniature: a cold cached run, a warm rerun,
    /// and a cacheless run all serialize to the same bytes, and the warm
    /// rerun answers every lookup from disk.
    #[test]
    fn cached_sweep_is_byte_identical_and_warms_up() {
        let dir =
            std::env::temp_dir().join(format!("unimem-runner-cache-test-{}", std::process::id()));
        std::fs::remove_dir_all(&dir).ok();
        let mut cfg = micro();
        cfg.coruns = unimem_workloads::parse_mixes(&["CG+LU"]).unwrap();
        cfg.arbiters = vec![ArbiterPolicy::FairShare];
        let store = SweepCache::open(&dir).expect("cache opens");

        let plain = run_sweep_jobs(&cfg, 1).expect("cacheless run");
        let cold = run_sweep_cached(&cfg, 1, Some(&store)).expect("cold run");
        assert_eq!(cold.cache_hits, 0, "nothing to hit on a cold cache");
        assert_eq!(cold.cache_lookups, 3, "2 cells + 1 co-run group");
        let warm = run_sweep_cached(&cfg, 1, Some(&store)).expect("warm run");
        assert_eq!(warm.cache_hits, 3, "everything hits on a warm cache");
        assert_eq!(warm.cache_hit_rate(), Some(1.0));
        assert_eq!(plain.cache_hit_rate(), None, "no cache, no evidence");

        let (p, c, w) = (
            plain.to_json().to_string(),
            cold.to_json().to_string(),
            warm.to_json().to_string(),
        );
        assert_eq!(p, c, "the cache must be invisible in the bytes (cold)");
        assert_eq!(p, w, "the cache must be invisible in the bytes (warm)");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// The parallel executor shares workload models, the cache model, and
    /// machine configs by reference across worker threads; this is the
    /// compile-time proof they stay `Sync`-shareable.
    #[test]
    fn shared_run_inputs_are_sync() {
        fn assert_sync<T: Sync + ?Sized>() {}
        assert_sync::<dyn unimem::exec::Workload>();
        assert_sync::<Box<dyn unimem::exec::Workload>>();
        assert_sync::<CacheModel>();
        assert_sync::<unimem_hms::MachineConfig>();
        assert_sync::<Policy>();
    }
}
