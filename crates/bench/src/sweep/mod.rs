//! The evaluation-matrix sweep: every workload × policy × NVM profile ×
//! rank count in one run, one machine-readable report, and executable
//! paper-claim conformance checks on top.
//!
//! The figure/table harnesses under `benches/` each reproduce one plot.
//! This subsystem instead runs the *whole* evaluation matrix —
//!
//! * workloads: the 7-member suite (CG/FT/BT/LU/SP/MG + Nek5000-eddy),
//! * policies: the whole placement-policy registry
//!   (`unimem::policy::PolicyId`) — `unimem`, `xmem`, `dram-only`,
//!   `nvm-only`, `online-guidance`, `hw-cache`,
//! * NVM profiles: the Fig. 9/10 emulation anchors (½ DRAM bandwidth,
//!   4× DRAM latency) and the Table-1 technology rows (STT-RAM, PCRAM,
//!   ReRAM),
//! * rank counts: 1 / 4 / 8,
//! * node layouts: 1 / 2 / 4 ranks per node — packed layouts share each
//!   node's tier bandwidth and copy path, exercising the shared-bandwidth
//!   contention model (Fig. 12-style scaling),
//! * machine rooms: an optional cluster-topology axis
//!   ([`matrix::TopologySpec`], `--topology` on the CLI) re-runs
//!   one-rank-per-node rows in simulated multi-node or heterogeneous
//!   rooms through `unimem::exec::run_workload_clustered` — two-level
//!   collectives, inter-node traffic on the contended link channels,
//!   normalization against DRAM-only in the same room
//!
//! — and emits a single `BENCH_sweep.json` with per-cell run time,
//! migration statistics, and pure runtime cost ([`report`]).
//!
//! Cells execute on a deterministic worker pool ([`jobs`]): baselines
//! first, then the remaining policy cells, reassembled in canonical order
//! so the report bytes never depend on the worker count (`--jobs N` on
//! the CLI; [`runner::run_sweep_jobs`] in code).
//!
//! Beyond the paper's single-application evaluation, the sweep carries a
//! **co-run matrix** (stage 3): multi-tenant mixes
//! (`unimem_workloads::corun`) execute under the DRAM arbiter
//! (`unimem_hms::arbiter`) with each of the {fair-share, priority,
//! best-effort} policies, and the report gains per-tenant cells measuring
//! slowdown against the tenant's solo run — the production-node question
//! the paper never asks.
//!
//! The [`conformance`] layer encodes the paper's headline claims as
//! executable checks with explicit tolerances (see [`conformance::Tolerances`]
//! for the claim ↔ figure mapping; `docs/CONFORMANCE.md` documents each
//! check's provenance), runnable both as a tier-1 test on the
//! [`matrix::SweepConfig::reduced`] matrix and as a full-matrix CLI mode
//! (`cargo run --release --example sweep -- --full --check`).

pub mod cache;
pub mod conformance;
pub mod jobs;
pub mod matrix;
pub mod report;
pub mod runner;

pub use cache::SweepCache;
pub use conformance::{
    check_contention, check_determinism, check_recovery, check_report, check_weak_scaling,
    Tolerances, Violation,
};
pub use jobs::{default_workers, run_pool};
pub use matrix::{ArbiterPolicy, NvmProfile, PolicyKind, SweepConfig, TopologySpec};
pub use runner::{run_sweep, run_sweep_cached, run_sweep_jobs, CorunCell, SweepCell, SweepReport};
