//! The sweep's axes: policies, NVM profiles, co-run mixes, arbitration
//! policies, and the matrix configuration.

pub use unimem_hms::arbiter::ArbiterPolicy;

/// Placement policy axis: the canonical registry from
/// `unimem::policy`. The sweep, the `--policies` CLI, and the JSON
/// report all use [`PolicyKind::name`] / [`PolicyKind::from_name`] —
/// there is no second name table to keep in sync. `Xmem` is
/// materialized per (workload, machine) by the offline training
/// profile; the others come from [`PolicyKind::default_policy`].
pub use unimem::policy::PolicyId as PolicyKind;

use unimem_hms::{profiles, MachineConfig};
use unimem_sim::Bytes;
use unimem_workloads::corun::CorunMix;
use unimem_workloads::{corun, Class, SUITE_NAMES};

/// NVM profile axis: the paper's two emulation anchors plus the Table-1
/// technology rows paired with the simulation DRAM.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum NvmProfile {
    /// NVM at ½ DRAM bandwidth, same latency (Fig. 2/9 configuration).
    BwHalf,
    /// NVM at 4× DRAM latency, same bandwidth (Fig. 3/10 configuration).
    Lat4x,
    /// Table 1, STT-RAM row.
    SttRam,
    /// Table 1, PCRAM row (range midpoints).
    Pcram,
    /// Table 1, ReRAM row (range midpoints).
    ReRam,
}

impl NvmProfile {
    /// Every profile, in report order.
    pub const ALL: [NvmProfile; 5] = [
        NvmProfile::BwHalf,
        NvmProfile::Lat4x,
        NvmProfile::SttRam,
        NvmProfile::Pcram,
        NvmProfile::ReRam,
    ];

    /// Stable lower-case name used in reports and on the CLI.
    pub fn name(self) -> &'static str {
        match self {
            NvmProfile::BwHalf => "bw-half",
            NvmProfile::Lat4x => "lat-4x",
            NvmProfile::SttRam => "stt-ram",
            NvmProfile::Pcram => "pcram",
            NvmProfile::ReRam => "reram",
        }
    }

    /// Inverse of [`NvmProfile::name`] (case-insensitive).
    pub fn parse(s: &str) -> Option<NvmProfile> {
        Self::ALL
            .into_iter()
            .find(|p| p.name() == s.to_ascii_lowercase())
    }

    /// The machine this profile describes (paper §5 capacities: DRAM
    /// 256 MB, NVM 16 GB per node, 1 rank per node). The emulation
    /// anchors come from the canonical constants in
    /// `unimem_hms::profiles`, shared with the Fig. 2/3 harnesses so the
    /// sweep and the benches cannot drift apart.
    pub fn machine(self) -> MachineConfig {
        match self {
            NvmProfile::BwHalf => MachineConfig::nvm_bw_fraction(profiles::ANCHOR_BW_FRACTION),
            NvmProfile::Lat4x => MachineConfig::nvm_lat_multiple(profiles::ANCHOR_LAT_MULTIPLE),
            NvmProfile::SttRam => {
                MachineConfig::technology(profiles::table1_stt_ram(), "Table-1 STT-RAM")
            }
            NvmProfile::Pcram => {
                MachineConfig::technology(profiles::table1_pcram(), "Table-1 PCRAM")
            }
            NvmProfile::ReRam => {
                MachineConfig::technology(profiles::table1_reram(), "Table-1 ReRAM")
            }
        }
    }

    /// True for the profiles behind Figs. 9/10, where the paper claims
    /// Unimem stays within a small tolerance of DRAM-only. The Table-1
    /// technology rows are far slower than the emulated NVM (ReRAM writes
    /// at 4.5 MB/s), so the claim does not extend to them.
    pub fn tracks_dram(self) -> bool {
        matches!(self, NvmProfile::BwHalf | NvmProfile::Lat4x)
    }

    /// True where the X-Mem comparison on Nek5000's drifting pattern is
    /// meaningful: migration must be affordable. On ReRAM the NVM↔DRAM
    /// copy bandwidth is so low that any online movement loses to a frozen
    /// placement, and on `Lat4x` both policies reach DRAM-only time (tie).
    pub fn supports_drift_win(self) -> bool {
        !matches!(self, NvmProfile::ReRam)
    }
}

/// Cluster-topology axis: how the machine room a cell runs in is laid
/// out. The default, [`TopologySpec::Flat`], is the paper's world — one
/// node class, single-level collectives, node packing governed by the
/// `ranks_per_node` axis — and reproduces the historical report bytes.
/// The other variants route the cell through
/// `unimem::exec::run_workload_clustered`: explicit nodes, hierarchical
/// collectives, inter-node traffic charged on the per-node link channels.
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub enum TopologySpec {
    /// The legacy flat world (single-level collectives).
    Flat,
    /// `count` homogeneous nodes of the row's NVM profile; ranks spread
    /// contiguously, `⌈nranks / count⌉` per node.
    Nodes {
        /// Number of nodes in the simulated machine room.
        count: usize,
    },
    /// A heterogeneous machine room: one node per listed profile, in
    /// order. To avoid duplicate cells the mixed room attaches only to
    /// rows of its *first* listed profile (the room already names every
    /// machine in it; the row's profile axis would otherwise multiply
    /// identical runs).
    Mixed {
        /// The per-node NVM profiles, node-id order.
        profiles: Vec<NvmProfile>,
    },
}

impl TopologySpec {
    /// Stable name used in reports, coordinates, and on the CLI:
    /// `flat`, `nodes4`, `mixed:bw-half+pcram`.
    pub fn name(&self) -> String {
        match self {
            TopologySpec::Flat => "flat".into(),
            TopologySpec::Nodes { count } => format!("nodes{count}"),
            TopologySpec::Mixed { profiles } => {
                let names: Vec<&str> = profiles.iter().map(|p| p.name()).collect();
                format!("mixed:{}", names.join("+"))
            }
        }
    }

    /// Inverse of [`TopologySpec::name`].
    pub fn parse(s: &str) -> Option<TopologySpec> {
        let s = s.trim().to_ascii_lowercase();
        if s == "flat" {
            return Some(TopologySpec::Flat);
        }
        if let Some(count) = s.strip_prefix("nodes") {
            let count: usize = count.parse().ok()?;
            return (count >= 1).then_some(TopologySpec::Nodes { count });
        }
        if let Some(list) = s.strip_prefix("mixed:") {
            let profiles: Option<Vec<NvmProfile>> =
                list.split('+').map(NvmProfile::parse).collect();
            let profiles = profiles?;
            return (!profiles.is_empty()).then_some(TopologySpec::Mixed { profiles });
        }
        None
    }

    /// Number of nodes this topology lays out for an `nranks`-rank job.
    pub fn n_nodes(&self) -> usize {
        match self {
            TopologySpec::Flat => 1,
            TopologySpec::Nodes { count } => *count,
            TopologySpec::Mixed { profiles } => profiles.len(),
        }
    }

    /// Ranks each node holds when `nranks` spread contiguously.
    pub fn slots_for(&self, nranks: usize) -> usize {
        nranks.div_ceil(self.n_nodes())
    }

    /// Whether this topology generates a cell on the given matrix row.
    /// Flat rides every row. Clustered topologies attach only to the
    /// canonical one-rank-per-node rows (their own node layout decides
    /// packing), need at least one rank per node, and a mixed room
    /// attaches only to its first profile's rows (see [`TopologySpec::Mixed`]).
    pub fn applies_to(&self, profile: NvmProfile, nranks: usize, ranks_per_node: usize) -> bool {
        match self {
            TopologySpec::Flat => true,
            TopologySpec::Nodes { count } => ranks_per_node == 1 && *count <= nranks,
            TopologySpec::Mixed { profiles } => {
                ranks_per_node == 1
                    && profiles.len() <= nranks
                    && profiles.first() == Some(&profile)
            }
        }
    }
}

/// The matrix to sweep. Axes multiply: every workload runs under every
/// policy on every (profile, rank count, ranks-per-node) machine —
/// `ranks_per_node` values above a cell's rank count are skipped (a node
/// cannot hold more ranks than the job has), so the layout axis is the
/// set of valid (ranks, ranks_per_node) pairs. The co-run axes multiply
/// separately: every mix runs under every arbitration policy on every
/// profile, at the matrix's largest rank count (see
/// [`SweepConfig::corun_ranks`]), one rank per node.
///
/// # Example — a miniature custom slice
///
/// ```
/// use unimem_bench::sweep::{run_sweep, NvmProfile, PolicyKind, SweepConfig, TopologySpec};
/// use unimem_workloads::Class;
///
/// let cfg = SweepConfig {
///     class: Class::S, // miniature inputs: the slice runs in milliseconds
///     workloads: vec!["CG".into()],
///     policies: vec![PolicyKind::DramOnly, PolicyKind::NvmOnly],
///     profiles: vec![NvmProfile::BwHalf],
///     ranks: vec![2],
///     ranks_per_node: vec![1],
///     topologies: vec![TopologySpec::Flat],
///     dram_capacity: None,
///     coruns: vec![],
///     arbiters: vec![],
/// };
/// assert_eq!(cfg.n_cells(), 2);
/// let report = run_sweep(&cfg).unwrap();
/// assert_eq!(report.cells.len(), 2);
/// // Cells come back in canonical order, normalized to the row's
/// // DRAM-only baseline. (At CLASS S the arrays fit the LLC, so
/// // NVM-only merely ties rather than losing.)
/// assert_eq!(report.cells[0].policy, PolicyKind::DramOnly);
/// assert!(report.cells[1].normalized_to_dram >= 1.0);
/// ```
#[derive(Debug, Clone)]
pub struct SweepConfig {
    /// NPB problem class every cell runs at.
    pub class: Class,
    /// Suite member names (canonicalized by the runner).
    pub workloads: Vec<String>,
    /// Placement policies to run per workload.
    pub policies: Vec<PolicyKind>,
    /// NVM profiles (machines) to run on.
    pub profiles: Vec<NvmProfile>,
    /// MPI rank counts to run at.
    pub ranks: Vec<usize>,
    /// Ranks packed per node (Fig. 12-style scaling at fixed total
    /// ranks): co-located ranks share the node's DRAM allowance, its tier
    /// bandwidth, and its copy path, so values ≥ 2 exercise the
    /// shared-bandwidth contention model. Values above a cell's rank
    /// count are skipped.
    pub ranks_per_node: Vec<usize>,
    /// Cluster topologies to run each row in. `[TopologySpec::Flat]`
    /// (the default) is the paper's single-level world. Clustered
    /// entries add cells on the one-rank-per-node rows only — the
    /// topology itself decides packing (see
    /// [`TopologySpec::applies_to`]).
    pub topologies: Vec<TopologySpec>,
    /// Override the per-node DRAM capacity (None = profile default 256 MB).
    pub dram_capacity: Option<Bytes>,
    /// Co-run mixes for the multi-tenant arbitration cells (empty = no
    /// co-run cells).
    pub coruns: Vec<CorunMix>,
    /// DRAM arbitration policies each mix runs under.
    pub arbiters: Vec<ArbiterPolicy>,
}

impl SweepConfig {
    /// The reduced matrix the tier-1 conformance suite and the default CLI
    /// invocation run: paper basic setup (CLASS C, 4 ranks) on both
    /// emulation anchors, all 7 workloads, all 6 policies, at 1 and 2
    /// ranks per node so migration-vs-compute contention is exercised on
    /// every push.
    pub fn reduced() -> SweepConfig {
        SweepConfig {
            class: Class::C,
            workloads: SUITE_NAMES.iter().map(|s| s.to_string()).collect(),
            policies: PolicyKind::ALL.to_vec(),
            profiles: vec![NvmProfile::BwHalf, NvmProfile::Lat4x],
            ranks: vec![4],
            ranks_per_node: vec![1, 2],
            topologies: vec![TopologySpec::Flat],
            dram_capacity: None,
            coruns: corun::reduced_mixes(),
            arbiters: ArbiterPolicy::ALL.to_vec(),
        }
    }

    /// The full matrix: all 7 workloads × 6 policies × 5 NVM profiles ×
    /// rank counts {1, 4, 8} × ranks-per-node {1, 2, 4}, plus the
    /// standard co-run mixes.
    pub fn full() -> SweepConfig {
        SweepConfig {
            profiles: NvmProfile::ALL.to_vec(),
            ranks: vec![1, 4, 8],
            ranks_per_node: vec![1, 2, 4],
            coruns: corun::standard_mixes(),
            ..SweepConfig::reduced()
        }
    }

    /// The valid (ranks, ranks_per_node) pairs, in canonical (ranks
    /// outer, ranks_per_node inner) order: pairs where a node would hold
    /// more ranks than the job has are skipped.
    pub fn rank_layouts(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for &r in &self.ranks {
            for &rpn in &self.ranks_per_node {
                if rpn <= r {
                    out.push((r, rpn));
                }
            }
        }
        out
    }

    /// The (ranks, ranks_per_node) pairs a topology contributes on one
    /// profile's rows, in canonical order: [`SweepConfig::rank_layouts`]
    /// filtered through [`TopologySpec::applies_to`].
    pub fn layouts_for(&self, profile: NvmProfile, topology: &TopologySpec) -> Vec<(usize, usize)> {
        self.rank_layouts()
            .into_iter()
            .filter(|&(r, rpn)| topology.applies_to(profile, r, rpn))
            .collect()
    }

    /// Number of single-tenant cells this matrix produces.
    pub fn n_cells(&self) -> usize {
        let mut rows = 0;
        for &profile in &self.profiles {
            for t in &self.topologies {
                rows += self.layouts_for(profile, t).len();
            }
        }
        self.workloads.len() * self.policies.len() * rows
    }

    /// The rank count the co-run cells execute at: the matrix's largest
    /// (co-runs model the contended production node, so they take the
    /// biggest configured job size). `None` when the ranks axis is empty.
    pub fn corun_ranks(&self) -> Option<usize> {
        self.ranks.iter().copied().max()
    }

    /// Number of per-tenant co-run cells this matrix produces.
    pub fn n_corun_cells(&self) -> usize {
        if self.corun_ranks().is_none() {
            return 0;
        }
        let tenants: usize = self.coruns.iter().map(|m| m.members.len()).sum();
        tenants * self.arbiters.len() * self.profiles.len()
    }

    /// Collapse duplicate policy/profile/rank values in place
    /// (order-preserving), so a duplicated axis entry cannot double-count
    /// cells. Workload names are canonicalized separately (they need the
    /// alias table; see `unimem_workloads::canonicalize_names`).
    pub fn normalize_axes(&mut self) {
        fn dedup<T: PartialEq + Copy>(values: &mut Vec<T>) {
            let mut out = Vec::with_capacity(values.len());
            for &v in values.iter() {
                if !out.contains(&v) {
                    out.push(v);
                }
            }
            *values = out;
        }
        dedup(&mut self.policies);
        dedup(&mut self.profiles);
        dedup(&mut self.ranks);
        dedup(&mut self.ranks_per_node);
        dedup(&mut self.arbiters);
        // Topologies hold a Vec (not Copy): dedup by equality in place.
        let mut topologies = Vec::with_capacity(self.topologies.len());
        for t in self.topologies.drain(..) {
            if !topologies.contains(&t) {
                topologies.push(t);
            }
        }
        self.topologies = topologies;
        self.coruns = corun::dedup_mixes(std::mem::take(&mut self.coruns));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for p in PolicyKind::ALL {
            assert_eq!(PolicyKind::from_name(p.name()), Some(p));
        }
        for p in NvmProfile::ALL {
            assert_eq!(NvmProfile::parse(p.name()), Some(p));
        }
        assert_eq!(PolicyKind::from_name("quartz"), None);
        assert_eq!(NvmProfile::parse("flash"), None);
    }

    #[test]
    fn reduced_matrix_covers_the_whole_policy_registry() {
        // Registry exhaustiveness: a policy added to `unimem::policy`
        // without sweep wiring must fail loudly, not vanish from the
        // matrix. (The runner's exhaustive match is the compile-time
        // half of this guard.)
        assert_eq!(SweepConfig::reduced().policies, PolicyKind::ALL.to_vec());
        assert_eq!(SweepConfig::full().policies, PolicyKind::ALL.to_vec());
    }

    #[test]
    fn matrix_sizes() {
        // Reduced: 4 ranks at 1 and 2 ranks per node.
        assert_eq!(SweepConfig::reduced().n_cells(), 7 * 6 * 2 * 2);
        // Full: layouts = r1×{1} + r4×{1,2,4} + r8×{1,2,4} = 7 pairs.
        assert_eq!(SweepConfig::full().n_cells(), 7 * 6 * 5 * 7);
        // Co-run cells: tenants × arbitration policies × profiles.
        assert_eq!(SweepConfig::reduced().n_corun_cells(), 2 * 3 * 2);
        assert_eq!(SweepConfig::full().n_corun_cells(), (2 + 2 + 3) * 3 * 5);
    }

    #[test]
    fn topology_names_round_trip() {
        let specs = [
            TopologySpec::Flat,
            TopologySpec::Nodes { count: 16 },
            TopologySpec::Mixed {
                profiles: vec![NvmProfile::BwHalf, NvmProfile::Pcram],
            },
        ];
        for t in specs {
            assert_eq!(
                TopologySpec::parse(&t.name()),
                Some(t.clone()),
                "{}",
                t.name()
            );
        }
        assert_eq!(
            TopologySpec::Nodes { count: 16 }.name(),
            "nodes16".to_string()
        );
        assert_eq!(
            TopologySpec::Mixed {
                profiles: vec![NvmProfile::BwHalf, NvmProfile::Pcram]
            }
            .name(),
            "mixed:bw-half+pcram".to_string()
        );
        assert_eq!(TopologySpec::parse("nodes0"), None);
        assert_eq!(TopologySpec::parse("torus"), None);
        assert_eq!(TopologySpec::parse("mixed:flash"), None);
    }

    #[test]
    fn clustered_topologies_attach_to_one_rank_per_node_rows_only() {
        let four_nodes = TopologySpec::Nodes { count: 4 };
        assert!(four_nodes.applies_to(NvmProfile::BwHalf, 8, 1));
        assert!(!four_nodes.applies_to(NvmProfile::BwHalf, 8, 2));
        // A room with more nodes than ranks would leave nodes empty: skip.
        assert!(!four_nodes.applies_to(NvmProfile::BwHalf, 2, 1));
        // Mixed rooms ride only their first profile's rows.
        let mixed = TopologySpec::Mixed {
            profiles: vec![NvmProfile::BwHalf, NvmProfile::Pcram],
        };
        assert!(mixed.applies_to(NvmProfile::BwHalf, 4, 1));
        assert!(!mixed.applies_to(NvmProfile::Pcram, 4, 1));
        assert_eq!(mixed.slots_for(5), 3);
        assert_eq!(four_nodes.slots_for(8), 2);
    }

    #[test]
    fn topology_axis_multiplies_only_applicable_rows() {
        let mut cfg = SweepConfig::reduced();
        let flat_cells = cfg.n_cells();
        cfg.topologies.push(TopologySpec::Nodes { count: 4 });
        // The 4-node room attaches to the (4, 1) layout only, on both
        // profiles: + workloads × policies × profiles cells.
        assert_eq!(cfg.n_cells(), flat_cells + 7 * 6 * 2);
        cfg.topologies.push(TopologySpec::Mixed {
            profiles: vec![NvmProfile::BwHalf, NvmProfile::Lat4x],
        });
        // The mixed room rides bw-half rows only: one more (4, 1) row.
        assert_eq!(cfg.n_cells(), flat_cells + 7 * 6 * 2 + 7 * 6);
        // Dedup removes repeated rooms.
        cfg.topologies.push(TopologySpec::Nodes { count: 4 });
        cfg.normalize_axes();
        assert_eq!(cfg.topologies.len(), 3);
        assert_eq!(cfg.n_cells(), flat_cells + 7 * 6 * 2 + 7 * 6);
    }

    #[test]
    fn rank_layouts_skip_overfull_nodes() {
        let mut cfg = SweepConfig::reduced();
        cfg.ranks = vec![1, 4];
        cfg.ranks_per_node = vec![1, 2, 8];
        assert_eq!(cfg.rank_layouts(), [(1, 1), (4, 1), (4, 2)]);
    }

    #[test]
    fn corun_runs_at_the_largest_rank_count() {
        assert_eq!(SweepConfig::reduced().corun_ranks(), Some(4));
        assert_eq!(SweepConfig::full().corun_ranks(), Some(8));
        let mut cfg = SweepConfig::reduced();
        cfg.ranks.clear();
        assert_eq!(cfg.corun_ranks(), None);
        assert_eq!(cfg.n_corun_cells(), 0);
    }

    #[test]
    fn normalize_axes_dedups_coruns_and_arbiters() {
        let mut cfg = SweepConfig::reduced();
        cfg.coruns.extend(cfg.coruns.clone());
        cfg.arbiters.push(ArbiterPolicy::FairShare);
        cfg.normalize_axes();
        assert_eq!(cfg.coruns.len(), 1);
        assert_eq!(cfg.arbiters.len(), 3);
    }

    #[test]
    fn anchor_profiles_track_dram_technology_rows_do_not() {
        assert!(NvmProfile::BwHalf.tracks_dram());
        assert!(NvmProfile::Lat4x.tracks_dram());
        assert!(!NvmProfile::Pcram.tracks_dram());
        assert!(!NvmProfile::ReRam.supports_drift_win());
    }

    #[test]
    fn machines_differ_from_dram() {
        for p in NvmProfile::ALL {
            let m = p.machine();
            assert!(
                m.nvm != m.dram,
                "{}: NVM must be distinguishable from DRAM",
                p.name()
            );
        }
    }
}
