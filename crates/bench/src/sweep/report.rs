//! `BENCH_sweep.json` emission: a deterministic, machine-readable form of
//! a [`SweepReport`].
//!
//! Schema (`unimem-bench-sweep/v5`):
//!
//! ```text
//! {
//!   "schema":    "unimem-bench-sweep/v5",
//!   "class":     "C",
//!   "workloads": ["CG", ...],
//!   "policies":  ["unimem", ...],
//!   "profiles":  ["bw-half", ...],
//!   "ranks":     [4, ...],
//!   "ranks_per_node": [1, 2, ...],
//!   "topologies": ["flat", "nodes16", ...],   // only off the flat default
//!   "mixes":     ["CG+FT", ...],
//!   "arbiters":  ["fair-share", ...],
//!   "n_cells":   112,
//!   "n_corun_cells": 6,
//!   "cells": [
//!     {
//!       "workload": "CG", "full_name": "CG.C",
//!       "policy": "unimem", "profile": "bw-half",
//!       "nranks": 4, "ranks_per_node": 2,
//!       "topology": "nodes16",                // only on clustered cells
//!       "time_s": ..., "normalized_to_dram": ...,
//!       "plan_kind": "global"|"local"|null,
//!       "migration_count": ..., "migrated_bytes": ...,
//!       "overlap_pct": <pct>|null,
//!       "contention_time_s": ..., "neighbor_contention_time_s": ...,
//!       "pure_runtime_cost": ..., "reprofiles": ...,
//!       "run": { <full RunReport: job + per-rank stats> }
//!     }, ...
//!   ],
//!   "corun_cells": [
//!     {
//!       "mix": "CG+FT", "workload": "CG", "tenant": "CG",
//!       "weight": 4, "start_epoch": 0,
//!       "arbiter": "priority", "profile": "bw-half", "nranks": 4,
//!       "time_s": ..., "solo_time_s": ..., "slowdown": ...,
//!       "lease_min": ..., "lease_max": ..., "lease_replans": ...,
//!       "run": { <full co-run RunReport> }
//!     }, ...
//!   ]
//! }
//! ```
//!
//! v5 adds the cluster-topology axis: a `topologies` list and a per-cell
//! `topology` name, both emitted **only when clustered rooms are
//! configured** — a sweep of the default flat world serializes exactly
//! as v4 did apart from the schema tag, so the committed golden needed a
//! tag bump and nothing else. Clustered cells run the hierarchical
//! collective path (`unimem::exec::run_workload_clustered`) and
//! normalize against a DRAM-only baseline in the same machine room.
//!
//! v4 widens the `policies` axis to the full placement-policy registry
//! (`unimem::policy::PolicyId`): two new entries, `online-guidance`
//! (interval-sampled hotness promotion, Olson et al.) and `hw-cache`
//! (hardware-managed DRAM cache over NVM, Wen et al.). No per-cell
//! field changed — a v3 reader that ignores unknown policy names can
//! read a v4 report.
//!
//! v3 adds the shared-bandwidth contention axis: a `ranks_per_node` axis
//! list, per-cell `ranks_per_node`, and per-cell contention stats
//! (`contention_time_s`, `neighbor_contention_time_s` — extra compute
//! time from helper traffic sharing the tier pools, total and the
//! neighbor-caused portion). `overlap_pct` became nullable: a run that
//! never migrated reports `null`, not a vacuous `100`.
//!
//! v2 added the multi-tenant co-run section (`mixes`, `arbiters`,
//! `n_corun_cells`, `corun_cells[]`): per-tenant slowdown vs. solo under
//! each arbitration policy, with the lease range the arbiter granted.
//!
//! Identical sweeps serialize to byte-identical text (insertion-ordered
//! members, shortest-round-trip floats); the determinism conformance
//! check compares these bytes across repeated multi-threaded runs.

use crate::sweep::matrix::TopologySpec;
use crate::sweep::runner::{CorunCell, SweepCell, SweepReport};
use std::io;
use std::path::Path;
use unimem_sim::Json;

/// The schema tag written to `BENCH_sweep.json`.
pub const SCHEMA: &str = "unimem-bench-sweep/v5";

impl SweepCell {
    /// Deterministic JSON form of one single-tenant cell.
    pub fn to_json(&self) -> Json {
        let job = &self.report.job;
        let mut o = Json::obj();
        o.push("workload", self.workload.as_str())
            .push("full_name", self.full_name.as_str())
            .push("policy", self.policy.name())
            .push("profile", self.profile.name())
            .push("nranks", self.nranks)
            .push("ranks_per_node", self.ranks_per_node);
        // Clustered cells name their room; flat cells keep the exact v4
        // byte shape.
        if self.topology != TopologySpec::Flat {
            o.push("topology", self.topology.name());
        }
        o.push("time_s", self.time_s())
            .push("normalized_to_dram", self.normalized_to_dram)
            .push("plan_kind", self.report.plan_kind_json())
            .push("migration_count", job.migration_count())
            .push("migrated_bytes", job.migrated_bytes())
            .push("overlap_pct", job.overlap_pct())
            .push("contention_time_s", job.contention_time)
            .push("neighbor_contention_time_s", job.neighbor_contention_time)
            .push("pure_runtime_cost", job.pure_runtime_cost())
            .push("reprofiles", job.reprofiles)
            .push("run", self.report.to_json());
        o
    }
}

impl CorunCell {
    /// Deterministic JSON form of one per-tenant co-run cell.
    pub fn to_json(&self) -> Json {
        let job = &self.report.job;
        let mut o = Json::obj();
        o.push("mix", self.mix.as_str())
            .push("workload", self.workload.as_str())
            .push("tenant", self.tenant.as_str())
            .push("weight", u64::from(self.weight))
            .push("start_epoch", self.start_epoch)
            .push("arbiter", self.arbiter.name())
            .push("profile", self.profile.name())
            .push("nranks", self.nranks)
            .push("time_s", self.time_s())
            .push("solo_time_s", self.solo_time_s)
            .push("slowdown", self.slowdown)
            .push("lease_min", self.lease_min)
            .push("lease_max", self.lease_max)
            .push("lease_replans", job.lease_replans)
            .push("run", self.report.to_json());
        o
    }
}

impl SweepReport {
    /// Deterministic JSON form of the whole sweep (schema above).
    pub fn to_json(&self) -> Json {
        let cfg = &self.config;
        let strings = |v: Vec<&str>| Json::Arr(v.into_iter().map(Json::from).collect());
        let mut o = Json::obj();
        o.push("schema", SCHEMA)
            .push("class", cfg.class.name())
            .push(
                "workloads",
                strings(cfg.workloads.iter().map(String::as_str).collect()),
            )
            .push(
                "policies",
                strings(cfg.policies.iter().map(|p| p.name()).collect()),
            )
            .push(
                "profiles",
                strings(cfg.profiles.iter().map(|p| p.name()).collect()),
            )
            .push(
                "ranks",
                Json::Arr(cfg.ranks.iter().map(|&r| Json::from(r)).collect()),
            )
            .push(
                "ranks_per_node",
                Json::Arr(cfg.ranks_per_node.iter().map(|&r| Json::from(r)).collect()),
            );
        // The topology axis appears only when clustered rooms are
        // configured, so a default (flat-only) sweep's report differs
        // from v4 by the schema tag alone.
        if cfg.topologies != [TopologySpec::Flat] {
            o.push(
                "topologies",
                Json::Arr(
                    cfg.topologies
                        .iter()
                        .map(|t| Json::from(t.name()))
                        .collect(),
                ),
            );
        }
        o.push(
            "mixes",
            Json::Arr(cfg.coruns.iter().map(|m| Json::from(m.label())).collect()),
        )
        .push(
            "arbiters",
            strings(cfg.arbiters.iter().map(|a| a.name()).collect()),
        )
        .push("n_cells", self.cells.len())
        .push("n_corun_cells", self.corun_cells.len())
        .push(
            "cells",
            Json::Arr(self.cells.iter().map(SweepCell::to_json).collect()),
        )
        .push(
            "corun_cells",
            Json::Arr(self.corun_cells.iter().map(CorunCell::to_json).collect()),
        );
        o
    }

    /// Write the pretty JSON form to `path`.
    pub fn write_json(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, self.to_json().to_pretty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::matrix::{NvmProfile, PolicyKind, SweepConfig};
    use crate::sweep::runner::run_sweep;
    use unimem_workloads::Class;

    fn micro_cfg() -> SweepConfig {
        SweepConfig {
            class: Class::C,
            workloads: vec!["LU".into()],
            policies: vec![
                PolicyKind::DramOnly,
                PolicyKind::NvmOnly,
                PolicyKind::Unimem,
            ],
            profiles: vec![NvmProfile::BwHalf],
            ranks: vec![2],
            ranks_per_node: vec![1],
            topologies: vec![TopologySpec::Flat],
            dram_capacity: None,
            coruns: vec![],
            arbiters: vec![],
        }
    }

    fn micro_report() -> SweepReport {
        run_sweep(&micro_cfg()).unwrap()
    }

    #[test]
    fn json_has_schema_axes_and_cells() {
        let j = micro_report().to_json();
        assert_eq!(j.get("schema").and_then(Json::as_str), Some(SCHEMA));
        assert_eq!(j.get("class").and_then(Json::as_str), Some("C"));
        assert_eq!(j.get("n_cells").and_then(Json::as_f64), Some(3.0));
        let cells = j.get("cells").and_then(Json::as_arr).unwrap();
        assert_eq!(cells.len(), 3);
        for c in cells {
            assert!(c.get("time_s").and_then(Json::as_f64).unwrap() > 0.0);
            assert!(c.get("run").and_then(|r| r.get("job")).is_some());
            assert!(c.get("normalized_to_dram").and_then(Json::as_f64).is_some());
        }
    }

    #[test]
    fn topology_keys_appear_only_off_the_flat_default() {
        // Flat-only sweep: no topology keys anywhere (v4 byte shape).
        let flat = micro_report().to_json();
        assert!(flat.get("topologies").is_none());
        for c in flat.get("cells").and_then(Json::as_arr).unwrap() {
            assert!(c.get("topology").is_none());
        }
        // Clustered rooms turn both keys on, but flat cells stay bare.
        let mut cfg = micro_cfg();
        cfg.topologies.push(TopologySpec::Nodes { count: 2 });
        let j = run_sweep(&cfg).unwrap().to_json();
        let axis = j.get("topologies").and_then(Json::as_arr).unwrap();
        assert_eq!(axis.len(), 2);
        assert_eq!(axis[1].as_str(), Some("nodes2"));
        let cells = j.get("cells").and_then(Json::as_arr).unwrap();
        assert_eq!(cells.len(), 6);
        let named: Vec<Option<&str>> = cells
            .iter()
            .map(|c| c.get("topology").and_then(Json::as_str))
            .collect();
        assert_eq!(
            named,
            [
                None,
                None,
                None,
                Some("nodes2"),
                Some("nodes2"),
                Some("nodes2")
            ]
        );
    }

    #[test]
    fn serialization_is_byte_identical_across_sweeps() {
        let a = micro_report().to_json().to_pretty();
        let b = micro_report().to_json().to_pretty();
        assert_eq!(a, b);
    }
}
