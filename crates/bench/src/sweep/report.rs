//! `BENCH_sweep.json` emission: a deterministic, machine-readable form of
//! a [`SweepReport`].
//!
//! Schema (`unimem-bench-sweep/v1`):
//!
//! ```text
//! {
//!   "schema":    "unimem-bench-sweep/v1",
//!   "class":     "C",
//!   "workloads": ["CG", ...],
//!   "policies":  ["unimem", ...],
//!   "profiles":  ["bw-half", ...],
//!   "ranks":     [4, ...],
//!   "n_cells":   56,
//!   "cells": [
//!     {
//!       "workload": "CG", "full_name": "CG.C",
//!       "policy": "unimem", "profile": "bw-half", "nranks": 4,
//!       "time_s": ..., "normalized_to_dram": ...,
//!       "plan_kind": "global"|"local"|null,
//!       "migration_count": ..., "migrated_bytes": ...,
//!       "overlap_pct": ..., "pure_runtime_cost": ..., "reprofiles": ...,
//!       "run": { <full RunReport: job + per-rank stats> }
//!     }, ...
//!   ]
//! }
//! ```
//!
//! Identical sweeps serialize to byte-identical text (insertion-ordered
//! members, shortest-round-trip floats); the determinism conformance
//! check compares these bytes across repeated multi-threaded runs.

use crate::sweep::runner::{SweepCell, SweepReport};
use std::io;
use std::path::Path;
use unimem_sim::Json;

pub const SCHEMA: &str = "unimem-bench-sweep/v1";

impl SweepCell {
    pub fn to_json(&self) -> Json {
        let job = &self.report.job;
        let mut o = Json::obj();
        o.push("workload", self.workload.as_str())
            .push("full_name", self.full_name.as_str())
            .push("policy", self.policy.name())
            .push("profile", self.profile.name())
            .push("nranks", self.nranks)
            .push("time_s", self.time_s())
            .push("normalized_to_dram", self.normalized_to_dram)
            .push("plan_kind", self.report.plan_kind_json())
            .push("migration_count", job.migration_count())
            .push("migrated_bytes", job.migrated_bytes())
            .push("overlap_pct", job.overlap_pct())
            .push("pure_runtime_cost", job.pure_runtime_cost())
            .push("reprofiles", job.reprofiles)
            .push("run", self.report.to_json());
        o
    }
}

impl SweepReport {
    pub fn to_json(&self) -> Json {
        let cfg = &self.config;
        let strings = |v: Vec<&str>| Json::Arr(v.into_iter().map(Json::from).collect());
        let mut o = Json::obj();
        o.push("schema", SCHEMA)
            .push("class", cfg.class.name())
            .push(
                "workloads",
                strings(cfg.workloads.iter().map(String::as_str).collect()),
            )
            .push(
                "policies",
                strings(cfg.policies.iter().map(|p| p.name()).collect()),
            )
            .push(
                "profiles",
                strings(cfg.profiles.iter().map(|p| p.name()).collect()),
            )
            .push(
                "ranks",
                Json::Arr(cfg.ranks.iter().map(|&r| Json::from(r)).collect()),
            )
            .push("n_cells", self.cells.len())
            .push(
                "cells",
                Json::Arr(self.cells.iter().map(SweepCell::to_json).collect()),
            );
        o
    }

    /// Write the pretty JSON form to `path`.
    pub fn write_json(&self, path: &Path) -> io::Result<()> {
        std::fs::write(path, self.to_json().to_pretty())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sweep::matrix::{NvmProfile, PolicyKind, SweepConfig};
    use crate::sweep::runner::run_sweep;
    use unimem_workloads::Class;

    fn micro_report() -> SweepReport {
        run_sweep(&SweepConfig {
            class: Class::C,
            workloads: vec!["LU".into()],
            policies: vec![PolicyKind::DramOnly, PolicyKind::NvmOnly, PolicyKind::Unimem],
            profiles: vec![NvmProfile::BwHalf],
            ranks: vec![2],
            dram_capacity: None,
        })
        .unwrap()
    }

    #[test]
    fn json_has_schema_axes_and_cells() {
        let j = micro_report().to_json();
        assert_eq!(j.get("schema").and_then(Json::as_str), Some(SCHEMA));
        assert_eq!(j.get("class").and_then(Json::as_str), Some("C"));
        assert_eq!(j.get("n_cells").and_then(Json::as_f64), Some(3.0));
        let cells = j.get("cells").and_then(Json::as_arr).unwrap();
        assert_eq!(cells.len(), 3);
        for c in cells {
            assert!(c.get("time_s").and_then(Json::as_f64).unwrap() > 0.0);
            assert!(c.get("run").and_then(|r| r.get("job")).is_some());
            assert!(c.get("normalized_to_dram").and_then(Json::as_f64).is_some());
        }
    }

    #[test]
    fn serialization_is_byte_identical_across_sweeps() {
        let a = micro_report().to_json().to_pretty();
        let b = micro_report().to_json().to_pretty();
        assert_eq!(a, b);
    }
}
