//! Cross-phase data-dependency table and migration trigger points (Fig. 5).
//!
//! To migrate object `a` for phase `i` without violating correctness, the
//! copy must not run while the application reads or writes `a`. The paper
//! finds the latest earlier phase `j−1` that references `a`; the migration
//! may trigger at the beginning of phase `j`, and the application time
//! between `j` and `i` is the overlap window (`mem_comp_overlap` of Eq. 4).
//!
//! The reference table is the directive-based form the paper falls back to
//! (§3.3): workloads declare which units each phase references. Phases are
//! cyclic — iteration `n`'s phase 0 follows iteration `n−1`'s last phase —
//! and the trigger search walks backwards across the iteration boundary.

use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use unimem_hms::object::UnitId;
use unimem_mpi::PhaseId;
use unimem_sim::VDur;

/// Which units each phase of the iteration references.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PhaseRefTable {
    /// `refs[p]` = units referenced by phase `p` (compute or comm).
    refs: Vec<BTreeSet<UnitId>>,
}

/// The migration window for one (unit, use-phase) pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TriggerWindow {
    /// Phase at whose beginning the migration may start.
    pub trigger: PhaseId,
    /// Number of whole phases strictly between trigger and use that the
    /// copy can overlap with (use-phase not included).
    pub overlap_phases: u32,
}

impl PhaseRefTable {
    pub fn new(n_phases: usize) -> PhaseRefTable {
        PhaseRefTable {
            refs: vec![BTreeSet::new(); n_phases],
        }
    }

    pub fn n_phases(&self) -> usize {
        self.refs.len()
    }

    pub fn add_ref(&mut self, phase: PhaseId, unit: UnitId) {
        self.refs[phase.0 as usize].insert(unit);
    }

    pub fn references(&self, phase: PhaseId, unit: UnitId) -> bool {
        self.refs[phase.0 as usize].contains(&unit)
    }

    pub fn units_of(&self, phase: PhaseId) -> impl Iterator<Item = UnitId> + '_ {
        self.refs[phase.0 as usize].iter().copied()
    }

    /// All phases (in id order) that reference `unit`.
    pub fn phases_referencing(&self, unit: UnitId) -> Vec<PhaseId> {
        (0..self.refs.len() as u32)
            .map(PhaseId)
            .filter(|&p| self.references(p, unit))
            .collect()
    }

    /// Earliest dependency-safe trigger for migrating `unit` in time for
    /// `use_phase` (Fig. 5): walk backwards from `use_phase`; the first
    /// phase found referencing `unit` ends the window. Cyclic across the
    /// iteration boundary. If no other phase references the unit, the
    /// window is the whole rest of the iteration (trigger right after the
    /// use phase of the previous iteration).
    pub fn trigger_for(&self, unit: UnitId, use_phase: PhaseId) -> TriggerWindow {
        let n = self.refs.len() as u32;
        assert!(n > 0 && use_phase.0 < n);
        // Walk back up to n-1 phases.
        for back in 1..n {
            let p = (use_phase.0 + n - back) % n;
            if self.refs[p as usize].contains(&unit) {
                // Phase p references it; trigger at the next phase.
                return TriggerWindow {
                    trigger: PhaseId((p + 1) % n),
                    overlap_phases: back - 1,
                };
            }
        }
        TriggerWindow {
            trigger: PhaseId((use_phase.0 + 1) % n),
            overlap_phases: n - 1,
        }
    }

    /// Overlap window duration: sum of the phase durations the copy can
    /// hide behind, given per-phase times (indexed by phase id).
    pub fn overlap_time(&self, unit: UnitId, use_phase: PhaseId, phase_times: &[VDur]) -> VDur {
        assert_eq!(phase_times.len(), self.refs.len());
        let w = self.trigger_for(unit, use_phase);
        let n = self.refs.len() as u32;
        let mut total = VDur::ZERO;
        for k in 0..w.overlap_phases {
            let p = (w.trigger.0 + k) % n;
            total += phase_times[p as usize];
        }
        total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unimem_hms::object::ObjId;

    fn unit(n: u32) -> UnitId {
        UnitId::whole(ObjId(n))
    }

    /// The paper's Fig. 5 shape: phases ... j-1 (refs a), j, ..., i (uses a).
    fn fig5_table() -> PhaseRefTable {
        // 5 phases; `a`=unit(0) referenced in phase 1 and phase 4.
        let mut t = PhaseRefTable::new(5);
        t.add_ref(PhaseId(1), unit(0));
        t.add_ref(PhaseId(4), unit(0));
        // another object referenced everywhere.
        for p in 0..5 {
            t.add_ref(PhaseId(p), unit(1));
        }
        t
    }

    #[test]
    fn trigger_is_right_after_last_reference() {
        let t = fig5_table();
        // Migrating unit0 for phase 4: last earlier ref is phase 1 → trigger
        // at phase 2, overlapping phases 2 and 3.
        let w = t.trigger_for(unit(0), PhaseId(4));
        assert_eq!(w.trigger, PhaseId(2));
        assert_eq!(w.overlap_phases, 2);
    }

    #[test]
    fn hot_unit_has_no_window() {
        let t = fig5_table();
        // unit1 referenced in every phase: migrating for phase 3 can only
        // trigger at phase 3 itself (previous phase references it).
        let w = t.trigger_for(unit(1), PhaseId(3));
        assert_eq!(w.trigger, PhaseId(3));
        assert_eq!(w.overlap_phases, 0);
    }

    #[test]
    fn window_wraps_across_iterations() {
        let t = fig5_table();
        // Migrating unit0 for phase 1: walking back 1→0, then wraps to 4
        // which references it → trigger at phase 0, overlap = phase 0 only.
        let w = t.trigger_for(unit(0), PhaseId(1));
        assert_eq!(w.trigger, PhaseId(0));
        assert_eq!(w.overlap_phases, 1);
    }

    #[test]
    fn unreferenced_elsewhere_gets_full_cycle() {
        let mut t = PhaseRefTable::new(4);
        t.add_ref(PhaseId(2), unit(7));
        let w = t.trigger_for(unit(7), PhaseId(2));
        assert_eq!(w.trigger, PhaseId(3));
        assert_eq!(w.overlap_phases, 3);
    }

    #[test]
    fn overlap_time_sums_window_phases() {
        let t = fig5_table();
        let times: Vec<VDur> = (1..=5).map(|i| VDur::from_millis(i as f64)).collect();
        // unit0 for phase 4: window covers phases 2 and 3 → 3ms + 4ms.
        let o = t.overlap_time(unit(0), PhaseId(4), &times);
        assert!((o.millis() - 7.0).abs() < 1e-9);
        // unit1 for phase 3: no window.
        assert_eq!(t.overlap_time(unit(1), PhaseId(3), &times), VDur::ZERO);
    }

    #[test]
    fn phases_referencing_lists_in_order() {
        let t = fig5_table();
        assert_eq!(t.phases_referencing(unit(0)), vec![PhaseId(1), PhaseId(4)]);
        assert_eq!(t.phases_referencing(unit(9)), Vec::<PhaseId>::new());
    }
}
