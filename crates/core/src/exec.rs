//! The execution driver: runs a [`Workload`] under a placement [`Policy`]
//! on a machine model and reports virtual times plus runtime statistics.
//!
//! A workload is a *phase script*: per rank and iteration, a sequence of
//! steps — computation (with per-object access descriptors at class scale)
//! or communication. The driver replays the script, computing ground-truth
//! phase times from the cache model and tier parameters under the
//! *current* placement. Placement itself is a
//! [`crate::policy::PlacementPolicy`]: the driver calls the same
//! lifecycle hooks for every policy (iteration begin, phase begin,
//! observe, iteration end), and the policy's [`crate::policy::TierView`]
//! is what the timing model charges. The Unimem implementation manages
//! placement exactly as §3.1 prescribes: profile the first iteration,
//! decide at its end, enforce thereafter, re-profile on variation.
//!
//! Execution is segmented and bulk-synchronous: each rank is a movable
//! `RankTask` that runs to its next communication step on a bounded
//! worker pool ([`unimem_sim::run_pool`]), and a serial resolver computes
//! the synchronized departure clocks — so a 256-rank topology costs a
//! handful of OS threads, not 256. The output is byte-identical to the
//! historical thread-per-rank rendezvous driver: the bandwidth ledger's
//! fence-visibility rule makes every cross-rank read a pure function of
//! virtual program order, and collective departure times depend only on
//! the entry clocks.
//!
//! Runs either target one flat machine config ([`run_workload`], the
//! legacy single-node path every paper experiment uses) or an explicit
//! [`ClusterTopology`] ([`run_workload_clustered`]): per-node tier
//! parameters, hierarchical collectives, and inter-node traffic charged
//! on the per-node link channels.
//!
//! Every figure in the paper is a ratio of the run times this driver
//! produces under different policies and machine configurations.

use crate::policy::{PlacementPolicy, RankInit, RankState, StepEnv, TierView};
use crate::search::SearchKind;
use crate::stats::RunStats;
use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::Mutex;
use unimem_cache::{CacheModel, ObjAccess};
use unimem_hms::contention::{BwClient, FlowScope, SharedBandwidth};
use unimem_hms::journal::{DurabilityMode, Journal, JournalHandle, JournalStats, ObsUnit, Record};
use unimem_hms::object::{ObjectRegistry, ObjectSpec, UnitId};
use unimem_hms::tier::{AccessMix, TierKind, TierParams};
use unimem_hms::topology::ClusterTopology;
use unimem_hms::{DramService, MachineConfig};
use unimem_mpi::{
    collective_timing, CollectiveKind, NetParams, PhaseId, PhaseTracker, RankClock, RankPlacement,
};
use unimem_perf::sampler::GroundTruth;
use unimem_sim::{default_workers, run_pool, run_pool_mut, Bytes, Channel, VDur, VTime};

pub use crate::policy::{Policy, UnimemConfig};

/// A computation phase of the script.
#[derive(Debug, Clone, PartialEq)]
pub struct ComputeSpec {
    /// Phase label (the paper's kernel names: "sweep", "pressure-solve").
    pub label: &'static str,
    /// Pure CPU time, independent of data placement.
    pub cpu: VDur,
    /// Class-scale access descriptors for the target objects it touches.
    pub accesses: Vec<ObjAccess>,
}

/// One step of a rank's per-iteration script. Each step is one phase
/// (computation, or a blocking communication operation).
#[derive(Debug, Clone, PartialEq)]
pub enum StepSpec {
    /// A computation phase with per-object access descriptors.
    Compute(ComputeSpec),
    /// `MPI_Barrier`.
    Barrier,
    /// `MPI_Allreduce` (sum) of `bytes` per rank.
    AllreduceSum {
        /// Payload contributed by each rank.
        bytes: Bytes,
    },
    /// `MPI_Bcast` of `bytes` from rank 0.
    Bcast {
        /// Broadcast payload.
        bytes: Bytes,
    },
    /// `MPI_Alltoall` with `bytes` per pair.
    Alltoall {
        /// Per-pair payload.
        bytes: Bytes,
    },
    /// Nearest-neighbour exchange: eager sends then waits (one phase).
    Halo {
        /// Peer ranks exchanged with.
        neighbors: Vec<usize>,
        /// Per-neighbour payload.
        bytes: Bytes,
    },
}

/// A phase-structured iterative application.
pub trait Workload: Sync {
    /// Display name, including the class ("CG.C").
    fn name(&self) -> String;
    /// Target data objects of one rank (Table 3), in registration order —
    /// `ObjId(k)` is the k-th spec returned here.
    fn objects(&self, rank: usize, nranks: usize) -> Vec<ObjectSpec>;
    /// The per-iteration phase script. The *structure* (step kinds and
    /// order) must not vary across iterations; access volumes may.
    fn script(&self, rank: usize, nranks: usize, iter: usize) -> Vec<StepSpec>;
    /// Main-loop iterations to simulate.
    fn iterations(&self) -> usize;
}

/// Per-iteration DRAM lease for one run: the *node* byte budget the
/// placement pipeline may use during each iteration.
///
/// The capacity a Unimem instance hands its knapsack was historically a
/// constant read off the machine config. Under multi-tenant arbitration
/// (see [`crate::tenancy`] and `unimem_hms::arbiter`) it is a *leased*
/// quantity that moves at iteration boundaries: when the arbiter revokes
/// budget the runtime must re-run placement and evict, and when budget
/// arrives it may re-plan to use it. Iterations beyond the last entry
/// hold the final value, so a schedule is also the natural encoding of
/// "co-runner finished, keep the reclaimed DRAM".
///
/// ```
/// use unimem::exec::CapacitySchedule;
/// use unimem_sim::Bytes;
///
/// let lease = CapacitySchedule::from_epochs(vec![
///     Bytes::mib(128), // co-runner active: half the node
///     Bytes::mib(128),
///     Bytes::mib(256), // co-runner finished: full node from iter 2 on
/// ])
/// .unwrap();
/// assert_eq!(lease.at(1), Bytes::mib(128));
/// assert_eq!(lease.at(10), Bytes::mib(256));
/// assert_eq!(lease.peak(), Bytes::mib(256));
/// assert!(!lease.is_constant());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CapacitySchedule {
    per_iter: Vec<Bytes>,
}

impl CapacitySchedule {
    /// The classic single-tenant lease: the whole budget, every iteration.
    pub fn constant(budget: Bytes) -> CapacitySchedule {
        CapacitySchedule {
            per_iter: vec![budget],
        }
    }

    /// A lease that changes at iteration boundaries; the last entry
    /// extends to every later iteration. Errors on an empty schedule.
    pub fn from_epochs(per_iter: Vec<Bytes>) -> Result<CapacitySchedule, String> {
        if per_iter.is_empty() {
            return Err("capacity schedule must cover at least one iteration".into());
        }
        Ok(CapacitySchedule { per_iter })
    }

    /// The node budget leased during iteration `it`.
    pub fn at(&self, it: usize) -> Bytes {
        self.per_iter[it.min(self.per_iter.len() - 1)]
    }

    /// The largest budget the schedule ever grants (sizes the DRAM
    /// service and the partitioner's chunk bound).
    pub fn peak(&self) -> Bytes {
        self.per_iter.iter().copied().max().unwrap_or(Bytes::ZERO)
    }

    /// True when every iteration holds the same budget (the
    /// single-tenant fast path: no lease re-plans can ever fire).
    pub fn is_constant(&self) -> bool {
        self.per_iter.windows(2).all(|w| w[0] == w[1])
    }

    /// The raw per-epoch entries (reports serialize these).
    pub fn epochs(&self) -> &[Bytes] {
        &self.per_iter
    }
}

/// Result of one job run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Workload display name ("CG.C").
    pub workload: String,
    /// Policy label ("Unimem", "DRAM-only", ...).
    pub policy: String,
    /// Per-rank statistics, in rank order.
    pub per_rank: Vec<RunStats>,
    /// Job-level merge: max times, summed counters.
    pub job: RunStats,
    /// Which search won (rank 0's decision), for Unimem runs.
    pub plan_kind: Option<SearchKind>,
}

impl RunReport {
    /// Job completion time (slowest rank).
    pub fn time(&self) -> VDur {
        self.job.total_time
    }

    /// The winning plan kind as JSON (`"global"`/`"local"`/`null`), the
    /// one convention every report serializer shares.
    pub fn plan_kind_json(&self) -> unimem_sim::Json {
        match self.plan_kind {
            Some(k) => unimem_sim::Json::from(k.name()),
            None => unimem_sim::Json::Null,
        }
    }

    /// Deterministic JSON form of the whole report: workload, policy, the
    /// winning plan kind, the job-level merge, and every rank's stats in
    /// rank order. Equal reports serialize to byte-identical text — the
    /// determinism regression tests compare these bytes across repeated
    /// multi-threaded runs.
    pub fn to_json(&self) -> unimem_sim::Json {
        use unimem_sim::Json;
        let mut o = Json::obj();
        o.push("workload", self.workload.as_str())
            .push("policy", self.policy.as_str())
            .push("plan_kind", self.plan_kind_json())
            .push("time_s", self.time())
            .push("job", self.job.to_json())
            .push(
                "per_rank",
                Json::Arr(self.per_rank.iter().map(RunStats::to_json).collect()),
            );
        o
    }
}

/// Run `workload` on `nranks` ranks of the machine under `policy`, with
/// the machine's whole DRAM leased for the whole run (the single-tenant
/// case every paper experiment uses).
pub fn run_workload(
    workload: &dyn Workload,
    machine: &MachineConfig,
    cache: &CacheModel,
    nranks: usize,
    policy: &Policy,
) -> RunReport {
    run_workload_leased(
        workload,
        machine,
        cache,
        nranks,
        policy,
        &CapacitySchedule::constant(machine.dram_capacity),
    )
}

/// [`run_workload`] with an explicit DRAM lease: the placement pipeline's
/// capacity input follows `lease` instead of the machine constant. A
/// lease change at an iteration boundary re-runs the placement decision
/// (counted in [`RunStats::lease_replans`]) so revoked budget is evicted
/// and granted budget is used. The multi-tenant co-run driver
/// ([`crate::tenancy::run_corun`]) is the main caller.
///
/// Only a policy that *manages* placement can honour a moving lease
/// ([`PlacementPolicy::supports_moving_lease`]); the fixed policies
/// (DRAM-only, NVM-only, static pins) have nothing to evict with.
/// Passing a non-constant lease with a fixed policy panics rather than
/// silently reporting full-budget performance under a schedule that
/// claims the budget was revoked.
pub fn run_workload_leased(
    workload: &dyn Workload,
    machine: &MachineConfig,
    cache: &CacheModel,
    nranks: usize,
    policy: &Policy,
    lease: &CapacitySchedule,
) -> RunReport {
    run_workload_rig(workload, machine, cache, nranks, policy, lease, None)
}

/// Per-rank compute/comm observations recovered from a durable journal:
/// during a recovery re-run the driver substitutes these for the
/// ground-truth computation (the journal already proved what those
/// phases did), falling back to live execution when the log runs out.
/// Communication steps always execute for real — collectives must
/// rendezvous every rank, and ranks exhaust their logs at different
/// points — so the journaled durations are only verified, never
/// substituted.
pub(crate) struct RankOracle {
    observes: VecDeque<(VDur, Vec<GroundTruth>, PhaseContention)>,
    comms: VecDeque<f64>,
    consumed: u64,
    comm_mismatches: u64,
}

impl RankOracle {
    /// `observes`: per compute phase in journal order — `(phase_time,
    /// truths, (contention_total, contention_neighbors))`. `comms`:
    /// journaled comm durations in seconds, in order.
    pub(crate) fn new(
        observes: Vec<(VDur, Vec<GroundTruth>, (f64, f64))>,
        comms: Vec<f64>,
    ) -> RankOracle {
        RankOracle {
            observes: observes
                .into_iter()
                .map(|(t, g, (total, neighbors))| {
                    (
                        t,
                        g,
                        PhaseContention {
                            total: VDur(total),
                            neighbors: VDur(neighbors),
                        },
                    )
                })
                .collect(),
            comms: comms.into_iter().collect(),
            consumed: 0,
            comm_mismatches: 0,
        }
    }

    fn next_observe(&mut self) -> Option<(VDur, Vec<GroundTruth>, PhaseContention)> {
        let obs = self.observes.pop_front();
        if obs.is_some() {
            self.consumed += 1;
        }
        obs
    }

    /// Bitwise-compare a live comm duration against the journaled one;
    /// any divergence means the replay is not tracking the clean run.
    fn check_comm(&mut self, dt: VDur) {
        if let Some(expect) = self.comms.pop_front() {
            if expect.to_bits() != dt.secs().to_bits() {
                self.comm_mismatches += 1;
            }
        }
    }
}

/// What one rank's journaling produced, handed back to the recovery
/// layer after the run.
pub(crate) struct RankJournalOut {
    pub bytes: Vec<u8>,
    pub stats: JournalStats,
    pub replayed_observes: u64,
    pub comm_mismatches: u64,
}

/// The journaling harness for one run: durability mode in, per-rank
/// oracles in (recovery re-runs only), per-rank journal bytes out.
pub(crate) struct JournalRig {
    pub mode: DurabilityMode,
    pub oracles: Mutex<Vec<Option<RankOracle>>>,
    pub outs: Mutex<Vec<Option<RankJournalOut>>>,
}

impl JournalRig {
    pub(crate) fn new(mode: DurabilityMode, nranks: usize) -> JournalRig {
        JournalRig {
            mode,
            oracles: Mutex::new((0..nranks).map(|_| None).collect()),
            outs: Mutex::new((0..nranks).map(|_| None).collect()),
        }
    }
}

/// [`run_workload_leased`] with an optional journaling rig — the shared
/// implementation for the flat single-machine entry points. Comm timing
/// stays *flat* (every rank rendezvouses as one node), which keeps this
/// path byte-identical to the pre-topology driver (the v4 golden guard
/// pins this); the bandwidth ledger still models `ranks_per_node`-sized
/// bandwidth domains exactly as before.
pub(crate) fn run_workload_rig(
    workload: &dyn Workload,
    machine: &MachineConfig,
    cache: &CacheModel,
    nranks: usize,
    policy: &Policy,
    lease: &CapacitySchedule,
    rig: Option<&JournalRig>,
) -> RunReport {
    let topo = ClusterTopology::homogeneous(machine, nranks);
    // The service is sized for the lease's peak: grants beyond the
    // *current* lease are prevented by the knapsack capacity, and a
    // shrinking lease evicts through the re-plan at the boundary.
    let service = DramService::new(nranks, machine.ranks_per_node, lease.peak());
    let leases = vec![lease.clone(); nranks];
    run_topology_rig(
        workload,
        &topo,
        cache,
        policy,
        leases,
        service,
        RankPlacement::single(nranks),
        NetParams::default(),
        rig,
        None,
    )
}

/// [`run_workload`] with an explicit worker-pool width — the audit entry
/// point for the pooled executor's byte-identity contract: any two
/// worker counts (including the serial `Some(1)`) must produce identical
/// [`RunReport`]s, because rank state only ever interacts at the serial
/// communication resolver. `None` restores the automatic choice (serial
/// at ≤ 8 ranks, the host pool above).
pub fn run_workload_pooled(
    workload: &dyn Workload,
    machine: &MachineConfig,
    cache: &CacheModel,
    nranks: usize,
    policy: &Policy,
    workers: Option<usize>,
) -> RunReport {
    let topo = ClusterTopology::homogeneous(machine, nranks);
    let lease = CapacitySchedule::constant(machine.dram_capacity);
    let service = DramService::new(nranks, machine.ranks_per_node, lease.peak());
    let leases = vec![lease; nranks];
    run_topology_rig(
        workload,
        &topo,
        cache,
        policy,
        leases,
        service,
        RankPlacement::single(nranks),
        NetParams::default(),
        None,
        workers,
    )
}

/// Run `workload` across an explicit [`ClusterTopology`]: every rank
/// lives on the node the topology placed it on, with that node's tier
/// parameters, DRAM slice, calibration, and bandwidth ledger.
/// Collectives reduce hierarchically — intra-node first, then once
/// across the inter-node link — and cross-node traffic (the reduction
/// tree's inter phase, cross-node halo messages) is charged on the
/// per-node link channels, so the link contends like a memory tier.
///
/// Each rank's DRAM lease is its own node's full capacity (the
/// single-tenant case); co-running tenants go through [`crate::tenancy`].
pub fn run_workload_clustered(
    workload: &dyn Workload,
    topo: &ClusterTopology,
    cache: &CacheModel,
    policy: &Policy,
) -> RunReport {
    let service = DramService::from_nodes(topo);
    let leases = (0..topo.nranks())
        .map(|r| CapacitySchedule::constant(topo.machine_of(r).dram_capacity))
        .collect();
    let placement = RankPlacement::from_node_of(topo.node_assignment().to_vec());
    let link = NetParams {
        alpha: topo.spec().link_latency,
        beta: topo.spec().link_bw,
        ..NetParams::default()
    };
    run_topology_rig(
        workload, topo, cache, policy, leases, service, placement, link, None, None,
    )
}

/// The shared executor: build one [`RankTask`] per rank, then run
/// bulk-synchronous rounds — every task advances to its next
/// communication point on the worker pool, the serial resolver computes
/// the synchronized clocks (charging inter-node traffic on the link
/// channels), and the tasks resume.
#[allow(clippy::too_many_arguments)]
fn run_topology_rig(
    workload: &dyn Workload,
    topo: &ClusterTopology,
    cache: &CacheModel,
    policy: &Policy,
    leases: Vec<CapacitySchedule>,
    service: DramService,
    placement: RankPlacement,
    link: NetParams,
    rig: Option<&JournalRig>,
    force_workers: Option<usize>,
) -> RunReport {
    let nranks = topo.nranks();
    let built = policy.build();
    assert!(
        leases.iter().all(CapacitySchedule::is_constant) || built.supports_moving_lease(),
        "a moving DRAM lease requires a placement-managing policy ({} cannot evict)",
        built.label()
    );
    // Per-node shared-bandwidth state: co-located ranks split each tier's
    // node bandwidth, and helper copies are posted here so overlapping
    // compute pays for them.
    let bw = SharedBandwidth::from_topology(topo);
    // Offline calibration happens once per platform, outside the job. It
    // runs against one rank's *share* of its node — the bandwidth the
    // sampled phases actually see — so Eq. 1's peak comparisons stay
    // like-for-like under multi-rank nodes. Distinct (node class,
    // occupancy) pairs see distinct shares, so calibrate once per pair
    // and let each rank pick its node's entry. The call goes through the
    // process-wide memo ([`crate::calib`]), so a sweep running many
    // cells on the same platforms calibrates each one once per process,
    // not once per cell.
    let cals: HashMap<(usize, usize), unimem_perf::Calibration> = match built.sampler_calibration()
    {
        Some((sampler, seed)) => {
            let mut by_key = BTreeMap::new();
            for n in 0..topo.n_nodes() {
                let occ = topo.occupancy(n);
                if occ == 0 {
                    continue;
                }
                by_key
                    .entry((topo.class_of_node(n), occ))
                    .or_insert_with(|| {
                        let machine = &topo.node(n).machine;
                        let mut share = machine.clone();
                        share.dram = machine.rank_share(TierKind::Dram, occ);
                        share.nvm = machine.rank_share(TierKind::Nvm, occ);
                        crate::calib::calibrate_memoized(&share, cache, sampler, seed)
                    });
            }
            by_key.into_iter().collect()
        }
        None => HashMap::new(),
    };

    let net = NetParams::default();
    // Small jobs take the pool's serial fast path; large topologies get a
    // bounded pool instead of one OS thread per rank.
    let workers = force_workers.unwrap_or_else(|| {
        if nranks <= 8 {
            1
        } else {
            default_workers().min(nranks)
        }
    });

    // Build every rank's task (registration, partitioning, initial
    // placement) on the pool — construction never communicates, and the
    // DRAM service's per-rank slots make it order-independent.
    let mut tasks: Vec<RankTask> = run_pool((0..nranks).collect::<Vec<_>>(), workers, |&rank| {
        Ok(RankTask::new(
            rank,
            workload,
            topo,
            cache,
            built.as_ref(),
            &service,
            &bw,
            &leases[rank],
            &cals,
            rig,
        ))
    })
    .unwrap_or_else(|e| panic!("rank setup failed: {e}"));

    // Bulk-synchronous rounds until every rank's script is exhausted.
    // Tasks stay resident in one `Vec` for the whole run: workers claim
    // disjoint indices and advance each task in place (requests
    // reassemble by index, so rank order is preserved) — no per-round
    // `Mutex<Option<_>>` wrappers, no moving task state between rounds.
    loop {
        let reqs = run_pool_mut(&mut tasks, workers, |_, t| Ok(t.advance()))
            .unwrap_or_else(|e| panic!("rank execution failed: {e}"));
        if reqs.iter().all(Option::is_none) {
            break;
        }
        let reqs: Vec<CommRequest> = reqs
            .into_iter()
            .map(|r| r.expect("every rank must reach the same communication steps"))
            .collect();
        resolve_comm(&mut tasks, reqs, &placement, &net, &link);
    }

    let mut job = RunStats::default();
    let mut plan_kind = None;
    let mut per_rank = Vec::with_capacity(nranks);
    for t in tasks {
        let (stats, kind) = t.into_outcome();
        job.merge_job(&stats);
        if plan_kind.is_none() {
            plan_kind = kind;
        }
        per_rank.push(stats);
    }
    RunReport {
        workload: workload.name(),
        policy: built.label().to_string(),
        per_rank,
        job,
        plan_kind,
    }
}

/// Drain virtual time the journal owes (record formatting + NVM
/// flushes) into the rank's clock. No-op without a journal — the
/// non-journaled path never pays a nanosecond.
fn drain_journal(journal: &Option<JournalHandle>, clock: &mut RankClock) {
    if let Some(j) = journal {
        let cost = j.lock().take_cost();
        if !cost.is_zero() {
            clock.advance(cost);
        }
    }
}

/// Borrow the disjoint [`RankTask`] fields a policy hook runs against.
/// A macro rather than a method so the compiler sees the field-level
/// split (a method returning `StepEnv` would lock all of `self`).
macro_rules! env {
    ($t:expr) => {
        StepEnv {
            ctx: &mut $t.clock,
            stats: &mut $t.stats,
            registry: &$t.registry,
            service: $t.service,
            machine: $t.machine,
            lease: $t.lease,
            iterations: $t.iterations,
        }
    };
}

/// Where a paused [`RankTask`] resumes inside its script.
#[derive(Clone, Copy)]
enum Pos {
    /// About to begin iteration `it` (the run ends at `it == iterations`).
    IterBegin { it: usize },
    /// About to run step `idx` of iteration `it`.
    Step { it: usize, idx: usize },
    /// Communication step `idx` was resolved; the clock already holds the
    /// departure time, post-comm bookkeeping is still owed.
    AfterComm {
        it: usize,
        idx: usize,
        phase: PhaseId,
        t0: VTime,
    },
    /// Script exhausted, outcome recorded.
    Done,
}

/// The communication step one rank paused on, handed to the serial
/// resolver. Scripts are bulk-synchronous: every rank must pause on the
/// same kind of step (ranks may run different numbers of compute steps
/// in between).
enum CommRequest {
    /// A globally synchronizing collective.
    Collective { kind: CollectiveKind, bytes: Bytes },
    /// Pairwise neighbour exchange: eager sends, then waits in
    /// neighbour-list order.
    Halo { neighbors: Vec<usize>, bytes: Bytes },
}

/// One rank's complete execution state, movable across pool workers.
///
/// [`RankTask::advance`] replays the script — statement for statement the
/// order the historical thread-per-rank driver executed — until it needs
/// another rank (a communication step), then parks and reports the step.
/// The serial resolver sets the clock and the task resumes on whichever
/// worker picks it up next.
struct RankTask<'a> {
    rank: usize,
    nranks: usize,
    clock: RankClock,
    tracker: PhaseTracker,
    stats: RunStats,
    registry: ObjectRegistry,
    state: Box<dyn RankState>,
    client: BwClient,
    journal: Option<JournalHandle>,
    oracle: Option<RankOracle>,
    /// Current iteration's script (refreshed at each `IterBegin`).
    steps: Vec<StepSpec>,
    pos: Pos,
    plan_kind: Option<SearchKind>,
    workload: &'a dyn Workload,
    /// This rank's *node* machine model (per-node under a heterogeneous
    /// topology).
    machine: &'a MachineConfig,
    cache: &'a CacheModel,
    service: &'a DramService,
    lease: &'a CapacitySchedule,
    iterations: usize,
    rig: Option<&'a JournalRig>,
}

impl<'a> RankTask<'a> {
    #[allow(clippy::too_many_arguments)]
    fn new(
        rank: usize,
        workload: &'a dyn Workload,
        topo: &'a ClusterTopology,
        cache: &'a CacheModel,
        policy: &dyn PlacementPolicy,
        service: &'a DramService,
        bw: &SharedBandwidth,
        lease: &'a CapacitySchedule,
        cals: &HashMap<(usize, usize), unimem_perf::Calibration>,
        rig: Option<&'a JournalRig>,
    ) -> RankTask<'a> {
        let nranks = topo.nranks();
        let machine = topo.machine_of(rank);
        let client = bw.client(rank);
        let mut clock = RankClock::new(rank, nranks);

        // Crash-consistency rig: a per-rank redo journal timed against
        // this rank's share of the node NVM write path, and (on recovery
        // re-runs) the oracle replayed from the durable journal.
        let (journal, oracle): (Option<JournalHandle>, Option<RankOracle>) = match rig {
            Some(r) => {
                let nvm_share = machine.rank_share(TierKind::Nvm, client.occupancy());
                let j = Journal::new(r.mode)
                    .with_write_bw(nvm_share.write_bw)
                    .with_link(client.clone())
                    .into_handle();
                let oracle = r.oracles.lock().expect("oracle lock")[rank].take();
                (Some(j), oracle)
            }
            None => (None, None),
        };

        // Register target data objects (unimem_malloc).
        let mut registry = ObjectRegistry::new();
        for spec in workload.objects(rank, nranks) {
            registry.register(spec);
        }

        // Set up the placement policy (partitioning + initial placement).
        let state = policy.init_rank(RankInit {
            machine,
            registry: &mut registry,
            service,
            client: &client,
            lease,
            cals,
            journal: journal.clone(),
            rank,
        });

        // Journal the run identity, the object table (with its final
        // chunking — the policy may have partitioned), and the initial
        // DRAM residency, so recovery can rebuild the placement state
        // machine from the log alone.
        if let Some(j) = &journal {
            let t0 = clock.now();
            let mut jm = j.lock();
            jm.append(
                &Record::RunHeader {
                    rank: rank as u32,
                    nranks: nranks as u32,
                    iterations: workload.iterations() as u64,
                },
                t0,
            );
            for obj in registry.iter() {
                jm.append(
                    &Record::ObjectReg {
                        obj: obj.id.0,
                        size: obj.size.get(),
                        chunks: obj.chunks,
                    },
                    t0,
                );
            }
            if let TierView::Sets { in_dram, all_dram } = state.view() {
                let initial: Vec<UnitId> = if all_dram {
                    registry.units()
                } else {
                    in_dram.iter().copied().collect()
                };
                for u in initial {
                    jm.append(
                        &Record::InitPlace {
                            obj: u.obj.0,
                            chunk: u.chunk,
                        },
                        t0,
                    );
                }
            }
        }
        drain_journal(&journal, &mut clock);

        RankTask {
            rank,
            nranks,
            clock,
            tracker: PhaseTracker::new(),
            stats: RunStats::default(),
            registry,
            state,
            client,
            journal,
            oracle,
            steps: Vec::new(),
            pos: Pos::IterBegin { it: 0 },
            plan_kind: None,
            workload,
            machine,
            cache,
            service,
            lease,
            iterations: workload.iterations(),
            rig,
        }
    }

    /// Run to the next communication point. Returns the pending request,
    /// or `None` once the script is exhausted (outcome recorded).
    fn advance(&mut self) -> Option<CommRequest> {
        loop {
            match self.pos {
                Pos::Done => return None,
                Pos::IterBegin { it } if it == self.iterations => {
                    self.finalize();
                    return None;
                }
                Pos::IterBegin { it } => {
                    self.tracker.begin_iteration();
                    self.steps = self.workload.script(self.rank, self.nranks, it);
                    self.state.iteration_begin(it, &self.steps, &mut env!(self));
                    self.pos = Pos::Step { it, idx: 0 };
                }
                Pos::Step { it, idx } if idx == self.steps.len() => {
                    self.state.iteration_end(it, &self.steps, &mut env!(self));
                    drain_journal(&self.journal, &mut self.clock);
                    self.pos = Pos::IterBegin { it: it + 1 };
                }
                Pos::Step { it, idx } => {
                    let phase = self.tracker.next_phase();
                    self.state.phase_begin(phase, &mut env!(self));
                    drain_journal(&self.journal, &mut self.clock);

                    match &self.steps[idx] {
                        StepSpec::Compute(spec) => {
                            // On recovery re-runs the oracle substitutes
                            // the journaled observation for the
                            // ground-truth model; once the durable log
                            // runs out (the crash point) the live model
                            // takes over seamlessly — determinism
                            // guarantees the two agree on the shared
                            // prefix.
                            let (phase_time, truths, contention) =
                                match self.oracle.as_mut().and_then(|o| o.next_observe()) {
                                    Some(replayed) => replayed,
                                    None => {
                                        let view = self.state.view();
                                        ground_truth(
                                            spec,
                                            &self.registry,
                                            view,
                                            self.cache,
                                            &self.client,
                                            self.clock.now(),
                                        )
                                    }
                                };
                            if let Some(j) = &self.journal {
                                let mut jm = j.lock();
                                let seq = jm.next_seq();
                                jm.append(
                                    &Record::Observe {
                                        seq,
                                        phase: phase.0,
                                        time: phase_time.secs(),
                                        cont_total: contention.total.secs(),
                                        cont_neighbors: contention.neighbors.secs(),
                                        units: truths
                                            .iter()
                                            .map(|g| ObsUnit {
                                                obj: g.unit.obj.0,
                                                chunk: g.unit.chunk,
                                                misses: g.misses,
                                                miss_bytes: g.miss_bytes.get(),
                                                mem_time: g.mem_time.secs(),
                                            })
                                            .collect(),
                                    },
                                    self.clock.now(),
                                );
                            }
                            self.clock.advance(phase_time);
                            self.stats.app_time += phase_time;
                            self.stats.contention_time += contention.total;
                            self.stats.neighbor_contention_time += contention.neighbors;

                            self.state
                                .observe_compute(phase, phase_time, &truths, &mut env!(self));
                            self.pos = Pos::Step { it, idx: idx + 1 };
                        }
                        comm => {
                            let t0 = self.clock.now();
                            let req = match comm {
                                StepSpec::Barrier => CommRequest::Collective {
                                    kind: CollectiveKind::Barrier,
                                    bytes: Bytes::ZERO,
                                },
                                StepSpec::AllreduceSum { bytes } => CommRequest::Collective {
                                    kind: CollectiveKind::Allreduce,
                                    bytes: *bytes,
                                },
                                StepSpec::Bcast { bytes } => CommRequest::Collective {
                                    kind: CollectiveKind::Bcast,
                                    bytes: *bytes,
                                },
                                StepSpec::Alltoall { bytes } => CommRequest::Collective {
                                    kind: CollectiveKind::Alltoall,
                                    bytes: *bytes,
                                },
                                StepSpec::Halo { neighbors, bytes } => CommRequest::Halo {
                                    neighbors: neighbors.clone(),
                                    bytes: *bytes,
                                },
                                StepSpec::Compute(_) => unreachable!("compute handled above"),
                            };
                            self.pos = Pos::AfterComm { it, idx, phase, t0 };
                            return Some(req);
                        }
                    }
                }
                Pos::AfterComm { it, idx, phase, t0 } => {
                    let dt = self.clock.now() - t0;
                    self.stats.app_time += dt;
                    // Communication executes for real even on recovery
                    // re-runs — collectives need every rank at the
                    // rendezvous — so the journaled duration is only a
                    // consistency check against the log.
                    if let Some(o) = self.oracle.as_mut() {
                        o.check_comm(dt);
                    }
                    if let Some(j) = &self.journal {
                        let mut jm = j.lock();
                        let seq = jm.next_seq();
                        jm.append(
                            &Record::Comm {
                                seq,
                                phase: phase.0,
                                dt: dt.secs(),
                            },
                            self.clock.now(),
                        );
                    }
                    // Global collectives rendezvous every rank before any
                    // leaves, and their departure time is synchronized —
                    // exactly the deterministic visibility fence the
                    // shared-bandwidth ledger needs to publish neighbor
                    // helper traffic. Only pairwise exchanges (Halo) are
                    // excluded: a future collective step kind should
                    // fence by default, not silently go dark.
                    if !matches!(self.steps[idx], StepSpec::Halo { .. }) {
                        let epoch = self.client.fence(self.clock.now());
                        // The fence is the journal's commit point: every
                        // record ahead of it becomes durable under
                        // Buffered mode, stamped with the ledger epoch.
                        if let Some(j) = &self.journal {
                            j.lock().commit(epoch, self.clock.now());
                        }
                        drain_journal(&self.journal, &mut self.clock);
                    }
                    self.state.observe_comm(phase, dt, &mut env!(self));
                    self.pos = Pos::Step { it, idx: idx + 1 };
                }
            }
        }
    }

    /// End of script: close the stats, record the plan, hand the journal
    /// back to the rig.
    fn finalize(&mut self) {
        drain_journal(&self.journal, &mut self.clock);
        self.stats.total_time = self.clock.now() - VTime::ZERO;
        self.stats.iterations = self.iterations as u64;
        self.plan_kind = self.state.finish(&mut self.stats);

        if let (Some(r), Some(j)) = (self.rig, &self.journal) {
            let jm = j.lock();
            r.outs.lock().expect("journal out lock")[self.rank] = Some(RankJournalOut {
                bytes: jm.bytes().to_vec(),
                stats: jm.stats(),
                replayed_observes: self.oracle.as_ref().map(|o| o.consumed).unwrap_or(0),
                comm_mismatches: self.oracle.as_ref().map(|o| o.comm_mismatches).unwrap_or(0),
            });
        }
        self.pos = Pos::Done;
    }

    fn into_outcome(self) -> (RunStats, Option<SearchKind>) {
        debug_assert!(
            matches!(self.pos, Pos::Done),
            "task consumed before completion"
        );
        (self.stats, self.plan_kind)
    }
}

/// Extra phase time attributable to shared-bandwidth contention, split
/// by who caused it.
#[derive(Debug, Clone, Copy, Default)]
struct PhaseContention {
    /// Contended time minus the rank's plain node-share time.
    total: VDur,
    /// The portion caused by *other* ranks' helper traffic.
    neighbors: VDur,
}

/// One (access descriptor, placement unit) timing site of a phase.
struct AccessSite {
    unit: UnitId,
    tier: TierKind,
    misses: u64,
    miss_bytes: Bytes,
    mlp: f64,
    mix: AccessMix,
}

/// Compute ground-truth phase time and per-unit sampler inputs for a
/// compute step under the current placement, at the **contended**
/// effective bandwidth: each tier's node bandwidth is split among the
/// node's co-located ranks, and helper copies in flight during the phase
/// window (this rank's exactly, neighbors' at their fence-epoch rate)
/// take their proportional share on top. The phase window is estimated
/// from the uncontended time — a one-shot resolution of the
/// time-depends-on-window circularity, documented in
/// `unimem_hms::contention`.
///
/// The placement [`TierView`] decides each site's tier: explicit
/// residency sets route a unit wholly to one tier, while the hardware
/// cache's hit fraction splits a site into a DRAM part and an NVM part
/// (misses rounded, bytes conserved).
fn ground_truth(
    spec: &ComputeSpec,
    registry: &ObjectRegistry,
    view: TierView<'_>,
    cache: &CacheModel,
    bw: &BwClient,
    now: VTime,
) -> (VDur, Vec<GroundTruth>, PhaseContention) {
    let phase_total: Bytes = spec.accesses.iter().map(|a| a.touched).sum();
    let mut sites: Vec<AccessSite> = Vec::new();
    for acc in &spec.accesses {
        let obj = registry.get(acc.obj);
        let chunks = obj.chunks;
        let frac = 1.0 / f64::from(chunks);
        for unit in obj.units() {
            let a = if chunks == 1 { *acc } else { acc.scaled(frac) };
            let est = cache.misses(&a, phase_total);
            if est.misses == 0 {
                continue;
            }
            match view {
                TierView::Sets { in_dram, all_dram } => {
                    let tier = if all_dram || in_dram.contains(&unit) {
                        TierKind::Dram
                    } else {
                        TierKind::Nvm
                    };
                    sites.push(AccessSite {
                        unit,
                        tier,
                        misses: est.misses,
                        miss_bytes: est.miss_bytes,
                        mlp: a.pattern.mlp(),
                        mix: a.mix,
                    });
                }
                TierView::Fraction(hit) => {
                    let hit = hit.clamp(0.0, 1.0);
                    let dram_misses = ((est.misses as f64) * hit).round() as u64;
                    let dram_bytes = Bytes((est.miss_bytes.as_f64() * hit).round() as u64);
                    let nvm_misses = est.misses - dram_misses;
                    let nvm_bytes = est.miss_bytes - dram_bytes;
                    for (tier, misses, miss_bytes) in [
                        (TierKind::Dram, dram_misses, dram_bytes),
                        (TierKind::Nvm, nvm_misses, nvm_bytes),
                    ] {
                        if misses == 0 {
                            continue;
                        }
                        sites.push(AccessSite {
                            unit,
                            tier,
                            misses,
                            miss_bytes,
                            mlp: a.pattern.mlp(),
                            mix: a.mix,
                        });
                    }
                }
            }
        }
    }
    let site_time = |s: &AccessSite, dram: &TierParams, nvm: &TierParams| {
        let p = match s.tier {
            TierKind::Dram => dram,
            TierKind::Nvm => nvm,
        };
        p.access_time(s.misses, s.miss_bytes, s.mlp, s.mix)
    };
    let mem_time = |dram: &TierParams, nvm: &TierParams| -> VDur {
        sites.iter().map(|s| site_time(s, dram, nvm)).sum()
    };

    // Pass 1 — the rank's plain share of the node, no helper flows: this
    // fixes the window the flow accounting is evaluated over.
    let base_d = bw.effective(TierKind::Dram, now, now, FlowScope::None);
    let base_n = bw.effective(TierKind::Nvm, now, now, FlowScope::None);
    let t_base = mem_time(&base_d, &base_n);
    let w1 = now + spec.cpu + t_base;

    // Pass 2 — charge helper flows over the window: own traffic alone
    // (attribution), then own + fenced-visible neighbor traffic (the
    // clock that actually advances).
    let own_d = bw.effective(TierKind::Dram, now, w1, FlowScope::Own);
    let own_n = bw.effective(TierKind::Nvm, now, w1, FlowScope::Own);
    let t_own = mem_time(&own_d, &own_n);
    let all_d = bw.effective(TierKind::Dram, now, w1, FlowScope::All);
    let all_n = bw.effective(TierKind::Nvm, now, w1, FlowScope::All);

    // A phase may carry several descriptors for the same object (e.g. a
    // streaming factor pass plus a dependent back-substitution); traffic
    // merges per placement unit for the sampler, at contended times.
    let mut truths: Vec<GroundTruth> = Vec::new();
    let mut t_full = VDur::ZERO;
    for s in &sites {
        let t = site_time(s, &all_d, &all_n);
        t_full += t;
        match truths.iter_mut().find(|g| g.unit == s.unit) {
            Some(g) => {
                g.misses += s.misses;
                g.miss_bytes += s.miss_bytes;
                g.mem_time += t;
            }
            None => truths.push(GroundTruth {
                unit: s.unit,
                misses: s.misses,
                miss_bytes: s.miss_bytes,
                mem_time: t,
            }),
        }
    }
    let contention = PhaseContention {
        total: t_full.saturating_sub(t_base),
        neighbors: t_full.saturating_sub(t_own),
    };
    (spec.cpu + t_full, truths, contention)
}

/// Resolve one bulk-synchronous communication round: every rank has
/// paused on `reqs[rank]`. This is the rendezvous — the only place rank
/// clocks interact — and it runs serially: the synchronized clocks are a
/// pure function of the entry clocks and the ledger's fenced history, so
/// pooled execution stays byte-identical to thread-per-rank.
fn resolve_comm(
    tasks: &mut [RankTask],
    reqs: Vec<CommRequest>,
    placement: &RankPlacement,
    net: &NetParams,
    link: &NetParams,
) {
    match &reqs[0] {
        CommRequest::Collective { kind, bytes } => {
            let (kind, bytes) = (*kind, *bytes);
            assert!(
                reqs.iter().all(|r| matches!(
                    r,
                    CommRequest::Collective { kind: k, bytes: b } if *k == kind && *b == bytes
                )),
                "collective steps must agree across ranks"
            );
            let clocks: Vec<VTime> = tasks.iter().map(|t| t.clock.now()).collect();
            let timing = collective_timing(&clocks, kind, bytes, net, placement, link);
            let leave = if timing.inter.is_zero() {
                // Flat placement (or a zero-cost inter phase): the legacy
                // single-level rendezvous, bit for bit.
                timing.leave
            } else {
                // The inter-node phase shares each node's link with
                // whatever migration traffic the ledger has published
                // over the uncontended window; the slowest leader paces
                // the tree. At zero load the ratio is exactly 1.
                let mut slow = 1.0f64;
                for node in 0..placement.n_nodes() {
                    let client = &tasks[placement.leader(node)].client;
                    for dir in [Channel::LinkUp, Channel::LinkDown] {
                        let eff =
                            client.effective_link(dir, timing.t_meet, timing.leave, FlowScope::All);
                        let ratio = client.link_bw().bytes_per_s() / eff.bytes_per_s();
                        if ratio > slow {
                            slow = ratio;
                        }
                    }
                }
                let leave = timing.t_meet + timing.inter * slow;
                // Every leader moves `bytes` both ways (reduce up,
                // result down), visible to later phases after the next
                // fence — and a collective fences on departure.
                for node in 0..placement.n_nodes() {
                    tasks[placement.leader(node)].client.post_link(
                        timing.t_meet,
                        leave,
                        bytes,
                        bytes,
                    );
                }
                leave
            };
            for t in tasks.iter_mut() {
                t.clock.set(leave);
            }
        }
        CommRequest::Halo { .. } => resolve_halo(tasks, reqs, placement, net, link),
    }
}

/// Resolve a pairwise halo exchange: eager isends (one overhead each,
/// additively), then waits in neighbour-list order. Cross-node messages
/// ride the inter-node link and are charged on both endpoints' link
/// channels; intra-node messages keep the legacy flat wire time.
fn resolve_halo(
    tasks: &mut [RankTask],
    reqs: Vec<CommRequest>,
    placement: &RankPlacement,
    net: &NetParams,
    link: &NetParams,
) {
    let halos: Vec<(Vec<usize>, Bytes)> = reqs
        .into_iter()
        .map(|r| match r {
            CommRequest::Halo { neighbors, bytes } => (neighbors, bytes),
            CommRequest::Collective { .. } => {
                panic!("communication steps must agree across ranks")
            }
        })
        .collect();
    let n = tasks.len();
    // Neighbour lists are rings, so small worlds produce duplicates (a
    // 2-rank ring's left and right coincide) and even self-messages (a
    // 1-rank ring). Symmetry is therefore multiset symmetry: r sends to
    // nb exactly as many times as nb sends to r.
    for (r, (nbrs, _)) in halos.iter().enumerate() {
        for &nb in nbrs {
            assert!(nb < n, "halo neighbor {nb} out of range for rank {r}");
            let to = nbrs.iter().filter(|&&x| x == nb).count();
            let from = halos[nb].0.iter().filter(|&&x| x == r).count();
            assert!(
                to == from,
                "halo lists must be symmetric ({r} sends {to} to {nb}, receives {from})"
            );
        }
    }

    // Send pass. Each isend costs the sender one overhead (accumulated
    // additively — never overhead × count, which would round differently)
    // and puts the payload on the wire at `c + wire`; the paired irecv is
    // free. Like the historical mailbox, messages on one (sender,
    // receiver) pair match in FIFO order.
    let mut avail: HashMap<(usize, usize), VecDeque<VTime>> = HashMap::new();
    let mut after_sends: Vec<VTime> = Vec::with_capacity(n);
    let mut link_posts: Vec<(usize, usize, VTime, VTime)> = Vec::new();
    for (s, (nbrs, bytes)) in halos.iter().enumerate() {
        let mut c = tasks[s].clock.now();
        for &dst in nbrs {
            c += net.overhead;
            let cross = !placement.same_node(s, dst);
            let wire = if cross {
                link.p2p_time(*bytes)
            } else {
                net.p2p_time(*bytes)
            };
            avail.entry((s, dst)).or_default().push_back(c + wire);
            if cross {
                link_posts.push((s, dst, c, c + wire));
            }
        }
        after_sends.push(c);
    }

    // A cross-node message occupies both endpoints' links for its wire
    // window: upstream at the sender's node, downstream at the
    // receiver's. Halos never fence, so this traffic surfaces to
    // neighbours at the next collective — same rule as helper copies.
    for &(s, dst, start, end) in &link_posts {
        let bytes = halos[s].1;
        tasks[s].client.post_link(start, end, bytes, Bytes::ZERO);
        tasks[dst].client.post_link(start, end, Bytes::ZERO, bytes);
    }

    // Wait pass, in neighbour-list order: each wait pays one overhead
    // then blocks until the matching payload has landed.
    for (r, (nbrs, _)) in halos.iter().enumerate() {
        let mut c = after_sends[r];
        for &src in nbrs {
            let at = avail
                .get_mut(&(src, r))
                .and_then(VecDeque::pop_front)
                .expect("symmetric halo lists guarantee a matching send");
            c = (c + net.overhead).max(at);
        }
        tasks[r].clock.set(c);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unimem_cache::AccessPattern;
    use unimem_hms::object::ObjId;

    /// Two-object synthetic workload: a streaming-hot `hot` and a cold
    /// `cold`, two compute phases and an allreduce per iteration.
    struct Synth {
        iters: usize,
    }

    impl Workload for Synth {
        fn name(&self) -> String {
            "synth".into()
        }

        fn objects(&self, _rank: usize, _nranks: usize) -> Vec<ObjectSpec> {
            vec![
                ObjectSpec::new("hot", Bytes::mib(100)).est_refs(1e9),
                ObjectSpec::new("cold", Bytes::mib(100)).est_refs(1e6),
            ]
        }

        fn script(&self, _rank: usize, _nranks: usize, _iter: usize) -> Vec<StepSpec> {
            vec![
                StepSpec::Compute(ComputeSpec {
                    label: "sweep",
                    cpu: VDur::from_millis(5.0),
                    accesses: vec![
                        ObjAccess::new(
                            ObjId(0),
                            40_000_000,
                            Bytes::mib(100),
                            AccessPattern::Streaming { stride: Bytes(8) },
                        ),
                        ObjAccess::new(ObjId(1), 400_000, Bytes::mib(100), AccessPattern::Random),
                    ],
                }),
                StepSpec::AllreduceSum { bytes: Bytes(64) },
            ]
        }

        fn iterations(&self) -> usize {
            self.iters
        }
    }

    fn machine() -> MachineConfig {
        MachineConfig::nvm_bw_fraction(0.5)
    }

    #[test]
    fn dram_only_faster_than_nvm_only() {
        let w = Synth { iters: 4 };
        let m = machine();
        let c = CacheModel::platform_a();
        let dram = run_workload(&w, &m, &c, 2, &Policy::DramOnly);
        let nvm = run_workload(&w, &m, &c, 2, &Policy::NvmOnly);
        assert!(
            nvm.time().secs() > dram.time().secs() * 1.2,
            "dram={} nvm={}",
            dram.time(),
            nvm.time()
        );
    }

    #[test]
    fn unimem_lands_between_and_close_to_dram() {
        let w = Synth { iters: 10 };
        let m = machine();
        let c = CacheModel::platform_a();
        let dram = run_workload(&w, &m, &c, 2, &Policy::DramOnly).time();
        let nvm = run_workload(&w, &m, &c, 2, &Policy::NvmOnly).time();
        let uni = run_workload(&w, &m, &c, 2, &Policy::unimem()).time();
        assert!(uni.secs() <= nvm.secs() * 1.01, "uni={uni} nvm={nvm}");
        assert!(uni.secs() >= dram.secs() * 0.99, "uni={uni} dram={dram}");
        // The hot object dominates; Unimem should close most of the gap.
        let gap_closed = (nvm.secs() - uni.secs()) / (nvm.secs() - dram.secs());
        assert!(gap_closed > 0.5, "gap closed only {gap_closed:.2}");
    }

    #[test]
    fn static_pin_of_hot_object_helps() {
        let w = Synth { iters: 4 };
        let m = machine();
        let c = CacheModel::platform_a();
        let nvm = run_workload(&w, &m, &c, 1, &Policy::NvmOnly).time();
        let pinned = run_workload(
            &w,
            &m,
            &c,
            1,
            &Policy::Static {
                in_dram: vec!["hot".into()],
                label: "pin hot".into(),
            },
        )
        .time();
        assert!(pinned.secs() < nvm.secs());
    }

    #[test]
    fn runs_are_deterministic() {
        let w = Synth { iters: 5 };
        let m = machine();
        let c = CacheModel::platform_a();
        let a = run_workload(&w, &m, &c, 4, &Policy::unimem());
        let b = run_workload(&w, &m, &c, 4, &Policy::unimem());
        assert_eq!(a.time().secs(), b.time().secs());
        assert_eq!(a.job.migrations, b.job.migrations);
    }

    #[test]
    fn report_json_names_workload_policy_and_ranks() {
        let w = Synth { iters: 3 };
        let m = machine();
        let c = CacheModel::platform_a();
        let rep = run_workload(&w, &m, &c, 2, &Policy::unimem());
        let j = rep.to_json();
        assert_eq!(j.get("workload").and_then(|v| v.as_str()), Some("synth"));
        assert_eq!(j.get("policy").and_then(|v| v.as_str()), Some("Unimem"));
        assert!(j.get("plan_kind").and_then(|v| v.as_str()).is_some());
        assert_eq!(
            j.get("per_rank").and_then(|v| v.as_arr()).map(<[_]>::len),
            Some(2)
        );
    }

    #[test]
    fn unimem_reports_stats() {
        let w = Synth { iters: 6 };
        let m = machine();
        let c = CacheModel::platform_a();
        let rep = run_workload(&w, &m, &c, 1, &Policy::unimem());
        assert!(rep.plan_kind.is_some());
        assert!(
            rep.job.pure_runtime_cost() < 0.05,
            "cost={}",
            rep.job.pure_runtime_cost()
        );
        assert_eq!(rep.job.iterations, 6);
        // Initial placement put `hot` in DRAM already (est_refs), so few
        // migrations are expected — but profiling must have happened.
        assert!(rep.job.profiling_overhead > VDur::ZERO);
    }

    #[test]
    fn ablation_rungs_monotonically_enable() {
        let c0 = UnimemConfig::ablation(1);
        assert!(c0.use_global && !c0.use_local && !c0.partitioning && !c0.initial_placement);
        let c3 = UnimemConfig::ablation(4);
        assert!(c3.use_global && c3.use_local && c3.partitioning && c3.initial_placement);
    }

    #[test]
    fn online_guidance_lands_between_dram_and_nvm() {
        let w = Synth { iters: 10 };
        let m = machine();
        let c = CacheModel::platform_a();
        let dram = run_workload(&w, &m, &c, 2, &Policy::DramOnly).time();
        let nvm = run_workload(&w, &m, &c, 2, &Policy::NvmOnly).time();
        let online = run_workload(&w, &m, &c, 2, &Policy::online_guidance());
        assert_eq!(online.policy, "Online-guidance");
        let t = online.time();
        assert!(t.secs() <= nvm.secs() * 1.001, "online={t} nvm={nvm}");
        assert!(t.secs() >= dram.secs() * 0.999, "online={t} dram={dram}");
        // The first interval runs cold, but promotion of `hot` must
        // close most of the gap afterwards.
        let gap_closed = (nvm.secs() - t.secs()) / (nvm.secs() - dram.secs());
        assert!(gap_closed > 0.4, "gap closed only {gap_closed:.2}");
        assert!(online.job.migrations.count > 0, "no promotions happened");
    }

    #[test]
    fn hw_cache_lands_between_dram_and_nvm_with_zero_software_cost() {
        let w = Synth { iters: 10 };
        let m = machine();
        let c = CacheModel::platform_a();
        let dram = run_workload(&w, &m, &c, 2, &Policy::DramOnly).time();
        let nvm = run_workload(&w, &m, &c, 2, &Policy::NvmOnly).time();
        let hw = run_workload(&w, &m, &c, 2, &Policy::hw_cache());
        assert_eq!(hw.policy, "HW-cache");
        let t = hw.time();
        assert!(t.secs() <= nvm.secs() * 1.001, "hw={t} nvm={nvm}");
        assert!(t.secs() >= dram.secs() * 0.999, "hw={t} dram={dram}");
        // Hardware management charges the software nothing.
        assert_eq!(hw.job.pure_runtime_cost(), 0.0);
        assert_eq!(hw.job.migrations.count, 0);
    }

    #[test]
    fn new_policies_replay_deterministically() {
        let w = Synth { iters: 6 };
        let m = machine();
        let c = CacheModel::platform_a();
        for policy in [Policy::online_guidance(), Policy::hw_cache()] {
            let a = run_workload(&w, &m, &c, 4, &policy);
            let b = run_workload(&w, &m, &c, 4, &policy);
            assert_eq!(
                a.to_json().to_pretty(),
                b.to_json().to_pretty(),
                "{} replay diverged",
                policy.label()
            );
        }
    }
}
