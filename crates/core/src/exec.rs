//! The execution driver: runs a [`Workload`] under a placement [`Policy`]
//! on a machine model and reports virtual times plus runtime statistics.
//!
//! A workload is a *phase script*: per rank and iteration, a sequence of
//! steps — computation (with per-object access descriptors at class scale)
//! or communication. The driver replays the script on the mini-MPI
//! substrate, computing ground-truth phase times from the cache model and
//! tier parameters under the *current* placement, while the Unimem runtime
//! (when enabled) watches through the sampling profiler and manages
//! placement exactly as §3.1 prescribes: profile the first iteration,
//! decide at its end, enforce thereafter, re-profile on variation.
//!
//! Every figure in the paper is a ratio of the run times this driver
//! produces under different policies and machine configurations.

use crate::adapt::VariationMonitor;
use crate::deps::PhaseRefTable;
use crate::enforce::Enforcer;
use crate::initial::initial_placement;
use crate::model::ModelParams;
use crate::partition::{partition_large_objects, PartitionPolicy};
use crate::profile::{IterationProfile, PhaseRecord};
use crate::search::{best_plan, SearchInput, SearchKind};
use crate::stats::RunStats;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap};
use unimem_cache::{CacheModel, ObjAccess};
use unimem_hms::contention::{BwClient, FlowScope, HelperLink, SharedBandwidth};
use unimem_hms::object::{ObjectRegistry, ObjectSpec, UnitId};
use unimem_hms::tier::{AccessMix, TierKind, TierParams};
use unimem_hms::{DramService, MachineConfig, MigrationEngine};
use unimem_mpi::{CommWorld, NetParams, PhaseId, PhaseTracker, RankCtx};
use unimem_perf::sampler::GroundTruth;
use unimem_perf::{calibrate, Sampler, SamplerConfig};
use unimem_sim::{Bytes, VDur, VTime};

/// A computation phase of the script.
#[derive(Debug, Clone, PartialEq)]
pub struct ComputeSpec {
    /// Phase label (the paper's kernel names: "sweep", "pressure-solve").
    pub label: &'static str,
    /// Pure CPU time, independent of data placement.
    pub cpu: VDur,
    /// Class-scale access descriptors for the target objects it touches.
    pub accesses: Vec<ObjAccess>,
}

/// One step of a rank's per-iteration script. Each step is one phase
/// (computation, or a blocking communication operation).
#[derive(Debug, Clone, PartialEq)]
pub enum StepSpec {
    /// A computation phase with per-object access descriptors.
    Compute(ComputeSpec),
    /// `MPI_Barrier`.
    Barrier,
    /// `MPI_Allreduce` (sum) of `bytes` per rank.
    AllreduceSum {
        /// Payload contributed by each rank.
        bytes: Bytes,
    },
    /// `MPI_Bcast` of `bytes` from rank 0.
    Bcast {
        /// Broadcast payload.
        bytes: Bytes,
    },
    /// `MPI_Alltoall` with `bytes` per pair.
    Alltoall {
        /// Per-pair payload.
        bytes: Bytes,
    },
    /// Nearest-neighbour exchange: eager sends then waits (one phase).
    Halo {
        /// Peer ranks exchanged with.
        neighbors: Vec<usize>,
        /// Per-neighbour payload.
        bytes: Bytes,
    },
}

/// A phase-structured iterative application.
pub trait Workload: Sync {
    /// Display name, including the class ("CG.C").
    fn name(&self) -> String;
    /// Target data objects of one rank (Table 3), in registration order —
    /// `ObjId(k)` is the k-th spec returned here.
    fn objects(&self, rank: usize, nranks: usize) -> Vec<ObjectSpec>;
    /// The per-iteration phase script. The *structure* (step kinds and
    /// order) must not vary across iterations; access volumes may.
    fn script(&self, rank: usize, nranks: usize, iter: usize) -> Vec<StepSpec>;
    /// Main-loop iterations to simulate.
    fn iterations(&self) -> usize;
}

/// Runtime configuration for the Unimem policy, with ablation toggles
/// matching Fig. 11's four techniques.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UnimemConfig {
    /// Enable the cross-phase global search.
    pub use_global: bool,
    /// Enable the phase-local search.
    pub use_local: bool,
    /// Enable large-object partitioning (§3.2).
    pub partitioning: bool,
    /// Enable estimate-driven initial placement (§3.2).
    pub initial_placement: bool,
    /// Enable re-profiling on workload variation (§3.2).
    pub adaptation: bool,
    /// Hardware-counter sampling configuration.
    pub sampler: SamplerConfig,
    /// Seed for the sampler's deterministic thinning.
    pub seed: u64,
    /// Cost charged per placement decision (model + knapsack solve).
    pub modeling_cost: VDur,
    /// Cost charged per phase boundary (helper-queue status check).
    pub sync_cost: VDur,
    /// How large objects split into chunks (§3.2).
    pub partition_policy: PartitionPolicy,
}

impl Default for UnimemConfig {
    fn default() -> UnimemConfig {
        UnimemConfig {
            use_global: true,
            use_local: true,
            partitioning: true,
            initial_placement: true,
            adaptation: true,
            sampler: SamplerConfig::default(),
            seed: 0x5eed,
            modeling_cost: VDur::from_micros(120.0),
            sync_cost: VDur::from_nanos(250.0),
            partition_policy: PartitionPolicy::default(),
        }
    }
}

impl UnimemConfig {
    /// Fig. 11 ablation rungs: 1 = global only, 2 = +local, 3 =
    /// +partitioning, 4 = +initial placement (full system sans adaptation
    /// toggles, which stay on).
    pub fn ablation(rung: u8) -> UnimemConfig {
        UnimemConfig {
            use_global: rung >= 1,
            use_local: rung >= 2,
            partitioning: rung >= 3,
            initial_placement: rung >= 4,
            ..UnimemConfig::default()
        }
    }
}

/// Placement policy for a run.
#[derive(Debug, Clone, PartialEq)]
pub enum Policy {
    /// Unlimited DRAM (the paper's DRAM-only baseline machine).
    DramOnly,
    /// Everything in NVM.
    NvmOnly,
    /// Named objects pinned in DRAM for the whole run (Fig. 4 and the
    /// X-Mem baseline feed this).
    Static {
        /// Object names pinned in DRAM for the whole run.
        in_dram: Vec<String>,
        /// Display label for reports.
        label: String,
    },
    /// The paper's runtime, with its ablation/config toggles.
    Unimem(UnimemConfig),
}

impl Policy {
    /// Display label used in reports.
    pub fn label(&self) -> String {
        match self {
            Policy::DramOnly => "DRAM-only".into(),
            Policy::NvmOnly => "NVM-only".into(),
            Policy::Static { label, .. } => label.clone(),
            Policy::Unimem(_) => "Unimem".into(),
        }
    }

    /// The full Unimem runtime at its default configuration.
    pub fn unimem() -> Policy {
        Policy::Unimem(UnimemConfig::default())
    }
}

/// Per-iteration DRAM lease for one run: the *node* byte budget the
/// placement pipeline may use during each iteration.
///
/// The capacity a Unimem instance hands its knapsack was historically a
/// constant read off the machine config. Under multi-tenant arbitration
/// (see [`crate::tenancy`] and `unimem_hms::arbiter`) it is a *leased*
/// quantity that moves at iteration boundaries: when the arbiter revokes
/// budget the runtime must re-run placement and evict, and when budget
/// arrives it may re-plan to use it. Iterations beyond the last entry
/// hold the final value, so a schedule is also the natural encoding of
/// "co-runner finished, keep the reclaimed DRAM".
///
/// ```
/// use unimem::exec::CapacitySchedule;
/// use unimem_sim::Bytes;
///
/// let lease = CapacitySchedule::from_epochs(vec![
///     Bytes::mib(128), // co-runner active: half the node
///     Bytes::mib(128),
///     Bytes::mib(256), // co-runner finished: full node from iter 2 on
/// ])
/// .unwrap();
/// assert_eq!(lease.at(1), Bytes::mib(128));
/// assert_eq!(lease.at(10), Bytes::mib(256));
/// assert_eq!(lease.peak(), Bytes::mib(256));
/// assert!(!lease.is_constant());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CapacitySchedule {
    per_iter: Vec<Bytes>,
}

impl CapacitySchedule {
    /// The classic single-tenant lease: the whole budget, every iteration.
    pub fn constant(budget: Bytes) -> CapacitySchedule {
        CapacitySchedule {
            per_iter: vec![budget],
        }
    }

    /// A lease that changes at iteration boundaries; the last entry
    /// extends to every later iteration. Errors on an empty schedule.
    pub fn from_epochs(per_iter: Vec<Bytes>) -> Result<CapacitySchedule, String> {
        if per_iter.is_empty() {
            return Err("capacity schedule must cover at least one iteration".into());
        }
        Ok(CapacitySchedule { per_iter })
    }

    /// The node budget leased during iteration `it`.
    pub fn at(&self, it: usize) -> Bytes {
        self.per_iter[it.min(self.per_iter.len() - 1)]
    }

    /// The largest budget the schedule ever grants (sizes the DRAM
    /// service and the partitioner's chunk bound).
    pub fn peak(&self) -> Bytes {
        self.per_iter.iter().copied().max().unwrap_or(Bytes::ZERO)
    }

    /// True when every iteration holds the same budget (the
    /// single-tenant fast path: no lease re-plans can ever fire).
    pub fn is_constant(&self) -> bool {
        self.per_iter.windows(2).all(|w| w[0] == w[1])
    }

    /// The raw per-epoch entries (reports serialize these).
    pub fn epochs(&self) -> &[Bytes] {
        &self.per_iter
    }
}

/// Result of one job run.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Workload display name ("CG.C").
    pub workload: String,
    /// Policy label ("Unimem", "DRAM-only", ...).
    pub policy: String,
    /// Per-rank statistics, in rank order.
    pub per_rank: Vec<RunStats>,
    /// Job-level merge: max times, summed counters.
    pub job: RunStats,
    /// Which search won (rank 0's decision), for Unimem runs.
    pub plan_kind: Option<SearchKind>,
}

impl RunReport {
    /// Job completion time (slowest rank).
    pub fn time(&self) -> VDur {
        self.job.total_time
    }

    /// The winning plan kind as JSON (`"global"`/`"local"`/`null`), the
    /// one convention every report serializer shares.
    pub fn plan_kind_json(&self) -> unimem_sim::Json {
        match self.plan_kind {
            Some(k) => unimem_sim::Json::from(k.name()),
            None => unimem_sim::Json::Null,
        }
    }

    /// Deterministic JSON form of the whole report: workload, policy, the
    /// winning plan kind, the job-level merge, and every rank's stats in
    /// rank order. Equal reports serialize to byte-identical text — the
    /// determinism regression tests compare these bytes across repeated
    /// multi-threaded runs.
    pub fn to_json(&self) -> unimem_sim::Json {
        use unimem_sim::Json;
        let mut o = Json::obj();
        o.push("workload", self.workload.as_str())
            .push("policy", self.policy.as_str())
            .push("plan_kind", self.plan_kind_json())
            .push("time_s", self.time())
            .push("job", self.job.to_json())
            .push(
                "per_rank",
                Json::Arr(self.per_rank.iter().map(RunStats::to_json).collect()),
            );
        o
    }
}

/// Per-rank placement state.
enum RankPolicy {
    /// Fixed tier assignment: units in the set are in DRAM; `all_dram`
    /// short-circuits for the DRAM-only machine.
    Fixed {
        in_dram: BTreeSet<UnitId>,
        all_dram: bool,
    },
    Unimem(Box<UnimemState>),
}

struct UnimemState {
    cfg: UnimemConfig,
    model: ModelParams,
    sampler: Sampler,
    engine: MigrationEngine,
    monitor: Option<VariationMonitor>,
    profile: IterationProfile,
    refs: Option<PhaseRefTable>,
    enforcer: Option<Enforcer>,
    /// Pre-plan DRAM contents (initial placement) and their grants.
    committed: BTreeSet<UnitId>,
    grants: HashMap<UnitId, unimem_hms::alloc::Region>,
    profiling: bool,
    cap_per_rank: Bytes,
}

impl UnimemState {
    fn dram_units(&self) -> &BTreeSet<UnitId> {
        self.enforcer
            .as_ref()
            .map(|e| e.committed())
            .unwrap_or(&self.committed)
    }
}

/// Run `workload` on `nranks` ranks of the machine under `policy`, with
/// the machine's whole DRAM leased for the whole run (the single-tenant
/// case every paper experiment uses).
pub fn run_workload(
    workload: &dyn Workload,
    machine: &MachineConfig,
    cache: &CacheModel,
    nranks: usize,
    policy: &Policy,
) -> RunReport {
    run_workload_leased(
        workload,
        machine,
        cache,
        nranks,
        policy,
        &CapacitySchedule::constant(machine.dram_capacity),
    )
}

/// [`run_workload`] with an explicit DRAM lease: the placement pipeline's
/// capacity input follows `lease` instead of the machine constant. A
/// lease change at an iteration boundary re-runs the placement decision
/// (counted in [`RunStats::lease_replans`]) so revoked budget is evicted
/// and granted budget is used. The multi-tenant co-run driver
/// ([`crate::tenancy::run_corun`]) is the main caller.
///
/// Only the Unimem policy *manages* placement, so only it can honour a
/// moving lease; the fixed policies (DRAM-only, NVM-only, static pins)
/// have nothing to evict with. Passing a non-constant lease with a fixed
/// policy panics rather than silently reporting full-budget performance
/// under a schedule that claims the budget was revoked.
pub fn run_workload_leased(
    workload: &dyn Workload,
    machine: &MachineConfig,
    cache: &CacheModel,
    nranks: usize,
    policy: &Policy,
    lease: &CapacitySchedule,
) -> RunReport {
    assert!(
        lease.is_constant() || matches!(policy, Policy::Unimem(_)),
        "a moving DRAM lease requires the Unimem policy ({} cannot evict)",
        policy.label()
    );
    // The service is sized for the lease's peak: grants beyond the
    // *current* lease are prevented by the knapsack capacity, and a
    // shrinking lease evicts through the re-plan at the boundary.
    let service = DramService::new(nranks, machine.ranks_per_node, lease.peak());
    // Per-node shared-bandwidth state: co-located ranks split each tier's
    // node bandwidth, and helper copies are posted here so overlapping
    // compute pays for them.
    let bw = SharedBandwidth::new(machine, nranks);
    // Offline calibration happens once per platform, outside the job. It
    // runs against one rank's *share* of the node — the bandwidth the
    // sampled phases actually see — so Eq. 1's peak comparisons stay
    // like-for-like under multi-rank nodes. A partially-filled last node
    // has a different occupancy (and thus a different share) than the
    // full ones, so calibrate once per distinct occupancy and let each
    // rank pick its node's entry.
    let cals: HashMap<usize, unimem_perf::Calibration> = match policy {
        Policy::Unimem(cfg) => {
            let full = machine.ranks_per_node.min(nranks);
            let straggler = match nranks % machine.ranks_per_node {
                0 => full,
                r => r,
            };
            [full, straggler]
                .into_iter()
                .collect::<BTreeSet<_>>()
                .into_iter()
                .map(|occ| {
                    let mut share = machine.clone();
                    share.dram = machine.rank_share(TierKind::Dram, occ);
                    share.nvm = machine.rank_share(TierKind::Nvm, occ);
                    (occ, calibrate(&share, cache, cfg.sampler, cfg.seed))
                })
                .collect()
        }
        _ => HashMap::new(),
    };

    let outcomes = CommWorld::run(nranks, NetParams::default(), |ctx| {
        run_rank(
            ctx, workload, machine, cache, policy, &service, &bw, lease, &cals,
        )
    });

    let mut job = RunStats::default();
    let mut plan_kind = None;
    let mut per_rank = Vec::with_capacity(nranks);
    for (stats, kind) in outcomes {
        job.merge_job(&stats);
        if plan_kind.is_none() {
            plan_kind = kind;
        }
        per_rank.push(stats);
    }
    RunReport {
        workload: workload.name(),
        policy: policy.label(),
        per_rank,
        job,
        plan_kind,
    }
}

#[allow(clippy::too_many_arguments)]
fn run_rank(
    ctx: &mut RankCtx,
    workload: &dyn Workload,
    machine: &MachineConfig,
    cache: &CacheModel,
    policy: &Policy,
    service: &DramService,
    bw: &SharedBandwidth,
    lease: &CapacitySchedule,
    cals: &HashMap<usize, unimem_perf::Calibration>,
) -> (RunStats, Option<SearchKind>) {
    let rank = ctx.rank();
    let nranks = ctx.nranks();
    let client = bw.client(rank);
    let per_rank = |node_budget: Bytes| Bytes(node_budget.get() / machine.ranks_per_node as u64);

    // Register target data objects (unimem_malloc).
    let mut registry = ObjectRegistry::new();
    for spec in workload.objects(rank, nranks) {
        registry.register(spec);
    }

    // Set up the placement policy.
    let mut rp = match policy {
        Policy::DramOnly => RankPolicy::Fixed {
            in_dram: BTreeSet::new(),
            all_dram: true,
        },
        Policy::NvmOnly => RankPolicy::Fixed {
            in_dram: BTreeSet::new(),
            all_dram: false,
        },
        Policy::Static { in_dram, .. } => {
            let set = in_dram
                .iter()
                .filter_map(|name| registry.lookup(name))
                .flat_map(|id| registry.get(id).units().collect::<Vec<_>>())
                .collect();
            RankPolicy::Fixed {
                in_dram: set,
                all_dram: false,
            }
        }
        Policy::Unimem(cfg) => {
            if cfg.partitioning {
                // Chunks are sized against the lease's peak: a chunk that
                // fits DRAM at the high-water lease simply stays in NVM
                // while the lease is lower.
                partition_large_objects(
                    &mut registry,
                    per_rank(lease.peak()),
                    cfg.partition_policy,
                );
            }
            // The models reason about this rank's share of the node: tier
            // bandwidth over occupancy and the helper's fair copy-path
            // slice. The Eq. 4 contention terms charge hidden copies for
            // the load they put on the pools each direction actually
            // touches — an admission reads NVM and writes DRAM, an
            // eviction the reverse (which is far harsher on
            // write-asymmetric technologies).
            let occ = client.occupancy();
            let rho = client.copy_rate().bytes_per_s();
            let pressure = |read_pool: unimem_sim::Bandwidth, write_pool: unimem_sim::Bandwidth| {
                if machine.helper_contention {
                    rho / read_pool.bytes_per_s().min(write_pool.bytes_per_s())
                } else {
                    0.0
                }
            };
            let model = ModelParams::new(
                machine.rank_share(TierKind::Dram, occ),
                machine.rank_share(TierKind::Nvm, occ),
                client.copy_rate(),
                *cals
                    .get(&occ)
                    .expect("calibration computed per node occupancy for Unimem runs"),
            )
            .with_contention_penalties(
                pressure(machine.nvm.read_bw, machine.dram.write_bw),
                pressure(machine.dram.read_bw, machine.nvm.write_bw),
            );
            let mut committed = BTreeSet::new();
            let mut grants = HashMap::new();
            if cfg.initial_placement {
                for u in initial_placement(&registry, per_rank(lease.at(0))) {
                    if let Some(g) = service.reserve(rank, registry.unit_size(u)) {
                        committed.insert(u);
                        grants.insert(u, g);
                    }
                }
            }
            RankPolicy::Unimem(Box::new(UnimemState {
                sampler: Sampler::new(
                    cfg.sampler,
                    cfg.seed ^ (rank as u64).wrapping_mul(0x9e3779b9),
                ),
                engine: MigrationEngine::new(HelperLink::Shared(client.clone())),
                monitor: None,
                profile: IterationProfile::new(),
                refs: None,
                enforcer: None,
                committed,
                grants,
                profiling: true,
                cap_per_rank: per_rank(lease.at(0)),
                model,
                cfg: cfg.clone(),
            }))
        }
    };

    let mut tracker = PhaseTracker::new();
    let mut stats = RunStats::default();
    let iterations = workload.iterations();

    for it in 0..iterations {
        tracker.begin_iteration();
        let steps = workload.script(rank, nranks, it);

        // Build the reference table from the first iteration's structure
        // (the directive-declared dependency information of §3.3).
        if let RankPolicy::Unimem(st) = &mut rp {
            if st.refs.is_none() {
                st.refs = Some(build_refs(&steps, &registry));
            }

            // Lease boundary: the arbiter may have granted or revoked
            // DRAM since the previous iteration. The knapsack capacity
            // follows the lease; with a complete profile in hand the
            // placement re-runs immediately, evicting revoked budget
            // (the new plan fits the new capacity) or putting granted
            // budget to use.
            let cap_now = per_rank(lease.at(it));
            if cap_now != st.cap_per_rank {
                st.cap_per_rank = cap_now;
                if !st.profiling && st.profile.len() == steps.len() {
                    replace_plan(
                        st,
                        &registry,
                        service,
                        ctx,
                        &mut stats,
                        rank,
                        steps.len(),
                        (iterations - it).max(1) as u64,
                    );
                    stats.lease_replans += 1;
                }
            }
        }

        for (step_idx, step) in steps.iter().enumerate() {
            let phase = tracker.next_phase();

            // Phase boundary: enforcement + queue sync.
            if let RankPolicy::Unimem(st) = &mut rp {
                if let (Some(enf), Some(refs)) = (st.enforcer.as_mut(), st.refs.as_ref()) {
                    let phase_est = st.profile.get(phase).map(|r| r.time).unwrap_or(VDur::ZERO);
                    let cost = enf.phase_begin(
                        phase,
                        ctx.now(),
                        phase_est,
                        refs,
                        &registry,
                        &mut st.engine,
                        service,
                    );
                    ctx.advance(cost.sync + cost.stall);
                    stats.sync_overhead += cost.sync;
                    stats.migration_stall += cost.stall;
                }
            }

            match step {
                StepSpec::Compute(spec) => {
                    let dram_units: &BTreeSet<UnitId> = match &rp {
                        RankPolicy::Fixed { in_dram, .. } => in_dram,
                        RankPolicy::Unimem(st) => st.dram_units(),
                    };
                    let all_dram = matches!(&rp, RankPolicy::Fixed { all_dram: true, .. });
                    let (phase_time, truths, contention) = ground_truth(
                        spec,
                        &registry,
                        dram_units,
                        all_dram,
                        cache,
                        &client,
                        ctx.now(),
                    );
                    ctx.advance(phase_time);
                    stats.app_time += phase_time;
                    stats.contention_time += contention.total;
                    stats.neighbor_contention_time += contention.neighbors;

                    if let RankPolicy::Unimem(st) = &mut rp {
                        if st.profiling {
                            let prof = st.sampler.sample_phase(phase_time, &truths);
                            ctx.advance(prof.overhead);
                            stats.profiling_overhead += prof.overhead;
                            let mut rec = PhaseRecord::from_profile(&prof);
                            rec.time = phase_time;
                            st.profile.insert(phase, rec);
                        }
                        if !st.profiling {
                            if let Some(mon) = &mut st.monitor {
                                if mon.observe(phase, phase_time) && st.cfg.adaptation {
                                    st.profiling = true;
                                    stats.reprofiles += 1;
                                }
                            }
                        }
                    }
                }
                comm => {
                    let t0 = ctx.now();
                    run_comm(ctx, comm, it, step_idx);
                    let dt = ctx.now() - t0;
                    stats.app_time += dt;
                    // Global collectives rendezvous every rank before any
                    // leaves, and their departure time is synchronized —
                    // exactly the deterministic visibility fence the
                    // shared-bandwidth ledger needs to publish neighbor
                    // helper traffic. Only pairwise exchanges (Halo) are
                    // excluded: a future collective step kind should
                    // fence by default, not silently go dark.
                    if !matches!(comm, StepSpec::Halo { .. }) {
                        client.fence(ctx.now());
                    }
                    if let RankPolicy::Unimem(st) = &mut rp {
                        if st.profiling {
                            st.profile.insert(
                                phase,
                                PhaseRecord {
                                    units: Vec::new(),
                                    windows: st.sampler.windows_in(dt),
                                    time: dt,
                                },
                            );
                        }
                    }
                }
            }
        }

        // End of a profiled iteration: build models, decide, enforce.
        if let RankPolicy::Unimem(st) = &mut rp {
            if st.profiling && st.profile.len() == steps.len() {
                replace_plan(
                    st,
                    &registry,
                    service,
                    ctx,
                    &mut stats,
                    rank,
                    steps.len(),
                    (iterations - it).max(1) as u64,
                );
            }
        }
    }

    stats.total_time = ctx.now() - unimem_sim::VTime::ZERO;
    stats.iterations = iterations as u64;
    let plan_kind = match &rp {
        RankPolicy::Unimem(st) => {
            stats.migrations = st.engine.stats();
            st.enforcer.as_ref().map(|e| e.plan().kind)
        }
        _ => None,
    };
    (stats, plan_kind)
}

/// The placement decision step, shared by the end-of-profiling path and
/// lease re-plans: charge the modeling cost, solve for the best plan at
/// the *current* capacity (`st.cap_per_rank`), and swap in a fresh
/// enforcer that transitions from the current DRAM contents. Resets the
/// variation monitor — the new placement legitimately changes phase
/// times, which must not read as workload variation.
#[allow(clippy::too_many_arguments)]
fn replace_plan(
    st: &mut UnimemState,
    registry: &ObjectRegistry,
    service: &DramService,
    ctx: &mut RankCtx,
    stats: &mut RunStats,
    rank: usize,
    steps_len: usize,
    remaining_iters: u64,
) {
    ctx.advance(st.cfg.modeling_cost);
    stats.modeling_overhead += st.cfg.modeling_cost;
    let refs = st.refs.as_ref().expect("refs built in first iteration");
    let (committed, grants) = match st.enforcer.take() {
        Some(e) => e.into_state(),
        None => (
            std::mem::take(&mut st.committed),
            std::mem::take(&mut st.grants),
        ),
    };
    let input = SearchInput {
        registry,
        profile: &st.profile,
        refs,
        model: &st.model,
        capacity: st.cap_per_rank,
        profiled_dram: &committed,
        remaining_iters,
    };
    let plan = best_plan(&input, st.cfg.use_global, st.cfg.use_local);
    let mut enf = Enforcer::new(
        plan,
        refs,
        registry,
        st.cap_per_rank,
        committed,
        grants,
        rank,
        st.cfg.sync_cost,
    );
    enf.enter_plan(ctx.now(), refs, registry, &mut st.engine, service);
    st.enforcer = Some(enf);
    st.monitor = Some(VariationMonitor::paper_default(steps_len));
    st.profiling = false;
}

/// Extra phase time attributable to shared-bandwidth contention, split
/// by who caused it.
#[derive(Debug, Clone, Copy, Default)]
struct PhaseContention {
    /// Contended time minus the rank's plain node-share time.
    total: VDur,
    /// The portion caused by *other* ranks' helper traffic.
    neighbors: VDur,
}

/// One (access descriptor, placement unit) timing site of a phase.
struct AccessSite {
    unit: UnitId,
    tier: TierKind,
    misses: u64,
    miss_bytes: Bytes,
    mlp: f64,
    mix: AccessMix,
}

/// Compute ground-truth phase time and per-unit sampler inputs for a
/// compute step under the current placement, at the **contended**
/// effective bandwidth: each tier's node bandwidth is split among the
/// node's co-located ranks, and helper copies in flight during the phase
/// window (this rank's exactly, neighbors' at their fence-epoch rate)
/// take their proportional share on top. The phase window is estimated
/// from the uncontended time — a one-shot resolution of the
/// time-depends-on-window circularity, documented in
/// `unimem_hms::contention`.
fn ground_truth(
    spec: &ComputeSpec,
    registry: &ObjectRegistry,
    dram_units: &BTreeSet<UnitId>,
    all_dram: bool,
    cache: &CacheModel,
    bw: &BwClient,
    now: VTime,
) -> (VDur, Vec<GroundTruth>, PhaseContention) {
    let phase_total: Bytes = spec.accesses.iter().map(|a| a.touched).sum();
    let mut sites: Vec<AccessSite> = Vec::new();
    for acc in &spec.accesses {
        let obj = registry.get(acc.obj);
        let chunks = obj.chunks;
        let frac = 1.0 / f64::from(chunks);
        for unit in obj.units() {
            let a = if chunks == 1 { *acc } else { acc.scaled(frac) };
            let est = cache.misses(&a, phase_total);
            if est.misses == 0 {
                continue;
            }
            let tier = if all_dram || dram_units.contains(&unit) {
                TierKind::Dram
            } else {
                TierKind::Nvm
            };
            sites.push(AccessSite {
                unit,
                tier,
                misses: est.misses,
                miss_bytes: est.miss_bytes,
                mlp: a.pattern.mlp(),
                mix: a.mix,
            });
        }
    }
    let site_time = |s: &AccessSite, dram: &TierParams, nvm: &TierParams| {
        let p = match s.tier {
            TierKind::Dram => dram,
            TierKind::Nvm => nvm,
        };
        p.access_time(s.misses, s.miss_bytes, s.mlp, s.mix)
    };
    let mem_time = |dram: &TierParams, nvm: &TierParams| -> VDur {
        sites.iter().map(|s| site_time(s, dram, nvm)).sum()
    };

    // Pass 1 — the rank's plain share of the node, no helper flows: this
    // fixes the window the flow accounting is evaluated over.
    let base_d = bw.effective(TierKind::Dram, now, now, FlowScope::None);
    let base_n = bw.effective(TierKind::Nvm, now, now, FlowScope::None);
    let t_base = mem_time(&base_d, &base_n);
    let w1 = now + spec.cpu + t_base;

    // Pass 2 — charge helper flows over the window: own traffic alone
    // (attribution), then own + fenced-visible neighbor traffic (the
    // clock that actually advances).
    let own_d = bw.effective(TierKind::Dram, now, w1, FlowScope::Own);
    let own_n = bw.effective(TierKind::Nvm, now, w1, FlowScope::Own);
    let t_own = mem_time(&own_d, &own_n);
    let all_d = bw.effective(TierKind::Dram, now, w1, FlowScope::All);
    let all_n = bw.effective(TierKind::Nvm, now, w1, FlowScope::All);

    // A phase may carry several descriptors for the same object (e.g. a
    // streaming factor pass plus a dependent back-substitution); traffic
    // merges per placement unit for the sampler, at contended times.
    let mut truths: Vec<GroundTruth> = Vec::new();
    let mut t_full = VDur::ZERO;
    for s in &sites {
        let t = site_time(s, &all_d, &all_n);
        t_full += t;
        match truths.iter_mut().find(|g| g.unit == s.unit) {
            Some(g) => {
                g.misses += s.misses;
                g.miss_bytes += s.miss_bytes;
                g.mem_time += t;
            }
            None => truths.push(GroundTruth {
                unit: s.unit,
                misses: s.misses,
                miss_bytes: s.miss_bytes,
                mem_time: t,
            }),
        }
    }
    let contention = PhaseContention {
        total: t_full.saturating_sub(t_base),
        neighbors: t_full.saturating_sub(t_own),
    };
    (spec.cpu + t_full, truths, contention)
}

/// Execute a communication step (one phase).
fn run_comm(ctx: &mut RankCtx, step: &StepSpec, iter: usize, step_idx: usize) {
    match step {
        StepSpec::Barrier => ctx.barrier(),
        StepSpec::AllreduceSum { bytes } => ctx.allreduce_modeled(*bytes),
        StepSpec::Bcast { bytes } => ctx.bcast_modeled(*bytes),
        StepSpec::Alltoall { bytes } => ctx.alltoall_modeled(*bytes),
        StepSpec::Halo { neighbors, bytes } => {
            let tag_base = (iter as u64) << 20 | (step_idx as u64) << 8;
            let mut reqs = Vec::with_capacity(neighbors.len());
            for &n in neighbors {
                ctx.isend(n, tag_base | 1, *bytes, &[]);
                reqs.push(ctx.irecv(n, tag_base | 1));
            }
            for r in reqs {
                ctx.wait(r);
            }
        }
        StepSpec::Compute(_) => unreachable!("compute handled by caller"),
    }
}

/// Reference table from the script: a phase references the units of every
/// object its descriptors touch. Communication phases reference nothing
/// (packing traffic lives in the adjacent compute descriptors).
fn build_refs(steps: &[StepSpec], registry: &ObjectRegistry) -> PhaseRefTable {
    let mut refs = PhaseRefTable::new(steps.len());
    for (i, step) in steps.iter().enumerate() {
        if let StepSpec::Compute(spec) = step {
            for acc in &spec.accesses {
                for unit in registry.get(acc.obj).units() {
                    refs.add_ref(PhaseId(i as u32), unit);
                }
            }
        }
    }
    refs
}

#[cfg(test)]
mod tests {
    use super::*;
    use unimem_cache::AccessPattern;
    use unimem_hms::object::ObjId;

    /// Two-object synthetic workload: a streaming-hot `hot` and a cold
    /// `cold`, two compute phases and an allreduce per iteration.
    struct Synth {
        iters: usize,
    }

    impl Workload for Synth {
        fn name(&self) -> String {
            "synth".into()
        }

        fn objects(&self, _rank: usize, _nranks: usize) -> Vec<ObjectSpec> {
            vec![
                ObjectSpec::new("hot", Bytes::mib(100)).est_refs(1e9),
                ObjectSpec::new("cold", Bytes::mib(100)).est_refs(1e6),
            ]
        }

        fn script(&self, _rank: usize, _nranks: usize, _iter: usize) -> Vec<StepSpec> {
            vec![
                StepSpec::Compute(ComputeSpec {
                    label: "sweep",
                    cpu: VDur::from_millis(5.0),
                    accesses: vec![
                        ObjAccess::new(
                            ObjId(0),
                            40_000_000,
                            Bytes::mib(100),
                            AccessPattern::Streaming { stride: Bytes(8) },
                        ),
                        ObjAccess::new(ObjId(1), 400_000, Bytes::mib(100), AccessPattern::Random),
                    ],
                }),
                StepSpec::AllreduceSum { bytes: Bytes(64) },
            ]
        }

        fn iterations(&self) -> usize {
            self.iters
        }
    }

    fn machine() -> MachineConfig {
        MachineConfig::nvm_bw_fraction(0.5)
    }

    #[test]
    fn dram_only_faster_than_nvm_only() {
        let w = Synth { iters: 4 };
        let m = machine();
        let c = CacheModel::platform_a();
        let dram = run_workload(&w, &m, &c, 2, &Policy::DramOnly);
        let nvm = run_workload(&w, &m, &c, 2, &Policy::NvmOnly);
        assert!(
            nvm.time().secs() > dram.time().secs() * 1.2,
            "dram={} nvm={}",
            dram.time(),
            nvm.time()
        );
    }

    #[test]
    fn unimem_lands_between_and_close_to_dram() {
        let w = Synth { iters: 10 };
        let m = machine();
        let c = CacheModel::platform_a();
        let dram = run_workload(&w, &m, &c, 2, &Policy::DramOnly).time();
        let nvm = run_workload(&w, &m, &c, 2, &Policy::NvmOnly).time();
        let uni = run_workload(&w, &m, &c, 2, &Policy::unimem()).time();
        assert!(uni.secs() <= nvm.secs() * 1.01, "uni={uni} nvm={nvm}");
        assert!(uni.secs() >= dram.secs() * 0.99, "uni={uni} dram={dram}");
        // The hot object dominates; Unimem should close most of the gap.
        let gap_closed = (nvm.secs() - uni.secs()) / (nvm.secs() - dram.secs());
        assert!(gap_closed > 0.5, "gap closed only {gap_closed:.2}");
    }

    #[test]
    fn static_pin_of_hot_object_helps() {
        let w = Synth { iters: 4 };
        let m = machine();
        let c = CacheModel::platform_a();
        let nvm = run_workload(&w, &m, &c, 1, &Policy::NvmOnly).time();
        let pinned = run_workload(
            &w,
            &m,
            &c,
            1,
            &Policy::Static {
                in_dram: vec!["hot".into()],
                label: "pin hot".into(),
            },
        )
        .time();
        assert!(pinned.secs() < nvm.secs());
    }

    #[test]
    fn runs_are_deterministic() {
        let w = Synth { iters: 5 };
        let m = machine();
        let c = CacheModel::platform_a();
        let a = run_workload(&w, &m, &c, 4, &Policy::unimem());
        let b = run_workload(&w, &m, &c, 4, &Policy::unimem());
        assert_eq!(a.time().secs(), b.time().secs());
        assert_eq!(a.job.migrations, b.job.migrations);
    }

    #[test]
    fn report_json_names_workload_policy_and_ranks() {
        let w = Synth { iters: 3 };
        let m = machine();
        let c = CacheModel::platform_a();
        let rep = run_workload(&w, &m, &c, 2, &Policy::unimem());
        let j = rep.to_json();
        assert_eq!(j.get("workload").and_then(|v| v.as_str()), Some("synth"));
        assert_eq!(j.get("policy").and_then(|v| v.as_str()), Some("Unimem"));
        assert!(j.get("plan_kind").and_then(|v| v.as_str()).is_some());
        assert_eq!(
            j.get("per_rank").and_then(|v| v.as_arr()).map(<[_]>::len),
            Some(2)
        );
    }

    #[test]
    fn unimem_reports_stats() {
        let w = Synth { iters: 6 };
        let m = machine();
        let c = CacheModel::platform_a();
        let rep = run_workload(&w, &m, &c, 1, &Policy::unimem());
        assert!(rep.plan_kind.is_some());
        assert!(
            rep.job.pure_runtime_cost() < 0.05,
            "cost={}",
            rep.job.pure_runtime_cost()
        );
        assert_eq!(rep.job.iterations, 6);
        // Initial placement put `hot` in DRAM already (est_refs), so few
        // migrations are expected — but profiling must have happened.
        assert!(rep.job.profiling_overhead > VDur::ZERO);
    }

    #[test]
    fn ablation_rungs_monotonically_enable() {
        let c0 = UnimemConfig::ablation(1);
        assert!(c0.use_global && !c0.use_local && !c0.partitioning && !c0.initial_placement);
        let c3 = UnimemConfig::ablation(4);
        assert!(c3.use_global && c3.use_local && c3.partitioning && c3.initial_placement);
    }
}
