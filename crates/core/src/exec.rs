//! The execution driver: runs a [`Workload`] under a placement [`Policy`]
//! on a machine model and reports virtual times plus runtime statistics.
//!
//! A workload is a *phase script*: per rank and iteration, a sequence of
//! steps — computation (with per-object access descriptors at class scale)
//! or communication. The driver replays the script on the mini-MPI
//! substrate, computing ground-truth phase times from the cache model and
//! tier parameters under the *current* placement, while the Unimem runtime
//! (when enabled) watches through the sampling profiler and manages
//! placement exactly as §3.1 prescribes: profile the first iteration,
//! decide at its end, enforce thereafter, re-profile on variation.
//!
//! Every figure in the paper is a ratio of the run times this driver
//! produces under different policies and machine configurations.

use crate::adapt::VariationMonitor;
use crate::deps::PhaseRefTable;
use crate::enforce::Enforcer;
use crate::initial::initial_placement;
use crate::model::ModelParams;
use crate::partition::{partition_large_objects, PartitionPolicy};
use crate::profile::{IterationProfile, PhaseRecord};
use crate::search::{best_plan, SearchInput, SearchKind};
use crate::stats::RunStats;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap};
use unimem_cache::{CacheModel, ObjAccess};
use unimem_hms::object::{ObjectRegistry, ObjectSpec, UnitId};
use unimem_hms::tier::TierKind;
use unimem_hms::{DramService, MachineConfig, MigrationEngine};
use unimem_mpi::{CommWorld, NetParams, PhaseId, PhaseTracker, RankCtx};
use unimem_perf::sampler::GroundTruth;
use unimem_perf::{calibrate, Sampler, SamplerConfig};
use unimem_sim::{Bytes, VDur};

/// A computation phase of the script.
#[derive(Debug, Clone, PartialEq)]
pub struct ComputeSpec {
    pub label: &'static str,
    /// Pure CPU time, independent of data placement.
    pub cpu: VDur,
    /// Class-scale access descriptors for the target objects it touches.
    pub accesses: Vec<ObjAccess>,
}

/// One step of a rank's per-iteration script. Each step is one phase
/// (computation, or a blocking communication operation).
#[derive(Debug, Clone, PartialEq)]
pub enum StepSpec {
    Compute(ComputeSpec),
    Barrier,
    AllreduceSum { bytes: Bytes },
    Bcast { bytes: Bytes },
    Alltoall { bytes: Bytes },
    /// Nearest-neighbour exchange: eager sends then waits (one phase).
    Halo { neighbors: Vec<usize>, bytes: Bytes },
}

/// A phase-structured iterative application.
pub trait Workload: Sync {
    fn name(&self) -> String;
    /// Target data objects of one rank (Table 3), in registration order —
    /// `ObjId(k)` is the k-th spec returned here.
    fn objects(&self, rank: usize, nranks: usize) -> Vec<ObjectSpec>;
    /// The per-iteration phase script. The *structure* (step kinds and
    /// order) must not vary across iterations; access volumes may.
    fn script(&self, rank: usize, nranks: usize, iter: usize) -> Vec<StepSpec>;
    fn iterations(&self) -> usize;
}

/// Runtime configuration for the Unimem policy, with ablation toggles
/// matching Fig. 11's four techniques.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UnimemConfig {
    pub use_global: bool,
    pub use_local: bool,
    pub partitioning: bool,
    pub initial_placement: bool,
    pub adaptation: bool,
    pub sampler: SamplerConfig,
    pub seed: u64,
    /// Cost charged per placement decision (model + knapsack solve).
    pub modeling_cost: VDur,
    /// Cost charged per phase boundary (helper-queue status check).
    pub sync_cost: VDur,
    pub partition_policy: PartitionPolicy,
}

impl Default for UnimemConfig {
    fn default() -> UnimemConfig {
        UnimemConfig {
            use_global: true,
            use_local: true,
            partitioning: true,
            initial_placement: true,
            adaptation: true,
            sampler: SamplerConfig::default(),
            seed: 0x5eed,
            modeling_cost: VDur::from_micros(120.0),
            sync_cost: VDur::from_nanos(250.0),
            partition_policy: PartitionPolicy::default(),
        }
    }
}

impl UnimemConfig {
    /// Fig. 11 ablation rungs: 1 = global only, 2 = +local, 3 =
    /// +partitioning, 4 = +initial placement (full system sans adaptation
    /// toggles, which stay on).
    pub fn ablation(rung: u8) -> UnimemConfig {
        UnimemConfig {
            use_global: rung >= 1,
            use_local: rung >= 2,
            partitioning: rung >= 3,
            initial_placement: rung >= 4,
            ..UnimemConfig::default()
        }
    }
}

/// Placement policy for a run.
#[derive(Debug, Clone, PartialEq)]
pub enum Policy {
    /// Unlimited DRAM (the paper's DRAM-only baseline machine).
    DramOnly,
    /// Everything in NVM.
    NvmOnly,
    /// Named objects pinned in DRAM for the whole run (Fig. 4 and the
    /// X-Mem baseline feed this).
    Static { in_dram: Vec<String>, label: String },
    Unimem(UnimemConfig),
}

impl Policy {
    pub fn label(&self) -> String {
        match self {
            Policy::DramOnly => "DRAM-only".into(),
            Policy::NvmOnly => "NVM-only".into(),
            Policy::Static { label, .. } => label.clone(),
            Policy::Unimem(_) => "Unimem".into(),
        }
    }

    pub fn unimem() -> Policy {
        Policy::Unimem(UnimemConfig::default())
    }
}

/// Result of one job run.
#[derive(Debug, Clone)]
pub struct RunReport {
    pub workload: String,
    pub policy: String,
    pub per_rank: Vec<RunStats>,
    /// Job-level merge: max times, summed counters.
    pub job: RunStats,
    /// Which search won (rank 0's decision), for Unimem runs.
    pub plan_kind: Option<SearchKind>,
}

impl RunReport {
    /// Job completion time (slowest rank).
    pub fn time(&self) -> VDur {
        self.job.total_time
    }

    /// The winning plan kind as JSON (`"global"`/`"local"`/`null`), the
    /// one convention every report serializer shares.
    pub fn plan_kind_json(&self) -> unimem_sim::Json {
        match self.plan_kind {
            Some(k) => unimem_sim::Json::from(k.name()),
            None => unimem_sim::Json::Null,
        }
    }

    /// Deterministic JSON form of the whole report: workload, policy, the
    /// winning plan kind, the job-level merge, and every rank's stats in
    /// rank order. Equal reports serialize to byte-identical text — the
    /// determinism regression tests compare these bytes across repeated
    /// multi-threaded runs.
    pub fn to_json(&self) -> unimem_sim::Json {
        use unimem_sim::Json;
        let mut o = Json::obj();
        o.push("workload", self.workload.as_str())
            .push("policy", self.policy.as_str())
            .push("plan_kind", self.plan_kind_json())
            .push("time_s", self.time())
            .push("job", self.job.to_json())
            .push(
                "per_rank",
                Json::Arr(self.per_rank.iter().map(RunStats::to_json).collect()),
            );
        o
    }
}

/// Per-rank placement state.
enum RankPolicy {
    /// Fixed tier assignment: units in the set are in DRAM; `all_dram`
    /// short-circuits for the DRAM-only machine.
    Fixed {
        in_dram: BTreeSet<UnitId>,
        all_dram: bool,
    },
    Unimem(Box<UnimemState>),
}

struct UnimemState {
    cfg: UnimemConfig,
    model: ModelParams,
    sampler: Sampler,
    engine: MigrationEngine,
    monitor: Option<VariationMonitor>,
    profile: IterationProfile,
    refs: Option<PhaseRefTable>,
    enforcer: Option<Enforcer>,
    /// Pre-plan DRAM contents (initial placement) and their grants.
    committed: BTreeSet<UnitId>,
    grants: HashMap<UnitId, unimem_hms::alloc::Region>,
    profiling: bool,
    cap_per_rank: Bytes,
}

impl UnimemState {
    fn dram_units(&self) -> &BTreeSet<UnitId> {
        self.enforcer
            .as_ref()
            .map(|e| e.committed())
            .unwrap_or(&self.committed)
    }
}

/// Run `workload` on `nranks` ranks of the machine under `policy`.
pub fn run_workload(
    workload: &dyn Workload,
    machine: &MachineConfig,
    cache: &CacheModel,
    nranks: usize,
    policy: &Policy,
) -> RunReport {
    let service = DramService::new(nranks, machine.ranks_per_node, machine.dram_capacity);
    let cap_per_rank = Bytes(machine.dram_capacity.get() / machine.ranks_per_node as u64);
    // Offline calibration happens once per platform, outside the job.
    let cal = match policy {
        Policy::Unimem(cfg) => Some(calibrate(machine, cache, cfg.sampler, cfg.seed)),
        _ => None,
    };

    let outcomes = CommWorld::run(nranks, NetParams::default(), |ctx| {
        run_rank(
            ctx,
            workload,
            machine,
            cache,
            policy,
            &service,
            cap_per_rank,
            cal,
        )
    });

    let mut job = RunStats::default();
    let mut plan_kind = None;
    let mut per_rank = Vec::with_capacity(nranks);
    for (stats, kind) in outcomes {
        job.merge_job(&stats);
        if plan_kind.is_none() {
            plan_kind = kind;
        }
        per_rank.push(stats);
    }
    RunReport {
        workload: workload.name(),
        policy: policy.label(),
        per_rank,
        job,
        plan_kind,
    }
}

#[allow(clippy::too_many_arguments)]
fn run_rank(
    ctx: &mut RankCtx,
    workload: &dyn Workload,
    machine: &MachineConfig,
    cache: &CacheModel,
    policy: &Policy,
    service: &DramService,
    cap_per_rank: Bytes,
    cal: Option<unimem_perf::Calibration>,
) -> (RunStats, Option<SearchKind>) {
    let rank = ctx.rank();
    let nranks = ctx.nranks();

    // Register target data objects (unimem_malloc).
    let mut registry = ObjectRegistry::new();
    for spec in workload.objects(rank, nranks) {
        registry.register(spec);
    }

    // Set up the placement policy.
    let mut rp = match policy {
        Policy::DramOnly => RankPolicy::Fixed {
            in_dram: BTreeSet::new(),
            all_dram: true,
        },
        Policy::NvmOnly => RankPolicy::Fixed {
            in_dram: BTreeSet::new(),
            all_dram: false,
        },
        Policy::Static { in_dram, .. } => {
            let set = in_dram
                .iter()
                .filter_map(|name| registry.lookup(name))
                .flat_map(|id| registry.get(id).units().collect::<Vec<_>>())
                .collect();
            RankPolicy::Fixed {
                in_dram: set,
                all_dram: false,
            }
        }
        Policy::Unimem(cfg) => {
            if cfg.partitioning {
                partition_large_objects(&mut registry, cap_per_rank, cfg.partition_policy);
            }
            let model = ModelParams::new(
                machine.dram,
                machine.nvm,
                machine.copy_bw,
                cal.expect("calibration computed for Unimem runs"),
            );
            let mut committed = BTreeSet::new();
            let mut grants = HashMap::new();
            if cfg.initial_placement {
                for u in initial_placement(&registry, cap_per_rank) {
                    if let Some(g) = service.reserve(rank, registry.unit_size(u)) {
                        committed.insert(u);
                        grants.insert(u, g);
                    }
                }
            }
            RankPolicy::Unimem(Box::new(UnimemState {
                sampler: Sampler::new(cfg.sampler, cfg.seed ^ (rank as u64).wrapping_mul(0x9e3779b9)),
                engine: MigrationEngine::new(machine.copy_bw),
                monitor: None,
                profile: IterationProfile::new(),
                refs: None,
                enforcer: None,
                committed,
                grants,
                profiling: true,
                cap_per_rank,
                model,
                cfg: cfg.clone(),
            }))
        }
    };

    let mut tracker = PhaseTracker::new();
    let mut stats = RunStats::default();
    let iterations = workload.iterations();

    for it in 0..iterations {
        tracker.begin_iteration();
        let steps = workload.script(rank, nranks, it);

        // Build the reference table from the first iteration's structure
        // (the directive-declared dependency information of §3.3).
        if let RankPolicy::Unimem(st) = &mut rp {
            if st.refs.is_none() {
                st.refs = Some(build_refs(&steps, &registry));
            }
        }

        for (step_idx, step) in steps.iter().enumerate() {
            let phase = tracker.next_phase();

            // Phase boundary: enforcement + queue sync.
            if let RankPolicy::Unimem(st) = &mut rp {
                if let (Some(enf), Some(refs)) = (st.enforcer.as_mut(), st.refs.as_ref()) {
                    let phase_est = st
                        .profile
                        .get(phase)
                        .map(|r| r.time)
                        .unwrap_or(VDur::ZERO);
                    let cost = enf.phase_begin(
                        phase, ctx.now(), phase_est, refs, &registry, &mut st.engine, service,
                    );
                    ctx.advance(cost.sync + cost.stall);
                    stats.sync_overhead += cost.sync;
                    stats.migration_stall += cost.stall;
                }
            }

            match step {
                StepSpec::Compute(spec) => {
                    let dram_units: &BTreeSet<UnitId> = match &rp {
                        RankPolicy::Fixed { in_dram, .. } => in_dram,
                        RankPolicy::Unimem(st) => st.dram_units(),
                    };
                    let all_dram = matches!(
                        &rp,
                        RankPolicy::Fixed { all_dram: true, .. }
                    );
                    let (phase_time, truths) = ground_truth(
                        spec, &registry, dram_units, all_dram, cache, machine,
                    );
                    ctx.advance(phase_time);
                    stats.app_time += phase_time;

                    if let RankPolicy::Unimem(st) = &mut rp {
                        if st.profiling {
                            let prof = st.sampler.sample_phase(phase_time, &truths);
                            ctx.advance(prof.overhead);
                            stats.profiling_overhead += prof.overhead;
                            let mut rec = PhaseRecord::from_profile(&prof);
                            rec.time = phase_time;
                            st.profile.insert(phase, rec);
                        }
                        if !st.profiling {
                            if let Some(mon) = &mut st.monitor {
                                if mon.observe(phase, phase_time) && st.cfg.adaptation {
                                    st.profiling = true;
                                    stats.reprofiles += 1;
                                }
                            }
                        }
                    }
                }
                comm => {
                    let t0 = ctx.now();
                    run_comm(ctx, comm, it, step_idx);
                    let dt = ctx.now() - t0;
                    stats.app_time += dt;
                    if let RankPolicy::Unimem(st) = &mut rp {
                        if st.profiling {
                            st.profile.insert(
                                phase,
                                PhaseRecord {
                                    units: Vec::new(),
                                    windows: st.sampler.windows_in(dt),
                                    time: dt,
                                },
                            );
                        }
                    }
                }
            }
        }

        // End of a profiled iteration: build models, decide, enforce.
        if let RankPolicy::Unimem(st) = &mut rp {
            if st.profiling && st.profile.len() == steps.len() {
                ctx.advance(st.cfg.modeling_cost);
                stats.modeling_overhead += st.cfg.modeling_cost;
                let refs = st.refs.as_ref().expect("refs built in first iteration");
                let (committed, grants) = match st.enforcer.take() {
                    Some(e) => e.into_state(),
                    None => (
                        std::mem::take(&mut st.committed),
                        std::mem::take(&mut st.grants),
                    ),
                };
                let input = SearchInput {
                    registry: &registry,
                    profile: &st.profile,
                    refs,
                    model: &st.model,
                    capacity: st.cap_per_rank,
                    profiled_dram: &committed,
                    remaining_iters: (iterations - it).max(1) as u64,
                };
                let plan = best_plan(&input, st.cfg.use_global, st.cfg.use_local);
                let mut enf = Enforcer::new(
                    plan,
                    refs,
                    &registry,
                    st.cap_per_rank,
                    committed,
                    grants,
                    rank,
                    st.cfg.sync_cost,
                );
                enf.enter_plan(ctx.now(), refs, &registry, &mut st.engine, service);
                st.enforcer = Some(enf);
                // Fresh baseline: the new placement legitimately changes
                // phase times; the monitor must not mistake that for
                // workload variation.
                st.monitor = Some(VariationMonitor::paper_default(steps.len()));
                st.profiling = false;
            }
        }
    }

    stats.total_time = ctx.now() - unimem_sim::VTime::ZERO;
    stats.iterations = iterations as u64;
    let plan_kind = match &rp {
        RankPolicy::Unimem(st) => {
            stats.migrations = st.engine.stats();
            st.enforcer.as_ref().map(|e| e.plan().kind)
        }
        _ => None,
    };
    (stats, plan_kind)
}

/// Compute ground-truth phase time and per-unit sampler inputs for a
/// compute step under the current placement.
fn ground_truth(
    spec: &ComputeSpec,
    registry: &ObjectRegistry,
    dram_units: &BTreeSet<UnitId>,
    all_dram: bool,
    cache: &CacheModel,
    machine: &MachineConfig,
) -> (VDur, Vec<GroundTruth>) {
    let phase_total: Bytes = spec.accesses.iter().map(|a| a.touched).sum();
    // A phase may carry several descriptors for the same object (e.g. a
    // streaming factor pass plus a dependent back-substitution); traffic
    // merges per placement unit for the sampler.
    let mut truths: Vec<GroundTruth> = Vec::new();
    let mut mem_time = VDur::ZERO;
    for acc in &spec.accesses {
        let obj = registry.get(acc.obj);
        let chunks = obj.chunks;
        let frac = 1.0 / f64::from(chunks);
        for unit in obj.units() {
            let a = if chunks == 1 {
                *acc
            } else {
                acc.scaled(frac)
            };
            let est = cache.misses(&a, phase_total);
            if est.misses == 0 {
                continue;
            }
            let tier = if all_dram || dram_units.contains(&unit) {
                TierKind::Dram
            } else {
                TierKind::Nvm
            };
            let t = machine.tier(tier).access_time(
                est.misses,
                est.miss_bytes,
                a.pattern.mlp(),
                a.mix,
            );
            mem_time += t;
            match truths.iter_mut().find(|g| g.unit == unit) {
                Some(g) => {
                    g.misses += est.misses;
                    g.miss_bytes += est.miss_bytes;
                    g.mem_time += t;
                }
                None => truths.push(GroundTruth {
                    unit,
                    misses: est.misses,
                    miss_bytes: est.miss_bytes,
                    mem_time: t,
                }),
            }
        }
    }
    (spec.cpu + mem_time, truths)
}

/// Execute a communication step (one phase).
fn run_comm(ctx: &mut RankCtx, step: &StepSpec, iter: usize, step_idx: usize) {
    match step {
        StepSpec::Barrier => ctx.barrier(),
        StepSpec::AllreduceSum { bytes } => ctx.allreduce_modeled(*bytes),
        StepSpec::Bcast { bytes } => ctx.bcast_modeled(*bytes),
        StepSpec::Alltoall { bytes } => ctx.alltoall_modeled(*bytes),
        StepSpec::Halo { neighbors, bytes } => {
            let tag_base = (iter as u64) << 20 | (step_idx as u64) << 8;
            let mut reqs = Vec::with_capacity(neighbors.len());
            for &n in neighbors {
                ctx.isend(n, tag_base | 1, *bytes, &[]);
                reqs.push(ctx.irecv(n, tag_base | 1));
            }
            for r in reqs {
                ctx.wait(r);
            }
        }
        StepSpec::Compute(_) => unreachable!("compute handled by caller"),
    }
}

/// Reference table from the script: a phase references the units of every
/// object its descriptors touch. Communication phases reference nothing
/// (packing traffic lives in the adjacent compute descriptors).
fn build_refs(steps: &[StepSpec], registry: &ObjectRegistry) -> PhaseRefTable {
    let mut refs = PhaseRefTable::new(steps.len());
    for (i, step) in steps.iter().enumerate() {
        if let StepSpec::Compute(spec) = step {
            for acc in &spec.accesses {
                for unit in registry.get(acc.obj).units() {
                    refs.add_ref(PhaseId(i as u32), unit);
                }
            }
        }
    }
    refs
}

#[cfg(test)]
mod tests {
    use super::*;
    use unimem_cache::AccessPattern;
    use unimem_hms::object::ObjId;

    /// Two-object synthetic workload: a streaming-hot `hot` and a cold
    /// `cold`, two compute phases and an allreduce per iteration.
    struct Synth {
        iters: usize,
    }

    impl Workload for Synth {
        fn name(&self) -> String {
            "synth".into()
        }

        fn objects(&self, _rank: usize, _nranks: usize) -> Vec<ObjectSpec> {
            vec![
                ObjectSpec::new("hot", Bytes::mib(100)).est_refs(1e9),
                ObjectSpec::new("cold", Bytes::mib(100)).est_refs(1e6),
            ]
        }

        fn script(&self, _rank: usize, _nranks: usize, _iter: usize) -> Vec<StepSpec> {
            vec![
                StepSpec::Compute(ComputeSpec {
                    label: "sweep",
                    cpu: VDur::from_millis(5.0),
                    accesses: vec![
                        ObjAccess::new(
                            ObjId(0),
                            40_000_000,
                            Bytes::mib(100),
                            AccessPattern::Streaming { stride: Bytes(8) },
                        ),
                        ObjAccess::new(
                            ObjId(1),
                            400_000,
                            Bytes::mib(100),
                            AccessPattern::Random,
                        ),
                    ],
                }),
                StepSpec::AllreduceSum { bytes: Bytes(64) },
            ]
        }

        fn iterations(&self) -> usize {
            self.iters
        }
    }

    fn machine() -> MachineConfig {
        MachineConfig::nvm_bw_fraction(0.5)
    }

    #[test]
    fn dram_only_faster_than_nvm_only() {
        let w = Synth { iters: 4 };
        let m = machine();
        let c = CacheModel::platform_a();
        let dram = run_workload(&w, &m, &c, 2, &Policy::DramOnly);
        let nvm = run_workload(&w, &m, &c, 2, &Policy::NvmOnly);
        assert!(
            nvm.time().secs() > dram.time().secs() * 1.2,
            "dram={} nvm={}",
            dram.time(),
            nvm.time()
        );
    }

    #[test]
    fn unimem_lands_between_and_close_to_dram() {
        let w = Synth { iters: 10 };
        let m = machine();
        let c = CacheModel::platform_a();
        let dram = run_workload(&w, &m, &c, 2, &Policy::DramOnly).time();
        let nvm = run_workload(&w, &m, &c, 2, &Policy::NvmOnly).time();
        let uni = run_workload(&w, &m, &c, 2, &Policy::unimem()).time();
        assert!(uni.secs() <= nvm.secs() * 1.01, "uni={uni} nvm={nvm}");
        assert!(uni.secs() >= dram.secs() * 0.99, "uni={uni} dram={dram}");
        // The hot object dominates; Unimem should close most of the gap.
        let gap_closed = (nvm.secs() - uni.secs()) / (nvm.secs() - dram.secs());
        assert!(gap_closed > 0.5, "gap closed only {gap_closed:.2}");
    }

    #[test]
    fn static_pin_of_hot_object_helps() {
        let w = Synth { iters: 4 };
        let m = machine();
        let c = CacheModel::platform_a();
        let nvm = run_workload(&w, &m, &c, 1, &Policy::NvmOnly).time();
        let pinned = run_workload(
            &w,
            &m,
            &c,
            1,
            &Policy::Static {
                in_dram: vec!["hot".into()],
                label: "pin hot".into(),
            },
        )
        .time();
        assert!(pinned.secs() < nvm.secs());
    }

    #[test]
    fn runs_are_deterministic() {
        let w = Synth { iters: 5 };
        let m = machine();
        let c = CacheModel::platform_a();
        let a = run_workload(&w, &m, &c, 4, &Policy::unimem());
        let b = run_workload(&w, &m, &c, 4, &Policy::unimem());
        assert_eq!(a.time().secs(), b.time().secs());
        assert_eq!(a.job.migrations, b.job.migrations);
    }

    #[test]
    fn report_json_names_workload_policy_and_ranks() {
        let w = Synth { iters: 3 };
        let m = machine();
        let c = CacheModel::platform_a();
        let rep = run_workload(&w, &m, &c, 2, &Policy::unimem());
        let j = rep.to_json();
        assert_eq!(j.get("workload").and_then(|v| v.as_str()), Some("synth"));
        assert_eq!(j.get("policy").and_then(|v| v.as_str()), Some("Unimem"));
        assert!(j.get("plan_kind").and_then(|v| v.as_str()).is_some());
        assert_eq!(
            j.get("per_rank").and_then(|v| v.as_arr()).map(<[_]>::len),
            Some(2)
        );
    }

    #[test]
    fn unimem_reports_stats() {
        let w = Synth { iters: 6 };
        let m = machine();
        let c = CacheModel::platform_a();
        let rep = run_workload(&w, &m, &c, 1, &Policy::unimem());
        assert!(rep.plan_kind.is_some());
        assert!(rep.job.pure_runtime_cost() < 0.05, "cost={}", rep.job.pure_runtime_cost());
        assert_eq!(rep.job.iterations, 6);
        // Initial placement put `hot` in DRAM already (est_refs), so few
        // migrations are expected — but profiling must have happened.
        assert!(rep.job.profiling_overhead > VDur::ZERO);
    }

    #[test]
    fn ablation_rungs_monotonically_enable() {
        let c0 = UnimemConfig::ablation(1);
        assert!(c0.use_global && !c0.use_local && !c0.partitioning && !c0.initial_placement);
        let c3 = UnimemConfig::ablation(4);
        assert!(c3.use_global && c3.use_local && c3.partitioning && c3.initial_placement);
    }
}
