//! Initial data placement (§3.2).
//!
//! "For initial data placement, we place in DRAM those target data objects
//! with the largest amount of memory references (subject to the DRAM space
//! limitation)." The reference counts come from compiler analysis — a
//! symbolic formula over trip counts, evaluated before the main loop. Our
//! workloads export those estimates as `ObjectSpec::est_refs`; objects whose
//! count cannot be determined statically carry an estimate of zero and stay
//! in NVM, exactly as the paper's convergence-test example does.

use std::collections::BTreeSet;
use unimem_hms::object::{ObjectRegistry, UnitId};
use unimem_sim::Bytes;

/// Choose the initial DRAM contents: greedy by estimated reference count,
/// densest-first tie-break by size (more references per byte first when
/// counts tie), subject to `capacity`.
pub fn initial_placement(registry: &ObjectRegistry, capacity: Bytes) -> BTreeSet<UnitId> {
    let mut objs: Vec<_> = registry.iter().filter(|o| o.est_refs > 0.0).collect();
    // total_cmp instead of partial_cmp().expect(): registration rejects
    // non-finite estimates, but placement must not be able to panic on a
    // registry it did not build.
    objs.sort_by(|a, b| b.est_refs.total_cmp(&a.est_refs).then(a.size.cmp(&b.size)));
    let mut chosen = BTreeSet::new();
    let mut used = Bytes::ZERO;
    for o in objs {
        // Whole objects only: the partitioner has not run yet at startup.
        if o.chunks == 1 && used + o.size <= capacity {
            used += o.size;
            chosen.extend(o.units());
        }
    }
    chosen
}

#[cfg(test)]
mod tests {
    use super::*;
    use unimem_hms::object::ObjectSpec;

    fn reg(specs: &[(&str, u64, f64)]) -> ObjectRegistry {
        let mut r = ObjectRegistry::new();
        for &(name, size, refs) in specs {
            r.register(ObjectSpec::new(name, Bytes(size)).est_refs(refs));
        }
        r
    }

    #[test]
    fn hottest_objects_fill_dram_first() {
        let r = reg(&[("cold", 50, 10.0), ("hot", 50, 1000.0), ("warm", 50, 100.0)]);
        let set = initial_placement(&r, Bytes(100));
        let names: Vec<&str> = set.iter().map(|u| r.name_of(u.obj)).collect();
        assert_eq!(names, vec!["hot", "warm"]);
    }

    #[test]
    fn unknown_estimates_stay_in_nvm() {
        let r = reg(&[("runtime_sized", 10, 0.0), ("known", 10, 5.0)]);
        let set = initial_placement(&r, Bytes(100));
        assert_eq!(set.len(), 1);
        assert_eq!(r.name_of(set.iter().next().unwrap().obj), "known");
    }

    #[test]
    fn oversized_objects_skipped_but_later_ones_fit() {
        let r = reg(&[("huge", 1000, 9000.0), ("small", 40, 10.0)]);
        let set = initial_placement(&r, Bytes(100));
        assert_eq!(set.len(), 1);
        assert_eq!(r.name_of(set.iter().next().unwrap().obj), "small");
    }

    #[test]
    fn empty_capacity_places_nothing() {
        let r = reg(&[("a", 10, 5.0)]);
        assert!(initial_placement(&r, Bytes(0)).is_empty());
    }

    #[test]
    fn ties_prefer_smaller_objects() {
        let r = reg(&[("big", 80, 100.0), ("small", 20, 100.0)]);
        let set = initial_placement(&r, Bytes(90));
        let names: Vec<&str> = set.iter().map(|u| r.name_of(u.obj)).collect();
        // small first (denser), then big no longer fits… but 20+80>90,
        // so only small lands.
        assert_eq!(names, vec!["small"]);
    }
}
