//! Workload-variation monitor (§3.2).
//!
//! "Unimem monitors the performance of each phase after data movement. If
//! there is obvious performance variation (larger than 10%), then the
//! runtime will activate phase profiling again and adjust the data
//! placement decision."

use serde::{Deserialize, Serialize};
use unimem_mpi::PhaseId;
use unimem_sim::{OnlineStats, VDur};

/// Per-phase running statistics with a relative-deviation trigger.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct VariationMonitor {
    threshold: f64,
    per_phase: Vec<OnlineStats>,
    /// Number of times the monitor demanded re-profiling.
    triggers: u64,
}

impl VariationMonitor {
    /// `threshold` is relative (paper: 0.10).
    pub fn new(n_phases: usize, threshold: f64) -> VariationMonitor {
        VariationMonitor {
            threshold,
            per_phase: vec![OnlineStats::new(); n_phases],
            triggers: 0,
        }
    }

    pub fn paper_default(n_phases: usize) -> VariationMonitor {
        VariationMonitor::new(n_phases, 0.10)
    }

    /// Record a phase execution; returns true when the deviation from the
    /// running mean exceeds the threshold (re-profile now). The deviating
    /// observation still enters the statistics, so a persistent shift
    /// re-centres the mean instead of triggering forever.
    pub fn observe(&mut self, phase: PhaseId, time: VDur) -> bool {
        let stats = &mut self.per_phase[phase.0 as usize];
        // Need a baseline of at least two observations before judging.
        let fire = stats.count() >= 2 && stats.relative_deviation(time.secs()) > self.threshold;
        stats.push(time.secs());
        if fire {
            self.triggers += 1;
            // Reset this phase's history: the regime changed.
            *stats = OnlineStats::new();
            stats.push(time.secs());
        }
        fire
    }

    pub fn triggers(&self) -> u64 {
        self.triggers
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ms(x: f64) -> VDur {
        VDur::from_millis(x)
    }

    #[test]
    fn stable_phases_never_trigger() {
        let mut m = VariationMonitor::paper_default(1);
        for _ in 0..50 {
            assert!(!m.observe(PhaseId(0), ms(10.0)));
        }
        assert_eq!(m.triggers(), 0);
    }

    #[test]
    fn small_jitter_below_threshold_is_tolerated() {
        let mut m = VariationMonitor::paper_default(1);
        for i in 0..50 {
            let t = 10.0 + if i % 2 == 0 { 0.5 } else { -0.5 }; // ±5%
            assert!(!m.observe(PhaseId(0), ms(t)));
        }
    }

    #[test]
    fn regime_change_triggers_once_then_recentres() {
        let mut m = VariationMonitor::paper_default(1);
        for _ in 0..10 {
            m.observe(PhaseId(0), ms(10.0));
        }
        assert!(m.observe(PhaseId(0), ms(15.0)), "50% jump must trigger");
        // After the reset the new level becomes the baseline.
        m.observe(PhaseId(0), ms(15.0));
        for _ in 0..10 {
            assert!(!m.observe(PhaseId(0), ms(15.0)));
        }
        assert_eq!(m.triggers(), 1);
    }

    #[test]
    fn needs_baseline_before_judging() {
        let mut m = VariationMonitor::paper_default(1);
        assert!(!m.observe(PhaseId(0), ms(10.0)));
        assert!(
            !m.observe(PhaseId(0), ms(100.0)),
            "second sample is baseline"
        );
    }

    #[test]
    fn phases_are_independent() {
        let mut m = VariationMonitor::paper_default(2);
        for _ in 0..5 {
            m.observe(PhaseId(0), ms(10.0));
            m.observe(PhaseId(1), ms(20.0));
        }
        assert!(m.observe(PhaseId(1), ms(40.0)));
        assert!(!m.observe(PhaseId(0), ms(10.0)));
    }
}
