//! The lightweight performance models: Equations 1–5.
//!
//! Everything here operates on *sampled* quantities from the profiler —
//! deliberately crude, as the paper argues: "the performance models are
//! rather lightweight, and only capture the critical impacts of memory
//! bandwidth or memory latency", with the calibration constants `CF_bw` and
//! `CF_lat` absorbing sampling undercount and ignored effects.

use serde::{Deserialize, Serialize};
use unimem_hms::tier::TierParams;
use unimem_perf::eq1::eq1_bandwidth;
use unimem_perf::Calibration;
use unimem_sim::units::CACHE_LINE;
use unimem_sim::{Bandwidth, Bytes, VDur};

/// Sensitivity classification of a data object in a phase (§3.1.2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Sensitivity {
    /// `BW_obj ≥ t1% · BW_peak`: benefit dominated by bandwidth (Eq. 2).
    Bandwidth,
    /// `BW_obj < t2% · BW_peak`: benefit dominated by latency (Eq. 3).
    Latency,
    /// In between: take `max(BFT_bw, BFT_lat)`.
    Either,
}

/// Model parameters: tier characteristics, calibration, and thresholds.
///
/// Under the node-level shared-bandwidth model the tier parameters here
/// are the rank's *share* of the node (node bandwidth over occupancy) and
/// `copy_bw` is the helper's fair slice of the node copy path, so every
/// equation reasons about the bandwidth this rank can actually get.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ModelParams {
    pub dram: TierParams,
    pub nvm: TierParams,
    pub copy_bw: Bandwidth,
    pub cal: Calibration,
    /// Bandwidth-sensitive threshold, percent of `BW_peak` (paper: 80).
    pub t1_pct: f64,
    /// Latency-sensitive threshold, percent of `BW_peak` (paper: 10).
    pub t2_pct: f64,
    /// Eq. 4 contention term for NVM→DRAM admissions: the slowdown one
    /// second of in-flight copy induces on overlapping compute — the
    /// copy's rate over the tightest of the two pools an admission
    /// actually draws from (NVM read, DRAM write). Zero when helper
    /// traffic does not share the application's bandwidth.
    pub contention_penalty_in: f64,
    /// Same, for DRAM→NVM evictions (DRAM read, NVM write pools — on
    /// write-asymmetric technologies this can be far harsher than the
    /// admission direction, and charging admits at the eviction rate
    /// would wrongly freeze placement).
    pub contention_penalty_out: f64,
}

impl ModelParams {
    pub fn new(dram: TierParams, nvm: TierParams, copy_bw: Bandwidth, cal: Calibration) -> Self {
        ModelParams {
            dram,
            nvm,
            copy_bw,
            cal,
            t1_pct: 80.0,
            t2_pct: 10.0,
            contention_penalty_in: 0.0,
            contention_penalty_out: 0.0,
        }
    }

    /// Set the per-direction Eq. 4 contention terms (see
    /// [`ModelParams::movement_cost`]).
    pub fn with_contention_penalties(mut self, inbound: f64, outbound: f64) -> Self {
        self.contention_penalty_in = inbound.max(0.0);
        self.contention_penalty_out = outbound.max(0.0);
        self
    }

    /// Eq. 1 + thresholds: classify an object's phase behaviour.
    pub fn classify(
        &self,
        recorded: u64,
        windows_hit: u64,
        windows: u64,
        phase_time: VDur,
    ) -> Sensitivity {
        let bw = eq1_bandwidth(recorded, windows_hit, windows, phase_time);
        let peak = self.cal.bw_peak_sampled;
        if peak <= 0.0 {
            return Sensitivity::Either;
        }
        let pct = 100.0 * bw / peak;
        if pct >= self.t1_pct {
            Sensitivity::Bandwidth
        } else if pct < self.t2_pct {
            Sensitivity::Latency
        } else {
            Sensitivity::Either
        }
    }

    /// Eq. 2: benefit of moving a bandwidth-sensitive object NVM→DRAM.
    pub fn bft_bw(&self, recorded: u64) -> VDur {
        let bytes = recorded as f64 * CACHE_LINE.as_f64();
        let nvm_t = bytes / self.nvm.read_bw.bytes_per_s();
        let dram_t = bytes / self.dram.read_bw.bytes_per_s();
        VDur::from_secs((nvm_t - dram_t).max(0.0) * self.cal.cf_bw)
    }

    /// Eq. 3: benefit of moving a latency-sensitive object NVM→DRAM.
    pub fn bft_lat(&self, recorded: u64) -> VDur {
        let nvm_t = recorded as f64 * self.nvm.read_lat.secs();
        let dram_t = recorded as f64 * self.dram.read_lat.secs();
        VDur::from_secs((nvm_t - dram_t).max(0.0) * self.cal.cf_lat)
    }

    /// Benefit under a classification (the `max` rule for `Either`).
    pub fn benefit(&self, sens: Sensitivity, recorded: u64) -> VDur {
        match sens {
            Sensitivity::Bandwidth => self.bft_bw(recorded),
            Sensitivity::Latency => self.bft_lat(recorded),
            Sensitivity::Either => self.bft_bw(recorded).max(self.bft_lat(recorded)),
        }
    }

    /// Eq. 4 with the contention term: the cost of moving a unit into
    /// DRAM is the exposed stall (copy time beyond the overlap window)
    /// **plus** the slowdown the overlapped portion induces on the
    /// compute it hides behind — hiding a copy is not free when the copy
    /// and the application draw from the same tier pools. Models an
    /// NVM→DRAM admission; eviction traffic uses
    /// [`ModelParams::contention_penalty_out`] (the local search weighs
    /// its copy train per direction).
    pub fn movement_cost(&self, size: Bytes, overlap: VDur) -> VDur {
        let copy = size / self.copy_bw;
        let exposed = copy.saturating_sub(overlap);
        let hidden = copy.min(overlap);
        exposed + hidden * self.contention_penalty_in
    }

    /// Raw copy time `size / mem_copy_bw`.
    pub fn copy_time(&self, size: Bytes) -> VDur {
        size / self.copy_bw
    }

    /// Eq. 5: the knapsack weight.
    /// Positive only when the benefit outweighs all movement costs.
    pub fn weight(&self, benefit: VDur, cost: VDur, extra_cost: VDur) -> f64 {
        benefit.secs() - cost.secs() - extra_cost.secs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unimem_hms::profiles::{copy_bw_between, sim_dram};

    fn params() -> ModelParams {
        let dram = sim_dram();
        let nvm = dram.with_bw_fraction(0.5);
        ModelParams::new(
            dram,
            nvm,
            copy_bw_between(dram, nvm),
            Calibration {
                cf_bw: 1000.0,
                cf_lat: 1000.0,
                bw_peak_sampled: 6e6, // 6 MB/s in sampled units
            },
        )
    }

    #[test]
    fn classification_thresholds() {
        let p = params();
        let t = VDur::from_secs(1.0);
        // Dense traffic: recorded such that BW ≈ peak → bandwidth.
        // duty = 1.0 → bw = recorded·64. peak = 6e6 → recorded 93750 → 100%.
        assert_eq!(
            p.classify(93_750, 1_000_000, 1_000_000, t),
            Sensitivity::Bandwidth
        );
        // 5% of peak → latency.
        assert_eq!(
            p.classify(4_688, 1_000_000, 1_000_000, t),
            Sensitivity::Latency
        );
        // 40% of peak → either.
        assert_eq!(
            p.classify(37_500, 1_000_000, 1_000_000, t),
            Sensitivity::Either
        );
    }

    #[test]
    fn bft_bw_scales_with_bandwidth_gap() {
        let p = params();
        // NVM at half bandwidth: NVM time = 2× DRAM time → benefit = DRAM time.
        let rec = 100_000;
        let bytes = rec as f64 * 64.0;
        let dram_t = bytes / p.dram.read_bw.bytes_per_s();
        let bft = p.bft_bw(rec);
        assert!((bft.secs() - dram_t * 1000.0).abs() < 1e-9);
    }

    #[test]
    fn bft_lat_zero_when_tiers_match() {
        let dram = sim_dram();
        let p = ModelParams::new(
            dram,
            dram, // same latency
            Bandwidth::gb_per_s(5.0),
            Calibration {
                cf_bw: 1.0,
                cf_lat: 1.0,
                bw_peak_sampled: 1e6,
            },
        );
        assert_eq!(p.bft_lat(1_000_000), VDur::ZERO);
    }

    #[test]
    fn either_takes_max() {
        let p = params();
        let rec = 50_000;
        let expect = p.bft_bw(rec).max(p.bft_lat(rec));
        assert_eq!(p.benefit(Sensitivity::Either, rec), expect);
    }

    #[test]
    fn movement_cost_fully_overlapped_is_zero_without_contention() {
        let p = params();
        let size = Bytes::mib(64);
        let copy = p.copy_time(size);
        assert_eq!(p.movement_cost(size, copy * 2.0), VDur::ZERO);
        assert!(p.movement_cost(size, VDur::ZERO) > VDur::ZERO);
    }

    #[test]
    fn movement_cost_charges_hidden_copies_under_contention() {
        let p = params().with_contention_penalties(0.5, 0.9);
        let size = Bytes::mib(64);
        let copy = p.copy_time(size);
        // Fully hidden: cost = hidden copy time x penalty, not zero.
        let cost = p.movement_cost(size, copy * 2.0);
        assert!((cost.secs() - copy.secs() * 0.5).abs() < 1e-12);
        // Not overlapped at all: pure exposed stall, no contention term.
        assert_eq!(p.movement_cost(size, VDur::ZERO), copy);
        // Half overlapped: half exposed + half x penalty.
        let half = p.movement_cost(size, copy * 0.5);
        assert!((half.secs() - (copy.secs() * 0.5 + copy.secs() * 0.25)).abs() < 1e-12);
    }

    #[test]
    fn weight_subtracts_costs() {
        let p = params();
        let w = p.weight(
            VDur::from_millis(10.0),
            VDur::from_millis(3.0),
            VDur::from_millis(2.0),
        );
        assert!((w - 0.005).abs() < 1e-12);
        let neg = p.weight(VDur::from_millis(1.0), VDur::from_millis(3.0), VDur::ZERO);
        assert!(neg < 0.0);
    }

    #[test]
    fn unseen_object_classifies_either_on_degenerate_peak() {
        let mut p = params();
        p.cal.bw_peak_sampled = 0.0;
        assert_eq!(
            p.classify(10, 10, 100, VDur::from_secs(1.0)),
            Sensitivity::Either
        );
    }
}
