//! Plan enforcement with proactive data movement (Fig. 6, §3.1.3/§3.3).
//!
//! Once a [`PlacementPlan`] exists, the runtime walks phase boundaries:
//!
//! 1. it charges the (tiny) cost of checking the helper thread's FIFO
//!    queue — the main/helper synchronization of §3.3;
//! 2. it fires the migrations whose dependency-safe **trigger phase**
//!    (Fig. 5) is the phase now beginning: evictions are enqueued before
//!    admissions so the FIFO helper frees DRAM space first, and DRAM space
//!    is reserved/released through the per-node user-level service;
//! 3. it stalls the application for any required unit whose copy has not
//!    finished — the exposed movement cost of Eq. 4.
//!
//! The enforcement schedule is precomputed from the plan's cyclic phase
//! transitions, so steady-state iterations touch only cheap lookups.

use crate::deps::PhaseRefTable;
use crate::search::PlacementPlan;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap};
use unimem_hms::alloc::Region;
use unimem_hms::object::{ObjectRegistry, UnitId};
use unimem_hms::tier::TierKind;
use unimem_hms::{DramService, MigrationEngine};
use unimem_mpi::PhaseId;
use unimem_sim::{VDur, VTime};

/// One scheduled movement.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
enum Action {
    /// Evict `unit` to NVM (scheduled before admissions at the trigger).
    Out { unit: UnitId },
    /// Admit `unit` to DRAM, needed at `use_phase`.
    In { unit: UnitId, use_phase: PhaseId },
}

/// Accounting of one phase boundary.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct BoundaryCost {
    /// Queue-check synchronization cost.
    pub sync: VDur,
    /// Stall waiting for in-flight copies of required units.
    pub stall: VDur,
}

/// The enforcement state machine for one rank.
#[derive(Debug)]
pub struct Enforcer {
    plan: PlacementPlan,
    /// Actions indexed by trigger phase.
    schedule: Vec<Vec<Action>>,
    /// DRAM contents after all enqueued copies complete.
    committed: BTreeSet<UnitId>,
    grants: HashMap<UnitId, Region>,
    /// Admissions the service refused, retried at later boundaries (space
    /// frees as scheduled evictions drain).
    pending_in: Vec<UnitId>,
    rank: usize,
    sync_cost: VDur,
    /// Admissions skipped because the DRAM service had no room.
    pub admissions_refused: u64,
}

impl Enforcer {
    /// Build an enforcer entering `plan` from the `current` DRAM contents
    /// (with their service grants). `capacity` is this rank's DRAM share —
    /// admission triggers respect both data dependencies (Fig. 5) and the
    /// plan's space headroom at intermediate phases.
    // One parameter per distinct piece of boundary state; bundling them
    // into a struct would just move the argument list one hop away.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        plan: PlacementPlan,
        refs: &PhaseRefTable,
        registry: &ObjectRegistry,
        capacity: unimem_sim::Bytes,
        current: BTreeSet<UnitId>,
        grants: HashMap<UnitId, Region>,
        rank: usize,
        sync_cost: VDur,
    ) -> Enforcer {
        let schedule = build_schedule(&plan, refs, registry, capacity);
        Enforcer {
            plan,
            schedule,
            committed: current,
            grants,
            pending_in: Vec::new(),
            rank,
            sync_cost,
            admissions_refused: 0,
        }
    }

    pub fn plan(&self) -> &PlacementPlan {
        &self.plan
    }

    /// DRAM contents once all enqueued copies complete.
    pub fn committed(&self) -> &BTreeSet<UnitId> {
        &self.committed
    }

    /// Take back the state to rebuild an enforcer after a re-plan.
    pub fn into_state(self) -> (BTreeSet<UnitId>, HashMap<UnitId, Region>) {
        (self.committed, self.grants)
    }

    /// Transition into the plan: enqueue whatever phase 0 wants that is not
    /// yet resident (called once, right after the placement decision).
    /// Admissions are staggered by the phase that first references each
    /// unit, so the serial copy train overlaps with the phases that do not
    /// need the later units yet.
    pub fn enter_plan(
        &mut self,
        now: VTime,
        refs: &PhaseRefTable,
        registry: &ObjectRegistry,
        engine: &mut MigrationEngine,
        service: &DramService,
    ) {
        let mut want: Vec<UnitId> = self.plan.per_phase[0]
            .difference(&self.committed)
            .copied()
            .collect();
        let first_ref = |u: UnitId| -> u32 {
            refs.phases_referencing(u)
                .first()
                .map(|p| p.0)
                .unwrap_or(u32::MAX)
        };
        want.sort_by_key(|&u| (first_ref(u), u));
        // Make room first: evict residents the plan never wants anywhere.
        let wanted_somewhere: BTreeSet<UnitId> = self
            .plan
            .per_phase
            .iter()
            .flat_map(|s| s.iter().copied())
            .collect();
        let evict: Vec<UnitId> = self
            .committed
            .iter()
            .filter(|u| !wanted_somewhere.contains(u))
            .copied()
            .collect();
        for u in evict {
            self.do_evict(u, now, registry, engine, service);
        }
        for u in want {
            self.do_admit(u, now, registry, engine, service);
        }
    }

    fn do_evict(
        &mut self,
        unit: UnitId,
        now: VTime,
        registry: &ObjectRegistry,
        engine: &mut MigrationEngine,
        service: &DramService,
    ) {
        if !self.committed.remove(&unit) {
            return;
        }
        engine.enqueue(unit, TierKind::Nvm, registry.unit_size(unit), now);
        if let Some(grant) = self.grants.remove(&unit) {
            // The space frees when the copy completes; the FIFO helper
            // serializes it before any admission enqueued afterwards, so
            // releasing the accounting now is safe.
            service.release(self.rank, grant);
        }
    }

    fn do_admit(
        &mut self,
        unit: UnitId,
        now: VTime,
        registry: &ObjectRegistry,
        engine: &mut MigrationEngine,
        service: &DramService,
    ) {
        if self.committed.contains(&unit) {
            return;
        }
        let size = registry.unit_size(unit);
        match service.reserve(self.rank, size) {
            Some(grant) => {
                engine.enqueue(unit, TierKind::Dram, size, now);
                self.committed.insert(unit);
                self.grants.insert(unit, grant);
            }
            None => {
                self.admissions_refused += 1;
                if !self.pending_in.contains(&unit) {
                    self.pending_in.push(unit);
                }
            }
        }
    }

    /// Run the phase boundary for `phase` at virtual time `now`.
    ///
    /// `phase_est` is the expected duration of the phase about to run
    /// (from the profile): chunks of a partitioned object are consumed
    /// progressively by streaming phases, so the k-th chunk is only
    /// *needed* a fraction k/n into the phase — in-flight chunk copies
    /// beyond the first overlap with the phase itself.
    // Mirrors the paper's phase-boundary inputs (Fig. 6); a parameter
    // struct would obscure which runtime pieces the boundary consumes.
    #[allow(clippy::too_many_arguments)]
    pub fn phase_begin(
        &mut self,
        phase: PhaseId,
        now: VTime,
        phase_est: VDur,
        refs: &PhaseRefTable,
        registry: &ObjectRegistry,
        engine: &mut MigrationEngine,
        service: &DramService,
    ) -> BoundaryCost {
        let p = phase.0 as usize;
        if p >= self.schedule.len() {
            return BoundaryCost::default();
        }
        // 2. fire this boundary's scheduled movements (evictions first —
        // the schedule is built that way), then retry refused admissions
        // now that evictions may have freed space.
        let actions = self.schedule[p].clone();
        for a in actions {
            match a {
                Action::Out { unit } => self.do_evict(unit, now, registry, engine, service),
                Action::In { unit, .. } => self.do_admit(unit, now, registry, engine, service),
            }
        }
        let retry = std::mem::take(&mut self.pending_in);
        for unit in retry {
            // Only retry units the plan still wants resident at this phase
            // (cyclic plans re-schedule the rest at their own triggers).
            if self.plan.dram_set(phase).contains(&unit) {
                self.do_admit(unit, now, registry, engine, service);
            }
        }
        // 3. required units: everything the plan wants resident that this
        // phase actually references must be usable by the time the phase
        // reaches it. Whole objects are needed at the start; chunk k of an
        // n-chunk object is needed k/n of the way through the phase.
        let mut required: Vec<UnitId> = refs
            .units_of(phase)
            .filter(|u| self.committed.contains(u) && self.plan.dram_set(phase).contains(u))
            .collect();
        required.sort();
        let mut stall = VDur::ZERO;
        for unit in required {
            let chunks = u32::from(registry.get(unit.obj).chunks).max(1);
            let offset = phase_est * (f64::from(u32::from(unit.chunk)) / f64::from(chunks));
            stall += engine.require(unit, now + offset + stall);
        }
        BoundaryCost {
            sync: self.sync_cost,
            stall,
        }
    }
}

/// Predict the steady-state per-iteration stall a plan will incur under
/// enforcement: build the real schedule, then walk two cycles of a serial
/// helper-thread timeline (FIFO copies at `copy_bw`, admissions at their
/// triggers, stalls when a phase needs a unit whose copy is unfinished)
/// and report the second cycle's stall. This keeps the local/global
/// chooser honest about movement costs the analytic overlap window cannot see
/// (queueing on the single helper thread, deferred triggers).
pub fn estimate_cycle_stall(
    plan: &PlacementPlan,
    refs: &PhaseRefTable,
    registry: &ObjectRegistry,
    capacity: unimem_sim::Bytes,
    copy_bw: unimem_sim::Bandwidth,
    phase_times: &[VDur],
) -> VDur {
    let n = plan.per_phase.len();
    if n == 0 || plan.is_static() {
        return VDur::ZERO;
    }
    let schedule = build_schedule(plan, refs, registry, capacity);
    let mut now = VTime::ZERO;
    let mut helper_free = VTime::ZERO;
    let mut ready: HashMap<UnitId, VTime> = HashMap::new();
    let mut stall = VDur::ZERO;
    for cycle in 0..2 {
        if cycle == 1 {
            stall = VDur::ZERO;
        }
        for p in 0..n {
            for a in &schedule[p] {
                let unit = match a {
                    Action::Out { unit } | Action::In { unit, .. } => *unit,
                };
                let start = now.max(helper_free);
                let done = start + registry.unit_size(unit) / copy_bw;
                helper_free = done;
                if matches!(a, Action::In { .. }) {
                    ready.insert(unit, done);
                }
            }
            for unit in refs.units_of(PhaseId(p as u32)) {
                if plan.per_phase[p].contains(&unit) {
                    if let Some(&t) = ready.get(&unit) {
                        if t > now {
                            stall += t - now;
                            now = t;
                        }
                        ready.remove(&unit);
                    }
                }
            }
            now += phase_times[p.min(phase_times.len() - 1)];
        }
    }
    stall
}

/// Precompute the cyclic enforcement schedule: for each phase transition
/// `S_{p-1} → S_p`, evictions trigger at their dependency-safe point
/// (Fig. 5); admissions trigger at the latest of the dependency-safe point
/// and the first phase from which the plan has continuous DRAM headroom
/// for the unit until its use phase ("the data movement enforced by the
/// helper thread respects data dependence across phases and the
/// availability of DRAM space", Fig. 6). Within a boundary, evictions are
/// ordered before admissions so the FIFO helper frees space first.
fn build_schedule(
    plan: &PlacementPlan,
    refs: &PhaseRefTable,
    registry: &ObjectRegistry,
    capacity: unimem_sim::Bytes,
) -> Vec<Vec<Action>> {
    let n = plan.per_phase.len();
    let mut schedule: Vec<Vec<Action>> = vec![Vec::new(); n];
    if n == 0 || plan.is_static() {
        return schedule;
    }
    let phase_bytes: Vec<u64> = plan
        .per_phase
        .iter()
        .map(|s| s.iter().map(|&u| registry.unit_size(u).get()).sum())
        .collect();
    for p in 0..n {
        let prev = &plan.per_phase[(p + n - 1) % n];
        let cur = &plan.per_phase[p];
        let use_phase = PhaseId(p as u32);
        // Evictions leaving at this transition: safe once unreferenced
        // before the phase that drops them.
        for &v in prev.difference(cur) {
            let t = refs.trigger_for(v, use_phase).trigger;
            schedule[t.0 as usize].insert(0, Action::Out { unit: v });
        }
        for &u in cur.difference(prev) {
            let dep = refs.trigger_for(u, use_phase).trigger;
            let size = registry.unit_size(u).get();
            // Walk back from the use phase while the plan leaves room for
            // the early arrival; never cross the dependency-safe trigger.
            let mut t = p;
            if dep.0 as usize != p {
                for back in 1..n {
                    let q = (p + n - back) % n;
                    if phase_bytes[q] + size > capacity.get() {
                        break;
                    }
                    t = q;
                    if q == dep.0 as usize {
                        break;
                    }
                }
            }
            schedule[t].push(Action::In { unit: u, use_phase });
        }
    }
    schedule
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::search::SearchKind;
    use unimem_hms::object::{ObjId, ObjectSpec};
    use unimem_sim::{Bandwidth, Bytes};

    fn unit(n: u32) -> UnitId {
        UnitId::whole(ObjId(n))
    }

    fn registry() -> ObjectRegistry {
        let mut r = ObjectRegistry::new();
        for name in ["a", "b", "c"] {
            r.register(ObjectSpec::new(name, Bytes::mib(64)));
        }
        r
    }

    fn engine() -> MigrationEngine {
        MigrationEngine::with_copy_bw(Bandwidth::gb_per_s(4.0))
    }

    /// Plan: phase 0 wants {a}, phase 1 wants {b}; refs: a in 0, b in 1.
    fn alternating() -> (PlacementPlan, PhaseRefTable) {
        let plan = PlacementPlan {
            kind: SearchKind::Local,
            per_phase: vec![[unit(0)].into(), [unit(1)].into()],
            predicted: VDur::ZERO,
        };
        let mut refs = PhaseRefTable::new(2);
        refs.add_ref(PhaseId(0), unit(0));
        refs.add_ref(PhaseId(1), unit(1));
        (plan, refs)
    }

    #[test]
    fn static_plan_has_empty_schedule() {
        let plan = PlacementPlan {
            kind: SearchKind::Global,
            per_phase: vec![[unit(0)].into(), [unit(0)].into()],
            predicted: VDur::ZERO,
        };
        let refs = PhaseRefTable::new(2);
        let s = build_schedule(&plan, &refs, &registry(), Bytes::mib(64));
        assert!(s.iter().all(|v| v.is_empty()));
    }

    #[test]
    fn alternating_plan_schedules_both_directions() {
        let (plan, refs) = alternating();
        // Capacity holds exactly one unit: admissions cannot arrive early,
        // so each boundary pairs the outgoing eviction with the incoming
        // admission (eviction first).
        let s = build_schedule(&plan, &refs, &registry(), Bytes::mib(64));
        let all: Vec<_> = s.iter().flatten().collect();
        assert_eq!(all.len(), 4, "{s:?}");
        assert!(s[1]
            .iter()
            .any(|a| matches!(a, Action::In { unit: u, .. } if *u == unit(1))));
        assert!(s[1]
            .first()
            .is_some_and(|a| matches!(a, Action::Out { .. })));
        assert!(s[0]
            .iter()
            .any(|a| matches!(a, Action::In { unit: u, .. } if *u == unit(0))));
    }

    #[test]
    fn roomy_capacity_allows_early_admission() {
        let (plan, refs) = alternating();
        // Capacity holds both units: b (used at phase 1, referenced nowhere
        // else) may arrive as early as phase 0.
        let s = build_schedule(&plan, &refs, &registry(), Bytes::mib(256));
        assert!(s[0]
            .iter()
            .any(|a| matches!(a, Action::In { unit: u, .. } if *u == unit(1))));
    }

    #[test]
    fn enter_plan_admits_phase0_set() {
        let (plan, refs) = alternating();
        let reg = registry();
        let service = DramService::new(1, 1, Bytes::mib(64));
        let mut eng = engine();
        let mut enf = Enforcer::new(
            plan,
            &refs,
            &reg,
            Bytes::mib(64),
            BTreeSet::new(),
            HashMap::new(),
            0,
            VDur::from_nanos(200.0),
        );
        enf.enter_plan(VTime::ZERO, &refs, &reg, &mut eng, &service);
        assert!(enf.committed().contains(&unit(0)));
        assert_eq!(eng.stats().to_dram_count, 1);
        // DRAM is fully granted now.
        assert_eq!(service.available(0), Bytes(0));
    }

    #[test]
    fn boundary_stalls_until_copy_done() {
        let (plan, refs) = alternating();
        let reg = registry();
        let service = DramService::new(1, 1, Bytes::mib(64));
        let mut eng = engine();
        let mut enf = Enforcer::new(
            plan,
            &refs,
            &reg,
            Bytes::mib(64),
            BTreeSet::new(),
            HashMap::new(),
            0,
            VDur::from_nanos(200.0),
        );
        enf.enter_plan(VTime::ZERO, &refs, &reg, &mut eng, &service);
        // Phase 0 begins immediately: the copy of `a` (64 MiB at 4 GB/s)
        // is fully exposed.
        let cost = enf.phase_begin(
            PhaseId(0),
            VTime::ZERO,
            VDur::ZERO,
            &refs,
            &reg,
            &mut eng,
            &service,
        );
        let copy = eng.copy_time(Bytes::mib(64));
        assert!(
            (cost.stall.secs() - copy.secs()).abs() < 1e-9,
            "{:?}",
            cost.stall
        );
        assert!(cost.sync > VDur::ZERO);
    }

    #[test]
    fn alternating_enforcement_swaps_units() {
        let (plan, refs) = alternating();
        let reg = registry();
        let service = DramService::new(1, 1, Bytes::mib(64));
        let mut eng = engine();
        let mut enf = Enforcer::new(
            plan.clone(),
            &refs,
            &reg,
            Bytes::mib(64),
            BTreeSet::new(),
            HashMap::new(),
            0,
            VDur::from_nanos(200.0),
        );
        enf.enter_plan(VTime::ZERO, &refs, &reg, &mut eng, &service);
        let mut now = VTime::ZERO;
        // Run two full iterations of the 2-phase cycle.
        for it in 0..2 {
            for p in 0..2u32 {
                let c =
                    enf.phase_begin(PhaseId(p), now, VDur::ZERO, &refs, &reg, &mut eng, &service);
                now = now + c.stall + c.sync + VDur::from_millis(50.0);
                let want = plan.dram_set(PhaseId(p));
                assert_eq!(
                    enf.committed(),
                    want,
                    "iteration {it} phase {p}: committed mismatch"
                );
            }
        }
        // Each phase boundary swapped one unit in and one out.
        let stats = eng.stats();
        assert!(stats.to_dram_count >= 3, "{stats:?}");
        assert!(stats.to_nvm_count >= 2, "{stats:?}");
        // Space never overcommitted: exactly one 64 MiB grant at a time.
        assert_eq!(service.available(0), Bytes(0));
    }

    #[test]
    fn refused_admission_counts() {
        let (plan, refs) = alternating();
        let reg = registry();
        // No DRAM at all: every admission is refused.
        let service = DramService::new(1, 1, Bytes(0));
        let mut eng = engine();
        let mut enf = Enforcer::new(
            plan,
            &refs,
            &reg,
            Bytes(0),
            BTreeSet::new(),
            HashMap::new(),
            0,
            VDur::ZERO,
        );
        enf.enter_plan(VTime::ZERO, &refs, &reg, &mut eng, &service);
        assert_eq!(enf.admissions_refused, 1);
        assert!(enf.committed().is_empty());
    }
}
