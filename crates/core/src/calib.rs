//! Run-wide shared calibration memo — the intra-run half of the sweep's
//! incremental-reuse layer.
//!
//! Eq. 1's offline calibration (`unimem_perf::calibrate`) is a pure
//! deterministic function of the machine share it probes, the cache
//! model, the sampler configuration, and the seed — nothing else. PR 8
//! already deduplicated it *within* one job (once per distinct node
//! class × occupancy pair); this module lifts that into a process-wide
//! memo, so a sweep running hundreds of cells over the same handful of
//! NVM profiles calibrates each distinct platform **once per process**
//! instead of once per cell.
//!
//! Correctness rests on purity: because the result is a pure function of
//! the key, memoization cannot change any run's numbers — the
//! byte-identity property tests cover this transitively. The memo key is
//! *bit-exact* ([`f64::to_bits`] of every parameter the calibration
//! reads), so two machines that differ in the last ulp memoize
//! separately rather than sharing a almost-right result.
//!
//! Concurrency follows the sharded-ledger discipline (PR 9): a fixed
//! array of mutex-guarded shards selected by key hash, so parallel sweep
//! workers calibrating *different* platforms never contend on one lock.
//! The computation itself runs outside any lock; two workers racing on
//! the same cold key may both compute (identical) results and one insert
//! wins — a benign duplicate beats serializing every worker behind the
//! slowest calibration.

use std::collections::HashMap;
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Mutex, OnceLock};
use unimem_cache::CacheModel;
use unimem_hms::MachineConfig;
use unimem_perf::{calibrate, Calibration, SamplerConfig};

/// Shard count: comfortably above the distinct-platform count of any
/// real sweep (|profiles| × |occupancies|), tiny in memory.
const SHARDS: usize = 16;

struct Memo {
    shards: [Mutex<HashMap<String, Calibration>>; SHARDS],
}

static MEMO: OnceLock<Memo> = OnceLock::new();
static HITS: AtomicU64 = AtomicU64::new(0);
static MISSES: AtomicU64 = AtomicU64::new(0);

fn memo() -> &'static Memo {
    MEMO.get_or_init(|| Memo {
        shards: std::array::from_fn(|_| Mutex::new(HashMap::new())),
    })
}

/// The bit-exact memo key: every parameter [`calibrate`](fn@calibrate) reads, rendered
/// as fixed-width hex of its raw bits. `f64::to_bits` (not `Display`)
/// because the key must distinguish values that print alike: -0.0 vs
/// 0.0, or NaNs with different payloads, would otherwise alias.
fn key(machine: &MachineConfig, cache: &CacheModel, cfg: SamplerConfig, seed: u64) -> String {
    let mut k = String::with_capacity(16 * 18);
    for f in [
        machine.dram.read_lat.0,
        machine.dram.write_lat.0,
        machine.dram.read_bw.0,
        machine.dram.write_bw.0,
        machine.nvm.read_lat.0,
        machine.nvm.write_lat.0,
        machine.nvm.read_bw.0,
        machine.nvm.write_bw.0,
        cfg.cpu_hz,
        cfg.per_window_cost.0,
    ] {
        let _ = write!(k, "{:016x}.", f.to_bits());
    }
    let _ = write!(
        k,
        "{:x}.{:x}.{:x}.{:x}.{:x}",
        cache.size.0, cache.line.0, cfg.window_cycles, cfg.event_period, seed
    );
    k
}

/// [`calibrate`](fn@calibrate), memoized process-wide. Returns exactly what a direct
/// call would (the function is pure); repeat calls with bit-identical
/// inputs return the memoized copy without re-running the
/// micro-benchmarks.
pub fn calibrate_memoized(
    machine: &MachineConfig,
    cache: &CacheModel,
    cfg: SamplerConfig,
    seed: u64,
) -> Calibration {
    let k = key(machine, cache, cfg, seed);
    let shard =
        &memo().shards[unimem_sim::Fnv64::new().update(k.as_bytes()).finish() as usize % SHARDS];
    if let Some(cal) = shard.lock().expect("memo shard poisoned").get(&k) {
        HITS.fetch_add(1, Ordering::Relaxed);
        return *cal;
    }
    let cal = calibrate(machine, cache, cfg, seed);
    MISSES.fetch_add(1, Ordering::Relaxed);
    shard.lock().expect("memo shard poisoned").insert(k, cal);
    cal
}

/// Lifetime (process-wide) memo counters: `(hits, misses)`. Test and
/// diagnostics surface; the sweep's user-facing hit rate is the on-disk
/// cache's, not this one's.
pub fn memo_stats() -> (u64, u64) {
    (HITS.load(Ordering::Relaxed), MISSES.load(Ordering::Relaxed))
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A machine no other test calibrates: unique last-ulp offsets keep
    /// this test's keys disjoint from the rest of the (parallel) suite,
    /// so the counter deltas below are attributable.
    fn unique_machine(ulp_steps: u64) -> MachineConfig {
        let mut m = MachineConfig::nvm_bw_fraction(0.5);
        m.dram.read_bw.0 = f64::from_bits(m.dram.read_bw.0.to_bits() + ulp_steps);
        m
    }

    #[test]
    fn memoized_result_equals_direct_and_repeats_hit() {
        let m = unique_machine(1);
        let cache = CacheModel::platform_a();
        let cfg = SamplerConfig::default();
        let direct = calibrate(&m, &cache, cfg, 42);
        let first = calibrate_memoized(&m, &cache, cfg, 42);
        assert_eq!(first, direct, "memoization must not change the result");
        let (hits_before, _) = memo_stats();
        let again = calibrate_memoized(&m, &cache, cfg, 42);
        assert_eq!(again, direct);
        let (hits_after, _) = memo_stats();
        assert!(hits_after > hits_before, "second call must hit the memo");
    }

    #[test]
    fn last_ulp_and_seed_changes_miss() {
        let cache = CacheModel::platform_a();
        let cfg = SamplerConfig::default();
        let (_, misses_before) = memo_stats();
        calibrate_memoized(&unique_machine(2), &cache, cfg, 42);
        calibrate_memoized(&unique_machine(3), &cache, cfg, 42);
        calibrate_memoized(&unique_machine(2), &cache, cfg, 43);
        let (_, misses_after) = memo_stats();
        assert!(
            misses_after - misses_before >= 3,
            "ulp-distinct machines and distinct seeds are distinct keys"
        );
    }

    #[test]
    fn key_is_bit_exact_not_display_based() {
        let cache = CacheModel::platform_a();
        let cfg = SamplerConfig::default();
        let mut a = MachineConfig::nvm_bw_fraction(0.5);
        let mut b = MachineConfig::nvm_bw_fraction(0.5);
        a.dram.read_lat.0 = 0.0;
        b.dram.read_lat.0 = -0.0;
        assert_ne!(
            key(&a, &cache, cfg, 1),
            key(&b, &cache, cfg, 1),
            "0.0 and -0.0 print alike but are different bit patterns"
        );
        assert_eq!(key(&a, &cache, cfg, 1), key(&a.clone(), &cache, cfg, 1));
    }
}
