//! Run statistics: everything Table 4 and the harness summaries report.

use serde::{Deserialize, Serialize};
use unimem_hms::MigrationStats;
use unimem_sim::{Bytes, Json, VDur};

/// Statistics of one rank's run under one policy.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RunStats {
    /// Total virtual execution time of the rank.
    pub total_time: VDur,
    /// Time spent in application phases (compute + comm), excluding
    /// runtime-induced costs.
    pub app_time: VDur,
    /// Profiling overhead (sampler windows).
    pub profiling_overhead: VDur,
    /// Modeling + knapsack decision cost.
    pub modeling_overhead: VDur,
    /// Helper-thread queue synchronization cost at phase boundaries.
    pub sync_overhead: VDur,
    /// Stall time waiting for in-flight migrations (exposed movement cost).
    pub migration_stall: VDur,
    /// Extra compute time caused by shared-bandwidth contention: helper
    /// copies (own and neighbors') drawing from the tier pools this
    /// rank's phases stream on.
    pub contention_time: VDur,
    /// The portion of [`RunStats::contention_time`] attributable to
    /// *other* ranks' helper traffic on the same node — the "my neighbor
    /// migrated and I slowed down" signal the `migration-contention`
    /// conformance check asserts on.
    pub neighbor_contention_time: VDur,
    /// Migration engine counters.
    pub migrations: MigrationStats,
    /// Times the variation monitor re-triggered profiling.
    pub reprofiles: u64,
    /// Times a DRAM-lease change (arbiter grant or revocation) forced a
    /// placement re-run at an iteration boundary.
    pub lease_replans: u64,
    /// Iterations executed.
    pub iterations: u64,
}

impl RunStats {
    /// Table 4's "pure runtime cost": counters + modeling + sync, as a
    /// fraction of total time. Excludes data movement cost and benefit.
    pub fn pure_runtime_cost(&self) -> f64 {
        if self.total_time.is_zero() {
            return 0.0;
        }
        (self.profiling_overhead + self.modeling_overhead + self.sync_overhead)
            .ratio(self.total_time)
    }

    /// Table 4's "% overlap"; `None` (JSON `null`) when nothing migrated.
    pub fn overlap_pct(&self) -> Option<f64> {
        self.migrations.overlap_pct()
    }

    /// Table 4's "Times of Migration".
    pub fn migration_count(&self) -> u64 {
        self.migrations.count
    }

    /// Table 4's "Migrated data size".
    pub fn migrated_bytes(&self) -> Bytes {
        self.migrations.bytes
    }

    /// Deterministic JSON form: every timing in seconds, counters as
    /// integers, plus the derived Table-4 figures. Member order is fixed,
    /// so equal stats serialize to byte-identical text.
    pub fn to_json(&self) -> Json {
        let mut o = Json::obj();
        o.push("total_time_s", self.total_time)
            .push("app_time_s", self.app_time)
            .push("profiling_overhead_s", self.profiling_overhead)
            .push("modeling_overhead_s", self.modeling_overhead)
            .push("sync_overhead_s", self.sync_overhead)
            .push("migration_stall_s", self.migration_stall)
            .push("contention_time_s", self.contention_time)
            .push("neighbor_contention_time_s", self.neighbor_contention_time)
            .push("migration_count", self.migrations.count)
            .push("migrated_bytes", self.migrations.bytes)
            .push("migrations_to_dram", self.migrations.to_dram_count)
            .push("migrations_to_nvm", self.migrations.to_nvm_count)
            .push("overlap_pct", self.overlap_pct())
            .push("pure_runtime_cost", self.pure_runtime_cost())
            .push("reprofiles", self.reprofiles)
            .push("lease_replans", self.lease_replans)
            .push("iterations", self.iterations);
        o
    }

    /// Merge a peer rank's stats (for job-wide maxima/sums the harnesses
    /// print). Times take the max (job finishes with the slowest rank),
    /// counters sum.
    pub fn merge_job(&mut self, other: &RunStats) {
        self.total_time = self.total_time.max(other.total_time);
        self.app_time = self.app_time.max(other.app_time);
        self.profiling_overhead = self.profiling_overhead.max(other.profiling_overhead);
        self.modeling_overhead = self.modeling_overhead.max(other.modeling_overhead);
        self.sync_overhead = self.sync_overhead.max(other.sync_overhead);
        self.migration_stall = self.migration_stall.max(other.migration_stall);
        self.contention_time = self.contention_time.max(other.contention_time);
        self.neighbor_contention_time = self
            .neighbor_contention_time
            .max(other.neighbor_contention_time);
        self.migrations.merge(&other.migrations);
        self.reprofiles += other.reprofiles;
        self.lease_replans += other.lease_replans;
        self.iterations = self.iterations.max(other.iterations);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pure_runtime_cost_fraction() {
        let s = RunStats {
            total_time: VDur::from_secs(10.0),
            profiling_overhead: VDur::from_millis(100.0),
            modeling_overhead: VDur::from_millis(50.0),
            sync_overhead: VDur::from_millis(50.0),
            ..RunStats::default()
        };
        assert!((s.pure_runtime_cost() - 0.02).abs() < 1e-12);
    }

    #[test]
    fn zero_time_guards() {
        let s = RunStats::default();
        assert_eq!(s.pure_runtime_cost(), 0.0);
        assert_eq!(s.overlap_pct(), None, "no migrations, no overlap figure");
        assert_eq!(s.to_json().get("overlap_pct"), Some(&Json::Null));
    }

    #[test]
    fn json_form_is_stable_and_complete() {
        let mut s = RunStats {
            total_time: VDur::from_secs(10.0),
            profiling_overhead: VDur::from_millis(100.0),
            reprofiles: 2,
            iterations: 6,
            ..RunStats::default()
        };
        s.migrations.count = 3;
        s.migrations.bytes = Bytes::mib(7);
        let j = s.to_json();
        assert_eq!(j.get("migration_count").and_then(|v| v.as_f64()), Some(3.0));
        assert_eq!(
            j.get("migrated_bytes").and_then(|v| v.as_f64()),
            Some((7u64 << 20) as f64)
        );
        assert_eq!(j.get("iterations").and_then(|v| v.as_f64()), Some(6.0));
        // Byte-identical across repeated serialization of equal values.
        assert_eq!(s.to_json().to_compact(), s.clone().to_json().to_compact());
    }

    #[test]
    fn job_merge_maxes_times_sums_counters() {
        let mut a = RunStats {
            total_time: VDur::from_secs(10.0),
            reprofiles: 1,
            ..RunStats::default()
        };
        a.migrations.count = 3;
        let mut b = RunStats {
            total_time: VDur::from_secs(12.0),
            reprofiles: 2,
            ..RunStats::default()
        };
        b.migrations.count = 5;
        a.merge_job(&b);
        assert_eq!(a.total_time, VDur::from_secs(12.0));
        assert_eq!(a.reprofiles, 3);
        assert_eq!(a.migrations.count, 8);
    }
}
