//! Crash-consistent recovery: journaled runs, deterministic crash
//! injection, and replay back to an equivalent execution.
//!
//! The redo journal (`unimem_hms::journal`) records, per rank, every
//! placement-relevant event — the object table, the initial placement,
//! migration intents and requirement stalls, compute observations, comm
//! durations — committed at MPI-fence epochs. Because the simulator is
//! deterministic, a crash at virtual time `T` leaves exactly the durable
//! prefix the chosen [`DurabilityMode`] guarantees by `T`; recovery
//! replays that prefix into a [`ReplayedState`], then *re-runs* the
//! workload with each rank's journaled compute observations substituted
//! for the ground-truth model (an oracle). Replayed work skips the
//! expensive modeling; once a rank's log runs out — the crash point —
//! it falls back to live execution seamlessly, which is safe precisely
//! because the clean run and the recovery run are the same deterministic
//! function of the same inputs. Communication always executes for real
//! (collectives must rendezvous every rank); the journaled durations are
//! verified bitwise against the re-run instead.
//!
//! Equivalence is therefore checkable in the strongest possible sense:
//! the recovered run's full [`RunReport`] JSON and its regenerated
//! per-rank journals must be byte-identical to the uninterrupted run's.

use crate::exec::{run_workload_rig, CapacitySchedule, JournalRig, Policy, RunReport, Workload};
use unimem_cache::CacheModel;
use unimem_hms::journal::{durable_prefix, DurabilityMode, JournalStats, ReplayedState};
use unimem_hms::object::{ObjId, UnitId};
use unimem_hms::tier::TierKind;
use unimem_hms::MachineConfig;
use unimem_perf::sampler::GroundTruth;
use unimem_sim::{Bytes, CrashSpec, Json, VDur, VTime};

/// CPU cost modeled per journal record during replay (decode + apply).
const REPLAY_CPU: VDur = VDur(2.0e-6);

/// Everything needed to run, crash, and recover one job.
pub struct RecoverySetup<'a> {
    pub workload: &'a dyn Workload,
    pub machine: &'a MachineConfig,
    pub cache: &'a CacheModel,
    pub nranks: usize,
    pub policy: &'a Policy,
}

/// A completed journaled run: the report plus each rank's full journal.
pub struct JournaledRun {
    pub report: RunReport,
    /// Per-rank journal byte streams, in rank order.
    pub journals: Vec<Vec<u8>>,
    /// Per-rank journal accounting.
    pub stats: Vec<JournalStats>,
}

/// What one rank's durable journal replayed into, plus how the oracle
/// fared during the recovery re-run.
#[derive(Debug, Clone, PartialEq)]
pub struct ReplaySummary {
    /// Durable journal bytes surviving the crash (torn tail included).
    pub durable_bytes: u64,
    /// Records reconstructed by replay.
    pub records: u64,
    /// Torn trailing bytes detected and discarded by the frame parser.
    pub torn_bytes_discarded: u64,
    /// Append vtime of the last durable record.
    pub last_at: f64,
    /// Latest committed epoch generation, if any survived.
    pub last_commit: Option<u64>,
    /// Compute phases served from the journal during the re-run.
    pub replayed_observes: u64,
    /// Journaled comm durations that did not match the re-run bitwise.
    /// Any non-zero count means the replay was not tracking the clean
    /// run — equivalence has already failed.
    pub comm_mismatches: u64,
}

/// Result of a recovery re-run from durable journal prefixes.
pub struct RecoveredRun {
    pub report: RunReport,
    /// The journals the *recovery* run wrote (should equal the clean
    /// run's journals byte-for-byte).
    pub journals: Vec<Vec<u8>>,
    pub summaries: Vec<ReplaySummary>,
}

/// Analytic cost of one recovery, against the restart-from-scratch
/// baseline. All times are job-level (slowest rank).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RecoveryStats {
    pub mode: DurabilityMode,
    /// Virtual time of the injected crash.
    pub crash_at: VTime,
    /// Whether the crash tore the in-flight record.
    pub torn: bool,
    /// Durable journal bytes across all ranks.
    pub durable_bytes: u64,
    /// Records replayed across all ranks.
    pub replayed_records: u64,
    /// Reading + applying the durable journal (slowest rank).
    pub replay_time: VDur,
    /// Re-executing from the last journaled point to completion.
    pub redo_time: VDur,
    /// `replay_time + redo_time`.
    pub recovery_time: VDur,
    /// The baseline: rerunning the whole job from scratch.
    pub restart_time: VDur,
}

impl RecoveryStats {
    /// Restart-over-recovery speedup. `1.0` means journaling bought
    /// nothing (e.g. `InMemory` mode, whose journal never survives).
    pub fn advantage(&self) -> f64 {
        if self.recovery_time.is_zero() {
            f64::INFINITY
        } else {
            self.restart_time.secs() / self.recovery_time.secs()
        }
    }

    pub fn to_json(&self) -> Json {
        let mut o = Json::obj();
        o.push("mode", self.mode.name())
            .push("crash_at_s", self.crash_at.secs())
            .push("torn", self.torn)
            .push("durable_bytes", self.durable_bytes)
            .push("replayed_records", self.replayed_records)
            .push("replay_time_s", self.replay_time)
            .push("redo_time_s", self.redo_time)
            .push("recovery_time_s", self.recovery_time)
            .push("restart_time_s", self.restart_time)
            .push("advantage", self.advantage());
        o
    }
}

/// Outcome of one injected crash: the recovered run, its equivalence
/// verdicts against the clean run, and the analytic cost model.
pub struct CrashOutcome {
    pub crash: CrashSpec,
    pub mode: DurabilityMode,
    pub recovered: RunReport,
    pub summaries: Vec<ReplaySummary>,
    pub stats: RecoveryStats,
    /// Recovered report JSON is byte-identical to the clean run's.
    pub report_equal: bool,
    /// Recovery re-run regenerated every rank's journal byte-for-byte.
    pub journals_equal: bool,
}

impl CrashOutcome {
    /// The crash-consistency contract: report and journals identical,
    /// and every journaled comm duration matched the re-run bitwise.
    pub fn equivalent(&self) -> bool {
        self.report_equal
            && self.journals_equal
            && self.summaries.iter().all(|s| s.comm_mismatches == 0)
    }
}

/// Turn a replayed per-rank state into the oracle the execution driver
/// consumes: compute observations in journal-sequence order, comm
/// durations likewise.
fn oracle_from(st: &ReplayedState) -> crate::exec::RankOracle {
    let observes = st
        .observes
        .values()
        .map(|o| {
            (
                VDur(o.time),
                o.units
                    .iter()
                    .map(|u| GroundTruth {
                        unit: UnitId {
                            obj: ObjId(u.obj),
                            chunk: u.chunk,
                        },
                        misses: u.misses,
                        miss_bytes: Bytes(u.miss_bytes),
                        mem_time: VDur(u.mem_time),
                    })
                    .collect(),
                (o.cont_total, o.cont_neighbors),
            )
        })
        .collect();
    let comms = st.comms.values().map(|&(_, dt)| dt).collect();
    crate::exec::RankOracle::new(observes, comms)
}

impl RecoverySetup<'_> {
    fn lease(&self) -> CapacitySchedule {
        CapacitySchedule::constant(self.machine.dram_capacity)
    }

    fn run_with(&self, rig: &JournalRig) -> RunReport {
        run_workload_rig(
            self.workload,
            self.machine,
            self.cache,
            self.nranks,
            self.policy,
            &self.lease(),
            Some(rig),
        )
    }

    /// Run the job uninterrupted with journaling enabled.
    pub fn run_journaled(&self, mode: DurabilityMode) -> JournaledRun {
        let rig = JournalRig::new(mode, self.nranks);
        let report = self.run_with(&rig);
        let mut journals = Vec::with_capacity(self.nranks);
        let mut stats = Vec::with_capacity(self.nranks);
        for out in rig.outs.lock().expect("journal outs").iter_mut() {
            let out = out.take().expect("every rank journals");
            journals.push(out.bytes);
            stats.push(out.stats);
        }
        JournaledRun {
            report,
            journals,
            stats,
        }
    }

    /// Recover from per-rank durable journal prefixes: replay each into
    /// a [`ReplayedState`], build oracles, and re-run to completion.
    pub fn recover(&self, mode: DurabilityMode, durable: &[Vec<u8>]) -> RecoveredRun {
        assert_eq!(durable.len(), self.nranks, "one durable journal per rank");
        let states: Vec<ReplayedState> = durable.iter().map(|b| ReplayedState::replay(b)).collect();
        let rig = JournalRig::new(mode, self.nranks);
        {
            let mut oracles = rig.oracles.lock().expect("oracle slots");
            for (slot, st) in oracles.iter_mut().zip(&states) {
                *slot = Some(oracle_from(st));
            }
        }
        let report = self.run_with(&rig);
        let mut journals = Vec::with_capacity(self.nranks);
        let mut summaries = Vec::with_capacity(self.nranks);
        for (out, (st, bytes)) in rig
            .outs
            .lock()
            .expect("journal outs")
            .iter_mut()
            .zip(states.iter().zip(durable))
        {
            let out = out.take().expect("every rank journals");
            summaries.push(ReplaySummary {
                durable_bytes: bytes.len() as u64,
                records: st.records() as u64,
                torn_bytes_discarded: st.torn_bytes_discarded as u64,
                last_at: st.last_at,
                last_commit: st.last_commit().map(|(g, _)| g),
                replayed_observes: out.replayed_observes,
                comm_mismatches: out.comm_mismatches,
            });
            journals.push(out.bytes);
        }
        RecoveredRun {
            report,
            journals,
            summaries,
        }
    }

    /// Inject `crash` into `clean` and recover: truncate every rank's
    /// journal to its durable prefix at the crash instant, replay, re-run,
    /// and judge equivalence against the uninterrupted run.
    pub fn crash_and_recover(
        &self,
        mode: DurabilityMode,
        crash: CrashSpec,
        clean: &JournaledRun,
    ) -> CrashOutcome {
        let durable: Vec<Vec<u8>> = clean
            .journals
            .iter()
            .map(|j| durable_prefix(j, mode, crash))
            .collect();
        let rec = self.recover(mode, &durable);

        let report_equal = rec.report.to_json().to_pretty() == clean.report.to_json().to_pretty();
        let journals_equal = rec.journals == clean.journals;

        // Analytic cost model. Replay reads this rank's durable prefix
        // from its share of the node NVM read path and applies each
        // record; redo re-executes from the last journaled instant to
        // the clean completion time. Restart is the full clean run.
        let occ = self.machine.ranks_per_node.min(self.nranks.max(1));
        let nvm_share = self.machine.rank_share(TierKind::Nvm, occ);
        let restart_time = clean.report.time();
        let mut replay_time = VDur::ZERO;
        let mut redo_time = VDur::ZERO;
        for s in &rec.summaries {
            let read = Bytes(s.durable_bytes) / nvm_share.read_bw;
            let apply = VDur(REPLAY_CPU.secs() * s.records as f64);
            replay_time = replay_time.max(read + apply);
            redo_time = redo_time.max(VDur(restart_time.secs() - s.last_at).max(VDur::ZERO));
        }
        let stats = RecoveryStats {
            mode,
            crash_at: crash.at,
            torn: crash.torn,
            durable_bytes: rec.summaries.iter().map(|s| s.durable_bytes).sum(),
            replayed_records: rec.summaries.iter().map(|s| s.records).sum(),
            replay_time,
            redo_time,
            recovery_time: replay_time + redo_time,
            restart_time,
        };
        CrashOutcome {
            crash,
            mode,
            recovered: rec.report,
            summaries: rec.summaries,
            stats,
            report_equal,
            journals_equal,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{run_workload, ComputeSpec, StepSpec};
    use unimem_cache::{AccessPattern, ObjAccess};
    use unimem_hms::object::{ObjId, ObjectSpec};
    use unimem_sim::sample_kill_points;

    struct Synth {
        iters: usize,
    }

    impl Workload for Synth {
        fn name(&self) -> String {
            "synth".into()
        }

        fn objects(&self, _rank: usize, _nranks: usize) -> Vec<ObjectSpec> {
            vec![
                ObjectSpec::new("hot", Bytes::mib(100)).est_refs(1e9),
                ObjectSpec::new("cold", Bytes::mib(100)).est_refs(1e6),
            ]
        }

        fn script(&self, _rank: usize, _nranks: usize, _iter: usize) -> Vec<StepSpec> {
            vec![
                StepSpec::Compute(ComputeSpec {
                    label: "sweep",
                    cpu: VDur::from_millis(5.0),
                    accesses: vec![
                        ObjAccess::new(
                            ObjId(0),
                            40_000_000,
                            Bytes::mib(100),
                            AccessPattern::Streaming { stride: Bytes(8) },
                        ),
                        ObjAccess::new(ObjId(1), 400_000, Bytes::mib(100), AccessPattern::Random),
                    ],
                }),
                StepSpec::AllreduceSum { bytes: Bytes(64) },
            ]
        }

        fn iterations(&self) -> usize {
            self.iters
        }
    }

    fn setup<'a>(
        w: &'a Synth,
        m: &'a MachineConfig,
        c: &'a CacheModel,
        policy: &'a Policy,
    ) -> RecoverySetup<'a> {
        RecoverySetup {
            workload: w,
            machine: m,
            cache: c,
            nranks: 2,
            policy,
        }
    }

    #[test]
    fn journaled_run_matches_plain_run_in_memory_mode() {
        let w = Synth { iters: 4 };
        let m = MachineConfig::nvm_bw_fraction(0.5);
        let c = CacheModel::platform_a();
        let p = Policy::unimem();
        let plain = run_workload(&w, &m, &c, 2, &p);
        let journaled = setup(&w, &m, &c, &p).run_journaled(DurabilityMode::InMemory);
        assert_eq!(
            plain.to_json().to_pretty(),
            journaled.report.to_json().to_pretty(),
            "InMemory journaling must not perturb timing"
        );
        assert!(journaled.journals.iter().all(|j| !j.is_empty()));
    }

    #[test]
    fn recovery_from_full_journal_is_equivalent() {
        let w = Synth { iters: 4 };
        let m = MachineConfig::nvm_bw_fraction(0.5);
        let c = CacheModel::platform_a();
        let p = Policy::unimem();
        let s = setup(&w, &m, &c, &p);
        let clean = s.run_journaled(DurabilityMode::Strict);
        // Crash after completion: everything durable, pure replay.
        let crash = CrashSpec::at(VTime::ZERO + clean.report.time() + VDur(1.0));
        let out = s.crash_and_recover(DurabilityMode::Strict, crash, &clean);
        assert!(
            out.equivalent(),
            "report={} journals={}",
            out.report_equal,
            out.journals_equal
        );
        assert!(out.summaries.iter().all(|s| s.replayed_observes > 0));
    }

    #[test]
    fn sampled_crashes_recover_equivalently_in_every_mode() {
        let w = Synth { iters: 4 };
        let m = MachineConfig::nvm_bw_fraction(0.5);
        let c = CacheModel::platform_a();
        let p = Policy::unimem();
        let s = setup(&w, &m, &c, &p);
        for mode in DurabilityMode::ALL {
            let clean = s.run_journaled(mode);
            let horizon = VTime::ZERO + clean.report.time();
            for crash in sample_kill_points(7, horizon, 2) {
                let out = s.crash_and_recover(mode, crash, &clean);
                assert!(
                    out.equivalent(),
                    "mode={mode:?} crash={crash:?}: report_equal={} journals_equal={} \
                     mismatches={:?}",
                    out.report_equal,
                    out.journals_equal,
                    out.summaries
                        .iter()
                        .map(|s| s.comm_mismatches)
                        .collect::<Vec<_>>()
                );
            }
        }
    }

    #[test]
    fn late_strict_crash_beats_restart() {
        let w = Synth { iters: 6 };
        let m = MachineConfig::nvm_bw_fraction(0.5);
        let c = CacheModel::platform_a();
        let p = Policy::unimem();
        let s = setup(&w, &m, &c, &p);
        let clean = s.run_journaled(DurabilityMode::Strict);
        let crash = CrashSpec::at(VTime::ZERO + VDur(clean.report.time().secs() * 0.75));
        let out = s.crash_and_recover(DurabilityMode::Strict, crash, &clean);
        assert!(out.equivalent());
        assert!(
            out.stats.advantage() > 1.2,
            "late-crash recovery should clearly beat restart: advantage={}",
            out.stats.advantage()
        );
    }

    #[test]
    fn in_memory_mode_recovers_by_rerunning_from_scratch() {
        let w = Synth { iters: 3 };
        let m = MachineConfig::nvm_bw_fraction(0.5);
        let c = CacheModel::platform_a();
        let p = Policy::unimem();
        let s = setup(&w, &m, &c, &p);
        let clean = s.run_journaled(DurabilityMode::InMemory);
        let crash = CrashSpec::at(VTime::ZERO + VDur(clean.report.time().secs() * 0.5));
        let out = s.crash_and_recover(DurabilityMode::InMemory, crash, &clean);
        assert!(out.equivalent());
        assert_eq!(
            out.stats.durable_bytes, 0,
            "InMemory journal never survives"
        );
        assert!((out.stats.advantage() - 1.0).abs() < 1e-9);
    }
}
