//! Large-object partitioning (§3.2).
//!
//! An object larger than DRAM can never migrate whole. The paper's
//! conservative partitioner splits only one-dimensional arrays with regular
//! references — high-dimensional arrays and anything behind memory aliases
//! stay whole (the MG situation in §5, where aliasing blocks partitioning
//! and a 128 MB DRAM goes underused). Chunks become independent placement
//! units profiled and moved separately.

use serde::{Deserialize, Serialize};
use unimem_hms::object::{ObjId, ObjectRegistry};
use unimem_sim::Bytes;

/// Partitioning policy knobs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PartitionPolicy {
    /// Split objects larger than this fraction of DRAM capacity.
    pub threshold_frac: f64,
    /// Target chunk size as a fraction of DRAM capacity.
    pub chunk_frac: f64,
    /// Upper bound on chunks per object (placement-problem size control).
    pub max_chunks: u16,
}

impl Default for PartitionPolicy {
    fn default() -> PartitionPolicy {
        PartitionPolicy {
            threshold_frac: 0.5,
            chunk_frac: 0.25,
            max_chunks: 64,
        }
    }
}

/// Decide and apply chunking for every eligible object. Returns the ids
/// that were split.
pub fn partition_large_objects(
    registry: &mut ObjectRegistry,
    dram_capacity: Bytes,
    policy: PartitionPolicy,
) -> Vec<ObjId> {
    if dram_capacity.is_zero() {
        return Vec::new();
    }
    let threshold = (dram_capacity.as_f64() * policy.threshold_frac) as u64;
    let target_chunk = ((dram_capacity.as_f64() * policy.chunk_frac) as u64).max(1);
    let candidates: Vec<(ObjId, u16)> = registry
        .iter()
        .filter(|o| o.partitionable && !o.aliased && o.size.get() > threshold)
        .map(|o| {
            let chunks = o
                .size
                .get()
                .div_ceil(target_chunk)
                .clamp(2, u64::from(policy.max_chunks)) as u16;
            (o.id, chunks)
        })
        .collect();
    for &(id, chunks) in &candidates {
        registry.set_chunks(id, chunks);
    }
    candidates.into_iter().map(|(id, _)| id).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use unimem_hms::object::ObjectSpec;

    fn reg() -> ObjectRegistry {
        let mut r = ObjectRegistry::new();
        r.register(ObjectSpec::new("big1d", Bytes::mib(600)).partitionable(true));
        r.register(ObjectSpec::new("bigNd", Bytes::mib(600))); // not partitionable
        r.register(
            ObjectSpec::new("mg_like", Bytes::mib(600))
                .partitionable(true)
                .aliased(true),
        );
        r.register(ObjectSpec::new("small", Bytes::mib(10)).partitionable(true));
        r
    }

    #[test]
    fn only_eligible_large_objects_split() {
        let mut r = reg();
        let split = partition_large_objects(&mut r, Bytes::mib(256), PartitionPolicy::default());
        assert_eq!(split.len(), 1);
        let o = r.get(split[0]);
        assert_eq!(r.name_of(o.id), "big1d");
        // 600 MiB / 64 MiB target → 10 chunks.
        assert_eq!(o.chunks, 10);
        assert_eq!(r.lookup("bigNd").map(|i| r.get(i).chunks), Some(1));
        assert_eq!(r.lookup("mg_like").map(|i| r.get(i).chunks), Some(1));
        assert_eq!(r.lookup("small").map(|i| r.get(i).chunks), Some(1));
    }

    #[test]
    fn chunk_sizes_fit_dram() {
        let mut r = reg();
        let cap = Bytes::mib(256);
        partition_large_objects(&mut r, cap, PartitionPolicy::default());
        let big = r.lookup("big1d").unwrap();
        for u in r.get(big).units() {
            assert!(r.unit_size(u) <= cap);
        }
    }

    #[test]
    fn max_chunks_bounds_the_split() {
        let mut r = ObjectRegistry::new();
        r.register(ObjectSpec::new("huge", Bytes::gib(16)).partitionable(true));
        let split = partition_large_objects(
            &mut r,
            Bytes::mib(128),
            PartitionPolicy {
                max_chunks: 8,
                ..PartitionPolicy::default()
            },
        );
        assert_eq!(r.get(split[0]).chunks, 8);
    }

    #[test]
    fn zero_capacity_is_a_noop() {
        let mut r = reg();
        assert!(partition_large_objects(&mut r, Bytes(0), PartitionPolicy::default()).is_empty());
    }

    #[test]
    fn threshold_respects_fraction() {
        let mut r = ObjectRegistry::new();
        r.register(ObjectSpec::new("edge", Bytes::mib(100)).partitionable(true));
        // threshold = 0.5 · 256 MiB = 128 MiB > 100 MiB → no split.
        let split = partition_large_objects(&mut r, Bytes::mib(256), PartitionPolicy::default());
        assert!(split.is_empty());
    }
}
