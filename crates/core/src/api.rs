//! The programmer-facing API of Table 2, over real memory.
//!
//! | API | Functionality |
//! |---|---|
//! | `unimem_init` | initialize counters, timers, helper thread |
//! | `unimem_start` | identify the beginning of the main computation loop |
//! | `unimem_end` | identify the end of the main computation loop |
//! | `unimem_malloc` | identify and allocate target data objects |
//! | `unimem_free` | free target data objects |
//!
//! This is the *real-memory* embodiment used by the runnable examples and
//! wall-clock benches: objects live in the two accounted pools of
//! `unimem-hms`, migration goes through the real helper thread and its
//! FIFO queue, and pointer fix-up is the handle swap under the object's
//! lock. Hardware miss sampling is not available to a plain user-space
//! process, so this mode counts accesses in software (the workload reports
//! touches); the full sampling→model→knapsack pipeline is exercised by the
//! simulation driver in [`crate::exec`].

use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use unimem_hms::pools::{HelperThread, RealHms, RealObject, Ticket};
use unimem_hms::tier::TierKind;
use unimem_sim::Bytes;

/// Real-mode Unimem runtime handle (Table 2's API).
///
/// # Example — the five calls end to end
///
/// ```
/// use unimem::Unimem;
/// use unimem_sim::Bytes;
///
/// let rt = Unimem::init(Bytes::mib(1));        // unimem_init
/// let field = rt.malloc("field", Bytes::kib(64)); // unimem_malloc (starts in NVM)
/// rt.start();                                  // unimem_start
/// rt.record_access("field", 1_000_000);        // hot: >1 touch per byte
/// rt.end_iteration();                          // decide + enqueue moves
/// let (migrations, dram_used) = rt.end();      // unimem_end (quiesces)
/// assert_eq!(migrations, 1, "the hot object moved to DRAM");
/// assert_eq!(dram_used, Bytes::kib(64));
/// assert_eq!(field.tier(), unimem_hms::TierKind::Dram);
/// rt.free("field");                            // unimem_free
/// ```
pub struct Unimem {
    hms: RealHms,
    helper: HelperThread,
    objects: Mutex<HashMap<String, Arc<RealObject>>>,
    touches: Mutex<HashMap<String, u64>>,
    pending: Mutex<Vec<Ticket>>,
    in_loop: Mutex<bool>,
    migrations: Mutex<u64>,
}

impl Unimem {
    /// `unimem_init`: set up pools, counters and the helper thread.
    pub fn init(dram_capacity: Bytes) -> Unimem {
        Unimem {
            hms: RealHms::new(dram_capacity),
            helper: HelperThread::spawn(),
            objects: Mutex::new(HashMap::new()),
            touches: Mutex::new(HashMap::new()),
            pending: Mutex::new(Vec::new()),
            in_loop: Mutex::new(false),
            migrations: Mutex::new(0),
        }
    }

    /// `unimem_malloc`: register and allocate a target data object. All
    /// objects start in NVM (the paper's default initial placement).
    pub fn malloc(&self, name: &str, len: Bytes) -> Arc<RealObject> {
        let obj = self
            .hms
            .alloc(name, len, TierKind::Nvm)
            .expect("NVM pool is unbounded");
        self.objects
            .lock()
            .insert(name.to_string(), Arc::clone(&obj));
        self.touches.lock().insert(name.to_string(), 0);
        obj
    }

    /// `unimem_free`: drop a target data object.
    pub fn free(&self, name: &str) {
        self.objects.lock().remove(name);
        self.touches.lock().remove(name);
    }

    /// `unimem_start`: the main computation loop begins.
    pub fn start(&self) {
        *self.in_loop.lock() = true;
    }

    /// Software access accounting (stands in for the hardware counters the
    /// simulation path models; see module docs).
    pub fn record_access(&self, name: &str, count: u64) {
        if let Some(t) = self.touches.lock().get_mut(name) {
            *t += count;
        }
    }

    /// End of one loop iteration: after the first iteration, decide the
    /// placement — hottest objects per byte into DRAM, greedily within
    /// capacity — and enqueue the moves on the helper thread (proactive,
    /// overlapping the next iteration's work).
    pub fn end_iteration(&self) {
        let objects = self.objects.lock();
        let touches = self.touches.lock();
        let mut ranked: Vec<(&String, f64)> = touches
            .iter()
            .filter_map(|(n, &t)| {
                objects
                    .get(n)
                    .map(|o| (n, t as f64 / o.len().max(1) as f64))
            })
            .collect();
        // total_cmp instead of partial_cmp().expect(): a NaN density is
        // impossible today (counts are integers, sizes clamped ≥ 1), and
        // if one ever appeared it must not panic the runtime. Note
        // total_cmp orders +NaN above +inf, so such a value would rank
        // *first* (hottest) — harmless, since migrating it is merely
        // wasteful, but don't rely on it being ignored.
        ranked.sort_by(|a, b| b.1.total_cmp(&a.1));

        let cap = self.hms.accounts().dram_capacity().get();
        let mut planned = self.hms.accounts().dram_used().get();
        let mut pending = self.pending.lock();
        for (name, density) in ranked {
            // Below one touch per byte the movement cannot pay off.
            if density < 1.0 {
                break;
            }
            let obj = &objects[name];
            let len = obj.len() as u64;
            if obj.tier() == TierKind::Dram || planned + len > cap {
                continue;
            }
            planned += len;
            pending.push(self.helper.migrate(Arc::clone(obj), TierKind::Dram));
            *self.migrations.lock() += 1;
        }
    }

    /// Block until all enqueued migrations finished (the per-phase queue
    /// check of §3.3, collapsed to one call in real mode).
    pub fn quiesce(&self) -> usize {
        let mut pending = self.pending.lock();
        let n = pending.len();
        for t in pending.drain(..) {
            t.wait();
        }
        n
    }

    /// `unimem_end`: the loop finished; returns (migrations, DRAM bytes).
    pub fn end(&self) -> (u64, Bytes) {
        *self.in_loop.lock() = false;
        self.quiesce();
        (*self.migrations.lock(), self.hms.accounts().dram_used())
    }

    pub fn dram_used(&self) -> Bytes {
        self.hms.accounts().dram_used()
    }

    pub fn tier_of(&self, name: &str) -> Option<TierKind> {
        self.objects.lock().get(name).map(|o| o.tier())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn malloc_starts_in_nvm() {
        let rt = Unimem::init(Bytes::mib(1));
        let a = rt.malloc("a", Bytes::kib(64));
        assert_eq!(a.tier(), TierKind::Nvm);
        assert_eq!(rt.tier_of("a"), Some(TierKind::Nvm));
    }

    #[test]
    fn hottest_object_moves_to_dram() {
        let rt = Unimem::init(Bytes::kib(128));
        let _a = rt.malloc("hot", Bytes::kib(64));
        let _b = rt.malloc("cold", Bytes::kib(64));
        let _c = rt.malloc("big", Bytes::kib(128));
        rt.start();
        rt.record_access("hot", 1_000_000);
        rt.record_access("cold", 10);
        rt.record_access("big", 500_000); // dense too, but hot fills first
        rt.end_iteration();
        rt.quiesce();
        assert_eq!(rt.tier_of("hot"), Some(TierKind::Dram));
        assert_eq!(rt.tier_of("cold"), Some(TierKind::Nvm));
        // hot (64K) leaves 64K free: big (128K) cannot fit.
        assert_eq!(rt.tier_of("big"), Some(TierKind::Nvm));
    }

    #[test]
    fn capacity_respected_across_iterations() {
        let rt = Unimem::init(Bytes::kib(100));
        for i in 0..5 {
            let name = format!("o{i}");
            rt.malloc(&name, Bytes::kib(40));
            // Density above 1 touch/byte, decreasing with i.
            rt.record_access(&name, 10 * 40 * 1024 - i);
        }
        rt.start();
        rt.end_iteration();
        let (migs, used) = rt.end();
        assert_eq!(migs, 2, "two 40K objects fit in 100K");
        assert_eq!(used, Bytes::kib(80));
    }

    #[test]
    fn untouched_objects_stay_put() {
        let rt = Unimem::init(Bytes::mib(1));
        rt.malloc("idle", Bytes::kib(4));
        rt.start();
        rt.end_iteration();
        let (migs, _) = rt.end();
        assert_eq!(migs, 0);
    }

    #[test]
    fn free_removes_object() {
        let rt = Unimem::init(Bytes::mib(1));
        rt.malloc("a", Bytes::kib(4));
        rt.free("a");
        assert_eq!(rt.tier_of("a"), None);
    }

    #[test]
    fn data_survives_migration() {
        let rt = Unimem::init(Bytes::mib(1));
        let a = rt.malloc("a", Bytes::kib(16));
        a.with_write(|b| {
            b.iter_mut()
                .enumerate()
                .for_each(|(i, x)| *x = (i % 251) as u8)
        });
        rt.record_access("a", 100_000);
        rt.start();
        rt.end_iteration();
        rt.quiesce();
        assert_eq!(a.tier(), TierKind::Dram);
        a.with_read(|b| {
            assert!(b.iter().enumerate().all(|(i, &x)| x == (i % 251) as u8));
        });
    }
}
