//! The fixed-assignment policies: DRAM-only, NVM-only, and named static
//! pins. None of them observe, replan, or migrate — their whole behaviour
//! is the [`TierView`] they report — so they share one inert rank state.

use super::{PlacementPolicy, PolicyId, RankInit, RankState, TierView};
use std::collections::BTreeSet;
use unimem_hms::object::UnitId;

/// Unlimited DRAM: the paper's baseline machine.
pub struct DramOnly;

/// Everything in NVM: the paper's worst case.
pub struct NvmOnly;

/// Named objects pinned in DRAM for the whole run. X-Mem's offline
/// placement builds one of these (label "X-Mem"); Fig. 4's manual pins
/// use it directly.
pub struct StaticPins {
    /// Object names pinned in DRAM.
    pub in_dram: Vec<String>,
    /// Display label for reports.
    pub label: String,
}

/// Tier residency frozen at init: the only state a fixed policy has.
struct FixedRank {
    in_dram: BTreeSet<UnitId>,
    all_dram: bool,
}

impl RankState for FixedRank {
    fn view(&self) -> TierView<'_> {
        TierView::Sets {
            in_dram: &self.in_dram,
            all_dram: self.all_dram,
        }
    }
}

impl PlacementPolicy for DramOnly {
    fn id(&self) -> PolicyId {
        PolicyId::DramOnly
    }

    fn label(&self) -> &str {
        "DRAM-only"
    }

    fn init_rank(&self, _init: RankInit<'_>) -> Box<dyn RankState> {
        Box::new(FixedRank {
            in_dram: BTreeSet::new(),
            all_dram: true,
        })
    }
}

impl PlacementPolicy for NvmOnly {
    fn id(&self) -> PolicyId {
        PolicyId::NvmOnly
    }

    fn label(&self) -> &str {
        "NVM-only"
    }

    fn init_rank(&self, _init: RankInit<'_>) -> Box<dyn RankState> {
        Box::new(FixedRank {
            in_dram: BTreeSet::new(),
            all_dram: false,
        })
    }
}

impl PlacementPolicy for StaticPins {
    fn id(&self) -> PolicyId {
        PolicyId::Xmem
    }

    fn label(&self) -> &str {
        &self.label
    }

    fn init_rank(&self, init: RankInit<'_>) -> Box<dyn RankState> {
        let set = self
            .in_dram
            .iter()
            .filter_map(|name| init.registry.lookup(name))
            .flat_map(|id| init.registry.get(id).units().collect::<Vec<_>>())
            .collect();
        Box::new(FixedRank {
            in_dram: set,
            all_dram: false,
        })
    }
}
