//! Pluggable placement policies: the trait, the registry, and the
//! self-contained policy implementations.
//!
//! The driver in [`crate::exec`] replays a workload's phase script; what
//! varies between the paper's bars is *who decides tier residency and
//! when*. Each competitor is a [`PlacementPolicy`] — a factory that
//! builds one [`RankState`] per rank — and the driver calls the same
//! lifecycle hooks for every policy:
//!
//! 1. [`PlacementPolicy::init_rank`] — initial placement from the
//!    registry (and, for Unimem, compiler estimates + partitioning);
//! 2. [`RankState::iteration_begin`] — dependency-table construction and
//!    reaction to capacity-lease changes at iteration boundaries;
//! 3. [`RankState::phase_begin`] — enforcement work at a phase boundary
//!    (migration triggers, helper-queue sync);
//! 4. [`RankState::view`] — the tier residency the ground-truth timing
//!    model charges for this phase;
//! 5. [`RankState::observe_compute`] / [`RankState::observe_comm`] —
//!    profiling feedback after the phase ran;
//! 6. [`RankState::iteration_end`] — per-epoch replanning;
//! 7. [`RankState::finish`] — plan metadata into [`RunStats`].
//!
//! The registry ([`PolicyId`]) is the one canonical name table: the
//! sweep matrix, the `--policies` CLI, and the JSON report all spell a
//! policy the way [`PolicyId::name`] does.
//!
//! Implementations live one file per family:
//!
//! * [`fixed`] — DRAM-only, NVM-only, and named static pins (X-Mem's
//!   offline placement feeds the latter);
//! * [`unimem`] — the paper's runtime (§3): sampled profiling,
//!   knapsack-guided search, proactive enforcement, adaptation;
//! * [`online`] — interval-based online guidance with sampled hotness
//!   feedback (Olson et al.), a software competitor without Unimem's
//!   phase awareness;
//! * [`hwcache`] — DRAM as a hardware-managed set-associative cache
//!   over NVM (Wen et al.), the no-software-cost competitor.

pub mod fixed;
pub mod hwcache;
pub mod online;
pub mod unimem;

use crate::deps::PhaseRefTable;
use crate::exec::{CapacitySchedule, StepSpec};
use crate::search::SearchKind;
use crate::stats::RunStats;
use std::collections::{BTreeSet, HashMap};
use unimem_hms::contention::BwClient;
use unimem_hms::object::{ObjectRegistry, UnitId};
use unimem_hms::{DramService, MachineConfig};
use unimem_mpi::{PhaseId, RankClock};
use unimem_perf::sampler::GroundTruth;
use unimem_perf::{Calibration, SamplerConfig};
use unimem_sim::{Bytes, VDur};

pub use hwcache::{HwCache, HwCacheConfig};
pub use online::{OnlineConfig, OnlineGuidance};
pub use unimem::{UnimemConfig, UnimemPolicy};

/// Canonical policy registry: every placement policy the evaluation
/// matrix knows, with its one true sweep/CLI/JSON name.
///
/// The sweep runner matches on this enum exhaustively to instantiate
/// cells, so adding a variant without wiring it into the sweep fails to
/// compile rather than silently vanishing from the matrix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PolicyId {
    /// The paper's runtime (§3).
    Unimem,
    /// Offline-profiled static placement (Dulloor et al., EuroSys'16).
    Xmem,
    /// Unlimited DRAM: the paper's baseline machine.
    DramOnly,
    /// Everything in NVM: the paper's worst case.
    NvmOnly,
    /// Interval-sampled online guidance (Olson et al.).
    OnlineGuidance,
    /// Hardware-managed DRAM cache over NVM (Wen et al.).
    HwCache,
}

impl PolicyId {
    /// Every registered policy, in the matrix's canonical column order
    /// (the four legacy competitors first, then the PR-6 additions).
    pub const ALL: [PolicyId; 6] = [
        PolicyId::Unimem,
        PolicyId::Xmem,
        PolicyId::DramOnly,
        PolicyId::NvmOnly,
        PolicyId::OnlineGuidance,
        PolicyId::HwCache,
    ];

    /// The canonical sweep/CLI/JSON name.
    pub fn name(self) -> &'static str {
        match self {
            PolicyId::Unimem => "unimem",
            PolicyId::Xmem => "xmem",
            PolicyId::DramOnly => "dram-only",
            PolicyId::NvmOnly => "nvm-only",
            PolicyId::OnlineGuidance => "online-guidance",
            PolicyId::HwCache => "hw-cache",
        }
    }

    /// Parse a canonical name (case-insensitive). The inverse of
    /// [`PolicyId::name`], and the only parser — the CLI, the sweep
    /// matrix, and tests all route through here.
    pub fn from_name(s: &str) -> Option<PolicyId> {
        PolicyId::ALL
            .into_iter()
            .find(|p| p.name().eq_ignore_ascii_case(s))
    }

    /// The workload-independent default [`Policy`] value for this entry,
    /// or `None` for X-Mem, whose static placement requires an offline
    /// training run per (workload, machine) — see `unimem_xmem`.
    pub fn default_policy(self) -> Option<Policy> {
        match self {
            PolicyId::Unimem => Some(Policy::unimem()),
            PolicyId::Xmem => None,
            PolicyId::DramOnly => Some(Policy::DramOnly),
            PolicyId::NvmOnly => Some(Policy::NvmOnly),
            PolicyId::OnlineGuidance => Some(Policy::online_guidance()),
            PolicyId::HwCache => Some(Policy::hw_cache()),
        }
    }
}

/// Placement policy for a run: the user-facing configuration value.
/// [`Policy::build`] turns it into the [`PlacementPolicy`] the driver
/// actually runs.
#[derive(Debug, Clone, PartialEq)]
pub enum Policy {
    /// Unlimited DRAM (the paper's DRAM-only baseline machine).
    DramOnly,
    /// Everything in NVM.
    NvmOnly,
    /// Named objects pinned in DRAM for the whole run (Fig. 4 and the
    /// X-Mem baseline feed this).
    Static {
        /// Object names pinned in DRAM for the whole run.
        in_dram: Vec<String>,
        /// Display label for reports.
        label: String,
    },
    /// The paper's runtime, with its ablation/config toggles.
    Unimem(UnimemConfig),
    /// Interval-based online guidance with sampled hotness feedback.
    OnlineGuidance(OnlineConfig),
    /// Hardware-managed DRAM cache over NVM.
    HwCache(HwCacheConfig),
}

impl Policy {
    /// Display label used in reports. Borrowed — the static variants
    /// carry their labels in the binary, not in a fresh allocation.
    pub fn label(&self) -> &str {
        match self {
            Policy::DramOnly => "DRAM-only",
            Policy::NvmOnly => "NVM-only",
            Policy::Static { label, .. } => label,
            Policy::Unimem(_) => "Unimem",
            Policy::OnlineGuidance(_) => "Online-guidance",
            Policy::HwCache(_) => "HW-cache",
        }
    }

    /// The full Unimem runtime at its default configuration.
    pub fn unimem() -> Policy {
        Policy::Unimem(UnimemConfig::default())
    }

    /// Online guidance at its default configuration.
    pub fn online_guidance() -> Policy {
        Policy::OnlineGuidance(OnlineConfig::default())
    }

    /// The hardware DRAM cache at its default configuration.
    pub fn hw_cache() -> Policy {
        Policy::HwCache(HwCacheConfig::default())
    }

    /// Instantiate the policy implementation the driver runs.
    pub fn build(&self) -> Box<dyn PlacementPolicy> {
        match self {
            Policy::DramOnly => Box::new(fixed::DramOnly),
            Policy::NvmOnly => Box::new(fixed::NvmOnly),
            Policy::Static { in_dram, label } => Box::new(fixed::StaticPins {
                in_dram: in_dram.clone(),
                label: label.clone(),
            }),
            Policy::Unimem(cfg) => Box::new(UnimemPolicy(cfg.clone())),
            Policy::OnlineGuidance(cfg) => Box::new(OnlineGuidance(cfg.clone())),
            Policy::HwCache(cfg) => Box::new(HwCache(*cfg)),
        }
    }
}

/// Everything a policy may consult when building one rank's state.
pub struct RankInit<'a> {
    /// The (whole-node) machine model.
    pub machine: &'a MachineConfig,
    /// This rank's target objects, already registered. Mutable so a
    /// policy can partition large objects before placement.
    pub registry: &'a mut ObjectRegistry,
    /// The node-level DRAM grant service.
    pub service: &'a DramService,
    /// This rank's handle on the node's shared-bandwidth ledger.
    pub client: &'a BwClient,
    /// The per-iteration node DRAM lease.
    pub lease: &'a CapacitySchedule,
    /// Offline calibrations, keyed by `(node hardware class, node
    /// occupancy)` — under a heterogeneous topology each node class has
    /// its own tier parameters, so Eq. 1's peak comparison must be
    /// calibrated against the share a rank of *that* class actually sees.
    /// Empty unless the policy requested them via
    /// [`PlacementPolicy::sampler_calibration`]. A rank's class is
    /// [`BwClient::node_class`].
    pub cals: &'a HashMap<(usize, usize), Calibration>,
    /// The rank's crash-consistency redo journal, when journaling is on.
    /// Policies that own a [`unimem_hms::MigrationEngine`] must attach it
    /// (`engine.with_journal(...)`) so migration intents are journaled
    /// before their copies start.
    pub journal: Option<unimem_hms::journal::JournalHandle>,
    /// This rank's id.
    pub rank: usize,
}

impl RankInit<'_> {
    /// One rank's slice of a node-level byte budget.
    pub fn per_rank(&self, node_budget: Bytes) -> Bytes {
        Bytes(node_budget.get() / self.machine.ranks_per_node as u64)
    }
}

/// The driver-owned context a [`RankState`] hook runs against.
pub struct StepEnv<'a> {
    /// The rank's virtual clock. Hooks advance it to charge their own
    /// overhead; communication is driven by the executor between hook
    /// calls, never from inside one.
    pub ctx: &'a mut RankClock,
    /// The rank's run statistics (policies charge their overheads here).
    pub stats: &'a mut RunStats,
    /// The rank's object registry (frozen after init).
    pub registry: &'a ObjectRegistry,
    /// The node-level DRAM grant service.
    pub service: &'a DramService,
    /// The (whole-node) machine model.
    pub machine: &'a MachineConfig,
    /// The per-iteration node DRAM lease.
    pub lease: &'a CapacitySchedule,
    /// Total main-loop iterations of the run.
    pub iterations: usize,
}

impl StepEnv<'_> {
    /// One rank's slice of a node-level byte budget.
    pub fn per_rank(&self, node_budget: Bytes) -> Bytes {
        Bytes(node_budget.get() / self.machine.ranks_per_node as u64)
    }
}

/// Tier residency as the ground-truth timing model sees it for one
/// compute phase.
#[derive(Debug, Clone, Copy)]
pub enum TierView<'a> {
    /// Explicit per-unit residency: members of `in_dram` are served from
    /// DRAM, everything else from NVM; `all_dram` short-circuits for the
    /// DRAM-only baseline machine.
    Sets {
        /// Units currently resident in DRAM.
        in_dram: &'a BTreeSet<UnitId>,
        /// Every access is a DRAM access (infinite-DRAM baseline).
        all_dram: bool,
    },
    /// Hardware-managed DRAM cache: every unit's misses are served from
    /// DRAM with this hit fraction and from NVM otherwise.
    Fraction(f64),
}

/// A placement policy: a per-run factory for per-rank placement state.
///
/// Implementations must be deterministic — two runs with identical
/// inputs must produce byte-identical reports regardless of worker
/// count, which in practice means no wall-clock, no global state, and
/// randomness only through `unimem_sim::DetRng`.
pub trait PlacementPolicy: Sync {
    /// This policy's registry entry.
    fn id(&self) -> PolicyId;

    /// Display label used in reports ("Unimem", "X-Mem", ...).
    fn label(&self) -> &str;

    /// True when the policy can honour a non-constant DRAM lease (it
    /// manages placement, so it can evict when budget is revoked).
    fn supports_moving_lease(&self) -> bool {
        false
    }

    /// When `Some`, the driver runs the offline sampler calibration once
    /// per distinct node occupancy (with the returned config and seed)
    /// and passes the results to [`PlacementPolicy::init_rank`].
    fn sampler_calibration(&self) -> Option<(SamplerConfig, u64)> {
        None
    }

    /// Build one rank's placement state (initial placement included).
    fn init_rank(&self, init: RankInit<'_>) -> Box<dyn RankState>;
}

/// Per-rank placement state: the lifecycle hooks the driver calls while
/// replaying the phase script. Every hook may advance virtual time
/// (charging its own overhead) and update [`RunStats`] counters.
///
/// `Send` because the pooled executor migrates rank state across worker
/// threads between communication steps; state is still only ever touched
/// by one thread at a time.
pub trait RankState: Send {
    /// Iteration boundary: build dependency tables on the first pass,
    /// react to capacity-lease changes.
    fn iteration_begin(&mut self, _it: usize, _steps: &[StepSpec], _env: &mut StepEnv<'_>) {}

    /// Phase boundary, before the phase runs: enforcement (migration
    /// triggers, helper-queue sync).
    fn phase_begin(&mut self, _phase: PhaseId, _env: &mut StepEnv<'_>) {}

    /// The tier residency to charge for the phase about to run.
    fn view(&self) -> TierView<'_>;

    /// A compute phase ran for `time` touching `truths`.
    fn observe_compute(
        &mut self,
        _phase: PhaseId,
        _time: VDur,
        _truths: &[GroundTruth],
        _env: &mut StepEnv<'_>,
    ) {
    }

    /// A communication phase ran for `dt`.
    fn observe_comm(&mut self, _phase: PhaseId, _dt: VDur, _env: &mut StepEnv<'_>) {}

    /// Iteration boundary, after the last phase: per-epoch replanning.
    fn iteration_end(&mut self, _it: usize, _steps: &[StepSpec], _env: &mut StepEnv<'_>) {}

    /// End of run: fold plan metadata into the stats and report which
    /// search kind won (Unimem only).
    fn finish(&mut self, _stats: &mut RunStats) -> Option<SearchKind> {
        None
    }
}

/// Reference table from the script: a phase references the units of every
/// object its descriptors touch. Communication phases reference nothing
/// (packing traffic lives in the adjacent compute descriptors).
pub(crate) fn build_refs(steps: &[StepSpec], registry: &ObjectRegistry) -> PhaseRefTable {
    let mut refs = PhaseRefTable::new(steps.len());
    for (i, step) in steps.iter().enumerate() {
        if let StepSpec::Compute(spec) = step {
            for acc in &spec.accesses {
                for unit in registry.get(acc.obj).units() {
                    refs.add_ref(PhaseId(i as u32), unit);
                }
            }
        }
    }
    refs
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip_through_the_registry() {
        for id in PolicyId::ALL {
            assert_eq!(PolicyId::from_name(id.name()), Some(id));
            assert_eq!(PolicyId::from_name(&id.name().to_uppercase()), Some(id));
        }
        assert_eq!(PolicyId::from_name("no-such-policy"), None);
    }

    #[test]
    fn registry_labels_match_policy_labels() {
        // Every instantiable registry entry builds a policy whose trait
        // label agrees with the enum label.
        for id in PolicyId::ALL {
            let Some(p) = id.default_policy() else {
                assert_eq!(id, PolicyId::Xmem, "only X-Mem needs offline training");
                continue;
            };
            let built = p.build();
            assert_eq!(built.id(), id);
            assert_eq!(built.label(), p.label());
        }
    }

    #[test]
    fn only_adaptive_policies_accept_moving_leases() {
        assert!(Policy::unimem().build().supports_moving_lease());
        assert!(Policy::online_guidance().build().supports_moving_lease());
        for p in [Policy::DramOnly, Policy::NvmOnly, Policy::hw_cache()] {
            assert!(!p.build().supports_moving_lease(), "{}", p.label());
        }
    }
}
