//! The paper's runtime as a [`PlacementPolicy`]: sampled profiling,
//! knapsack-guided search, proactive enforcement, re-profiling on
//! variation — §3.1's profile → decide → enforce loop, driven through
//! the policy lifecycle hooks.

use super::{build_refs, PlacementPolicy, PolicyId, RankInit, RankState, StepEnv, TierView};
use crate::adapt::VariationMonitor;
use crate::deps::PhaseRefTable;
use crate::enforce::Enforcer;
use crate::exec::StepSpec;
use crate::initial::initial_placement;
use crate::model::ModelParams;
use crate::partition::{partition_large_objects, PartitionPolicy};
use crate::profile::{IterationProfile, PhaseRecord};
use crate::search::{best_plan, SearchInput, SearchKind};
use crate::stats::RunStats;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeSet, HashMap};
use unimem_hms::contention::HelperLink;
use unimem_hms::object::UnitId;
use unimem_hms::tier::TierKind;
use unimem_hms::MigrationEngine;
use unimem_mpi::PhaseId;
use unimem_perf::sampler::GroundTruth;
use unimem_perf::{Sampler, SamplerConfig};
use unimem_sim::{Bytes, VDur};

/// Runtime configuration for the Unimem policy, with ablation toggles
/// matching Fig. 11's four techniques.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UnimemConfig {
    /// Enable the cross-phase global search.
    pub use_global: bool,
    /// Enable the phase-local search.
    pub use_local: bool,
    /// Enable large-object partitioning (§3.2).
    pub partitioning: bool,
    /// Enable estimate-driven initial placement (§3.2).
    pub initial_placement: bool,
    /// Enable re-profiling on workload variation (§3.2).
    pub adaptation: bool,
    /// Hardware-counter sampling configuration.
    pub sampler: SamplerConfig,
    /// Seed for the sampler's deterministic thinning.
    pub seed: u64,
    /// Cost charged per placement decision (model + knapsack solve).
    pub modeling_cost: VDur,
    /// Cost charged per phase boundary (helper-queue status check).
    pub sync_cost: VDur,
    /// How large objects split into chunks (§3.2).
    pub partition_policy: PartitionPolicy,
}

impl Default for UnimemConfig {
    fn default() -> UnimemConfig {
        UnimemConfig {
            use_global: true,
            use_local: true,
            partitioning: true,
            initial_placement: true,
            adaptation: true,
            sampler: SamplerConfig::default(),
            seed: 0x5eed,
            modeling_cost: VDur::from_micros(120.0),
            sync_cost: VDur::from_nanos(250.0),
            partition_policy: PartitionPolicy::default(),
        }
    }
}

impl UnimemConfig {
    /// Fig. 11 ablation rungs: 1 = global only, 2 = +local, 3 =
    /// +partitioning, 4 = +initial placement (full system sans adaptation
    /// toggles, which stay on).
    pub fn ablation(rung: u8) -> UnimemConfig {
        UnimemConfig {
            use_global: rung >= 1,
            use_local: rung >= 2,
            partitioning: rung >= 3,
            initial_placement: rung >= 4,
            ..UnimemConfig::default()
        }
    }
}

/// The paper's runtime.
pub struct UnimemPolicy(pub UnimemConfig);

impl PlacementPolicy for UnimemPolicy {
    fn id(&self) -> PolicyId {
        PolicyId::Unimem
    }

    fn label(&self) -> &str {
        "Unimem"
    }

    fn supports_moving_lease(&self) -> bool {
        true
    }

    fn sampler_calibration(&self) -> Option<(SamplerConfig, u64)> {
        Some((self.0.sampler, self.0.seed))
    }

    fn init_rank(&self, init: RankInit<'_>) -> Box<dyn RankState> {
        let cfg = &self.0;
        if cfg.partitioning {
            // Chunks are sized against the lease's peak: a chunk that
            // fits DRAM at the high-water lease simply stays in NVM
            // while the lease is lower.
            partition_large_objects(
                init.registry,
                init.per_rank(init.lease.peak()),
                cfg.partition_policy,
            );
        }
        // The models reason about this rank's share of the node: tier
        // bandwidth over occupancy and the helper's fair copy-path
        // slice. The Eq. 4 contention terms charge hidden copies for
        // the load they put on the pools each direction actually
        // touches — an admission reads NVM and writes DRAM, an
        // eviction the reverse (which is far harsher on
        // write-asymmetric technologies).
        let machine = init.machine;
        let occ = init.client.occupancy();
        let rho = init.client.copy_rate().bytes_per_s();
        let pressure = |read_pool: unimem_sim::Bandwidth, write_pool: unimem_sim::Bandwidth| {
            if machine.helper_contention {
                rho / read_pool.bytes_per_s().min(write_pool.bytes_per_s())
            } else {
                0.0
            }
        };
        let model = ModelParams::new(
            machine.rank_share(TierKind::Dram, occ),
            machine.rank_share(TierKind::Nvm, occ),
            init.client.copy_rate(),
            *init
                .cals
                .get(&(init.client.node_class(), occ))
                .expect("calibration computed per (node class, occupancy) for Unimem runs"),
        )
        .with_contention_penalties(
            pressure(machine.nvm.read_bw, machine.dram.write_bw),
            pressure(machine.dram.read_bw, machine.nvm.write_bw),
        );
        let mut committed = BTreeSet::new();
        let mut grants = HashMap::new();
        if cfg.initial_placement {
            for u in initial_placement(init.registry, init.per_rank(init.lease.at(0))) {
                if let Some(g) = init.service.reserve(init.rank, init.registry.unit_size(u)) {
                    committed.insert(u);
                    grants.insert(u, g);
                }
            }
        }
        Box::new(UnimemRank {
            sampler: Sampler::new(
                cfg.sampler,
                cfg.seed ^ (init.rank as u64).wrapping_mul(0x9e3779b9),
            ),
            engine: MigrationEngine::new(HelperLink::Shared(init.client.clone()))
                .with_journal(init.journal.clone()),
            monitor: None,
            profile: IterationProfile::new(),
            refs: None,
            enforcer: None,
            committed,
            grants,
            profiling: true,
            cap_per_rank: init.per_rank(init.lease.at(0)),
            model,
            cfg: cfg.clone(),
            rank: init.rank,
        })
    }
}

/// Per-rank Unimem state: the profile → decide → enforce pipeline.
struct UnimemRank {
    cfg: UnimemConfig,
    model: ModelParams,
    sampler: Sampler,
    engine: MigrationEngine,
    monitor: Option<VariationMonitor>,
    profile: IterationProfile,
    refs: Option<PhaseRefTable>,
    enforcer: Option<Enforcer>,
    /// Pre-plan DRAM contents (initial placement) and their grants.
    committed: BTreeSet<UnitId>,
    grants: HashMap<UnitId, unimem_hms::alloc::Region>,
    profiling: bool,
    cap_per_rank: Bytes,
    rank: usize,
}

impl UnimemRank {
    fn dram_units(&self) -> &BTreeSet<UnitId> {
        self.enforcer
            .as_ref()
            .map(|e| e.committed())
            .unwrap_or(&self.committed)
    }

    /// The placement decision step, shared by the end-of-profiling path
    /// and lease re-plans: charge the modeling cost, solve for the best
    /// plan at the *current* capacity (`self.cap_per_rank`), and swap in
    /// a fresh enforcer that transitions from the current DRAM contents.
    /// Resets the variation monitor — the new placement legitimately
    /// changes phase times, which must not read as workload variation.
    fn replace_plan(&mut self, env: &mut StepEnv<'_>, steps_len: usize, remaining_iters: u64) {
        env.ctx.advance(self.cfg.modeling_cost);
        env.stats.modeling_overhead += self.cfg.modeling_cost;
        let refs = self.refs.as_ref().expect("refs built in first iteration");
        let (committed, grants) = match self.enforcer.take() {
            Some(e) => e.into_state(),
            None => (
                std::mem::take(&mut self.committed),
                std::mem::take(&mut self.grants),
            ),
        };
        let input = SearchInput {
            registry: env.registry,
            profile: &self.profile,
            refs,
            model: &self.model,
            capacity: self.cap_per_rank,
            profiled_dram: &committed,
            remaining_iters,
        };
        let plan = best_plan(&input, self.cfg.use_global, self.cfg.use_local);
        let mut enf = Enforcer::new(
            plan,
            refs,
            env.registry,
            self.cap_per_rank,
            committed,
            grants,
            self.rank,
            self.cfg.sync_cost,
        );
        enf.enter_plan(
            env.ctx.now(),
            refs,
            env.registry,
            &mut self.engine,
            env.service,
        );
        self.enforcer = Some(enf);
        self.monitor = Some(VariationMonitor::paper_default(steps_len));
        self.profiling = false;
    }
}

impl RankState for UnimemRank {
    fn iteration_begin(&mut self, it: usize, steps: &[StepSpec], env: &mut StepEnv<'_>) {
        // Build the reference table from the first iteration's structure
        // (the directive-declared dependency information of §3.3).
        if self.refs.is_none() {
            self.refs = Some(build_refs(steps, env.registry));
        }

        // Lease boundary: the arbiter may have granted or revoked
        // DRAM since the previous iteration. The knapsack capacity
        // follows the lease; with a complete profile in hand the
        // placement re-runs immediately, evicting revoked budget
        // (the new plan fits the new capacity) or putting granted
        // budget to use.
        let cap_now = env.per_rank(env.lease.at(it));
        if cap_now != self.cap_per_rank {
            self.cap_per_rank = cap_now;
            if !self.profiling && self.profile.len() == steps.len() {
                self.replace_plan(env, steps.len(), (env.iterations - it).max(1) as u64);
                env.stats.lease_replans += 1;
            }
        }
    }

    fn phase_begin(&mut self, phase: PhaseId, env: &mut StepEnv<'_>) {
        // Phase boundary: enforcement + queue sync.
        if let (Some(enf), Some(refs)) = (self.enforcer.as_mut(), self.refs.as_ref()) {
            let phase_est = self
                .profile
                .get(phase)
                .map(|r| r.time)
                .unwrap_or(VDur::ZERO);
            let cost = enf.phase_begin(
                phase,
                env.ctx.now(),
                phase_est,
                refs,
                env.registry,
                &mut self.engine,
                env.service,
            );
            env.ctx.advance(cost.sync + cost.stall);
            env.stats.sync_overhead += cost.sync;
            env.stats.migration_stall += cost.stall;
        }
    }

    fn view(&self) -> TierView<'_> {
        TierView::Sets {
            in_dram: self.dram_units(),
            all_dram: false,
        }
    }

    fn observe_compute(
        &mut self,
        phase: PhaseId,
        time: VDur,
        truths: &[GroundTruth],
        env: &mut StepEnv<'_>,
    ) {
        if self.profiling {
            let prof = self.sampler.sample_phase(time, truths);
            env.ctx.advance(prof.overhead);
            env.stats.profiling_overhead += prof.overhead;
            let mut rec = PhaseRecord::from_profile(&prof);
            rec.time = time;
            self.profile.insert(phase, rec);
        }
        if !self.profiling {
            if let Some(mon) = &mut self.monitor {
                if mon.observe(phase, time) && self.cfg.adaptation {
                    self.profiling = true;
                    env.stats.reprofiles += 1;
                }
            }
        }
    }

    fn observe_comm(&mut self, phase: PhaseId, dt: VDur, env: &mut StepEnv<'_>) {
        let _ = env;
        if self.profiling {
            self.profile.insert(
                phase,
                PhaseRecord {
                    units: Vec::new(),
                    windows: self.sampler.windows_in(dt),
                    time: dt,
                },
            );
        }
    }

    fn iteration_end(&mut self, it: usize, steps: &[StepSpec], env: &mut StepEnv<'_>) {
        // End of a profiled iteration: build models, decide, enforce.
        if self.profiling && self.profile.len() == steps.len() {
            self.replace_plan(env, steps.len(), (env.iterations - it).max(1) as u64);
        }
    }

    fn finish(&mut self, stats: &mut RunStats) -> Option<SearchKind> {
        stats.migrations = self.engine.stats();
        self.enforcer.as_ref().map(|e| e.plan().kind)
    }
}
