//! DRAM as a hardware-managed cache over NVM (after Wen et al.,
//! "Hardware Memory Management for Future Mobile Hybrid Memory
//! Systems"): no software placement at all — every miss from the CPU
//! cache hierarchy probes a set-associative DRAM cache in front of NVM.
//!
//! The hit model is deliberately simple and fully analytic. Each
//! iteration observes the footprint actually touched (the union of
//! units with main-memory misses) and serves the *next* iteration with
//! a uniform DRAM-hit fraction
//!
//! ```text
//! h = min(1, C_eff / W),   C_eff = per-rank DRAM share · (1 − 1/(2a))
//! ```
//!
//! where `a` is the associativity — the `1/(2a)` term is the standard
//! conflict-miss discount for a set-associative array under a uniform
//! working set. The first iteration runs cold (`h = 0`). Fill traffic
//! for NVM-served misses is charged through the existing shared
//! `BwLedger` channels as an NVM-read + DRAM-write flow over the phase
//! window, so co-located ranks pay for cache fills exactly as they pay
//! for helper-thread copies.
//!
//! There is no sampling, no RNG, and no decision thread: zero software
//! overhead (the paper's selling point for hardware management), at the
//! price of no phase awareness and cache-filtered hit behaviour that
//! tracks the footprint, not the benefit.

use super::{PlacementPolicy, PolicyId, RankInit, RankState, StepEnv, TierView};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use unimem_hms::contention::BwClient;
use unimem_hms::object::UnitId;
use unimem_hms::tier::TierKind;
use unimem_mpi::PhaseId;
use unimem_perf::sampler::GroundTruth;
use unimem_sim::{Bytes, VDur, VTime};

/// Configuration for the hardware DRAM-cache policy.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HwCacheConfig {
    /// Set associativity of the DRAM cache (the conflict-miss discount
    /// is `1 − 1/(2·assoc)`).
    pub assoc: u32,
}

impl Default for HwCacheConfig {
    fn default() -> HwCacheConfig {
        HwCacheConfig { assoc: 8 }
    }
}

/// The hardware DRAM-cache policy.
pub struct HwCache(pub HwCacheConfig);

impl PlacementPolicy for HwCache {
    fn id(&self) -> PolicyId {
        PolicyId::HwCache
    }

    fn label(&self) -> &str {
        "HW-cache"
    }

    fn init_rank(&self, init: RankInit<'_>) -> Box<dyn RankState> {
        let assoc = f64::from(self.0.assoc.max(1));
        let cap_eff = init.per_rank(init.lease.at(0)).as_f64() * (1.0 - 1.0 / (2.0 * assoc));
        Box::new(HwCacheRank {
            cap_eff,
            frac: 0.0,
            touched: BTreeSet::new(),
            client: init.client.clone(),
            phase_start: VTime::ZERO,
        })
    }
}

/// Per-rank hardware-cache state.
struct HwCacheRank {
    /// Effective cache capacity in bytes (associativity-discounted
    /// per-rank DRAM share).
    cap_eff: f64,
    /// DRAM-hit fraction served during the current iteration.
    frac: f64,
    /// Units with main-memory misses this iteration (next iteration's
    /// resident-footprint estimate).
    touched: BTreeSet<UnitId>,
    client: BwClient,
    phase_start: VTime,
}

impl RankState for HwCacheRank {
    fn phase_begin(&mut self, _phase: PhaseId, env: &mut StepEnv<'_>) {
        // Hardware management costs the software nothing; remember the
        // phase window for the fill-traffic flows.
        self.phase_start = env.ctx.now();
    }

    fn view(&self) -> TierView<'_> {
        TierView::Fraction(self.frac)
    }

    fn observe_compute(
        &mut self,
        _phase: PhaseId,
        _time: VDur,
        truths: &[GroundTruth],
        env: &mut StepEnv<'_>,
    ) {
        let mut nvm_bytes = 0.0;
        for t in truths {
            if t.misses > 0 {
                self.touched.insert(t.unit);
                nvm_bytes += t.miss_bytes.as_f64() * (1.0 - self.frac);
            }
        }
        // Cache fills copy the NVM-served bytes into DRAM during the
        // phase; post them on the shared ledger so co-located ranks'
        // overlapping phases contend with the fill stream.
        let fill = Bytes(nvm_bytes as u64);
        if !fill.is_zero() {
            self.client
                .post_copy(TierKind::Dram, self.phase_start, env.ctx.now(), fill);
        }
    }

    fn iteration_end(
        &mut self,
        _it: usize,
        _steps: &[crate::exec::StepSpec],
        env: &mut StepEnv<'_>,
    ) {
        let footprint: f64 = self
            .touched
            .iter()
            .map(|&u| env.registry.unit_size(u).as_f64())
            .sum();
        self.frac = if footprint > 0.0 {
            (self.cap_eff / footprint).min(1.0)
        } else {
            1.0
        };
        self.touched.clear();
    }
}
