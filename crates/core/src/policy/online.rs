//! Interval-based online application guidance (after Olson et al.,
//! "Online Application Guidance for Heterogeneous Memory Systems"):
//! sample object hotness while the application runs, and at every
//! iteration boundary greedily promote the hottest bytes-per-reference
//! winners into the leased DRAM budget.
//!
//! The contrast with Unimem is deliberate and faithful to both papers:
//! this policy sees *aggregate per-object* hotness over a whole
//! interval — no phase structure, no cross-phase dependency windows, no
//! movement-cost model — so it keeps chasing the working set one
//! interval behind, pays cold-start misses during the first interval,
//! and cannot overlap migrations with the phases that do not touch the
//! moving unit. Its sampling is deterministic: hotness counts are
//! binomial-thinned through `unimem_sim::DetRng`, seeded per rank, so
//! runs replay byte-identically at any worker count.

use super::{build_refs, PlacementPolicy, PolicyId, RankInit, RankState, StepEnv, TierView};
use crate::deps::PhaseRefTable;
use crate::exec::StepSpec;
use crate::search::SearchKind;
use crate::stats::RunStats;
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, BTreeSet, HashMap};
use unimem_hms::contention::HelperLink;
use unimem_hms::object::UnitId;
use unimem_hms::tier::TierKind;
use unimem_hms::MigrationEngine;
use unimem_mpi::PhaseId;
use unimem_perf::sampler::GroundTruth;
use unimem_sim::{Bytes, DetRng, VDur};

/// Configuration for the online-guidance policy.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OnlineConfig {
    /// Per-miss sampling probability of the hotness profiler.
    pub sample_prob: f64,
    /// EWMA retention of previous intervals' hotness (0 forgets
    /// instantly, 1 never forgets).
    pub decay: f64,
    /// Residency hysteresis: a challenger must beat a resident unit's
    /// reference density by this factor to displace it. Guards against
    /// boundary ping-pong when sampled counts jitter between intervals
    /// (small per-rank miss counts make the thinned samples noisy at
    /// scale, and an oscillating hot set would migrate the same bytes
    /// back and forth every interval).
    pub hysteresis: f64,
    /// Seed for the deterministic sampling thinning.
    pub seed: u64,
    /// Cost charged per interval decision (sort + greedy fill).
    pub decision_cost: VDur,
    /// Cost charged per phase boundary (migration-queue check).
    pub sync_cost: VDur,
}

impl Default for OnlineConfig {
    fn default() -> OnlineConfig {
        OnlineConfig {
            sample_prob: 1e-3,
            decay: 0.5,
            hysteresis: 2.0,
            seed: 0x01_5eed,
            decision_cost: VDur::from_micros(60.0),
            sync_cost: VDur::from_nanos(250.0),
        }
    }
}

/// The online-guidance policy.
pub struct OnlineGuidance(pub OnlineConfig);

impl PlacementPolicy for OnlineGuidance {
    fn id(&self) -> PolicyId {
        PolicyId::OnlineGuidance
    }

    fn label(&self) -> &str {
        "Online-guidance"
    }

    fn supports_moving_lease(&self) -> bool {
        true
    }

    fn init_rank(&self, init: RankInit<'_>) -> Box<dyn RankState> {
        Box::new(OnlineRank {
            rng: DetRng::seed(self.0.seed ^ (init.rank as u64).wrapping_mul(0x9e3779b9)),
            hotness: BTreeMap::new(),
            interval: BTreeMap::new(),
            in_dram: BTreeSet::new(),
            grants: HashMap::new(),
            engine: MigrationEngine::new(HelperLink::Shared(init.client.clone()))
                .with_journal(init.journal.clone()),
            refs: None,
            cap_per_rank: init.per_rank(init.lease.at(0)),
            rank: init.rank,
            decided: false,
            cfg: self.0.clone(),
        })
    }
}

/// Per-rank online-guidance state.
struct OnlineRank {
    cfg: OnlineConfig,
    rng: DetRng,
    /// EWMA-decayed sampled reference counts per unit.
    hotness: BTreeMap<UnitId, f64>,
    /// Samples accumulated during the current interval.
    interval: BTreeMap<UnitId, u64>,
    /// Units currently resident in DRAM (always within the lease).
    in_dram: BTreeSet<UnitId>,
    grants: HashMap<UnitId, unimem_hms::alloc::Region>,
    engine: MigrationEngine,
    refs: Option<PhaseRefTable>,
    cap_per_rank: Bytes,
    rank: usize,
    /// True once the first interval decision has run.
    decided: bool,
}

impl OnlineRank {
    /// The interval decision: greedily fill the leased budget with the
    /// hottest units by sampled references per byte, then enqueue the
    /// placement diff on the migration helper (evictions first, so the
    /// freed grants can back the admissions).
    fn replan(&mut self, env: &mut StepEnv<'_>) {
        env.ctx.advance(self.cfg.decision_cost);
        env.stats.modeling_overhead += self.cfg.decision_cost;

        let mut scored: Vec<(UnitId, f64)> = self
            .hotness
            .iter()
            .filter(|&(_, &h)| h > 0.0)
            .map(|(&u, &h)| {
                let boost = if self.in_dram.contains(&u) {
                    self.cfg.hysteresis
                } else {
                    1.0
                };
                (u, h * boost / env.registry.unit_size(u).as_f64().max(1.0))
            })
            .collect();
        scored.sort_by(|a, b| {
            b.1.partial_cmp(&a.1)
                .expect("finite hotness densities")
                .then(a.0.cmp(&b.0))
        });
        let cap = self.cap_per_rank.get();
        let mut used = 0u64;
        let mut target = BTreeSet::new();
        for (u, _) in scored {
            let sz = env.registry.unit_size(u).get();
            if used + sz <= cap {
                used += sz;
                target.insert(u);
            }
        }

        let evict: Vec<UnitId> = self.in_dram.difference(&target).copied().collect();
        for u in evict {
            self.in_dram.remove(&u);
            if let Some(g) = self.grants.remove(&u) {
                env.service.release(self.rank, g);
            }
            self.engine
                .enqueue(u, TierKind::Nvm, env.registry.unit_size(u), env.ctx.now());
        }
        let admit: Vec<UnitId> = target.difference(&self.in_dram).copied().collect();
        for u in admit {
            let sz = env.registry.unit_size(u);
            // A refused grant (another tenant holds the node's slack)
            // simply leaves the unit in NVM until the next interval.
            if let Some(g) = env.service.reserve(self.rank, sz) {
                self.grants.insert(u, g);
                self.in_dram.insert(u);
                self.engine.enqueue(u, TierKind::Dram, sz, env.ctx.now());
            }
        }
        self.decided = true;

        // The lease is a hard budget: residency beyond it would be
        // stolen DRAM under multi-tenant arbitration. The greedy fill
        // above guarantees this; keep it guaranteed.
        let resident: u64 = self
            .in_dram
            .iter()
            .map(|&u| env.registry.unit_size(u).get())
            .sum();
        assert!(
            resident <= cap,
            "online-guidance residency {resident} B exceeds the leased budget {cap} B"
        );
    }
}

impl RankState for OnlineRank {
    fn iteration_begin(&mut self, it: usize, steps: &[StepSpec], env: &mut StepEnv<'_>) {
        if self.refs.is_none() {
            self.refs = Some(build_refs(steps, env.registry));
        }
        // Lease boundary: re-run the interval decision at the new
        // budget so revoked DRAM is evicted immediately (granted budget
        // is also picked up here rather than an interval late).
        let cap_now = env.per_rank(env.lease.at(it));
        if cap_now != self.cap_per_rank {
            self.cap_per_rank = cap_now;
            if self.decided {
                self.replan(env);
                env.stats.lease_replans += 1;
            }
        }
    }

    fn phase_begin(&mut self, phase: PhaseId, env: &mut StepEnv<'_>) {
        // Guidance is phase-blind, but correctness is not: a phase that
        // touches a unit still in the helper's queue must wait for the
        // copy, exactly like Unimem's enforcement stall.
        let Some(refs) = self.refs.as_ref() else {
            return;
        };
        let mut stall = VDur::ZERO;
        for u in refs.units_of(phase) {
            stall += self.engine.require(u, env.ctx.now() + stall);
        }
        env.ctx.advance(self.cfg.sync_cost + stall);
        env.stats.sync_overhead += self.cfg.sync_cost;
        env.stats.migration_stall += stall;
    }

    fn view(&self) -> TierView<'_> {
        TierView::Sets {
            in_dram: &self.in_dram,
            all_dram: false,
        }
    }

    fn observe_compute(
        &mut self,
        _phase: PhaseId,
        _time: VDur,
        truths: &[GroundTruth],
        _env: &mut StepEnv<'_>,
    ) {
        for t in truths {
            let sampled = self.rng.binomial(t.misses, self.cfg.sample_prob);
            if sampled > 0 {
                *self.interval.entry(t.unit).or_insert(0) += sampled;
            }
        }
    }

    fn iteration_end(&mut self, _it: usize, _steps: &[StepSpec], env: &mut StepEnv<'_>) {
        // Interval boundary: decay history, fold in this interval's
        // samples, and re-decide the placement.
        for h in self.hotness.values_mut() {
            *h *= self.cfg.decay;
        }
        for (u, c) in std::mem::take(&mut self.interval) {
            *self.hotness.entry(u).or_insert(0.0) += c as f64;
        }
        self.replan(env);
    }

    fn finish(&mut self, stats: &mut RunStats) -> Option<SearchKind> {
        stats.migrations = self.engine.stats();
        None
    }
}
