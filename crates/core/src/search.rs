//! Step 3 — placement decision: phase-local search, cross-phase global
//! search, and the evaluator that picks between them (§3.1.3).
//!
//! * **Cross-phase global search** treats the whole iteration as one
//!   combined phase: per-unit benefits aggregate across phases, one
//!   knapsack decides a single placement, and movement happens once (its
//!   cost amortizes over the remaining iterations).
//! * **Phase-local search** walks phases in order, maintaining the DRAM
//!   contents, and solves one knapsack per phase with Eq. 5 weights —
//!   benefit minus movement cost (after overlap, Fig. 5) minus eviction
//!   cost when DRAM is full. Moves recur every iteration, and the weights
//!   price that in.
//!
//! Both searches produce a cyclic per-phase placement plan; the predicted
//! iteration time under each plan decides the winner.

use crate::deps::PhaseRefTable;
use crate::knapsack::{self, Item};
use crate::model::ModelParams;
use crate::profile::{IterationProfile, PhaseRecord};
use serde::{Deserialize, Serialize};
use std::collections::BTreeSet;
use unimem_hms::object::{ObjectRegistry, UnitId};
use unimem_mpi::PhaseId;
use unimem_sim::{Bytes, VDur};

/// Which search produced a plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum SearchKind {
    Global,
    Local,
}

impl SearchKind {
    /// Stable lower-case name used in machine-readable reports.
    pub fn name(self) -> &'static str {
        match self {
            SearchKind::Global => "global",
            SearchKind::Local => "local",
        }
    }

    /// Inverse of [`SearchKind::name`], for report/cache deserialization.
    pub fn from_name(s: &str) -> Option<SearchKind> {
        match s {
            "global" => Some(SearchKind::Global),
            "local" => Some(SearchKind::Local),
            _ => None,
        }
    }
}

/// A cyclic placement plan: desired DRAM contents per phase.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlacementPlan {
    pub kind: SearchKind,
    /// Indexed by phase id; the DRAM-resident unit set while that phase runs.
    pub per_phase: Vec<BTreeSet<UnitId>>,
    /// Predicted steady-state iteration time under this plan.
    pub predicted: VDur,
}

impl PlacementPlan {
    /// A do-nothing plan (everything in NVM).
    pub fn stay_in_nvm(n_phases: usize) -> PlacementPlan {
        PlacementPlan {
            kind: SearchKind::Global,
            per_phase: vec![BTreeSet::new(); n_phases],
            predicted: VDur::ZERO,
        }
    }

    pub fn dram_set(&self, phase: PhaseId) -> &BTreeSet<UnitId> {
        &self.per_phase[phase.0 as usize]
    }

    /// True when every phase wants the same DRAM contents (static plan).
    pub fn is_static(&self) -> bool {
        self.per_phase.windows(2).all(|w| w[0] == w[1])
    }
}

/// Everything the searches need.
pub struct SearchInput<'a> {
    pub registry: &'a ObjectRegistry,
    pub profile: &'a IterationProfile,
    pub refs: &'a PhaseRefTable,
    pub model: &'a ModelParams,
    /// DRAM capacity available to this rank.
    pub capacity: Bytes,
    /// DRAM contents while the profile was taken (for delta prediction).
    pub profiled_dram: &'a BTreeSet<UnitId>,
    /// Iterations left after the decision (amortizes one-time moves).
    pub remaining_iters: u64,
}

/// Benefit of having `unit` in DRAM during the recorded phase.
fn unit_benefit(model: &ModelParams, rec: &PhaseRecord, unit: UnitId) -> VDur {
    let Some(&(_, recorded, hits)) = rec.units.iter().find(|(u, _, _)| *u == unit) else {
        return VDur::ZERO;
    };
    let sens = model.classify(recorded, hits, rec.windows, rec.time);
    model.benefit(sens, recorded)
}

/// Per-phase execution times from the profile, indexed by phase id.
fn phase_times(input: &SearchInput<'_>) -> Vec<VDur> {
    (0..input.refs.n_phases() as u32)
        .map(|p| {
            input
                .profile
                .get(PhaseId(p))
                .map(|r| r.time)
                .unwrap_or(VDur::ZERO)
        })
        .collect()
}

/// Cross-phase global search.
pub fn global_search(input: &SearchInput<'_>) -> PlacementPlan {
    let n = input.refs.n_phases();
    // Aggregate benefit per unit over all phases.
    let mut units: Vec<UnitId> = Vec::new();
    let mut benefits: Vec<VDur> = Vec::new();
    for (_, rec) in input.profile.phases() {
        for u in rec.observed_units() {
            match units.iter().position(|&x| x == u) {
                Some(k) => benefits[k] += unit_benefit(input.model, rec, u),
                None => {
                    units.push(u);
                    benefits.push(unit_benefit(input.model, rec, u));
                }
            }
        }
    }
    // One-time movement cost amortized over the remaining iterations.
    let amort = input.remaining_iters.max(1) as f64;
    let items: Vec<Item> = units
        .iter()
        .zip(&benefits)
        .map(|(&u, &b)| {
            let size = input.registry.unit_size(u);
            let move_cost = if input.profiled_dram.contains(&u) {
                VDur::ZERO
            } else {
                input.model.copy_time(size) / amort
            };
            Item {
                weight: input.model.weight(b, move_cost, VDur::ZERO),
                size,
            }
        })
        .collect();
    let (chosen, _) = knapsack::solve(&items, input.capacity);
    let set: BTreeSet<UnitId> = chosen.into_iter().map(|k| units[k]).collect();
    let per_phase = vec![set; n.max(1)];
    let predicted = predict_iteration_time(input, &per_phase);
    PlacementPlan {
        kind: SearchKind::Global,
        per_phase,
        predicted,
    }
}

/// Minimum benefit-to-copy-time ratio before the local search considers
/// moving a unit at all ("we avoid unnecessary data movement", §1): a
/// move whose per-iteration gain is a small fraction of its copy time only
/// congests the helper thread's FIFO.
const MOVEMENT_HYSTERESIS: f64 = 0.3;

/// Phase-local search.
pub fn local_search(input: &SearchInput<'_>) -> PlacementPlan {
    let n = input.refs.n_phases();
    let times = phase_times(input);
    let mut dram: BTreeSet<UnitId> = input.profiled_dram.clone();
    let mut per_phase: Vec<BTreeSet<UnitId>> = Vec::with_capacity(n);

    for p in 0..n as u32 {
        let phase = PhaseId(p);
        let Some(rec) = input.profile.get(phase) else {
            per_phase.push(dram.clone());
            continue;
        };
        // Candidates: units the counters observed in this phase. Units
        // not yet resident must clear the movement hysteresis.
        let candidates: Vec<UnitId> = rec
            .observed_units()
            .filter(|&u| {
                dram.contains(&u) || {
                    let gain = unit_benefit(input.model, rec, u).secs();
                    gain > MOVEMENT_HYSTERESIS
                        * input.model.copy_time(input.registry.unit_size(u)).secs()
                }
            })
            .collect();
        let mut items: Vec<Item> = Vec::with_capacity(candidates.len());
        for &u in &candidates {
            let size = input.registry.unit_size(u);
            let benefit = unit_benefit(input.model, rec, u);
            let (cost, extra) = if dram.contains(&u) {
                (VDur::ZERO, VDur::ZERO)
            } else {
                // Eviction cost when DRAM lacks room: move out victims
                // whose total size just covers the shortfall (§3.1.3).
                // Evictions ride the same helper-thread FIFO inside the
                // same dependency window, so the overlap of Fig. 5 applies
                // to the whole eviction+admission copy train.
                let overlap = input.refs.overlap_time(u, phase, &times);
                let resident: Bytes = dram.iter().map(|&v| input.registry.unit_size(v)).sum();
                let free = input.capacity.saturating_sub(resident);
                let shortfall = size.saturating_sub(free);
                let evict_copy = if shortfall.is_zero() {
                    VDur::ZERO
                } else {
                    input.model.copy_time(victim_bytes(
                        input.registry,
                        &dram,
                        &candidates,
                        shortfall,
                    ))
                };
                let total_copy = input.model.copy_time(size) + evict_copy;
                let exposed = total_copy.saturating_sub(overlap);
                // Eq. 4's contention term: the hidden portion of the copy
                // train still taxes the compute it hides behind (helper
                // and application share the tier pools), so overlap
                // discounts the cost but no longer zeroes it. The train's
                // admit and evict legs load different pools, so each is
                // charged at its own direction's penalty (pro-rata over
                // the hidden time).
                let hidden = total_copy.min(overlap);
                let train_penalty = if total_copy.is_zero() {
                    0.0
                } else {
                    let admit_frac = input.model.copy_time(size).ratio(total_copy);
                    admit_frac * input.model.contention_penalty_in
                        + (1.0 - admit_frac) * input.model.contention_penalty_out
                };
                let contention = hidden * train_penalty;
                (
                    exposed.min(input.model.copy_time(size)),
                    exposed.saturating_sub(input.model.copy_time(size).min(exposed)) + contention,
                )
            };
            items.push(Item {
                weight: input.model.weight(benefit, cost, extra),
                size,
            });
        }
        let (chosen, _) = knapsack::solve(&items, input.capacity);
        let selected: BTreeSet<UnitId> = chosen.into_iter().map(|k| candidates[k]).collect();

        // Evolve the DRAM state: bring in selected units, evicting
        // non-selected residents (largest first) when space runs short.
        for &u in &selected {
            if dram.contains(&u) {
                continue;
            }
            let size = input.registry.unit_size(u);
            loop {
                let resident: Bytes = dram.iter().map(|&v| input.registry.unit_size(v)).sum();
                if input.capacity.saturating_sub(resident) >= size {
                    break;
                }
                // Largest non-selected resident goes first.
                let victim = dram
                    .iter()
                    .filter(|v| !selected.contains(v))
                    .max_by_key(|&&v| input.registry.unit_size(v))
                    .copied();
                match victim {
                    Some(v) => {
                        dram.remove(&v);
                    }
                    None => break, // only selected units left: cannot evict
                }
            }
            let resident: Bytes = dram.iter().map(|&v| input.registry.unit_size(v)).sum();
            if input.capacity.saturating_sub(resident) >= size {
                dram.insert(u);
            }
        }
        per_phase.push(dram.clone());
    }

    let predicted = predict_iteration_time(input, &per_phase);
    PlacementPlan {
        kind: SearchKind::Local,
        per_phase,
        predicted,
    }
}

/// Victim bytes needed to free `shortfall`, choosing residents by size
/// ("whose total size is just big enough"), preferring non-candidates.
fn victim_bytes(
    registry: &ObjectRegistry,
    dram: &BTreeSet<UnitId>,
    candidates: &[UnitId],
    shortfall: Bytes,
) -> Bytes {
    let mut residents: Vec<UnitId> = dram
        .iter()
        .filter(|u| !candidates.contains(u))
        .copied()
        .collect();
    // Smallest-first greedy gets "just big enough" totals.
    residents.sort_by_key(|&u| registry.unit_size(u));
    let mut freed = Bytes::ZERO;
    for u in residents {
        if freed >= shortfall {
            break;
        }
        freed += registry.unit_size(u);
    }
    freed
}

/// Predicted steady-state iteration time under a per-phase placement,
/// relative to the profiled iteration (model scale, §3.1.3 evaluator).
pub fn predict_iteration_time(input: &SearchInput<'_>, per_phase: &[BTreeSet<UnitId>]) -> VDur {
    let times = phase_times(input);
    let n = input.refs.n_phases();
    let mut total = VDur::ZERO;
    for p in 0..n as u32 {
        let phase = PhaseId(p);
        let mut t = times[p as usize];
        if let Some(rec) = input.profile.get(phase) {
            let target = &per_phase[p as usize];
            for u in rec.observed_units() {
                let in_target = target.contains(&u);
                let was_in_dram = input.profiled_dram.contains(&u);
                if in_target && !was_in_dram {
                    t = t.saturating_sub(unit_benefit(input.model, rec, u));
                } else if !in_target && was_in_dram {
                    t += unit_benefit(input.model, rec, u);
                }
            }
        }
        total += t;
    }
    // Recurring movement stalls, estimated with the real enforcement
    // schedule and a serial helper-thread timeline.
    let plan_probe = PlacementPlan {
        kind: SearchKind::Local,
        per_phase: per_phase.to_vec(),
        predicted: VDur::ZERO,
    };
    total
        + crate::enforce::estimate_cycle_stall(
            &plan_probe,
            input.refs,
            input.registry,
            input.capacity,
            input.model.copy_bw,
            &times,
        )
}

/// Run the enabled searches and keep the plan with the lower predicted
/// iteration time (ties favour global: fewer moves).
pub fn best_plan(input: &SearchInput<'_>, use_global: bool, use_local: bool) -> PlacementPlan {
    let g = use_global.then(|| global_search(input));
    let l = use_local.then(|| local_search(input));
    match (g, l) {
        (Some(g), Some(l)) => {
            if l.predicted.secs() < g.predicted.secs() {
                l
            } else {
                g
            }
        }
        (Some(g), None) => g,
        (None, Some(l)) => l,
        (None, None) => PlacementPlan::stay_in_nvm(input.refs.n_phases()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profile::PhaseRecord;
    use unimem_hms::object::{ObjId, ObjectSpec};
    use unimem_hms::profiles::{copy_bw_between, sim_dram};
    use unimem_perf::Calibration;

    fn unit(n: u32) -> UnitId {
        UnitId::whole(ObjId(n))
    }

    fn model() -> ModelParams {
        let dram = sim_dram();
        let nvm = dram.with_bw_fraction(0.5);
        ModelParams::new(
            dram,
            nvm,
            copy_bw_between(dram, nvm),
            Calibration {
                cf_bw: 1000.0,
                cf_lat: 1000.0,
                bw_peak_sampled: 6e6,
            },
        )
    }

    /// Registry with three 100 MiB objects, DRAM fits one.
    fn registry() -> ObjectRegistry {
        let mut r = ObjectRegistry::new();
        for name in ["a", "b", "c"] {
            r.register(ObjectSpec::new(name, Bytes::mib(100)));
        }
        r
    }

    fn hot_record(units: &[(u32, u64)], ms: f64) -> PhaseRecord {
        PhaseRecord {
            units: units.iter().map(|&(u, r)| (unit(u), r, 200_000)).collect(),
            windows: 1_000_000,
            time: VDur::from_millis(ms),
        }
    }

    fn simple_input<'a>(
        reg: &'a ObjectRegistry,
        profile: &'a IterationProfile,
        refs: &'a PhaseRefTable,
        model: &'a ModelParams,
        profiled: &'a BTreeSet<UnitId>,
    ) -> SearchInput<'a> {
        SearchInput {
            registry: reg,
            profile,
            refs,
            model,
            capacity: Bytes::mib(128),
            profiled_dram: profiled,
            remaining_iters: 100,
        }
    }

    #[test]
    fn global_search_picks_hottest_object() {
        let reg = registry();
        let mut profile = IterationProfile::new();
        profile.insert(PhaseId(0), hot_record(&[(0, 50_000), (1, 5_000)], 100.0));
        profile.insert(PhaseId(1), hot_record(&[(0, 50_000), (2, 2_000)], 100.0));
        let mut refs = PhaseRefTable::new(2);
        for (p, us) in [(0u32, vec![0u32, 1]), (1, vec![0, 2])] {
            for u in us {
                refs.add_ref(PhaseId(p), unit(u));
            }
        }
        let m = model();
        let profiled = BTreeSet::new();
        let input = simple_input(&reg, &profile, &refs, &m, &profiled);
        let plan = global_search(&input);
        assert!(plan.is_static());
        assert!(plan.per_phase[0].contains(&unit(0)));
        assert!(!plan.per_phase[0].contains(&unit(1)), "only one fits");
    }

    #[test]
    fn local_search_switches_between_phases_when_worth_it() {
        let reg = registry();
        // Phase 0 hammers `a`, phase 1 hammers `b`; both huge benefits.
        let mut profile = IterationProfile::new();
        profile.insert(PhaseId(0), hot_record(&[(0, 500_000)], 400.0));
        profile.insert(PhaseId(1), hot_record(&[(1, 500_000)], 400.0));
        let mut refs = PhaseRefTable::new(2);
        refs.add_ref(PhaseId(0), unit(0));
        refs.add_ref(PhaseId(1), unit(1));
        let m = model();
        let profiled = BTreeSet::new();
        let input = simple_input(&reg, &profile, &refs, &m, &profiled);
        let plan = local_search(&input);
        assert!(plan.per_phase[0].contains(&unit(0)));
        assert!(plan.per_phase[1].contains(&unit(1)));
        // Capacity is one object: `a` must have been evicted in phase 1.
        assert!(!plan.per_phase[1].contains(&unit(0)));
    }

    #[test]
    fn local_search_stays_put_when_movement_too_expensive() {
        let reg = registry();
        // Tiny benefits: weights go negative once movement cost counts.
        let mut profile = IterationProfile::new();
        profile.insert(PhaseId(0), hot_record(&[(0, 40)], 1.0));
        profile.insert(PhaseId(1), hot_record(&[(1, 40)], 1.0));
        let mut refs = PhaseRefTable::new(2);
        refs.add_ref(PhaseId(0), unit(0));
        refs.add_ref(PhaseId(1), unit(1));
        let m = model();
        let profiled = BTreeSet::new();
        let input = simple_input(&reg, &profile, &refs, &m, &profiled);
        let plan = local_search(&input);
        assert!(plan.per_phase.iter().all(|s| s.is_empty()), "{plan:?}");
    }

    #[test]
    fn contention_penalty_vetoes_marginal_phase_churn() {
        let reg = registry();
        // Moderate benefits: switching between phases is barely worth the
        // copies without contention, and not worth them once every hidden
        // copy also taxes the compute it overlaps (Eq. 4 contention term).
        let mut profile = IterationProfile::new();
        profile.insert(PhaseId(0), hot_record(&[(0, 2_000)], 40.0));
        profile.insert(PhaseId(1), hot_record(&[(1, 2_000)], 40.0));
        let mut refs = PhaseRefTable::new(2);
        refs.add_ref(PhaseId(0), unit(0));
        refs.add_ref(PhaseId(1), unit(1));
        let m = model();
        let profiled = BTreeSet::new();
        let input = simple_input(&reg, &profile, &refs, &m, &profiled);
        let free = local_search(&input);
        assert!(
            free.per_phase.iter().any(|s| !s.is_empty()),
            "baseline: moves are worth it when hidden copies are free"
        );
        let taxed = m.with_contention_penalties(50.0, 50.0);
        let input = simple_input(&reg, &profile, &refs, &taxed, &profiled);
        let taxed_plan = local_search(&input);
        let placed = |p: &PlacementPlan| p.per_phase.iter().map(|s| s.len()).sum::<usize>();
        assert!(
            placed(&taxed_plan) < placed(&free),
            "a heavy contention penalty must reduce planned movement \
             (free: {free:?}, taxed: {taxed_plan:?})"
        );
    }

    #[test]
    fn best_plan_prefers_lower_predicted_time() {
        let reg = registry();
        let mut profile = IterationProfile::new();
        // One object dominates both phases: global (no recurring moves)
        // must win over any churn.
        profile.insert(PhaseId(0), hot_record(&[(0, 500_000)], 400.0));
        profile.insert(PhaseId(1), hot_record(&[(0, 500_000)], 400.0));
        let mut refs = PhaseRefTable::new(2);
        refs.add_ref(PhaseId(0), unit(0));
        refs.add_ref(PhaseId(1), unit(0));
        let m = model();
        let profiled = BTreeSet::new();
        let input = simple_input(&reg, &profile, &refs, &m, &profiled);
        let plan = best_plan(&input, true, true);
        assert_eq!(plan.kind, SearchKind::Global);
    }

    #[test]
    fn prediction_counts_eviction_regression() {
        let reg = registry();
        let mut profile = IterationProfile::new();
        profile.insert(PhaseId(0), hot_record(&[(0, 500_000)], 400.0));
        let mut refs = PhaseRefTable::new(1);
        refs.add_ref(PhaseId(0), unit(0));
        let m = model();
        // Profiled with `a` in DRAM; a plan that drops it must predict
        // a slower iteration.
        let profiled: BTreeSet<UnitId> = [unit(0)].into();
        let input = simple_input(&reg, &profile, &refs, &m, &profiled);
        let keep = predict_iteration_time(&input, &[[unit(0)].into()]);
        let drop = predict_iteration_time(&input, &[BTreeSet::new()]);
        assert!(drop > keep);
    }

    #[test]
    fn disabled_searches_give_nvm_plan() {
        let reg = registry();
        let profile = IterationProfile::new();
        let refs = PhaseRefTable::new(3);
        let m = model();
        let profiled = BTreeSet::new();
        let input = simple_input(&reg, &profile, &refs, &m, &profiled);
        let plan = best_plan(&input, false, false);
        assert!(plan.per_phase.iter().all(|s| s.is_empty()));
        assert_eq!(plan.per_phase.len(), 3);
    }
}
