//! 0-1 knapsack solver for placement decisions.
//!
//! "Given the DRAM size limitation, our data placement problem is to
//! maximize total weights of data objects in DRAM while satisfying the DRAM
//! size constraint. This is a 0-1 knapsack problem \[solved\] by dynamic
//! programming in pseudo-polynomial time." (§3.1.3)
//!
//! Sizes are bytes (up to hundreds of MiB), so the DP quantizes capacity
//! into a bounded number of granules — items' sizes round **up** (never
//! overcommit DRAM) and optimality holds at granule resolution, which is
//! orders of magnitude finer than object sizes. Items with non-positive
//! weight are never selected (leaving an object in NVM costs nothing).

use unimem_sim::Bytes;

/// One placement candidate.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Item {
    /// Eq. 5 weight (seconds of predicted saving; may be ≤ 0).
    pub weight: f64,
    pub size: Bytes,
}

/// Maximum number of capacity granules the DP table uses.
pub const MAX_GRANULES: usize = 4096;

/// The granule [`solve`] quantizes at for a given capacity: item sizes
/// round up to multiples of this, capacity rounds down. Exposed so tests
/// can state the DP's optimality contract at granule resolution without
/// duplicating the formula.
pub fn granule_for(capacity: Bytes) -> u64 {
    capacity.get().div_ceil(MAX_GRANULES as u64).max(1)
}

/// Solve the 0-1 knapsack: choose a subset of `items` with total size ≤
/// `capacity` maximizing total weight. Returns the chosen indices (sorted)
/// and the achieved weight. Items with `weight <= 0` are never chosen.
pub fn solve(items: &[Item], capacity: Bytes) -> (Vec<usize>, f64) {
    let viable: Vec<usize> = items
        .iter()
        .enumerate()
        .filter(|(_, it)| it.weight > 0.0 && !it.size.is_zero() && it.size <= capacity)
        .map(|(i, _)| i)
        .collect();
    if viable.is_empty() || capacity.is_zero() {
        return (Vec::new(), 0.0);
    }

    // Granule: smallest power-of-two-free unit keeping the table bounded.
    let granule = granule_for(capacity);
    let cap_g = (capacity.get() / granule) as usize;
    // Size in granules, rounded up so a selection never exceeds capacity.
    let size_g: Vec<usize> = viable
        .iter()
        .map(|&i| (items[i].size.get().div_ceil(granule)) as usize)
        .collect();

    // DP over capacity (1-D reverse sweep). `took[k]` records, per capacity,
    // whether item k's pass improved the optimum there — i.e. whether the
    // optimum over items 0..=k at that capacity includes item k. That is
    // exactly the decision bit the standard 2-D reconstruction needs.
    let words = (cap_g + 1).div_ceil(64);
    let mut best = vec![0.0f64; cap_g + 1];
    let mut took = vec![vec![0u64; words]; viable.len()];
    for (k, &i) in viable.iter().enumerate() {
        let w = items[i].weight;
        let s = size_g[k];
        if s > cap_g {
            continue;
        }
        for c in (s..=cap_g).rev() {
            let cand = best[c - s] + w;
            if cand > best[c] {
                best[c] = cand;
                took[k][c / 64] |= 1 << (c % 64);
            }
        }
    }

    // total_cmp: the table only ever holds sums of finite positive weights
    // (NaN weights fail the `> 0.0` viability filter above), but the solver
    // must not be able to panic on adversarial input.
    let (mut c, _) = best
        .iter()
        .enumerate()
        .max_by(|a, b| a.1.total_cmp(b.1))
        .expect("non-empty table");
    let achieved = best[c];
    let mut chosen = Vec::new();
    for k in (0..viable.len()).rev() {
        if took[k][c / 64] & (1 << (c % 64)) != 0 {
            chosen.push(viable[k]);
            c -= size_g[k];
        }
    }
    chosen.sort_unstable();
    (chosen, achieved)
}

/// Exhaustive reference solver for testing (n ≤ 20).
pub fn solve_exhaustive(items: &[Item], capacity: Bytes) -> (Vec<usize>, f64) {
    assert!(items.len() <= 20);
    let mut best_mask = 0usize;
    let mut best_w = 0.0f64;
    for mask in 0..(1usize << items.len()) {
        let mut size = 0u64;
        let mut w = 0.0;
        for (i, it) in items.iter().enumerate() {
            if mask & (1 << i) != 0 {
                size += it.size.get();
                w += it.weight;
            }
        }
        if size <= capacity.get() && w > best_w {
            best_w = w;
            best_mask = mask;
        }
    }
    let chosen = (0..items.len())
        .filter(|i| best_mask & (1 << i) != 0)
        .collect();
    (chosen, best_w)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn it(weight: f64, size: u64) -> Item {
        Item {
            weight,
            size: Bytes(size),
        }
    }

    #[test]
    fn picks_best_single_item() {
        let items = [it(1.0, 60), it(2.0, 60)];
        let (chosen, w) = solve(&items, Bytes(100));
        assert_eq!(chosen, vec![1]);
        assert!((w - 2.0).abs() < 1e-12);
    }

    #[test]
    fn picks_pair_over_heavier_single() {
        // Two items of weight 1.5 each beat one of weight 2.5 when all fit
        // pairwise but not all three.
        let items = [it(2.5, 80), it(1.5, 40), it(1.5, 40)];
        let (chosen, w) = solve(&items, Bytes(100));
        assert_eq!(chosen, vec![1, 2]);
        assert!((w - 3.0).abs() < 1e-12);
    }

    #[test]
    fn negative_weights_never_chosen() {
        let items = [it(-1.0, 10), it(0.0, 10), it(0.5, 10)];
        let (chosen, w) = solve(&items, Bytes(100));
        assert_eq!(chosen, vec![2]);
        assert!((w - 0.5).abs() < 1e-12);
    }

    #[test]
    fn oversized_item_excluded() {
        let items = [it(10.0, 200), it(1.0, 50)];
        let (chosen, _) = solve(&items, Bytes(100));
        assert_eq!(chosen, vec![1]);
    }

    #[test]
    fn zero_capacity_chooses_nothing() {
        let items = [it(1.0, 1)];
        let (chosen, w) = solve(&items, Bytes(0));
        assert!(chosen.is_empty());
        assert_eq!(w, 0.0);
    }

    #[test]
    fn granule_rounding_never_overcommits() {
        // Capacity forces granule > 1; chosen sizes must still fit exactly.
        let cap = Bytes(1 << 24); // 16 MiB → granule 4 KiB
        let items: Vec<Item> = (0..10).map(|i| it(1.0 + i as f64, 3 << 20)).collect();
        let (chosen, _) = solve(&items, cap);
        let total: u64 = chosen.iter().map(|&i| items[i].size.get()).sum();
        assert!(total <= cap.get(), "overcommitted: {total}");
        assert_eq!(chosen.len(), 5); // 5 × 3 MiB = 15 MiB ≤ 16 MiB
    }

    #[test]
    fn matches_exhaustive_on_small_instances() {
        // Deterministic pseudo-random instances.
        let mut seed = 0x9e3779b97f4a7c15u64;
        let mut next = || {
            seed ^= seed << 13;
            seed ^= seed >> 7;
            seed ^= seed << 17;
            seed
        };
        for trial in 0..200 {
            let n = 1 + (next() % 10) as usize;
            let items: Vec<Item> = (0..n)
                .map(|_| {
                    let w = ((next() % 2000) as f64 - 500.0) / 100.0;
                    let s = 1 + next() % 128;
                    it(w, s)
                })
                .collect();
            let cap = Bytes(1 + next() % 512);
            let (_, w_dp) = solve(&items, cap);
            let (_, w_ex) = solve_exhaustive(&items, cap);
            assert!(
                (w_dp - w_ex).abs() < 1e-9,
                "trial {trial}: dp={w_dp} exhaustive={w_ex} items={items:?} cap={cap:?}"
            );
        }
    }

    #[test]
    fn nan_weights_are_filtered_not_fatal() {
        // NaN fails the `weight > 0.0` viability filter; the solver must
        // neither panic nor select the item.
        let items = [it(f64::NAN, 10), it(1.0, 10)];
        let (chosen, w) = solve(&items, Bytes(100));
        assert_eq!(chosen, vec![1]);
        assert!((w - 1.0).abs() < 1e-12);
    }

    #[test]
    fn chosen_indices_refer_to_original_items() {
        let items = [it(-5.0, 10), it(3.0, 10), it(-1.0, 10), it(2.0, 10)];
        let (chosen, w) = solve(&items, Bytes(20));
        assert_eq!(chosen, vec![1, 3]);
        assert!((w - 5.0).abs() < 1e-12);
    }
}
