//! Multi-tenant co-run execution: N independent Unimem instances under
//! one DRAM arbiter.
//!
//! The paper's runtime is single-application; a production node serves
//! several applications contending for the same scarce DRAM tier. This
//! layer wraps N independent Unimem runs, intercepts each one's knapsack
//! capacity input, and drives it from the `unimem_hms::arbiter` broker
//! instead of the machine constant:
//!
//! 1. each tenant's **demand** is its per-node data footprint (capped at
//!    the node budget);
//! 2. the co-run timeline is divided into **epochs** — one per main-loop
//!    iteration, with tenants' phase clocks staggered by their
//!    `start_epoch` — and the arbiter rebalances at every epoch boundary
//!    where the active tenant set changes (a tenant arriving revokes
//!    budget from the incumbents; a tenant finishing returns its lease to
//!    the pool);
//! 3. each tenant then executes with its per-epoch lease as a
//!    [`CapacitySchedule`]: the runtime re-runs placement at the
//!    boundaries where its lease moved
//!    ([`RunStats::lease_replans`](crate::stats::RunStats) counts these)
//!    — evicting on revocation, expanding on grant.
//!
//! Per-tenant **slowdown** (co-run time / solo time at the full node
//! budget) is the quality metric the sweep's co-run cells report: an
//! arbitration policy earns its keep when the tenants it protects stay
//! near 1.0 under contention.
//!
//! Everything is virtual-time deterministic: the lease schedules are a
//! pure function of (budget, policy, mix), and each tenant's run is the
//! same deterministic simulation the single-tenant paths use.

use crate::exec::{
    run_workload, run_workload_leased, CapacitySchedule, Policy, RunReport, Workload,
};
use unimem_cache::CacheModel;
use unimem_hms::arbiter::{ArbiterPolicy, DramArbiter, TenantSpec};
use unimem_hms::MachineConfig;
use unimem_sim::Bytes;

/// One member of a co-run: a workload plus its arbitration contract.
pub struct CorunTenant<'a> {
    /// Name carried into reports (unique within the co-run).
    pub name: String,
    /// The phase-structured application this tenant runs.
    pub workload: &'a dyn Workload,
    /// Priority weight (≥ 1); read by [`ArbiterPolicy::Priority`].
    pub weight: u32,
    /// Guaranteed per-node DRAM floor.
    pub reservation: Bytes,
    /// Staggered phase clock: the epoch (global iteration index) at which
    /// this tenant's main loop begins.
    pub start_epoch: usize,
}

impl<'a> CorunTenant<'a> {
    /// A weight-1, reservation-free tenant starting at epoch 0.
    pub fn new(name: impl Into<String>, workload: &'a dyn Workload) -> CorunTenant<'a> {
        CorunTenant {
            name: name.into(),
            workload,
            weight: 1,
            reservation: Bytes::ZERO,
            start_epoch: 0,
        }
    }

    /// Set the priority weight.
    pub fn weight(mut self, w: u32) -> CorunTenant<'a> {
        self.weight = w;
        self
    }

    /// Set the guaranteed per-node DRAM floor.
    pub fn reservation(mut self, r: Bytes) -> CorunTenant<'a> {
        self.reservation = r;
        self
    }

    /// Stagger this tenant's phase clock by `e` epochs.
    pub fn start_epoch(mut self, e: usize) -> CorunTenant<'a> {
        self.start_epoch = e;
        self
    }
}

/// What happened to one tenant of a co-run.
#[derive(Debug, Clone)]
pub struct TenantOutcome {
    /// The tenant's name.
    pub name: String,
    /// Its priority weight.
    pub weight: u32,
    /// Its phase-clock offset.
    pub start_epoch: usize,
    /// The solo baseline: the same workload with the whole node budget.
    pub solo: RunReport,
    /// The co-run execution under the arbiter's lease.
    pub corun: RunReport,
    /// Co-run time / solo time (≥ ~1.0; the paper-style y-axis of the
    /// co-run sweep cells).
    pub slowdown: f64,
    /// The per-epoch lease the arbiter granted (in the tenant's own
    /// iteration index space).
    pub lease: CapacitySchedule,
}

impl TenantOutcome {
    /// The smallest per-epoch lease the tenant ever held.
    pub fn lease_min(&self) -> Bytes {
        self.lease
            .epochs()
            .iter()
            .copied()
            .min()
            .unwrap_or(Bytes::ZERO)
    }

    /// The largest per-epoch lease the tenant ever held.
    pub fn lease_max(&self) -> Bytes {
        self.lease.peak()
    }
}

/// Run a co-run mix: compute every tenant's lease schedule from the
/// arbiter, execute each tenant (solo baseline + leased co-run), and
/// report per-tenant slowdowns. Errors on an empty mix, infeasible
/// reservations, or a degenerate (zero/non-finite) solo baseline.
pub fn run_corun(
    tenants: &[CorunTenant<'_>],
    machine: &MachineConfig,
    cache: &CacheModel,
    nranks: usize,
    policy: ArbiterPolicy,
) -> Result<Vec<TenantOutcome>, String> {
    let solos: Vec<RunReport> = tenants
        .iter()
        .map(|t| run_workload(t.workload, machine, cache, nranks, &Policy::unimem()))
        .collect();
    run_corun_with_solos(tenants, machine, cache, nranks, policy, &solos)
}

/// [`run_corun`] with precomputed solo baselines (one per tenant, same
/// order). The solo run is a pure function of (workload, machine,
/// nranks) — independent of the arbitration policy — so a caller
/// sweeping several policies over one mix (the bench runner's stage 3)
/// computes the solos once and reuses them across policies.
pub fn run_corun_with_solos(
    tenants: &[CorunTenant<'_>],
    machine: &MachineConfig,
    cache: &CacheModel,
    nranks: usize,
    policy: ArbiterPolicy,
    solos: &[RunReport],
) -> Result<Vec<TenantOutcome>, String> {
    if tenants.is_empty() {
        return Err("co-run needs at least one tenant".into());
    }
    if solos.len() != tenants.len() {
        return Err(format!(
            "{} solo baselines for {} tenants",
            solos.len(),
            tenants.len()
        ));
    }
    let budget = machine.dram_capacity;
    let rpn = machine.ranks_per_node as u64;

    // Demands: per-node data footprint, capped at the node budget (a
    // tenant cannot use more DRAM than the node has).
    let demands: Vec<Bytes> = tenants
        .iter()
        .map(|t| {
            let per_rank: Bytes = t.workload.objects(0, nranks).iter().map(|o| o.size).sum();
            Bytes((per_rank.get() * rpn).min(budget.get()))
        })
        .collect();
    let iters: Vec<usize> = tenants.iter().map(|t| t.workload.iterations()).collect();

    let mut arb = DramArbiter::new(budget, policy);
    let mut ids = Vec::with_capacity(tenants.len());
    for t in tenants {
        let id = arb.register(
            TenantSpec::new(t.name.clone())
                .weight(t.weight)
                .reservation(t.reservation),
        )?;
        // Tenants whose phase clock starts later join at their epoch.
        if t.start_epoch > 0 {
            arb.deactivate(id);
        }
        ids.push(id);
    }

    // Walk the global epoch timeline; the arbiter rebalances wherever the
    // active set or demands change, and each active tenant logs its lease.
    let total_epochs = tenants
        .iter()
        .zip(&iters)
        .map(|(t, &n)| t.start_epoch + n.max(1))
        .max()
        .expect("non-empty mix");
    let mut leases: Vec<Vec<Bytes>> = vec![Vec::new(); tenants.len()];
    for epoch in 0..total_epochs {
        for (i, t) in tenants.iter().enumerate() {
            let active = epoch >= t.start_epoch && epoch < t.start_epoch + iters[i].max(1);
            if active {
                arb.activate(ids[i])?;
                arb.set_demand(ids[i], demands[i]);
            } else {
                arb.deactivate(ids[i]);
            }
        }
        arb.rebalance();
        for (i, t) in tenants.iter().enumerate() {
            if epoch >= t.start_epoch && epoch < t.start_epoch + iters[i].max(1) {
                leases[i].push(arb.grant(ids[i]));
            }
        }
    }

    // Execute the leased co-runs against the provided solo baselines.
    let policy = Policy::unimem();
    let mut outcomes = Vec::with_capacity(tenants.len());
    for (i, t) in tenants.iter().enumerate() {
        let solo = solos[i].clone();
        let lease = CapacitySchedule::from_epochs(leases[i].clone())?;
        let corun = run_workload_leased(t.workload, machine, cache, nranks, &policy, &lease);
        let slowdown = corun.time().secs() / solo.time().secs();
        if !slowdown.is_finite() {
            return Err(format!(
                "tenant {}: non-finite slowdown (corun {}s / solo {}s)",
                t.name,
                corun.time().secs(),
                solo.time().secs()
            ));
        }
        outcomes.push(TenantOutcome {
            name: t.name.clone(),
            weight: t.weight,
            start_epoch: t.start_epoch,
            solo,
            corun,
            slowdown,
            lease,
        });
    }
    Ok(outcomes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::exec::{ComputeSpec, StepSpec};
    use unimem_cache::{AccessPattern, ObjAccess};
    use unimem_hms::object::{ObjId, ObjectSpec};
    use unimem_sim::VDur;

    /// One hot streaming object per tenant; DRAM residency matters.
    struct Synth {
        tag: &'static str,
        iters: usize,
    }

    impl Workload for Synth {
        fn name(&self) -> String {
            format!("synth-{}", self.tag)
        }

        fn objects(&self, _rank: usize, _nranks: usize) -> Vec<ObjectSpec> {
            vec![
                ObjectSpec::new("hot", Bytes::mib(100)).est_refs(1e9),
                ObjectSpec::new("cold", Bytes::mib(100)).est_refs(1e6),
            ]
        }

        fn script(&self, _rank: usize, _nranks: usize, _iter: usize) -> Vec<StepSpec> {
            vec![
                StepSpec::Compute(ComputeSpec {
                    label: "sweep",
                    cpu: VDur::from_millis(5.0),
                    accesses: vec![
                        ObjAccess::new(
                            ObjId(0),
                            40_000_000,
                            Bytes::mib(100),
                            AccessPattern::Streaming { stride: Bytes(8) },
                        ),
                        ObjAccess::new(ObjId(1), 400_000, Bytes::mib(100), AccessPattern::Random),
                    ],
                }),
                StepSpec::AllreduceSum { bytes: Bytes(64) },
            ]
        }

        fn iterations(&self) -> usize {
            self.iters
        }
    }

    fn machine() -> MachineConfig {
        // Node DRAM fits one tenant's hot object, not two.
        MachineConfig::nvm_bw_fraction(0.5).with_dram_capacity(Bytes::mib(128))
    }

    #[test]
    fn empty_mix_is_an_error() {
        let m = machine();
        let c = CacheModel::platform_a();
        assert!(run_corun(&[], &m, &c, 1, ArbiterPolicy::FairShare).is_err());
    }

    #[test]
    fn solo_tenant_matches_single_tenant_run() {
        let w = Synth { tag: "a", iters: 6 };
        let m = machine();
        let c = CacheModel::platform_a();
        let out = run_corun(
            &[CorunTenant::new("a", &w)],
            &m,
            &c,
            1,
            ArbiterPolicy::FairShare,
        )
        .unwrap();
        // Alone, the arbiter grants the whole budget: no contention, no
        // lease movement, identical to the classic run.
        assert_eq!(out[0].corun.time().secs(), out[0].solo.time().secs());
        assert!((out[0].slowdown - 1.0).abs() < 1e-12);
        assert_eq!(out[0].corun.job.lease_replans, 0);
    }

    #[test]
    fn contended_tenants_slow_down_but_stay_finite() {
        let wa = Synth { tag: "a", iters: 6 };
        let wb = Synth { tag: "b", iters: 6 };
        let m = machine();
        let c = CacheModel::platform_a();
        let out = run_corun(
            &[CorunTenant::new("a", &wa), CorunTenant::new("b", &wb)],
            &m,
            &c,
            1,
            ArbiterPolicy::FairShare,
        )
        .unwrap();
        for o in &out {
            assert!(o.slowdown >= 0.99, "{}: {}", o.name, o.slowdown);
            assert!(o.lease_max() <= Bytes::mib(128));
        }
        // Fair share of 128 MiB cannot hold either 100 MiB hot object;
        // both tenants lose DRAM relative to solo.
        assert!(out.iter().any(|o| o.slowdown > 1.0));
    }

    #[test]
    fn priority_tenant_degrades_no_more_than_best_effort_peer() {
        let wa = Synth { tag: "a", iters: 6 };
        let wb = Synth { tag: "b", iters: 6 };
        let m = machine();
        let c = CacheModel::platform_a();
        let out = run_corun(
            &[
                CorunTenant::new("hi", &wa).weight(4),
                CorunTenant::new("lo", &wb),
            ],
            &m,
            &c,
            1,
            ArbiterPolicy::Priority,
        )
        .unwrap();
        assert!(
            out[0].slowdown <= out[1].slowdown + 1e-9,
            "hi={} lo={}",
            out[0].slowdown,
            out[1].slowdown
        );
        assert!(out[0].lease_min() >= out[1].lease_min());
    }

    #[test]
    fn staggered_tenant_changes_the_incumbents_lease() {
        let wa = Synth { tag: "a", iters: 8 };
        let wb = Synth { tag: "b", iters: 4 };
        let m = machine();
        let c = CacheModel::platform_a();
        let out = run_corun(
            &[
                CorunTenant::new("incumbent", &wa),
                CorunTenant::new("late", &wb).start_epoch(2),
            ],
            &m,
            &c,
            1,
            ArbiterPolicy::FairShare,
        )
        .unwrap();
        let inc = &out[0];
        // Epochs 0-1 alone (full budget), 2-5 contended, 6-7 alone again.
        let epochs = inc.lease.epochs();
        assert_eq!(epochs.len(), 8);
        assert_eq!(epochs[0], Bytes::mib(128));
        assert!(epochs[3] < Bytes::mib(128));
        assert_eq!(epochs[7], Bytes::mib(128));
        // The lease moved at least twice; each move re-ran placement.
        assert!(
            inc.corun.job.lease_replans >= 2,
            "{}",
            inc.corun.job.lease_replans
        );
    }

    #[test]
    fn corun_is_deterministic() {
        let wa = Synth { tag: "a", iters: 5 };
        let wb = Synth { tag: "b", iters: 5 };
        let m = machine();
        let c = CacheModel::platform_a();
        let run = || {
            run_corun(
                &[
                    CorunTenant::new("a", &wa).weight(2),
                    CorunTenant::new("b", &wb).start_epoch(1),
                ],
                &m,
                &c,
                2,
                ArbiterPolicy::Priority,
            )
            .unwrap()
            .iter()
            .map(|o| o.corun.to_json().to_pretty())
            .collect::<Vec<_>>()
        };
        assert_eq!(run(), run());
    }
}
