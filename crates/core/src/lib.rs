//! Unimem: the runtime data-management system of Wu, Huang & Li (SC'17).
//!
//! Unimem decides and enforces the placement of target data objects on a
//! DRAM+NVM heterogeneous memory system, per execution phase, using online
//! sampling-based profiling and lightweight performance models — no
//! hardware modification, no OS change, less than twenty lines of
//! application change.
//!
//! Crate layout (one module per runtime concern, §3 of the paper):
//!
//! * [`api`] — the five-call programmer API of Table 2
//!   (`unimem_init` … `unimem_free`).
//! * [`profile`] — step 1: per-phase sampled profiles of target objects.
//! * [`model`] — step 2: Equations 1–5 (sensitivity classification,
//!   benefit, movement cost, weight).
//! * [`knapsack`] — the 0-1 knapsack solver (dynamic programming) behind
//!   placement decisions.
//! * [`search`] — step 3: phase-local search and cross-phase global
//!   search, plus the predicted-time evaluator that picks between them.
//! * [`deps`] — cross-phase data-dependency table and the earliest-safe
//!   migration trigger computation (Fig. 5).
//! * [`enforce`] — plan enforcement with proactive helper-thread
//!   migration (Fig. 6) over the virtual-time engine.
//! * [`initial`] — compiler-estimate-driven initial data placement (§3.2).
//! * [`partition`] — large-object decomposition into DRAM-sized chunks
//!   (§3.2), conservative: regular 1-D arrays only.
//! * [`adapt`] — workload-variation monitor (>10% phase-time deviation
//!   re-triggers profiling, §3.2).
//! * [`stats`] — run statistics: Table 4 counters and "pure runtime cost".
//! * [`policy`] — the pluggable placement-policy framework: the
//!   [`policy::PlacementPolicy`] trait, the [`policy::PolicyId`] name
//!   registry, and every competitor implementation (DRAM-only, NVM-only,
//!   static pins, Unimem, online guidance, hardware DRAM cache).
//! * [`exec`] — the driver: runs a [`exec::Workload`] under a
//!   [`exec::Policy`] on a machine model and reports times + stats.
//! * [`recovery`] — crash-consistent recovery over the
//!   `unimem_hms::journal` redo log: journaled runs, deterministic
//!   crash injection, and replay back to an equivalent execution.
//! * [`tenancy`] — multi-tenant co-runs: N independent Unimem instances
//!   whose knapsack capacities are leased from the
//!   `unimem_hms::arbiter` broker and re-planned when leases move.

pub mod adapt;
pub mod api;
pub mod calib;
pub mod deps;
pub mod enforce;
pub mod exec;
pub mod initial;
pub mod knapsack;
pub mod model;
pub mod partition;
pub mod policy;
pub mod profile;
pub mod recovery;
pub mod search;
pub mod stats;
pub mod tenancy;

pub use api::Unimem;
pub use exec::{
    run_workload, run_workload_clustered, run_workload_leased, run_workload_pooled,
    CapacitySchedule, Policy, RunReport, StepSpec, UnimemConfig, Workload,
};
pub use model::{ModelParams, Sensitivity};
pub use policy::{PlacementPolicy, PolicyId};
pub use recovery::{
    CrashOutcome, JournaledRun, RecoveredRun, RecoverySetup, RecoveryStats, ReplaySummary,
};
pub use stats::RunStats;
pub use tenancy::{run_corun, run_corun_with_solos, CorunTenant, TenantOutcome};
