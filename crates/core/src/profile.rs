//! Step 1 — phase profiling storage.
//!
//! During the first iteration (and any re-profiling iteration triggered by
//! the variation monitor) the runtime records, per phase: the sampled
//! per-unit access counts, the sampling-window bookkeeping, and the phase
//! execution time. This is everything the models of step 2 consume.

use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;
use unimem_hms::object::UnitId;
use unimem_mpi::PhaseId;
use unimem_perf::PhaseProfile;
use unimem_sim::VDur;

/// Profile of one phase, reduced to what the models need.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct PhaseRecord {
    /// Sampled (recorded, windows_hit) per unit — only units the counters
    /// actually saw ("we select those target data objects that have memory
    /// accesses recorded by performance counters").
    pub units: Vec<(UnitId, u64, u64)>,
    /// Total sampling windows in the phase.
    pub windows: u64,
    /// Phase execution time when profiled.
    pub time: VDur,
}

impl PhaseRecord {
    pub fn from_profile(p: &PhaseProfile) -> PhaseRecord {
        PhaseRecord {
            units: p
                .samples
                .iter()
                .map(|s| (s.unit, s.recorded, s.windows_hit))
                .collect(),
            windows: p.windows,
            time: p.time,
        }
    }

    pub fn recorded(&self, unit: UnitId) -> u64 {
        self.units
            .iter()
            .find(|(u, _, _)| *u == unit)
            .map_or(0, |&(_, r, _)| r)
    }

    /// Units observed in this phase, in id order.
    pub fn observed_units(&self) -> impl Iterator<Item = UnitId> + '_ {
        self.units.iter().map(|&(u, _, _)| u)
    }
}

/// All phases of one iteration, keyed by phase id.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct IterationProfile {
    phases: BTreeMap<PhaseId, PhaseRecord>,
}

impl IterationProfile {
    pub fn new() -> IterationProfile {
        IterationProfile::default()
    }

    pub fn insert(&mut self, phase: PhaseId, rec: PhaseRecord) {
        self.phases.insert(phase, rec);
    }

    pub fn get(&self, phase: PhaseId) -> Option<&PhaseRecord> {
        self.phases.get(&phase)
    }

    pub fn phases(&self) -> impl Iterator<Item = (PhaseId, &PhaseRecord)> {
        self.phases.iter().map(|(&p, r)| (p, r))
    }

    pub fn len(&self) -> usize {
        self.phases.len()
    }

    pub fn is_empty(&self) -> bool {
        self.phases.is_empty()
    }

    /// Total profiled iteration time.
    pub fn total_time(&self) -> VDur {
        self.phases.values().map(|r| r.time).sum()
    }

    /// Aggregate sampled accesses per unit across all phases (what the
    /// cross-phase global search consumes).
    pub fn aggregate_recorded(&self) -> Vec<(UnitId, u64)> {
        let mut acc: BTreeMap<UnitId, u64> = BTreeMap::new();
        for rec in self.phases.values() {
            for &(u, r, _) in &rec.units {
                *acc.entry(u).or_insert(0) += r;
            }
        }
        acc.into_iter().collect()
    }

    pub fn clear(&mut self) {
        self.phases.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unimem_hms::object::ObjId;

    fn unit(n: u32) -> UnitId {
        UnitId::whole(ObjId(n))
    }

    fn rec(units: &[(u32, u64)], ms: f64) -> PhaseRecord {
        PhaseRecord {
            units: units.iter().map(|&(u, r)| (unit(u), r, r / 2)).collect(),
            windows: 1_000_000,
            time: VDur::from_millis(ms),
        }
    }

    #[test]
    fn recorded_lookup() {
        let r = rec(&[(0, 100), (1, 50)], 1.0);
        assert_eq!(r.recorded(unit(0)), 100);
        assert_eq!(r.recorded(unit(2)), 0);
    }

    #[test]
    fn aggregate_sums_across_phases() {
        let mut ip = IterationProfile::new();
        ip.insert(PhaseId(0), rec(&[(0, 100), (1, 10)], 1.0));
        ip.insert(PhaseId(1), rec(&[(0, 200)], 2.0));
        let agg = ip.aggregate_recorded();
        assert_eq!(agg, vec![(unit(0), 300), (unit(1), 10)]);
    }

    #[test]
    fn total_time_sums_phases() {
        let mut ip = IterationProfile::new();
        ip.insert(PhaseId(0), rec(&[], 1.5));
        ip.insert(PhaseId(1), rec(&[], 2.5));
        assert!((ip.total_time().millis() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn phases_iterate_in_order() {
        let mut ip = IterationProfile::new();
        ip.insert(PhaseId(2), rec(&[], 1.0));
        ip.insert(PhaseId(0), rec(&[], 1.0));
        let ids: Vec<_> = ip.phases().map(|(p, _)| p).collect();
        assert_eq!(ids, vec![PhaseId(0), PhaseId(2)]);
    }

    #[test]
    fn reprofile_replaces_record() {
        let mut ip = IterationProfile::new();
        ip.insert(PhaseId(0), rec(&[(0, 100)], 1.0));
        ip.insert(PhaseId(0), rec(&[(0, 999)], 3.0));
        assert_eq!(ip.get(PhaseId(0)).unwrap().recorded(unit(0)), 999);
        assert_eq!(ip.len(), 1);
    }
}
