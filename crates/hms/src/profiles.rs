//! Machine configurations: Table-1 NVM presets and the paper's parametric
//! evaluation configurations.
//!
//! The paper's experiments never use the absolute Table-1 numbers directly;
//! they configure NVM *relative* to DRAM ("½ DRAM bandwidth", "4× DRAM
//! latency") via the Quartz emulator, or emulate NVM with a remote NUMA node
//! (Edison: 60% of DRAM bandwidth, 1.89× latency). We provide both forms.

use crate::tier::TierParams;
use serde::{Deserialize, Serialize};
use unimem_sim::{Bandwidth, Bytes, VDur};

/// A complete HMS machine description for one node.
///
/// The tier parameters describe the **node**: `ranks_per_node` ranks
/// share each tier's bandwidth (and the node copy path) through the
/// shared-bandwidth model in [`crate::contention`], in addition to
/// sharing the DRAM capacity through the per-node service. At the
/// default `ranks_per_node = 1` the node-level and per-rank views
/// coincide.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MachineConfig {
    pub dram: TierParams,
    pub nvm: TierParams,
    /// DRAM capacity available to target data objects (per node).
    pub dram_capacity: Bytes,
    /// NVM capacity (per node). Effectively unbounded in the experiments.
    pub nvm_capacity: Bytes,
    /// Node-level memory-copy bandwidth between NVM and DRAM
    /// (`mem_copy_bw` in Eq. 4). Dominated by the slower medium; each
    /// rank's helper thread gets a fair `1/ranks_per_node` slice.
    pub copy_bw: Bandwidth,
    /// MPI ranks sharing one node: its DRAM allowance (per-node service),
    /// its tier bandwidth, and its copy path.
    pub ranks_per_node: usize,
    /// Whether helper-thread copies draw from the shared tier pools
    /// (the contention model's A/B switch; on by default). Compute-side
    /// bandwidth sharing among co-located ranks is machine physics and is
    /// not gated by this.
    pub helper_contention: bool,
    /// Human-readable label for harness output.
    pub label: String,
}

/// NVM bandwidth fraction behind the `bw-half` emulation anchor
/// (Figs. 2/9 and the sweep's `bw-half` profile).
pub const ANCHOR_BW_FRACTION: f64 = 0.5;

/// NVM latency multiple behind the `lat-4x` emulation anchor
/// (Figs. 3/10 and the sweep's `lat-4x` profile).
pub const ANCHOR_LAT_MULTIPLE: f64 = 4.0;

/// Figure 2's NVM-only bandwidth sweep: ½, ¼, ⅛ of DRAM bandwidth.
pub const FIG2_BW_FRACTIONS: [f64; 3] = [ANCHOR_BW_FRACTION, 0.25, 0.125];

/// Figure 3's NVM-only latency sweep: 2×, 4×, 8× DRAM latency.
pub const FIG3_LAT_MULTIPLES: [f64; 3] = [2.0, ANCHOR_LAT_MULTIPLE, 8.0];

/// Simulation baseline DRAM: 80 ns loaded latency, 12 GB/s *node* stream
/// bandwidth (the whole rank's share at the default 1 rank per node;
/// co-located ranks split it). Only the *ratios* to NVM matter for every
/// figure.
pub fn sim_dram() -> TierParams {
    TierParams {
        read_lat: VDur::from_nanos(80.0),
        write_lat: VDur::from_nanos(80.0),
        read_bw: Bandwidth::gb_per_s(12.0),
        write_bw: Bandwidth::gb_per_s(10.0),
    }
}

/// Table 1, DRAM row (10 ns, 1000/900 MB/s random BW).
pub fn table1_dram() -> TierParams {
    TierParams {
        read_lat: VDur::from_nanos(10.0),
        write_lat: VDur::from_nanos(10.0),
        read_bw: Bandwidth::mb_per_s(1000.0),
        write_bw: Bandwidth::mb_per_s(900.0),
    }
}

/// Table 1, STT-RAM row (ITRS'13): 60/80 ns, 800/600 MB/s.
pub fn table1_stt_ram() -> TierParams {
    TierParams {
        read_lat: VDur::from_nanos(60.0),
        write_lat: VDur::from_nanos(80.0),
        read_bw: Bandwidth::mb_per_s(800.0),
        write_bw: Bandwidth::mb_per_s(600.0),
    }
}

/// Table 1, PCRAM row, midpoints of the published ranges:
/// 20–200 ns read → 110 ns, 80–10 000 ns write → 5 040 ns,
/// 200–800 MB/s read → 500, 100–800 MB/s write → 450.
pub fn table1_pcram() -> TierParams {
    TierParams {
        read_lat: VDur::from_nanos(110.0),
        write_lat: VDur::from_nanos(5040.0),
        read_bw: Bandwidth::mb_per_s(500.0),
        write_bw: Bandwidth::mb_per_s(450.0),
    }
}

/// Table 1, ReRAM row, midpoints: 10–1000 ns read → 505 ns,
/// 10–10 000 ns write → 5 005 ns, 20–100 MB/s read → 60, 1–8 MB/s write → 4.5.
pub fn table1_reram() -> TierParams {
    TierParams {
        read_lat: VDur::from_nanos(505.0),
        write_lat: VDur::from_nanos(5005.0),
        read_bw: Bandwidth::mb_per_s(60.0),
        write_bw: Bandwidth::mb_per_s(4.5),
    }
}

impl MachineConfig {
    fn base(nvm: TierParams, label: String) -> MachineConfig {
        let dram = sim_dram();
        MachineConfig {
            dram,
            nvm,
            // Paper §5 basic tests: DRAM 256 MB, NVM 16 GB per node.
            dram_capacity: Bytes::mib(256),
            nvm_capacity: Bytes::gib(16),
            copy_bw: copy_bw_between(dram, nvm),
            ranks_per_node: 1,
            helper_contention: true,
            label,
        }
    }

    /// NVM configured with a fraction of DRAM bandwidth, same latency
    /// (the paper's Figure 2 / 9 configuration; Quartz can vary only one
    /// dimension at a time).
    pub fn nvm_bw_fraction(f: f64) -> MachineConfig {
        MachineConfig::base(
            sim_dram().with_bw_fraction(f),
            format!("NVM {}x DRAM bandwidth", f),
        )
    }

    /// NVM configured with a multiple of DRAM latency, same bandwidth
    /// (Figures 3 / 10).
    pub fn nvm_lat_multiple(m: f64) -> MachineConfig {
        MachineConfig::base(
            sim_dram().with_lat_multiple(m),
            format!("NVM {}x DRAM latency", m),
        )
    }

    /// Edison strong-scaling emulation (§4): remote NUMA node as NVM with
    /// 60% of DRAM bandwidth and 1.89× DRAM latency.
    pub fn edison_numa() -> MachineConfig {
        let nvm = sim_dram().with_bw_fraction(0.6).with_lat_multiple(1.89);
        let mut cfg = MachineConfig::base(nvm, "Edison NUMA emulation".into());
        // Strong-scaling tests: DRAM 256 MB, NVM 32 GB.
        cfg.nvm_capacity = Bytes::gib(32);
        cfg
    }

    /// A Table-1 technology preset paired with the simulation DRAM.
    pub fn technology(nvm: TierParams, label: &str) -> MachineConfig {
        MachineConfig::base(nvm, label.to_string())
    }

    /// Replace the DRAM capacity (Figure 13 sweeps 128/256/512 MB).
    pub fn with_dram_capacity(mut self, cap: Bytes) -> MachineConfig {
        self.dram_capacity = cap;
        self
    }

    /// Pack `r` ranks onto each node: they share the node's DRAM
    /// allowance, its tier bandwidth, and its copy path.
    pub fn with_ranks_per_node(mut self, r: usize) -> MachineConfig {
        assert!(r >= 1);
        self.ranks_per_node = r;
        self
    }

    /// Toggle whether helper-thread copies draw from the shared tier
    /// pools (the `migration-contention` conformance probe runs the same
    /// cell both ways).
    pub fn with_helper_contention(mut self, on: bool) -> MachineConfig {
        self.helper_contention = on;
        self
    }

    /// One rank's baseline share of the node's tier bandwidth when
    /// `occupancy` ranks are packed on the node (latency is per-access
    /// and not divided). The contention-aware runs use this as the
    /// uncontended reference the performance models calibrate against.
    pub fn rank_share(&self, kind: crate::tier::TierKind, occupancy: usize) -> TierParams {
        assert!(occupancy >= 1);
        self.tier(kind).with_bw_fraction(1.0 / occupancy as f64)
    }

    /// Tier parameters by kind.
    pub fn tier(&self, kind: crate::tier::TierKind) -> &TierParams {
        match kind {
            crate::tier::TierKind::Dram => &self.dram,
            crate::tier::TierKind::Nvm => &self.nvm,
        }
    }
}

/// NVM↔DRAM copy bandwidth: a large memcpy streams through both media, so
/// the end-to-end rate is the harmonic combination, dominated by the slower
/// side (reading from NVM and writing to DRAM or vice versa).
pub fn copy_bw_between(a: TierParams, b: TierParams) -> Bandwidth {
    let per_byte = 1.0 / a.read_bw.bytes_per_s().min(a.write_bw.bytes_per_s())
        + 1.0 / b.read_bw.bytes_per_s().min(b.write_bw.bytes_per_s());
    Bandwidth(1.0 / per_byte)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tier::TierKind;

    #[test]
    fn bw_fraction_halves_bandwidth_only() {
        let cfg = MachineConfig::nvm_bw_fraction(0.5);
        assert!((cfg.nvm.read_bw.bytes_per_s() - cfg.dram.read_bw.bytes_per_s() / 2.0).abs() < 1.0);
        assert_eq!(cfg.nvm.read_lat, cfg.dram.read_lat);
    }

    #[test]
    fn lat_multiple_scales_latency_only() {
        let cfg = MachineConfig::nvm_lat_multiple(4.0);
        assert!((cfg.nvm.read_lat.nanos() - 4.0 * cfg.dram.read_lat.nanos()).abs() < 1e-9);
        assert_eq!(cfg.nvm.read_bw, cfg.dram.read_bw);
    }

    #[test]
    fn edison_profile_matches_paper() {
        let cfg = MachineConfig::edison_numa();
        assert!(
            (cfg.nvm.read_bw.bytes_per_s() / cfg.dram.read_bw.bytes_per_s() - 0.6).abs() < 1e-9
        );
        assert!((cfg.nvm.read_lat.secs() / cfg.dram.read_lat.secs() - 1.89).abs() < 1e-9);
        assert_eq!(cfg.nvm_capacity, Bytes::gib(32));
    }

    #[test]
    fn default_capacities_match_section5() {
        let cfg = MachineConfig::nvm_bw_fraction(0.5);
        assert_eq!(cfg.dram_capacity, Bytes::mib(256));
        assert_eq!(cfg.nvm_capacity, Bytes::gib(16));
    }

    #[test]
    fn copy_bw_slower_than_both() {
        let cfg = MachineConfig::nvm_bw_fraction(0.5);
        assert!(cfg.copy_bw.bytes_per_s() < cfg.nvm.read_bw.bytes_per_s());
        assert!(cfg.copy_bw.bytes_per_s() < cfg.dram.read_bw.bytes_per_s());
    }

    #[test]
    fn tier_lookup() {
        let cfg = MachineConfig::nvm_bw_fraction(0.25);
        assert_eq!(cfg.tier(TierKind::Dram), &cfg.dram);
        assert_eq!(cfg.tier(TierKind::Nvm), &cfg.nvm);
    }

    #[test]
    fn table1_rows_are_ordered_as_published() {
        // DRAM faster than STT-RAM faster than PCRAM faster than ReRAM (read BW).
        let d = table1_dram().read_bw.bytes_per_s();
        let s = table1_stt_ram().read_bw.bytes_per_s();
        let p = table1_pcram().read_bw.bytes_per_s();
        let r = table1_reram().read_bw.bytes_per_s();
        assert!(d > s && s > p && p > r);
    }

    #[test]
    fn dram_capacity_override() {
        let cfg = MachineConfig::nvm_bw_fraction(0.5).with_dram_capacity(Bytes::mib(128));
        assert_eq!(cfg.dram_capacity, Bytes::mib(128));
    }

    #[test]
    fn figure_sweeps_include_the_emulation_anchors() {
        // The Fig. 2/3 harnesses and the sweep's bw-half / lat-4x
        // profiles must agree on the anchor configurations.
        assert!(FIG2_BW_FRACTIONS.contains(&ANCHOR_BW_FRACTION));
        assert!(FIG3_LAT_MULTIPLES.contains(&ANCHOR_LAT_MULTIPLE));
        assert_eq!(ANCHOR_BW_FRACTION, 0.5);
        assert_eq!(ANCHOR_LAT_MULTIPLE, 4.0);
    }

    #[test]
    fn contention_knobs_default_on_single_rank_nodes() {
        let cfg = MachineConfig::nvm_bw_fraction(0.5);
        assert_eq!(cfg.ranks_per_node, 1);
        assert!(cfg.helper_contention);
        assert!(!cfg.with_helper_contention(false).helper_contention);
    }

    #[test]
    fn rank_share_divides_bandwidth_not_latency() {
        let cfg = MachineConfig::nvm_bw_fraction(0.5);
        let share = cfg.rank_share(TierKind::Nvm, 4);
        assert!((share.read_bw.bytes_per_s() - cfg.nvm.read_bw.bytes_per_s() / 4.0).abs() < 1.0);
        assert_eq!(share.read_lat, cfg.nvm.read_lat);
        assert_eq!(cfg.rank_share(TierKind::Dram, 1), cfg.dram);
    }
}
