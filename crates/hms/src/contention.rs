//! Node-level shared-bandwidth model: co-located ranks and the helper
//! thread's migration traffic fight for the same tier pools.
//!
//! Each node of the [`ClusterTopology`] carries its own tier parameters —
//! nodes in a heterogeneous machine room do not share an NVM profile.
//! This module owns the ways that per-node bandwidth gets divided:
//!
//! 1. **Compute vs. compute** — the ranks packed on a node are symmetric
//!    SPMD streams running the same phase concurrently, so each rank's
//!    baseline share of a direction's bandwidth is `node_bw / occupancy`
//!    (occupancy = ranks actually placed on the node).
//! 2. **Compute vs. helper** — a DRAM←→NVM copy draws from *both* tiers'
//!    pools (read on the source, write on the destination). Copies are
//!    posted as flows on a per-node [`BwLedger`]; a compute phase that
//!    overlaps them loses bandwidth proportionally:
//!
//!    ```text
//!    avail_dir = node_bw_dir / (occupancy × (1 + L_dir))
//!    L_dir     = flow_rate_dir / node_bw_dir
//!    ```
//!
//!    which is the proportional split between `occupancy` saturating
//!    compute streams and helper flows at aggregate rate
//!    `flow_rate_dir`. The helper's own slice is reserved (its copy rate
//!    is the node copy path divided by occupancy, fixed at enqueue);
//!    compute absorbs the slowdown — the paper's premise that migration
//!    steals the bandwidth the application needs.
//! 3. **Comm vs. comm** — inter-node traffic is posted on the node's
//!    [`Channel::LinkUp`]/[`Channel::LinkDown`] lanes and charged by
//!    [`BwClient::effective_link`], so link contention composes with
//!    tier contention through the same fence protocol. Link flows are
//!    communication, not helper traffic, so `helper_contention` does
//!    **not** gate them — and single-node runs never post any, which
//!    keeps all legacy timing untouched.
//!
//! Determinism: flow visibility follows the ledger's fence protocol (see
//! `unimem_sim::ledger`) — own flows are interval-exact, neighbor flows
//! are charged at their last fence-epoch rate, and fences ride the MPI
//! collectives, so everything is a pure function of virtual program
//! order. `MachineConfig::helper_contention` gates step 2 only: with it
//! off, copy/journal flows are neither posted nor charged, which is the
//! A/B the `migration-contention` conformance check uses to prove that
//! runs without helper traffic (DRAM-only in particular) are
//! byte-identical either way.

use crate::profiles::MachineConfig;
use crate::tier::{TierKind, TierParams};
use crate::topology::ClusterTopology;
use std::sync::Arc;
use unimem_sim::{Bandwidth, BwLedger, Bytes, Channel, ChannelMap, VDur, VTime};

fn channels_of(tier: TierKind) -> (Channel, Channel) {
    match tier {
        TierKind::Dram => (Channel::DramRead, Channel::DramWrite),
        TierKind::Nvm => (Channel::NvmRead, Channel::NvmWrite),
    }
}

/// Which helper flows a bandwidth query charges.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FlowScope {
    /// No helper flows: the rank's plain compute share of the node.
    None,
    /// Only the querying rank's own helper traffic.
    Own,
    /// Own traffic plus fenced-visible neighbor traffic.
    All,
}

#[derive(Debug)]
struct Node {
    ledger: BwLedger,
    occupancy: usize,
    /// Fair per-helper copy rate on this node: node copy path / occupancy.
    copy_rate: Bandwidth,
    /// This node's tier parameters (per-node: heterogeneous rooms differ).
    dram: TierParams,
    nvm: TierParams,
    /// Per-direction bandwidth of this node's link to the interconnect.
    link_bw: Bandwidth,
    /// Machine-equivalence class (calibration key component).
    class: usize,
    /// Whether helper traffic on this node draws from the shared pools.
    helper_contention: bool,
}

#[derive(Debug)]
struct Inner {
    nodes: Vec<Node>,
    /// Rank → node.
    node_of: Vec<usize>,
    /// Rank → ledger owner slot within its node.
    owner_of: Vec<usize>,
}

/// The job-wide shared-bandwidth state: one ledger per node, shared by
/// the node's rank threads (clone-cheap handle, like
/// [`DramService`](crate::DramService)).
#[derive(Debug, Clone)]
pub struct SharedBandwidth {
    inner: Arc<Inner>,
}

impl SharedBandwidth {
    /// Per-node ledgers for `nranks` total ranks packed
    /// `machine.ranks_per_node` per node — the legacy single-profile
    /// layout, equivalent to
    /// [`SharedBandwidth::from_topology`] over
    /// [`ClusterTopology::homogeneous`].
    pub fn new(machine: &MachineConfig, nranks: usize) -> SharedBandwidth {
        SharedBandwidth::from_topology(&ClusterTopology::homogeneous(machine, nranks))
    }

    /// Per-node ledgers for an explicit (possibly heterogeneous) machine
    /// room. Every node gets its own tier parameters, copy path, link
    /// bandwidth and machine class from its [`crate::topology::NodeSpec`].
    pub fn from_topology(topo: &ClusterTopology) -> SharedBandwidth {
        let nranks = topo.nranks();
        assert!(nranks >= 1);
        let map = ChannelMap::for_nodes(topo.n_nodes());
        let nodes = (0..topo.n_nodes())
            .map(|n| {
                let machine = &topo.node(n).machine;
                let occupancy = topo.occupancy(n);
                Node {
                    // An unoccupied node keeps an inert 1-owner ledger
                    // rather than a 0-owner one; no client ever reaches it.
                    ledger: BwLedger::with_channels(occupancy.max(1), map),
                    occupancy,
                    copy_rate: machine.copy_bw.scaled(1.0 / occupancy.max(1) as f64),
                    dram: machine.dram,
                    nvm: machine.nvm,
                    link_bw: topo.spec().link_bw,
                    class: topo.class_of_node(n),
                    helper_contention: machine.helper_contention,
                }
            })
            .collect();
        let node_of: Vec<usize> = topo.node_assignment().to_vec();
        let mut owner_of = Vec::with_capacity(nranks);
        for r in 0..nranks {
            let owner = node_of[..r].iter().filter(|&&n| n == node_of[r]).count();
            owner_of.push(owner);
        }
        SharedBandwidth {
            inner: Arc::new(Inner {
                nodes,
                node_of,
                owner_of,
            }),
        }
    }

    /// The per-rank handle used by the execution driver and the
    /// migration engine.
    pub fn client(&self, rank: usize) -> BwClient {
        assert!(
            rank < self.inner.node_of.len(),
            "rank {rank} beyond the job"
        );
        BwClient {
            shared: self.clone(),
            node: self.inner.node_of[rank],
            owner: self.inner.owner_of[rank],
        }
    }
}

/// One rank's view of its node's shared bandwidth.
#[derive(Debug, Clone)]
pub struct BwClient {
    shared: SharedBandwidth,
    node: usize,
    owner: usize,
}

impl BwClient {
    fn node(&self) -> &Node {
        &self.shared.inner.nodes[self.node]
    }

    fn node_tier(&self, tier: TierKind) -> &TierParams {
        match tier {
            TierKind::Dram => &self.node().dram,
            TierKind::Nvm => &self.node().nvm,
        }
    }

    /// Ranks actually sharing this rank's node.
    pub fn occupancy(&self) -> usize {
        self.node().occupancy
    }

    /// This rank's helper copy rate: the node's DRAM↔NVM copy path split
    /// fairly among the node's helpers.
    pub fn copy_rate(&self) -> Bandwidth {
        self.node().copy_rate
    }

    /// True when helper traffic draws from this node's shared pools.
    pub fn helper_contention(&self) -> bool {
        self.node().helper_contention
    }

    /// Machine-equivalence class of this rank's node (heterogeneous
    /// rooms have several; the calibration table is keyed on it).
    pub fn node_class(&self) -> usize {
        self.node().class
    }

    /// Per-direction bandwidth of this node's link to the interconnect.
    pub fn link_bw(&self) -> Bandwidth {
        self.node().link_bw
    }

    /// Record passage of a globally synchronizing MPI collective at the
    /// synchronized instant `now` (makes earlier neighbor flows visible).
    /// Returns this rank's new visibility generation — the epoch the
    /// placement journal stamps on the commit record it appends at the
    /// same fence.
    pub fn fence(&self, now: VTime) -> u64 {
        self.node().ledger.fence(self.owner, now)
    }

    /// Post one helper copy: `bytes` moved to `to` over `[start, end]`,
    /// drawing read bandwidth from the source tier and write bandwidth
    /// from the destination tier. No-op when helper contention is off.
    pub fn post_copy(&self, to: TierKind, start: VTime, end: VTime, bytes: Bytes) {
        if !self.node().helper_contention {
            return;
        }
        let ledger = &self.node().ledger;
        let (src_read, _) = channels_of(to.other());
        let (_, dst_write) = channels_of(to);
        ledger.post_named(self.owner, src_read, start, end, bytes.as_f64());
        ledger.post_named(self.owner, dst_write, start, end, bytes.as_f64());
    }

    /// Post one journal flush: `bytes` of redo-log records written to the
    /// NVM tier over `[start, end]`. Journal durability is not free
    /// bandwidth — the flush draws from the same NVM write pool the
    /// application and the helper thread use, so overlapping compute pays
    /// for it exactly as it pays for migration copies. No-op when helper
    /// contention is off (the same gate `post_copy` honours, which keeps
    /// the `migration-contention` A/B byte-identity intact).
    pub fn post_journal_write(&self, start: VTime, end: VTime, bytes: Bytes) {
        if !self.node().helper_contention {
            return;
        }
        let (_, nvm_write) = channels_of(TierKind::Nvm);
        self.node()
            .ledger
            .post_named(self.owner, nvm_write, start, end, bytes.as_f64());
    }

    /// Post inter-node traffic crossing this node's link over
    /// `[start, end]`: `up` bytes leaving the node, `down` bytes
    /// arriving. Link flows are communication, not helper traffic, so
    /// they are **not** gated on `helper_contention`; legacy single-node
    /// runs simply never cross a link and post nothing.
    pub fn post_link(&self, start: VTime, end: VTime, up: Bytes, down: Bytes) {
        let ledger = &self.node().ledger;
        if up.get() > 0 {
            ledger.post_named(self.owner, Channel::LinkUp, start, end, up.as_f64());
        }
        if down.get() > 0 {
            ledger.post_named(self.owner, Channel::LinkDown, start, end, down.as_f64());
        }
    }

    /// Effective link bandwidth in `dir` over `[w0, w1]` under the flows
    /// `scope` selects: `link_bw / (1 + load / link_bw)` — the same
    /// proportional-share form as tier contention, but **without** the
    /// occupancy divisor (compute streams do not saturate the NIC; only
    /// posted link flows contend).
    pub fn effective_link(
        &self,
        dir: Channel,
        w0: VTime,
        w1: VTime,
        scope: FlowScope,
    ) -> Bandwidth {
        debug_assert!(matches!(dir, Channel::LinkUp | Channel::LinkDown));
        let node = self.node();
        let bw = node.link_bw.bytes_per_s();
        let load = if scope != FlowScope::None {
            let split =
                node.ledger
                    .load_named(self.owner, dir, w0, w1, node.copy_rate.bytes_per_s());
            match scope {
                FlowScope::Own => split.own,
                FlowScope::All => split.total(),
                FlowScope::None => unreachable!(),
            }
        } else {
            0.0
        };
        Bandwidth(bw / (1.0 + load / bw))
    }

    /// This rank's effective tier parameters over the window `[w0, w1]`:
    /// node bandwidth divided among the node's compute streams and the
    /// helper flows `scope` selects. Latency is left at the node value —
    /// bandwidth is the contended resource (paper Fig. 2).
    pub fn effective(&self, tier: TierKind, w0: VTime, w1: VTime, scope: FlowScope) -> TierParams {
        let node = self.node();
        let params = self.node_tier(tier);
        let occ = node.occupancy as f64;
        let avail = |channel: Channel, bw: Bandwidth| -> Bandwidth {
            let load = if node.helper_contention && scope != FlowScope::None {
                let split = node.ledger.load_named(
                    self.owner,
                    channel,
                    w0,
                    w1,
                    node.copy_rate.bytes_per_s(),
                );
                match scope {
                    FlowScope::Own => split.own,
                    FlowScope::All => split.total(),
                    FlowScope::None => unreachable!(),
                }
            } else {
                0.0
            };
            let l = load / bw.bytes_per_s();
            Bandwidth(bw.bytes_per_s() / (occ * (1.0 + l)))
        };
        let (ch_r, ch_w) = channels_of(tier);
        TierParams {
            read_lat: params.read_lat,
            write_lat: params.write_lat,
            read_bw: avail(ch_r, params.read_bw),
            write_bw: avail(ch_w, params.write_bw),
        }
    }
}

/// How the migration engine reaches bandwidth: either a fixed private
/// copy rate (unit tests, detached tools) or a client of the node's
/// shared ledger — the runtime path, where a copy draws from both tiers'
/// pools and becomes visible to overlapping compute.
#[derive(Debug, Clone)]
pub enum HelperLink {
    /// Fixed copy bandwidth; nothing is posted anywhere.
    Fixed(Bandwidth),
    /// Client of the shared node ledger.
    Shared(BwClient),
}

impl HelperLink {
    /// The helper's copy rate.
    pub fn copy_rate(&self) -> Bandwidth {
        match self {
            HelperLink::Fixed(bw) => *bw,
            HelperLink::Shared(c) => c.copy_rate(),
        }
    }

    /// Post a completed-schedule copy to the ledger (no-op when fixed).
    pub fn post_copy(&self, to: TierKind, start: VTime, end: VTime, bytes: Bytes) {
        if let HelperLink::Shared(c) = self {
            c.post_copy(to, start, end, bytes);
        }
    }

    /// Copy duration for `bytes` at this helper's rate.
    pub fn copy_time(&self, bytes: Bytes) -> VDur {
        bytes / self.copy_rate()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::{table1_pcram, table1_stt_ram};
    use crate::tier::AccessMix;
    use crate::topology::ClusterSpec;

    fn machine() -> MachineConfig {
        MachineConfig::nvm_bw_fraction(0.5)
    }

    #[test]
    fn occupancy_splits_by_node_with_straggler() {
        let m = machine().with_ranks_per_node(4);
        let s = SharedBandwidth::new(&m, 6);
        assert_eq!(s.client(0).occupancy(), 4);
        assert_eq!(s.client(3).occupancy(), 4);
        assert_eq!(s.client(4).occupancy(), 2);
        assert_eq!(s.client(5).occupancy(), 2);
    }

    #[test]
    fn single_rank_gets_full_node_bandwidth() {
        let m = machine();
        let s = SharedBandwidth::new(&m, 1);
        let eff = s
            .client(0)
            .effective(TierKind::Dram, VTime::ZERO, VTime(1.0), FlowScope::All);
        assert_eq!(eff, m.dram, "no co-location, no flows: node params");
    }

    #[test]
    fn colocated_ranks_split_bandwidth_evenly() {
        let m = machine().with_ranks_per_node(2);
        let s = SharedBandwidth::new(&m, 2);
        let eff = s
            .client(0)
            .effective(TierKind::Nvm, VTime::ZERO, VTime(1.0), FlowScope::None);
        assert!((eff.read_bw.bytes_per_s() - m.nvm.read_bw.bytes_per_s() / 2.0).abs() < 1.0);
        assert_eq!(eff.read_lat, m.nvm.read_lat, "latency is not shared");
    }

    #[test]
    fn copy_rate_is_fair_share_of_the_copy_path() {
        let m = machine().with_ranks_per_node(2);
        let s = SharedBandwidth::new(&m, 2);
        assert!(
            (s.client(0).copy_rate().bytes_per_s() - m.copy_bw.bytes_per_s() / 2.0).abs() < 1.0
        );
    }

    #[test]
    fn own_copy_slows_overlapping_compute_on_both_tiers() {
        let m = machine();
        let s = SharedBandwidth::new(&m, 1);
        let c = s.client(0);
        // A 1 s NVM->DRAM copy: NVM read + DRAM write pools both loaded.
        let bytes = Bytes((c.copy_rate().bytes_per_s()) as u64);
        c.post_copy(TierKind::Dram, VTime::ZERO, VTime(1.0), bytes);
        let base = c.effective(TierKind::Nvm, VTime::ZERO, VTime(1.0), FlowScope::None);
        let eff = c.effective(TierKind::Nvm, VTime::ZERO, VTime(1.0), FlowScope::Own);
        assert!(
            eff.read_bw.bytes_per_s() < base.read_bw.bytes_per_s(),
            "NVM read pool not charged"
        );
        let eff_d = c.effective(TierKind::Dram, VTime::ZERO, VTime(1.0), FlowScope::Own);
        assert!(
            eff_d.write_bw.bytes_per_s() < m.dram.write_bw.bytes_per_s(),
            "DRAM write pool not charged"
        );
        // Read side of the destination is untouched.
        assert!((eff_d.read_bw.bytes_per_s() - m.dram.read_bw.bytes_per_s()).abs() < 1.0);
    }

    #[test]
    fn proportional_split_matches_formula() {
        let m = machine();
        let s = SharedBandwidth::new(&m, 1);
        let c = s.client(0);
        let rate = c.copy_rate().bytes_per_s();
        c.post_copy(TierKind::Dram, VTime::ZERO, VTime(1.0), Bytes(rate as u64));
        let eff = c.effective(TierKind::Nvm, VTime::ZERO, VTime(1.0), FlowScope::Own);
        let l = rate / m.nvm.read_bw.bytes_per_s();
        let expect = m.nvm.read_bw.bytes_per_s() / (1.0 + l);
        assert!((eff.read_bw.bytes_per_s() - expect).abs() < 1.0);
    }

    #[test]
    fn neighbor_copy_invisible_until_fence_then_charged() {
        let m = machine().with_ranks_per_node(2);
        let s = SharedBandwidth::new(&m, 2);
        let (a, b) = (s.client(0), s.client(1));
        let bytes = Bytes(b.copy_rate().bytes_per_s() as u64);
        b.post_copy(TierKind::Dram, VTime::ZERO, VTime(1.0), bytes);
        let before = a.effective(TierKind::Nvm, VTime::ZERO, VTime(1.0), FlowScope::All);
        let own_only = a.effective(TierKind::Nvm, VTime::ZERO, VTime(1.0), FlowScope::Own);
        assert_eq!(before, own_only, "unfenced neighbor traffic leaked");
        a.fence(VTime(1.0));
        b.fence(VTime(1.0));
        let after = a.effective(TierKind::Nvm, VTime(1.0), VTime(2.0), FlowScope::All);
        assert!(
            after.read_bw.bytes_per_s() < own_only.read_bw.bytes_per_s(),
            "fenced neighbor traffic not charged"
        );
    }

    #[test]
    fn helper_contention_off_posts_and_charges_nothing() {
        let m = machine().with_helper_contention(false);
        let s = SharedBandwidth::new(&m, 1);
        let c = s.client(0);
        c.post_copy(TierKind::Dram, VTime::ZERO, VTime(1.0), Bytes::gib(1));
        let eff = c.effective(TierKind::Nvm, VTime::ZERO, VTime(1.0), FlowScope::All);
        assert_eq!(eff, m.nvm);
    }

    #[test]
    fn access_time_slows_under_shared_load() {
        let m = machine().with_ranks_per_node(2);
        let s = SharedBandwidth::new(&m, 2);
        let c = s.client(0);
        let base = m
            .nvm
            .access_time(1_000_000, Bytes::mib(64), 16.0, AccessMix::READ_ONLY);
        let eff = c.effective(TierKind::Nvm, VTime::ZERO, VTime(1.0), FlowScope::None);
        let shared = eff.access_time(1_000_000, Bytes::mib(64), 16.0, AccessMix::READ_ONLY);
        assert!(
            (shared.secs() / base.secs() - 2.0).abs() < 1e-6,
            "two co-located streams should double a bandwidth-bound phase"
        );
    }

    #[test]
    fn helper_link_fixed_matches_shared_copy_math() {
        let fixed = HelperLink::Fixed(Bandwidth::gb_per_s(1.0));
        assert!((fixed.copy_time(Bytes(1_000_000)).millis() - 1.0).abs() < 1e-9);
        let m = machine();
        let s = SharedBandwidth::new(&m, 1);
        let shared = HelperLink::Shared(s.client(0));
        assert_eq!(shared.copy_rate(), m.copy_bw);
    }

    #[test]
    fn heterogeneous_nodes_serve_their_own_tier_params() {
        let stt = MachineConfig::technology(table1_stt_ram(), "stt-ram");
        let pcm = MachineConfig::technology(table1_pcram(), "pcram");
        let spec = ClusterSpec::mixed(vec![stt.clone(), pcm.clone()], 1);
        let topo = ClusterTopology::contiguous(spec, 2);
        let s = SharedBandwidth::from_topology(&topo);
        let on_stt = s
            .client(0)
            .effective(TierKind::Nvm, VTime::ZERO, VTime(1.0), FlowScope::None);
        let on_pcm = s
            .client(1)
            .effective(TierKind::Nvm, VTime::ZERO, VTime(1.0), FlowScope::None);
        assert_eq!(on_stt, stt.nvm);
        assert_eq!(on_pcm, pcm.nvm);
        assert_ne!(s.client(0).node_class(), s.client(1).node_class());
    }

    #[test]
    fn from_topology_homogeneous_matches_legacy_constructor() {
        let m = machine().with_ranks_per_node(2);
        let legacy = SharedBandwidth::new(&m, 4);
        let topo = ClusterTopology::homogeneous(&m, 4);
        let explicit = SharedBandwidth::from_topology(&topo);
        for r in 0..4 {
            let (a, b) = (legacy.client(r), explicit.client(r));
            assert_eq!(a.occupancy(), b.occupancy());
            assert_eq!(a.copy_rate(), b.copy_rate());
            assert_eq!(
                a.effective(TierKind::Nvm, VTime::ZERO, VTime(1.0), FlowScope::None),
                b.effective(TierKind::Nvm, VTime::ZERO, VTime(1.0), FlowScope::None)
            );
        }
    }

    #[test]
    fn link_flows_contend_without_helper_gate() {
        // helper_contention off must NOT silence link traffic: the gate
        // covers helper copies, not communication.
        let m = machine()
            .with_helper_contention(false)
            .with_ranks_per_node(1);
        let topo = ClusterTopology::homogeneous(&m, 2);
        let s = SharedBandwidth::from_topology(&topo);
        let c = s.client(0);
        let bw = c.link_bw();
        let clean = c.effective_link(Channel::LinkUp, VTime::ZERO, VTime(1.0), FlowScope::Own);
        assert_eq!(clean, bw, "idle link at full bandwidth");
        // Saturate the up direction for 1 s.
        c.post_link(
            VTime::ZERO,
            VTime(1.0),
            Bytes(bw.bytes_per_s() as u64),
            Bytes(0),
        );
        let loaded = c.effective_link(Channel::LinkUp, VTime::ZERO, VTime(1.0), FlowScope::Own);
        assert!(
            (loaded.bytes_per_s() - bw.bytes_per_s() / 2.0).abs() < 1.0,
            "one saturating flow should halve the proportional share"
        );
        // The down direction is a separate lane.
        let down = c.effective_link(Channel::LinkDown, VTime::ZERO, VTime(1.0), FlowScope::Own);
        assert_eq!(down, bw);
    }
}
