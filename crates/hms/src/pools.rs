//! Real two-pool backing store and a real helper thread.
//!
//! The virtual-time engine in [`crate::migration`] models *when* copies
//! happen; this module implements the actual mechanics the paper describes —
//! two accounted memory pools, objects whose storage can be swapped between
//! them while application pointers stay valid, and a helper thread consuming
//! a FIFO queue of migration requests — with real memory and real threads.
//! Wall-clock benches and the runnable examples use this path, so the
//! concurrency machinery is continuously exercised, not just simulated.
//!
//! Pointer fix-up: the paper updates the application's pointer after a move.
//! In Rust the equivalent is a handle ([`RealObject`]) holding the storage
//! behind an `RwLock`; readers/writers see whichever pool's buffer is
//! current, and migration atomically swaps the buffer under the write lock.

use crate::tier::TierKind;
use crossbeam::channel::{self, Receiver, Sender};
use parking_lot::{Condvar, Mutex, RwLock};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use unimem_sim::Bytes;

/// Accounting for the two pools. DRAM is capacity-limited; NVM unbounded
/// (16–32 GB in the paper — effectively never the binding constraint).
#[derive(Debug)]
pub struct PoolAccounts {
    dram_capacity: u64,
    dram_used: AtomicU64,
    nvm_used: AtomicU64,
}

impl PoolAccounts {
    pub fn new(dram_capacity: Bytes) -> PoolAccounts {
        PoolAccounts {
            dram_capacity: dram_capacity.get(),
            dram_used: AtomicU64::new(0),
            nvm_used: AtomicU64::new(0),
        }
    }

    pub fn dram_used(&self) -> Bytes {
        Bytes(self.dram_used.load(Ordering::Acquire))
    }

    pub fn nvm_used(&self) -> Bytes {
        Bytes(self.nvm_used.load(Ordering::Acquire))
    }

    pub fn dram_capacity(&self) -> Bytes {
        Bytes(self.dram_capacity)
    }

    /// Try to account `len` bytes in `tier`; DRAM may refuse.
    fn charge(&self, tier: TierKind, len: u64) -> bool {
        match tier {
            TierKind::Dram => {
                let mut cur = self.dram_used.load(Ordering::Acquire);
                loop {
                    if cur + len > self.dram_capacity {
                        return false;
                    }
                    match self.dram_used.compare_exchange_weak(
                        cur,
                        cur + len,
                        Ordering::AcqRel,
                        Ordering::Acquire,
                    ) {
                        Ok(_) => return true,
                        Err(actual) => cur = actual,
                    }
                }
            }
            TierKind::Nvm => {
                self.nvm_used.fetch_add(len, Ordering::AcqRel);
                true
            }
        }
    }

    fn refund(&self, tier: TierKind, len: u64) {
        let ctr = match tier {
            TierKind::Dram => &self.dram_used,
            TierKind::Nvm => &self.nvm_used,
        };
        let prev = ctr.fetch_sub(len, Ordering::AcqRel);
        debug_assert!(prev >= len, "pool accounting underflow");
    }
}

/// A real data object: named storage residing in one pool at a time.
#[derive(Debug)]
pub struct RealObject {
    pub name: String,
    storage: RwLock<Vec<u8>>,
    tier: Mutex<TierKind>,
    accounts: Arc<PoolAccounts>,
}

impl RealObject {
    pub fn len(&self) -> usize {
        self.storage.read().len()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    pub fn tier(&self) -> TierKind {
        *self.tier.lock()
    }

    /// Read access to the bytes.
    pub fn with_read<R>(&self, f: impl FnOnce(&[u8]) -> R) -> R {
        f(&self.storage.read())
    }

    /// Write access to the bytes.
    pub fn with_write<R>(&self, f: impl FnOnce(&mut [u8]) -> R) -> R {
        f(&mut self.storage.write())
    }

    /// Synchronous migration: accounts space in the destination pool,
    /// copies, then releases the source accounting. Returns false when the
    /// destination (DRAM) has no room — the object stays where it is.
    pub fn migrate_sync(&self, to: TierKind) -> bool {
        let mut tier = self.tier.lock();
        if *tier == to {
            return true;
        }
        let len = self.storage.read().len() as u64;
        if !self.accounts.charge(to, len) {
            return false;
        }
        {
            // The "copy": allocate in the destination pool and move bytes.
            // Both pools are host RAM here; what matters for the machinery
            // is the accounting transfer and the pointer swap under lock.
            let mut guard = self.storage.write();
            let mut fresh = Vec::with_capacity(guard.len());
            fresh.extend_from_slice(&guard);
            *guard = fresh;
        }
        self.accounts.refund(*tier, len);
        *tier = to;
        true
    }
}

impl Drop for RealObject {
    fn drop(&mut self) {
        let len = self.storage.get_mut().len() as u64;
        self.accounts.refund(*self.tier.get_mut(), len);
    }
}

/// Completion ticket for an asynchronous migration.
#[derive(Debug, Clone)]
pub struct Ticket {
    state: Arc<(Mutex<Option<bool>>, Condvar)>,
}

impl Ticket {
    fn new() -> Ticket {
        Ticket {
            state: Arc::new((Mutex::new(None), Condvar::new())),
        }
    }

    fn complete(&self, ok: bool) {
        let (lock, cv) = &*self.state;
        *lock.lock() = Some(ok);
        cv.notify_all();
    }

    /// Non-blocking status check (the per-phase queue poll of §3.3).
    pub fn is_done(&self) -> bool {
        self.state.0.lock().is_some()
    }

    /// Block until the migration finished; returns whether it succeeded.
    pub fn wait(&self) -> bool {
        let (lock, cv) = &*self.state;
        let mut st = lock.lock();
        while st.is_none() {
            cv.wait(&mut st);
        }
        st.unwrap()
    }
}

enum Request {
    Migrate {
        obj: Arc<RealObject>,
        to: TierKind,
        ticket: Ticket,
    },
    Shutdown,
}

/// The real helper thread with its FIFO queue.
pub struct HelperThread {
    tx: Sender<Request>,
    handle: Option<JoinHandle<u64>>,
}

impl HelperThread {
    pub fn spawn() -> HelperThread {
        let (tx, rx): (Sender<Request>, Receiver<Request>) = channel::unbounded();
        let handle = std::thread::Builder::new()
            .name("unimem-helper".into())
            .spawn(move || {
                let mut completed: u64 = 0;
                while let Ok(req) = rx.recv() {
                    match req {
                        Request::Migrate { obj, to, ticket } => {
                            let ok = obj.migrate_sync(to);
                            if ok {
                                completed += 1;
                            }
                            ticket.complete(ok);
                        }
                        Request::Shutdown => break,
                    }
                }
                completed
            })
            .expect("spawn helper thread");
        HelperThread {
            tx,
            handle: Some(handle),
        }
    }

    /// Put a data-movement request on the queue; returns immediately.
    pub fn migrate(&self, obj: Arc<RealObject>, to: TierKind) -> Ticket {
        let ticket = Ticket::new();
        self.tx
            .send(Request::Migrate {
                obj,
                to,
                ticket: ticket.clone(),
            })
            .expect("helper thread alive");
        ticket
    }

    /// Stop the helper and return how many migrations it completed.
    pub fn shutdown(mut self) -> u64 {
        let _ = self.tx.send(Request::Shutdown);
        self.handle
            .take()
            .expect("not yet joined")
            .join()
            .expect("helper thread panicked")
    }
}

impl Drop for HelperThread {
    fn drop(&mut self) {
        let _ = self.tx.send(Request::Shutdown);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

/// The real HMS: pool accounts plus object construction.
#[derive(Debug, Clone)]
pub struct RealHms {
    accounts: Arc<PoolAccounts>,
}

impl RealHms {
    pub fn new(dram_capacity: Bytes) -> RealHms {
        RealHms {
            accounts: Arc::new(PoolAccounts::new(dram_capacity)),
        }
    }

    pub fn accounts(&self) -> &PoolAccounts {
        &self.accounts
    }

    /// Allocate a zero-initialized object in `tier`. Fails (None) when DRAM
    /// has no room, mirroring the DRAM service's non-blocking refusal.
    pub fn alloc(&self, name: &str, len: Bytes, tier: TierKind) -> Option<Arc<RealObject>> {
        if !self.accounts.charge(tier, len.get()) {
            return None;
        }
        Some(Arc::new(RealObject {
            name: name.to_string(),
            storage: RwLock::new(vec![0u8; len.get() as usize]),
            tier: Mutex::new(tier),
            accounts: Arc::clone(&self.accounts),
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_accounts_space() {
        let hms = RealHms::new(Bytes(1000));
        let _a = hms.alloc("a", Bytes(400), TierKind::Dram).unwrap();
        assert_eq!(hms.accounts().dram_used(), Bytes(400));
        assert!(hms.alloc("b", Bytes(700), TierKind::Dram).is_none());
        let _c = hms.alloc("c", Bytes(700), TierKind::Nvm).unwrap();
        assert_eq!(hms.accounts().nvm_used(), Bytes(700));
    }

    #[test]
    fn drop_refunds_space() {
        let hms = RealHms::new(Bytes(1000));
        {
            let _a = hms.alloc("a", Bytes(400), TierKind::Dram).unwrap();
            assert_eq!(hms.accounts().dram_used(), Bytes(400));
        }
        assert_eq!(hms.accounts().dram_used(), Bytes(0));
    }

    #[test]
    fn sync_migration_moves_accounting_and_preserves_data() {
        let hms = RealHms::new(Bytes(1000));
        let a = hms.alloc("a", Bytes(100), TierKind::Nvm).unwrap();
        a.with_write(|b| b.iter_mut().enumerate().for_each(|(i, x)| *x = i as u8));
        assert!(a.migrate_sync(TierKind::Dram));
        assert_eq!(a.tier(), TierKind::Dram);
        assert_eq!(hms.accounts().dram_used(), Bytes(100));
        assert_eq!(hms.accounts().nvm_used(), Bytes(0));
        a.with_read(|b| assert!(b.iter().enumerate().all(|(i, &x)| x == i as u8)));
    }

    #[test]
    fn migration_to_full_dram_fails_gracefully() {
        let hms = RealHms::new(Bytes(100));
        let _big = hms.alloc("big", Bytes(90), TierKind::Dram).unwrap();
        let a = hms.alloc("a", Bytes(50), TierKind::Nvm).unwrap();
        assert!(!a.migrate_sync(TierKind::Dram));
        assert_eq!(a.tier(), TierKind::Nvm);
    }

    #[test]
    fn migrate_to_same_tier_is_noop_success() {
        let hms = RealHms::new(Bytes(100));
        let a = hms.alloc("a", Bytes(10), TierKind::Nvm).unwrap();
        assert!(a.migrate_sync(TierKind::Nvm));
    }

    #[test]
    fn helper_thread_processes_fifo() {
        let hms = RealHms::new(Bytes::mib(16));
        let helper = HelperThread::spawn();
        let objs: Vec<_> = (0..8)
            .map(|i| {
                hms.alloc(&format!("o{i}"), Bytes::kib(64), TierKind::Nvm)
                    .unwrap()
            })
            .collect();
        let tickets: Vec<_> = objs
            .iter()
            .map(|o| helper.migrate(Arc::clone(o), TierKind::Dram))
            .collect();
        for t in &tickets {
            assert!(t.wait());
        }
        for o in &objs {
            assert_eq!(o.tier(), TierKind::Dram);
        }
        assert_eq!(helper.shutdown(), 8);
    }

    #[test]
    fn main_thread_can_poll_queue_status() {
        let hms = RealHms::new(Bytes::mib(1));
        let helper = HelperThread::spawn();
        let o = hms.alloc("o", Bytes::kib(256), TierKind::Nvm).unwrap();
        let t = helper.migrate(Arc::clone(&o), TierKind::Dram);
        // Eventually done; is_done is a non-blocking poll.
        assert!(t.wait());
        assert!(t.is_done());
    }

    #[test]
    fn readers_see_consistent_data_during_migration() {
        let hms = RealHms::new(Bytes::mib(8));
        let helper = HelperThread::spawn();
        let o = hms.alloc("o", Bytes::mib(4), TierKind::Nvm).unwrap();
        o.with_write(|b| b.fill(0xAB));
        let reader = {
            let o = Arc::clone(&o);
            std::thread::spawn(move || {
                for _ in 0..50 {
                    o.with_read(|b| {
                        assert!(b.iter().all(|&x| x == 0xAB));
                    });
                }
            })
        };
        let t = helper.migrate(Arc::clone(&o), TierKind::Dram);
        assert!(t.wait());
        reader.join().unwrap();
    }

    #[test]
    fn concurrent_dram_charging_never_overcommits() {
        let accounts = Arc::new(PoolAccounts::new(Bytes(1000)));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let a = Arc::clone(&accounts);
                std::thread::spawn(move || {
                    (0..100).filter(|_| a.charge(TierKind::Dram, 3)).count() as u64
                })
            })
            .collect();
        let granted: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
        assert!(granted * 3 <= 1000);
        assert_eq!(accounts.dram_used().get(), granted * 3);
    }
}
