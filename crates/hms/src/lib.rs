//! Heterogeneous memory system (HMS) substrate.
//!
//! The paper pairs a small DRAM with a large NVM in one physical address
//! space, managed at user level. This crate models that substrate:
//!
//! * [`tier`] — per-tier timing parameters and the roofline-style access-time
//!   model that serves as the simulation's ground truth.
//! * [`profiles`] — NVM presets from the paper's Table 1 plus the parametric
//!   configurations used throughout the evaluation ("½ DRAM bandwidth",
//!   "4× DRAM latency", the Edison NUMA emulation).
//! * [`object`] — target data objects (`unimem_malloc`ed arrays) and their
//!   registry, including chunked views for large-object partitioning.
//! * [`alloc`] — the user-level DRAM space allocator (first-fit free list),
//!   the "simple memory allocator" of §3.3.
//! * [`dram_service`] — the per-node user-level service that coordinates
//!   DRAM allowance among MPI ranks on the same node.
//! * [`migration`] — the virtual-time migration engine modelling the helper
//!   thread: FIFO queue, serial copies at `copy_bw`, overlap accounting.
//! * [`journal`] — the crash-consistent redo journal for the object table
//!   and in-flight migrations: records appended before any copy starts,
//!   committed at MPI-fence epochs, with InMemory/Buffered/Strict
//!   durability modes charged as NVM-write traffic through the ledger.
//! * [`pools`] — a *real* two-pool backing store plus a *real* helper thread
//!   with a FIFO queue, used by wall-clock benches and examples so the
//!   concurrency machinery is exercised for real, not only in virtual time.
//! * [`arbiter`] — the multi-tenant DRAM budget broker: per-tenant
//!   reservations, priority weights, and deterministic lease
//!   rebalancing/revocation for co-running applications.
//! * [`contention`] — the node-level shared-bandwidth model: co-located
//!   ranks split each tier's node bandwidth, and helper-thread copies draw
//!   from both tiers' pools through a per-node ledger so migration traffic
//!   is visible to overlapping compute. Inter-node traffic is charged on
//!   the same ledgers' link channels.
//! * [`topology`] — the explicit machine room: per-node NVM profiles and
//!   rank slots ([`topology::NodeSpec`]), the inter-node link
//!   ([`topology::ClusterSpec`]), and deterministic rank→node placement
//!   including the tenant-aware scheduler
//!   ([`topology::ClusterTopology::scheduled`]).

pub mod alloc;
pub mod arbiter;
pub mod contention;
pub mod dram_service;
pub mod journal;
pub mod migration;
pub mod object;
pub mod pools;
pub mod profiles;
pub mod tier;
pub mod topology;

pub use alloc::SpaceAllocator;
pub use arbiter::{ArbiterPolicy, DramArbiter, LeaseChange, TenantId, TenantSpec};
pub use contention::{BwClient, FlowScope, HelperLink, SharedBandwidth};
pub use dram_service::DramService;
pub use journal::{DurabilityMode, Journal, JournalHandle, JournalStats, ReplayedState};
pub use migration::{MigrationEngine, MigrationStats};
pub use object::{DataObject, ObjId, ObjectRegistry, Placement};
pub use profiles::MachineConfig;
pub use tier::{AccessMix, TierKind, TierParams};
pub use topology::{ClusterSpec, ClusterTopology, NodeSpec, PlacementIntent, TenantDemand};
