//! Target data objects and their registry.
//!
//! A *target data object* is an array the programmer registered with
//! `unimem_malloc` (paper Table 2). The runtime decides placement per
//! object — or, when large-object partitioning (§3.2) applies, per *chunk*
//! of an object. [`UnitId`] names a placement unit (object + chunk index);
//! an unpartitioned object is a single chunk.

use crate::tier::TierKind;
use serde::{Deserialize, Serialize};
use std::collections::HashMap;
use std::fmt;
use unimem_sim::{Bytes, StrArena};

/// Identifier of a registered data object.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct ObjId(pub u32);

impl fmt::Display for ObjId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "obj{}", self.0)
    }
}

/// A placement unit: one chunk of one object. Unpartitioned objects have a
/// single chunk with index 0.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct UnitId {
    pub obj: ObjId,
    pub chunk: u16,
}

impl UnitId {
    pub fn whole(obj: ObjId) -> UnitId {
        UnitId { obj, chunk: 0 }
    }
}

impl fmt::Display for UnitId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.chunk == 0 {
            write!(f, "{}", self.obj)
        } else {
            write!(f, "{}#{}", self.obj, self.chunk)
        }
    }
}

/// One registered target data object.
///
/// The object's name is not stored here: names are interned in the
/// owning [`ObjectRegistry`]'s string arena (one allocation for the
/// whole registry instead of one `String` per object), so ask the
/// registry via [`ObjectRegistry::name_of`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DataObject {
    pub id: ObjId,
    /// Modeled size (the size the placement problem sees).
    pub size: Bytes,
    /// True for 1-D arrays with regular references — the only case the
    /// paper's conservative partitioner handles (§3.2).
    pub partitionable: bool,
    /// True when memory aliases created outside the main loop prevent
    /// pointer fix-up after chunk migration (the MG situation in §5).
    pub aliased: bool,
    /// Compiler-estimated number of memory references per iteration
    /// (the symbolic formula of §3.2, already evaluated); drives initial
    /// data placement. Zero when the estimate is unavailable at startup.
    pub est_refs: f64,
    /// Current number of chunks (≥ 1). Set by the runtime's partitioner.
    pub chunks: u16,
}

impl DataObject {
    /// Size of chunk `idx`. Chunks split evenly; the last absorbs remainder.
    pub fn chunk_size(&self, idx: u16) -> Bytes {
        assert!(idx < self.chunks, "chunk {idx} of {}", self.chunks);
        let n = u64::from(self.chunks);
        let base = self.size.get() / n;
        if u64::from(idx) == n - 1 {
            Bytes(self.size.get() - base * (n - 1))
        } else {
            Bytes(base)
        }
    }

    /// All placement units of this object.
    pub fn units(&self) -> impl Iterator<Item = UnitId> + '_ {
        (0..self.chunks).map(move |c| UnitId {
            obj: self.id,
            chunk: c,
        })
    }
}

/// Builder-style description used at registration time.
#[derive(Debug, Clone)]
pub struct ObjectSpec {
    pub name: String,
    pub size: Bytes,
    pub partitionable: bool,
    pub aliased: bool,
    pub est_refs: f64,
}

impl ObjectSpec {
    pub fn new(name: impl Into<String>, size: Bytes) -> ObjectSpec {
        ObjectSpec {
            name: name.into(),
            size,
            partitionable: false,
            aliased: false,
            est_refs: 0.0,
        }
    }

    pub fn partitionable(mut self, yes: bool) -> ObjectSpec {
        self.partitionable = yes;
        self
    }

    pub fn aliased(mut self, yes: bool) -> ObjectSpec {
        self.aliased = yes;
        self
    }

    pub fn est_refs(mut self, refs: f64) -> ObjectSpec {
        self.est_refs = refs;
        self
    }
}

/// Registry of all target data objects of one rank.
///
/// Object names live in a single [`StrArena`] rather than one `String`
/// per object plus a `HashMap` keying clones of those strings: a rank
/// registers a handful of objects once per run, so the arena's linear
/// name scan is cheaper than hashing and the whole registry's name
/// storage is one allocation. Arena span `i` is the name of `ObjId(i)`
/// by construction (names are interned exactly when an object is
/// admitted, and duplicates are rejected first).
#[derive(Debug, Default, Clone)]
pub struct ObjectRegistry {
    objects: Vec<DataObject>,
    names: StrArena,
}

impl ObjectRegistry {
    pub fn new() -> ObjectRegistry {
        ObjectRegistry::default()
    }

    /// Register a new object. Panics on invalid specs — see
    /// [`ObjectRegistry::try_register`] for the fallible form; workload
    /// definitions are code, so a bad spec is a bug, not a data error.
    pub fn register(&mut self, spec: ObjectSpec) -> ObjId {
        self.try_register(spec).unwrap_or_else(|e| panic!("{e}"))
    }

    /// Register a new object, rejecting invalid specs with an error:
    /// duplicate names (they identify objects in workload descriptors and
    /// harness output) and non-finite `est_refs` (a NaN estimate would
    /// poison every placement comparison downstream).
    pub fn try_register(&mut self, spec: ObjectSpec) -> Result<ObjId, String> {
        if self.names.find(&spec.name).is_some() {
            return Err(format!("duplicate data object name: {}", spec.name));
        }
        if !spec.est_refs.is_finite() {
            return Err(format!(
                "object {}: est_refs must be finite, got {}",
                spec.name, spec.est_refs
            ));
        }
        let id = ObjId(self.objects.len() as u32);
        let span = self.names.intern(&spec.name);
        debug_assert_eq!(span.index(), id.0 as usize, "arena span aligns with id");
        self.objects.push(DataObject {
            id,
            size: spec.size,
            partitionable: spec.partitionable,
            aliased: spec.aliased,
            est_refs: spec.est_refs,
            chunks: 1,
        });
        Ok(id)
    }

    pub fn get(&self, id: ObjId) -> &DataObject {
        &self.objects[id.0 as usize]
    }

    /// The name `id` was registered under.
    pub fn name_of(&self, id: ObjId) -> &str {
        self.names.get_at(id.0 as usize)
    }

    pub fn lookup(&self, name: &str) -> Option<ObjId> {
        self.names.find(name).map(|r| ObjId(r.index() as u32))
    }

    pub fn len(&self) -> usize {
        self.objects.len()
    }

    pub fn is_empty(&self) -> bool {
        self.objects.is_empty()
    }

    pub fn iter(&self) -> impl Iterator<Item = &DataObject> {
        self.objects.iter()
    }

    /// Split `id` into `chunks` pieces (partitioner). Panics if the object
    /// was declared non-partitionable or aliased.
    pub fn set_chunks(&mut self, id: ObjId, chunks: u16) {
        assert!(chunks >= 1);
        let o = &self.objects[id.0 as usize];
        assert!(
            chunks == 1 || (o.partitionable && !o.aliased),
            "object {} cannot be partitioned",
            self.name_of(id)
        );
        self.objects[id.0 as usize].chunks = chunks;
    }

    /// All placement units across all objects.
    pub fn units(&self) -> Vec<UnitId> {
        self.objects.iter().flat_map(|o| o.units()).collect()
    }

    /// Size of one placement unit.
    pub fn unit_size(&self, u: UnitId) -> Bytes {
        self.get(u.obj).chunk_size(u.chunk)
    }

    /// Total modeled footprint.
    pub fn total_size(&self) -> Bytes {
        self.objects.iter().map(|o| o.size).sum()
    }
}

/// A placement: which tier each placement unit lives in. Units default to
/// NVM (the paper's default initial placement before optimization).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Placement {
    in_dram: HashMap<UnitId, ()>,
}

impl Placement {
    /// Everything in NVM.
    pub fn all_nvm() -> Placement {
        Placement::default()
    }

    /// Every unit of every object in DRAM (the DRAM-only policy).
    pub fn all_dram(reg: &ObjectRegistry) -> Placement {
        let mut p = Placement::default();
        for u in reg.units() {
            p.set(u, TierKind::Dram);
        }
        p
    }

    pub fn tier(&self, u: UnitId) -> TierKind {
        if self.in_dram.contains_key(&u) {
            TierKind::Dram
        } else {
            TierKind::Nvm
        }
    }

    pub fn set(&mut self, u: UnitId, tier: TierKind) {
        match tier {
            TierKind::Dram => {
                self.in_dram.insert(u, ());
            }
            TierKind::Nvm => {
                self.in_dram.remove(&u);
            }
        }
    }

    /// Units currently in DRAM (unordered).
    pub fn dram_units(&self) -> impl Iterator<Item = UnitId> + '_ {
        self.in_dram.keys().copied()
    }

    /// Total DRAM bytes this placement occupies.
    pub fn dram_bytes(&self, reg: &ObjectRegistry) -> Bytes {
        self.in_dram.keys().map(|&u| reg.unit_size(u)).sum()
    }

    /// True when every chunk of `obj` is in DRAM.
    pub fn object_fully_in_dram(&self, reg: &ObjectRegistry, obj: ObjId) -> bool {
        reg.get(obj).units().all(|u| self.tier(u) == TierKind::Dram)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn reg_with(names: &[(&str, u64)]) -> ObjectRegistry {
        let mut r = ObjectRegistry::new();
        for (n, sz) in names {
            r.register(ObjectSpec::new(*n, Bytes(*sz)));
        }
        r
    }

    #[test]
    fn register_and_lookup() {
        let r = reg_with(&[("a", 100), ("b", 200)]);
        let a = r.lookup("a").unwrap();
        assert_eq!(r.get(a).size, Bytes(100));
        assert_eq!(r.lookup("c"), None);
        assert_eq!(r.len(), 2);
        assert_eq!(r.total_size(), Bytes(300));
    }

    #[test]
    #[should_panic(expected = "duplicate")]
    fn duplicate_names_panic() {
        let mut r = ObjectRegistry::new();
        r.register(ObjectSpec::new("a", Bytes(1)));
        r.register(ObjectSpec::new("a", Bytes(2)));
    }

    #[test]
    fn try_register_rejects_duplicates_and_non_finite_estimates() {
        let mut r = ObjectRegistry::new();
        assert!(r.try_register(ObjectSpec::new("a", Bytes(1))).is_ok());
        let dup = r.try_register(ObjectSpec::new("a", Bytes(2)));
        assert!(dup.unwrap_err().contains("duplicate"));
        for bad in [f64::NAN, f64::INFINITY, f64::NEG_INFINITY] {
            let err = r
                .try_register(ObjectSpec::new("b", Bytes(1)).est_refs(bad))
                .unwrap_err();
            assert!(err.contains("est_refs must be finite"), "{err}");
        }
        // The rejected spec must not have consumed the name or an id.
        assert!(r
            .try_register(ObjectSpec::new("b", Bytes(1)).est_refs(7.0))
            .is_ok());
        assert_eq!(r.len(), 2);
    }

    #[test]
    #[should_panic(expected = "est_refs must be finite")]
    fn register_panics_on_nan_estimate() {
        let mut r = ObjectRegistry::new();
        r.register(ObjectSpec::new("x", Bytes(1)).est_refs(f64::NAN));
    }

    #[test]
    fn chunk_sizes_cover_object() {
        let mut r = ObjectRegistry::new();
        let id = r.register(ObjectSpec::new("big", Bytes(1003)).partitionable(true));
        r.set_chunks(id, 4);
        let o = r.get(id);
        let total: u64 = (0..4).map(|i| o.chunk_size(i).get()).sum();
        assert_eq!(total, 1003);
        assert_eq!(o.chunk_size(0), Bytes(250));
        assert_eq!(o.chunk_size(3), Bytes(253));
    }

    #[test]
    #[should_panic(expected = "cannot be partitioned")]
    fn non_partitionable_rejects_chunks() {
        let mut r = ObjectRegistry::new();
        let id = r.register(ObjectSpec::new("x", Bytes(100)));
        r.set_chunks(id, 2);
    }

    #[test]
    #[should_panic(expected = "cannot be partitioned")]
    fn aliased_rejects_chunks() {
        let mut r = ObjectRegistry::new();
        let id = r.register(
            ObjectSpec::new("mg_u", Bytes(100))
                .partitionable(true)
                .aliased(true),
        );
        r.set_chunks(id, 2);
    }

    #[test]
    fn placement_defaults_to_nvm() {
        let r = reg_with(&[("a", 100)]);
        let p = Placement::all_nvm();
        let u = UnitId::whole(r.lookup("a").unwrap());
        assert_eq!(p.tier(u), TierKind::Nvm);
    }

    #[test]
    fn placement_set_and_bytes() {
        let r = reg_with(&[("a", 100), ("b", 200)]);
        let mut p = Placement::all_nvm();
        let ua = UnitId::whole(r.lookup("a").unwrap());
        p.set(ua, TierKind::Dram);
        assert_eq!(p.tier(ua), TierKind::Dram);
        assert_eq!(p.dram_bytes(&r), Bytes(100));
        p.set(ua, TierKind::Nvm);
        assert_eq!(p.dram_bytes(&r), Bytes(0));
    }

    #[test]
    fn all_dram_covers_every_unit() {
        let mut r = ObjectRegistry::new();
        let big = r.register(ObjectSpec::new("big", Bytes(400)).partitionable(true));
        r.register(ObjectSpec::new("small", Bytes(40)));
        r.set_chunks(big, 4);
        let p = Placement::all_dram(&r);
        assert_eq!(p.dram_bytes(&r), Bytes(440));
        assert!(p.object_fully_in_dram(&r, big));
    }

    #[test]
    fn partial_object_not_fully_in_dram() {
        let mut r = ObjectRegistry::new();
        let big = r.register(ObjectSpec::new("big", Bytes(400)).partitionable(true));
        r.set_chunks(big, 2);
        let mut p = Placement::all_nvm();
        p.set(UnitId { obj: big, chunk: 0 }, TierKind::Dram);
        assert!(!p.object_fully_in_dram(&r, big));
    }

    #[test]
    fn units_enumerate_chunks() {
        let mut r = ObjectRegistry::new();
        let big = r.register(ObjectSpec::new("big", Bytes(100)).partitionable(true));
        r.set_chunks(big, 3);
        r.register(ObjectSpec::new("s", Bytes(10)));
        assert_eq!(r.units().len(), 4);
    }
}
