//! Multi-tenant DRAM arbitration: a global budget broker for the scarce
//! DRAM tier.
//!
//! Unimem (the paper) manages placement for *one* application. A node
//! serving several co-running applications needs an arbiter above the
//! per-application runtimes: each tenant registers a reservation (a
//! guaranteed DRAM floor) and a priority weight, reports its demand, and
//! receives a *lease* — a byte budget its knapsack must respect. When the
//! active tenant set or the demands change, [`DramArbiter::rebalance`]
//! recomputes every lease, revoking from over-granted tenants and
//! granting to under-served ones. The tenancy layer in `unimem::tenancy`
//! turns those lease changes into placement re-runs at phase boundaries.
//!
//! The broker is **deterministic**: grants are a pure function of
//! (budget, policy, tenant specs, demands, active set), computed with
//! integer arithmetic in tenant-id order. Repeated [`DramArbiter::rebalance`]
//! calls without state changes are fixpoints (no lease moves), which the
//! property suite asserts.
//!
//! # Example
//!
//! ```
//! use unimem_hms::arbiter::{ArbiterPolicy, DramArbiter, TenantSpec};
//! use unimem_sim::Bytes;
//!
//! let mut arb = DramArbiter::new(Bytes::mib(256), ArbiterPolicy::Priority);
//! let a = arb
//!     .register(TenantSpec::new("solver").weight(3).reservation(Bytes::mib(64)))
//!     .unwrap();
//! let b = arb.register(TenantSpec::new("batch")).unwrap();
//! arb.set_demand(a, Bytes::mib(512));
//! arb.set_demand(b, Bytes::mib(512));
//! arb.rebalance();
//! // Grants never exceed the budget, and the weighted tenant gets the
//! // larger share of the contended remainder.
//! assert!(arb.granted_total() <= Bytes::mib(256));
//! assert!(arb.grant(a) > arb.grant(b));
//! ```

use std::fmt;
use unimem_sim::Bytes;

/// Identifier of a registered tenant (dense, in registration order).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TenantId(pub u32);

impl fmt::Display for TenantId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "tenant{}", self.0)
    }
}

/// How the arbiter splits the DRAM budget among contending tenants.
///
/// Every policy first honours reservations (up to demand); the policies
/// differ only in how the *contended remainder* is distributed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ArbiterPolicy {
    /// Equal shares of the remainder, water-filled: a tenant whose demand
    /// is met early releases its surplus to the still-hungry ones.
    FairShare,
    /// Weighted shares of the remainder (weight-proportional
    /// water-filling) — a weight-3 tenant gets three times the share of a
    /// weight-1 tenant while both stay hungry.
    Priority,
    /// First-come-first-served in registration order: earlier tenants
    /// take what they demand; later tenants get what is left.
    BestEffort,
}

impl ArbiterPolicy {
    /// Every policy, in report order.
    pub const ALL: [ArbiterPolicy; 3] = [
        ArbiterPolicy::FairShare,
        ArbiterPolicy::Priority,
        ArbiterPolicy::BestEffort,
    ];

    /// Stable lower-case name used in reports and on the CLI.
    pub fn name(self) -> &'static str {
        match self {
            ArbiterPolicy::FairShare => "fair-share",
            ArbiterPolicy::Priority => "priority",
            ArbiterPolicy::BestEffort => "best-effort",
        }
    }

    /// Inverse of [`ArbiterPolicy::name`] (case-insensitive).
    pub fn parse(s: &str) -> Option<ArbiterPolicy> {
        Self::ALL
            .into_iter()
            .find(|p| p.name() == s.to_ascii_lowercase())
    }
}

/// Registration-time description of a tenant.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Human-readable name carried into reports.
    pub name: String,
    /// Priority weight (≥ 1); only [`ArbiterPolicy::Priority`] reads it.
    pub weight: u32,
    /// Guaranteed DRAM floor. Honoured (up to demand) under every policy;
    /// the arbiter refuses to admit a tenant set whose reservations exceed
    /// the budget.
    pub reservation: Bytes,
}

impl TenantSpec {
    /// A weight-1, reservation-free (pure best-effort) tenant.
    pub fn new(name: impl Into<String>) -> TenantSpec {
        TenantSpec {
            name: name.into(),
            weight: 1,
            reservation: Bytes::ZERO,
        }
    }

    /// Set the priority weight (≥ 1).
    pub fn weight(mut self, w: u32) -> TenantSpec {
        self.weight = w;
        self
    }

    /// Set the guaranteed DRAM floor.
    pub fn reservation(mut self, r: Bytes) -> TenantSpec {
        self.reservation = r;
        self
    }
}

/// One lease movement produced by [`DramArbiter::rebalance`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LeaseChange {
    /// Whose lease moved.
    pub tenant: TenantId,
    /// The lease before the rebalance.
    pub from: Bytes,
    /// The lease after the rebalance.
    pub to: Bytes,
}

impl LeaseChange {
    /// True when the rebalance took DRAM away from the tenant.
    pub fn is_revocation(&self) -> bool {
        self.to < self.from
    }
}

#[derive(Debug, Clone)]
struct TenantState {
    spec: TenantSpec,
    demand: Bytes,
    active: bool,
    granted: Bytes,
}

/// The global DRAM budget broker.
///
/// Tenants register once, then drive the broker with
/// [`set_demand`](DramArbiter::set_demand) /
/// [`activate`](DramArbiter::activate) /
/// [`deactivate`](DramArbiter::deactivate) and read back their lease
/// after each [`rebalance`](DramArbiter::rebalance).
#[derive(Debug, Clone)]
pub struct DramArbiter {
    budget: Bytes,
    policy: ArbiterPolicy,
    tenants: Vec<TenantState>,
}

impl DramArbiter {
    /// A broker over `budget` bytes of node DRAM under `policy`.
    pub fn new(budget: Bytes, policy: ArbiterPolicy) -> DramArbiter {
        DramArbiter {
            budget,
            policy,
            tenants: Vec::new(),
        }
    }

    /// The budget being brokered.
    pub fn budget(&self) -> Bytes {
        self.budget
    }

    /// The arbitration policy.
    pub fn policy(&self) -> ArbiterPolicy {
        self.policy
    }

    /// Admit a tenant (active immediately). Errors on a duplicate name, a
    /// zero weight, or a reservation the budget cannot honour alongside
    /// the already-active reservations.
    pub fn register(&mut self, spec: TenantSpec) -> Result<TenantId, String> {
        if self.tenants.iter().any(|t| t.spec.name == spec.name) {
            return Err(format!("duplicate tenant name: {}", spec.name));
        }
        if spec.weight == 0 {
            return Err(format!("tenant {}: weight must be >= 1", spec.name));
        }
        let reserved = self.active_reservations() + spec.reservation;
        if reserved > self.budget {
            return Err(format!(
                "tenant {}: reservations {} exceed budget {}",
                spec.name, reserved, self.budget
            ));
        }
        let id = TenantId(self.tenants.len() as u32);
        self.tenants.push(TenantState {
            spec,
            demand: Bytes::ZERO,
            active: true,
            granted: Bytes::ZERO,
        });
        Ok(id)
    }

    /// Report how much DRAM the tenant could use right now (its knapsack's
    /// upper bound). Takes effect at the next rebalance.
    pub fn set_demand(&mut self, t: TenantId, demand: Bytes) {
        self.tenants[t.0 as usize].demand = demand;
    }

    /// Re-admit a deactivated tenant. Errors when its reservation no
    /// longer fits beside the other active reservations.
    pub fn activate(&mut self, t: TenantId) -> Result<(), String> {
        if self.tenants[t.0 as usize].active {
            return Ok(());
        }
        let reserved = self.active_reservations() + self.tenants[t.0 as usize].spec.reservation;
        if reserved > self.budget {
            return Err(format!(
                "tenant {}: reservations {} exceed budget {}",
                self.tenants[t.0 as usize].spec.name, reserved, self.budget
            ));
        }
        self.tenants[t.0 as usize].active = true;
        Ok(())
    }

    /// Retire a tenant (finished its run): its lease returns to the pool
    /// at the next rebalance.
    pub fn deactivate(&mut self, t: TenantId) {
        let st = &mut self.tenants[t.0 as usize];
        st.active = false;
        st.demand = Bytes::ZERO;
    }

    /// Shrink or grow the brokered budget (e.g. the operator donates DRAM
    /// to a different node service). Errors when the new budget cannot
    /// honour the active reservations — revoking a *reservation* is an
    /// operator decision, not something the broker does silently.
    pub fn set_budget(&mut self, budget: Bytes) -> Result<(), String> {
        if self.active_reservations() > budget {
            return Err(format!(
                "budget {} cannot honour active reservations {}",
                budget,
                self.active_reservations()
            ));
        }
        self.budget = budget;
        Ok(())
    }

    /// The tenant's current lease.
    pub fn grant(&self, t: TenantId) -> Bytes {
        self.tenants[t.0 as usize].granted
    }

    /// Sum of all current leases. Never exceeds [`DramArbiter::budget`]
    /// after a rebalance — the property suite hammers this invariant.
    pub fn granted_total(&self) -> Bytes {
        self.tenants.iter().map(|t| t.granted).sum()
    }

    /// Number of registered tenants (active or not).
    pub fn len(&self) -> usize {
        self.tenants.len()
    }

    /// True when no tenant has registered.
    pub fn is_empty(&self) -> bool {
        self.tenants.is_empty()
    }

    /// Registered name of a tenant.
    pub fn name(&self, t: TenantId) -> &str {
        &self.tenants[t.0 as usize].spec.name
    }

    fn active_reservations(&self) -> Bytes {
        self.tenants
            .iter()
            .filter(|t| t.active)
            .map(|t| t.spec.reservation)
            .sum()
    }

    /// Recompute every lease from the current state and return the lease
    /// movements (tenant-id order; a revocation and a grant may appear in
    /// one batch). Grants are a pure function of the broker state, so a
    /// second rebalance without intervening changes moves nothing.
    pub fn rebalance(&mut self) -> Vec<LeaseChange> {
        let fresh = self.split();
        let mut changes = Vec::new();
        for (i, (&to, st)) in fresh.iter().zip(self.tenants.iter_mut()).enumerate() {
            if st.granted != to {
                changes.push(LeaseChange {
                    tenant: TenantId(i as u32),
                    from: st.granted,
                    to,
                });
                st.granted = to;
            }
        }
        changes
    }

    /// The allocation function: floors first (min(reservation, demand)),
    /// then the contended remainder by policy. Integer arithmetic, tenant
    /// id order, no state mutation — determinism lives here.
    fn split(&self) -> Vec<Bytes> {
        let n = self.tenants.len();
        let mut grant = vec![0u64; n];
        let mut want = vec![0u64; n];
        let mut remaining = self.budget.get();
        for (i, t) in self.tenants.iter().enumerate() {
            if !t.active {
                continue;
            }
            let floor = t.spec.reservation.get().min(t.demand.get()).min(remaining);
            grant[i] = floor;
            want[i] = t.demand.get() - floor;
            remaining -= floor;
        }
        match self.policy {
            ArbiterPolicy::BestEffort => {
                for i in 0..n {
                    let take = want[i].min(remaining);
                    grant[i] += take;
                    remaining -= take;
                }
            }
            ArbiterPolicy::FairShare => {
                water_fill(&mut grant, &want, &vec![1u32; n], remaining);
            }
            ArbiterPolicy::Priority => {
                let weights: Vec<u32> = self.tenants.iter().map(|t| t.spec.weight).collect();
                water_fill(&mut grant, &want, &weights, remaining);
            }
        }
        grant.into_iter().map(Bytes).collect()
    }
}

/// Weight-proportional water-filling of `remaining` bytes over tenants
/// with residual demands `want` (0 = not contending). Each round fully
/// satisfies every tenant whose weighted share covers its residual demand
/// and removes it from the contention set; when no tenant caps, one final
/// largest-remainder-free distribution (floor shares, then single bytes in
/// id order) ends the fill. Rounds are bounded by the tenant count, and
/// every step is integer arithmetic in id order — deterministic.
fn water_fill(grant: &mut [u64], want: &[u64], weights: &[u32], mut remaining: u64) {
    let mut want = want.to_vec();
    let mut unsat: Vec<usize> = (0..want.len()).filter(|&i| want[i] > 0).collect();
    while remaining > 0 && !unsat.is_empty() {
        let total_w: u128 = unsat.iter().map(|&i| u128::from(weights[i])).sum();
        let snapshot = remaining;
        let mut capped = Vec::new();
        for &i in &unsat {
            let share = (u128::from(snapshot) * u128::from(weights[i]) / total_w) as u64;
            if share >= want[i] {
                capped.push(i);
            }
        }
        if capped.is_empty() {
            // Nobody's demand is met this round: hand out the floor
            // shares, then the rounding leftover one byte at a time.
            for &i in &unsat {
                let share = ((u128::from(snapshot) * u128::from(weights[i]) / total_w) as u64)
                    .min(want[i])
                    .min(remaining);
                grant[i] += share;
                want[i] -= share;
                remaining -= share;
            }
            for &i in &unsat {
                if remaining == 0 {
                    break;
                }
                let one = 1u64.min(want[i]);
                grant[i] += one;
                want[i] -= one;
                remaining -= one;
            }
            break;
        }
        for i in capped {
            let take = want[i].min(remaining);
            grant[i] += take;
            want[i] -= take;
            remaining -= take;
        }
        unsat.retain(|&i| want[i] > 0);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn arb(policy: ArbiterPolicy) -> DramArbiter {
        DramArbiter::new(Bytes(1000), policy)
    }

    #[test]
    fn names_round_trip() {
        for p in ArbiterPolicy::ALL {
            assert_eq!(ArbiterPolicy::parse(p.name()), Some(p));
        }
        assert_eq!(ArbiterPolicy::parse("strict"), None);
    }

    #[test]
    fn registration_validates() {
        let mut a = arb(ArbiterPolicy::FairShare);
        a.register(TenantSpec::new("x")).unwrap();
        assert!(a
            .register(TenantSpec::new("x"))
            .unwrap_err()
            .contains("duplicate"));
        assert!(a
            .register(TenantSpec::new("w0").weight(0))
            .unwrap_err()
            .contains("weight"));
        a.register(TenantSpec::new("r").reservation(Bytes(900)))
            .unwrap();
        assert!(a
            .register(TenantSpec::new("r2").reservation(Bytes(200)))
            .unwrap_err()
            .contains("exceed budget"));
    }

    #[test]
    fn fair_share_splits_equally_and_water_fills() {
        let mut a = arb(ArbiterPolicy::FairShare);
        let x = a.register(TenantSpec::new("x")).unwrap();
        let y = a.register(TenantSpec::new("y")).unwrap();
        let z = a.register(TenantSpec::new("z")).unwrap();
        a.set_demand(x, Bytes(100)); // satisfied early
        a.set_demand(y, Bytes(800));
        a.set_demand(z, Bytes(800));
        a.rebalance();
        assert_eq!(a.grant(x), Bytes(100));
        // x's surplus flows to y and z equally: (1000-100)/2 each.
        assert_eq!(a.grant(y), Bytes(450));
        assert_eq!(a.grant(z), Bytes(450));
        assert_eq!(a.granted_total(), Bytes(1000));
    }

    #[test]
    fn priority_weights_shape_the_contended_remainder() {
        let mut a = arb(ArbiterPolicy::Priority);
        let hi = a.register(TenantSpec::new("hi").weight(3)).unwrap();
        let lo = a.register(TenantSpec::new("lo")).unwrap();
        a.set_demand(hi, Bytes(2000));
        a.set_demand(lo, Bytes(2000));
        a.rebalance();
        assert_eq!(a.grant(hi), Bytes(750));
        assert_eq!(a.grant(lo), Bytes(250));
    }

    #[test]
    fn best_effort_is_first_come_first_served() {
        let mut a = arb(ArbiterPolicy::BestEffort);
        let first = a.register(TenantSpec::new("first")).unwrap();
        let second = a.register(TenantSpec::new("second")).unwrap();
        a.set_demand(first, Bytes(900));
        a.set_demand(second, Bytes(900));
        a.rebalance();
        assert_eq!(a.grant(first), Bytes(900));
        assert_eq!(a.grant(second), Bytes(100));
    }

    #[test]
    fn reservations_are_floors_under_every_policy() {
        for policy in ArbiterPolicy::ALL {
            let mut a = arb(policy);
            let hog = a.register(TenantSpec::new("hog").weight(10)).unwrap();
            let res = a
                .register(TenantSpec::new("res").reservation(Bytes(300)))
                .unwrap();
            a.set_demand(hog, Bytes(5000));
            a.set_demand(res, Bytes(5000));
            a.rebalance();
            assert!(
                a.grant(res) >= Bytes(300),
                "{}: floor violated, got {}",
                policy.name(),
                a.grant(res)
            );
            assert!(a.granted_total() <= Bytes(1000));
        }
    }

    #[test]
    fn reservation_above_demand_only_grants_demand() {
        let mut a = arb(ArbiterPolicy::FairShare);
        let t = a
            .register(TenantSpec::new("t").reservation(Bytes(600)))
            .unwrap();
        let u = a.register(TenantSpec::new("u")).unwrap();
        a.set_demand(t, Bytes(50));
        a.set_demand(u, Bytes(2000));
        a.rebalance();
        assert_eq!(a.grant(t), Bytes(50), "floor caps at demand");
        assert_eq!(a.grant(u), Bytes(950));
    }

    #[test]
    fn deactivation_revokes_and_frees_the_lease() {
        let mut a = arb(ArbiterPolicy::FairShare);
        let x = a.register(TenantSpec::new("x")).unwrap();
        let y = a.register(TenantSpec::new("y")).unwrap();
        a.set_demand(x, Bytes(800));
        a.set_demand(y, Bytes(800));
        a.rebalance();
        assert_eq!(a.grant(x), Bytes(500));
        a.deactivate(x);
        let changes = a.rebalance();
        assert!(changes.iter().any(|c| c.tenant == x && c.is_revocation()));
        assert_eq!(a.grant(x), Bytes::ZERO);
        assert_eq!(a.grant(y), Bytes(800));
    }

    #[test]
    fn budget_shrink_revokes_but_respects_reservations() {
        let mut a = arb(ArbiterPolicy::FairShare);
        let x = a
            .register(TenantSpec::new("x").reservation(Bytes(200)))
            .unwrap();
        let y = a.register(TenantSpec::new("y")).unwrap();
        a.set_demand(x, Bytes(600));
        a.set_demand(y, Bytes(600));
        a.rebalance();
        assert!(a.set_budget(Bytes(100)).is_err(), "cannot break the floor");
        a.set_budget(Bytes(400)).unwrap();
        let changes = a.rebalance();
        assert!(changes.iter().all(|c| c.is_revocation()));
        assert!(a.granted_total() <= Bytes(400));
        assert!(a.grant(x) >= Bytes(200));
    }

    #[test]
    fn rebalance_is_a_fixpoint() {
        let mut a = arb(ArbiterPolicy::Priority);
        let x = a.register(TenantSpec::new("x").weight(2)).unwrap();
        let y = a.register(TenantSpec::new("y")).unwrap();
        a.set_demand(x, Bytes(700));
        a.set_demand(y, Bytes(700));
        let first = a.rebalance();
        assert!(!first.is_empty());
        assert!(
            a.rebalance().is_empty(),
            "second rebalance must move nothing"
        );
    }

    #[test]
    fn rounding_never_loses_the_budget_to_starvation() {
        // 7 equal tenants over 10 bytes: floor shares are 1 each, the
        // 3-byte leftover goes to the earliest tenants.
        let mut a = DramArbiter::new(Bytes(10), ArbiterPolicy::FairShare);
        let ids: Vec<TenantId> = (0..7)
            .map(|i| a.register(TenantSpec::new(format!("t{i}"))).unwrap())
            .collect();
        for &t in &ids {
            a.set_demand(t, Bytes(100));
        }
        a.rebalance();
        assert_eq!(a.granted_total(), Bytes(10));
        let grants: Vec<u64> = ids.iter().map(|&t| a.grant(t).get()).collect();
        assert_eq!(grants, [2, 2, 2, 1, 1, 1, 1]);
    }

    #[test]
    fn inactive_tenants_get_nothing() {
        let mut a = arb(ArbiterPolicy::BestEffort);
        let x = a.register(TenantSpec::new("x")).unwrap();
        a.set_demand(x, Bytes(10));
        a.deactivate(x);
        a.rebalance();
        assert_eq!(a.grant(x), Bytes::ZERO);
        a.activate(x).unwrap();
        a.set_demand(x, Bytes(10));
        a.rebalance();
        assert_eq!(a.grant(x), Bytes(10));
    }
}
