//! Memory tiers and the ground-truth access-time model.
//!
//! A tier is described by read/write latency and read/write bandwidth. The
//! simulation's ground truth for the memory time a phase spends on one data
//! object is a roofline-style maximum of a bandwidth term and a latency
//! term (see `DESIGN.md` §3):
//!
//! ```text
//! T_mem(obj) = max( miss_bytes / bw(tier),  misses · lat(tier) / mlp )
//! ```
//!
//! `mlp` is the access pattern's memory-level parallelism: streaming code
//! keeps many cache-line fetches in flight (high `mlp`, bandwidth-bound)
//! while pointer chasing serializes them (`mlp ≈ 1`, latency-bound). This
//! single formula produces the paper's Observation 3 — different objects are
//! sensitive to different tier parameters — from the workload structure.

use serde::{Deserialize, Serialize};
use unimem_sim::{Bandwidth, Bytes, Latency, VDur};

/// Which tier a data object resides in.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TierKind {
    Dram,
    Nvm,
}

impl TierKind {
    pub fn other(self) -> TierKind {
        match self {
            TierKind::Dram => TierKind::Nvm,
            TierKind::Nvm => TierKind::Dram,
        }
    }

    pub fn name(self) -> &'static str {
        match self {
            TierKind::Dram => "DRAM",
            TierKind::Nvm => "NVM",
        }
    }
}

/// Read/write fractions of an access stream. Writes matter because NVM is
/// strongly read/write asymmetric (Table 1: PCRAM writes up to 50× slower).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AccessMix {
    /// Fraction of accesses that are reads, in `[0, 1]`.
    pub read_frac: f64,
}

impl AccessMix {
    pub const READ_ONLY: AccessMix = AccessMix { read_frac: 1.0 };
    pub const WRITE_ONLY: AccessMix = AccessMix { read_frac: 0.0 };

    pub fn new(read_frac: f64) -> AccessMix {
        AccessMix {
            read_frac: read_frac.clamp(0.0, 1.0),
        }
    }
}

/// Timing parameters of one memory tier.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TierParams {
    pub read_lat: Latency,
    pub write_lat: Latency,
    pub read_bw: Bandwidth,
    pub write_bw: Bandwidth,
}

impl TierParams {
    /// Effective latency for a given read/write mix.
    #[inline]
    pub fn latency(&self, mix: AccessMix) -> Latency {
        self.read_lat * mix.read_frac + self.write_lat * (1.0 - mix.read_frac)
    }

    /// Effective bandwidth for a given read/write mix (harmonic blend:
    /// a byte stream alternating read/write moves at the rate set by the
    /// time per byte, which adds, not the bandwidths themselves).
    #[inline]
    pub fn bandwidth(&self, mix: AccessMix) -> Bandwidth {
        let r = mix.read_frac;
        let w = 1.0 - r;
        let time_per_byte = r / self.read_bw.bytes_per_s() + w / self.write_bw.bytes_per_s();
        Bandwidth(1.0 / time_per_byte)
    }

    /// Scale bandwidth by `f` (the paper's "NVM with ½ DRAM bandwidth").
    pub fn with_bw_fraction(&self, f: f64) -> TierParams {
        TierParams {
            read_bw: self.read_bw.scaled(f),
            write_bw: self.write_bw.scaled(f),
            ..*self
        }
    }

    /// Scale latency by `m` (the paper's "NVM with 4× DRAM latency").
    pub fn with_lat_multiple(&self, m: f64) -> TierParams {
        TierParams {
            read_lat: self.read_lat * m,
            write_lat: self.write_lat * m,
            ..*self
        }
    }

    /// Ground-truth memory time for `misses` main-memory accesses touching
    /// `miss_bytes`, with memory-level parallelism `mlp`.
    pub fn access_time(&self, misses: u64, miss_bytes: Bytes, mlp: f64, mix: AccessMix) -> VDur {
        if misses == 0 || miss_bytes.is_zero() {
            return VDur::ZERO;
        }
        let mlp = mlp.max(1.0);
        let bw_term = miss_bytes / self.bandwidth(mix);
        let lat_term = self.latency(mix) * (misses as f64) / mlp;
        bw_term.max(lat_term)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use unimem_sim::units::MIB;

    fn dram() -> TierParams {
        TierParams {
            read_lat: VDur::from_nanos(80.0),
            write_lat: VDur::from_nanos(80.0),
            read_bw: Bandwidth::gb_per_s(12.0),
            write_bw: Bandwidth::gb_per_s(12.0),
        }
    }

    #[test]
    fn read_only_mix_uses_read_params() {
        let t = dram();
        assert_eq!(t.latency(AccessMix::READ_ONLY), t.read_lat);
        let bw = t.bandwidth(AccessMix::READ_ONLY);
        assert!((bw.bytes_per_s() - t.read_bw.bytes_per_s()).abs() < 1.0);
    }

    #[test]
    fn mixed_bandwidth_is_harmonic() {
        let t = TierParams {
            read_bw: Bandwidth::gb_per_s(10.0),
            write_bw: Bandwidth::gb_per_s(2.0),
            ..dram()
        };
        // 50/50 mix: time per byte = 0.5/10 + 0.5/2 GB⁻¹s = 0.3ns/B → 3.33GB/s
        let bw = t.bandwidth(AccessMix::new(0.5));
        assert!((bw.as_gb_per_s() - 10.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn streaming_is_bandwidth_bound() {
        let t = dram();
        // 1M misses, 64 MiB, huge mlp: bw term = 64MiB/12GB/s ≈ 5.6ms,
        // lat term = 1e6·80ns/16 = 5ms → bw wins.
        let misses = 1_000_000;
        let bytes = Bytes(64 * MIB);
        let time = t.access_time(misses, bytes, 16.0, AccessMix::READ_ONLY);
        let bw_term = bytes / t.read_bw;
        assert!((time.secs() - bw_term.secs()).abs() < 1e-12);
    }

    #[test]
    fn pointer_chase_is_latency_bound() {
        let t = dram();
        let misses = 1_000_000;
        let bytes = Bytes(misses * 64);
        let time = t.access_time(misses, bytes, 1.0, AccessMix::READ_ONLY);
        let lat_term = misses as f64 * 80e-9;
        assert!((time.secs() - lat_term).abs() < 1e-9, "time={}", time);
    }

    #[test]
    fn halving_bandwidth_doubles_streaming_time() {
        let t = dram();
        let slow = t.with_bw_fraction(0.5);
        let bytes = Bytes(128 * MIB);
        let fast_t = t.access_time(2_000_000, bytes, 64.0, AccessMix::READ_ONLY);
        let slow_t = slow.access_time(2_000_000, bytes, 64.0, AccessMix::READ_ONLY);
        assert!((slow_t.secs() / fast_t.secs() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn latency_multiple_leaves_bandwidth_alone() {
        let t = dram().with_lat_multiple(4.0);
        assert_eq!(t.read_bw, dram().read_bw);
        assert!((t.read_lat.nanos() - 320.0).abs() < 1e-9);
    }

    #[test]
    fn zero_access_is_zero_time() {
        let t = dram();
        assert_eq!(
            t.access_time(0, Bytes(1024), 4.0, AccessMix::READ_ONLY),
            VDur::ZERO
        );
        assert_eq!(
            t.access_time(10, Bytes::ZERO, 4.0, AccessMix::READ_ONLY),
            VDur::ZERO
        );
    }

    #[test]
    fn mlp_below_one_clamps() {
        let t = dram();
        let a = t.access_time(1000, Bytes(64_000), 0.1, AccessMix::READ_ONLY);
        let b = t.access_time(1000, Bytes(64_000), 1.0, AccessMix::READ_ONLY);
        assert_eq!(a, b);
    }

    #[test]
    fn tier_other_flips() {
        assert_eq!(TierKind::Dram.other(), TierKind::Nvm);
        assert_eq!(TierKind::Nvm.other(), TierKind::Dram);
    }
}
