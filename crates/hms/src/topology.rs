//! Explicit cluster topology: possibly-heterogeneous nodes, an
//! inter-node link, and deterministic rank→node placement.
//!
//! Every layer below this module historically assumed one implicit node
//! shape: a single [`MachineConfig`] described every rank's surroundings
//! and `ranks_per_node` carved it into identical nodes. Real NVM fleets
//! are heterogeneous — STT-RAM, PCRAM and ReRAM have incompatible
//! bandwidth/latency/write-asymmetry profiles, so a machine room mixes
//! them — and placement across such nodes is a runtime decision, not a
//! constant. A [`ClusterSpec`] makes the machine room a first-class
//! value: a list of [`NodeSpec`]s (NVM profile + rank slots + copy
//! path, one per node) plus the inter-node link; a [`ClusterTopology`]
//! adds the rank→node assignment, either the legacy contiguous layout
//! or the output of the tenant-aware [`ClusterTopology::scheduled`]
//! scheduler, which places bandwidth-hungry tenants on the
//! fastest-NVM nodes first.
//!
//! Everything here is an immutable value computed before any rank runs,
//! so placement is trivially deterministic; the shared-bandwidth model
//! ([`crate::contention`]) and the DRAM service consume per-node specs
//! from it, and the execution driver derives the MPI placement and the
//! per-node calibration keys from the same assignment.

use crate::profiles::MachineConfig;
use unimem_sim::{Bandwidth, VDur};

/// One node of the machine room: its memory system and how many rank
/// slots it offers.
#[derive(Debug, Clone, PartialEq)]
pub struct NodeSpec {
    /// The node's memory system (tiers, capacities, copy path). The
    /// config's own `ranks_per_node` is ignored here — `slots` is
    /// authoritative for this node.
    pub machine: MachineConfig,
    /// Rank slots this node offers.
    pub slots: usize,
}

/// The machine room: nodes plus the inter-node link they share.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterSpec {
    /// The nodes, in node-id order. Heterogeneity is per-node: mixed
    /// NVM technologies in one spec are expected, not special.
    pub nodes: Vec<NodeSpec>,
    /// Per-direction bandwidth of one node's link to the interconnect
    /// (the resource the `LinkUp`/`LinkDown` ledger channels meter).
    pub link_bw: Bandwidth,
    /// One-hop link latency (the inter-node collective alpha).
    pub link_latency: VDur,
}

/// Default interconnect: 2.5 GB/s per direction, 5 µs hop —
/// deliberately slower than the intra-node fabric
/// (`unimem_mpi::NetParams::default`: 5 GB/s, 2 µs) and than any node's
/// DRAM, so crossing a link costs more than staying inside a node and
/// the link is worth metering.
pub fn default_link_bw() -> Bandwidth {
    Bandwidth::gb_per_s(2.5)
}

/// Default one-hop link latency. See [`default_link_bw`].
pub fn default_link_latency() -> VDur {
    VDur::from_micros(5.0)
}

impl ClusterSpec {
    /// `n_nodes` identical nodes with `slots` rank slots each.
    pub fn homogeneous(machine: MachineConfig, n_nodes: usize, slots: usize) -> ClusterSpec {
        assert!(n_nodes >= 1 && slots >= 1);
        ClusterSpec {
            nodes: (0..n_nodes)
                .map(|_| NodeSpec {
                    machine: machine.clone(),
                    slots,
                })
                .collect(),
            link_bw: default_link_bw(),
            link_latency: default_link_latency(),
        }
    }

    /// One node per machine, `slots` rank slots each — the
    /// mixed-profile layout the heterogeneous sweeps use.
    pub fn mixed(machines: Vec<MachineConfig>, slots: usize) -> ClusterSpec {
        assert!(!machines.is_empty() && slots >= 1);
        ClusterSpec {
            nodes: machines
                .into_iter()
                .map(|machine| NodeSpec { machine, slots })
                .collect(),
            link_bw: default_link_bw(),
            link_latency: default_link_latency(),
        }
    }

    /// Override the link parameters.
    pub fn with_link(mut self, bw: Bandwidth, latency: VDur) -> ClusterSpec {
        self.link_bw = bw;
        self.link_latency = latency;
        self
    }

    /// Total rank slots across the room.
    pub fn total_slots(&self) -> usize {
        self.nodes.iter().map(|n| n.slots).sum()
    }
}

/// What a tenant asks the scheduler for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TenantDemand {
    /// Harness-facing name.
    pub label: String,
    /// Ranks the tenant needs.
    pub ranks: usize,
    /// Whether the tenant is bandwidth-bound: these are scheduled first,
    /// onto the fastest-NVM nodes, since NVM bandwidth is the scarce
    /// resource placement quality hinges on (paper Fig. 2).
    pub bw_hungry: bool,
}

/// How the scheduler distributes a tenant's ranks across the nodes it
/// reaches.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PlacementIntent {
    /// Fill each node's slots before touching the next: co-locates a
    /// tenant (shares node bandwidth, minimizes link crossings).
    Pack,
    /// Round-robin across nodes with free slots: maximizes each rank's
    /// node-bandwidth share at the price of link traffic.
    Spread,
}

/// A machine room plus a concrete rank→node assignment.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterTopology {
    spec: ClusterSpec,
    /// `node_of[r]` = node of rank `r`. Dense rank ids, immutable.
    node_of: Vec<usize>,
    /// `classes[n]` = equivalence class of node `n`: nodes with equal
    /// `MachineConfig`s share a class, so per-machine work (Eq. 1
    /// calibration) runs once per class, not once per node.
    classes: Vec<usize>,
}

impl ClusterTopology {
    /// Contiguous assignment: ranks fill node 0's slots, then node 1's,
    /// … Panics if the room has fewer slots than ranks.
    pub fn contiguous(spec: ClusterSpec, nranks: usize) -> ClusterTopology {
        assert!(nranks >= 1);
        assert!(
            spec.total_slots() >= nranks,
            "{nranks} ranks into {} slots",
            spec.total_slots()
        );
        let mut node_of = Vec::with_capacity(nranks);
        'fill: for (n, node) in spec.nodes.iter().enumerate() {
            for _ in 0..node.slots {
                if node_of.len() == nranks {
                    break 'fill;
                }
                node_of.push(n);
            }
        }
        ClusterTopology::finish(spec, node_of)
    }

    /// The legacy single-profile layout: `machine.ranks_per_node` ranks
    /// per node, `nranks.div_ceil(ranks_per_node)` identical nodes —
    /// exactly the node structure `SharedBandwidth::new` has always
    /// derived from a flat `MachineConfig`, as an explicit topology.
    pub fn homogeneous(machine: &MachineConfig, nranks: usize) -> ClusterTopology {
        assert!(nranks >= 1);
        let rpn = machine.ranks_per_node;
        let n_nodes = nranks.div_ceil(rpn);
        ClusterTopology::contiguous(
            ClusterSpec::homogeneous(machine.clone(), n_nodes, rpn),
            nranks,
        )
    }

    /// Tenant-aware scheduling: bandwidth-hungry tenants are placed
    /// first, onto the nodes with the fastest NVM (read bandwidth,
    /// ties broken by node id — deterministic). Each tenant's ranks are
    /// packed or spread over the remaining slots per `intent`. Rank ids
    /// are assigned tenant-by-tenant in the *caller's* tenant order, so
    /// a tenant's ranks are always the contiguous id range
    /// `[sum of earlier tenants' ranks, +ranks)` regardless of where
    /// they landed.
    pub fn scheduled(
        spec: ClusterSpec,
        tenants: &[TenantDemand],
        intent: PlacementIntent,
    ) -> ClusterTopology {
        let total: usize = tenants.iter().map(|t| t.ranks).sum();
        assert!(total >= 1, "no ranks requested");
        assert!(
            spec.total_slots() >= total,
            "{total} ranks into {} slots",
            spec.total_slots()
        );
        // Fastest NVM first; stable on node id.
        let mut order: Vec<usize> = (0..spec.nodes.len()).collect();
        order.sort_by(|&a, &b| {
            let bw = |n: usize| spec.nodes[n].machine.nvm.read_bw.bytes_per_s();
            bw(b).total_cmp(&bw(a)).then(a.cmp(&b))
        });
        // Hungry tenants choose nodes first; stable within each group.
        let mut sched: Vec<usize> = (0..tenants.len()).collect();
        sched.sort_by_key(|&i| !tenants[i].bw_hungry as u8);

        let mut free: Vec<usize> = spec.nodes.iter().map(|n| n.slots).collect();
        let first_rank: Vec<usize> = tenants
            .iter()
            .scan(0, |acc, t| {
                let s = *acc;
                *acc += t.ranks;
                Some(s)
            })
            .collect();
        let mut node_of = vec![usize::MAX; total];
        for &ti in &sched {
            let t = &tenants[ti];
            let mut placed = 0;
            while placed < t.ranks {
                let before = placed;
                for &n in &order {
                    if placed == t.ranks {
                        break;
                    }
                    if free[n] == 0 {
                        continue;
                    }
                    match intent {
                        PlacementIntent::Pack => {
                            while free[n] > 0 && placed < t.ranks {
                                node_of[first_rank[ti] + placed] = n;
                                free[n] -= 1;
                                placed += 1;
                            }
                        }
                        PlacementIntent::Spread => {
                            node_of[first_rank[ti] + placed] = n;
                            free[n] -= 1;
                            placed += 1;
                        }
                    }
                }
                assert!(placed > before, "slots exhausted mid-tenant");
            }
        }
        ClusterTopology::finish(spec, node_of)
    }

    fn finish(spec: ClusterSpec, node_of: Vec<usize>) -> ClusterTopology {
        // Class = index of the first node with an equal machine.
        let mut reps: Vec<&MachineConfig> = Vec::new();
        let classes = spec
            .nodes
            .iter()
            .map(|n| {
                if let Some(c) = reps.iter().position(|m| **m == n.machine) {
                    c
                } else {
                    reps.push(&n.machine);
                    reps.len() - 1
                }
            })
            .collect();
        ClusterTopology {
            spec,
            node_of,
            classes,
        }
    }

    pub fn spec(&self) -> &ClusterSpec {
        &self.spec
    }

    pub fn nranks(&self) -> usize {
        self.node_of.len()
    }

    pub fn n_nodes(&self) -> usize {
        self.spec.nodes.len()
    }

    /// The node rank `rank` is assigned to.
    pub fn node_of(&self, rank: usize) -> usize {
        self.node_of[rank]
    }

    /// The full rank→node assignment (what the MPI layer turns into a
    /// `RankPlacement`).
    pub fn node_assignment(&self) -> &[usize] {
        &self.node_of
    }

    /// The node spec of node `n`.
    pub fn node(&self, n: usize) -> &NodeSpec {
        &self.spec.nodes[n]
    }

    /// The machine surrounding `rank`.
    pub fn machine_of(&self, rank: usize) -> &MachineConfig {
        &self.spec.nodes[self.node_of[rank]].machine
    }

    /// Ranks actually assigned to node `n` (≤ its slots).
    pub fn occupancy(&self, n: usize) -> usize {
        self.node_of.iter().filter(|&&x| x == n).count()
    }

    /// Machine-equivalence class of node `n` (see `classes`).
    pub fn class_of_node(&self, n: usize) -> usize {
        self.classes[n]
    }

    /// Machine-equivalence class of `rank`'s node.
    pub fn class_of_rank(&self, rank: usize) -> usize {
        self.classes[self.node_of[rank]]
    }

    /// Number of distinct machine classes in the room.
    pub fn n_classes(&self) -> usize {
        self.classes.iter().max().copied().unwrap_or(0) + 1
    }

    /// Whether every rank shares one node (no link traffic possible).
    pub fn is_single_node(&self) -> bool {
        self.node_of.iter().all(|&n| n == self.node_of[0])
    }

    /// Highest per-node NVM read bandwidth in the room — the scheduler
    /// test's notion of "the fast node".
    pub fn fastest_nvm_node(&self) -> usize {
        let mut best = 0;
        for n in 1..self.n_nodes() {
            let bw = |i: usize| self.spec.nodes[i].machine.nvm.read_bw.bytes_per_s();
            if bw(n) > bw(best) {
                best = n;
            }
        }
        best
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles::{table1_pcram, table1_stt_ram};

    fn fast() -> MachineConfig {
        MachineConfig::technology(table1_stt_ram(), "stt-ram")
    }

    fn slow() -> MachineConfig {
        MachineConfig::technology(table1_pcram(), "pcram")
    }

    #[test]
    fn homogeneous_matches_legacy_div_ceil_layout() {
        let m = MachineConfig::nvm_bw_fraction(0.5).with_ranks_per_node(4);
        let t = ClusterTopology::homogeneous(&m, 6);
        assert_eq!(t.n_nodes(), 2);
        assert_eq!(t.node_of(0), 0);
        assert_eq!(t.node_of(3), 0);
        assert_eq!(t.node_of(4), 1);
        assert_eq!(t.occupancy(0), 4);
        assert_eq!(t.occupancy(1), 2);
        assert_eq!(t.n_classes(), 1, "identical nodes share a class");
    }

    #[test]
    fn single_node_room_detects_flatness() {
        let m = MachineConfig::nvm_bw_fraction(0.5).with_ranks_per_node(4);
        let t = ClusterTopology::homogeneous(&m, 4);
        assert!(t.is_single_node());
        let t2 = ClusterTopology::homogeneous(&m, 8);
        assert!(!t2.is_single_node());
    }

    #[test]
    fn mixed_rooms_get_distinct_classes() {
        let spec = ClusterSpec::mixed(vec![fast(), slow(), fast()], 2);
        let t = ClusterTopology::contiguous(spec, 6);
        assert_eq!(t.n_classes(), 2);
        assert_eq!(t.class_of_node(0), t.class_of_node(2));
        assert_ne!(t.class_of_node(0), t.class_of_node(1));
        assert_eq!(t.class_of_rank(0), t.class_of_rank(5));
        assert_ne!(t.machine_of(0).nvm, t.machine_of(2).nvm);
    }

    #[test]
    #[should_panic(expected = "slots")]
    fn overcommitted_rooms_are_rejected() {
        ClusterTopology::contiguous(ClusterSpec::homogeneous(fast(), 1, 2), 3);
    }

    #[test]
    fn scheduler_places_bw_hungry_tenants_on_fast_nvm_nodes() {
        // Node 0 is the slow PCRAM node, node 1 the fast STT-RAM node:
        // the hungry tenant must land on node 1 even though it is listed
        // second in both the room and the tenant roster.
        let spec = ClusterSpec::mixed(vec![slow(), fast()], 2);
        let tenants = [
            TenantDemand {
                label: "batch".into(),
                ranks: 2,
                bw_hungry: false,
            },
            TenantDemand {
                label: "stream".into(),
                ranks: 2,
                bw_hungry: true,
            },
        ];
        let t = ClusterTopology::scheduled(spec, &tenants, PlacementIntent::Pack);
        let fast_node = t.fastest_nvm_node();
        assert_eq!(fast_node, 1);
        // Tenant rank ids follow roster order: batch = 0..2, stream = 2..4.
        assert_eq!(t.node_of(2), fast_node, "hungry tenant off the fast node");
        assert_eq!(t.node_of(3), fast_node);
        assert_ne!(t.node_of(0), fast_node);
        assert_ne!(t.node_of(1), fast_node);
    }

    #[test]
    fn spread_round_robins_over_equal_nodes() {
        let spec = ClusterSpec::homogeneous(fast(), 2, 2);
        let tenants = [TenantDemand {
            label: "t".into(),
            ranks: 4,
            bw_hungry: false,
        }];
        let t = ClusterTopology::scheduled(spec, &tenants, PlacementIntent::Spread);
        assert_eq!(t.node_of(0), 0);
        assert_eq!(t.node_of(1), 1);
        assert_eq!(t.node_of(2), 0);
        assert_eq!(t.node_of(3), 1);
    }

    #[test]
    fn pack_fills_a_node_before_the_next() {
        let spec = ClusterSpec::homogeneous(fast(), 2, 2);
        let tenants = [TenantDemand {
            label: "t".into(),
            ranks: 3,
            bw_hungry: false,
        }];
        let t = ClusterTopology::scheduled(spec, &tenants, PlacementIntent::Pack);
        assert_eq!(t.node_of(0), 0);
        assert_eq!(t.node_of(1), 0);
        assert_eq!(t.node_of(2), 1);
    }

    #[test]
    fn scheduling_is_deterministic() {
        let mk = || {
            ClusterTopology::scheduled(
                ClusterSpec::mixed(vec![slow(), fast(), slow()], 4),
                &[
                    TenantDemand {
                        label: "a".into(),
                        ranks: 5,
                        bw_hungry: true,
                    },
                    TenantDemand {
                        label: "b".into(),
                        ranks: 4,
                        bw_hungry: false,
                    },
                ],
                PlacementIntent::Spread,
            )
        };
        assert_eq!(mk(), mk());
    }
}
